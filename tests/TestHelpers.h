//===- tests/TestHelpers.h - Shared test fixtures ---------------*- C++ -*-===//
//
// Part of the spirv-fuzz reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//

#ifndef TESTS_TESTHELPERS_H
#define TESTS_TESTHELPERS_H

#include "analysis/Validator.h"
#include "core/Fact.h"
#include "core/Transformation.h"
#include "exec/Interpreter.h"
#include "ir/ModuleBuilder.h"
#include "ir/Text.h"

#include <gtest/gtest.h>

namespace spvfuzz {
namespace test {

/// A small, fully-known module:
///
///   uniforms: %U0 int (binding 0, value 7), %U1 bool (binding 1, true)
///   output:   %Out int (location 0)
///   helper:   int helper(int a) { return a + 3; }
///   main:     x := load U0; c := x > 2;
///             if (c) { y := helper(x) } else { y := 5 }  (via local var L)
///             out := load L
///
/// Execution with the default input stores helper(7) == 10.
struct Fixture {
  Module M;
  ShaderInput Input;

  Id IntType, BoolType, VoidType;
  Id Const2, Const3, Const5;
  Id U0, U1, Out, LocalL;
  Id HelperId, HelperParam, HelperBlock, HelperAdd;
  Id MainId, EntryBlock, ThenBlock, ElseBlock, MergeBlock;
  Id LoadX, CondC, CallY;

  Fixture() {
    ModuleBuilder Builder(M);
    IntType = Builder.getIntType();
    BoolType = Builder.getBoolType();
    VoidType = Builder.getVoidType();
    Const2 = Builder.getIntConstant(2);
    Const3 = Builder.getIntConstant(3);
    Const5 = Builder.getIntConstant(5);

    U0 = Builder.addUniform(IntType, 0);
    U1 = Builder.addUniform(BoolType, 1);
    Out = Builder.addOutput(IntType, 0);
    Input.Bindings[0] = Value::makeInt(7);
    Input.Bindings[1] = Value::makeBool(true);

    // Helper function.
    std::vector<Id> ParamIds;
    Function &Helper = Builder.startFunction(IntType, {IntType}, &ParamIds);
    HelperId = Helper.id();
    HelperParam = ParamIds[0];
    HelperBlock = Helper.entryBlock().LabelId;
    HelperAdd = M.takeFreshId();
    Helper.entryBlock().Body.push_back(ModuleBuilder::makeBinOp(
        Op::IAdd, IntType, HelperAdd, HelperParam, Const3));
    Helper.entryBlock().Body.push_back(
        ModuleBuilder::makeReturnValue(HelperAdd));

    // Main function.
    Function &Main = Builder.startFunction(VoidType, {});
    MainId = Main.id();
    Builder.setEntryPoint(MainId);
    EntryBlock = Main.entryBlock().LabelId;

    Id IntPtrFunction = Builder.getPointerType(StorageClass::Function, IntType);
    LocalL = M.takeFreshId();
    ThenBlock = M.takeFreshId();
    ElseBlock = M.takeFreshId();
    MergeBlock = M.takeFreshId();
    LoadX = M.takeFreshId();
    CondC = M.takeFreshId();
    CallY = M.takeFreshId();

    // Re-find main (startFunction may have invalidated references).
    Function &MainRef = *M.findFunction(MainId);
    BasicBlock &Entry = MainRef.entryBlock();
    Entry.Body.push_back(
        ModuleBuilder::makeLocalVariable(IntPtrFunction, LocalL));
    Entry.Body.push_back(ModuleBuilder::makeLoad(IntType, LoadX, U0));
    Entry.Body.push_back(ModuleBuilder::makeBinOp(Op::SGreaterThan, BoolType,
                                                  CondC, LoadX, Const2));
    Entry.Body.push_back(
        ModuleBuilder::makeBranchConditional(CondC, ThenBlock, ElseBlock));

    BasicBlock Then(ThenBlock);
    Then.Body.push_back(Instruction(Op::FunctionCall, IntType, CallY,
                                    {Operand::id(HelperId),
                                     Operand::id(LoadX)}));
    Then.Body.push_back(ModuleBuilder::makeStore(LocalL, CallY));
    Then.Body.push_back(ModuleBuilder::makeBranch(MergeBlock));
    MainRef.Blocks.push_back(std::move(Then));

    BasicBlock Else(ElseBlock);
    Else.Body.push_back(ModuleBuilder::makeStore(LocalL, Const5));
    Else.Body.push_back(ModuleBuilder::makeBranch(MergeBlock));
    MainRef.Blocks.push_back(std::move(Else));

    BasicBlock Merge(MergeBlock);
    Id LoadL = M.takeFreshId();
    Merge.Body.push_back(ModuleBuilder::makeLoad(IntType, LoadL, LocalL));
    Merge.Body.push_back(ModuleBuilder::makeStore(Out, LoadL));
    Merge.Body.push_back(ModuleBuilder::makeReturn());
    MainRef.Blocks.push_back(std::move(Merge));
  }
};

/// Asserts the fixture-style invariants after a transformation: the module
/// validates and computes the same result as before.
inline void expectValidAndEquivalent(const Module &Before,
                                     const Module &After,
                                     const ShaderInput &Input) {
  std::vector<std::string> Diags = validateModule(After);
  ASSERT_TRUE(Diags.empty()) << Diags.front() << "\n"
                             << writeModuleText(After);
  EXPECT_EQ(interpret(Before, Input), interpret(After, Input));
}

/// Applies \p T if applicable; returns whether it was applied.
inline bool applyIfApplicable(Module &M, FactManager &Facts,
                              const Transformation &T) {
  ModuleAnalysis Analysis(M);
  if (!T.isApplicable(M, Analysis, Facts))
    return false;
  T.apply(M, Facts);
  return true;
}

/// Checks a transformation's wire-format round trip.
inline void expectSerializationRoundTrip(const Transformation &T) {
  std::string Line = T.serialize();
  std::string Error;
  TransformationPtr Reparsed = deserializeTransformation(Line, Error);
  ASSERT_NE(Reparsed, nullptr) << Error << " for: " << Line;
  EXPECT_EQ(Reparsed->serialize(), Line);
  EXPECT_EQ(Reparsed->kind(), T.kind());
}

} // namespace test
} // namespace spvfuzz

#endif // TESTS_TESTHELPERS_H
