//===- tests/ObsJournalTest.cpp - Event journal contract ------------------===//
//
// Part of the spirv-fuzz reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The event-journal contract of the observability plane: every event kind
/// round-trips through its JSONL line; a journal written at `--jobs 8` is
/// byte-identical to one written at `--jobs 1` under deterministic mode; a
/// campaign killed at any checkpoint leaves a parseable journal that is a
/// strict prefix of the uninterrupted run's, and resuming reproduces the
/// uninterrupted journal exactly; torn tails from mid-write crashes are
/// truncated away on resume, and newer-format journals are refused.
///
//===----------------------------------------------------------------------===//

#include "obs/Journal.h"
#include "obs/Monitor.h"
#include "store/CampaignStore.h"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <stdexcept>

#include <sys/stat.h>
#include <unistd.h>

using namespace spvfuzz;
using namespace spvfuzz::obs;

namespace {

std::string uniqueDir(const std::string &Hint) {
  static int Counter = 0;
  std::string Dir = ::testing::TempDir() + "spvfuzz-journal-" + Hint + "-" +
                    std::to_string(::getpid()) + "-" +
                    std::to_string(Counter++);
  ::mkdir(Dir.c_str(), 0755);
  return Dir;
}

std::string readAll(const std::string &Path) {
  std::ifstream In(Path, std::ios::binary);
  std::ostringstream Out;
  Out << In.rdbuf();
  return Out.str();
}

void appendRaw(const std::string &Path, const std::string &Bytes) {
  std::ofstream Out(Path, std::ios::binary | std::ios::app);
  Out << Bytes;
}

//===----------------------------------------------------------------------===//
// Line format
//===----------------------------------------------------------------------===//

JournalEvent sampleEvent(JournalEventKind Kind) {
  JournalEvent Event;
  Event.Kind = Kind;
  Event.Seq = 7;
  Event.Campaign = "c-1234";
  Event.Phase = "eval/spirv-fuzz/40";
  Event.Target = "Mali";
  Event.Signature = "crash \"quoted\"\nline";
  Event.Wave = 64;
  Event.Total = 100;
  Event.Test = 41;
  Event.Count = 3;
  Event.Seed = 5;
  Event.Limit = 120;
  Event.Unreduced = 900;
  Event.Reduced = 40;
  Event.Minimized = 6;
  Event.Checks = 210;
  Event.Pass = "strip-unused-defs";
  Event.Attempted = 9;
  Event.Accepted = 4;
  Event.WallUs = 1722000000000000ull;
  return Event;
}

TEST(Journal, EveryKindRoundTripsThroughItsLine) {
  for (JournalEventKind Kind :
       {JournalEventKind::CampaignStarted, JournalEventKind::WaveCommitted,
        JournalEventKind::BugFound, JournalEventKind::ReductionStep,
        JournalEventKind::PostReduceStep,
        JournalEventKind::TargetQuarantined, JournalEventKind::CheckpointSaved,
        JournalEventKind::CampaignFinished}) {
    JournalEvent Event = sampleEvent(Kind);
    std::string Line = serializeJournalEvent(Event);
    JournalEvent Parsed;
    std::string Error;
    ASSERT_TRUE(parseJournalLine(Line, Parsed, Error))
        << journalEventKindName(Kind) << ": " << Error;
    EXPECT_EQ(Parsed.Kind, Kind);
    EXPECT_EQ(Parsed.Seq, Event.Seq);
    EXPECT_EQ(Parsed.WallUs, Event.WallUs);
    // Re-serializing the parsed event must reproduce the line exactly —
    // the byte-diff guarantees below depend on it.
    EXPECT_EQ(serializeJournalEvent(Parsed), Line)
        << journalEventKindName(Kind);
    // The human rendering names the kind verbatim (tail/CI grep for it).
    EXPECT_NE(formatJournalEvent(Parsed).find(journalEventKindName(Kind)),
              std::string::npos);
  }
}

TEST(Journal, KindNamesRoundTrip) {
  JournalEventKind Kind;
  EXPECT_TRUE(journalEventKindFromName("BugFound", Kind));
  EXPECT_EQ(Kind, JournalEventKind::BugFound);
  EXPECT_FALSE(journalEventKindFromName("NotAKind", Kind));
}

TEST(Journal, ParserRejectsBadLinesWithDiagnostics) {
  JournalEvent Event;
  std::string Error;

  EXPECT_FALSE(parseJournalLine(
      R"({"v":4,"seq":0,"kind":"BugFound","wall_us":0})", Event, Error));
  EXPECT_NE(Error.find("unsupported journal format version 4"),
            std::string::npos)
      << Error;

  EXPECT_FALSE(parseJournalLine(R"({"v":1,"seq":0,"kind":"Nope"})", Event,
                                Error));
  EXPECT_NE(Error.find("unknown event kind 'Nope'"), std::string::npos)
      << Error;

  EXPECT_FALSE(
      parseJournalLine(R"({"seq":0,"kind":"BugFound"})", Event, Error));
  EXPECT_NE(Error.find("missing journal format version"), std::string::npos)
      << Error;

  // Malformed JSON reports a column, never asserts.
  EXPECT_FALSE(parseJournalLine(R"({"v":1,)", Event, Error));
  EXPECT_NE(Error.find("column"), std::string::npos) << Error;
}

//===----------------------------------------------------------------------===//
// Writer
//===----------------------------------------------------------------------===//

TEST(Journal, WriterAssignsSequenceAndWallClock) {
  std::string Dir = uniqueDir("writer");
  std::string Error;
  std::unique_ptr<JournalWriter> Writer =
      JournalWriter::open(Dir, /*Resume=*/false, /*Deterministic=*/false,
                          Error);
  ASSERT_NE(Writer, nullptr) << Error;
  EXPECT_TRUE(Writer->empty());

  JournalEvent Started;
  Started.Kind = JournalEventKind::CampaignStarted;
  EXPECT_EQ(Writer->append(Started), 0u);
  JournalEvent Wave;
  Wave.Kind = JournalEventKind::WaveCommitted;
  EXPECT_EQ(Writer->append(Wave), 1u);
  Writer->commit();

  EXPECT_FALSE(Writer->empty());
  EXPECT_EQ(Writer->lastKind(), JournalEventKind::WaveCommitted);
  ASSERT_EQ(Writer->events().size(), 2u);
  EXPECT_GT(Writer->events()[0].WallUs, 0u) << "wall clock stamp expected";

  // Resume continues the sequence.
  Writer.reset();
  Writer = JournalWriter::open(Dir, /*Resume=*/true, false, Error);
  ASSERT_NE(Writer, nullptr) << Error;
  ASSERT_EQ(Writer->events().size(), 2u);
  EXPECT_EQ(Writer->append(JournalEvent{}), 2u);

  // A fresh (non-resume) open starts the journal over.
  Writer.reset();
  Writer = JournalWriter::open(Dir, /*Resume=*/false, false, Error);
  ASSERT_NE(Writer, nullptr) << Error;
  EXPECT_TRUE(Writer->empty());
  EXPECT_EQ(readAll(journalPathFor(Dir)), "");
}

TEST(Journal, ResumeTruncatesTornAndCorruptTails) {
  std::string Dir = uniqueDir("torn");
  std::string Error;
  std::unique_ptr<JournalWriter> Writer =
      JournalWriter::open(Dir, false, /*Deterministic=*/true, Error);
  ASSERT_NE(Writer, nullptr) << Error;
  Writer->append(sampleEvent(JournalEventKind::CampaignStarted));
  Writer->append(sampleEvent(JournalEventKind::WaveCommitted));
  Writer.reset();
  const std::string CleanBytes = readAll(journalPathFor(Dir));

  // A mid-write crash leaves a partial line without a trailing newline.
  appendRaw(journalPathFor(Dir), R"({"v":1,"seq":2,"kind":"WaveCo)");
  Writer = JournalWriter::open(Dir, /*Resume=*/true, true, Error);
  ASSERT_NE(Writer, nullptr) << Error;
  EXPECT_EQ(Writer->events().size(), 2u);
  Writer.reset();
  EXPECT_EQ(readAll(journalPathFor(Dir)), CleanBytes);

  // A complete-but-corrupt line is also dropped, keeping the prefix.
  appendRaw(journalPathFor(Dir), "not json at all\n");
  Writer = JournalWriter::open(Dir, /*Resume=*/true, true, Error);
  ASSERT_NE(Writer, nullptr) << Error;
  EXPECT_EQ(Writer->events().size(), 2u);
  Writer.reset();
  EXPECT_EQ(readAll(journalPathFor(Dir)), CleanBytes);

  // A journal written by a newer format version is refused outright —
  // extending it could silently misinterpret fields.
  appendRaw(journalPathFor(Dir),
            R"({"v":9,"seq":2,"kind":"WaveCommitted","wall_us":0})"
            "\n");
  Writer = JournalWriter::open(Dir, /*Resume=*/true, true, Error);
  EXPECT_EQ(Writer, nullptr);
  EXPECT_NE(Error.find("unsupported journal format version"),
            std::string::npos)
      << Error;
}

TEST(Journal, TruncateForPhaseResumeDropsRecomputedSuffix) {
  std::string Dir = uniqueDir("truncate");
  std::string Error;
  std::unique_ptr<JournalWriter> Writer =
      JournalWriter::open(Dir, false, /*Deterministic=*/true, Error);
  ASSERT_NE(Writer, nullptr) << Error;

  auto Phased = [](JournalEventKind Kind, const std::string &Phase,
                   uint64_t Wave) {
    JournalEvent Event;
    Event.Kind = Kind;
    Event.Phase = Phase;
    Event.Wave = Wave;
    return Event;
  };
  Writer->append(sampleEvent(JournalEventKind::CampaignStarted)); // seq 0
  Writer->append(Phased(JournalEventKind::BugFound, "eval/a", 32));
  Writer->append(Phased(JournalEventKind::WaveCommitted, "eval/a", 32));
  Writer->append(Phased(JournalEventKind::WaveCommitted, "eval/a", 64));
  Writer->append(Phased(JournalEventKind::WaveCommitted, "reduce/a", 32));

  // Resuming eval/a at wave 32 recomputes wave 64 — its events, and every
  // later phase's, are dropped; events at or before the boundary stay.
  Writer->truncateForPhaseResume("eval/a", 32);
  ASSERT_EQ(Writer->events().size(), 3u);
  EXPECT_EQ(Writer->events().back().Wave, 32u);

  // The sequence restarts where the cut happened, so re-appended events
  // reproduce the dropped byte range exactly.
  EXPECT_EQ(Writer->append(Phased(JournalEventKind::WaveCommitted, "eval/a",
                                  64)),
            3u);

  // Nothing past the boundary: a no-op.
  Writer->truncateForPhaseResume("reduce/a", 32);
  EXPECT_EQ(Writer->events().size(), 4u);

  Writer.reset();
  std::vector<JournalEvent> OnDisk;
  ASSERT_TRUE(readJournalFile(journalPathFor(Dir), OnDisk, Error)) << Error;
  ASSERT_EQ(OnDisk.size(), 4u);
  EXPECT_EQ(OnDisk[3].Seq, 3u);
}

//===----------------------------------------------------------------------===//
// Tailer
//===----------------------------------------------------------------------===//

TEST(Journal, TailerDeliversOnlyCompleteLines) {
  std::string Dir = uniqueDir("tailer");
  std::string Path = journalPathFor(Dir);
  ::mkdir((Dir + "/journal").c_str(), 0755);

  JournalTailer Tailer(Path);
  std::vector<JournalEvent> Events;
  std::string Error;

  // Journal not created yet: not an error, just no events.
  EXPECT_TRUE(Tailer.poll(Events, Error));
  EXPECT_TRUE(Events.empty());

  std::string Line =
      serializeJournalEvent(sampleEvent(JournalEventKind::BugFound));
  appendRaw(Path, Line.substr(0, Line.size() / 2));
  EXPECT_TRUE(Tailer.poll(Events, Error));
  EXPECT_TRUE(Events.empty()) << "half a line is not an event";
  EXPECT_TRUE(Tailer.hasPartial());

  appendRaw(Path, Line.substr(Line.size() / 2) + "\n" + Line + "\n");
  EXPECT_TRUE(Tailer.poll(Events, Error));
  ASSERT_EQ(Events.size(), 2u);
  EXPECT_FALSE(Tailer.hasPartial());
  EXPECT_EQ(Events[0].Kind, JournalEventKind::BugFound);

  // A malformed line is a line-accurate error.
  appendRaw(Path, "garbage\n");
  EXPECT_FALSE(Tailer.poll(Events, Error));
  EXPECT_NE(Error.find(":3:"), std::string::npos) << Error;
}

//===----------------------------------------------------------------------===//
// Engine integration: determinism and crash safety
//===----------------------------------------------------------------------===//

constexpr size_t Tests = 40; // two waves per tool at ShardSize 32

ExecutionPolicy policyFor(uint64_t Seed, size_t Jobs) {
  return ExecutionPolicy{}.withSeed(Seed).withJobs(Jobs)
      .withTransformationLimit(120);
}

/// Runs a full campaign (bug finding, then reduction+dedup) with a
/// deterministic journal attached, and returns the journal's bytes.
std::string runJournaled(const ExecutionPolicy &Policy,
                         CampaignCheckpointer *Checkpointer,
                         const std::string &Dir, bool Resume) {
  std::string Error;
  std::unique_ptr<JournalWriter> Writer =
      JournalWriter::open(Dir, Resume, /*Deterministic=*/true, Error);
  EXPECT_NE(Writer, nullptr) << Error;
  JournalObserver Observer(*Writer);

  CampaignEngine Engine(Policy, CorpusSpec{}, ToolsetSpec{}, TargetFleet{});
  if (Checkpointer)
    Engine.setCheckpointer(Checkpointer);
  Engine.setObserver(&Observer);

  BugFindingConfig Config;
  Config.TestsPerTool = Tests;
  Engine.runBugFinding(Config);
  ReductionConfig RC;
  RC.TestsPerTool = Tests;
  Engine.runDedup(RC);

  Writer.reset();
  return readAll(journalPathFor(Dir));
}

TEST(JournalEngine, DeterministicJournalIdenticalAcrossJobCounts) {
  std::string Serial = runJournaled(policyFor(5, 1), nullptr,
                                    uniqueDir("jobs1"), false);
  std::string Parallel = runJournaled(policyFor(5, 8), nullptr,
                                      uniqueDir("jobs8"), false);
  EXPECT_EQ(Serial, Parallel);
  EXPECT_NE(Serial.find("\"kind\":\"BugFound\""), std::string::npos)
      << "campaign should journal at least one bug";

  // Every wall clock stamp is zeroed under deterministic mode.
  size_t Stamps = 0;
  for (size_t At = Serial.find("\"wall_us\":"); At != std::string::npos;
       At = Serial.find("\"wall_us\":", At + 1), ++Stamps)
    EXPECT_EQ(Serial.compare(At, 13, "\"wall_us\":0}\n"), 0)
        << Serial.substr(At, 20);
  EXPECT_GT(Stamps, 0u);
}

/// Forwards to a real store but throws (a simulated crash) when the save
/// budget runs out — before the inner save, like a crash mid-commit.
class AbortAfter : public CampaignCheckpointer {
public:
  AbortAfter(CampaignCheckpointer &Inner, size_t Saves)
      : Inner(Inner), Remaining(Saves) {}

  bool loadEvaluation(const std::string &Phase,
                      EvaluationCheckpoint &Out) override {
    return Inner.loadEvaluation(Phase, Out);
  }
  void saveEvaluation(const EvaluationCheckpoint &Checkpoint) override {
    spend();
    Inner.saveEvaluation(Checkpoint);
  }
  bool loadReduction(const std::string &Phase,
                     ReductionCheckpoint &Out) override {
    return Inner.loadReduction(Phase, Out);
  }
  void saveReduction(const ReductionCheckpoint &Checkpoint) override {
    spend();
    Inner.saveReduction(Checkpoint);
  }
  void recordReproducer(const ReductionRecord &Record, const Module &Original,
                        const ShaderInput &Input, const Module &Reduced,
                        const TransformationSequence &Minimized) override {
    Inner.recordReproducer(Record, Original, Input, Reduced, Minimized);
  }

  size_t Spent = 0;

private:
  void spend() {
    if (Remaining == 0)
      throw std::runtime_error("simulated crash at checkpoint");
    --Remaining;
    ++Spent;
  }

  CampaignCheckpointer &Inner;
  size_t Remaining;
};

TEST(JournalEngine, CrashedJournalIsPrefixAndResumeReproducesIt) {
  // The uninterrupted reference run, journaled and counted.
  std::string Baseline;
  size_t TotalSaves;
  {
    std::string Dir = uniqueDir("baseline");
    std::string Error;
    std::unique_ptr<CampaignStore> Store =
        CampaignStore::open(Dir, policyFor(5, 1), Error);
    ASSERT_NE(Store, nullptr) << Error;
    AbortAfter Counting(*Store, size_t(-1));
    Baseline = runJournaled(policyFor(5, 1), &Counting, Dir, false);
    TotalSaves = Counting.Spent;
    ASSERT_GT(TotalSaves, 2u);
  }
  ASSERT_NE(Baseline.find("\"kind\":\"CheckpointSaved\""), std::string::npos);

  // Kill the campaign at the first, a middle, and the last checkpoint.
  for (size_t CrashAfterSaves : {size_t(0), TotalSaves / 2, TotalSaves - 1}) {
    std::string Dir = uniqueDir("crash" + std::to_string(CrashAfterSaves));
    std::string Error;
    {
      std::unique_ptr<CampaignStore> Store =
          CampaignStore::open(Dir, policyFor(5, 1), Error);
      ASSERT_NE(Store, nullptr) << Error;
      AbortAfter Crashing(*Store, CrashAfterSaves);
      EXPECT_THROW(runJournaled(policyFor(5, 1), &Crashing, Dir, false),
                   std::runtime_error);
    }

    // The dead campaign's journal: parseable, no torn tail (every line is
    // flushed whole), and a strict prefix of the uninterrupted journal —
    // the journal is always at or ahead of the store.
    std::string Crashed = readAll(journalPathFor(Dir));
    std::vector<JournalEvent> Events;
    bool TornTail = true;
    ASSERT_TRUE(readJournalFile(journalPathFor(Dir), Events, Error,
                                &TornTail))
        << Error;
    EXPECT_FALSE(TornTail);
    EXPECT_LT(Crashed.size(), Baseline.size());
    EXPECT_EQ(Baseline.rfind(Crashed, 0), 0u)
        << "crash after " << CrashAfterSaves
        << " saves: journal is not a prefix of the uninterrupted run";

    // Resume: recomputed waves re-append byte-identical events, so the
    // final journal equals the uninterrupted one exactly.
    ExecutionPolicy Resumed = policyFor(5, 1).withResume(true);
    std::unique_ptr<CampaignStore> Store =
        CampaignStore::open(Dir, Resumed, Error);
    ASSERT_NE(Store, nullptr) << Error;
    EXPECT_EQ(runJournaled(Resumed, Store.get(), Dir, /*Resume=*/true),
              Baseline)
        << "crash after " << CrashAfterSaves << " saves";
  }
}

//===----------------------------------------------------------------------===//
// Monitoring fold
//===----------------------------------------------------------------------===//

TEST(Journal, TopModelFoldsTheJournal) {
  std::vector<JournalEvent> Events;
  JournalEvent Started;
  Started.Kind = JournalEventKind::CampaignStarted;
  Started.Campaign = "c-42";
  Started.Seed = 5;
  Started.Limit = 120;
  Started.Total = 40;
  Started.WallUs = 1000000;
  Events.push_back(Started);

  auto Push = [&Events](JournalEvent Event) {
    Event.WallUs = 2000000;
    Events.push_back(Event);
  };
  JournalEvent Bug;
  Bug.Kind = JournalEventKind::BugFound;
  Bug.Phase = "eval/a";
  Bug.Target = "Mali";
  Bug.Signature = "sig-1";
  Push(Bug);
  Bug.Signature = "sig-2";
  Push(Bug);
  Bug.Signature = "sig-1"; // duplicate: still one distinct signature
  Push(Bug);
  JournalEvent Wave;
  Wave.Kind = JournalEventKind::WaveCommitted;
  Wave.Phase = "eval/a";
  Wave.Wave = 32;
  Wave.Total = 40;
  Wave.Count = 3;
  Push(Wave);
  JournalEvent Quarantine;
  Quarantine.Kind = JournalEventKind::TargetQuarantined;
  Quarantine.Phase = "eval/a";
  Quarantine.Target = "NVIDIA";
  Push(Quarantine);
  JournalEvent Saved;
  Saved.Kind = JournalEventKind::CheckpointSaved;
  Saved.Phase = "eval/a";
  Push(Saved);

  TopModel Model = buildTopModel(Events);
  EXPECT_EQ(Model.Campaign, "c-42");
  EXPECT_EQ(Model.Seed, 5u);
  EXPECT_EQ(Model.Tests, 40u);
  EXPECT_FALSE(Model.Finished);
  ASSERT_EQ(Model.Phases.size(), 1u);
  EXPECT_EQ(Model.Phases[0].Wave, 32u);
  EXPECT_EQ(Model.Phases[0].Total, 40u);
  EXPECT_EQ(Model.BugsPerTarget.at("Mali").size(), 2u);
  EXPECT_EQ(Model.Quarantined.count("NVIDIA"), 1u);
  EXPECT_EQ(Model.BugEvents, 3u);
  EXPECT_EQ(Model.Checkpoints, 1u);
  EXPECT_EQ(Model.FirstWallUs, 1000000u);
  EXPECT_EQ(Model.LastWallUs, 2000000u);

  std::string Screen = renderTop(Model, nullptr);
  EXPECT_NE(Screen.find("c-42"), std::string::npos);
  EXPECT_NE(Screen.find("Mali"), std::string::npos);
  EXPECT_NE(Screen.find("QUARANTINED"), std::string::npos);

  JournalEvent Finished;
  Finished.Kind = JournalEventKind::CampaignFinished;
  Finished.Campaign = "c-42";
  Finished.Count = 2;
  Events.push_back(Finished);
  Model = buildTopModel(Events);
  EXPECT_TRUE(Model.Finished);
  EXPECT_EQ(Model.FinalBugs, 2u);
  EXPECT_NE(renderTop(Model, nullptr).find("CampaignFinished"),
            std::string::npos);
}

} // namespace
