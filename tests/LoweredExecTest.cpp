//===- tests/LoweredExecTest.cpp - Lowered vs tree engine equivalence -----===//
//
// Part of the spirv-fuzz reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Differential tests for the compiled execution engine: every fuzzed
/// module must produce an ExecResult from the register-bytecode executor
/// that is indistinguishable from the tree-walking interpreter — same
/// status, same fault message, same outputs, and the same block-granular
/// step accounting at any step limit. Also covers the Executable artifact
/// plumbing: batch runs, target-level step budgets, and ExecutableCache
/// hit/replay counter neutrality.
///
//===----------------------------------------------------------------------===//

#include "campaign/Campaign.h"
#include "core/Fuzzer.h"
#include "exec/Executable.h"
#include "gen/Generator.h"
#include "opt/Passes.h"
#include "support/ModuleHash.h"
#include "support/Telemetry.h"
#include "target/ExecutableCache.h"
#include "target/Target.h"

#include "TestHelpers.h"

#include <climits>

using namespace spvfuzz;

namespace {

/// Strict ExecResult comparison: ExecResult::operator== treats any two
/// faults as equal, but the engines must also agree on the message (it is
/// part of crash signatures) and on outputs after a kill is irrelevant.
void expectSameResult(const ExecResult &Tree, const ExecResult &Lowered,
                      const std::string &Context) {
  ASSERT_EQ(Tree.ExecStatus, Lowered.ExecStatus) << Context;
  EXPECT_EQ(Tree.FaultMessage, Lowered.FaultMessage) << Context;
  if (Tree.ExecStatus == ExecResult::Status::Ok) {
    EXPECT_EQ(Tree.Outputs, Lowered.Outputs) << Context;
  }
}

const Target &findTarget(const TargetFleet &Fleet, const std::string &Name) {
  for (const Target &T : Fleet)
    if (T.spec().Name == Name)
      return T;
  ADD_FAILURE() << "no target named " << Name;
  return Fleet[0];
}

/// Exact step count of executing \p Exe on \p Input, read back from the
/// exec.steps counter (charged identically by both engines).
uint64_t measureSteps(const Executable &Exe, const ShaderInput &Input) {
  telemetry::MetricsRegistry &Metrics = telemetry::MetricsRegistry::global();
  Metrics.reset();
  Metrics.setEnabled(true);
  Exe.run(Input);
  uint64_t Steps = Metrics.counterValue("exec.steps");
  Metrics.setEnabled(false);
  Metrics.reset();
  return Steps;
}

/// A tiny module whose execution cost dwarfs its instruction count: loops
/// Iterations times incrementing a local, then writes it to the output.
/// Keeps compile-step cost (instructions x pipeline length) far below the
/// execution step count, so a step budget can bound execution alone.
Module makeLoopModule(int32_t Iterations) {
  Module M;
  ModuleBuilder Builder(M);
  Id IntType = Builder.getIntType();
  Id BoolType = Builder.getBoolType();
  Id Zero = Builder.getIntConstant(0);
  Id One = Builder.getIntConstant(1);
  Id Limit = Builder.getIntConstant(Iterations);
  Id Out = Builder.addOutput(IntType, 0);
  Id PtrType = Builder.getPointerType(StorageClass::Function, IntType);

  Function &F = Builder.startFunction(Builder.getVoidType(), {});
  Id Var = M.Bound++;
  Id LoopLabel = M.Bound++;
  Id ExitLabel = M.Bound++;
  BasicBlock &Entry = F.Blocks[0];
  Entry.Body.push_back(ModuleBuilder::makeLocalVariable(PtrType, Var, Zero));
  Entry.Body.push_back(ModuleBuilder::makeBranch(LoopLabel));

  BasicBlock Loop;
  Loop.LabelId = LoopLabel;
  Id Loaded = M.Bound++;
  Id Next = M.Bound++;
  Id Cond = M.Bound++;
  Loop.Body.push_back(ModuleBuilder::makeLoad(IntType, Loaded, Var));
  Loop.Body.push_back(
      ModuleBuilder::makeBinOp(Op::IAdd, IntType, Next, Loaded, One));
  Loop.Body.push_back(ModuleBuilder::makeStore(Var, Next));
  Loop.Body.push_back(
      ModuleBuilder::makeBinOp(Op::SLessThan, BoolType, Cond, Next, Limit));
  Loop.Body.push_back(
      ModuleBuilder::makeBranchConditional(Cond, LoopLabel, ExitLabel));
  F.Blocks.push_back(std::move(Loop));

  BasicBlock Exit;
  Exit.LabelId = ExitLabel;
  Id Final = M.Bound++;
  Exit.Body.push_back(ModuleBuilder::makeLoad(IntType, Final, Var));
  Exit.Body.push_back(ModuleBuilder::makeStore(Out, Final));
  Exit.Body.push_back(ModuleBuilder::makeReturn());
  F.Blocks.push_back(std::move(Exit));

  Builder.setEntryPoint(F.Def.Result);
  return M;
}

// The core differential: >= 200 fuzzer-generated modules, each executed
// on several perturbed inputs by both engines, at the default step limit
// and again at a tight limit that forces step-limit faults. Every result
// component must agree.
TEST(LoweredExecTest, DifferentialOnFuzzedModules) {
  std::vector<GeneratedProgram> Bases = generateCorpus(40, 11);
  std::vector<GeneratedProgram> DonorPrograms = generateCorpus(3, 99);
  std::vector<const Module *> Donors;
  for (const GeneratedProgram &Donor : DonorPrograms)
    Donors.push_back(&Donor.M);
  FuzzerOptions Options;
  Options.TransformationLimit = 80;

  InterpreterOptions Tight;
  Tight.StepLimit = 64;

  size_t Modules = 0, LoweredActive = 0, Kills = 0, Faults = 0;
  for (const GeneratedProgram &Base : Bases) {
    for (uint64_t Round = 0; Round < 5; ++Round) {
      uint64_t Seed = 1000 * Round + Modules;
      FuzzResult Fuzzed =
          fuzz(Base.M, Base.Input, Donors, Seed, Options);
      ++Modules;
      std::shared_ptr<const Executable> Exe =
          Executable::compile(Fuzzed.Variant, ExecEngine::Lowered);
      if (Exe->loweredActive())
        ++LoweredActive;
      std::vector<ShaderInput> Matrix =
          uniformInputMatrix(Base.Input, 3, Seed);
      std::vector<ExecResult> Batch = Exe->runBatch(Matrix);
      ASSERT_EQ(Batch.size(), Matrix.size());
      for (size_t I = 0; I < Matrix.size(); ++I) {
        std::string Context = "module " + std::to_string(Modules) +
                              " input " + std::to_string(I);
        ExecResult Tree = interpret(Fuzzed.Variant, Matrix[I]);
        expectSameResult(Tree, Batch[I], Context);
        if (Tree.ExecStatus == ExecResult::Status::Killed)
          ++Kills;
        ExecResult TreeTight = interpret(Fuzzed.Variant, Matrix[I], Tight);
        expectSameResult(TreeTight, Exe->run(Matrix[I], Tight),
                         Context + " (tight)");
        if (TreeTight.ExecStatus == ExecResult::Status::Fault)
          ++Faults;
      }
      // ReplaceBranchWithKill fires too rarely to rely on for Killed
      // coverage; derive one guaranteed-kill variant per base instead by
      // prepending OpKill to the fuzzed module's entry block.
      if (Round == 0) {
        Module Killed = Fuzzed.Variant;
        Function *Entry = Killed.entryPoint();
        ASSERT_NE(Entry, nullptr);
        Entry->Blocks[0].Body.insert(Entry->Blocks[0].Body.begin(),
                                     ModuleBuilder::makeKill());
        std::shared_ptr<const Executable> KilledExe =
            Executable::compile(Killed, ExecEngine::Lowered);
        ExecResult Tree = interpret(Killed, Base.Input);
        EXPECT_EQ(Tree.ExecStatus, ExecResult::Status::Killed);
        expectSameResult(Tree, KilledExe->run(Base.Input),
                         "killed variant of base");
        if (Tree.ExecStatus == ExecResult::Status::Killed)
          ++Kills;
      }
    }
  }
  EXPECT_EQ(Modules, 200u);
  // The lowering must actually prove the overwhelming majority of fuzzed
  // modules; otherwise this test only exercises the interpret() fallback.
  EXPECT_GE(LoweredActive, Modules * 9 / 10)
      << "lowering bailed out too often";
  EXPECT_GT(Kills, 0u) << "no OpKill coverage in the differential";
  EXPECT_GT(Faults, 0u) << "no step-limit fault coverage";
}

TEST(LoweredExecTest, KillAgrees) {
  Module M;
  ModuleBuilder Builder(M);
  Builder.addOutput(Builder.getIntType(), 0);
  Function &F = Builder.startFunction(Builder.getVoidType(), {});
  F.Blocks[0].Body.push_back(ModuleBuilder::makeKill());
  Builder.setEntryPoint(F.Def.Result);

  std::shared_ptr<const Executable> Exe =
      Executable::compile(M, ExecEngine::Lowered);
  ASSERT_TRUE(Exe->loweredActive());
  ShaderInput Input;
  ExecResult Tree = interpret(M, Input);
  EXPECT_EQ(Tree.ExecStatus, ExecResult::Status::Killed);
  expectSameResult(Tree, Exe->run(Input), "kill module");
}

// Division edge cases are defined (not faulting) in MiniSPV: x/0 and
// INT_MIN/-1 yield zero. Both engines must implement the same definition.
TEST(LoweredExecTest, DivisionEdgeCasesAgree) {
  Module M;
  ModuleBuilder Builder(M);
  Id IntType = Builder.getIntType();
  Id A = Builder.addUniform(IntType, 0);
  Id B = Builder.addUniform(IntType, 1);
  Id Out = Builder.addOutput(IntType, 0);
  Function &F = Builder.startFunction(Builder.getVoidType(), {});
  Id LoadA = M.Bound++, LoadB = M.Bound++, Div = M.Bound++;
  BasicBlock &Entry = F.Blocks[0];
  Entry.Body.push_back(ModuleBuilder::makeLoad(IntType, LoadA, A));
  Entry.Body.push_back(ModuleBuilder::makeLoad(IntType, LoadB, B));
  Entry.Body.push_back(
      ModuleBuilder::makeBinOp(Op::SDiv, IntType, Div, LoadA, LoadB));
  Entry.Body.push_back(ModuleBuilder::makeStore(Out, Div));
  Entry.Body.push_back(ModuleBuilder::makeReturn());
  Builder.setEntryPoint(F.Def.Result);

  std::shared_ptr<const Executable> Exe =
      Executable::compile(M, ExecEngine::Lowered);
  ASSERT_TRUE(Exe->loweredActive());
  const std::pair<int32_t, int32_t> Cases[] = {
      {5, 0}, {INT_MIN, -1}, {INT_MIN, 0}, {7, -2}, {-7, 2}};
  for (auto [Lhs, Rhs] : Cases) {
    ShaderInput Input;
    Input.Bindings[0] = Value::makeInt(Lhs);
    Input.Bindings[1] = Value::makeInt(Rhs);
    ExecResult Tree = interpret(M, Input);
    ASSERT_EQ(Tree.ExecStatus, ExecResult::Status::Ok);
    expectSameResult(Tree, Exe->run(Input),
                     std::to_string(Lhs) + " / " + std::to_string(Rhs));
  }
}

// Satellite: block-granular step accounting must agree between engines at
// exactly the budget. StepLimit == measured steps succeeds in both; one
// step less faults in both with the same message.
TEST(LoweredExecTest, StepLimitBoundaryAgrees) {
  test::Fixture F;
  std::shared_ptr<const Executable> Exe =
      Executable::compile(F.M, ExecEngine::Lowered);
  ASSERT_TRUE(Exe->loweredActive());
  uint64_t Steps = measureSteps(*Exe, F.Input);
  ASSERT_GT(Steps, 1u);

  InterpreterOptions Exact;
  Exact.StepLimit = Steps;
  EXPECT_EQ(interpret(F.M, F.Input, Exact).ExecStatus,
            ExecResult::Status::Ok);
  EXPECT_EQ(Exe->run(F.Input, Exact).ExecStatus, ExecResult::Status::Ok);

  InterpreterOptions Under;
  Under.StepLimit = Steps - 1;
  ExecResult Tree = interpret(F.M, F.Input, Under);
  ExecResult Lowered = Exe->run(F.Input, Under);
  EXPECT_EQ(Tree.ExecStatus, ExecResult::Status::Fault);
  EXPECT_EQ(Tree.FaultMessage, "step limit exceeded");
  expectSameResult(Tree, Lowered, "one step under the boundary");
}

// Same boundary one layer up: RunContext::StepBudget (the campaign's
// TargetDeadlineSteps) must flip a run from Executed to Timeout at the
// same budget value under both engines.
TEST(LoweredExecTest, TargetStepBudgetBoundaryAgrees) {
  TargetFleet Fleet = TargetFleet::standard();
  const Target &Swift = findTarget(Fleet, "SwiftShader");
  Module Loop = makeLoopModule(2000);
  ASSERT_TRUE(validateModule(Loop).empty());

  std::shared_ptr<const TargetArtifact> Art =
      Swift.compile(Loop, ExecEngine::Lowered);
  ASSERT_FALSE(Art->Crash.has_value());
  ASSERT_NE(Art->Exe, nullptr);
  ShaderInput Input;
  uint64_t Steps = measureSteps(*Art->Exe, Input);
  ASSERT_GT(Steps, Art->CompileCost)
      << "loop too small to isolate the execution budget";

  for (ExecEngine Engine : {ExecEngine::Lowered, ExecEngine::Tree}) {
    RunContext Ctx;
    Ctx.Engine = Engine;
    Ctx.StepBudget = Steps;
    TargetRun AtBudget = Swift.run(Loop, Input, Ctx);
    EXPECT_EQ(AtBudget.RunOutcome, Outcome::Executed)
        << execEngineName(Engine);
    Ctx.StepBudget = Steps - 1;
    TargetRun UnderBudget = Swift.run(Loop, Input, Ctx);
    EXPECT_EQ(UnderBudget.RunOutcome, Outcome::Timeout)
        << execEngineName(Engine);
  }
}

// Post-pipeline equivalence: Target::run through both engines, over every
// executing target in the standard fleet (whose injected bugs produce
// deliberately miscompiled modules — both engines must execute the wrong
// code identically).
TEST(LoweredExecTest, TargetRunEngineEquality) {
  TargetFleet Fleet = TargetFleet::standard();
  std::vector<GeneratedProgram> Bases = generateCorpus(4, 23);
  std::vector<const Module *> Donors;
  FuzzerOptions Options;
  Options.TransformationLimit = 120;
  for (const GeneratedProgram &Base : Bases) {
    FuzzResult Fuzzed = fuzz(Base.M, Base.Input, Donors, 77, Options);
    for (const Target &T : Fleet) {
      if (!T.canExecute() || !T.spec().deterministic())
        continue;
      RunContext TreeCtx, LoweredCtx;
      TreeCtx.Engine = ExecEngine::Tree;
      LoweredCtx.Engine = ExecEngine::Lowered;
      TargetRun Tree = T.run(Fuzzed.Variant, Base.Input, TreeCtx);
      TargetRun Lowered = T.run(Fuzzed.Variant, Base.Input, LoweredCtx);
      ASSERT_EQ(Tree.RunOutcome, Lowered.RunOutcome) << T.spec().Name;
      EXPECT_EQ(Tree.Signature, Lowered.Signature) << T.spec().Name;
      if (Tree.executed())
        expectSameResult(Tree.Result, Lowered.Result, T.spec().Name);
    }
  }
}

TEST(LoweredExecTest, RunBatchMatchesRun) {
  TargetFleet Fleet = TargetFleet::standard();
  const Target &Swift = findTarget(Fleet, "SwiftShader");
  GeneratedProgram Base = generateProgram(31);
  std::vector<ShaderInput> Matrix = uniformInputMatrix(Base.Input, 4, 31);
  std::vector<TargetRun> Batch = Swift.runBatch(Base.M, Matrix);
  ASSERT_EQ(Batch.size(), Matrix.size());
  for (size_t I = 0; I < Matrix.size(); ++I) {
    TargetRun Single = Swift.run(Base.M, Matrix[I]);
    EXPECT_EQ(Batch[I].RunOutcome, Single.RunOutcome) << I;
    EXPECT_EQ(Batch[I].Signature, Single.Signature) << I;
    EXPECT_EQ(Batch[I].Result, Single.Result) << I;
  }
}

// An ExecutableCache hit must replay exactly the counters the real
// compile would have bumped: totals depend only on the number of logical
// compiles, never on cache state (the campaign determinism invariant).
TEST(LoweredExecTest, ExecutableCacheReplayKeepsCounters) {
  TargetFleet Fleet = TargetFleet::standard();
  const Target &Swift = findTarget(Fleet, "SwiftShader");
  test::Fixture F;
  uint64_t ModuleHash = hashModule(F.M);
  std::string CompilesCounter = "target.compiles." + Swift.spec().Name;
  std::string PassCounter =
      std::string("opt.pass_runs.") + optPassName(Swift.spec().Pipeline[0]);

  telemetry::MetricsRegistry &Metrics = telemetry::MetricsRegistry::global();
  Metrics.reset();
  Metrics.setEnabled(true);
  ExecutableCache Cache(64ull << 20);
  std::shared_ptr<const TargetArtifact> First =
      Cache.getOrCompile(Swift, F.M, ExecEngine::Lowered, ModuleHash);
  uint64_t CompilesAfterFirst = Metrics.counterValue(CompilesCounter);
  uint64_t PassesAfterFirst = Metrics.counterValue(PassCounter);
  std::shared_ptr<const TargetArtifact> Second =
      Cache.getOrCompile(Swift, F.M, ExecEngine::Lowered, ModuleHash);
  uint64_t CompilesAfterSecond = Metrics.counterValue(CompilesCounter);
  uint64_t PassesAfterSecond = Metrics.counterValue(PassCounter);
  Metrics.setEnabled(false);
  Metrics.reset();

  EXPECT_EQ(Cache.hitCount(), 1u);
  EXPECT_EQ(Cache.missCount(), 1u);
  EXPECT_EQ(First.get(), Second.get()) << "hit must share the artifact";
  EXPECT_EQ(CompilesAfterSecond, 2 * CompilesAfterFirst)
      << "replayed compile counters diverge from a real compile";
  EXPECT_EQ(PassesAfterSecond, 2 * PassesAfterFirst);

  // A zero-budget cache stores nothing: every call is a miss that
  // compiles fresh, still bumping the same counters.
  ExecutableCache Disabled(0);
  std::shared_ptr<const TargetArtifact> A =
      Disabled.getOrCompile(Swift, F.M, ExecEngine::Lowered, ModuleHash);
  std::shared_ptr<const TargetArtifact> B =
      Disabled.getOrCompile(Swift, F.M, ExecEngine::Lowered, ModuleHash);
  EXPECT_EQ(Disabled.hitCount(), 0u);
  EXPECT_EQ(Disabled.missCount(), 2u);
  EXPECT_NE(A.get(), B.get());
}

} // namespace
