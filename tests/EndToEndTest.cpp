//===- tests/EndToEndTest.cpp - Headline end-to-end scenarios -------------===//
//
// Part of the spirv-fuzz reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Full-workflow scenarios asserting the paper's headline artefacts: the
/// Figure 3 one-attribute delta on SwiftShader, miscompilation detection
/// and reduction, target determinism, and the text format surviving the
/// entire fuzz-report round trip.
///
//===----------------------------------------------------------------------===//

#include "campaign/Campaign.h"
#include "core/ReductionPipeline.h"
#include "ir/Text.h"
#include "TestHelpers.h"

using namespace spvfuzz;
using namespace spvfuzz::test;

namespace {

/// Shared across cases: the fleet is immutable and cheap to reuse.
const TargetFleet &standardFleet() {
  static const TargetFleet Fleet = TargetFleet::standard();
  return Fleet;
}

TEST(EndToEnd, FigureThreeDontInlineDelta) {
  // Fuzz until SwiftShader crashes on the DontInline bug, reduce, and
  // assert the paper's Figure 3 artefact: the reduced variant differs from
  // the original in *zero* instruction count and the minimized sequence is
  // just the attribute toggle.
  const Target *SwiftShader = standardFleet().find("SwiftShader");
  ASSERT_NE(SwiftShader, nullptr);
  Corpus C = makeCorpus(
      CorpusSpec{}.withSeed(3).withReferences(6).withDonors(4));
  ToolConfig Tool =
      standardTools(ToolsetSpec{}.withTransformationLimit(250))[0];
  const char *Signature = bugSignature(BugPoint::CrashDontInlineAttribute);

  bool Found = false;
  for (size_t TestIndex = 0; TestIndex < 200 && !Found; ++TestIndex) {
    size_t Ref = 0;
    FuzzResult Fuzzed = regenerateTest(C, Tool, 3, TestIndex, Ref);
    const GeneratedProgram &Reference = C.References[Ref];
    TargetRun Run = SwiftShader->run(Fuzzed.Variant, Reference.Input);
    if (!Run.interesting() || Run.Signature != Signature)
      continue;
    Found = true;

    InterestingnessTest Test = makeInterestingnessTest(
        *SwiftShader, Signature, Reference.M, Reference.Input);
    ReduceResult Reduced =
        ReductionPipeline(ReductionPlan{})
            .run(Reference.M, Reference.Input, Fuzzed.Sequence, Test);
    ASSERT_EQ(Reduced.Minimized.size(), 1u);
    EXPECT_EQ(Reduced.Minimized[0]->kind(),
              TransformationKind::ToggleDontInline);
    // Figure 3: both programs feature the same number of instructions.
    EXPECT_EQ(Reduced.ReducedVariant.instructionCount(),
              Reference.M.instructionCount());
    std::string Diff = diffModuleText(Reference.M, Reduced.ReducedVariant);
    EXPECT_NE(Diff.find("DontInline"), std::string::npos);
    // One removed and one added line: a single-instruction delta.
    EXPECT_EQ(std::count(Diff.begin(), Diff.end(), '\n'), 2);
  }
  EXPECT_TRUE(Found) << "no DontInline crash in 200 tests";
}

TEST(EndToEnd, MiscompilationDetectedAndReduced) {
  const Target *Mesa = standardFleet().find("Mesa");
  ASSERT_NE(Mesa, nullptr);
  Corpus C = makeCorpus(CorpusSpec{}.withSeed(11));
  ToolConfig Tool =
      standardTools(ToolsetSpec{}.withTransformationLimit(250))[0];

  bool Found = false;
  for (size_t TestIndex = 0; TestIndex < 400 && !Found; ++TestIndex) {
    size_t Ref = 0;
    FuzzResult Fuzzed = regenerateTest(C, Tool, 11, TestIndex, Ref);
    const GeneratedProgram &Reference = C.References[Ref];
    TargetRun Run = Mesa->run(Fuzzed.Variant, Reference.Input);
    if (Run.RunOutcome != Outcome::Executed)
      continue;
    TargetRun OriginalRun = Mesa->run(Reference.M, Reference.Input);
    if (OriginalRun.RunOutcome != Outcome::Executed ||
        Run.Result == OriginalRun.Result)
      continue;
    Found = true;

    InterestingnessTest Test = makeInterestingnessTest(
        *Mesa, MiscompilationSignature, Reference.M, Reference.Input);
    ReduceResult Reduced =
        ReductionPipeline(ReductionPlan{})
            .run(Reference.M, Reference.Input, Fuzzed.Sequence, Test);
    // The reduced variant still renders a different "image".
    EXPECT_TRUE(Test(Reduced.ReducedVariant, Reduced.ReducedFacts));
    // But is still semantically equivalent to the original (Theorem 2.6:
    // the mismatch is the compiler's fault).
    EXPECT_EQ(interpret(Reference.M, Reference.Input),
              interpret(Reduced.ReducedVariant, Reference.Input));
    EXPECT_LE(Reduced.Minimized.size(), 12u);
  }
  EXPECT_TRUE(Found) << "no Mesa miscompilation in 400 tests";
}

TEST(EndToEnd, TargetsAreDeterministic) {
  GeneratedProgram Program = generateProgram(21);
  FuzzerOptions Options;
  Options.TransformationLimit = 200;
  FuzzResult Fuzzed = fuzz(Program.M, Program.Input, {}, 21, Options);
  for (const Target &T : standardFleet()) {
    TargetRun First = T.run(Fuzzed.Variant, Program.Input);
    TargetRun Second = T.run(Fuzzed.Variant, Program.Input);
    EXPECT_EQ(First.RunOutcome, Second.RunOutcome) << T.name();
    EXPECT_EQ(First.Signature, Second.Signature) << T.name();
    if (First.RunOutcome == Outcome::Executed && T.canExecute())
      EXPECT_EQ(First.Result, Second.Result) << T.name();
  }
}

TEST(EndToEnd, CompiledVariantsStayValidUnderEveryTarget) {
  // Whatever a (bug-free w.r.t. crashes) compilation produces must be a
  // valid module — including for fuzzed inputs — unless a *miscompile* bug
  // intentionally broke SSA shape.
  for (uint64_t Seed = 50; Seed < 56; ++Seed) {
    GeneratedProgram Program = generateProgram(Seed);
    FuzzerOptions Options;
    Options.TransformationLimit = 150;
    FuzzResult Fuzzed = fuzz(Program.M, Program.Input, {}, Seed, Options);
    for (const Target &T : standardFleet()) {
      bool HasMiscompileBug = false;
      for (BugPoint Point : T.spec().Bugs.all())
        if (bugSignature(Point) == std::string("<miscompilation>"))
          HasMiscompileBug = true;
      if (HasMiscompileBug)
        continue;
      Module Optimized;
      if (T.compile(Fuzzed.Variant, Optimized))
        continue; // crashed; nothing to validate
      EXPECT_TRUE(isValidModule(Optimized))
          << T.name() << " produced an invalid module from seed " << Seed;
    }
  }
}

TEST(EndToEnd, BugReportSurvivesTextAndSequenceRoundTrip) {
  // A bug report = original text + input + minimized sequence. Rebuilding
  // the reduced variant from the *serialized* artefacts must reproduce the
  // crash — this is what makes reports actionable.
  const Target *NVidia = standardFleet().find("NVIDIA");
  Corpus C = makeCorpus(
      CorpusSpec{}.withSeed(7).withReferences(6).withDonors(4));
  ToolConfig Tool =
      standardTools(ToolsetSpec{}.withTransformationLimit(250))[0];

  for (size_t TestIndex = 0; TestIndex < 120; ++TestIndex) {
    size_t Ref = 0;
    FuzzResult Fuzzed = regenerateTest(C, Tool, 7, TestIndex, Ref);
    const GeneratedProgram &Reference = C.References[Ref];
    TargetRun Run = NVidia->run(Fuzzed.Variant, Reference.Input);
    if (!Run.interesting())
      continue;

    InterestingnessTest Test = makeInterestingnessTest(
        *NVidia, Run.Signature, Reference.M, Reference.Input);
    ReduceResult Reduced =
        ReductionPipeline(ReductionPlan{})
            .run(Reference.M, Reference.Input, Fuzzed.Sequence, Test);

    // Serialize everything, parse back, replay.
    std::string OriginalText = writeModuleText(Reference.M);
    std::string SequenceText = serializeSequence(Reduced.Minimized);
    Module ParsedOriginal;
    std::string Error;
    ASSERT_TRUE(readModuleText(OriginalText, ParsedOriginal, Error)) << Error;
    TransformationSequence ParsedSequence;
    ASSERT_TRUE(deserializeSequence(SequenceText, ParsedSequence, Error))
        << Error;
    Module Rebuilt = ParsedOriginal;
    FactManager Facts;
    Facts.setKnownInput(Reference.Input);
    applySequence(Rebuilt, Facts, ParsedSequence);

    TargetRun RebuiltRun = NVidia->run(Rebuilt, Reference.Input);
    ASSERT_EQ(RebuiltRun.RunOutcome, Outcome::Crash);
    EXPECT_EQ(RebuiltRun.Signature, Run.Signature);
    return; // one crash suffices
  }
  FAIL() << "no NVIDIA crash in 120 tests";
}

} // namespace
