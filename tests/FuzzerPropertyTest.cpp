//===- tests/FuzzerPropertyTest.cpp - Core soundness properties -----------===//
//
// Part of the spirv-fuzz reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Property-based tests of the heart of the paper: every transformation
/// sequence produced by the fuzzer (a) keeps the module valid, (b)
/// preserves Semantics(P, I) (Theorem 2.6's premise), and (c) replays
/// deterministically from its serialized form, including arbitrary
/// subsequences (Definition 2.5) — the property delta-debugging reduction
/// relies on.
///
//===----------------------------------------------------------------------===//

#include "analysis/Validator.h"
#include "core/Fuzzer.h"
#include "exec/Interpreter.h"
#include "gen/Generator.h"
#include "ir/Text.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

using namespace spvfuzz;

namespace {

struct FuzzCase {
  GeneratedProgram Original;
  std::vector<GeneratedProgram> DonorPrograms;
  std::vector<const Module *> Donors;
  FuzzResult Result;
};

FuzzCase runFuzz(uint64_t Seed, uint32_t TransformationLimit = 300) {
  FuzzCase Case;
  Case.Original = generateProgram(Seed);
  Case.DonorPrograms = generateCorpus(3, Seed + 1000);
  for (const GeneratedProgram &Donor : Case.DonorPrograms)
    Case.Donors.push_back(&Donor.M);
  FuzzerOptions Options;
  Options.TransformationLimit = TransformationLimit;
  Case.Result =
      fuzz(Case.Original.M, Case.Original.Input, Case.Donors, Seed, Options);
  return Case;
}

class FuzzerProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(FuzzerProperty, VariantIsValid) {
  FuzzCase Case = runFuzz(GetParam());
  std::vector<std::string> Diags = validateModule(Case.Result.Variant);
  ASSERT_TRUE(Diags.empty())
      << Diags.front() << "\n--- sequence ---\n"
      << serializeSequence(Case.Result.Sequence) << "\n--- variant ---\n"
      << writeModuleText(Case.Result.Variant);
}

TEST_P(FuzzerProperty, SemanticsPreserved) {
  FuzzCase Case = runFuzz(GetParam());
  ExecResult Before = interpret(Case.Original.M, Case.Original.Input);
  ExecResult After = interpret(Case.Result.Variant, Case.Original.Input);
  ASSERT_EQ(Before.ExecStatus, ExecResult::Status::Ok);
  ASSERT_EQ(Before, After)
      << "before: " << Before.str() << "\nafter: " << After.str()
      << "\n--- sequence ---\n"
      << serializeSequence(Case.Result.Sequence);
}

TEST_P(FuzzerProperty, SequenceReplaysToSameVariant) {
  FuzzCase Case = runFuzz(GetParam());
  Module Replayed = Case.Original.M;
  FactManager Facts;
  Facts.setKnownInput(Case.Original.Input);
  std::vector<size_t> Applied =
      applySequence(Replayed, Facts, Case.Result.Sequence);
  // Every transformation the fuzzer applied must replay.
  EXPECT_EQ(Applied.size(), Case.Result.Sequence.size());
  EXPECT_EQ(writeModuleText(Replayed), writeModuleText(Case.Result.Variant));
}

TEST_P(FuzzerProperty, SerializedSequenceRoundTrips) {
  FuzzCase Case = runFuzz(GetParam());
  std::string Text = serializeSequence(Case.Result.Sequence);
  TransformationSequence Reparsed;
  std::string Error;
  ASSERT_TRUE(deserializeSequence(Text, Reparsed, Error)) << Error;
  ASSERT_EQ(Reparsed.size(), Case.Result.Sequence.size());
  EXPECT_EQ(serializeSequence(Reparsed), Text);

  Module Replayed = Case.Original.M;
  FactManager Facts;
  Facts.setKnownInput(Case.Original.Input);
  applySequence(Replayed, Facts, Reparsed);
  EXPECT_EQ(writeModuleText(Replayed), writeModuleText(Case.Result.Variant));
}

/// Definition 2.5 in anger: any subsequence must still produce a valid,
/// semantics-preserving module (transformations whose preconditions fail
/// are skipped). This is precisely the property the reducer depends on.
TEST_P(FuzzerProperty, RandomSubsequencesPreserveSemantics) {
  uint64_t Seed = GetParam();
  FuzzCase Case = runFuzz(Seed, /*TransformationLimit=*/150);
  ExecResult Reference = interpret(Case.Original.M, Case.Original.Input);
  Rng Random(Seed ^ 0xfeedULL);
  for (int Trial = 0; Trial < 4; ++Trial) {
    TransformationSequence Subsequence;
    for (const TransformationPtr &T : Case.Result.Sequence)
      if (Random.flip())
        Subsequence.push_back(T);
    Module Reduced = Case.Original.M;
    FactManager Facts;
    Facts.setKnownInput(Case.Original.Input);
    applySequence(Reduced, Facts, Subsequence);
    std::vector<std::string> Diags = validateModule(Reduced);
    ASSERT_TRUE(Diags.empty())
        << "trial " << Trial << ": " << Diags.front() << "\n"
        << serializeSequence(Subsequence);
    EXPECT_EQ(Reference, interpret(Reduced, Case.Original.Input))
        << "trial " << Trial;
  }
}

TEST_P(FuzzerProperty, FuzzingIsDeterministic) {
  FuzzCase A = runFuzz(GetParam(), 100);
  FuzzCase B = runFuzz(GetParam(), 100);
  EXPECT_EQ(writeModuleText(A.Result.Variant), writeModuleText(B.Result.Variant));
  EXPECT_EQ(serializeSequence(A.Result.Sequence),
            serializeSequence(B.Result.Sequence));
}

TEST_P(FuzzerProperty, FuzzerAppliesSomething) {
  // The probabilistic stop can end a run early, so per-seed expectations
  // stay weak; FuzzerTransformsSubstantiallyOnAverage covers volume.
  FuzzCase Case = runFuzz(GetParam());
  EXPECT_GE(Case.Result.Variant.instructionCount(),
            Case.Original.M.instructionCount());
}

TEST(FuzzerVolume, FuzzerTransformsSubstantiallyOnAverage) {
  size_t TotalTransformations = 0;
  size_t TotalGrowth = 0;
  for (uint64_t Seed = 100; Seed < 112; ++Seed) {
    FuzzCase Case = runFuzz(Seed);
    TotalTransformations += Case.Result.Sequence.size();
    TotalGrowth += Case.Result.Variant.instructionCount() -
                   Case.Original.M.instructionCount();
  }
  EXPECT_GT(TotalTransformations / 12, 40u);
  EXPECT_GT(TotalGrowth / 12, 20u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzerProperty,
                         ::testing::Range<uint64_t>(0, 12));

} // namespace
