//===- tests/StoreCampaignTest.cpp - Checkpoint/resume and merge ----------===//
//
// Part of the spirv-fuzz reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The persistence contract of ISSUE 5: a campaign interrupted at an
/// arbitrary checkpoint and resumed — at any job count — produces results
/// byte-identical to an uninterrupted serial run; merging two disjoint
/// stores yields the same bucket table as accumulating both campaigns into
/// one store; reopening a recorded campaign without Resume is refused.
///
//===----------------------------------------------------------------------===//

#include "store/CampaignStore.h"

#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>

using namespace spvfuzz;

namespace {

std::string uniqueDir(const std::string &Hint) {
  static int Counter = 0;
  return ::testing::TempDir() + "spvfuzz-store-" + Hint + "-" +
         std::to_string(::getpid()) + "-" + std::to_string(Counter++);
}

/// Forwards to a real store but throws (a simulated crash) when the save
/// budget runs out — before the inner save, like a crash mid-commit.
class AbortAfter : public CampaignCheckpointer {
public:
  AbortAfter(CampaignCheckpointer &Inner, size_t Saves)
      : Inner(Inner), Remaining(Saves) {}

  bool loadEvaluation(const std::string &Phase,
                      EvaluationCheckpoint &Out) override {
    return Inner.loadEvaluation(Phase, Out);
  }
  void saveEvaluation(const EvaluationCheckpoint &Checkpoint) override {
    spend();
    Inner.saveEvaluation(Checkpoint);
  }
  bool loadReduction(const std::string &Phase,
                     ReductionCheckpoint &Out) override {
    return Inner.loadReduction(Phase, Out);
  }
  void saveReduction(const ReductionCheckpoint &Checkpoint) override {
    spend();
    Inner.saveReduction(Checkpoint);
  }
  void recordReproducer(const ReductionRecord &Record, const Module &Original,
                        const ShaderInput &Input, const Module &Reduced,
                        const TransformationSequence &Minimized) override {
    Inner.recordReproducer(Record, Original, Input, Reduced, Minimized);
  }

private:
  void spend() {
    if (Remaining == 0)
      throw std::runtime_error("simulated crash at checkpoint");
    --Remaining;
  }

  CampaignCheckpointer &Inner;
  size_t Remaining;
};

/// Forwards to a real store, counting checkpoint saves.
class CountingCheckpointer : public CampaignCheckpointer {
public:
  explicit CountingCheckpointer(CampaignCheckpointer &Inner) : Inner(Inner) {}

  size_t Saves = 0;

  bool loadEvaluation(const std::string &Phase,
                      EvaluationCheckpoint &Out) override {
    return Inner.loadEvaluation(Phase, Out);
  }
  void saveEvaluation(const EvaluationCheckpoint &Checkpoint) override {
    ++Saves;
    Inner.saveEvaluation(Checkpoint);
  }
  bool loadReduction(const std::string &Phase,
                     ReductionCheckpoint &Out) override {
    return Inner.loadReduction(Phase, Out);
  }
  void saveReduction(const ReductionCheckpoint &Checkpoint) override {
    ++Saves;
    Inner.saveReduction(Checkpoint);
  }
  void recordReproducer(const ReductionRecord &Record, const Module &Original,
                        const ShaderInput &Input, const Module &Reduced,
                        const TransformationSequence &Minimized) override {
    Inner.recordReproducer(Record, Original, Input, Reduced, Minimized);
  }

private:
  CampaignCheckpointer &Inner;
};

constexpr size_t Tests = 40; // two waves per tool at ShardSize 32

ExecutionPolicy policyFor(uint64_t Seed, size_t Jobs) {
  return ExecutionPolicy{}.withSeed(Seed).withJobs(Jobs)
      .withTransformationLimit(120);
}

/// Every result-shaping decision of a full campaign (bug finding followed
/// by dedup) flattened to one comparable string.
std::string runCampaign(const ExecutionPolicy &Policy,
                        CampaignCheckpointer *Checkpointer) {
  CampaignEngine Engine(Policy, CorpusSpec{}, ToolsetSpec{}, TargetFleet{});
  if (Checkpointer)
    Engine.setCheckpointer(Checkpointer);

  BugFindingConfig Config;
  Config.TestsPerTool = Tests;
  BugFindingData Data = Engine.runBugFinding(Config);

  std::ostringstream Out;
  for (const std::string &Tool : Data.ToolNames)
    for (const std::string &Target : Data.TargetNames) {
      Out << Tool << "/" << Target << ":";
      for (const std::string &Signature : Data.Stats[Tool][Target].Distinct)
        Out << " {" << Signature << "}";
      Out << "\n";
    }

  ReductionConfig RC;
  RC.TestsPerTool = Tests;
  DedupData Dedup = Engine.runDedup(RC);
  for (const DedupTargetResult &Row : Dedup.PerTarget)
    Out << "dedup " << Row.TargetName << " " << Row.Tests << " " << Row.Sigs
        << " " << Row.Reports << " " << Row.Distinct << " " << Row.Dups
        << "\n";
  return Out.str();
}

/// Interrupts a stored campaign after \p CrashAfterSaves checkpoint saves,
/// then resumes it at \p ResumeJobs and returns the resumed run's results.
std::string crashAndResume(const std::string &Dir, uint64_t Seed,
                           size_t CrashAfterSaves, size_t ResumeJobs) {
  ExecutionPolicy Fresh = policyFor(Seed, 1);
  std::string Error;
  {
    std::unique_ptr<CampaignStore> Store =
        CampaignStore::open(Dir, Fresh, Error);
    EXPECT_NE(Store, nullptr) << Error;
    AbortAfter Crashing(*Store, CrashAfterSaves);
    EXPECT_THROW(runCampaign(Fresh, &Crashing), std::runtime_error);
  }
  ExecutionPolicy Resumed = policyFor(Seed, ResumeJobs).withResume(true);
  std::unique_ptr<CampaignStore> Store =
      CampaignStore::open(Dir, Resumed, Error);
  EXPECT_NE(Store, nullptr) << Error;
  return runCampaign(Resumed, Store.get());
}

TEST(StoreCampaign, DurableRunMatchesPlainRun) {
  std::string Baseline = runCampaign(policyFor(5, 1), nullptr);
  std::string Dir = uniqueDir("durable");
  std::string Error;
  std::unique_ptr<CampaignStore> Store =
      CampaignStore::open(Dir, policyFor(5, 1), Error);
  ASSERT_NE(Store, nullptr) << Error;
  EXPECT_EQ(runCampaign(policyFor(5, 1), Store.get()), Baseline);
  EXPECT_FALSE(Store->manifest().Campaigns.empty());
}

TEST(StoreCampaign, CrashedThenResumedRunIsByteIdentical) {
  std::string Baseline = runCampaign(policyFor(5, 1), nullptr);

  // Learn how many checkpoint saves a full campaign performs, so the
  // simulated crashes below are guaranteed to fire.
  size_t TotalSaves;
  {
    std::string Dir = uniqueDir("count");
    std::string Error;
    std::unique_ptr<CampaignStore> Store =
        CampaignStore::open(Dir, policyFor(5, 1), Error);
    ASSERT_NE(Store, nullptr) << Error;
    CountingCheckpointer Counting(*Store);
    ASSERT_EQ(runCampaign(policyFor(5, 1), &Counting), Baseline);
    TotalSaves = Counting.Saves;
    ASSERT_GT(TotalSaves, 4u);
  }

  // Crash at several different checkpoints: before the very first save,
  // early and midway through, and at the final save.
  for (size_t CrashAfterSaves :
       {size_t(0), TotalSaves / 4, TotalSaves / 2, TotalSaves - 1}) {
    std::string Dir =
        uniqueDir("crash" + std::to_string(CrashAfterSaves));
    EXPECT_EQ(crashAndResume(Dir, 5, CrashAfterSaves, 1), Baseline)
        << "crash after " << CrashAfterSaves << " saves";
  }
}

TEST(StoreCampaign, ResumeAtEightJobsIsByteIdentical) {
  std::string Baseline = runCampaign(policyFor(5, 1), nullptr);
  EXPECT_EQ(crashAndResume(uniqueDir("jobs8"), 5, 5, 8), Baseline);
}

TEST(StoreCampaign, ReopenWithoutResumeIsRefused) {
  std::string Dir = uniqueDir("refuse");
  std::string Error;
  std::unique_ptr<CampaignStore> Store =
      CampaignStore::open(Dir, policyFor(5, 1), Error);
  ASSERT_NE(Store, nullptr) << Error;
  runCampaign(policyFor(5, 1), Store.get());
  Store.reset();

  // Same campaign without --resume: refused with a pointer to --resume.
  Store = CampaignStore::open(Dir, policyFor(5, 1), Error);
  EXPECT_EQ(Store, nullptr);
  EXPECT_NE(Error.find("--resume"), std::string::npos) << Error;

  // A different seed is a different campaign: accumulation is fine.
  Store = CampaignStore::open(Dir, policyFor(9, 1), Error);
  EXPECT_NE(Store, nullptr) << Error;
}

std::string bucketTable(const CampaignStore &Store) {
  std::ostringstream Out;
  for (const BugBucket &Bucket : Store.aggregatedBuckets())
    Out << Bucket.Target << "|" << Bucket.Signature << "|" << Bucket.TypesKey
        << "|" << Bucket.Dir << "|" << Bucket.Count << "\n";
  return Out.str();
}

TEST(StoreCampaign, MergeOfDisjointStoresEqualsCombinedCampaign) {
  std::string DirA = uniqueDir("mergeA"), DirB = uniqueDir("mergeB"),
              DirC = uniqueDir("combined");
  std::string Error;

  std::unique_ptr<CampaignStore> A =
      CampaignStore::open(DirA, policyFor(5, 1), Error);
  ASSERT_NE(A, nullptr) << Error;
  runCampaign(policyFor(5, 1), A.get());

  std::unique_ptr<CampaignStore> B =
      CampaignStore::open(DirB, policyFor(9, 1), Error);
  ASSERT_NE(B, nullptr) << Error;
  runCampaign(policyFor(9, 1), B.get());

  // The combined store runs both campaigns back to back.
  {
    std::unique_ptr<CampaignStore> C =
        CampaignStore::open(DirC, policyFor(5, 1), Error);
    ASSERT_NE(C, nullptr) << Error;
    runCampaign(policyFor(5, 1), C.get());
  }
  {
    std::unique_ptr<CampaignStore> C =
        CampaignStore::open(DirC, policyFor(9, 1), Error);
    ASSERT_NE(C, nullptr) << Error;
    runCampaign(policyFor(9, 1), C.get());
  }

  ASSERT_TRUE(A->merge(*B, Error)) << Error;
  std::unique_ptr<CampaignStore> C = CampaignStore::openForTools(DirC, Error);
  ASSERT_NE(C, nullptr) << Error;
  EXPECT_EQ(bucketTable(*A), bucketTable(*C));

  // Merging again is a no-op: B's campaign id is already present.
  std::string Before = bucketTable(*A);
  ASSERT_TRUE(A->merge(*B, Error)) << Error;
  EXPECT_EQ(bucketTable(*A), Before);

  // The merged store survives a reopen from disk.
  A.reset();
  std::unique_ptr<CampaignStore> Reopened =
      CampaignStore::openForTools(DirA, Error);
  ASSERT_NE(Reopened, nullptr) << Error;
  EXPECT_EQ(bucketTable(*Reopened), Before);
}

TEST(StoreCampaign, GcEvictsFarthestFirstUnderBudget) {
  std::string Dir = uniqueDir("gc");
  std::string Error;
  std::unique_ptr<CampaignStore> Store =
      CampaignStore::open(Dir, policyFor(5, 1), Error);
  ASSERT_NE(Store, nullptr) << Error;
  runCampaign(policyFor(5, 1), Store.get());

  std::vector<std::string> Before = Store->corpusFiles();
  ASSERT_GT(Before.size(), 2u);
  size_t Bytes = Store->corpusBytes();
  ASSERT_GT(Bytes, 0u);

  // A generous budget evicts nothing.
  EXPECT_EQ(Store->gc(Bytes), 0u);
  EXPECT_EQ(Store->corpusFiles(), Before);

  // Halving the budget thins the corpus but keeps the newest entry.
  size_t Removed = Store->gc(Bytes / 2);
  EXPECT_GT(Removed, 0u);
  EXPECT_LE(Store->corpusBytes(), Bytes / 2);
  std::vector<std::string> After = Store->corpusFiles();
  ASSERT_FALSE(After.empty());
  EXPECT_EQ(After.back(), Before.back());

  // Budget zero clears it entirely.
  Store->gc(0);
  EXPECT_EQ(Store->corpusBytes(), 0u);
  EXPECT_TRUE(Store->corpusFiles().empty());
}

} // namespace
