//===- tests/ServeScaleoutTest.cpp - Multi-worker campaign equivalence ----===//
//
// Part of the spirv-fuzz reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The scale-out flagship invariant: a campaign distributed over K
/// workers leasing shards from the ledger produces output byte-identical
/// to the serial run — same bug stats, same decision journal bytes, same
/// checkpoint file bytes — including the crash matrix: a worker dying at
/// every shard boundary, mid-publish (torn result frame) and mid-shard
/// (abandoned lease recovered by expiry). Workers here run in-process on
/// threads against the same on-disk ledger the real `minispv worker`
/// processes use; the flock/atomic-rename discipline is identical.
///
//===----------------------------------------------------------------------===//

#include "obs/Journal.h"
#include "serve/Coordinator.h"
#include "serve/Worker.h"
#include "store/CampaignStore.h"
#include "store/Serde.h"

#include <gtest/gtest.h>

#include <map>
#include <thread>

#include <dirent.h>
#include <sys/stat.h>
#include <unistd.h>

using namespace spvfuzz;
using namespace spvfuzz::serve;

namespace {

std::string uniqueDir(const std::string &Hint) {
  static int Counter = 0;
  return ::testing::TempDir() + "spvfuzz-scaleout-" + Hint + "-" +
         std::to_string(::getpid()) + "-" + std::to_string(Counter++);
}

ExecutionPolicy testPolicy(const std::string &StoreDir) {
  ExecutionPolicy Policy;
  Policy.Jobs = 1;
  Policy.Seed = 77;
  Policy.TransformationLimit = 40;
  Policy.StorePath = StoreDir;
  return Policy;
}

struct RunOutput {
  BugFindingData Data;
  /// The decision journal (events.jsonl), whole-file bytes.
  std::string Journal;
  /// checkpoint/ file name -> bytes (metrics.json excluded: its gauges
  /// carry wall-clock values, deliberately outside the equivalence
  /// surface).
  std::map<std::string, std::string> Checkpoints;
  size_t Expiries = 0;
  size_t Folded = 0;
};

void collectArtifacts(const std::string &Dir, RunOutput &Out) {
  std::string Error;
  ASSERT_TRUE(
      readFileBytes(obs::journalPathFor(Dir), Out.Journal, Error))
      << Error;
  const std::string CheckpointDir = Dir + "/checkpoint";
  DIR *D = ::opendir(CheckpointDir.c_str());
  ASSERT_NE(D, nullptr);
  while (struct dirent *Entry = ::readdir(D)) {
    std::string Name = Entry->d_name;
    if (Name == "." || Name == ".." || Name == "metrics.json")
      continue;
    std::string Bytes;
    ASSERT_TRUE(readFileBytes(CheckpointDir + "/" + Name, Bytes, Error))
        << Error;
    Out.Checkpoints[Name] = std::move(Bytes);
  }
  ::closedir(D);
}

RunOutput runSerial(const std::string &Dir, size_t Tests,
                    bool Faulty = false, uint32_t QuarantineThreshold = 0) {
  ExecutionPolicy Policy = testPolicy(Dir);
  if (QuarantineThreshold)
    Policy.QuarantineThreshold = QuarantineThreshold;
  std::string Error;
  std::unique_ptr<CampaignStore> Store =
      CampaignStore::open(Dir, Policy, Error);
  EXPECT_TRUE(Store) << Error;
  std::unique_ptr<obs::JournalWriter> Journal = obs::JournalWriter::open(
      Dir, /*Resume=*/false, /*Deterministic=*/true, Error);
  EXPECT_TRUE(Journal) << Error;
  obs::JournalObserver Observer(*Journal);
  CampaignEngine Engine(Policy, CorpusSpec{}, ToolsetSpec{},
                        Faulty ? TargetFleet::faulty() : TargetFleet{});
  Engine.setCheckpointer(Store.get());
  Engine.setObserver(&Observer);
  BugFindingConfig Config;
  Config.TestsPerTool = Tests;
  RunOutput Out;
  Out.Data = Engine.runBugFinding(Config);
  Journal->commit();
  collectArtifacts(Dir, Out);
  return Out;
}

/// A serve-mode run with in-process workers on threads (attach mode:
/// Workers=0, so the coordinator spawns nothing and the threads play the
/// worker processes). CollectMetrics stays off — in-process workers share
/// the global registry with the coordinator, and shipping deltas would
/// double-count; metric parity is the CLI smoke's job, where workers are
/// real processes.
RunOutput runServe(const std::string &Dir, size_t Tests,
                   std::vector<WorkerOptions> Workers,
                   uint64_t LeaseTtlMs = 60000, bool Faulty = false,
                   uint32_t QuarantineThreshold = 0) {
  ExecutionPolicy Policy = testPolicy(Dir);
  if (QuarantineThreshold)
    Policy.QuarantineThreshold = QuarantineThreshold;
  std::string Error;
  std::unique_ptr<CampaignStore> Store =
      CampaignStore::open(Dir, Policy, Error);
  EXPECT_TRUE(Store) << Error;
  std::unique_ptr<obs::JournalWriter> Journal = obs::JournalWriter::open(
      Dir, /*Resume=*/false, /*Deterministic=*/true, Error);
  EXPECT_TRUE(Journal) << Error;
  std::unique_ptr<obs::JournalWriter> ServeJournal =
      obs::JournalWriter::openAt(obs::servePathFor(Dir), /*Resume=*/false,
                                 /*Deterministic=*/true, Error);
  EXPECT_TRUE(ServeJournal) << Error;
  obs::JournalObserver Observer(*Journal);
  CampaignEngine Engine(Policy, CorpusSpec{}, ToolsetSpec{},
                        Faulty ? TargetFleet::faulty() : TargetFleet{});
  Engine.setCheckpointer(Store.get());
  Engine.setObserver(&Observer);

  ServeOptions SOpts;
  SOpts.StoreDir = Dir;
  SOpts.Workers = 0; // attach mode
  SOpts.PollMs = 2;
  SOpts.LeaseTtlMs = LeaseTtlMs;
  SOpts.StallMs = 60000; // in-process workers: inline fallback is a bug
  SOpts.ServeJournal = ServeJournal.get();
  ServeCoordinator Coordinator(Engine, SOpts);

  WorkerConfigMsg WC;
  WC.CampaignId = Store->campaignId();
  WC.Seed = Policy.Seed;
  WC.TransformationLimit = Policy.TransformationLimit;
  WC.TargetDeadlineSteps = Policy.TargetDeadlineSteps;
  WC.FlakyRetries = Policy.FlakyRetries;
  WC.QuarantineThreshold = Policy.QuarantineThreshold;
  WC.Engine = static_cast<uint8_t>(Policy.Engine);
  WC.UniformInputs = Policy.UniformInputs;
  WC.FaultyFleet = Faulty ? 1 : 0;
  WC.Tests = Tests;
  WC.LeaseTtlMs = LeaseTtlMs;
  EXPECT_TRUE(Coordinator.start(WC, Error)) << Error;
  Engine.setShardProvider(&Coordinator);

  std::vector<std::thread> Threads;
  for (WorkerOptions WO : Workers) {
    WO.StoreDir = Dir;
    WO.PollMs = 2;
    Threads.emplace_back([WO] {
      ShardWorker Worker(WO);
      std::string WorkerError;
      Worker.run(WorkerError);
    });
  }

  BugFindingConfig Config;
  Config.TestsPerTool = Tests;
  RunOutput Out;
  Out.Data = Engine.runBugFinding(Config);
  Coordinator.shutdown(); // DONE goes down; idle workers drain and exit
  for (std::thread &T : Threads)
    T.join();
  Out.Expiries = Coordinator.leaseExpiries();
  Out.Folded = Coordinator.shardsFolded();
  Journal->commit();
  collectArtifacts(Dir, Out);
  return Out;
}

void expectIdentical(const RunOutput &Serial, const RunOutput &Serve,
                     const std::string &Label) {
  EXPECT_EQ(Serial.Data.ToolNames, Serve.Data.ToolNames) << Label;
  EXPECT_EQ(Serial.Data.TargetNames, Serve.Data.TargetNames) << Label;
  for (const auto &[Tool, PerTarget] : Serial.Data.Stats)
    for (const auto &[Target, Stats] : PerTarget) {
      const ToolTargetStats &Other = Serve.Data.Stats.at(Tool).at(Target);
      EXPECT_EQ(Stats.Distinct, Other.Distinct)
          << Label << ": " << Tool << "/" << Target;
      EXPECT_EQ(Stats.PerGroup, Other.PerGroup)
          << Label << ": " << Tool << "/" << Target;
    }
  EXPECT_EQ(Serial.Journal, Serve.Journal)
      << Label << ": decision journals diverge";
  EXPECT_EQ(Serial.Checkpoints.size(), Serve.Checkpoints.size()) << Label;
  for (const auto &[Name, Bytes] : Serial.Checkpoints) {
    auto It = Serve.Checkpoints.find(Name);
    ASSERT_NE(It, Serve.Checkpoints.end())
        << Label << ": missing checkpoint " << Name;
    EXPECT_EQ(Bytes, It->second)
        << Label << ": checkpoint " << Name << " diverges";
  }
}

WorkerOptions workerOpts(uint64_t Id) {
  WorkerOptions WO;
  WO.WorkerId = Id;
  return WO;
}

TEST(ServeScaleout, TwoWorkersMatchSerial) {
  constexpr size_t Tests = 48;
  RunOutput Serial = runSerial(uniqueDir("serial"), Tests);
  RunOutput Serve = runServe(uniqueDir("serve2"), Tests,
                             {workerOpts(1), workerOpts(2)});
  EXPECT_GT(Serve.Folded, 0u);
  expectIdentical(Serial, Serve, "2 workers");
}

TEST(ServeScaleout, FourWorkersMatchSerial) {
  constexpr size_t Tests = 48;
  RunOutput Serial = runSerial(uniqueDir("serial4"), Tests);
  RunOutput Serve =
      runServe(uniqueDir("serve4"), Tests,
               {workerOpts(1), workerOpts(2), workerOpts(3), workerOpts(4)});
  expectIdentical(Serial, Serve, "4 workers");
}

// The lease-ledger crash matrix: worker 1 exits cleanly after k shards
// for every k up to the total shard count (a kill -9 at each shard
// boundary); worker 2 picks up the remainder. Every run must be
// byte-identical to the uninterrupted serial run.
TEST(ServeScaleout, CrashMatrixAtEveryShardBoundary) {
  constexpr size_t Tests = 32; // one wave per tool -> 3 shards total
  RunOutput Serial = runSerial(uniqueDir("cm-serial"), Tests);
  for (uint64_t Boundary = 1; Boundary <= 3; ++Boundary) {
    WorkerOptions Dying = workerOpts(1);
    Dying.MaxShards = Boundary;
    RunOutput Serve =
        runServe(uniqueDir("cm-" + std::to_string(Boundary)), Tests,
                 {Dying, workerOpts(2)});
    expectIdentical(Serial, Serve,
                    "death at boundary " + std::to_string(Boundary));
  }
}

// A worker killed mid-publish leaves a torn result frame and an
// uncompleted lease: the coordinator must reject the frame by checksum,
// fence the generation, and have the shard recomputed.
TEST(ServeScaleout, TornResultFrameIsRetiredAndRecomputed) {
  constexpr size_t Tests = 32;
  RunOutput Serial = runSerial(uniqueDir("torn-serial"), Tests);
  WorkerOptions Dying = workerOpts(1);
  Dying.MaxShards = 1;
  Dying.TruncateLastResult = true;
  RunOutput Serve =
      runServe(uniqueDir("torn-serve"), Tests, {Dying, workerOpts(2)});
  expectIdentical(Serial, Serve, "torn result");
}

// A worker killed mid-shard holds a lease it will never complete: the
// coordinator expires it after the TTL, bumps the generation, and the
// surviving worker recomputes — no shard lost, none double-counted.
TEST(ServeScaleout, AbandonedLeaseIsExpiredAndReLeased) {
  constexpr size_t Tests = 32;
  RunOutput Serial = runSerial(uniqueDir("ab-serial"), Tests);
  WorkerOptions Dying = workerOpts(1);
  Dying.AbandonAfterShards = 1;
  RunOutput Serve = runServe(uniqueDir("ab-serve"), Tests,
                             {Dying, workerOpts(2)}, /*LeaseTtlMs=*/100);
  EXPECT_GT(Serve.Expiries, 0u)
      << "the abandoned lease should have expired";
  expectIdentical(Serial, Serve, "abandoned lease");
}

// Faulty fleet: quarantine decisions are made in the coordinator's
// serial fold and move the shard mask mid-phase; workers that computed
// under a stale mask are re-queued. The decision journal (including
// TargetQuarantined events) must still match the serial run byte for
// byte.
TEST(ServeScaleout, FaultyFleetQuarantineMaskMatchesSerial) {
  constexpr size_t Tests = 64;
  RunOutput Serial = runSerial(uniqueDir("ff-serial"), Tests,
                               /*Faulty=*/true, /*QuarantineThreshold=*/2);
  EXPECT_NE(Serial.Journal.find("TargetQuarantined"), std::string::npos)
      << "expected the faulty fleet to quarantine a target in this run";
  RunOutput Serve =
      runServe(uniqueDir("ff-serve"), Tests, {workerOpts(1), workerOpts(2)},
               /*LeaseTtlMs=*/60000, /*Faulty=*/true,
               /*QuarantineThreshold=*/2);
  expectIdentical(Serial, Serve, "faulty fleet");
}

TEST(ServeScaleout, MergeFromDirectoryFoldsEveryStore) {
  // Two disjoint campaigns in two stores under one directory...
  std::string Parent = uniqueDir("mergedir");
  ::mkdir(Parent.c_str(), 0755);
  runSerial(Parent + "/a", 32);
  {
    ExecutionPolicy Policy = testPolicy(Parent + "/b");
    Policy.Seed = 78; // a different campaign
    std::string Error;
    std::unique_ptr<CampaignStore> Store =
        CampaignStore::open(Parent + "/b", Policy, Error);
    ASSERT_TRUE(Store) << Error;
    CampaignEngine Engine(Policy);
    Engine.setCheckpointer(Store.get());
    BugFindingConfig Config;
    Config.TestsPerTool = 32;
    Engine.runBugFinding(Config);
  }
  // ...plus a non-store subdirectory that must be skipped, not fatal.
  ::mkdir((Parent + "/junk").c_str(), 0755);

  std::string Dest = uniqueDir("mergedst");
  ExecutionPolicy Policy = testPolicy(Dest);
  Policy.Seed = 79;
  std::string Error;
  std::unique_ptr<CampaignStore> Store =
      CampaignStore::open(Dest, Policy, Error);
  ASSERT_TRUE(Store) << Error;
  size_t Merged = 0, Skipped = 0;
  ASSERT_TRUE(Store->mergeFromDirectory(Parent, Merged, Skipped, Error))
      << Error;
  EXPECT_EQ(Merged, 2u);
  EXPECT_EQ(Skipped, 1u);
  // Both merged campaigns are in the manifest (the destination's own
  // campaign only registers once it actually runs and checkpoints).
  EXPECT_EQ(Store->manifest().Campaigns.size(), 2u);

  // Merging again is idempotent: same campaigns, nothing duplicated.
  ASSERT_TRUE(Store->mergeFromDirectory(Parent, Merged, Skipped, Error))
      << Error;
  EXPECT_EQ(Store->manifest().Campaigns.size(), 2u);
}

} // namespace
