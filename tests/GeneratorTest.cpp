//===- tests/GeneratorTest.cpp - Generator + validator + interpreter ------===//
//
// Part of the spirv-fuzz reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "analysis/Validator.h"
#include "exec/Interpreter.h"
#include "gen/Generator.h"
#include "ir/Text.h"

#include <gtest/gtest.h>

using namespace spvfuzz;

namespace {

TEST(Generator, ProducesValidModules) {
  for (uint64_t Seed = 0; Seed < 50; ++Seed) {
    GeneratedProgram Program = generateProgram(Seed);
    std::vector<std::string> Diags = validateModule(Program.M);
    EXPECT_TRUE(Diags.empty())
        << "seed " << Seed << ": " << Diags.front() << "\n"
        << writeModuleText(Program.M);
  }
}

TEST(Generator, ProgramsExecuteToCompletion) {
  for (uint64_t Seed = 0; Seed < 50; ++Seed) {
    GeneratedProgram Program = generateProgram(Seed);
    ExecResult Result = interpret(Program.M, Program.Input);
    EXPECT_EQ(Result.ExecStatus, ExecResult::Status::Ok)
        << "seed " << Seed << ": " << Result.str();
    EXPECT_FALSE(Result.Outputs.empty()) << "seed " << Seed;
  }
}

TEST(Generator, ExecutionIsDeterministic) {
  for (uint64_t Seed = 0; Seed < 10; ++Seed) {
    GeneratedProgram Program = generateProgram(Seed);
    ExecResult First = interpret(Program.M, Program.Input);
    ExecResult Second = interpret(Program.M, Program.Input);
    EXPECT_EQ(First, Second) << "seed " << Seed;
  }
}

TEST(Generator, SameSeedSameProgram) {
  GeneratedProgram A = generateProgram(42);
  GeneratedProgram B = generateProgram(42);
  EXPECT_EQ(writeModuleText(A.M), writeModuleText(B.M));
}

TEST(Generator, DifferentSeedsDifferentPrograms) {
  GeneratedProgram A = generateProgram(1);
  GeneratedProgram B = generateProgram(2);
  EXPECT_NE(writeModuleText(A.M), writeModuleText(B.M));
}

TEST(Generator, CorpusHasRequestedSize) {
  std::vector<GeneratedProgram> Corpus = generateCorpus(21, 7);
  EXPECT_EQ(Corpus.size(), 21u);
}

TEST(Generator, ProgramsAreReasonablySized) {
  // Reference programs should be non-trivial (the paper uses shaders with
  // hundreds of instructions).
  size_t Total = 0;
  for (uint64_t Seed = 0; Seed < 20; ++Seed)
    Total += generateProgram(Seed).M.instructionCount();
  EXPECT_GT(Total / 20, 60u);
}

TEST(Generator, TextRoundTrips) {
  for (uint64_t Seed = 0; Seed < 10; ++Seed) {
    GeneratedProgram Program = generateProgram(Seed);
    std::string Text = writeModuleText(Program.M);
    Module Reparsed;
    std::string Error;
    ASSERT_TRUE(readModuleText(Text, Reparsed, Error)) << Error;
    EXPECT_EQ(Text, writeModuleText(Reparsed));
    EXPECT_TRUE(isValidModule(Reparsed));
    EXPECT_EQ(interpret(Program.M, Program.Input),
              interpret(Reparsed, Program.Input));
  }
}

} // namespace
