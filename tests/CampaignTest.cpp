//===- tests/CampaignTest.cpp - Campaign and experiment integration -------===//
//
// Part of the spirv-fuzz reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Integration tests for the gfauto analogue and the experiment drivers:
/// determinism of test generation, detection of both bug classes,
/// interestingness-test behaviour, the function shrinker, and small-scale
/// shape checks of the Table 3 / RQ2 / Table 4 pipelines.
///
//===----------------------------------------------------------------------===//

#include "campaign/CampaignEngine.h"
#include "campaign/Experiments.h"
#include "core/FunctionShrinker.h"
#include "core/TransformationUtil.h"
#include "core/Transformations.h"
#include "ir/Text.h"
#include "TestHelpers.h"

using namespace spvfuzz;
using namespace spvfuzz::test;

namespace {

TEST(Campaign, CorpusHasPaperCounts) {
  Corpus C = makeCorpus(CorpusSpec{}.withSeed(5));
  EXPECT_EQ(C.References.size(), 21u);
  EXPECT_EQ(C.DonorPrograms.size(), 43u);
  EXPECT_EQ(C.Donors.size(), 43u);
}

TEST(Campaign, StandardToolsMatchTableThreeConfigurations) {
  std::vector<ToolConfig> Tools = standardTools(ToolsetSpec{});
  ASSERT_EQ(Tools.size(), 3u);
  EXPECT_EQ(Tools[0].Name, "spirv-fuzz");
  EXPECT_TRUE(Tools[0].Options.EnableRecommendations);
  EXPECT_EQ(Tools[0].Options.Profile, FuzzerProfile::Full);
  EXPECT_EQ(Tools[0].SeedStream, 0u);
  EXPECT_EQ(Tools[1].Name, "spirv-fuzz-simple");
  EXPECT_FALSE(Tools[1].Options.EnableRecommendations);
  EXPECT_EQ(Tools[1].Options.Profile, FuzzerProfile::Full);
  EXPECT_EQ(Tools[1].SeedStream, 1u);
  EXPECT_EQ(Tools[2].Name, "glsl-fuzz");
  EXPECT_EQ(Tools[2].Options.Profile, FuzzerProfile::Baseline);
  EXPECT_EQ(Tools[2].SeedStream, 2u);
}

TEST(Campaign, ToolsetSpecFilteringKeepsSeedStreams) {
  std::vector<ToolConfig> Filtered =
      standardTools(ToolsetSpec{}.withTool("glsl-fuzz"));
  ASSERT_EQ(Filtered.size(), 1u);
  EXPECT_EQ(Filtered[0].Name, "glsl-fuzz");
  // Filtering must not reassign the stream: the surviving tool's per-test
  // seeds are independent of which other tools run.
  EXPECT_EQ(Filtered[0].SeedStream, 2u);
}

TEST(Campaign, TestSeedStreamsAreIndependent) {
  // Distinct (seed, stream, index) triples give distinct seeds.
  EXPECT_NE(testSeed(5, 0, 3), testSeed(5, 1, 3));
  EXPECT_NE(testSeed(5, 0, 3), testSeed(5, 0, 4));
  EXPECT_NE(testSeed(5, 0, 3), testSeed(6, 0, 3));
}

TEST(Campaign, TestRegenerationIsDeterministic) {
  Corpus C = makeCorpus(CorpusSpec{}.withSeed(5));
  ToolConfig Tool = standardTools(ToolsetSpec{}.withTransformationLimit(150))[0];
  size_t RefA = 0, RefB = 0;
  FuzzResult A = regenerateTest(C, Tool, 99, 7, RefA);
  FuzzResult B = regenerateTest(C, Tool, 99, 7, RefB);
  EXPECT_EQ(RefA, RefB);
  EXPECT_EQ(writeModuleText(A.Variant), writeModuleText(B.Variant));
  EXPECT_EQ(serializeSequence(A.Sequence), serializeSequence(B.Sequence));
  EXPECT_EQ(A.PassGroups, B.PassGroups);
}

TEST(Campaign, BaselineProfileAvoidsFineGrainedKinds) {
  Corpus C = makeCorpus(CorpusSpec{}.withSeed(5));
  ToolConfig Baseline =
      standardTools(ToolsetSpec{}.withTransformationLimit(250))[2];
  for (size_t TestIndex = 0; TestIndex < 10; ++TestIndex) {
    size_t Ref = 0;
    FuzzResult Fuzzed = regenerateTest(C, Baseline, 1, TestIndex, Ref);
    for (const TransformationPtr &T : Fuzzed.Sequence) {
      EXPECT_NE(T->kind(), TransformationKind::ToggleDontInline);
      EXPECT_NE(T->kind(), TransformationKind::ReplaceBranchWithKill);
      EXPECT_NE(T->kind(), TransformationKind::InlineFunction);
      EXPECT_NE(T->kind(), TransformationKind::CompositeConstruct);
      EXPECT_NE(T->kind(), TransformationKind::PropagateInstructionUp);
    }
  }
}

TEST(Campaign, EvaluateTestFindsSomeBugOverManySeeds) {
  Corpus C = makeCorpus(CorpusSpec{}.withSeed(5));
  ToolConfig Tool =
      standardTools(ToolsetSpec{}.withTransformationLimit(250))[0];
  TargetFleet Fleet = TargetFleet::standard();
  size_t Bugs = 0;
  for (size_t TestIndex = 0; TestIndex < 20; ++TestIndex)
    Bugs += evaluateTest(C, Tool, Fleet.targets(), 1, TestIndex)
                .Signatures.size();
  EXPECT_GT(Bugs, 0u);
}

TEST(Campaign, InterestingnessTestsDiscriminate) {
  // Crash interestingness: matches only the exact signature.
  Fixture F;
  Module WithDontInline = F.M;
  WithDontInline.findFunction(F.HelperId)->setControlMask(FC_DontInline);

  TargetFleet Fleet = TargetFleet::standard();
  const Target *SwiftShader = Fleet.find("SwiftShader");
  TargetRun Run = SwiftShader->run(WithDontInline, F.Input);
  ASSERT_EQ(Run.RunOutcome, Outcome::Crash);

  InterestingnessTest Test = makeInterestingnessTest(
      *SwiftShader, Run.Signature, F.M, F.Input);
  FactManager Facts;
  EXPECT_TRUE(Test(WithDontInline, Facts));
  EXPECT_FALSE(Test(F.M, Facts)); // the original does not crash
  // A different-signature interestingness test rejects this module.
  InterestingnessTest Other = makeInterestingnessTest(
      *SwiftShader, bugSignature(BugPoint::CrashKillObstructsMerge), F.M,
      F.Input);
  EXPECT_FALSE(Other(WithDontInline, Facts));
}

TEST(FunctionShrinker, RemovesUnneededDonorInstructions) {
  // Build a sequence that adds a padded live-safe function and calls it;
  // the "bug" is simply that a call to a function with >= 1 block exists.
  Fixture F;
  Module M = F.M;
  Id Base = M.Bound + 100;

  // A function with a deletable tail of unused arithmetic.
  Function Donor;
  Donor.Def = Instruction(
      Op::Function, F.IntType, Base + 1,
      {Operand::literal(FC_None),
       Operand::id(M.findFunction(F.HelperId)->functionTypeId())});
  Donor.Params.push_back(
      Instruction(Op::FunctionParameter, F.IntType, Base + 2, {}));
  BasicBlock Body(Base + 3);
  for (int I = 0; I < 6; ++I)
    Body.Body.push_back(ModuleBuilder::makeBinOp(
        Op::IAdd, F.IntType, Base + 4 + I, F.Const2, F.Const3));
  Body.Body.push_back(ModuleBuilder::makeReturnValue(Base + 4));
  Donor.Blocks.push_back(std::move(Body));

  TransformationSequence Sequence = {
      std::make_shared<TransformationAddFunction>(
          TransformationAddFunction::encodeFunction(Donor), true),
  };
  InterestingnessTest Test = [&](const Module &Variant, const FactManager &) {
    return Variant.Functions.size() == 3; // the added function exists
  };
  {
    Module Variant = F.M;
    FactManager Facts;
    Facts.setKnownInput(F.Input);
    ASSERT_EQ(applySequence(Variant, Facts, Sequence).size(), 1u);
    ASSERT_TRUE(Test(Variant, Facts));
  }

  ReduceResult Shrunk = shrinkAddFunctions(F.M, F.Input, Sequence, Test);
  ASSERT_EQ(Shrunk.Minimized.size(), 1u);
  const auto &Add =
      static_cast<const TransformationAddFunction &>(*Shrunk.Minimized[0]);
  Function Decoded;
  ASSERT_TRUE(TransformationAddFunction::decodeFunction(Add.Encoded, Decoded));
  // Five of the six adds were deletable; the first feeds the return.
  EXPECT_EQ(Decoded.Blocks[0].Body.size(), 2u);
  expectValidAndEquivalent(F.M, Shrunk.ReducedVariant, F.Input);
}

TEST(Experiments, EnvSizeParsesOverrides) {
  EXPECT_EQ(envSize("SPVFUZZ_TEST_UNSET_VAR", 7), 7u);
  setenv("SPVFUZZ_TEST_SET_VAR", "42", 1);
  EXPECT_EQ(envSize("SPVFUZZ_TEST_SET_VAR", 7), 42u);
  setenv("SPVFUZZ_TEST_SET_VAR", "junk", 1);
  EXPECT_EQ(envSize("SPVFUZZ_TEST_SET_VAR", 7), 7u);
  unsetenv("SPVFUZZ_TEST_SET_VAR");
}

TEST(Experiments, SmallBugFindingRunHasPaperShape) {
  CampaignEngine Engine(ExecutionPolicy{}.withTransformationLimit(250));
  BugFindingConfig Config;
  Config.TestsPerTool = 60;
  Config.NumGroups = 6;
  BugFindingData Data = Engine.runBugFinding(Config);
  ASSERT_EQ(Data.ToolNames.size(), 3u);
  ASSERT_EQ(Data.TargetNames.size(), 9u);

  ToolTargetStats Full = Data.allTargets("spirv-fuzz");
  ToolTargetStats Glsl = Data.allTargets("glsl-fuzz");
  // The headline result at miniature scale: spirv-fuzz finds strictly more
  // distinct signatures than the baseline.
  EXPECT_GT(Full.Distinct.size(), Glsl.Distinct.size());
  EXPECT_GT(Full.Distinct.size(), 10u);

  // Venn regions partition the union.
  VennCounts Venn = vennForTarget(Data, "All");
  size_t Sum = Venn.OnlyA + Venn.OnlyB + Venn.OnlyC + Venn.AB + Venn.AC +
               Venn.BC + Venn.ABC;
  std::set<std::string> Union = Full.Distinct;
  ToolTargetStats Simple = Data.allTargets("spirv-fuzz-simple");
  Union.insert(Simple.Distinct.begin(), Simple.Distinct.end());
  Union.insert(Glsl.Distinct.begin(), Glsl.Distinct.end());
  EXPECT_EQ(Sum, Union.size());
}

TEST(Experiments, SmallReductionRunHasPaperShape) {
  CampaignEngine Engine(ExecutionPolicy{}.withTransformationLimit(150));
  ReductionConfig Config;
  Config.TestsPerTool = 40;
  Config.MaxReductionsPerTool = 15;
  Config.CapPerSignature = 3;
  ReductionData Data = Engine.runReductions(Config);
  std::vector<ReductionRecord> SpirvRecords = Data.forTool("spirv-fuzz");
  std::vector<ReductionRecord> GlslRecords = Data.forTool("glsl-fuzz");
  ASSERT_FALSE(SpirvRecords.empty());
  ASSERT_FALSE(GlslRecords.empty());
  // Both reducers shrink far below the unreduced variants...
  EXPECT_LT(ReductionData::medianDelta(SpirvRecords),
            ReductionData::medianUnreducedDelta(SpirvRecords) / 2);
  // ...and the free reducer beats the group-reverting baseline reducer.
  EXPECT_LE(ReductionData::medianDelta(SpirvRecords),
            ReductionData::medianDelta(GlslRecords));
}

TEST(Experiments, SmallDedupRunHasPaperShape) {
  CampaignEngine Engine(ExecutionPolicy{}.withTransformationLimit(150));
  ReductionConfig Config;
  Config.TestsPerTool = 50;
  Config.MaxReductionsPerTool = 40;
  Config.CapPerSignature = 3;
  DedupData Data = Engine.runDedup(Config);
  ASSERT_FALSE(Data.PerTarget.empty());
  // NVIDIA is excluded (as in the paper).
  for (const DedupTargetResult &Row : Data.PerTarget)
    EXPECT_NE(Row.TargetName, "NVIDIA");
  // Structural sanity of Table 4: Reports = Distinct + Dups; Distinct
  // cannot exceed Sigs; every target produced at least one report.
  for (const DedupTargetResult &Row : Data.PerTarget) {
    EXPECT_EQ(Row.Reports, Row.Distinct + Row.Dups);
    EXPECT_LE(Row.Distinct, Row.Sigs);
    EXPECT_GE(Row.Reports, 1u);
    EXPECT_LE(Row.Tests, 3u * Row.Sigs); // per-signature cap respected
  }
  EXPECT_GT(Data.Total.Distinct, 0u);
  EXPECT_LE(Data.Total.Dups, Data.Total.Reports / 2);
}

} // namespace
