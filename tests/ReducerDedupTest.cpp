//===- tests/ReducerDedupTest.cpp - Reducer, dedup, statistics ------------===//
//
// Part of the spirv-fuzz reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "baseline/BaselineReducer.h"
#include "core/Dedup.h"
#include "core/Fuzzer.h"
#include "core/ReductionPipeline.h"
#include "core/Transformations.h"
#include "gen/Generator.h"
#include "support/Statistics.h"
#include "support/Telemetry.h"
#include "TestHelpers.h"

using namespace spvfuzz;
using namespace spvfuzz::test;

namespace {

//===----------------------------------------------------------------------===//
// Statistics
//===----------------------------------------------------------------------===//

TEST(Statistics, Median) {
  EXPECT_EQ(median({}), 0.0);
  EXPECT_EQ(median({3.0}), 3.0);
  EXPECT_EQ(median({1.0, 9.0}), 5.0);
  EXPECT_EQ(median({9.0, 1.0, 5.0}), 5.0);
  EXPECT_EQ(median({4.0, 1.0, 2.0, 3.0}), 2.5);
}

TEST(Statistics, MannWhitneyDetectsClearSeparation) {
  std::vector<double> High = {9, 10, 11, 12, 13, 9, 10, 11, 12, 13};
  std::vector<double> Low = {1, 2, 3, 2, 1, 3, 2, 1, 2, 3};
  MannWhitneyResult Result = mannWhitneyU(High, Low);
  EXPECT_TRUE(Result.AWins);
  EXPECT_GT(Result.ConfidenceAGreater, 99.0);
  MannWhitneyResult Reverse = mannWhitneyU(Low, High);
  EXPECT_FALSE(Reverse.AWins);
  EXPECT_LT(Reverse.ConfidenceAGreater, 1.0);
}

TEST(Statistics, MannWhitneyOnTiesIsNeutral) {
  std::vector<double> Same = {5, 5, 5, 5, 5};
  MannWhitneyResult Result = mannWhitneyU(Same, Same);
  EXPECT_NEAR(Result.ConfidenceAGreater, 50.0, 1e-9);
  // Empty inputs do not crash.
  EXPECT_EQ(mannWhitneyU({}, Same).ConfidenceAGreater, 0.0);
}

TEST(Statistics, MedianEdgeCases) {
  // Inputs need not be sorted: the middle pair of an even-sized sample can
  // arrive at opposite ends.
  EXPECT_EQ(median({7.0, 1.0, 5.0, 3.0, 11.0, 9.0}), 6.0);
  EXPECT_EQ(median({2.0, 2.0}), 2.0);
  // Negative medians are distinguishable from the empty-input default.
  EXPECT_EQ(median({-4.0, -8.0}), -6.0);
  EXPECT_EQ(median({}), 0.0);
}

TEST(Statistics, MannWhitneyDegenerateGroups) {
  std::vector<double> Same = {5, 5, 5, 5, 5};
  // All observations tied: zero rank variance, so the normal approximation
  // would divide by zero; the test must report perfect neutrality and not
  // claim a win for A.
  MannWhitneyResult Tied = mannWhitneyU(Same, Same);
  EXPECT_NEAR(Tied.ConfidenceAGreater, 50.0, 1e-9);
  EXPECT_FALSE(Tied.AWins);
  // Either (or both) groups empty: no comparison is possible, and the
  // zero-initialized result falls out — U = 0, zero confidence, no win.
  for (const MannWhitneyResult &Result :
       {mannWhitneyU({}, Same), mannWhitneyU(Same, {}),
        mannWhitneyU({}, {})}) {
    EXPECT_EQ(Result.U, 0.0);
    EXPECT_EQ(Result.ConfidenceAGreater, 0.0);
    EXPECT_FALSE(Result.AWins);
  }
}

TEST(Statistics, MannWhitneyWithOverlap) {
  std::vector<double> A = {3, 4, 5, 6, 7, 5, 4, 6, 5, 5};
  std::vector<double> B = {2, 4, 4, 5, 6, 4, 3, 5, 5, 4};
  MannWhitneyResult Result = mannWhitneyU(A, B);
  EXPECT_GT(Result.ConfidenceAGreater, 50.0);
  EXPECT_LT(Result.ConfidenceAGreater, 99.9);
}

//===----------------------------------------------------------------------===//
// Reducer
//===----------------------------------------------------------------------===//

/// A scenario on the shared fixture: five transformations of which only
/// two (the dead block and the kill) matter for a "has OpKill" bug.
struct ReductionScenario {
  Fixture F;
  TransformationSequence Sequence;
  Id TrueConst, Dead;

  ReductionScenario() {
    Module &M = F.M;
    ModuleBuilder Builder(M);
    TrueConst = Builder.getBoolConstant(true);
    Dead = M.takeFreshId();
    const BasicBlock *Merge =
        M.findFunction(F.MainId)->findBlock(F.MergeBlock);
    Id LoadL = Merge->Body[0].Result;
    InstructionDescriptor BeforeStore = describeInstruction(*Merge, 1);
    Sequence = {
        std::make_shared<TransformationAddSynonymViaCopyObject>(
            M.takeFreshId(), LoadL, BeforeStore),
        std::make_shared<TransformationAddDeadBlock>(Dead, F.ThenBlock,
                                                     TrueConst),
        std::make_shared<TransformationAddLoad>(M.takeFreshId(), F.U0,
                                                BeforeStore),
        std::make_shared<TransformationReplaceBranchWithKill>(Dead),
        std::make_shared<TransformationSwapCommutableOperands>(
            describeInstruction(
                *M.findFunction(F.HelperId)->findBlock(F.HelperBlock), 0)),
    };
  }
};

InterestingnessTest hasKill() {
  return [](const Module &Variant, const FactManager &) {
    for (const Function &Func : Variant.Functions)
      for (const BasicBlock &Block : Func.Blocks)
        for (const Instruction &Inst : Block.Body)
          if (Inst.Opcode == Op::Kill)
            return true;
    return false;
  };
}

TEST(Reducer, FindsOneMinimalSubsequence) {
  ReductionScenario S;
  ReduceResult Result = ReductionPipeline(ReductionPlan{})
                            .run(S.F.M, S.F.Input, S.Sequence, hasKill());
  // Exactly the dead block and the kill survive.
  ASSERT_EQ(Result.Minimized.size(), 2u);
  EXPECT_EQ(Result.Minimized[0]->kind(), TransformationKind::AddDeadBlock);
  EXPECT_EQ(Result.Minimized[1]->kind(),
            TransformationKind::ReplaceBranchWithKill);
  // The reduced variant is valid, equivalent, and interesting.
  expectValidAndEquivalent(S.F.M, Result.ReducedVariant, S.F.Input);
  EXPECT_TRUE(hasKill()(Result.ReducedVariant, Result.ReducedFacts));
}

TEST(Reducer, OneMinimality) {
  ReductionScenario S;
  ReduceResult Result = ReductionPipeline(ReductionPlan{})
                            .run(S.F.M, S.F.Input, S.Sequence, hasKill());
  // Removing any single remaining transformation must kill interestingness.
  for (size_t Drop = 0; Drop < Result.Minimized.size(); ++Drop) {
    TransformationSequence Candidate;
    for (size_t I = 0; I < Result.Minimized.size(); ++I)
      if (I != Drop)
        Candidate.push_back(Result.Minimized[I]);
    Module Variant = S.F.M;
    FactManager Facts;
    Facts.setKnownInput(S.F.Input);
    applySequence(Variant, Facts, Candidate);
    EXPECT_FALSE(hasKill()(Variant, Facts)) << "not 1-minimal at " << Drop;
  }
}

TEST(Reducer, EmptySequenceAndAlwaysInteresting) {
  Fixture F;
  ReduceResult Result = ReductionPipeline(ReductionPlan{}).run(
      F.M, F.Input, {},
      [](const Module &, const FactManager &) { return true; });
  EXPECT_TRUE(Result.Minimized.empty());
  // An always-true test reduces everything away.
  ReductionScenario S;
  ReduceResult All = ReductionPipeline(ReductionPlan{}).run(
      S.F.M, S.F.Input, S.Sequence,
      [](const Module &, const FactManager &) { return true; });
  EXPECT_TRUE(All.Minimized.empty());
  EXPECT_EQ(writeModuleText(All.ReducedVariant), writeModuleText(S.F.M));
}

TEST(Reducer, CheckCountIsReasonable) {
  ReductionScenario S;
  ReduceResult Result = ReductionPipeline(ReductionPlan{})
                            .run(S.F.M, S.F.Input, S.Sequence, hasKill());
  // Delta debugging on 5 elements needs only a handful of checks.
  EXPECT_LE(Result.Checks, 25u);
  EXPECT_GE(Result.Checks, 3u);
}

TEST(Reducer, ChecksCounterMatchesResult) {
  // The telemetry counter and ReduceResult::Checks are incremented at the
  // same site, so their deltas must agree exactly.
  telemetry::MetricsRegistry &Metrics = telemetry::MetricsRegistry::global();
  bool WasEnabled = Metrics.enabled();
  uint64_t ChecksBefore = Metrics.counterValue("reducer.checks");
  uint64_t ReductionsBefore = Metrics.counterValue("reducer.reductions");
  Metrics.setEnabled(true);
  ReductionScenario S;
  ReduceResult Result = ReductionPipeline(ReductionPlan{})
                            .run(S.F.M, S.F.Input, S.Sequence, hasKill());
  Metrics.setEnabled(WasEnabled);
  EXPECT_EQ(Metrics.counterValue("reducer.checks") - ChecksBefore,
            static_cast<uint64_t>(Result.Checks));
  EXPECT_EQ(Metrics.counterValue("reducer.reductions") - ReductionsBefore,
            1u);
}

TEST(BaselineReducer, KeepsWholeGroups) {
  ReductionScenario S;
  // Group the five transformations as three pass runs: {0,1}, {2,3}, {4}.
  std::vector<std::pair<size_t, size_t>> Groups = {{0, 2}, {2, 4}, {4, 5}};
  ReduceResult Result =
      reduceByGroups(S.F.M, S.F.Input, S.Sequence, Groups, hasKill());
  // The kill lives in group {2,3}, whose AddDeadBlock dependency lives in
  // group {0,1}: both groups must be kept whole (4 transformations),
  // versus 2 for the fine-grained reducer — the RQ2 effect in miniature.
  EXPECT_EQ(Result.Minimized.size(), 4u);
  expectValidAndEquivalent(S.F.M, Result.ReducedVariant, S.F.Input);
  EXPECT_TRUE(hasKill()(Result.ReducedVariant, Result.ReducedFacts));
  ReduceResult Fine = ReductionPipeline(ReductionPlan{})
                          .run(S.F.M, S.F.Input, S.Sequence, hasKill());
  EXPECT_LT(Fine.Minimized.size(), Result.Minimized.size());
}

//===----------------------------------------------------------------------===//
// Deduplication (Figure 6)
//===----------------------------------------------------------------------===//

using K = TransformationKind;

TEST(Dedup, PaperScenario) {
  // The ğ2.1 worked example: set A uses {SplitBlock-like trio}, set B uses
  // {AddStore, AddLoad}, the rest use >= 4 types. Two reports expected,
  // one from each of A and B.
  std::vector<std::set<K>> Tests;
  for (int I = 0; I < 5; ++I)
    Tests.push_back({K::AddDeadBlock, K::MoveBlockDown, K::InvertBranchCondition});
  for (int I = 0; I < 5; ++I)
    Tests.push_back({K::AddStore, K::AddLoad});
  for (int I = 0; I < 3; ++I)
    Tests.push_back({K::AddDeadBlock, K::MoveBlockDown, K::AddStore,
                     K::AddLoad, K::ToggleDontInline});
  std::vector<size_t> Chosen = deduplicateTests(Tests);
  ASSERT_EQ(Chosen.size(), 2u);
  EXPECT_EQ(Tests[Chosen[0]].size(), 2u); // smallest type set first
  EXPECT_EQ(Tests[Chosen[1]].size(), 3u);
}

TEST(Dedup, PrefersSmallTypeSets) {
  std::vector<std::set<K>> Tests = {
      {K::AddDeadBlock, K::AddStore},
      {K::AddDeadBlock},
  };
  std::vector<size_t> Chosen = deduplicateTests(Tests);
  ASSERT_EQ(Chosen.size(), 1u);
  EXPECT_EQ(Chosen[0], 1u);
}

TEST(Dedup, DisjointTestsAllChosen) {
  std::vector<std::set<K>> Tests = {
      {K::AddDeadBlock},
      {K::AddStore},
      {K::ToggleDontInline},
  };
  EXPECT_EQ(deduplicateTests(Tests).size(), 3u);
}

TEST(Dedup, EmptyTypeSetsNeverChosen) {
  std::vector<std::set<K>> Tests = {{}, {K::AddStore}, {}};
  std::vector<size_t> Chosen = deduplicateTests(Tests);
  ASSERT_EQ(Chosen.size(), 1u);
  EXPECT_EQ(Chosen[0], 1u);
  EXPECT_TRUE(deduplicateTests({{}, {}}).empty());
  EXPECT_TRUE(deduplicateTests({}).empty());
}

TEST(Dedup, TypesOfAppliesIgnoreList) {
  Fixture F;
  Module M = F.M;
  ModuleBuilder Builder(M);
  Id TrueConst = Builder.getBoolConstant(true);
  TransformationSequence Sequence = {
      std::make_shared<TransformationAddConstantScalar>(M.takeFreshId(),
                                                        F.IntType, 0, true),
      std::make_shared<TransformationAddDeadBlock>(M.takeFreshId(),
                                                   F.ThenBlock, TrueConst),
      std::make_shared<TransformationAddDeadBlock>(M.takeFreshId(),
                                                   F.ElseBlock, TrueConst),
  };
  std::set<K> Types = dedupTypesOf(Sequence);
  // The supporting constant is ignored; duplicates collapse.
  EXPECT_EQ(Types, std::set<K>{K::AddDeadBlock});
}

//===----------------------------------------------------------------------===//
// End-to-end: fuzz, break, reduce (on a synthetic oracle)
//===----------------------------------------------------------------------===//

TEST(ReducerEndToEnd, FuzzedSequencesReduceAndStayInteresting) {
  for (uint64_t Seed : {3u, 17u, 29u}) {
    GeneratedProgram Program = generateProgram(Seed);
    FuzzerOptions Options;
    Options.TransformationLimit = 120;
    FuzzResult Fuzzed = fuzz(Program.M, Program.Input, {}, Seed, Options);
    InterestingnessTest Test = hasKill();
    Module Variant = Fuzzed.Variant;
    FactManager Facts = Fuzzed.Facts;
    if (!Test(Variant, Facts))
      continue; // this seed produced no kill; fine
    ReduceResult Reduced =
        ReductionPipeline(ReductionPlan{})
            .run(Program.M, Program.Input, Fuzzed.Sequence, Test);
    EXPECT_LE(Reduced.Minimized.size(), Fuzzed.Sequence.size());
    EXPECT_TRUE(Test(Reduced.ReducedVariant, Reduced.ReducedFacts));
    expectValidAndEquivalent(Program.M, Reduced.ReducedVariant,
                             Program.Input);
    // The reduced variant is close to the original in size.
    EXPECT_LT(Reduced.ReducedVariant.instructionCount(),
              Program.M.instructionCount() + 30);
  }
}

} // namespace
