//===- tests/ReducerCacheTest.cpp - Reduction caching determinism ---------===//
//
// Part of the spirv-fuzz reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The contract of every reduction-performance feature — replay snapshots,
/// evaluation memoization, speculative parallel checking — is that it
/// changes cost, never results. These tests pin that contract: the same
/// ReduceResult (minimized sequence, variant, Checks) must come out under
/// every option combination, across many fuzzed campaigns; the structural
/// module hash must distinguish exactly the modules a target can
/// distinguish; and a cached target must return what the uncached target
/// returns.
///
//===----------------------------------------------------------------------===//

#include "campaign/CampaignEngine.h"
#include "core/Fuzzer.h"
#include "core/ReductionPipeline.h"
#include "gen/Generator.h"
#include "support/ModuleHash.h"
#include "support/ThreadPool.h"
#include "target/EvalCache.h"
#include "TestHelpers.h"

using namespace spvfuzz;
using namespace spvfuzz::test;

namespace {

//===----------------------------------------------------------------------===//
// ModuleHash
//===----------------------------------------------------------------------===//

TEST(ModuleHash, EqualModulesHashEqual) {
  for (uint64_t Seed : {1u, 7u, 42u}) {
    GeneratedProgram A = generateProgram(Seed);
    GeneratedProgram B = generateProgram(Seed);
    EXPECT_EQ(hashModule(A.M), hashModule(B.M)) << "seed " << Seed;
    Module Copy = A.M;
    EXPECT_EQ(hashModule(A.M), hashModule(Copy)) << "seed " << Seed;
    EXPECT_EQ(hashShaderInput(A.Input), hashShaderInput(B.Input));
  }
}

TEST(ModuleHash, DifferentSeedsHashDifferent) {
  // Not guaranteed in principle (64-bit hash), but any collision among a
  // handful of generated programs would mean the hash is broken in
  // practice.
  std::set<uint64_t> Hashes;
  for (uint64_t Seed = 0; Seed < 16; ++Seed)
    Hashes.insert(hashModule(generateProgram(Seed).M));
  EXPECT_EQ(Hashes.size(), 16u);
}

TEST(ModuleHash, SingleWordMutationChangesHash) {
  GeneratedProgram Program = generateProgram(11);
  uint64_t Baseline = hashModule(Program.M);

  // Mutate one operand of one body instruction.
  Module M1 = Program.M;
  for (Function &Func : M1.Functions)
    for (BasicBlock &Block : Func.Blocks)
      for (Instruction &Inst : Block.Body)
        if (!Inst.Operands.empty()) {
          Inst.Operands[0].Word ^= 1;
          EXPECT_NE(hashModule(M1), Baseline);
          return;
        }
  FAIL() << "generated program had no instruction with operands";
}

TEST(ModuleHash, OpcodeAndResultChangesChangeHash) {
  GeneratedProgram Program = generateProgram(11);
  uint64_t Baseline = hashModule(Program.M);

  Module M1 = Program.M;
  ASSERT_FALSE(M1.GlobalInsts.empty());
  M1.GlobalInsts.back().Result += 1000;
  EXPECT_NE(hashModule(M1), Baseline);

  Module M2 = Program.M;
  M2.EntryPointId += 1;
  EXPECT_NE(hashModule(M2), Baseline);
}

TEST(ModuleHash, BoundIsExcluded) {
  // Fresh-id allocation state is not observable by a target run, so two
  // modules differing only in Bound must share a cache entry.
  GeneratedProgram Program = generateProgram(11);
  Module Copy = Program.M;
  Copy.takeFreshId();
  Copy.takeFreshId();
  EXPECT_EQ(hashModule(Program.M), hashModule(Copy));
}

//===----------------------------------------------------------------------===//
// EvalCache
//===----------------------------------------------------------------------===//

TargetRun makeRun(const std::string &Signature) {
  TargetRun Run;
  Run.RunOutcome = Outcome::Crash;
  Run.Signature = Signature;
  return Run;
}

TEST(EvalCache, HitReturnsInsertedOutcome) {
  EvalCache Cache(1 << 20);
  TargetRun Out;
  EXPECT_FALSE(Cache.lookup(1, 2, Out));
  Cache.insert(1, 2, makeRun("sig-x"));
  ASSERT_TRUE(Cache.lookup(1, 2, Out));
  EXPECT_EQ(Out.RunOutcome, Outcome::Crash);
  EXPECT_EQ(Out.Signature, "sig-x");
  // Key components are all significant.
  EXPECT_FALSE(Cache.lookup(2, 2, Out));
  EXPECT_FALSE(Cache.lookup(1, 3, Out));
  EXPECT_EQ(Cache.hitCount(), 1u);
  EXPECT_EQ(Cache.missCount(), 3u);
}

TEST(EvalCache, ZeroBudgetDisables) {
  EvalCache Cache(0);
  Cache.insert(1, 2, makeRun("sig-x"));
  TargetRun Out;
  EXPECT_FALSE(Cache.lookup(1, 2, Out));
  EXPECT_EQ(Cache.entryCount(), 0u);
  EXPECT_EQ(Cache.bytesUsed(), 0u);
}

TEST(EvalCache, EvictsLeastRecentlyUsed) {
  // Budget for only a few entries: the oldest (and only the oldest)
  // untouched entries must fall out.
  EvalCache Tiny(1);
  Tiny.insert(1, 0, makeRun("a"));
  EXPECT_EQ(Tiny.entryCount(), 0u) << "oversized entry must not be stored";

  EvalCache Cache(4096);
  size_t N = 0;
  while (Cache.bytesUsed() == 0 || Cache.entryCount() == N)
    Cache.insert(++N, 0, makeRun("sig"));
  // Insertion N evicted the LRU entry (key 1); the newest still hits.
  TargetRun Out;
  EXPECT_FALSE(Cache.lookup(1, 0, Out));
  EXPECT_TRUE(Cache.lookup(N, 0, Out));
}

TEST(EvalCache, CachedTargetMatchesTarget) {
  CampaignEngine Engine(ExecutionPolicy{}.withTransformationLimit(60),
                        CorpusSpec{}.withReferences(2).withDonors(3));
  EvalCache Cache(8u << 20);
  const GeneratedProgram &Program = Engine.corpus().References[0];
  for (const Target &T : Engine.targets()) {
    CachedTarget Cached(T, Cache);
    TargetRun Direct = T.run(Program.M, Program.Input);
    TargetRun Miss = Cached.run(Program.M, Program.Input);
    TargetRun Hit = Cached.run(Program.M, Program.Input);
    for (const TargetRun *Run : {&Miss, &Hit}) {
      EXPECT_EQ(Run->RunOutcome, Direct.RunOutcome) << T.name();
      EXPECT_EQ(Run->Signature, Direct.Signature) << T.name();
      EXPECT_EQ(Run->Result == Direct.Result, true) << T.name();
    }
  }
  EXPECT_EQ(Cache.hitCount(), Engine.targets().size());
  EXPECT_EQ(Cache.missCount(), Engine.targets().size());
}

//===----------------------------------------------------------------------===//
// Reduction determinism across all performance options
//===----------------------------------------------------------------------===//

/// An interestingness test every fuzzed campaign satisfies: the variant
/// kept at least \p Extra more instructions than the original. Forces a
/// non-trivial minimization on every seed (unlike crash oracles, which
/// only some seeds trigger).
InterestingnessTest grewBy(size_t OriginalCount, size_t Extra) {
  return [=](const Module &Variant, const FactManager &) {
    return Variant.instructionCount() >= OriginalCount + Extra;
  };
}

void expectSameReduceResult(const ReduceResult &A, const ReduceResult &B,
                            uint64_t Seed, const char *What) {
  ASSERT_EQ(A.Minimized.size(), B.Minimized.size())
      << What << " seed " << Seed;
  for (size_t I = 0; I < A.Minimized.size(); ++I)
    EXPECT_EQ(A.Minimized[I]->kind(), B.Minimized[I]->kind())
        << What << " seed " << Seed << " step " << I;
  EXPECT_EQ(writeModuleText(A.ReducedVariant),
            writeModuleText(B.ReducedVariant))
      << What << " seed " << Seed;
  EXPECT_EQ(A.Checks, B.Checks) << What << " seed " << Seed;
}

TEST(ReducerCache, AllOptionCombinationsAreBitIdentical) {
  // Across >= 20 fuzzed campaigns, every performance configuration —
  // snapshots off, dense snapshots, snapshots under a starved byte budget,
  // and speculative parallel checking — must reproduce the plain serial
  // ReduceResult exactly, Checks included.
  ThreadPool Pool(4);
  size_t SpeculativeWaste = 0;
  for (uint64_t Seed = 100; Seed < 122; ++Seed) {
    GeneratedProgram Program = generateProgram(Seed);
    FuzzerOptions Options;
    Options.TransformationLimit = 60;
    FuzzResult Fuzzed = fuzz(Program.M, Program.Input, {}, Seed, Options);
    InterestingnessTest Test = grewBy(Program.M.instructionCount(), 5);
    if (!Test(Fuzzed.Variant, Fuzzed.Facts))
      continue; // fuzzing added too little on this seed; fine
    ReduceResult Baseline = ReductionPipeline(ReductionPlan{})
                                .run(Program.M, Program.Input, Fuzzed.Sequence,
                                     Test);

    ReduceOptions NoSnapshots;
    NoSnapshots.SnapshotInterval = 0;
    ReduceOptions Dense;
    Dense.SnapshotInterval = 1;
    ReduceOptions Starved;
    Starved.SnapshotInterval = 2;
    Starved.SnapshotBudgetBytes = 256; // forces continual eviction
    ReduceOptions Speculative;
    Speculative.Pool = &Pool;

    for (const auto &[What, Opts] :
         std::initializer_list<std::pair<const char *, const ReduceOptions &>>{
             {"no-snapshots", NoSnapshots},
             {"dense", Dense},
             {"starved-budget", Starved},
             {"speculative", Speculative}}) {
      ReduceResult Result =
          ReductionPipeline(ReductionPlan::fromOptions(Opts))
              .run(Program.M, Program.Input, Fuzzed.Sequence, Test);
      expectSameReduceResult(Baseline, Result, Seed, What);
      if (Opts.Pool)
        SpeculativeWaste += Result.SpeculativeChecks;
      else
        EXPECT_EQ(Result.SpeculativeChecks, 0u) << What << " seed " << Seed;
    }
  }
  // Speculation actually happened (otherwise the parallel leg of this test
  // is vacuous). Waste is legal and expected; only Checks must match.
  EXPECT_GT(SpeculativeWaste, 0u);
}

TEST(ReducerCache, CachedInterestingnessMatchesUncached) {
  // End-to-end over a real target: reduction through a CachedTarget-backed
  // crash interestingness test equals reduction through the raw Target,
  // and the cache absorbs repeat evaluations.
  CampaignEngine Engine(ExecutionPolicy{}.withTransformationLimit(120),
                        CorpusSpec{}.withReferences(2).withDonors(3));
  const ToolConfig &Tool = Engine.tools()[0];
  size_t Reduced = 0;
  for (size_t TestIndex = 0; TestIndex < 40 && Reduced < 3; ++TestIndex) {
    size_t ReferenceIndex = 0;
    FuzzResult Fuzzed = Engine.regenerate(Tool, TestIndex, ReferenceIndex);
    const GeneratedProgram &Reference =
        Engine.corpus().References[ReferenceIndex];
    for (const Target &T : Engine.targets()) {
      TargetRun Run = T.run(Fuzzed.Variant, Reference.Input);
      if (!Run.interesting())
        continue;
      ReduceResult Plain = ReductionPipeline(ReductionPlan{}).run(
          Reference.M, Reference.Input, Fuzzed.Sequence,
          makeCrashInterestingness(T, Run.Signature, Reference.Input));
      EvalCache Cache(8u << 20);
      CachedTarget Cached(T, Cache);
      ReduceResult ViaCache = ReductionPipeline(ReductionPlan{}).run(
          Reference.M, Reference.Input, Fuzzed.Sequence,
          makeCrashInterestingness(Cached, Run.Signature, Reference.Input));
      expectSameReduceResult(Plain, ViaCache, TestIndex, T.name().c_str());
      EXPECT_EQ(Cache.hitCount() + Cache.missCount(), ViaCache.Checks)
          << "every check goes through the cache";
      ++Reduced;
      break;
    }
  }
  EXPECT_GE(Reduced, 3u) << "expected crashes to reduce in 40 tests";
}

} // namespace
