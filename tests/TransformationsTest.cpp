//===- tests/TransformationsTest.cpp - Per-kind transformation tests ------===//
//
// Part of the spirv-fuzz reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Unit tests for every transformation kind: precondition acceptance and
/// rejection, effect shape, fact recording, serialization, and semantic
/// preservation on the shared fixture.
///
//===----------------------------------------------------------------------===//

#include "core/TransformationUtil.h"
#include "core/Transformations.h"
#include "TestHelpers.h"

using namespace spvfuzz;
using namespace spvfuzz::test;

namespace {

//===----------------------------------------------------------------------===//
// Supporting transformations
//===----------------------------------------------------------------------===//

TEST(AddType, IntBoolVectorStructPointerFunction) {
  Fixture F;
  Module M = F.M;
  FactManager Facts;

  Id VecId = M.Bound + 10;
  TransformationAddTypeVector AddVec(VecId, F.IntType, 3);
  EXPECT_TRUE(applyIfApplicable(M, Facts, AddVec));
  EXPECT_TRUE(M.isVectorTypeId(VecId));
  EXPECT_EQ(M.vectorInfo(VecId).second, 3u);

  Id StructId = M.Bound + 10;
  TransformationAddTypeStruct AddStruct(StructId, {F.IntType, VecId});
  EXPECT_TRUE(applyIfApplicable(M, Facts, AddStruct));
  EXPECT_TRUE(M.isStructTypeId(StructId));

  Id PtrId = M.Bound + 10;
  TransformationAddTypePointer AddPtr(PtrId, StorageClass::Private, StructId);
  EXPECT_TRUE(applyIfApplicable(M, Facts, AddPtr));
  EXPECT_TRUE(M.isPointerTypeId(PtrId));

  Id FuncTypeId = M.Bound + 10;
  TransformationAddTypeFunction AddFuncType(FuncTypeId, F.IntType,
                                            {F.IntType, F.BoolType});
  EXPECT_TRUE(applyIfApplicable(M, Facts, AddFuncType));

  expectValidAndEquivalent(F.M, M, F.Input);
  expectSerializationRoundTrip(AddVec);
  expectSerializationRoundTrip(AddStruct);
  expectSerializationRoundTrip(AddPtr);
  expectSerializationRoundTrip(AddFuncType);
}

TEST(AddType, RejectsStaleFreshId) {
  Fixture F;
  FactManager Facts;
  ModuleAnalysis Analysis(F.M);
  // An id already in use is not fresh.
  TransformationAddTypeVector Bad(F.IntType, F.IntType, 2);
  EXPECT_FALSE(Bad.isApplicable(F.M, Analysis, Facts));
  // Vector of void is rejected.
  TransformationAddTypeVector BadComponent(F.M.Bound + 1, F.VoidType, 2);
  EXPECT_FALSE(BadComponent.isApplicable(F.M, Analysis, Facts));
  // Count out of range.
  TransformationAddTypeVector BadCount(F.M.Bound + 1, F.IntType, 5);
  EXPECT_FALSE(BadCount.isApplicable(F.M, Analysis, Facts));
}

TEST(AddConstantScalar, AddsAndRecordsIrrelevantFact) {
  Fixture F;
  Module M = F.M;
  FactManager Facts;
  Id ConstId = M.Bound + 1;
  TransformationAddConstantScalar Add(ConstId, F.IntType, 42, true);
  EXPECT_TRUE(applyIfApplicable(M, Facts, Add));
  EXPECT_TRUE(Facts.idIsIrrelevant(ConstId));
  const Instruction *Def = M.findDef(ConstId);
  ASSERT_NE(Def, nullptr);
  EXPECT_EQ(Def->Opcode, Op::Constant);
  EXPECT_EQ(Def->literalOperand(0), 42u);
  expectValidAndEquivalent(F.M, M, F.Input);
  expectSerializationRoundTrip(Add);
}

TEST(AddConstantScalar, BoolFormsAndRejection) {
  Fixture F;
  Module M = F.M;
  FactManager Facts;
  Id TrueId = M.Bound + 1;
  EXPECT_TRUE(applyIfApplicable(
      M, Facts, TransformationAddConstantScalar(TrueId, F.BoolType, 1, false)));
  EXPECT_EQ(M.findDef(TrueId)->Opcode, Op::ConstantTrue);
  // Word 2 is not a boolean.
  ModuleAnalysis Analysis(M);
  TransformationAddConstantScalar Bad(M.Bound + 1, F.BoolType, 2, false);
  EXPECT_FALSE(Bad.isApplicable(M, Analysis, Facts));
}

TEST(AddConstantComposite, BuildsVectorConstant) {
  Fixture F;
  Module M = F.M;
  FactManager Facts;
  Id VecId = M.Bound + 1;
  ASSERT_TRUE(applyIfApplicable(
      M, Facts, TransformationAddTypeVector(VecId, F.IntType, 2)));
  Id CompositeId = M.Bound + 1;
  TransformationAddConstantComposite Add(CompositeId, VecId,
                                         {F.Const2, F.Const3});
  EXPECT_TRUE(applyIfApplicable(M, Facts, Add));
  EXPECT_EQ(evalConstant(M, CompositeId),
            Value::makeComposite(
                {Value::makeInt(2), Value::makeInt(3)}));
  // Wrong component count is rejected.
  ModuleAnalysis Analysis(M);
  TransformationAddConstantComposite Bad(M.Bound + 1, VecId, {F.Const2});
  EXPECT_FALSE(Bad.isApplicable(M, Analysis, Facts));
  expectValidAndEquivalent(F.M, M, F.Input);
}

TEST(AddVariables, GlobalAndLocalRecordIrrelevantPointee) {
  Fixture F;
  Module M = F.M;
  FactManager Facts;
  ModuleBuilder Builder(M);
  Id PrivatePtr = Builder.getPointerType(StorageClass::Private, F.IntType);
  Id FunctionPtr = Builder.getPointerType(StorageClass::Function, F.IntType);

  Id GlobalId = M.Bound + 1;
  TransformationAddGlobalVariable AddGlobal(GlobalId, PrivatePtr, F.Const5);
  EXPECT_TRUE(applyIfApplicable(M, Facts, AddGlobal));
  EXPECT_TRUE(Facts.pointeeIsIrrelevant(GlobalId));

  Id LocalId = M.Bound + 1;
  TransformationAddLocalVariable AddLocal(LocalId, FunctionPtr, F.MainId,
                                          F.Const2);
  EXPECT_TRUE(applyIfApplicable(M, Facts, AddLocal));
  EXPECT_TRUE(Facts.pointeeIsIrrelevant(LocalId));
  // Local variables land in the entry block's leading zone.
  const Function *Main = M.findFunction(F.MainId);
  bool Found = false;
  for (size_t I = 0; I < Main->entryBlock().firstInsertionIndex(); ++I)
    if (Main->entryBlock().Body[I].Result == LocalId)
      Found = true;
  EXPECT_TRUE(Found);
  expectValidAndEquivalent(F.M, M, F.Input);
  expectSerializationRoundTrip(AddGlobal);
  expectSerializationRoundTrip(AddLocal);
}

//===----------------------------------------------------------------------===//
// SplitBlock
//===----------------------------------------------------------------------===//

TEST(SplitBlock, SplitsAndRetargetsPhis) {
  Fixture F;
  Module M = F.M;
  FactManager Facts;
  // Split the then-block before its store.
  const BasicBlock *Then = M.findFunction(F.MainId)->findBlock(F.ThenBlock);
  InstructionDescriptor Where = describeInstruction(*Then, 1);
  Id NewBlock = M.Bound + 1;
  TransformationSplitBlock Split(Where, NewBlock);
  EXPECT_TRUE(applyIfApplicable(M, Facts, Split));
  const Function *Main = M.findFunction(F.MainId);
  EXPECT_NE(Main->findBlock(NewBlock), nullptr);
  EXPECT_EQ(Main->findBlock(F.ThenBlock)->terminator().Opcode, Op::Branch);
  EXPECT_EQ(Main->findBlock(F.ThenBlock)->terminator().idOperand(0), NewBlock);
  expectValidAndEquivalent(F.M, M, F.Input);
  expectSerializationRoundTrip(Split);
}

TEST(SplitBlock, TransfersDeadBlockFact) {
  Fixture F;
  Module M = F.M;
  FactManager Facts;
  Facts.addDeadBlock(F.ThenBlock);
  const BasicBlock *Then = M.findFunction(F.MainId)->findBlock(F.ThenBlock);
  Id NewBlock = M.Bound + 1;
  ASSERT_TRUE(applyIfApplicable(
      M, Facts,
      TransformationSplitBlock(describeInstruction(*Then, 1), NewBlock)));
  EXPECT_TRUE(Facts.blockIsDead(NewBlock));
}

TEST(SplitBlock, RejectsPhiAndVariableTargets) {
  Fixture F;
  Module M = F.M;
  FactManager Facts;
  ModuleAnalysis Analysis(M);
  // Splitting before the entry block's local variable is illegal.
  const BasicBlock &Entry = M.findFunction(F.MainId)->entryBlock();
  ASSERT_EQ(Entry.Body[0].Opcode, Op::Variable);
  TransformationSplitBlock Bad(describeInstruction(Entry, 0), M.Bound + 1);
  EXPECT_FALSE(Bad.isApplicable(M, Analysis, Facts));
}

TEST(SplitBlock, DescriptorSurvivesUnrelatedEdits) {
  // The ğ2.3 independence principle: a split descriptor still resolves
  // after an unrelated instruction is inserted earlier in the block.
  Fixture F;
  Module M = F.M;
  FactManager Facts;
  const BasicBlock *Merge = M.findFunction(F.MainId)->findBlock(F.MergeBlock);
  InstructionDescriptor Where = describeInstruction(*Merge, 1); // the store
  // Unrelated edit: a load inserted at the head of the merge block.
  ASSERT_TRUE(applyIfApplicable(
      M, Facts,
      TransformationAddLoad(M.Bound + 1, F.U0,
                            describeInstruction(*Merge, 0))));
  TransformationSplitBlock Split(Where, M.Bound + 1);
  EXPECT_TRUE(applyIfApplicable(M, Facts, Split));
  expectValidAndEquivalent(F.M, M, F.Input);
}

//===----------------------------------------------------------------------===//
// AddDeadBlock / ReplaceBranchWithKill
//===----------------------------------------------------------------------===//

TEST(AddDeadBlock, AddsGuardedBlockAndFact) {
  Fixture F;
  Module M = F.M;
  FactManager Facts;
  ModuleBuilder Builder(M);
  Id TrueConst = Builder.getBoolConstant(true);
  Id Dead = M.Bound + 1;
  TransformationAddDeadBlock Add(Dead, F.ThenBlock, TrueConst);
  EXPECT_TRUE(applyIfApplicable(M, Facts, Add));
  EXPECT_TRUE(Facts.blockIsDead(Dead));
  const Function *Main = M.findFunction(F.MainId);
  EXPECT_EQ(Main->findBlock(F.ThenBlock)->terminator().Opcode,
            Op::BranchConditional);
  expectValidAndEquivalent(F.M, M, F.Input);
  expectSerializationRoundTrip(Add);
}

TEST(AddDeadBlock, RequiresUnconditionalBranchAndTrueConstant) {
  Fixture F;
  Module M = F.M;
  FactManager Facts;
  ModuleBuilder Builder(M);
  Id TrueConst = Builder.getBoolConstant(true);
  Id FalseConst = Builder.getBoolConstant(false);
  ModuleAnalysis Analysis(M);
  // The entry block ends with a conditional branch: rejected.
  EXPECT_FALSE(TransformationAddDeadBlock(M.Bound + 1, F.EntryBlock, TrueConst)
                   .isApplicable(M, Analysis, Facts));
  // A false constant as guard: rejected.
  EXPECT_FALSE(TransformationAddDeadBlock(M.Bound + 1, F.ThenBlock, FalseConst)
                   .isApplicable(M, Analysis, Facts));
}

TEST(ReplaceBranchWithKill, RequiresDeadBlockFact) {
  Fixture F;
  Module M = F.M;
  FactManager Facts;
  ModuleAnalysis Analysis(M);
  // Without the fact, killing is rejected even for an actually-dead block.
  EXPECT_FALSE(TransformationReplaceBranchWithKill(F.ThenBlock)
                   .isApplicable(M, Analysis, Facts));
}

TEST(ReplaceBranchWithKill, KillsDeadBlock) {
  Fixture F;
  Module M = F.M;
  FactManager Facts;
  ModuleBuilder Builder(M);
  Id TrueConst = Builder.getBoolConstant(true);
  Id Dead = M.Bound + 1;
  ASSERT_TRUE(applyIfApplicable(
      M, Facts, TransformationAddDeadBlock(Dead, F.ThenBlock, TrueConst)));
  TransformationReplaceBranchWithKill Kill(Dead);
  EXPECT_TRUE(applyIfApplicable(M, Facts, Kill));
  EXPECT_EQ(M.findFunction(F.MainId)->findBlock(Dead)->terminator().Opcode,
            Op::Kill);
  expectValidAndEquivalent(F.M, M, F.Input);
  expectSerializationRoundTrip(Kill);
}

//===----------------------------------------------------------------------===//
// ReplaceBranchWithConditional / InvertBranchCondition / MoveBlockDown
//===----------------------------------------------------------------------===//

TEST(ReplaceBranchWithConditional, DegenerateConditionalPreservesSemantics) {
  Fixture F;
  Module M = F.M;
  FactManager Facts;
  ModuleBuilder Builder(M);
  Id FalseConst = Builder.getBoolConstant(false);
  TransformationReplaceBranchWithConditional Replace(F.ElseBlock, FalseConst,
                                                     false);
  EXPECT_TRUE(applyIfApplicable(M, Facts, Replace));
  const Instruction &Term =
      M.findFunction(F.MainId)->findBlock(F.ElseBlock)->terminator();
  EXPECT_EQ(Term.Opcode, Op::BranchConditional);
  EXPECT_EQ(Term.idOperand(1), Term.idOperand(2));
  expectValidAndEquivalent(F.M, M, F.Input);
  expectSerializationRoundTrip(Replace);
}

TEST(InvertBranchCondition, NegatesAndSwaps) {
  Fixture F;
  Module M = F.M;
  FactManager Facts;
  Id NotId = M.Bound + 1;
  TransformationInvertBranchCondition Invert(F.EntryBlock, NotId);
  EXPECT_TRUE(applyIfApplicable(M, Facts, Invert));
  const Instruction &Term =
      M.findFunction(F.MainId)->findBlock(F.EntryBlock)->terminator();
  EXPECT_EQ(Term.idOperand(0), NotId);
  EXPECT_EQ(Term.idOperand(1), F.ElseBlock);
  EXPECT_EQ(Term.idOperand(2), F.ThenBlock);
  expectValidAndEquivalent(F.M, M, F.Input);
  expectSerializationRoundTrip(Invert);
}

TEST(MoveBlockDown, SwapsIndependentSiblings) {
  Fixture F;
  Module M = F.M;
  FactManager Facts;
  // Then and Else are dominance-independent: the swap is legal.
  TransformationMoveBlockDown Move(F.ThenBlock);
  EXPECT_TRUE(applyIfApplicable(M, Facts, Move));
  const Function *Main = M.findFunction(F.MainId);
  EXPECT_EQ(Main->Blocks[1].LabelId, F.ElseBlock);
  EXPECT_EQ(Main->Blocks[2].LabelId, F.ThenBlock);
  expectValidAndEquivalent(F.M, M, F.Input);
  expectSerializationRoundTrip(Move);
}

TEST(MoveBlockDown, RejectsEntryAndDominatorViolations) {
  Fixture F;
  Module M = F.M;
  FactManager Facts;
  ModuleAnalysis Analysis(M);
  // The entry block may not move.
  EXPECT_FALSE(TransformationMoveBlockDown(F.EntryBlock)
                   .isApplicable(M, Analysis, Facts));
  // The last block has no successor to swap with.
  EXPECT_FALSE(TransformationMoveBlockDown(F.MergeBlock)
                   .isApplicable(M, Analysis, Facts));
}

//===----------------------------------------------------------------------===//
// PropagateInstructionUp / PermutePhiOperands
//===----------------------------------------------------------------------===//

TEST(PropagateInstructionUp, CreatesPhiOverCopies) {
  Fixture F;
  Module M = F.M;
  FactManager Facts;
  // The merge block's first instruction is "load L": propagate it into
  // Then and Else.
  Id FreshThen = M.takeFreshId();
  Id FreshElse = M.takeFreshId();
  TransformationPropagateInstructionUp Propagate(
      F.MergeBlock, {F.ThenBlock, FreshThen, F.ElseBlock, FreshElse});
  EXPECT_TRUE(applyIfApplicable(M, Facts, Propagate));
  const BasicBlock *Merge =
      M.findFunction(F.MainId)->findBlock(F.MergeBlock);
  EXPECT_EQ(Merge->Body[0].Opcode, Op::Phi);
  EXPECT_EQ(Merge->Body[0].Operands.size(), 4u);
  expectValidAndEquivalent(F.M, M, F.Input);
  expectSerializationRoundTrip(Propagate);
}

TEST(PropagateInstructionUp, RejectsBlockWithoutPreds) {
  Fixture F;
  Module M = F.M;
  FactManager Facts;
  ModuleAnalysis Analysis(M);
  EXPECT_FALSE(TransformationPropagateInstructionUp(F.EntryBlock, {})
                   .isApplicable(M, Analysis, Facts));
}

TEST(PermutePhiOperands, ReordersPairs) {
  Fixture F;
  Module M = F.M;
  FactManager Facts;
  Id FreshThen = M.takeFreshId();
  Id FreshElse = M.takeFreshId();
  ASSERT_TRUE(applyIfApplicable(
      M, Facts,
      TransformationPropagateInstructionUp(
          F.MergeBlock, {F.ThenBlock, FreshThen, F.ElseBlock, FreshElse})));
  const BasicBlock *Merge =
      M.findFunction(F.MainId)->findBlock(F.MergeBlock);
  InstructionDescriptor PhiDesc = describeInstruction(*Merge, 0);
  TransformationPermutePhiOperands Permute(PhiDesc, {1, 0});
  EXPECT_TRUE(applyIfApplicable(M, Facts, Permute));
  EXPECT_EQ(M.findFunction(F.MainId)
                ->findBlock(F.MergeBlock)
                ->Body[0]
                .idOperand(1),
            F.ElseBlock);
  expectValidAndEquivalent(F.M, M, F.Input);
  // A non-permutation is rejected.
  ModuleAnalysis Analysis(M);
  EXPECT_FALSE(TransformationPermutePhiOperands(PhiDesc, {0, 0})
                   .isApplicable(M, Analysis, Facts));
  expectSerializationRoundTrip(Permute);
}

//===----------------------------------------------------------------------===//
// Stores, loads and synonyms
//===----------------------------------------------------------------------===//

TEST(AddStore, RequiresDeadBlockOrIrrelevantPointee) {
  Fixture F;
  Module M = F.M;
  FactManager Facts;
  const BasicBlock *Merge = M.findFunction(F.MainId)->findBlock(F.MergeBlock);
  InstructionDescriptor Where = describeInstruction(*Merge, 0);
  ModuleAnalysis Analysis(M);
  // Storing to the local in live code without a fact: rejected.
  TransformationAddStore Bad(F.LocalL, F.Const5, Where);
  EXPECT_FALSE(Bad.isApplicable(M, Analysis, Facts));
  // With an IrrelevantPointee fact it is allowed... but LocalL is NOT
  // irrelevant (the output depends on it), so instead mark the block dead
  // to exercise the other disjunct — that would be unsound for real code,
  // so use a genuinely irrelevant fresh variable instead.
  ModuleBuilder Builder(M);
  Id FunctionPtr = Builder.getPointerType(StorageClass::Function, F.IntType);
  Id Scratch = M.Bound + 1;
  ASSERT_TRUE(applyIfApplicable(
      M, Facts,
      TransformationAddLocalVariable(Scratch, FunctionPtr, F.MainId,
                                     F.Const2)));
  TransformationAddStore Good(Scratch, F.Const5, Where);
  EXPECT_TRUE(applyIfApplicable(M, Facts, Good));
  expectValidAndEquivalent(F.M, M, F.Input);
  expectSerializationRoundTrip(Good);
}

TEST(AddStore, RejectsUniformTarget) {
  Fixture F;
  Module M = F.M;
  FactManager Facts;
  Facts.addDeadBlock(F.ElseBlock); // pretend, to isolate the uniform check
  const BasicBlock *Else = M.findFunction(F.MainId)->findBlock(F.ElseBlock);
  ModuleAnalysis Analysis(M);
  TransformationAddStore Bad(F.U0, F.Const5,
                             describeInstruction(*Else, 0));
  EXPECT_FALSE(Bad.isApplicable(M, Analysis, Facts));
}

TEST(AddLoad, LoadsAnywhereButNotFromOutputs) {
  Fixture F;
  Module M = F.M;
  FactManager Facts;
  const BasicBlock *Merge = M.findFunction(F.MainId)->findBlock(F.MergeBlock);
  InstructionDescriptor Where = describeInstruction(*Merge, 0);
  Id Fresh = M.Bound + 1;
  TransformationAddLoad Load(Fresh, F.U0, Where);
  EXPECT_TRUE(applyIfApplicable(M, Facts, Load));
  EXPECT_FALSE(Facts.idIsIrrelevant(Fresh)); // U0 is a real input
  ModuleAnalysis Analysis(M);
  EXPECT_FALSE(TransformationAddLoad(M.Bound + 1, F.Out, Where)
                   .isApplicable(M, Analysis, Facts));
  expectValidAndEquivalent(F.M, M, F.Input);
  expectSerializationRoundTrip(Load);
}

TEST(AddLoad, IrrelevantPointeeGivesIrrelevantResult) {
  Fixture F;
  Module M = F.M;
  FactManager Facts;
  ModuleBuilder Builder(M);
  Id PrivatePtr = Builder.getPointerType(StorageClass::Private, F.IntType);
  Id Scratch = M.Bound + 1;
  ASSERT_TRUE(applyIfApplicable(
      M, Facts,
      TransformationAddGlobalVariable(Scratch, PrivatePtr, InvalidId)));
  const BasicBlock *Merge = M.findFunction(F.MainId)->findBlock(F.MergeBlock);
  Id Fresh = M.Bound + 1;
  ASSERT_TRUE(applyIfApplicable(
      M, Facts,
      TransformationAddLoad(Fresh, Scratch, describeInstruction(*Merge, 0))));
  EXPECT_TRUE(Facts.idIsIrrelevant(Fresh));
}

TEST(Synonyms, CopyObjectRecordsFactAndReplacementWorks) {
  Fixture F;
  Module M = F.M;
  FactManager Facts;
  const BasicBlock *Merge = M.findFunction(F.MainId)->findBlock(F.MergeBlock);
  Id LoadL = Merge->Body[0].Result;
  InstructionDescriptor BeforeStore = describeInstruction(*Merge, 1);
  Id Copy = M.Bound + 1;
  TransformationAddSynonymViaCopyObject AddCopy(Copy, LoadL, BeforeStore);
  EXPECT_TRUE(applyIfApplicable(M, Facts, AddCopy));
  EXPECT_TRUE(Facts.areSynonymous(DataDescriptor(Copy), DataDescriptor(LoadL)));

  // Replace the store's value operand with the synonym.
  TransformationReplaceIdWithSynonym Replace(BeforeStore, 1, Copy);
  EXPECT_TRUE(applyIfApplicable(M, Facts, Replace));
  expectValidAndEquivalent(F.M, M, F.Input);
  expectSerializationRoundTrip(AddCopy);
  expectSerializationRoundTrip(Replace);
}

TEST(Synonyms, ArithmeticIdentitiesPreserveSemantics) {
  Fixture F;
  for (uint32_t Which : {TransformationAddArithmeticSynonym::AddZero,
                         TransformationAddArithmeticSynonym::SubZero,
                         TransformationAddArithmeticSynonym::MulOne,
                         TransformationAddArithmeticSynonym::ZeroPlus}) {
    Module M = F.M;
    FactManager Facts;
    ModuleBuilder Builder(M);
    Id ConstId = Builder.getIntConstant(
        Which == TransformationAddArithmeticSynonym::MulOne ? 1 : 0);
    const BasicBlock *Merge =
        M.findFunction(F.MainId)->findBlock(F.MergeBlock);
    Id LoadL = Merge->Body[0].Result;
    InstructionDescriptor BeforeStore = describeInstruction(*Merge, 1);
    Id Fresh = M.Bound + 1;
    TransformationAddArithmeticSynonym Add(Fresh, LoadL, Which, ConstId,
                                           BeforeStore);
    ASSERT_TRUE(applyIfApplicable(M, Facts, Add)) << "identity " << Which;
    ASSERT_TRUE(applyIfApplicable(
        M, Facts,
        TransformationReplaceIdWithSynonym(BeforeStore, 1, Fresh)));
    expectValidAndEquivalent(F.M, M, F.Input);
  }
}

TEST(Synonyms, ReplacementRejectedWithoutFactOrAvailability) {
  Fixture F;
  Module M = F.M;
  FactManager Facts;
  const BasicBlock *Merge = M.findFunction(F.MainId)->findBlock(F.MergeBlock);
  InstructionDescriptor BeforeStore = describeInstruction(*Merge, 1);
  ModuleAnalysis Analysis(M);
  // No synonym fact between LoadX and Const5.
  EXPECT_FALSE(TransformationReplaceIdWithSynonym(BeforeStore, 1, F.Const5)
                   .isApplicable(M, Analysis, Facts));
}

TEST(ReplaceIrrelevantId, UpgradesTrivialArgument) {
  Fixture F;
  Module M = F.M;
  FactManager Facts;
  // Make an irrelevant constant, use it in a fresh store to a scratch
  // variable, then replace that use with a live value.
  ModuleBuilder Builder(M);
  Id FunctionPtr = Builder.getPointerType(StorageClass::Function, F.IntType);
  Id Scratch = M.Bound + 1;
  ASSERT_TRUE(applyIfApplicable(
      M, Facts,
      TransformationAddLocalVariable(Scratch, FunctionPtr, F.MainId,
                                     InvalidId)));
  Id TrivialConst = M.Bound + 1;
  ASSERT_TRUE(applyIfApplicable(
      M, Facts,
      TransformationAddConstantScalar(TrivialConst, F.IntType, 0, true)));
  const BasicBlock *Merge = M.findFunction(F.MainId)->findBlock(F.MergeBlock);
  InstructionDescriptor BeforeStore = describeInstruction(*Merge, 1);
  ASSERT_TRUE(applyIfApplicable(
      M, Facts,
      TransformationAddStore(Scratch, TrivialConst, BeforeStore)));

  // Find the new store and upgrade its irrelevant value operand.
  const BasicBlock *MergeNow =
      M.findFunction(F.MainId)->findBlock(F.MergeBlock);
  InstructionDescriptor StoreDesc = describeInstruction(*MergeNow, 1);
  ASSERT_EQ(locateInstructionConst(M, StoreDesc).instruction().Opcode,
            Op::Store);
  Id LoadL = MergeNow->Body[0].Result;
  TransformationReplaceIrrelevantId Upgrade(StoreDesc, 1, LoadL);
  EXPECT_TRUE(applyIfApplicable(M, Facts, Upgrade));
  expectValidAndEquivalent(F.M, M, F.Input);
  expectSerializationRoundTrip(Upgrade);
}

TEST(ReplaceConstantWithUniform, ObfuscatesMatchingConstantOnly) {
  Fixture F;
  Module M = F.M;
  FactManager Facts;
  Facts.setKnownInput(F.Input);
  ModuleBuilder Builder(M);
  Id Const7 = Builder.getIntConstant(7); // equals U0's runtime value
  // Use the constant in a store to the output in the merge block.
  const BasicBlock *Merge = M.findFunction(F.MainId)->findBlock(F.MergeBlock);
  InstructionDescriptor BeforeStore = describeInstruction(*Merge, 1);
  Id Copy = M.Bound + 1;
  ASSERT_TRUE(applyIfApplicable(
      M, Facts,
      TransformationAddSynonymViaCopyObject(Copy, Const7, BeforeStore)));
  const BasicBlock *MergeNow =
      M.findFunction(F.MainId)->findBlock(F.MergeBlock);
  InstructionDescriptor CopyDesc = describeInstruction(*MergeNow, 1);
  ASSERT_EQ(locateInstructionConst(M, CopyDesc).instruction().Opcode,
            Op::CopyObject);

  // Obfuscate the copy's constant operand with the matching uniform.
  Id FreshLoad = M.Bound + 1;
  TransformationReplaceConstantWithUniform Obfuscate(CopyDesc, 0, F.U0,
                                                     FreshLoad);
  EXPECT_TRUE(applyIfApplicable(M, Facts, Obfuscate));
  expectValidAndEquivalent(F.M, M, F.Input);
  expectSerializationRoundTrip(Obfuscate);

  // A constant whose value differs from the uniform is rejected.
  ModuleAnalysis Analysis(M);
  const BasicBlock *MergeAfter =
      M.findFunction(F.MainId)->findBlock(F.MergeBlock);
  InstructionDescriptor StoreDesc = describeInstruction(
      *MergeAfter, MergeAfter->Body.size() - 2); // the output store
  (void)StoreDesc;
  TransformationReplaceConstantWithUniform Bad(CopyDesc, 0, F.U1,
                                               M.Bound + 1);
  EXPECT_FALSE(Bad.isApplicable(M, Analysis, Facts));
}

TEST(SwapCommutableOperands, SwapsOnlyCommutativeOps) {
  Fixture F;
  Module M = F.M;
  FactManager Facts;
  const BasicBlock *Helper =
      M.findFunction(F.HelperId)->findBlock(F.HelperBlock);
  InstructionDescriptor AddDesc = describeInstruction(*Helper, 0);
  TransformationSwapCommutableOperands Swap(AddDesc);
  EXPECT_TRUE(applyIfApplicable(M, Facts, Swap));
  const Instruction &Add = M.findFunction(F.HelperId)
                               ->findBlock(F.HelperBlock)
                               ->Body[0];
  EXPECT_EQ(Add.idOperand(0), F.Const3);
  EXPECT_EQ(Add.idOperand(1), F.HelperParam);
  expectValidAndEquivalent(F.M, M, F.Input);
  // The entry block's comparison (SGreaterThan) is not commutative.
  const BasicBlock &Entry = M.findFunction(F.MainId)->entryBlock();
  ModuleAnalysis Analysis(M);
  EXPECT_FALSE(TransformationSwapCommutableOperands(
                   describeInstruction(Entry, 2))
                   .isApplicable(M, Analysis, Facts));
  expectSerializationRoundTrip(Swap);
}

//===----------------------------------------------------------------------===//
// Composites
//===----------------------------------------------------------------------===//

TEST(Composites, ConstructExtractChainYieldsUsableSynonym) {
  Fixture F;
  Module M = F.M;
  FactManager Facts;
  ModuleBuilder Builder(M);
  Id Vec2 = Builder.getVectorType(F.IntType, 2);
  const BasicBlock *Merge = M.findFunction(F.MainId)->findBlock(F.MergeBlock);
  Id LoadL = Merge->Body[0].Result;
  InstructionDescriptor BeforeStore = describeInstruction(*Merge, 1);

  Id Composite = M.Bound + 1;
  TransformationCompositeConstruct Construct(Composite, Vec2,
                                             {LoadL, F.Const5}, BeforeStore);
  EXPECT_TRUE(applyIfApplicable(M, Facts, Construct));
  Id Extracted = M.Bound + 1;
  TransformationCompositeExtract Extract(Extracted, Composite, 0,
                                         BeforeStore);
  EXPECT_TRUE(applyIfApplicable(M, Facts, Extract));

  // Through the union-find: extract-result ~ composite[0] ~ LoadL.
  EXPECT_TRUE(
      Facts.areSynonymous(DataDescriptor(Extracted), DataDescriptor(LoadL)));
  EXPECT_TRUE(applyIfApplicable(
      M, Facts,
      TransformationReplaceIdWithSynonym(BeforeStore, 1, Extracted)));
  expectValidAndEquivalent(F.M, M, F.Input);
  expectSerializationRoundTrip(Construct);
  expectSerializationRoundTrip(Extract);
}

TEST(Composites, ExtractIndexOutOfRangeRejected) {
  Fixture F;
  Module M = F.M;
  FactManager Facts;
  ModuleBuilder Builder(M);
  Id Vec2 = Builder.getVectorType(F.IntType, 2);
  const BasicBlock *Merge = M.findFunction(F.MainId)->findBlock(F.MergeBlock);
  Id LoadL = Merge->Body[0].Result;
  InstructionDescriptor BeforeStore = describeInstruction(*Merge, 1);
  Id Composite = M.Bound + 1;
  ASSERT_TRUE(applyIfApplicable(
      M, Facts,
      TransformationCompositeConstruct(Composite, Vec2, {LoadL, F.Const5},
                                       BeforeStore)));
  ModuleAnalysis Analysis(M);
  EXPECT_FALSE(TransformationCompositeExtract(M.Bound + 1, Composite, 2,
                                              BeforeStore)
                   .isApplicable(M, Analysis, Facts));
}

TEST(Synonyms, PhiSynonymAtMergePoint) {
  Fixture F;
  Module M = F.M;
  FactManager Facts;
  // LoadX is defined in the entry block, so it reaches the end of both
  // arms: a phi over it at the merge block is a synonym.
  Id Fresh = M.Bound + 1;
  TransformationAddSynonymViaPhi Add(Fresh, F.LoadX, F.MergeBlock);
  EXPECT_TRUE(applyIfApplicable(M, Facts, Add));
  const BasicBlock *Merge = M.findFunction(F.MainId)->findBlock(F.MergeBlock);
  EXPECT_EQ(Merge->Body[0].Opcode, Op::Phi);
  EXPECT_EQ(Merge->Body[0].Result, Fresh);
  EXPECT_TRUE(
      Facts.areSynonymous(DataDescriptor(Fresh), DataDescriptor(F.LoadX)));
  // Create a use of LoadX in the merge block, then swap it for the phi.
  ModuleBuilder Builder(M);
  Id Zero = Builder.getIntConstant(0);
  InstructionDescriptor StoreDesc = describeInstruction(*Merge, 2);
  Id AddZeroId = M.Bound + 1;
  ASSERT_TRUE(applyIfApplicable(
      M, Facts,
      TransformationAddArithmeticSynonym(
          AddZeroId, F.LoadX, TransformationAddArithmeticSynonym::AddZero,
          Zero, StoreDesc)));
  const BasicBlock *MergeNow =
      M.findFunction(F.MainId)->findBlock(F.MergeBlock);
  InstructionDescriptor UseDesc = describeInstruction(*MergeNow, 2);
  ASSERT_EQ(locateInstructionConst(M, UseDesc).instruction().Opcode,
            Op::IAdd);
  EXPECT_TRUE(applyIfApplicable(
      M, Facts, TransformationReplaceIdWithSynonym(UseDesc, 0, Fresh)));
  expectValidAndEquivalent(F.M, M, F.Input);
  expectSerializationRoundTrip(Add);
}

TEST(Synonyms, PhiSynonymRejectsEntryAndArmLocalValues) {
  Fixture F;
  Module M = F.M;
  FactManager Facts;
  ModuleAnalysis Analysis(M);
  // The entry block has no predecessors.
  EXPECT_FALSE(TransformationAddSynonymViaPhi(M.Bound + 1, F.LoadX,
                                              F.EntryBlock)
                   .isApplicable(M, Analysis, Facts));
  // CallY exists only on the then-arm, so it cannot feed a merge phi from
  // the else edge.
  EXPECT_FALSE(TransformationAddSynonymViaPhi(M.Bound + 1, F.CallY,
                                              F.MergeBlock)
                   .isApplicable(M, Analysis, Facts));
}

//===----------------------------------------------------------------------===//
// Function transformations
//===----------------------------------------------------------------------===//

TEST(ToggleDontInline, TogglesAndRefusesNoOp) {
  Fixture F;
  Module M = F.M;
  FactManager Facts;
  TransformationToggleDontInline Enable(F.HelperId, true);
  EXPECT_TRUE(applyIfApplicable(M, Facts, Enable));
  EXPECT_TRUE(M.findFunction(F.HelperId)->isDontInline());
  ModuleAnalysis Analysis(M);
  // Enabling again is a no-op and therefore inapplicable.
  EXPECT_FALSE(Enable.isApplicable(M, Analysis, Facts));
  expectValidAndEquivalent(F.M, M, F.Input);
  expectSerializationRoundTrip(Enable);
}

TEST(AddFunction, EncodeDecodeRoundTripsAndTransplants) {
  Fixture F;
  // Encode the helper with refreshed ids and add it as a second helper.
  Function Adapted = *F.M.findFunction(F.HelperId);
  Module M = F.M;
  Id Base = M.Bound + 100;
  Adapted.Def.Result = Base + 1;
  Adapted.Params[0].Result = Base + 2;
  Adapted.Blocks[0].LabelId = Base + 3;
  Adapted.Blocks[0].Body[0].Result = Base + 4;
  Adapted.Blocks[0].Body[0].Operands[0] = Operand::id(Base + 2);
  Adapted.Blocks[0].Body[1].Operands[0] = Operand::id(Base + 4);

  std::vector<uint32_t> Encoded =
      TransformationAddFunction::encodeFunction(Adapted);
  Function Decoded;
  ASSERT_TRUE(TransformationAddFunction::decodeFunction(Encoded, Decoded));
  EXPECT_EQ(TransformationAddFunction::encodeFunction(Decoded), Encoded);

  FactManager Facts;
  TransformationAddFunction Add(Encoded, /*MakeLiveSafe=*/true);
  EXPECT_TRUE(applyIfApplicable(M, Facts, Add));
  EXPECT_TRUE(Facts.functionIsLiveSafe(Base + 1));
  EXPECT_TRUE(Facts.idIsIrrelevant(Base + 2)); // live-safe params
  expectValidAndEquivalent(F.M, M, F.Input);
  expectSerializationRoundTrip(Add);
}

TEST(AddFunction, RejectsClashingIdsAndMalformedEncoding) {
  Fixture F;
  Module M = F.M;
  FactManager Facts;
  ModuleAnalysis Analysis(M);
  // Re-adding the helper verbatim clashes with existing ids.
  std::vector<uint32_t> Clash =
      TransformationAddFunction::encodeFunction(*M.findFunction(F.HelperId));
  EXPECT_FALSE(TransformationAddFunction(Clash, false)
                   .isApplicable(M, Analysis, Facts));
  // Garbage words do not decode.
  EXPECT_FALSE(TransformationAddFunction({1, 2, 3}, false)
                   .isApplicable(M, Analysis, Facts));
}

TEST(AddFunctionCall, DeadBlockAllowsArbitraryCallee) {
  Fixture F;
  Module M = F.M;
  FactManager Facts;
  ModuleBuilder Builder(M);
  Id TrueConst = Builder.getBoolConstant(true);
  Id Dead = M.Bound + 1;
  ASSERT_TRUE(applyIfApplicable(
      M, Facts, TransformationAddDeadBlock(Dead, F.ThenBlock, TrueConst)));
  const BasicBlock *DeadBlock = M.findFunction(F.MainId)->findBlock(Dead);
  InstructionDescriptor Where = describeInstruction(*DeadBlock, 0);
  Id CallId = M.Bound + 1;
  TransformationAddFunctionCall Call(CallId, F.HelperId, {F.Const5}, Where);
  EXPECT_TRUE(applyIfApplicable(M, Facts, Call));
  EXPECT_TRUE(Facts.idIsIrrelevant(CallId));
  expectValidAndEquivalent(F.M, M, F.Input);
  expectSerializationRoundTrip(Call);
}

TEST(AddFunctionCall, LiveCodeRequiresLiveSafeCallee) {
  Fixture F;
  Module M = F.M;
  FactManager Facts;
  const BasicBlock *Merge = M.findFunction(F.MainId)->findBlock(F.MergeBlock);
  InstructionDescriptor Where = describeInstruction(*Merge, 0);
  ModuleAnalysis Analysis(M);
  TransformationAddFunctionCall Call(M.Bound + 1, F.HelperId, {F.Const5},
                                     Where);
  EXPECT_FALSE(Call.isApplicable(M, Analysis, Facts));
  Facts.addLiveSafeFunction(F.HelperId);
  EXPECT_TRUE(Call.isApplicable(M, Analysis, Facts));
}

TEST(AddFunctionCall, RejectsRecursionAndEntryCallee) {
  Fixture F;
  Module M = F.M;
  FactManager Facts;
  Facts.addLiveSafeFunction(F.HelperId);
  const BasicBlock *Helper =
      M.findFunction(F.HelperId)->findBlock(F.HelperBlock);
  InstructionDescriptor InHelper = describeInstruction(*Helper, 0);
  ModuleAnalysis Analysis(M);
  // helper -> helper is direct recursion.
  EXPECT_FALSE(
      TransformationAddFunctionCall(M.Bound + 1, F.HelperId, {F.Const5},
                                    InHelper)
          .isApplicable(M, Analysis, Facts));
  // Calling the entry point is always rejected.
  Facts.addLiveSafeFunction(F.MainId);
  const BasicBlock *Merge = M.findFunction(F.MainId)->findBlock(F.MergeBlock);
  EXPECT_FALSE(TransformationAddFunctionCall(M.Bound + 1, F.MainId, {},
                                             describeInstruction(*Merge, 0))
                   .isApplicable(M, Analysis, Facts));
}

TEST(InlineFunction, InlinesCallWithExplicitIdMap) {
  Fixture F;
  Module M = F.M;
  FactManager Facts;
  // Build the id map for the helper's label and result ids.
  const Function *Helper = M.findFunction(F.HelperId);
  std::vector<uint32_t> IdMap;
  for (const BasicBlock &Block : Helper->Blocks) {
    IdMap.push_back(Block.LabelId);
    IdMap.push_back(M.takeFreshId());
    for (const Instruction &Inst : Block.Body)
      if (Inst.Result != InvalidId) {
        IdMap.push_back(Inst.Result);
        IdMap.push_back(M.takeFreshId());
      }
  }
  const BasicBlock *Then = M.findFunction(F.MainId)->findBlock(F.ThenBlock);
  InstructionDescriptor CallDesc = describeInstruction(*Then, 0);
  TransformationInlineFunction Inline(CallDesc, M.takeFreshId(), IdMap);
  EXPECT_TRUE(applyIfApplicable(M, Facts, Inline));
  // The call is gone from main.
  for (const BasicBlock &Block : M.findFunction(F.MainId)->Blocks)
    for (const Instruction &Inst : Block.Body)
      EXPECT_NE(Inst.Opcode, Op::FunctionCall);
  expectValidAndEquivalent(F.M, M, F.Input);
  expectSerializationRoundTrip(Inline);
}

TEST(InlineFunction, RejectsIncompleteIdMap) {
  Fixture F;
  Module M = F.M;
  FactManager Facts;
  const BasicBlock *Then = M.findFunction(F.MainId)->findBlock(F.ThenBlock);
  InstructionDescriptor CallDesc = describeInstruction(*Then, 0);
  ModuleAnalysis Analysis(M);
  EXPECT_FALSE(TransformationInlineFunction(CallDesc, M.Bound + 1, {})
                   .isApplicable(M, Analysis, Facts));
}

TEST(AddParameter, AppendsParameterAndUpdatesCallSites) {
  Fixture F;
  Module M = F.M;
  FactManager Facts;
  Id NewFuncType = M.Bound + 50;
  ASSERT_TRUE(applyIfApplicable(
      M, Facts,
      TransformationAddTypeFunction(NewFuncType, F.IntType,
                                    {F.IntType, F.IntType})));
  Id TrivialConst = M.Bound + 1;
  ASSERT_TRUE(applyIfApplicable(
      M, Facts,
      TransformationAddConstantScalar(TrivialConst, F.IntType, 0, true)));
  Id NewParam = M.Bound + 1;
  TransformationAddParameter Add(F.HelperId, NewParam, F.IntType, NewFuncType,
                                 TrivialConst);
  EXPECT_TRUE(applyIfApplicable(M, Facts, Add));
  EXPECT_EQ(M.findFunction(F.HelperId)->Params.size(), 2u);
  EXPECT_TRUE(Facts.idIsIrrelevant(NewParam));
  // The call in the then-block received the extra argument.
  const BasicBlock *Then = M.findFunction(F.MainId)->findBlock(F.ThenBlock);
  EXPECT_EQ(Then->Body[0].Operands.size(), 3u);
  expectValidAndEquivalent(F.M, M, F.Input);
  expectSerializationRoundTrip(Add);
}

TEST(AddParameter, RejectsEntryPointAndWrongType) {
  Fixture F;
  Module M = F.M;
  FactManager Facts;
  ModuleAnalysis Analysis(M);
  EXPECT_FALSE(TransformationAddParameter(F.MainId, M.Bound + 1, F.IntType,
                                          F.IntType, F.Const2)
                   .isApplicable(M, Analysis, Facts));
}

//===----------------------------------------------------------------------===//
// Sequence semantics (Definition 2.5)
//===----------------------------------------------------------------------===//

TEST(ApplySequence, SkipsTransformationsWithFailedPreconditions) {
  Fixture F;
  Module M = F.M;
  FactManager Facts;
  ModuleBuilder Builder(M);
  Id TrueConst = Builder.getBoolConstant(true);
  Module Clean = M;

  Id Dead = M.takeFreshId();
  // A sequence where the second transformation depends on the first.
  TransformationSequence Sequence = {
      std::make_shared<TransformationAddDeadBlock>(Dead, F.ThenBlock,
                                                   TrueConst),
      std::make_shared<TransformationReplaceBranchWithKill>(Dead),
  };
  {
    Module Applied = Clean;
    FactManager AppliedFacts;
    EXPECT_EQ(applySequence(Applied, AppliedFacts, Sequence).size(), 2u);
  }
  {
    // Dropping the enabler makes the dependent transformation skip, not
    // fail.
    TransformationSequence Tail = {Sequence[1]};
    Module Applied = Clean;
    FactManager AppliedFacts;
    EXPECT_TRUE(applySequence(Applied, AppliedFacts, Tail).empty());
    EXPECT_EQ(writeModuleText(Applied), writeModuleText(Clean));
  }
}

TEST(DedupKinds, IgnoreListMatchesSection35) {
  EXPECT_TRUE(isDedupIgnoredKind(TransformationKind::AddTypeInt));
  EXPECT_TRUE(isDedupIgnoredKind(TransformationKind::AddConstantScalar));
  EXPECT_TRUE(isDedupIgnoredKind(TransformationKind::SplitBlock));
  EXPECT_TRUE(isDedupIgnoredKind(TransformationKind::AddFunction));
  EXPECT_TRUE(isDedupIgnoredKind(TransformationKind::ReplaceIdWithSynonym));
  EXPECT_FALSE(isDedupIgnoredKind(TransformationKind::AddDeadBlock));
  EXPECT_FALSE(isDedupIgnoredKind(TransformationKind::InlineFunction));
  EXPECT_FALSE(isDedupIgnoredKind(TransformationKind::ToggleDontInline));
}

TEST(Serialization, RejectsGarbage) {
  std::string Error;
  EXPECT_EQ(deserializeTransformation("NoSuchKind a=1", Error), nullptr);
  EXPECT_FALSE(Error.empty());
  EXPECT_EQ(deserializeTransformation("", Error), nullptr);
  EXPECT_EQ(deserializeTransformation("SplitBlock nonsense", Error), nullptr);
  // Missing parameters.
  EXPECT_EQ(deserializeTransformation("SplitBlock", Error), nullptr);
}

} // namespace
