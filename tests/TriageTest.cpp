//===- tests/TriageTest.cpp - Pass bisection & localization tests ---------===//
//
// Part of the spirv-fuzz reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The triage subsystem's contract, checked against the injected-bug
/// ground truth: every solid crash bug on every fleet target bisects to
/// its exact culprit pass instance; miscompilations localize to the
/// rewriting pass; hang / flaky / tool-error signatures are declined
/// deterministically (never attributed to a wrong pass); attributeAll is
/// bit-identical at any job count; and attributions survive the store's
/// ATTR round trip.
///
//===----------------------------------------------------------------------===//

#include "campaign/Campaign.h"
#include "core/TransformationUtil.h"
#include "core/Transformations.h"
#include "opt/Passes.h"
#include "store/CampaignStore.h"
#include "triage/Triage.h"
#include "TestHelpers.h"

#include <unistd.h>

using namespace spvfuzz;
using namespace spvfuzz::test;
using namespace spvfuzz::triage;

namespace {

bool isMiscompilePoint(BugPoint Point) {
  return Point == BugPoint::MiscompileUniformBranchFold ||
         Point == BugPoint::MiscompilePhiLayoutOrder ||
         Point == BugPoint::MiscompileAliasBlindForward;
}

/// A module exhibiting one bug point's trigger feature, plus the input it
/// executes under.
struct TriggerModule {
  Module M;
  ShaderInput Input;
};

/// Builds the trigger-feature module for \p Point over the shared fixture
/// (the same recipes OptBugTriggersTest checks pass-by-pass). Unlike that
/// test, these modules must reproduce through a *full pipeline*, so the
/// dead-block recipes hide their branch constant behind a CopyObject
/// synonym where an honest DeadBranchElim would otherwise fold the block
/// away before the host pass runs.
TriggerModule makeTrigger(BugPoint Point) {
  Fixture F;
  FactManager Facts;
  Module &M = F.M;

  // Adds a dead block on the then-edge and returns its label.
  auto AddDead = [&]() {
    ModuleBuilder Builder(M);
    Id TrueConst = Builder.getBoolConstant(true);
    Id Dead = M.takeFreshId();
    EXPECT_TRUE(applyIfApplicable(
        M, Facts, TransformationAddDeadBlock(Dead, F.ThenBlock, TrueConst)));
    return Dead;
  };
  // Replaces the then-block terminator's condition with a CopyObject
  // synonym of it, so honest constant folding / dead-branch elimination
  // cannot see through it and the dead edge survives to later passes.
  auto HideThenBranchConstant = [&]() {
    const BasicBlock *Then = M.findFunction(F.MainId)->findBlock(F.ThenBlock);
    Id Cond = Then->terminator().idOperand(0);
    size_t TermIndex = Then->Body.size() - 1;
    Id Copy = M.takeFreshId();
    EXPECT_TRUE(applyIfApplicable(
        M, Facts,
        TransformationAddSynonymViaCopyObject(
            Copy, Cond, describeInstruction(*Then, TermIndex))));
    Then = M.findFunction(F.MainId)->findBlock(F.ThenBlock);
    EXPECT_TRUE(applyIfApplicable(
        M, Facts,
        TransformationReplaceIdWithSynonym(
            describeInstruction(*Then, Then->Body.size() - 1), 0, Copy)));
  };

  switch (Point) {
  case BugPoint::CrashKillObstructsMerge: {
    Id Dead = AddDead();
    EXPECT_TRUE(applyIfApplicable(M, Facts,
                                  TransformationReplaceBranchWithKill(Dead)));
    break;
  }
  case BugPoint::CrashKillInCallee: {
    BasicBlock *Helper = M.findFunction(F.HelperId)->findBlock(F.HelperBlock);
    Helper->Body.back() = ModuleBuilder::makeKill();
    break;
  }
  case BugPoint::CrashDeadStoreToModuleScope: {
    Id Dead = AddDead();
    ModuleBuilder Builder(M);
    Id PrivatePtr = Builder.getPointerType(StorageClass::Private, F.IntType);
    Id G = M.takeFreshId();
    EXPECT_TRUE(applyIfApplicable(
        M, Facts, TransformationAddGlobalVariable(G, PrivatePtr, InvalidId)));
    const BasicBlock *DeadBlock = M.findFunction(F.MainId)->findBlock(Dead);
    EXPECT_TRUE(applyIfApplicable(
        M, Facts,
        TransformationAddStore(G, F.Const5,
                               describeInstruction(*DeadBlock, 0))));
    break;
  }
  case BugPoint::CrashDontInlineAttribute:
    M.findFunction(F.HelperId)->setControlMask(FC_DontInline);
    break;
  case BugPoint::CrashWideCallArity: {
    // Grow the helper to four parameters (call sites grow with it).
    for (int I = 0; I < 3; ++I) {
      const Function *Helper = M.findFunction(F.HelperId);
      std::vector<Id> Signature;
      for (const Instruction &Param : Helper->Params)
        Signature.push_back(Param.ResultType);
      Signature.push_back(F.IntType);
      Id NewType = M.takeFreshId();
      EXPECT_TRUE(applyIfApplicable(
          M, Facts,
          TransformationAddTypeFunction(NewType, F.IntType, Signature)));
      EXPECT_TRUE(applyIfApplicable(
          M, Facts,
          TransformationAddParameter(F.HelperId, M.takeFreshId(), F.IntType,
                                     NewType, F.Const2)));
    }
    break;
  }
  case BugPoint::CrashCopyChainValueNumbering: {
    const BasicBlock *Merge =
        M.findFunction(F.MainId)->findBlock(F.MergeBlock);
    Id LoadL = Merge->Body[0].Result;
    InstructionDescriptor Where = describeInstruction(*Merge, 1);
    Id Copy1 = M.takeFreshId();
    EXPECT_TRUE(applyIfApplicable(
        M, Facts, TransformationAddSynonymViaCopyObject(Copy1, LoadL, Where)));
    Id Copy2 = M.takeFreshId();
    EXPECT_TRUE(applyIfApplicable(
        M, Facts, TransformationAddSynonymViaCopyObject(Copy2, Copy1, Where)));
    break;
  }
  case BugPoint::CrashPhiManyPredecessors: {
    // Phi in the merge block, then a third predecessor via a dead block.
    Id FreshThen = M.takeFreshId(), FreshElse = M.takeFreshId();
    EXPECT_TRUE(applyIfApplicable(
        M, Facts,
        TransformationPropagateInstructionUp(
            F.MergeBlock, {F.ThenBlock, FreshThen, F.ElseBlock, FreshElse})));
    AddDead();
    // NVIDIA (the bug's host) runs DeadBranchElim before BlockLayout;
    // hide the constant or the dead edge (and the third phi pair) folds.
    HideThenBranchConstant();
    break;
  }
  case BugPoint::CrashCompositeFold:
  case BugPoint::CrashUnusedComposite: {
    ModuleBuilder Builder(M);
    Id Vec2 = Builder.getVectorType(F.IntType, 2);
    const BasicBlock *Merge =
        M.findFunction(F.MainId)->findBlock(F.MergeBlock);
    Id LoadL = Merge->Body[0].Result;
    InstructionDescriptor Where = describeInstruction(*Merge, 1);
    Id Composite = M.takeFreshId();
    EXPECT_TRUE(applyIfApplicable(
        M, Facts,
        TransformationCompositeConstruct(Composite, Vec2, {LoadL, F.Const5},
                                         Where)));
    if (Point == BugPoint::CrashCompositeFold) {
      EXPECT_TRUE(applyIfApplicable(
          M, Facts,
          TransformationCompositeExtract(M.takeFreshId(), Composite, 1,
                                         Where)));
    }
    break;
  }
  case BugPoint::CrashPointerCopyAlias: {
    const BasicBlock *Else = M.findFunction(F.MainId)->findBlock(F.ElseBlock);
    InstructionDescriptor Where = describeInstruction(*Else, 0);
    Id PtrCopy = M.takeFreshId();
    EXPECT_TRUE(applyIfApplicable(
        M, Facts,
        TransformationAddSynonymViaCopyObject(PtrCopy, F.LocalL, Where)));
    EXPECT_TRUE(applyIfApplicable(
        M, Facts,
        TransformationReplaceIdWithSynonym(
            describeInstruction(
                *M.findFunction(F.MainId)->findBlock(F.ElseBlock), 1),
            0, PtrCopy)));
    break;
  }
  case BugPoint::CrashTrivialPhi: {
    // Inline the helper call: the single return becomes a one-entry phi.
    const Function *Helper = M.findFunction(F.HelperId);
    std::vector<uint32_t> IdMap;
    for (const BasicBlock &Block : Helper->Blocks) {
      IdMap.push_back(Block.LabelId);
      IdMap.push_back(M.takeFreshId());
      for (const Instruction &Inst : Block.Body)
        if (Inst.Result != InvalidId) {
          IdMap.push_back(Inst.Result);
          IdMap.push_back(M.takeFreshId());
        }
    }
    const BasicBlock *Then = M.findFunction(F.MainId)->findBlock(F.ThenBlock);
    EXPECT_TRUE(applyIfApplicable(
        M, Facts,
        TransformationInlineFunction(describeInstruction(*Then, 0),
                                     M.takeFreshId(), IdMap)));
    break;
  }
  case BugPoint::CrashEqualTargetBranch: {
    ModuleBuilder Builder(M);
    Id FalseConst = Builder.getBoolConstant(false);
    EXPECT_TRUE(applyIfApplicable(
        M, Facts,
        TransformationReplaceBranchWithConditional(F.ElseBlock, FalseConst,
                                                   false)));
    break;
  }
  case BugPoint::CrashStoreToPrivateGlobal: {
    ModuleBuilder Builder(M);
    Id PrivatePtr = Builder.getPointerType(StorageClass::Private, F.IntType);
    Id G = M.takeFreshId();
    EXPECT_TRUE(applyIfApplicable(
        M, Facts, TransformationAddGlobalVariable(G, PrivatePtr, InvalidId)));
    const BasicBlock *Merge =
        M.findFunction(F.MainId)->findBlock(F.MergeBlock);
    EXPECT_TRUE(applyIfApplicable(
        M, Facts,
        TransformationAddStore(G, F.Const5, describeInstruction(*Merge, 1))));
    break;
  }
  case BugPoint::CrashUnusedCallResult: {
    Facts.addLiveSafeFunction(F.HelperId);
    const BasicBlock *Merge =
        M.findFunction(F.MainId)->findBlock(F.MergeBlock);
    EXPECT_TRUE(applyIfApplicable(
        M, Facts,
        TransformationAddFunctionCall(M.takeFreshId(), F.HelperId, {F.Const5},
                                      describeInstruction(*Merge, 0))));
    break;
  }
  case BugPoint::CrashModuleFunctionLimit: {
    // The limit fires at five functions; the fixture has two.
    ModuleBuilder Builder(M);
    for (int I = 0; I < 3; ++I) {
      std::vector<Id> Params;
      Function &Fn = Builder.startFunction(F.IntType, {F.IntType}, &Params);
      Fn.entryBlock().Body.push_back(
          ModuleBuilder::makeReturnValue(Params[0]));
    }
    break;
  }
  case BugPoint::CrashNegatedConstantBranch: {
    ModuleBuilder Builder(M);
    Id FalseConst = Builder.getBoolConstant(false);
    EXPECT_TRUE(applyIfApplicable(
        M, Facts,
        TransformationReplaceBranchWithConditional(F.ElseBlock, FalseConst,
                                                   false)));
    EXPECT_TRUE(applyIfApplicable(
        M, Facts,
        TransformationInvertBranchCondition(F.ElseBlock, M.takeFreshId())));
    break;
  }
  case BugPoint::MiscompileAliasBlindForward: {
    // store L, 2; store copy(L), 3; load L — forwarding that ignores the
    // aliased store forwards the stale 2.
    BasicBlock *Merge = M.findFunction(F.MainId)->findBlock(F.MergeBlock);
    Id PtrCopy = M.takeFreshId();
    Id PtrType = M.typeOfId(F.LocalL);
    std::vector<Instruction> Prefix = {
        ModuleBuilder::makeStore(F.LocalL, F.Const2),
        ModuleBuilder::makeUnaryOp(Op::CopyObject, PtrType, PtrCopy,
                                   F.LocalL),
        ModuleBuilder::makeStore(PtrCopy, F.Const3),
    };
    Merge->Body.insert(Merge->Body.begin(), Prefix.begin(), Prefix.end());
    break;
  }
  case BugPoint::MiscompilePhiLayoutOrder: {
    // A phi whose operand order disagrees with reverse postorder.
    Id FreshThen = M.takeFreshId(), FreshElse = M.takeFreshId();
    EXPECT_TRUE(applyIfApplicable(
        M, Facts,
        TransformationPropagateInstructionUp(
            F.MergeBlock, {F.ThenBlock, FreshThen, F.ElseBlock, FreshElse})));
    break;
  }
  default:
    ADD_FAILURE() << "no trigger recipe for bug point "
                  << bugSignature(Point);
    break;
  }
  return {std::move(M), F.Input};
}

void expectSameAttribution(const BugAttribution &A, const BugAttribution &B) {
  EXPECT_EQ(A.Target, B.Target);
  EXPECT_EQ(A.Signature, B.Signature);
  EXPECT_EQ(A.Verdict, B.Verdict);
  EXPECT_EQ(A.Culprit, B.Culprit);
  EXPECT_EQ(A.PipelineIndex, B.PipelineIndex);
  EXPECT_EQ(A.InstanceIndex, B.InstanceIndex);
  EXPECT_EQ(A.BisectionChecks, B.BisectionChecks);
  EXPECT_EQ(A.PassRuns, B.PassRuns);
  EXPECT_EQ(A.Probes, B.Probes);
  EXPECT_EQ(A.DivergenceIndex, B.DivergenceIndex);
  EXPECT_EQ(A.LocalizationRuns, B.LocalizationRuns);
  EXPECT_EQ(A.Reason, B.Reason);
}

/// For every solid crash bug on every target of \p Fleet: the trigger
/// module reproduces the signature through the full pipeline, and
/// bisection pins the exact culprit pass instance. \p PairsOut counts the
/// (target, bug) pairs exercised so callers can assert completeness.
void expectExactCulpritForAllSolidCrashBugs(const TargetFleet &Fleet,
                                            size_t &PairsOut) {
  PairsOut = 0;
  for (const std::string &Name : Fleet.names()) {
    const Target &T = *Fleet.find(Name);
    const std::vector<OptPassKind> &Pipeline = T.spec().Pipeline;
    for (BugPoint Point : T.spec().Bugs.all()) {
      if (isMiscompilePoint(Point) ||
          T.spec().Bugs.flavor(Point) != BugFlavor::Solid)
        continue;
      SCOPED_TRACE(Name + " / " + bugSignature(Point));
      TriggerModule Trigger = makeTrigger(Point);
      ASSERT_TRUE(isValidModule(Trigger.M));

      // Precheck: the full pipeline reproduces the recorded signature
      // under the solid host (the bisection's probe-0 condition).
      Module Opt;
      PassCrash Crash =
          T.compilePrefix(Trigger.M, Pipeline.size(), T.solidBugs(), Opt);
      ASSERT_TRUE(Crash.has_value())
          << "trigger does not survive the pipeline";
      ASSERT_EQ(*Crash, bugSignature(Point));

      BugAttribution Attr =
          attributeBug(T, Trigger.M, Trigger.Input, bugSignature(Point));
      EXPECT_EQ(Attr.Verdict, TriageVerdict::ExactPass);
      EXPECT_EQ(Attr.Culprit, bugHostPass(Point));
      ASSERT_LT(Attr.PipelineIndex, Pipeline.size());
      EXPECT_EQ(Pipeline[Attr.PipelineIndex], Attr.Culprit);
      // Fleet pipelines never repeat a pass kind.
      EXPECT_EQ(Attr.InstanceIndex, 0u);
      EXPECT_EQ(Attr.culpritLabel(),
                std::string(optPassName(bugHostPass(Point))) + "#0");
      // The probe sequence starts with the full-pipeline reproduction
      // check, and memoization keeps pass executions at crash-prefix cost.
      ASSERT_FALSE(Attr.Probes.empty());
      EXPECT_EQ(Attr.Probes.front(), Pipeline.size());
      EXPECT_EQ(Attr.Probes.size(), Attr.BisectionChecks);
      EXPECT_EQ(Attr.PassRuns, Attr.PipelineIndex + 1);
      EXPECT_EQ(Attr.Target, Name);
      EXPECT_EQ(Attr.Signature, bugSignature(Point));
      ++PairsOut;
    }
  }
}

TEST(Triage, ExactCulpritForEverySolidCrashBugOnStandardFleet) {
  size_t Pairs = 0;
  expectExactCulpritForAllSolidCrashBugs(TargetFleet::standard(), Pairs);
  // Every crash bug of the standard fleet is solid; 26 (target, bug)
  // pairs exist today. If the fleet grows, this count grows with it.
  EXPECT_EQ(Pairs, 26u);
}

TEST(Triage, ExactCulpritForEverySolidCrashBugOnFaultyFleet) {
  size_t Pairs = 0;
  expectExactCulpritForAllSolidCrashBugs(TargetFleet::faulty(), Pairs);
  // The faulty fleet repeats the standard rows and adds SwiftShader-old,
  // whose CrashUnusedComposite stays solid (Pixel-3's bugs are flaky and
  // its DontInline hangs, so none of those add pairs).
  EXPECT_EQ(Pairs, 27u);
}

TEST(Triage, MiscompilationLocalizesToTheRewritingPass) {
  TargetFleet Fleet = TargetFleet::standard();
  const Target &Mesa = *Fleet.find("Mesa");
  const std::vector<OptPassKind> &Pipeline = Mesa.spec().Pipeline;

  for (BugPoint Point : {BugPoint::MiscompileAliasBlindForward,
                         BugPoint::MiscompilePhiLayoutOrder}) {
    SCOPED_TRACE(bugSignature(Point));
    ASSERT_TRUE(Mesa.spec().Bugs.enabled(Point));
    TriggerModule Trigger = makeTrigger(Point);
    ASSERT_TRUE(isValidModule(Trigger.M));

    // Precheck: the full buggy pipeline visibly miscompiles this module.
    TargetRun Run = Mesa.run(Trigger.M, Trigger.Input);
    ASSERT_TRUE(Run.executed());
    ASSERT_NE(Run.Result, interpret(Trigger.M, Trigger.Input));

    BugAttribution Attr = attributeBug(Mesa, Trigger.M, Trigger.Input,
                                       MiscompilationSignature);
    EXPECT_EQ(Attr.Verdict, TriageVerdict::ExactPass);
    EXPECT_EQ(Attr.Culprit, bugHostPass(Point));
    ASSERT_LT(Attr.PipelineIndex, Pipeline.size());
    EXPECT_EQ(Pipeline[Attr.PipelineIndex], Attr.Culprit);
    EXPECT_EQ(Attr.DivergenceIndex,
              static_cast<int32_t>(Attr.PipelineIndex));
    // Baseline run + one run per scanned prefix; no bisection probes.
    EXPECT_EQ(Attr.LocalizationRuns, Attr.PipelineIndex + 2u);
    EXPECT_EQ(Attr.BisectionChecks, 0u);
  }
}

TEST(Triage, MiscompilationOnCrashOnlyTargetIsDeclined) {
  TargetFleet Fleet = TargetFleet::standard();
  const Target &SpirvOpt = *Fleet.find("spirv-opt");
  Fixture F;
  BugAttribution Attr =
      attributeBug(SpirvOpt, F.M, F.Input, MiscompilationSignature);
  EXPECT_EQ(Attr.Verdict, TriageVerdict::Unattributable);
  EXPECT_NE(Attr.Reason.find("cannot execute"), std::string::npos)
      << Attr.Reason;
  EXPECT_EQ(Attr.culpritLabel(), "(unattributable)");
}

TEST(Triage, FlakyAndHangSignaturesAreDeclinedNeverMisattributed) {
  TargetFleet Fleet = TargetFleet::faulty();

  // Pixel-3's bugs are flaky: even with the genuine trigger module in
  // hand, triage refuses to bisect (a probe's fresh attempt draw could
  // implicate a wrong pass).
  const Target &Phone = *Fleet.find("Pixel-3");
  for (BugPoint Point : Phone.spec().Bugs.all()) {
    SCOPED_TRACE(bugSignature(Point));
    ASSERT_TRUE(isFlakyFlavor(Phone.spec().Bugs.flavor(Point)));
    TriggerModule Trigger = makeTrigger(Point);
    BugAttribution Attr =
        attributeBug(Phone, Trigger.M, Trigger.Input, bugSignature(Point));
    EXPECT_EQ(Attr.Verdict, TriageVerdict::Unattributable);
    EXPECT_NE(Attr.Reason.find("flaky"), std::string::npos) << Attr.Reason;
    EXPECT_EQ(Attr.culpritLabel(), "(unattributable)");
    EXPECT_EQ(Attr.BisectionChecks, 0u);
    EXPECT_EQ(Attr.PassRuns, 0u);
  }

  // SwiftShader-old's DontInline bug is flaky *and* hangs: its own
  // signature is refused as flaky, and the timeout signature its hangs
  // actually file under is refused as a hang.
  const Target &Wedge = *Fleet.find("SwiftShader-old");
  ASSERT_TRUE(isFlakyFlavor(
      Wedge.spec().Bugs.flavor(BugPoint::CrashDontInlineAttribute)));
  TriggerModule Trigger = makeTrigger(BugPoint::CrashDontInlineAttribute);
  BugAttribution Flaky =
      attributeBug(Wedge, Trigger.M, Trigger.Input,
                   bugSignature(BugPoint::CrashDontInlineAttribute));
  EXPECT_EQ(Flaky.Verdict, TriageVerdict::Unattributable);
  EXPECT_NE(Flaky.Reason.find("flaky"), std::string::npos) << Flaky.Reason;

  BugAttribution Hang =
      attributeBug(Wedge, Trigger.M, Trigger.Input, TimeoutSignature);
  EXPECT_EQ(Hang.Verdict, TriageVerdict::Unattributable);
  EXPECT_NE(Hang.Reason.find("hang"), std::string::npos) << Hang.Reason;

  BugAttribution Tool =
      attributeBug(Wedge, Trigger.M, Trigger.Input, ToolErrorSignature);
  EXPECT_EQ(Tool.Verdict, TriageVerdict::Unattributable);
  EXPECT_NE(Tool.Reason.find("infrastructure"), std::string::npos)
      << Tool.Reason;
}

TEST(Triage, CleanReproducerIsNoRepro) {
  TargetFleet Fleet = TargetFleet::standard();
  const Target &SwiftShader = *Fleet.find("SwiftShader");
  Fixture F; // no trigger features at all
  BugAttribution Attr =
      attributeBug(SwiftShader, F.M, F.Input,
                   bugSignature(BugPoint::CrashDontInlineAttribute));
  EXPECT_EQ(Attr.Verdict, TriageVerdict::NoRepro);
  EXPECT_NE(Attr.Reason.find("compiles cleanly"), std::string::npos)
      << Attr.Reason;
  EXPECT_EQ(Attr.culpritLabel(), "(no-repro)");
  // The full-pipeline check ran (and every pass with it) before giving up.
  EXPECT_EQ(Attr.Probes,
            std::vector<uint32_t>{
                static_cast<uint32_t>(SwiftShader.spec().Pipeline.size())});
  EXPECT_EQ(Attr.PassRuns, SwiftShader.spec().Pipeline.size());
}

TEST(Triage, WrongSignatureIsNoRepro) {
  // A trivial-phi trigger crashes NVIDIA's frontend; claiming it under
  // the composite-fold signature must be refused, not misattributed.
  TargetFleet Fleet = TargetFleet::standard();
  const Target &Nvidia = *Fleet.find("NVIDIA");
  TriggerModule Trigger = makeTrigger(BugPoint::CrashTrivialPhi);
  BugAttribution Attr =
      attributeBug(Nvidia, Trigger.M, Trigger.Input,
                   bugSignature(BugPoint::CrashCompositeFold));
  EXPECT_EQ(Attr.Verdict, TriageVerdict::NoRepro);
  EXPECT_NE(Attr.Reason.find("different signature"), std::string::npos)
      << Attr.Reason;
  EXPECT_NE(Attr.Reason.find(bugSignature(BugPoint::CrashTrivialPhi)),
            std::string::npos)
      << Attr.Reason;
}

TEST(Triage, RepeatedPassPipelineBisectsToTheRightInstance) {
  // A pipeline running LocalCSE twice, with ConstantFold in between
  // manufacturing the copy-of-copy chain: the *second* CSE instance is
  // the culprit and bisection must say so (instance 1, not 0).
  TargetSpec Spec;
  Spec.Name = "cse-twice";
  Spec.Version = "test";
  Spec.GpuType = "-";
  Spec.Pipeline = {OptPassKind::LocalCSE, OptPassKind::ConstantFold,
                   OptPassKind::LocalCSE};
  Spec.Bugs = BugHost({BugPoint::CrashCopyChainValueNumbering});
  Spec.CanExecute = false;
  Target T(std::move(Spec));

  // sum = 2 + 3 (foldable), copy = CopyObject(sum). After ConstantFold
  // rewrites sum into CopyObject(5), copy's source is itself a copy.
  Fixture F;
  Module M = F.M;
  BasicBlock *Merge = M.findFunction(F.MainId)->findBlock(F.MergeBlock);
  Id Sum = M.takeFreshId(), Copy = M.takeFreshId();
  Merge->Body.insert(Merge->Body.begin() + 1,
                     ModuleBuilder::makeUnaryOp(Op::CopyObject, F.IntType,
                                                Copy, Sum));
  Merge->Body.insert(Merge->Body.begin() + 1,
                     ModuleBuilder::makeBinOp(Op::IAdd, F.IntType, Sum,
                                              F.Const2, F.Const3));
  ASSERT_TRUE(isValidModule(M));

  Module Opt;
  PassCrash Crash = T.compilePrefix(M, 3, T.solidBugs(), Opt);
  ASSERT_TRUE(Crash.has_value());
  ASSERT_EQ(*Crash, bugSignature(BugPoint::CrashCopyChainValueNumbering));

  BugAttribution Attr =
      attributeBug(T, M, F.Input,
                   bugSignature(BugPoint::CrashCopyChainValueNumbering));
  EXPECT_EQ(Attr.Verdict, TriageVerdict::ExactPass);
  EXPECT_EQ(Attr.Culprit, OptPassKind::LocalCSE);
  EXPECT_EQ(Attr.PipelineIndex, 2u);
  EXPECT_EQ(Attr.InstanceIndex, 1u);
  EXPECT_EQ(Attr.culpritLabel(),
            std::string(optPassName(OptPassKind::LocalCSE)) + "#1");
  // Deterministic probe order: full pipeline, then the binary search.
  EXPECT_EQ(Attr.Probes, (std::vector<uint32_t>{3, 1, 2}));
  EXPECT_EQ(Attr.PassRuns, 3u); // memoized: each pass ran exactly once
}

TEST(Triage, AttributeAllIsBitIdenticalAcrossJobCounts) {
  TargetFleet Fleet = TargetFleet::faulty();
  std::vector<TriageItem> Items;

  // Every solid crash pair in the faulty fleet...
  for (const std::string &Name : Fleet.names()) {
    const Target &T = *Fleet.find(Name);
    for (BugPoint Point : T.spec().Bugs.all()) {
      if (isMiscompilePoint(Point) ||
          T.spec().Bugs.flavor(Point) != BugFlavor::Solid)
        continue;
      TriggerModule Trigger = makeTrigger(Point);
      Items.push_back(
          {Name, bugSignature(Point), std::move(Trigger.M), Trigger.Input});
    }
  }
  // ...plus every refusal class: a miscompile to localize, a flaky
  // signature, a hang, a tool error, and an unknown target.
  {
    TriggerModule Alias = makeTrigger(BugPoint::MiscompileAliasBlindForward);
    Items.push_back({"Mesa", MiscompilationSignature, std::move(Alias.M),
                     Alias.Input});
    TriggerModule Flaky = makeTrigger(BugPoint::CrashNegatedConstantBranch);
    Items.push_back({"Pixel-3",
                     bugSignature(BugPoint::CrashNegatedConstantBranch),
                     std::move(Flaky.M), Flaky.Input});
    Fixture F;
    Items.push_back({"SwiftShader-old", TimeoutSignature, F.M, F.Input});
    Items.push_back({"Mali-G78", ToolErrorSignature, F.M, F.Input});
    Items.push_back({"no-such-target", "sig", F.M, F.Input});
  }
  ASSERT_GT(Items.size(), 30u);

  std::vector<BugAttribution> Serial =
      attributeAll(Fleet, Items, TriageOptions().withJobs(1));
  std::vector<BugAttribution> Parallel =
      attributeAll(Fleet, Items, TriageOptions().withJobs(8));
  ASSERT_EQ(Serial.size(), Items.size());
  ASSERT_EQ(Parallel.size(), Items.size());
  for (size_t I = 0; I < Items.size(); ++I) {
    SCOPED_TRACE(Items[I].TargetName + " / " + Items[I].Signature);
    expectSameAttribution(Serial[I], Parallel[I]);
  }

  // The tail items exercise every non-ExactPass path.
  const BugAttribution &Unknown = Serial.back();
  EXPECT_EQ(Unknown.Verdict, TriageVerdict::Unattributable);
  EXPECT_NE(Unknown.Reason.find("target not in fleet"), std::string::npos);
  EXPECT_EQ(Serial[Serial.size() - 5].Verdict, TriageVerdict::ExactPass);
  EXPECT_EQ(Serial[Serial.size() - 4].Verdict,
            TriageVerdict::Unattributable); // flaky
  EXPECT_EQ(Serial[Serial.size() - 3].Verdict,
            TriageVerdict::Unattributable); // hang
  EXPECT_EQ(Serial[Serial.size() - 2].Verdict,
            TriageVerdict::Unattributable); // tool error
}

TEST(Triage, AttributionBinaryCodecRoundTrips) {
  BugAttribution Attr;
  Attr.Target = "NVIDIA";
  Attr.Signature = "sig:composite-fold";
  Attr.Verdict = TriageVerdict::ExactPass;
  Attr.Culprit = OptPassKind::ConstantFold;
  Attr.PipelineIndex = 4;
  Attr.InstanceIndex = 1;
  Attr.BisectionChecks = 4;
  Attr.PassRuns = 5;
  Attr.Probes = {8, 4, 6, 5};
  Attr.DivergenceIndex = 3;
  Attr.LocalizationRuns = 7;
  Attr.Reason = "because";

  ByteWriter W;
  writeAttributionBinary(W, Attr);
  std::string Bytes = W.take();
  ByteReader R(Bytes);
  BugAttribution Out;
  ASSERT_TRUE(readAttributionBinary(R, Out));
  expectSameAttribution(Attr, Out);

  // Truncation is a decode error, not a crash.
  for (size_t Cut : {size_t(0), Bytes.size() / 2, Bytes.size() - 1}) {
    ByteReader Short(Bytes.data(), Cut);
    BugAttribution Ignored;
    EXPECT_FALSE(readAttributionBinary(Short, Ignored)) << Cut;
  }
}

TEST(Triage, VerdictNamesRoundTrip) {
  for (TriageVerdict V :
       {TriageVerdict::ExactPass, TriageVerdict::Unattributable,
        TriageVerdict::NoRepro}) {
    TriageVerdict Parsed;
    ASSERT_TRUE(triageVerdictFromName(triageVerdictName(V), Parsed));
    EXPECT_EQ(Parsed, V);
  }
  TriageVerdict Ignored;
  EXPECT_FALSE(triageVerdictFromName("nonsense", Ignored));
}

TEST(Triage, GroundTruthScoringMatchesHandComputedExample) {
  // Four same-target reproducers of two true bugs, plus one on another
  // target (cross-target pairs are out of dedup scope). Types over-merge
  // sigA/sigB under key X and split sigB across X/Y; culprit labels carve
  // the truth exactly; the combination inherits types' split.
  std::vector<GroundTruthItem> Items = {
      {"t", "sigA", "X", "p1#0"},
      {"t", "sigA", "X", "p1#0"},
      {"t", "sigB", "X", "p2#0"},
      {"t", "sigB", "Y", "p2#0"},
      {"u", "sigA", "X", "p1#0"},
  };
  std::vector<DedupAxisScore> Axes = scoreDedupAxes(Items);
  ASSERT_EQ(Axes.size(), 3u);

  EXPECT_EQ(Axes[0].Axis, "types");
  EXPECT_NEAR(Axes[0].Precision, 1.0 / 3.0, 1e-9);
  EXPECT_NEAR(Axes[0].Recall, 0.5, 1e-9);
  EXPECT_NEAR(Axes[0].Purity, 0.8, 1e-9);
  EXPECT_EQ(Axes[0].Clusters, 3u);

  EXPECT_EQ(Axes[1].Axis, "bisect");
  EXPECT_NEAR(Axes[1].Precision, 1.0, 1e-9);
  EXPECT_NEAR(Axes[1].Recall, 1.0, 1e-9);
  EXPECT_NEAR(Axes[1].Purity, 1.0, 1e-9);
  EXPECT_EQ(Axes[1].Clusters, 3u);

  EXPECT_EQ(Axes[2].Axis, "combined");
  EXPECT_NEAR(Axes[2].Precision, 1.0, 1e-9);
  EXPECT_NEAR(Axes[2].Recall, 0.5, 1e-9);
  EXPECT_NEAR(Axes[2].Purity, 1.0, 1e-9);
  EXPECT_EQ(Axes[2].Clusters, 4u);

  // Degenerate inputs score perfect by convention.
  std::vector<DedupAxisScore> Empty = scoreDedupAxes({});
  for (const DedupAxisScore &Score : Empty) {
    EXPECT_EQ(Score.Precision, 1.0);
    EXPECT_EQ(Score.Recall, 1.0);
    EXPECT_EQ(Score.Purity, 1.0);
    EXPECT_EQ(Score.Clusters, 0u);
  }
}

TEST(Triage, TypesKeyMatchesStoreRendering) {
  EXPECT_EQ(dedupTypesKey({}), "(none)");
  std::set<TransformationKind> Types = {TransformationKind::AddDeadBlock,
                                        TransformationKind::SplitBlock};
  std::string Key = dedupTypesKey(Types);
  // "+"-joined kind names in set order.
  std::string Expected;
  for (TransformationKind Kind : Types) {
    if (!Expected.empty())
      Expected += "+";
    Expected += transformationKindName(Kind);
  }
  EXPECT_EQ(Key, Expected);
}

TEST(TriageStore, AttributionRoundTripsThroughStore) {
  static int Counter = 0;
  std::string Dir = ::testing::TempDir() + "spvfuzz-triage-store-" +
                    std::to_string(::getpid()) + "-" +
                    std::to_string(Counter++);
  ExecutionPolicy Policy =
      ExecutionPolicy{}.withSeed(5).withJobs(1).withTransformationLimit(120);
  std::string Error;
  std::unique_ptr<CampaignStore> Store =
      CampaignStore::open(Dir, Policy, Error);
  ASSERT_NE(Store, nullptr) << Error;

  CampaignEngine Engine(Policy, CorpusSpec{}, ToolsetSpec{}, TargetFleet{});
  Engine.setCheckpointer(Store.get());
  ReductionConfig Config;
  Config.TestsPerTool = 40;
  Engine.runDedup(Config);

  std::vector<BugBucket> Buckets = Store->aggregatedBuckets();
  ASSERT_FALSE(Buckets.empty());
  const BugBucket &Bucket = Buckets.front();

  Module Original, Reduced;
  ShaderInput Input;
  TransformationSequence Minimized;
  ASSERT_TRUE(Store->loadReproducer(Bucket, Original, Input, Reduced,
                                    Minimized, Error))
      << Error;
  const Target *T = Engine.fleet().find(Bucket.Target);
  ASSERT_NE(T, nullptr);
  BugAttribution Attr = attributeBug(*T, Reduced, Input, Bucket.Signature);

  // Nothing persisted yet; record, then read back.
  BugAttribution Loaded;
  EXPECT_FALSE(Store->loadAttribution(Bucket, Loaded));
  ASSERT_TRUE(Store->recordAttribution(Bucket, Attr, Error)) << Error;
  ASSERT_TRUE(Store->loadAttribution(Bucket, Loaded));
  expectSameAttribution(Attr, Loaded);

  // Re-recording is an idempotent rewrite, and both the attribution and
  // the reproducer survive a reopen from disk.
  ASSERT_TRUE(Store->recordAttribution(Bucket, Attr, Error)) << Error;
  Store.reset();
  std::unique_ptr<CampaignStore> Reopened =
      CampaignStore::openForTools(Dir, Error);
  ASSERT_NE(Reopened, nullptr) << Error;
  BugAttribution FromDisk;
  ASSERT_TRUE(Reopened->loadAttribution(Bucket, FromDisk));
  expectSameAttribution(Attr, FromDisk);
  ASSERT_TRUE(Reopened->loadReproducer(Bucket, Original, Input, Reduced,
                                       Minimized, Error))
      << Error;
}

} // namespace
