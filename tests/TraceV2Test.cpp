//===- tests/TraceV2Test.cpp - Hierarchical tracing contract --------------===//
//
// Part of the spirv-fuzz reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The tracing-v2 contract: spans carry process-unique ids, parents come
/// from the per-thread span stack (or an explicit cross-thread override),
/// and phase attribution follows TracePhaseScope. Under a parallel
/// campaign (`--jobs 8`) the trace file stays well-formed — every line
/// parses, ids are unique, parents resolve — which is also the TSan
/// surface for the tracer's internal locking.
///
//===----------------------------------------------------------------------===//

#include "obs/TraceReport.h"
#include "store/CampaignStore.h"
#include "support/Trace.h"

#include <gtest/gtest.h>

#include <fstream>
#include <functional>
#include <set>
#include <thread>

using namespace spvfuzz;
using namespace spvfuzz::telemetry;

namespace {

std::string uniqueTracePath(const std::string &Hint) {
  static int Counter = 0;
  return ::testing::TempDir() + "spvfuzz-trace-" + Hint + "-" +
         std::to_string(::getpid()) + "-" + std::to_string(Counter++) +
         ".jsonl";
}

std::vector<obs::TraceRecord> traceSession(const std::string &Hint,
                                           const std::function<void()> &Body) {
  std::string Path = uniqueTracePath(Hint);
  std::string Error;
  EXPECT_TRUE(Tracer::global().open(Path, Error)) << Error;
  Body();
  Tracer::global().close();
  std::vector<obs::TraceRecord> Records;
  EXPECT_TRUE(obs::loadTraceFile(Path, Records, Error)) << Error;
  return Records;
}

const obs::TraceRecord *findByName(const std::vector<obs::TraceRecord> &Records,
                                   const std::string &Name) {
  for (const obs::TraceRecord &Record : Records)
    if (Record.Name == Name)
      return &Record;
  return nullptr;
}

TEST(TraceV2, SpansNestViaTheThreadStack) {
  std::vector<obs::TraceRecord> Records = traceSession("nesting", [] {
    TracePhaseScope Phase("fuzz");
    TraceSpan Outer("outer");
    EXPECT_EQ(currentSpanId(), Outer.id());
    {
      TraceSpan Inner("inner");
      EXPECT_NE(Inner.id(), Outer.id());
      EXPECT_EQ(currentSpanId(), Inner.id());
      Inner.note({"test", 7});
    }
    EXPECT_EQ(currentSpanId(), Outer.id());
    Tracer::global().event("marker");
  });

  // Spans emit on destruction: the child line precedes its parent.
  const obs::TraceRecord *Outer = findByName(Records, "outer");
  const obs::TraceRecord *Inner = findByName(Records, "inner");
  const obs::TraceRecord *Marker = findByName(Records, "marker");
  ASSERT_NE(Outer, nullptr);
  ASSERT_NE(Inner, nullptr);
  ASSERT_NE(Marker, nullptr);
  EXPECT_TRUE(Outer->isSpan());
  EXPECT_NE(Outer->Id, 0u);
  EXPECT_EQ(Outer->Parent, 0u);
  EXPECT_EQ(Inner->Parent, Outer->Id);
  EXPECT_EQ(Marker->Parent, Outer->Id);
  EXPECT_EQ(Outer->Phase, "fuzz");
  EXPECT_EQ(Inner->Phase, "fuzz");
  EXPECT_EQ(Inner->Numbers.at("test"), 7.0);
  EXPECT_LT(&*Inner - &Records[0], &*Outer - &Records[0])
      << "child span should be written before its parent";
}

TEST(TraceV2, ExplicitParentLinksCrossThreadChildren) {
  std::vector<obs::TraceRecord> Records = traceSession("override", [] {
    TraceSpan Wave("wave");
    uint64_t WaveId = Wave.id();
    std::thread Worker([WaveId] {
      TracePhaseScope Phase("reduce");
      TraceSpan Job("job", WaveId);
      Job.note({"target", "Mali"});
    });
    Worker.join();
  });
  const obs::TraceRecord *Wave = findByName(Records, "wave");
  const obs::TraceRecord *Job = findByName(Records, "job");
  ASSERT_NE(Wave, nullptr);
  ASSERT_NE(Job, nullptr);
  EXPECT_EQ(Job->Parent, Wave->Id);
  EXPECT_EQ(Job->Phase, "reduce");
  EXPECT_EQ(Job->Text.at("target"), "Mali");
}

TEST(TraceV2, PhaseScopesRestoreOnExit) {
  std::vector<obs::TraceRecord> Records = traceSession("phases", [] {
    TracePhaseScope Outer("fuzz");
    {
      TracePhaseScope Inner("reduce");
      EXPECT_EQ(currentTracePhase(), "reduce");
      Tracer::global().event("during");
    }
    EXPECT_EQ(currentTracePhase(), "fuzz");
    Tracer::global().event("after");
  });
  EXPECT_EQ(findByName(Records, "during")->Phase, "reduce");
  EXPECT_EQ(findByName(Records, "after")->Phase, "fuzz");
}

TEST(TraceV2, DisabledTracerCostsNothingAndEmitsNothing) {
  ASSERT_FALSE(Tracer::global().enabled());
  TraceSpan Span("ignored");
  EXPECT_FALSE(Span.active());
  EXPECT_EQ(Span.id(), 0u);
  EXPECT_EQ(currentSpanId(), 0u);
}

/// The well-formedness contract under concurrency: run a real parallel
/// campaign with tracing on and check every line parses, every span id is
/// unique, and every parent resolves to another span (or a root). This is
/// the test the TSan job leans on for the tracer and the engine's
/// cross-thread parent handoff.
TEST(TraceV2, ParallelCampaignTraceIsWellFormed) {
  std::vector<obs::TraceRecord> Records = traceSession("jobs8", [] {
    ExecutionPolicy Policy =
        ExecutionPolicy{}.withSeed(5).withJobs(8).withTransformationLimit(120);
    CampaignEngine Engine(Policy, CorpusSpec{}, ToolsetSpec{}, TargetFleet{});
    BugFindingConfig Config;
    Config.TestsPerTool = 40;
    Engine.runBugFinding(Config);
    ReductionConfig RC;
    RC.TestsPerTool = 40;
    Engine.runDedup(RC);
  });
  ASSERT_FALSE(Records.empty());

  std::set<uint64_t> SpanIds;
  size_t Waves = 0, Evaluations = 0;
  for (const obs::TraceRecord &Record : Records) {
    ASSERT_TRUE(Record.Type == "span" || Record.Type == "event")
        << Record.Type;
    if (Record.isSpan()) {
      ASSERT_NE(Record.Id, 0u) << Record.Name;
      ASSERT_TRUE(SpanIds.insert(Record.Id).second)
          << "duplicate span id " << Record.Id;
    }
    if (Record.Name == "campaign.wave")
      ++Waves;
    if (Record.Name == "campaign.evaluate") {
      ++Evaluations;
      EXPECT_EQ(Record.Phase, "fuzz");
      EXPECT_NE(Record.Numbers.count("test"), 0u);
    }
  }
  EXPECT_GT(Waves, 1u);
  EXPECT_GT(Evaluations, 40u); // one per test per tool, at least

  // Parents resolve: every non-root parent is another span's id. Spans are
  // emitted child-first, so collect ids (above) before checking.
  for (const obs::TraceRecord &Record : Records) {
    if (Record.Parent != 0) {
      EXPECT_NE(SpanIds.count(Record.Parent), 0u)
          << Record.Name << " has unresolved parent " << Record.Parent;
    }
  }

  // Worker evaluation spans hang off their coordinator wave span.
  const obs::TraceRecord *Evaluation = findByName(Records,
                                                  "campaign.evaluate");
  ASSERT_NE(Evaluation, nullptr);
  EXPECT_NE(Evaluation->Parent, 0u);

  // The per-phase breakdown renders and attributes the pipeline stages.
  std::string Report = obs::renderTraceReport(Records, nullptr);
  EXPECT_NE(Report.find("time by phase"), std::string::npos);
  EXPECT_NE(Report.find("fuzz"), std::string::npos);
  EXPECT_NE(Report.find("reduce"), std::string::npos);
  EXPECT_NE(Report.find("hottest spans"), std::string::npos);
}

TEST(TraceV2, ReportRanksTransformationKindsFromMetrics) {
  telemetry::MetricsSnapshot Metrics;
  telemetry::HistogramStats Hot;
  Hot.Count = 10;
  Hot.Sum = 5000;
  Hot.Mean = 500;
  Hot.P99 = 900;
  Metrics.Histograms["transformation.apply_us.AddFunction"] = Hot;
  telemetry::HistogramStats Cold;
  Cold.Count = 4;
  Cold.Sum = 40;
  Cold.Mean = 10;
  Cold.P99 = 20;
  Metrics.Histograms["transformation.apply_us.SplitBlock"] = Cold;

  std::string Report = obs::renderTraceReport({}, &Metrics, /*TopK=*/1);
  EXPECT_NE(Report.find("AddFunction"), std::string::npos);
  EXPECT_EQ(Report.find("SplitBlock"), std::string::npos)
      << "top-k should rank by total apply time";
}

TEST(TraceV2, LoaderReportsLineAccurateErrors) {
  std::string Path = uniqueTracePath("errors");
  std::vector<obs::TraceRecord> Records;
  std::string Error;
  EXPECT_FALSE(obs::loadTraceFile(Path, Records, Error));
  EXPECT_NE(Error.find("cannot open"), std::string::npos) << Error;

  std::ofstream Out(Path);
  Out << R"({"type":"event","name":"ok","ts_us":1})" << "\n";
  Out << "{broken\n";
  Out.close();
  EXPECT_FALSE(obs::loadTraceFile(Path, Records, Error));
  EXPECT_NE(Error.find(":2:"), std::string::npos) << Error;
}

} // namespace
