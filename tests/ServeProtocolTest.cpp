//===- tests/ServeProtocolTest.cpp - Shard protocol + lease ledger --------===//
//
// Part of the spirv-fuzz reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The wire contract of the scale-out layer: every message kind
/// round-trips bit-exactly; every single-bit flip, every truncation
/// prefix and any trailing append of a valid frame is rejected with a
/// diagnostic (never a crash, never a silent misparse); and the lease
/// ledger walks its Queued → Leased → Done state machine with generation
/// fencing exactly as serve/LeaseLedger.h documents.
///
//===----------------------------------------------------------------------===//

#include "serve/LeaseLedger.h"
#include "serve/ShardProtocol.h"

#include <gtest/gtest.h>

#include <sys/stat.h>
#include <unistd.h>

using namespace spvfuzz;
using namespace spvfuzz::serve;

namespace {

std::string uniqueDir(const std::string &Hint) {
  static int Counter = 0;
  std::string Dir = ::testing::TempDir() + "spvfuzz-serve-" + Hint + "-" +
                    std::to_string(::getpid()) + "-" +
                    std::to_string(Counter++);
  ::mkdir(Dir.c_str(), 0755);
  return Dir;
}

WorkerConfigMsg sampleConfig() {
  WorkerConfigMsg Msg;
  Msg.CampaignId = "seed2021-0123456789abcdef";
  Msg.Seed = 2021;
  Msg.TransformationLimit = 300;
  Msg.TargetDeadlineSteps = 1ull << 22;
  Msg.FlakyRetries = 5;
  Msg.QuarantineThreshold = 3;
  Msg.Engine = 0;
  Msg.UniformInputs = 2;
  Msg.FaultyFleet = 1;
  Msg.Tests = 400;
  Msg.LeaseTtlMs = 3000;
  return Msg;
}

ShardJobMsg sampleJob() {
  ShardJobMsg Msg;
  Msg.JobId = 7;
  Msg.Generation = 2;
  Msg.CampaignId = "seed9-ffee";
  Msg.Phase = "eval/spirv-fuzz/96";
  Msg.Tool = "spirv-fuzz";
  Msg.Count = 96;
  Msg.CrashesOnly = 1;
  Msg.WaveStart = 32;
  Msg.WaveEnd = 64;
  Msg.Sidelined = {"Mali-G78", "Pixel-3"};
  return Msg;
}

ShardResultMsg sampleResult() {
  ShardResultMsg Msg;
  Msg.JobId = 7;
  Msg.Generation = 2;
  Msg.Worker = 3;
  Msg.CampaignId = "seed9-ffee";
  Msg.Phase = "eval/spirv-fuzz/96";
  Msg.WaveStart = 32;
  Msg.WaveEnd = 64;
  Msg.MaskDigest = sidelinedDigest({"Mali-G78"});
  TestEvaluation Eval;
  Eval.Seed = 0xdeadbeef;
  Eval.ReferenceIndex = 4;
  Eval.Signatures["Mali-G78"] = "crash:ArithFold:div";
  Eval.ToolErrored = {"SwiftShader"};
  Msg.Evals.push_back(Eval);
  Msg.Evals.push_back(TestEvaluation{});
  Msg.MetricsJson = "{\"counters\":{\"exec.runs\":12}}";
  return Msg;
}

LeaseLedgerMsg sampleLedger() {
  LeaseLedgerMsg Msg;
  Msg.NextJobId = 9;
  LeaseEntry A;
  A.JobId = 1;
  A.Generation = 0;
  A.State = LeaseState::Done;
  A.Worker = 2;
  LeaseEntry B;
  B.JobId = 2;
  B.Generation = 3;
  B.State = LeaseState::Leased;
  B.Worker = 1;
  B.DeadlineMs = 123456;
  Msg.Entries = {A, B};
  return Msg;
}

/// Every valid frame the sweep tests chew on, labelled by kind.
std::vector<std::pair<MessageKind, std::string>> allFrames() {
  return {{MessageKind::WorkerConfig, encodeWorkerConfig(sampleConfig())},
          {MessageKind::WorkerHello, encodeWorkerHello({42, 31337})},
          {MessageKind::ShardJob, encodeShardJob(sampleJob())},
          {MessageKind::ShardResult, encodeShardResult(sampleResult())},
          {MessageKind::LeaseLedger, encodeLeaseLedger(sampleLedger())}};
}

/// Typed decode of \p Bytes as \p Kind; returns success + diagnostic.
bool decodeAs(MessageKind Kind, const std::string &Bytes,
              std::string &ErrorOut) {
  switch (Kind) {
  case MessageKind::WorkerConfig: {
    WorkerConfigMsg Out;
    return decodeWorkerConfig(Bytes, Out, ErrorOut);
  }
  case MessageKind::WorkerHello: {
    WorkerHelloMsg Out;
    return decodeWorkerHello(Bytes, Out, ErrorOut);
  }
  case MessageKind::ShardJob: {
    ShardJobMsg Out;
    return decodeShardJob(Bytes, Out, ErrorOut);
  }
  case MessageKind::ShardResult: {
    ShardResultMsg Out;
    return decodeShardResult(Bytes, Out, ErrorOut);
  }
  case MessageKind::LeaseLedger: {
    LeaseLedgerMsg Out;
    return decodeLeaseLedger(Bytes, Out, ErrorOut);
  }
  }
  return false;
}

TEST(ServeProtocol, WorkerConfigRoundTrips) {
  WorkerConfigMsg In = sampleConfig();
  WorkerConfigMsg Out;
  std::string Error;
  ASSERT_TRUE(decodeWorkerConfig(encodeWorkerConfig(In), Out, Error))
      << Error;
  EXPECT_EQ(Out.CampaignId, In.CampaignId);
  EXPECT_EQ(Out.Seed, In.Seed);
  EXPECT_EQ(Out.TransformationLimit, In.TransformationLimit);
  EXPECT_EQ(Out.TargetDeadlineSteps, In.TargetDeadlineSteps);
  EXPECT_EQ(Out.FlakyRetries, In.FlakyRetries);
  EXPECT_EQ(Out.QuarantineThreshold, In.QuarantineThreshold);
  EXPECT_EQ(Out.Engine, In.Engine);
  EXPECT_EQ(Out.UniformInputs, In.UniformInputs);
  EXPECT_EQ(Out.FaultyFleet, In.FaultyFleet);
  EXPECT_EQ(Out.Tests, In.Tests);
  EXPECT_EQ(Out.LeaseTtlMs, In.LeaseTtlMs);
}

TEST(ServeProtocol, WorkerHelloRoundTrips) {
  WorkerHelloMsg Out;
  std::string Error;
  ASSERT_TRUE(decodeWorkerHello(encodeWorkerHello({42, 31337}), Out, Error))
      << Error;
  EXPECT_EQ(Out.Worker, 42u);
  EXPECT_EQ(Out.Pid, 31337u);
}

TEST(ServeProtocol, ShardJobRoundTrips) {
  ShardJobMsg In = sampleJob();
  ShardJobMsg Out;
  std::string Error;
  ASSERT_TRUE(decodeShardJob(encodeShardJob(In), Out, Error)) << Error;
  EXPECT_EQ(Out.JobId, In.JobId);
  EXPECT_EQ(Out.Generation, In.Generation);
  EXPECT_EQ(Out.CampaignId, In.CampaignId);
  EXPECT_EQ(Out.Phase, In.Phase);
  EXPECT_EQ(Out.Tool, In.Tool);
  EXPECT_EQ(Out.Count, In.Count);
  EXPECT_EQ(Out.CrashesOnly, In.CrashesOnly);
  EXPECT_EQ(Out.WaveStart, In.WaveStart);
  EXPECT_EQ(Out.WaveEnd, In.WaveEnd);
  EXPECT_EQ(Out.Sidelined, In.Sidelined);
}

TEST(ServeProtocol, ShardResultRoundTrips) {
  ShardResultMsg In = sampleResult();
  ShardResultMsg Out;
  std::string Error;
  ASSERT_TRUE(decodeShardResult(encodeShardResult(In), Out, Error)) << Error;
  EXPECT_EQ(Out.JobId, In.JobId);
  EXPECT_EQ(Out.Generation, In.Generation);
  EXPECT_EQ(Out.Worker, In.Worker);
  EXPECT_EQ(Out.CampaignId, In.CampaignId);
  EXPECT_EQ(Out.Phase, In.Phase);
  EXPECT_EQ(Out.MaskDigest, In.MaskDigest);
  EXPECT_EQ(Out.MetricsJson, In.MetricsJson);
  ASSERT_EQ(Out.Evals.size(), In.Evals.size());
  EXPECT_EQ(Out.Evals[0].Seed, In.Evals[0].Seed);
  EXPECT_EQ(Out.Evals[0].ReferenceIndex, In.Evals[0].ReferenceIndex);
  EXPECT_EQ(Out.Evals[0].Signatures, In.Evals[0].Signatures);
  EXPECT_EQ(Out.Evals[0].ToolErrored, In.Evals[0].ToolErrored);
  EXPECT_TRUE(Out.Evals[1].Signatures.empty());
}

TEST(ServeProtocol, LeaseLedgerRoundTrips) {
  LeaseLedgerMsg In = sampleLedger();
  LeaseLedgerMsg Out;
  std::string Error;
  ASSERT_TRUE(decodeLeaseLedger(encodeLeaseLedger(In), Out, Error)) << Error;
  EXPECT_EQ(Out.NextJobId, In.NextJobId);
  ASSERT_EQ(Out.Entries.size(), In.Entries.size());
  EXPECT_EQ(Out.Entries[1].JobId, In.Entries[1].JobId);
  EXPECT_EQ(Out.Entries[1].Generation, In.Entries[1].Generation);
  EXPECT_EQ(Out.Entries[1].State, In.Entries[1].State);
  EXPECT_EQ(Out.Entries[1].Worker, In.Entries[1].Worker);
  EXPECT_EQ(Out.Entries[1].DeadlineMs, In.Entries[1].DeadlineMs);
}

TEST(ServeProtocol, MismatchedKindIsRefused) {
  std::string Error;
  WorkerHelloMsg Hello;
  EXPECT_FALSE(
      decodeWorkerHello(encodeWorkerConfig(sampleConfig()), Hello, Error));
  EXPECT_FALSE(Error.empty());
}

// Exhaustive robustness sweep: flipping ANY single bit of ANY message
// frame must be rejected with a diagnostic — the checksum covers the
// header fields and the payload, and the magic/version/kind/size checks
// cover the rest. A flip that still decoded cleanly would mean a torn or
// corrupted file could silently alter campaign results.
TEST(ServeProtocol, EveryBitFlipIsRejected) {
  for (const auto &[Kind, Frame] : allFrames()) {
    for (size_t Byte = 0; Byte < Frame.size(); ++Byte) {
      for (int Bit = 0; Bit < 8; ++Bit) {
        std::string Mutated = Frame;
        Mutated[Byte] = static_cast<char>(Mutated[Byte] ^ (1 << Bit));
        std::string Error;
        EXPECT_FALSE(decodeAs(Kind, Mutated, Error))
            << messageKindName(Kind) << ": flip survived at byte " << Byte
            << " bit " << Bit;
        EXPECT_FALSE(Error.empty())
            << messageKindName(Kind) << ": empty diagnostic at byte "
            << Byte << " bit " << Bit;
      }
    }
  }
}

// Every truncation prefix (including the empty string) must fail, and so
// must a frame with bytes appended — exact-size framing means a file
// can't hide garbage after a valid message.
TEST(ServeProtocol, TruncationAndTrailingBytesAreRejected) {
  for (const auto &[Kind, Frame] : allFrames()) {
    for (size_t Len = 0; Len < Frame.size(); ++Len) {
      std::string Error;
      EXPECT_FALSE(decodeAs(Kind, Frame.substr(0, Len), Error))
          << messageKindName(Kind) << ": truncation to " << Len
          << " bytes survived";
      EXPECT_FALSE(Error.empty());
    }
    std::string Error;
    EXPECT_FALSE(decodeAs(Kind, Frame + "x", Error))
        << messageKindName(Kind) << ": trailing byte survived";
    EXPECT_FALSE(decodeAs(Kind, Frame + Frame, Error))
        << messageKindName(Kind) << ": doubled frame survived";
  }
}

TEST(ServeProtocol, NewerVersionIsRefused) {
  std::string Frame = encodeWorkerHello({1, 2});
  // The u32 version sits right after the 8-byte magic (little-endian).
  Frame[8] = static_cast<char>(ShardProtocolVersion + 1);
  std::string Error;
  WorkerHelloMsg Out;
  EXPECT_FALSE(decodeWorkerHello(Frame, Out, Error));
  EXPECT_NE(Error.find("version"), std::string::npos) << Error;
}

ShardJobMsg ledgerJob(uint64_t JobId, uint64_t Generation = 0) {
  ShardJobMsg Job = sampleJob();
  Job.JobId = JobId;
  Job.Generation = Generation;
  return Job;
}

TEST(ServeProtocol, LedgerLeasesLowestQueuedJob) {
  LeaseLedger Ledger(uniqueDir("lease"));
  std::string Error;
  ASSERT_TRUE(Ledger.initialize(Error)) << Error;
  uint64_t First = 0;
  ASSERT_TRUE(Ledger.allocateJobIds(3, First, Error)) << Error;
  EXPECT_EQ(First, 1u);
  ASSERT_TRUE(Ledger.enqueue(
                  {ledgerJob(First), ledgerJob(First + 1), ledgerJob(First + 2)},
                  Error))
      << Error;

  std::optional<ShardJobMsg> Job;
  ASSERT_TRUE(Ledger.lease(/*Worker=*/1, /*TtlMs=*/60000, Job, Error))
      << Error;
  ASSERT_TRUE(Job.has_value());
  EXPECT_EQ(Job->JobId, First);
  ASSERT_TRUE(Ledger.lease(/*Worker=*/2, 60000, Job, Error)) << Error;
  ASSERT_TRUE(Job.has_value());
  EXPECT_EQ(Job->JobId, First + 1);

  LeaseLedgerMsg Table;
  ASSERT_TRUE(Ledger.snapshot(Table, Error)) << Error;
  ASSERT_EQ(Table.Entries.size(), 3u);
  EXPECT_EQ(Table.Entries[0].State, LeaseState::Leased);
  EXPECT_EQ(Table.Entries[0].Worker, 1u);
  EXPECT_EQ(Table.Entries[1].State, LeaseState::Leased);
  EXPECT_EQ(Table.Entries[2].State, LeaseState::Queued);
}

TEST(ServeProtocol, LedgerExpiryBumpsGenerationAndFencesCompletion) {
  LeaseLedger Ledger(uniqueDir("expiry"));
  std::string Error;
  ASSERT_TRUE(Ledger.initialize(Error)) << Error;
  uint64_t First = 0;
  ASSERT_TRUE(Ledger.allocateJobIds(1, First, Error)) << Error;
  ASSERT_TRUE(Ledger.enqueue({ledgerJob(First)}, Error)) << Error;

  // Lease with a zero TTL: immediately stale.
  std::optional<ShardJobMsg> Job;
  ASSERT_TRUE(Ledger.lease(1, /*TtlMs=*/0, Job, Error)) << Error;
  ASSERT_TRUE(Job.has_value());
  EXPECT_EQ(Job->Generation, 0u);

  std::vector<LeaseEntry> Expired;
  ASSERT_TRUE(Ledger.expireStale(Expired, Error)) << Error;
  ASSERT_EQ(Expired.size(), 1u);
  EXPECT_EQ(Expired[0].Worker, 1u);
  EXPECT_EQ(Expired[0].Generation, 0u); // pre-bump identity

  // The dead worker's completion arrives late: generation 0 is fenced.
  ASSERT_TRUE(Ledger.complete(First, /*Generation=*/0, Error)) << Error;
  LeaseLedgerMsg Table;
  ASSERT_TRUE(Ledger.snapshot(Table, Error)) << Error;
  EXPECT_EQ(Table.Entries[0].State, LeaseState::Queued);
  EXPECT_EQ(Table.Entries[0].Generation, 1u);

  // Re-lease serves the bumped generation; completing with it lands.
  ASSERT_TRUE(Ledger.lease(2, 60000, Job, Error)) << Error;
  ASSERT_TRUE(Job.has_value());
  EXPECT_EQ(Job->Generation, 1u);
  ASSERT_TRUE(Ledger.complete(First, 1, Error)) << Error;
  ASSERT_TRUE(Ledger.snapshot(Table, Error)) << Error;
  EXPECT_EQ(Table.Entries[0].State, LeaseState::Done);

  // Nothing queued any more.
  ASSERT_TRUE(Ledger.lease(3, 60000, Job, Error)) << Error;
  EXPECT_FALSE(Job.has_value());
}

TEST(ServeProtocol, LedgerRequeueReplacesJobFrame) {
  LeaseLedger Ledger(uniqueDir("requeue"));
  std::string Error;
  ASSERT_TRUE(Ledger.initialize(Error)) << Error;
  uint64_t First = 0;
  ASSERT_TRUE(Ledger.allocateJobIds(1, First, Error)) << Error;
  ASSERT_TRUE(Ledger.enqueue({ledgerJob(First)}, Error)) << Error;

  std::optional<ShardJobMsg> Job;
  ASSERT_TRUE(Ledger.lease(1, 60000, Job, Error)) << Error;
  ASSERT_TRUE(Job.has_value());

  // Coordinator moves the quarantine mask and force-requeues.
  ShardJobMsg Updated = ledgerJob(First, /*Generation=*/5);
  Updated.Sidelined = {"SwiftShader"};
  ASSERT_TRUE(Ledger.requeue(Updated, Error)) << Error;

  ASSERT_TRUE(Ledger.lease(2, 60000, Job, Error)) << Error;
  ASSERT_TRUE(Job.has_value());
  EXPECT_EQ(Job->Generation, 5u);
  EXPECT_EQ(Job->Sidelined, std::vector<std::string>{"SwiftShader"});

  // The first worker's completion under the old generation is fenced.
  ASSERT_TRUE(Ledger.complete(First, 0, Error)) << Error;
  LeaseLedgerMsg Table;
  ASSERT_TRUE(Ledger.snapshot(Table, Error)) << Error;
  EXPECT_EQ(Table.Entries[0].State, LeaseState::Leased);
  EXPECT_EQ(Table.Entries[0].Generation, 5u);
}

TEST(ServeProtocol, LedgerTornBytesAreRejectedNotMisread) {
  std::string Dir = uniqueDir("torn");
  LeaseLedger Ledger(Dir);
  std::string Error;
  ASSERT_TRUE(Ledger.initialize(Error)) << Error;

  // Overwrite the ledger with a truncated frame, as an outside writer
  // tearing it would: every operation reports a diagnostic.
  std::string Valid = encodeLeaseLedger(sampleLedger());
  FILE *F = fopen(Ledger.ledgerPath().c_str(), "wb");
  ASSERT_NE(F, nullptr);
  fwrite(Valid.data(), 1, Valid.size() / 2, F);
  fclose(F);

  LeaseLedgerMsg Table;
  EXPECT_FALSE(Ledger.snapshot(Table, Error));
  EXPECT_FALSE(Error.empty());
  std::optional<ShardJobMsg> Job;
  Error.clear();
  EXPECT_FALSE(Ledger.lease(1, 1000, Job, Error));
  EXPECT_FALSE(Error.empty());
}

} // namespace
