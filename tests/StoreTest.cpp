//===- tests/StoreTest.cpp - Binary serde round-trip and rejection --------===//
//
// Part of the spirv-fuzz reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The store's serde layer: 200 fuzzer-generated (module, facts,
/// transformation-sequence) triples must round-trip through the binary
/// codecs bit-exactly (ModuleHash equality, fact-set equality, replayed-
/// sequence equivalence), and corrupt files — bit flips anywhere,
/// truncation at every length, a future format version — must be rejected
/// with a diagnostic, never crash or silently parse.
///
//===----------------------------------------------------------------------===//

#include "store/Serde.h"

#include "core/Fuzzer.h"
#include "gen/Generator.h"
#include "ir/Text.h"
#include "support/ModuleHash.h"

#include <gtest/gtest.h>

#include <algorithm>

using namespace spvfuzz;

namespace {

struct Triple {
  GeneratedProgram Original;
  std::vector<GeneratedProgram> DonorPrograms;
  FuzzResult Result;
};

Triple makeTriple(uint64_t Seed) {
  Triple Case;
  Case.Original = generateProgram(Seed);
  Case.DonorPrograms = generateCorpus(2, Seed + 1000);
  std::vector<const Module *> Donors;
  for (const GeneratedProgram &Donor : Case.DonorPrograms)
    Donors.push_back(&Donor.M);
  FuzzerOptions Options;
  Options.TransformationLimit = 60;
  Case.Result =
      fuzz(Case.Original.M, Case.Original.Input, Donors, Seed, Options);
  return Case;
}

std::vector<Id> sorted(const std::unordered_set<Id> &Set) {
  std::vector<Id> Out(Set.begin(), Set.end());
  std::sort(Out.begin(), Out.end());
  return Out;
}

void expectFactsEqual(const FactManager &A, const FactManager &B) {
  EXPECT_EQ(sorted(A.deadBlocks()), sorted(B.deadBlocks()));
  EXPECT_EQ(sorted(A.irrelevantIds()), sorted(B.irrelevantIds()));
  EXPECT_EQ(sorted(A.irrelevantPointees()), sorted(B.irrelevantPointees()));
  EXPECT_EQ(sorted(A.liveSafeFunctions()), sorted(B.liveSafeFunctions()));
  EXPECT_EQ(A.canonicalSynonyms(), B.canonicalSynonyms());
  EXPECT_EQ(hashShaderInput(A.knownInput()), hashShaderInput(B.knownInput()));
}

std::string encodeTriple(const Triple &Case) {
  ByteWriter W;
  writeModuleBinary(W, Case.Result.Variant);
  writeFactsBinary(W, Case.Result.Facts);
  writeSequenceBinary(W, Case.Result.Sequence);
  return W.take();
}

TEST(StoreSerde, TwoHundredTriplesRoundTrip) {
  for (uint64_t Seed = 1; Seed <= 200; ++Seed) {
    Triple Case = makeTriple(Seed);
    std::string Bytes = encodeTriple(Case);

    ByteReader R(Bytes);
    Module Variant;
    FactManager Facts;
    TransformationSequence Sequence;
    ASSERT_TRUE(readModuleBinary(R, Variant)) << "seed " << Seed << ": "
                                              << R.error();
    ASSERT_TRUE(readFactsBinary(R, Facts)) << "seed " << Seed << ": "
                                           << R.error();
    ASSERT_TRUE(readSequenceBinary(R, Sequence)) << "seed " << Seed << ": "
                                                 << R.error();
    EXPECT_TRUE(R.atEnd()) << "seed " << Seed << ": trailing bytes";

    // (a) The module round-trips hash-exactly (Bound included).
    EXPECT_EQ(hashModule(Variant), hashModule(Case.Result.Variant))
        << "seed " << Seed;
    EXPECT_EQ(Variant.Bound, Case.Result.Variant.Bound) << "seed " << Seed;

    // (b) The fact sets survive: sets, synonym classes, known input.
    expectFactsEqual(Facts, Case.Result.Facts);

    // (c) Replaying the deserialized sequence from the original program
    // lands on the same variant as replaying the original sequence.
    Module FromOriginal = Case.Original.M;
    Module FromDecoded = Case.Original.M;
    FactManager ReplayA, ReplayB;
    ReplayA.setKnownInput(Case.Original.Input);
    ReplayB.setKnownInput(Case.Original.Input);
    std::vector<size_t> AppliedA =
        applySequence(FromOriginal, ReplayA, Case.Result.Sequence);
    std::vector<size_t> AppliedB =
        applySequence(FromDecoded, ReplayB, Sequence);
    EXPECT_EQ(AppliedA, AppliedB) << "seed " << Seed;
    EXPECT_EQ(hashModule(FromOriginal), hashModule(FromDecoded))
        << "seed " << Seed;
  }
}

TEST(StoreSerde, ContainerRoundTrip) {
  StoreFile File;
  File.add("AAAA", "first payload");
  File.add("BBBB", std::string("\x00\x01\x02", 3));
  File.add("AAAA", "shadowed duplicate");
  std::string Bytes = File.encode();

  StoreFile Decoded;
  std::string Error;
  ASSERT_TRUE(StoreFile::decode(Bytes, Decoded, Error)) << Error;
  ASSERT_EQ(Decoded.Sections.size(), 3u);
  EXPECT_EQ(Decoded.Sections[0].first, "AAAA");
  EXPECT_EQ(*Decoded.find("AAAA"), "first payload"); // first wins
  EXPECT_EQ(*Decoded.find("BBBB"), std::string("\x00\x01\x02", 3));
  EXPECT_EQ(Decoded.find("ZZZZ"), nullptr);
}

TEST(StoreSerde, EveryBitFlipIsRejected) {
  StoreFile File;
  File.add("MODL", "some module payload");
  File.add("SEQN", "a sequence");
  const std::string Bytes = File.encode();

  for (size_t Byte = 0; Byte < Bytes.size(); ++Byte) {
    for (int Bit = 0; Bit < 8; ++Bit) {
      std::string Mutated = Bytes;
      Mutated[Byte] = static_cast<char>(Mutated[Byte] ^ (1 << Bit));
      StoreFile Decoded;
      std::string Error;
      EXPECT_FALSE(StoreFile::decode(Mutated, Decoded, Error))
          << "flip of bit " << Bit << " in byte " << Byte
          << " was silently accepted";
      EXPECT_FALSE(Error.empty());
    }
  }
}

TEST(StoreSerde, EveryTruncationIsRejected) {
  StoreFile File;
  File.add("MODL", "some module payload");
  const std::string Bytes = File.encode();

  for (size_t Length = 0; Length < Bytes.size(); ++Length) {
    StoreFile Decoded;
    std::string Error;
    EXPECT_FALSE(StoreFile::decode(Bytes.substr(0, Length), Decoded, Error))
        << "truncation to " << Length << " bytes was silently accepted";
    EXPECT_FALSE(Error.empty());
  }
  // Appending trailing garbage must be rejected too.
  StoreFile Decoded;
  std::string Error;
  EXPECT_FALSE(StoreFile::decode(Bytes + "x", Decoded, Error));
}

TEST(StoreSerde, FutureVersionIsRefusedWithDiagnostic) {
  StoreFile File;
  File.Version = StoreFormatVersion + 1;
  File.add("MODL", "payload from the future");
  std::string Bytes = File.encode();

  StoreFile Decoded;
  std::string Error;
  ASSERT_FALSE(StoreFile::decode(Bytes, Decoded, Error));
  EXPECT_NE(Error.find("format version"), std::string::npos) << Error;
}

TEST(StoreSerde, CorruptModulePayloadsNeverCrash) {
  // Bit-flip the raw codec stream (below the checksummed container) to
  // exercise the codecs' own bounds and enum validation.
  Triple Case = makeTriple(7);
  ByteWriter W;
  writeModuleBinary(W, Case.Result.Variant);
  const std::string Bytes = W.take();

  for (size_t Byte = 0; Byte < Bytes.size(); ++Byte) {
    std::string Mutated = Bytes;
    Mutated[Byte] = static_cast<char>(Mutated[Byte] ^ 0x40);
    ByteReader R(Mutated);
    Module M;
    if (readModuleBinary(R, M)) {
      // A flip may still parse (it describes some other module); it must
      // then re-encode and re-parse to the same module — no torn state.
      ByteWriter Again;
      writeModuleBinary(Again, M);
      std::string Reencoded = Again.take();
      ByteReader R2(Reencoded);
      Module M2;
      ASSERT_TRUE(readModuleBinary(R2, M2));
      EXPECT_EQ(hashModule(M2), hashModule(M));
      EXPECT_EQ(M2.Bound, M.Bound);
    } else {
      EXPECT_FALSE(R.error().empty());
    }
  }
  for (size_t Length = 0; Length < Bytes.size(); ++Length) {
    std::string Truncated = Bytes.substr(0, Length);
    ByteReader R(Truncated);
    Module M;
    EXPECT_FALSE(readModuleBinary(R, M))
        << "module codec accepted a " << Length << "-byte truncation";
  }
}

TEST(StoreSerde, AtomicWriteAndReadBack) {
  std::string Dir = ::testing::TempDir() + "serde-atomic";
  std::string Path = Dir + "-file.bin";
  std::string Error;
  ASSERT_TRUE(atomicWriteFile(Path, "hello store", Error)) << Error;
  std::string Back;
  ASSERT_TRUE(readFileBytes(Path, Back, Error)) << Error;
  EXPECT_EQ(Back, "hello store");
  // Overwrite is atomic too: the new content fully replaces the old.
  ASSERT_TRUE(atomicWriteFile(Path, "second", Error)) << Error;
  ASSERT_TRUE(readFileBytes(Path, Back, Error)) << Error;
  EXPECT_EQ(Back, "second");
  EXPECT_FALSE(readFileBytes(Path + ".missing", Back, Error));
}

} // namespace
