//===- tests/OptPassesTest.cpp - Compiler-substrate correctness -----------===//
//
// Part of the spirv-fuzz reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The simulated compilers must be *correct implementations* when their
/// injected bugs are disabled (Definition 2.2): on any valid module, every
/// pipeline must terminate without crashing and compute Semantics(P, I).
/// This is checked on generated originals and on fuzzed variants, per pass
/// and for full pipelines.
///
//===----------------------------------------------------------------------===//

#include "analysis/Validator.h"
#include "core/Fuzzer.h"
#include "exec/Interpreter.h"
#include "gen/Generator.h"
#include "ir/Text.h"
#include "opt/Passes.h"
#include "target/Target.h"

#include <gtest/gtest.h>

using namespace spvfuzz;

namespace {

const std::vector<OptPassKind> AllPasses = {
    OptPassKind::FrontendCheck,  OptPassKind::SimplifyCfg,
    OptPassKind::Inliner,        OptPassKind::LocalCSE,
    OptPassKind::LoadStoreForwarding, OptPassKind::ConstantFold,
    OptPassKind::DeadBranchElim, OptPassKind::PhiSimplify,
    OptPassKind::CopyPropagation, OptPassKind::DeadStoreElim,
    OptPassKind::Dce,            OptPassKind::BlockLayout,
};

Module fuzzedVariant(uint64_t Seed, GeneratedProgram &ProgramOut) {
  ProgramOut = generateProgram(Seed);
  std::vector<GeneratedProgram> DonorPrograms = generateCorpus(2, Seed + 500);
  std::vector<const Module *> Donors;
  for (const GeneratedProgram &Donor : DonorPrograms)
    Donors.push_back(&Donor.M);
  FuzzerOptions Options;
  Options.TransformationLimit = 250;
  return fuzz(ProgramOut.M, ProgramOut.Input, Donors, Seed, Options).Variant;
}

class OptPassProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(OptPassProperty, EachPassPreservesSemanticsOnOriginals) {
  GeneratedProgram Program = generateProgram(GetParam());
  ExecResult Reference = interpret(Program.M, Program.Input);
  BugHost NoBugs;
  for (OptPassKind Kind : AllPasses) {
    Module Optimized = Program.M;
    PassCrash Crash = runOptPass(Kind, Optimized, NoBugs);
    ASSERT_FALSE(Crash.has_value())
        << optPassName(Kind) << " crashed with bugs disabled: " << *Crash;
    std::vector<std::string> Diags = validateModule(Optimized);
    ASSERT_TRUE(Diags.empty())
        << optPassName(Kind) << ": " << Diags.front() << "\n"
        << writeModuleText(Optimized);
    EXPECT_EQ(Reference, interpret(Optimized, Program.Input))
        << optPassName(Kind) << " changed semantics";
  }
}

TEST_P(OptPassProperty, FullPipelinePreservesSemanticsOnOriginals) {
  GeneratedProgram Program = generateProgram(GetParam());
  ExecResult Reference = interpret(Program.M, Program.Input);
  BugHost NoBugs;
  Module Optimized = Program.M;
  PassCrash Crash = runPipeline(AllPasses, Optimized, NoBugs);
  ASSERT_FALSE(Crash.has_value());
  std::vector<std::string> Diags = validateModule(Optimized);
  ASSERT_TRUE(Diags.empty()) << Diags.front() << "\n"
                             << writeModuleText(Optimized);
  EXPECT_EQ(Reference, interpret(Optimized, Program.Input));
}

TEST_P(OptPassProperty, FullPipelinePreservesSemanticsOnVariants) {
  GeneratedProgram Program;
  Module Variant = fuzzedVariant(GetParam(), Program);
  ExecResult Reference = interpret(Variant, Program.Input);
  BugHost NoBugs;
  Module Optimized = Variant;
  PassCrash Crash = runPipeline(AllPasses, Optimized, NoBugs);
  ASSERT_FALSE(Crash.has_value());
  std::vector<std::string> Diags = validateModule(Optimized);
  ASSERT_TRUE(Diags.empty()) << Diags.front() << "\n--- variant ---\n"
                             << writeModuleText(Variant)
                             << "\n--- optimized ---\n"
                             << writeModuleText(Optimized);
  EXPECT_EQ(Reference, interpret(Optimized, Program.Input));
}

TEST_P(OptPassProperty, PipelineShrinksOrKeepsVariants) {
  GeneratedProgram Program;
  Module Variant = fuzzedVariant(GetParam() + 77, Program);
  BugHost NoBugs;
  Module Optimized = Variant;
  runPipeline(AllPasses, Optimized, NoBugs);
  // An optimizer should not blow the program up.
  EXPECT_LE(Optimized.instructionCount(), Variant.instructionCount() * 3);
}

INSTANTIATE_TEST_SUITE_P(Seeds, OptPassProperty,
                         ::testing::Range<uint64_t>(0, 10));

TEST(Targets, OriginalsNeverTriggerInjectedBugs) {
  // Injected bugs are gated on fuzzer-introduced features; original
  // programs must compile and run cleanly on every target, or campaigns
  // would be measuring generator noise.
  TargetFleet Fleet = TargetFleet::standard();
  for (uint64_t Seed = 0; Seed < 20; ++Seed) {
    GeneratedProgram Program = generateProgram(Seed);
    for (const Target &T : Fleet) {
      TargetRun Run = T.run(Program.M, Program.Input);
      ASSERT_EQ(Run.RunOutcome, Outcome::Executed)
          << T.name() << " crashed on original seed " << Seed << ": "
          << Run.Signature;
      if (T.canExecute())
        EXPECT_EQ(Run.Result, interpret(Program.M, Program.Input))
            << T.name() << " miscompiled original seed " << Seed;
    }
  }
}

TEST(Targets, TableTwoShape) {
  TargetFleet Fleet = TargetFleet::standard();
  ASSERT_EQ(Fleet.size(), 9u);
  size_t CrashOnly = 0;
  for (const Target &T : Fleet)
    if (!T.canExecute())
      ++CrashOnly;
  // AMD-LLPC, spirv-opt and spirv-opt-old cannot render images (ğ4).
  EXPECT_EQ(CrashOnly, 3u);
}

} // namespace
