//===- tests/HarnessTest.cpp - Fault-tolerance harness tests --------------===//
//
// Part of the spirv-fuzz reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The harness contracts: step budgets time out at exactly the budget
/// boundary, fault draws are pure functions of (seed, module, attempt),
/// harnessed runs are pure in (module, input) even on flaky targets, the
/// default policy is behaviour-identical to the unharnessed fleet, and the
/// quarantine breaker engages, holds and clears deterministically.
///
//===----------------------------------------------------------------------===//

#include "gen/Generator.h"
#include "support/ModuleHash.h"
#include "support/Telemetry.h"
#include "target/Harness.h"
#include "TestHelpers.h"

using namespace spvfuzz;
using namespace spvfuzz::test;

namespace {

const Target *fleetTarget(const TargetFleet &Fleet, const std::string &Name) {
  const Target *T = Fleet.find(Name);
  EXPECT_NE(T, nullptr) << Name;
  return T;
}

//===----------------------------------------------------------------------===//
// Step budgets
//===----------------------------------------------------------------------===//

TEST(Harness, CompileTimesOutExactlyPastTheStepBudget) {
  // The simulated compile cost is instructions x passes; a budget equal to
  // the cost succeeds, one step less times out. Use a crash-only target so
  // no interpreter step accounting muddies the boundary.
  TargetFleet Fleet = TargetFleet::standard();
  const Target *Opt = fleetTarget(Fleet, "spirv-opt");
  Fixture F;
  const uint64_t Cost = static_cast<uint64_t>(F.M.instructionCount()) *
                        Opt->spec().Pipeline.size();

  RunContext Exact;
  Exact.StepBudget = Cost;
  EXPECT_EQ(Opt->run(F.M, F.Input, Exact).RunOutcome, Outcome::Executed);

  RunContext OneShort;
  OneShort.StepBudget = Cost - 1;
  TargetRun Run = Opt->run(F.M, F.Input, OneShort);
  EXPECT_EQ(Run.RunOutcome, Outcome::Timeout);
  EXPECT_EQ(Run.Signature, TimeoutSignature);
  EXPECT_TRUE(Run.interesting()) << "timeouts are bug candidates";
}

TEST(Harness, HarnessedTimeoutIsCountedAndInteresting) {
  using telemetry::MetricsRegistry;
  TargetFleet Fleet = TargetFleet::standard();
  const Target *Opt = fleetTarget(Fleet, "spirv-opt");
  Fixture F;
  HarnessPolicy Policy;
  Policy.TargetDeadlineSteps = 1; // everything times out

  MetricsRegistry::global().setEnabled(true);
  MetricsRegistry::global().reset();
  HarnessedTarget Budgeted(*Opt, Policy);
  TargetRun Run = Budgeted.run(F.M, F.Input);
  uint64_t Timeouts =
      MetricsRegistry::global().counterValue("harness.timeouts");
  MetricsRegistry::global().reset();
  MetricsRegistry::global().setEnabled(false);

  EXPECT_EQ(Run.RunOutcome, Outcome::Timeout);
  EXPECT_EQ(Run.Signature, TimeoutSignature);
  EXPECT_EQ(Timeouts, 1u);
}

TEST(Harness, DefaultPolicyMatchesUnharnessedSolidFleet) {
  // The backward-compatibility invariant: with the default step budget
  // (the interpreter's own limit) a harnessed solid target is
  // bit-identical to the raw target.
  GeneratedProgram Program = generateProgram(17);
  HarnessPolicy Policy;
  for (const Target &T : TargetFleet::standard()) {
    HarnessedTarget H(T, Policy);
    TargetRun Raw = T.run(Program.M, Program.Input);
    TargetRun Harnessed = H.run(Program.M, Program.Input);
    EXPECT_EQ(Harnessed.RunOutcome, Raw.RunOutcome) << T.name();
    EXPECT_EQ(Harnessed.Signature, Raw.Signature) << T.name();
    EXPECT_EQ(Harnessed.Result == Raw.Result, true) << T.name();
  }
}

//===----------------------------------------------------------------------===//
// Fault draws
//===----------------------------------------------------------------------===//

TEST(Harness, FlakyDrawIsPureInSeedModuleAndAttempt) {
  Fixture F;
  const uint64_t MHash = hashModule(F.M);
  size_t Fires = 0;
  for (uint32_t Attempt = 0; Attempt < 64; ++Attempt) {
    bool First = flakyBugFires(2021, MHash, BugPoint::CrashUnusedCallResult,
                               Attempt);
    bool Second = flakyBugFires(2021, MHash, BugPoint::CrashUnusedCallResult,
                                Attempt);
    EXPECT_EQ(First, Second) << "attempt " << Attempt;
    Fires += First ? 1 : 0;
  }
  // The draw actually varies by attempt: across 64 attempts at p = 0.75
  // both outcomes occur.
  EXPECT_GT(Fires, 0u);
  EXPECT_LT(Fires, 64u);

  // And it varies by module: a different module hash gives a different
  // fire pattern for at least one attempt.
  bool Differs = false;
  for (uint32_t Attempt = 0; Attempt < 64 && !Differs; ++Attempt)
    Differs = flakyBugFires(2021, MHash, BugPoint::CrashUnusedCallResult,
                            Attempt) !=
              flakyBugFires(2021, MHash ^ 1, BugPoint::CrashUnusedCallResult,
                            Attempt);
  EXPECT_TRUE(Differs);
}

TEST(Harness, ToolErrorDrawRespectsRateExtremes) {
  Fixture F;
  const uint64_t MHash = hashModule(F.M);
  for (uint32_t Attempt = 0; Attempt < 32; ++Attempt) {
    EXPECT_FALSE(toolErrorFires(7, MHash, "Pixel-3", Attempt, 0.0));
    EXPECT_TRUE(toolErrorFires(7, MHash, "Pixel-3", Attempt, 1.0));
    EXPECT_EQ(toolErrorFires(7, MHash, "Pixel-3", Attempt, 0.5),
              toolErrorFires(7, MHash, "Pixel-3", Attempt, 0.5));
  }
}

TEST(Harness, SolidHangFlavorSurfacesAsTimeout) {
  // A (non-flaky) Hang-flavored bug wedges the pipeline: the crash becomes
  // a signature-less timeout, deterministically.
  TargetFleet Fleet = TargetFleet::standard();
  TargetSpec Spec = fleetTarget(Fleet, "SwiftShader")->spec();
  Spec.Name = "SwiftShader-wedge";
  Spec.Bugs.withFlavor(BugPoint::CrashDontInlineAttribute, BugFlavor::Hang);
  Target Wedge(Spec);

  Fixture F;
  Module WithDontInline = F.M;
  WithDontInline.findFunction(F.HelperId)->setControlMask(FC_DontInline);

  TargetRun Run = Wedge.run(WithDontInline, F.Input);
  EXPECT_EQ(Run.RunOutcome, Outcome::Timeout);
  EXPECT_EQ(Run.Signature, TimeoutSignature);
  // The clean module is unaffected.
  EXPECT_EQ(Wedge.run(F.M, F.Input).RunOutcome, Outcome::Executed);
}

//===----------------------------------------------------------------------===//
// Retry / voting
//===----------------------------------------------------------------------===//

TEST(Harness, HarnessedRunsArePureOnFlakyTargets) {
  // The determinism keystone: even though a flaky target's single attempts
  // disagree, the harnessed (voted) verdict is a pure function of
  // (module, input) — repeated calls agree exactly.
  TargetFleet Fleet = TargetFleet::faulty();
  const Target *Old = fleetTarget(Fleet, "SwiftShader-old");
  ASSERT_FALSE(Old->spec().deterministic());
  HarnessPolicy Policy;
  Policy.CampaignSeed = 2021;
  HarnessedTarget H(*Old, Policy);

  Fixture F;
  Module WithDontInline = F.M;
  WithDontInline.findFunction(F.HelperId)->setControlMask(FC_DontInline);

  for (const Module *M : {&F.M, &WithDontInline}) {
    TargetRun A = H.run(*M, F.Input);
    TargetRun B = H.run(*M, F.Input);
    EXPECT_EQ(A.RunOutcome, B.RunOutcome);
    EXPECT_EQ(A.Signature, B.Signature);
    EXPECT_EQ(A.Result == B.Result, true);
  }
  // A FlakyHang bug, when it wins the vote, reports as a timeout; either
  // way a triggered flaky bug never reports as a plain crash.
  TargetRun Verdict = H.run(WithDontInline, F.Input);
  EXPECT_NE(Verdict.RunOutcome, Outcome::Crash);
}

TEST(Harness, VotingRetriesAreCounted) {
  using telemetry::MetricsRegistry;
  TargetFleet Fleet = TargetFleet::faulty();
  const Target *Old = fleetTarget(Fleet, "SwiftShader-old");
  HarnessPolicy Policy;
  Policy.FlakyRetries = 5;
  HarnessedTarget H(*Old, Policy);
  Fixture F;

  MetricsRegistry::global().setEnabled(true);
  MetricsRegistry::global().reset();
  H.run(F.M, F.Input);
  uint64_t Retries = MetricsRegistry::global().counterValue("harness.retries");
  MetricsRegistry::global().reset();
  MetricsRegistry::global().setEnabled(false);

  // All five attempts ran (SwiftShader-old's 10% tool-error rate cannot
  // hard-fail five attempts at threshold 3 here: the draw is deterministic
  // and this seed/module passes), so four were retries.
  EXPECT_EQ(Retries, 4u);
}

//===----------------------------------------------------------------------===//
// Quarantine breaker
//===----------------------------------------------------------------------===//

TEST(Harness, QuarantineEngagesAtThresholdAndClears) {
  HarnessPolicy Policy;
  Policy.QuarantineThreshold = 3;
  TargetFleet Fleet = TargetFleet::faulty();
  Harness Har(Fleet, Policy);

  EXPECT_FALSE(Har.quarantined("Pixel-3"));
  EXPECT_FALSE(Har.recordOutcome("Pixel-3", true));
  EXPECT_FALSE(Har.recordOutcome("Pixel-3", true));
  // The third consecutive hard error newly quarantines.
  EXPECT_TRUE(Har.recordOutcome("Pixel-3", true));
  EXPECT_TRUE(Har.quarantined("Pixel-3"));
  EXPECT_EQ(Har.quarantinedCount(), 1u);
  // Further errors are absorbed without re-reporting.
  EXPECT_FALSE(Har.recordOutcome("Pixel-3", true));

  Har.clearQuarantine("Pixel-3");
  EXPECT_FALSE(Har.quarantined("Pixel-3"));
  EXPECT_EQ(Har.quarantinedCount(), 0u);
}

TEST(Harness, SuccessResetsTheConsecutiveErrorCount) {
  HarnessPolicy Policy;
  Policy.QuarantineThreshold = 3;
  Harness Har(TargetFleet::faulty(), Policy);

  EXPECT_FALSE(Har.recordOutcome("Pixel-3", true));
  EXPECT_FALSE(Har.recordOutcome("Pixel-3", true));
  EXPECT_FALSE(Har.recordOutcome("Pixel-3", false)); // a clean run
  EXPECT_FALSE(Har.recordOutcome("Pixel-3", true));
  EXPECT_FALSE(Har.recordOutcome("Pixel-3", true));
  EXPECT_FALSE(Har.quarantined("Pixel-3"))
      << "errors must be consecutive to trip the breaker";
  EXPECT_TRUE(Har.recordOutcome("Pixel-3", true));
}

TEST(Harness, FlakyTargetsNeverTouchTheEvalCache) {
  // Handing the harness a cache must not change flaky verdicts or populate
  // entries for nondeterministic targets.
  TargetFleet Fleet = TargetFleet::faulty();
  const Target *Old = fleetTarget(Fleet, "SwiftShader-old");
  HarnessPolicy Policy;
  EvalCache Cache(8u << 20);
  HarnessedTarget Cached(*Old, Policy, &Cache);
  Fixture F;
  Cached.run(F.M, F.Input);
  Cached.run(F.M, F.Input);
  EXPECT_EQ(Cache.entryCount(), 0u);
  EXPECT_EQ(Cache.hitCount() + Cache.missCount(), 0u);

  // A deterministic target through the same harness does get memoized.
  const Target *Opt = fleetTarget(Fleet, "spirv-opt");
  HarnessedTarget CachedOpt(*Opt, Policy, &Cache);
  CachedOpt.run(F.M, F.Input);
  CachedOpt.run(F.M, F.Input);
  EXPECT_EQ(Cache.hitCount(), 1u);
  EXPECT_EQ(Cache.missCount(), 1u);
}

} // namespace
