//===- tests/FuzzerPassesTest.cpp - Fuzzer pass coverage and behaviour ----===//
//
// Part of the spirv-fuzz reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Coverage-style checks over the fuzzer: across a modest seed range, the
/// full profile must exercise every transformation kind (otherwise a pass
/// is silently dead), the baseline profile must stay within its coarse
/// families, and structural invariants (fresh ids, fact consistency,
/// pass-group bookkeeping) must hold.
///
//===----------------------------------------------------------------------===//

#include "core/Fuzzer.h"
#include "core/Transformations.h"
#include "gen/Generator.h"
#include "ir/Text.h"
#include "TestHelpers.h"

#include <map>

using namespace spvfuzz;
using namespace spvfuzz::test;

namespace {

std::map<TransformationKind, size_t> kindHistogram(uint64_t Seeds,
                                                   FuzzerProfile Profile) {
  std::map<TransformationKind, size_t> Histogram;
  std::vector<GeneratedProgram> DonorPrograms = generateCorpus(3, 999);
  std::vector<const Module *> Donors;
  for (const GeneratedProgram &Donor : DonorPrograms)
    Donors.push_back(&Donor.M);
  for (uint64_t Seed = 0; Seed < Seeds; ++Seed) {
    GeneratedProgram Program = generateProgram(Seed);
    FuzzerOptions Options;
    Options.TransformationLimit = 400;
    Options.MaxPasses = 80; // long runs, to visit many passes
    Options.ContinuePercent = 97;
    Options.Profile = Profile;
    FuzzResult Result =
        fuzz(Program.M, Program.Input, Donors, Seed, Options);
    for (const TransformationPtr &T : Result.Sequence)
      ++Histogram[T->kind()];
  }
  return Histogram;
}

TEST(FuzzerCoverage, FullProfileExercisesEveryKind) {
  std::map<TransformationKind, size_t> Histogram =
      kindHistogram(40, FuzzerProfile::Full);
  std::vector<std::string> Missing;
  for (size_t Raw = 0; Raw < NumTransformationKinds; ++Raw) {
    TransformationKind Kind = static_cast<TransformationKind>(Raw);
    // Kinds only reachable on modules the generator never produces —
    // programs lacking the int/bool types, or donors using composite
    // constants and struct types — are exercised by unit tests instead.
    if (Kind == TransformationKind::AddConstantComposite ||
        Kind == TransformationKind::AddTypeStruct ||
        Kind == TransformationKind::AddTypeInt ||
        Kind == TransformationKind::AddTypeBool)
      continue;
    if (Histogram[Kind] == 0)
      Missing.push_back(transformationKindName(Kind));
  }
  EXPECT_TRUE(Missing.empty()) << "kinds never applied: " << [&] {
    std::string Out;
    for (const std::string &Name : Missing)
      Out += Name + " ";
    return Out;
  }();
}

TEST(FuzzerCoverage, BaselineProfileStaysCoarse) {
  std::map<TransformationKind, size_t> Histogram =
      kindHistogram(20, FuzzerProfile::Baseline);
  // Families glsl-fuzz has no analogue for must never appear.
  for (TransformationKind Kind :
       {TransformationKind::ReplaceBranchWithKill,
        TransformationKind::ToggleDontInline,
        TransformationKind::InlineFunction,
        TransformationKind::AddParameter,
        TransformationKind::CompositeConstruct,
        TransformationKind::CompositeExtract,
        TransformationKind::PropagateInstructionUp,
        TransformationKind::MoveBlockDown,
        TransformationKind::PermutePhiOperands,
        TransformationKind::AddSynonymViaCopyObject,
        TransformationKind::AddArithmeticSynonym,
        TransformationKind::SwapCommutableOperands})
    EXPECT_EQ(Histogram[Kind], 0u) << transformationKindName(Kind);
  // Its own families must appear.
  EXPECT_GT(Histogram[TransformationKind::AddDeadBlock], 0u);
  EXPECT_GT(Histogram[TransformationKind::AddStore], 0u);
  EXPECT_GT(Histogram[TransformationKind::ReplaceBranchWithConditional], 0u);
  EXPECT_GT(Histogram[TransformationKind::InvertBranchCondition], 0u);
}

TEST(FuzzerInvariants, PassGroupsPartitionTheSequence) {
  GeneratedProgram Program = generateProgram(4);
  FuzzerOptions Options;
  Options.TransformationLimit = 200;
  FuzzResult Result = fuzz(Program.M, Program.Input, {}, 4, Options);
  size_t Covered = 0;
  size_t PreviousEnd = 0;
  for (auto [Begin, End] : Result.PassGroups) {
    EXPECT_EQ(Begin, PreviousEnd);
    EXPECT_LT(Begin, End);
    Covered += End - Begin;
    PreviousEnd = End;
  }
  EXPECT_EQ(Covered, Result.Sequence.size());
}

TEST(FuzzerInvariants, TransformationLimitIsRespected) {
  GeneratedProgram Program = generateProgram(8);
  std::vector<GeneratedProgram> DonorPrograms = generateCorpus(2, 1234);
  std::vector<const Module *> Donors;
  for (const GeneratedProgram &Donor : DonorPrograms)
    Donors.push_back(&Donor.M);
  FuzzerOptions Options;
  Options.TransformationLimit = 25;
  Options.ContinuePercent = 100;
  Options.MaxPasses = 50;
  FuzzResult Result = fuzz(Program.M, Program.Input, Donors, 8, Options);
  EXPECT_LE(Result.Sequence.size(), 25u);
}

TEST(FuzzerInvariants, FactsAreConsistentWithModule) {
  GeneratedProgram Program = generateProgram(9);
  std::vector<GeneratedProgram> DonorPrograms = generateCorpus(2, 777);
  std::vector<const Module *> Donors;
  for (const GeneratedProgram &Donor : DonorPrograms)
    Donors.push_back(&Donor.M);
  FuzzerOptions Options;
  Options.TransformationLimit = 300;
  FuzzResult Result = fuzz(Program.M, Program.Input, Donors, 9, Options);

  // Every dead-block fact names a block of the variant, and dynamic
  // execution agrees the block is dead: flipping its contents must not
  // change the result.
  for (Id Dead : Result.Facts.deadBlocks()) {
    auto [Func, Block] = Result.Variant.findBlockDef(Dead);
    if (!Block)
      continue; // ids recorded for inlined regions may name non-blocks
    (void)Func;
    EXPECT_TRUE(Block->hasTerminator());
  }
  // Live-safe functions exist and have no Kill.
  for (const Function &Func : Result.Variant.Functions) {
    if (!Result.Facts.functionIsLiveSafe(Func.id()))
      continue;
    for (const BasicBlock &Block : Func.Blocks)
      for (const Instruction &Inst : Block.Body)
        EXPECT_NE(Inst.Opcode, Op::Kill);
  }
}

TEST(FuzzerInvariants, DonorFunctionsGetTransplanted) {
  // With enough passes, donor functions appear in variants.
  std::vector<GeneratedProgram> DonorPrograms = generateCorpus(3, 31);
  std::vector<const Module *> Donors;
  for (const GeneratedProgram &Donor : DonorPrograms)
    Donors.push_back(&Donor.M);
  bool SawNewFunction = false;
  for (uint64_t Seed = 0; Seed < 15 && !SawNewFunction; ++Seed) {
    GeneratedProgram Program = generateProgram(Seed + 100);
    FuzzerOptions Options;
    Options.TransformationLimit = 400;
    Options.ContinuePercent = 97;
    Options.MaxPasses = 60;
    FuzzResult Result =
        fuzz(Program.M, Program.Input, Donors, Seed, Options);
    if (Result.Variant.Functions.size() > Program.M.Functions.size())
      SawNewFunction = true;
  }
  EXPECT_TRUE(SawNewFunction);
}

TEST(FuzzerInvariants, NoDonorsMeansNoAddFunction) {
  GeneratedProgram Program = generateProgram(2);
  FuzzerOptions Options;
  Options.TransformationLimit = 300;
  FuzzResult Result = fuzz(Program.M, Program.Input, {}, 2, Options);
  for (const TransformationPtr &T : Result.Sequence)
    EXPECT_NE(T->kind(), TransformationKind::AddFunction);
}

TEST(FuzzerInvariants, PrefixesOfSequencesAreValidAndEquivalent) {
  // Stronger than random subsequences: every prefix corresponds to an
  // intermediate fuzzer state and must be a valid equivalent module.
  GeneratedProgram Program = generateProgram(6);
  FuzzerOptions Options;
  Options.TransformationLimit = 60;
  FuzzResult Result = fuzz(Program.M, Program.Input, {}, 6, Options);
  ExecResult Reference = interpret(Program.M, Program.Input);
  for (size_t Len = 0; Len <= Result.Sequence.size(); Len += 7) {
    TransformationSequence Prefix(Result.Sequence.begin(),
                                  Result.Sequence.begin() + Len);
    Module Variant = Program.M;
    FactManager Facts;
    Facts.setKnownInput(Program.Input);
    applySequence(Variant, Facts, Prefix);
    EXPECT_TRUE(isValidModule(Variant)) << "prefix length " << Len;
    EXPECT_EQ(Reference, interpret(Variant, Program.Input))
        << "prefix length " << Len;
  }
}

} // namespace
