//===- tests/CampaignEngineTest.cpp - Engine determinism tests ------------===//
//
// Part of the spirv-fuzz reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The engine's headline guarantee: a campaign run with N worker threads is
/// bit-identical to the serial run — same TestEvaluations, same reduction
/// records, same dedup classes, same metrics counter totals — including on
/// the faulty fleet, where flaky bugs, timeouts, retries and quarantine are
/// in play. Also covers the ExecutionPolicy defaults and deadline
/// truncation.
///
//===----------------------------------------------------------------------===//

#include "campaign/CampaignEngine.h"
#include "support/Telemetry.h"

#include "gtest/gtest.h"

#include <chrono>
#include <thread>

using namespace spvfuzz;

namespace {

// A laptop-friendly campaign: a small corpus and modest fuzzing volume so
// each determinism test runs a full parallel-vs-serial comparison in
// seconds.
CorpusSpec smallCorpus() {
  return CorpusSpec{}.withReferences(4).withDonors(6);
}

CampaignEngine makeEngine(size_t Jobs) {
  return CampaignEngine(
      ExecutionPolicy{}.withJobs(Jobs).withTransformationLimit(120),
      smallCorpus());
}

void expectSameEvaluations(const std::vector<TestEvaluation> &A,
                           const std::vector<TestEvaluation> &B) {
  ASSERT_EQ(A.size(), B.size());
  for (size_t I = 0; I < A.size(); ++I) {
    EXPECT_EQ(A[I].Seed, B[I].Seed) << "test " << I;
    EXPECT_EQ(A[I].ReferenceIndex, B[I].ReferenceIndex) << "test " << I;
    EXPECT_EQ(A[I].Signatures, B[I].Signatures) << "test " << I;
  }
}

TEST(CampaignEngine, PolicyDefaultsFlowIntoCorpusAndTools) {
  CampaignEngine Engine(
      ExecutionPolicy{}.withSeed(5).withTransformationLimit(123));
  // The corpus picks up the policy seed, the tools the policy limit.
  Corpus Expected = makeCorpus(CorpusSpec{}.withSeed(5));
  ASSERT_EQ(Engine.corpus().References.size(), Expected.References.size());
  EXPECT_EQ(Engine.corpus().References[0].M.instructionCount(),
            Expected.References[0].M.instructionCount());
  ASSERT_EQ(Engine.tools().size(), 3u);
  for (const ToolConfig &Tool : Engine.tools())
    EXPECT_EQ(Tool.Options.TransformationLimit, 123u);
  EXPECT_EQ(Engine.targets().size(), 9u);
  ASSERT_NE(Engine.findTool("glsl-fuzz"), nullptr);
  EXPECT_EQ(Engine.findTool("glsl-fuzz")->SeedStream, 2u);
  EXPECT_EQ(Engine.findTool("no-such-tool"), nullptr);
}

TEST(CampaignEngine, EvaluationsAreIdenticalAcrossJobCounts) {
  CampaignEngine Serial = makeEngine(1);
  CampaignEngine Parallel = makeEngine(8);
  for (const ToolConfig &Tool : Serial.tools()) {
    std::vector<TestEvaluation> A = Serial.evaluateTests(Tool, 48);
    std::vector<TestEvaluation> B = Parallel.evaluateTests(Tool, 48);
    ASSERT_EQ(A.size(), 48u) << Tool.Name;
    expectSameEvaluations(A, B);
  }
}

TEST(CampaignEngine, EvaluationsMatchFreeFunction) {
  // The engine's parallel path computes exactly what the single-test
  // entry point computes.
  CampaignEngine Engine = makeEngine(4);
  const ToolConfig &Tool = Engine.tools()[0];
  std::vector<TestEvaluation> Evals = Engine.evaluateTests(Tool, 16);
  ASSERT_EQ(Evals.size(), 16u);
  for (size_t I = 0; I < Evals.size(); ++I) {
    TestEvaluation Expected = evaluateTest(Engine.corpus(), Tool,
                                           Engine.targets(),
                                           Engine.policy().Seed, I);
    EXPECT_EQ(Evals[I].Seed, Expected.Seed);
    EXPECT_EQ(Evals[I].ReferenceIndex, Expected.ReferenceIndex);
    EXPECT_EQ(Evals[I].Signatures, Expected.Signatures);
  }
}

TEST(CampaignEngine, BugFindingIsIdenticalAcrossJobCounts) {
  BugFindingConfig Config;
  Config.TestsPerTool = 60;
  Config.NumGroups = 5;

  CampaignEngine Serial = makeEngine(1);
  BugFindingData A = Serial.runBugFinding(Config);
  CampaignEngine Parallel = makeEngine(8);
  BugFindingData B = Parallel.runBugFinding(Config);

  EXPECT_EQ(A.ToolNames, B.ToolNames);
  EXPECT_EQ(A.TargetNames, B.TargetNames);
  ASSERT_EQ(A.Stats.size(), B.Stats.size());
  for (const auto &[Tool, PerTarget] : A.Stats) {
    ASSERT_TRUE(B.Stats.count(Tool)) << Tool;
    for (const auto &[TargetName, Stats] : PerTarget) {
      ASSERT_TRUE(B.Stats.at(Tool).count(TargetName))
          << Tool << "/" << TargetName;
      const ToolTargetStats &Other = B.Stats.at(Tool).at(TargetName);
      EXPECT_EQ(Stats.Distinct, Other.Distinct) << Tool << "/" << TargetName;
      EXPECT_EQ(Stats.PerGroup, Other.PerGroup) << Tool << "/" << TargetName;
    }
  }
  // And the campaign found something, so the comparison is not vacuous.
  size_t TotalDistinct = 0;
  for (const auto &[Tool, PerTarget] : A.Stats)
    for (const auto &[TargetName, Stats] : PerTarget)
      TotalDistinct += Stats.Distinct.size();
  EXPECT_GT(TotalDistinct, 0u);
}

TEST(CampaignEngine, ReductionsAreIdenticalAcrossJobCounts) {
  ReductionConfig Config;
  Config.TestsPerTool = 60;
  Config.CapPerSignature = 2;
  Config.MaxReductionsPerTool = 8;

  CampaignEngine Serial = makeEngine(1);
  ReductionData A = Serial.runReductions(Config);
  CampaignEngine Parallel = makeEngine(8);
  ReductionData B = Parallel.runReductions(Config);

  ASSERT_EQ(A.Records.size(), B.Records.size());
  EXPECT_GT(A.Records.size(), 0u);
  for (size_t I = 0; I < A.Records.size(); ++I) {
    const ReductionRecord &X = A.Records[I], &Y = B.Records[I];
    EXPECT_EQ(X.Tool, Y.Tool) << "record " << I;
    EXPECT_EQ(X.TargetName, Y.TargetName) << "record " << I;
    EXPECT_EQ(X.Signature, Y.Signature) << "record " << I;
    EXPECT_EQ(X.TestIndex, Y.TestIndex) << "record " << I;
    EXPECT_EQ(X.OriginalCount, Y.OriginalCount) << "record " << I;
    EXPECT_EQ(X.UnreducedCount, Y.UnreducedCount) << "record " << I;
    EXPECT_EQ(X.ReducedCount, Y.ReducedCount) << "record " << I;
    EXPECT_EQ(X.MinimizedLength, Y.MinimizedLength) << "record " << I;
    EXPECT_EQ(X.Checks, Y.Checks) << "record " << I;
    EXPECT_EQ(X.Types, Y.Types) << "record " << I;
  }
}

void expectSameReductionRecords(const ReductionData &A,
                                const ReductionData &B) {
  ASSERT_EQ(A.Records.size(), B.Records.size());
  EXPECT_GT(A.Records.size(), 0u);
  for (size_t I = 0; I < A.Records.size(); ++I) {
    const ReductionRecord &X = A.Records[I], &Y = B.Records[I];
    EXPECT_EQ(X.Tool, Y.Tool) << "record " << I;
    EXPECT_EQ(X.TargetName, Y.TargetName) << "record " << I;
    EXPECT_EQ(X.Signature, Y.Signature) << "record " << I;
    EXPECT_EQ(X.TestIndex, Y.TestIndex) << "record " << I;
    EXPECT_EQ(X.ReducedCount, Y.ReducedCount) << "record " << I;
    EXPECT_EQ(X.MinimizedLength, Y.MinimizedLength) << "record " << I;
    EXPECT_EQ(X.Checks, Y.Checks) << "record " << I;
    EXPECT_EQ(X.Types, Y.Types) << "record " << I;
  }
}

TEST(CampaignEngine, SpeculativeReductionIsIdenticalToSerial) {
  // The speculative path evaluates delta-debugging candidates ahead of
  // time on the pool; only SpeculativeChecks (wasted work) may differ from
  // the serial run — the decision sequence, and therefore every record
  // field including Checks, must not.
  ReductionConfig Config;
  Config.TestsPerTool = 60;
  Config.CapPerSignature = 2;
  Config.MaxReductionsPerTool = 8;

  CampaignEngine Serial = makeEngine(1);
  ReductionData A = Serial.runReductions(Config);

  CampaignEngine Speculative(ExecutionPolicy{}
                                 .withJobs(8)
                                 .withTransformationLimit(120)
                                 .withSpeculativeReduction(true),
                             smallCorpus());
  ReductionData B = Speculative.runReductions(Config);

  CampaignEngine NonSpeculative(ExecutionPolicy{}
                                    .withJobs(8)
                                    .withTransformationLimit(120)
                                    .withSpeculativeReduction(false),
                                smallCorpus());
  ReductionData C = NonSpeculative.runReductions(Config);

  expectSameReductionRecords(A, B);
  expectSameReductionRecords(A, C);
  // Serial and non-speculative runs never discard evaluations.
  for (const ReductionRecord &Record : A.Records)
    EXPECT_EQ(Record.SpeculativeChecks, 0u);
  for (const ReductionRecord &Record : C.Records)
    EXPECT_EQ(Record.SpeculativeChecks, 0u);
}

TEST(CampaignEngine, EvalCacheAndSnapshotKnobsNeverChangeResults) {
  // Reduction results with memoization and snapshots disabled must match
  // the default configuration exactly; only the evaluation counts differ.
  ReductionConfig Config;
  Config.TestsPerTool = 60;
  Config.CapPerSignature = 2;
  Config.MaxReductionsPerTool = 8;

  CampaignEngine Default = makeEngine(1);
  ReductionData A = Default.runReductions(Config);
  EXPECT_GT(Default.evalCache().hitCount(), 0u)
      << "reduction re-evaluates identical variants; the cache must absorb "
         "some of them";

  CampaignEngine Uncached(ExecutionPolicy{}
                              .withJobs(1)
                              .withTransformationLimit(120)
                              .withEvalCacheBudget(0)
                              .withReplaySnapshotInterval(0),
                          smallCorpus());
  ReductionData B = Uncached.runReductions(Config);
  EXPECT_EQ(Uncached.evalCache().entryCount(), 0u);
  EXPECT_EQ(Uncached.evalCache().hitCount(), 0u);

  expectSameReductionRecords(A, B);
}

TEST(CampaignEngine, DedupClassesAreIdenticalAcrossJobCounts) {
  ReductionConfig Config;
  Config.TestsPerTool = 60;
  Config.CapPerSignature = 3;
  Config.MaxReductionsPerTool = 10;

  CampaignEngine Serial = makeEngine(1);
  DedupData A = Serial.runDedup(Config);
  CampaignEngine Parallel = makeEngine(8);
  DedupData B = Parallel.runDedup(Config);

  ASSERT_EQ(A.PerTarget.size(), B.PerTarget.size());
  for (size_t I = 0; I < A.PerTarget.size(); ++I) {
    EXPECT_EQ(A.PerTarget[I].TargetName, B.PerTarget[I].TargetName);
    EXPECT_EQ(A.PerTarget[I].Tests, B.PerTarget[I].Tests);
    EXPECT_EQ(A.PerTarget[I].Sigs, B.PerTarget[I].Sigs);
    EXPECT_EQ(A.PerTarget[I].Reports, B.PerTarget[I].Reports);
    EXPECT_EQ(A.PerTarget[I].Distinct, B.PerTarget[I].Distinct);
    EXPECT_EQ(A.PerTarget[I].Dups, B.PerTarget[I].Dups);
  }
  EXPECT_EQ(A.Total.Tests, B.Total.Tests);
  EXPECT_EQ(A.Total.Reports, B.Total.Reports);
  EXPECT_EQ(A.Total.Distinct, B.Total.Distinct);
  EXPECT_GT(A.Total.Tests, 0u);
}

TEST(CampaignEngine, MetricsCounterTotalsAreIdenticalAcrossJobCounts) {
  // Counter totals are commutative sums, so they must not depend on how
  // jobs interleave. (Each gtest binary test runs in its own process, so
  // resetting the global registry here cannot race another test.)
  using telemetry::MetricsRegistry;
  BugFindingConfig Config;
  Config.TestsPerTool = 40;
  Config.NumGroups = 4;

  MetricsRegistry::global().setEnabled(true);
  MetricsRegistry::global().reset();
  {
    CampaignEngine Serial = makeEngine(1);
    Serial.runBugFinding(Config);
  }
  std::map<std::string, uint64_t> SerialCounters =
      MetricsRegistry::global().snapshot().Counters;

  MetricsRegistry::global().reset();
  {
    CampaignEngine Parallel = makeEngine(8);
    Parallel.runBugFinding(Config);
  }
  std::map<std::string, uint64_t> ParallelCounters =
      MetricsRegistry::global().snapshot().Counters;
  MetricsRegistry::global().reset();
  MetricsRegistry::global().setEnabled(false);

  EXPECT_EQ(SerialCounters, ParallelCounters);
  EXPECT_FALSE(SerialCounters.empty());
}

TEST(CampaignEngine, DeadlineTruncatesWork) {
  CampaignEngine Engine(ExecutionPolicy{}
                            .withJobs(2)
                            .withTransformationLimit(120)
                            .withDeadline(std::chrono::milliseconds(1)),
                        smallCorpus());
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_TRUE(Engine.deadlineExpired());
  // An expired deadline means no new work is issued.
  std::vector<TestEvaluation> Evals =
      Engine.evaluateTests(Engine.tools()[0], 64);
  EXPECT_TRUE(Evals.empty());
  BugFindingData Data = Engine.runBugFinding(BugFindingConfig{});
  for (const auto &[Tool, PerTarget] : Data.Stats)
    for (const auto &[TargetName, Stats] : PerTarget)
      EXPECT_TRUE(Stats.Distinct.empty()) << Tool << "/" << TargetName;
}

TEST(CampaignEngine, NoDeadlineNeverExpires) {
  CampaignEngine Engine(ExecutionPolicy{}.withTransformationLimit(120),
                        smallCorpus());
  EXPECT_FALSE(Engine.deadlineExpired());
}

//===----------------------------------------------------------------------===//
// Faulty-fleet determinism
//===----------------------------------------------------------------------===//

CampaignEngine makeFaultyEngine(size_t Jobs) {
  return CampaignEngine(
      ExecutionPolicy{}.withJobs(Jobs).withTransformationLimit(120),
      smallCorpus(), ToolsetSpec{}, TargetFleet::faulty());
}

TEST(CampaignEngine, FaultyFleetEvaluationsAreIdenticalAcrossJobCounts) {
  // The tentpole determinism contract: with flaky bugs, tool errors and
  // quarantine in the loop, --jobs 8 still reproduces --jobs 1 exactly —
  // including which targets tool-errored on each test.
  CampaignEngine Serial = makeFaultyEngine(1);
  CampaignEngine Parallel = makeFaultyEngine(8);
  size_t ToolErrors = 0;
  for (const ToolConfig &Tool : Serial.tools()) {
    std::vector<TestEvaluation> A = Serial.evaluateTests(Tool, 48);
    std::vector<TestEvaluation> B = Parallel.evaluateTests(Tool, 48);
    ASSERT_EQ(A.size(), 48u) << Tool.Name;
    expectSameEvaluations(A, B);
    for (size_t I = 0; I < A.size(); ++I) {
      EXPECT_EQ(A[I].ToolErrored, B[I].ToolErrored)
          << Tool.Name << " test " << I;
      ToolErrors += A[I].ToolErrored.size();
    }
  }
  // The faulty rows actually misbehaved, so the comparison is not vacuous.
  EXPECT_GT(ToolErrors, 0u);
  // Pixel-3's 80% tool-error rate must trip its breaker identically.
  EXPECT_EQ(Serial.harness().quarantined("Pixel-3"),
            Parallel.harness().quarantined("Pixel-3"));
  EXPECT_TRUE(Serial.harness().quarantined("Pixel-3"));
}

TEST(CampaignEngine, FaultyFleetReductionsAreIdenticalAcrossJobCounts) {
  ReductionConfig Config;
  Config.TestsPerTool = 60;
  Config.CapPerSignature = 2;
  Config.MaxReductionsPerTool = 8;
  // The faulty rows on top of the default GPU-less reduction set.
  Config.TargetNames = TargetFleet::faulty().gpulessNames();
  Config.TargetNames.push_back("Pixel-3");

  CampaignEngine Serial = makeFaultyEngine(1);
  ReductionData A = Serial.runReductions(Config);
  CampaignEngine Parallel = makeFaultyEngine(8);
  ReductionData B = Parallel.runReductions(Config);

  expectSameReductionRecords(A, B);
}

TEST(CampaignEngine, FaultyFleetDedupIsIdenticalAcrossJobCounts) {
  ReductionConfig Config;
  Config.TestsPerTool = 60;
  Config.CapPerSignature = 3;
  Config.MaxReductionsPerTool = 10;

  CampaignEngine Serial = makeFaultyEngine(1);
  DedupData A = Serial.runDedup(Config);
  CampaignEngine Parallel = makeFaultyEngine(8);
  DedupData B = Parallel.runDedup(Config);

  ASSERT_EQ(A.PerTarget.size(), B.PerTarget.size());
  for (size_t I = 0; I < A.PerTarget.size(); ++I) {
    EXPECT_EQ(A.PerTarget[I].TargetName, B.PerTarget[I].TargetName);
    EXPECT_EQ(A.PerTarget[I].Tests, B.PerTarget[I].Tests);
    EXPECT_EQ(A.PerTarget[I].Sigs, B.PerTarget[I].Sigs);
    EXPECT_EQ(A.PerTarget[I].Reports, B.PerTarget[I].Reports);
    EXPECT_EQ(A.PerTarget[I].Distinct, B.PerTarget[I].Distinct);
    EXPECT_EQ(A.PerTarget[I].Dups, B.PerTarget[I].Dups);
  }
  EXPECT_EQ(A.Total.Tests, B.Total.Tests);
  EXPECT_EQ(A.Total.Reports, B.Total.Reports);
  EXPECT_EQ(A.Total.Distinct, B.Total.Distinct);
}

TEST(CampaignEngine, FaultyFleetNeverConsultsEvalCacheForFlakyTargets) {
  // The cache-poisoning guard: a flaky target's runs depend on the attempt
  // draw and must bypass memoization entirely. evalcache.flaky_consults is
  // the CI-asserted alarm counter; a faulty-fleet campaign must leave it at
  // zero while exercising the harness (retries, timeouts).
  using telemetry::MetricsRegistry;
  MetricsRegistry::global().setEnabled(true);
  MetricsRegistry::global().reset();
  {
    ReductionConfig Config;
    Config.TestsPerTool = 40;
    Config.CapPerSignature = 2;
    Config.MaxReductionsPerTool = 6;
    CampaignEngine Engine = makeFaultyEngine(2);
    Engine.runDedup(Config);
  }
  std::map<std::string, uint64_t> Counters =
      MetricsRegistry::global().snapshot().Counters;
  MetricsRegistry::global().reset();
  MetricsRegistry::global().setEnabled(false);

  EXPECT_EQ(Counters.count("evalcache.flaky_consults"), 0u);
  EXPECT_GT(Counters["harness.tool_errors"], 0u);
}

CampaignEngine makeEngineWith(size_t Jobs, ExecEngine Engine,
                              size_t UniformInputs = 1) {
  return CampaignEngine(ExecutionPolicy{}
                            .withJobs(Jobs)
                            .withTransformationLimit(120)
                            .withEngine(Engine)
                            .withUniformInputs(UniformInputs),
                        smallCorpus());
}

TEST(CampaignEngine, TreeAndLoweredEnginesProduceIdenticalEvaluations) {
  // The Executable contract: routing every execution through the lowered
  // bytecode engine changes only cost, never a decision.
  CampaignEngine Lowered = makeEngineWith(4, ExecEngine::Lowered);
  CampaignEngine Tree = makeEngineWith(4, ExecEngine::Tree);
  for (const ToolConfig &Tool : Lowered.tools()) {
    std::vector<TestEvaluation> A = Lowered.evaluateTests(Tool, 48);
    std::vector<TestEvaluation> B = Tree.evaluateTests(Tool, 48);
    ASSERT_EQ(A.size(), 48u) << Tool.Name;
    expectSameEvaluations(A, B);
  }
}

TEST(CampaignEngine, TreeAndLoweredEnginesProduceIdenticalCounters) {
  // Stronger than result equality: the two engines publish the very same
  // counter totals (exec.runs, exec.steps, target.*, opt.*), so any
  // telemetry-derived gate sees one execution semantics.
  using telemetry::MetricsRegistry;
  BugFindingConfig Config;
  Config.TestsPerTool = 40;
  Config.NumGroups = 4;

  MetricsRegistry::global().setEnabled(true);
  MetricsRegistry::global().reset();
  {
    CampaignEngine Lowered = makeEngineWith(2, ExecEngine::Lowered);
    Lowered.runBugFinding(Config);
  }
  std::map<std::string, uint64_t> LoweredCounters =
      MetricsRegistry::global().snapshot().Counters;

  MetricsRegistry::global().reset();
  {
    CampaignEngine Tree = makeEngineWith(2, ExecEngine::Tree);
    Tree.runBugFinding(Config);
  }
  std::map<std::string, uint64_t> TreeCounters =
      MetricsRegistry::global().snapshot().Counters;
  MetricsRegistry::global().reset();
  MetricsRegistry::global().setEnabled(false);

  EXPECT_EQ(LoweredCounters, TreeCounters);
  EXPECT_GT(LoweredCounters["exec.runs"], 0u);
}

TEST(CampaignEngine, UniformInputBatchesAreIdenticalAcrossJobCounts) {
  // Batched evaluation (K perturbed inputs per test, amortized over one
  // lowering) keeps the scan deterministic at any job count.
  CampaignEngine Serial =
      makeEngineWith(1, ExecEngine::Lowered, /*UniformInputs=*/4);
  CampaignEngine Parallel =
      makeEngineWith(8, ExecEngine::Lowered, /*UniformInputs=*/4);
  for (const ToolConfig &Tool : Serial.tools()) {
    std::vector<TestEvaluation> A = Serial.evaluateTests(Tool, 48);
    std::vector<TestEvaluation> B = Parallel.evaluateTests(Tool, 48);
    ASSERT_EQ(A.size(), 48u) << Tool.Name;
    expectSameEvaluations(A, B);
  }
}

} // namespace
