//===- tests/TextRobustnessTest.cpp - Assembler fuzzing -------------------===//
//
// Part of the spirv-fuzz reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// readModuleText under fire: 1000 randomly mutated disassemblies (byte
/// flips, truncations, line edits, token splices) must each either parse —
/// in which case the parsed module must disassemble and re-parse cleanly —
/// or be rejected with a line-accurate "line N: ..." diagnostic. No crash,
/// no silent acceptance of garbage, no diagnostic without a location.
///
//===----------------------------------------------------------------------===//

#include "gen/Generator.h"
#include "ir/Text.h"
#include "support/ModuleHash.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

using namespace spvfuzz;

namespace {

/// True if \p Error looks like "line <N>: <message>".
bool hasLinePrefix(const std::string &Error) {
  if (Error.rfind("line ", 0) != 0)
    return false;
  size_t I = 5;
  if (I >= Error.size() || !isdigit(static_cast<unsigned char>(Error[I])))
    return false;
  while (I < Error.size() && isdigit(static_cast<unsigned char>(Error[I])))
    ++I;
  return Error.compare(I, 2, ": ") == 0 && I + 2 < Error.size();
}

std::string mutateText(const std::string &Text, Rng &R) {
  std::string Out = Text;
  switch (R.uniform(0, 5)) {
  case 0: { // flip a byte
    if (Out.empty())
      break;
    size_t I = R.index(Out.size());
    Out[I] = static_cast<char>(Out[I] ^ (1 << R.uniform(0, 6)));
    break;
  }
  case 1: // truncate
    Out.resize(R.index(Out.size() + 1));
    break;
  case 2: { // delete a random span
    if (Out.empty())
      break;
    size_t Begin = R.index(Out.size());
    Out.erase(Begin, R.uniform(1, 16));
    break;
  }
  case 3: { // splice in random printable garbage
    std::string Garbage;
    for (uint32_t I = 0, E = R.uniform(1, 12); I < E; ++I)
      Garbage += static_cast<char>(R.uniform(' ', '~'));
    Out.insert(R.index(Out.size() + 1), Garbage);
    break;
  }
  case 4: { // duplicate a line somewhere else
    size_t LineStart = R.index(Out.size() + 1);
    size_t LineEnd = Out.find('\n', LineStart);
    std::string Line = Out.substr(
        LineStart, LineEnd == std::string::npos ? LineEnd
                                                : LineEnd - LineStart + 1);
    Out.insert(R.index(Out.size() + 1), Line);
    break;
  }
  default: { // huge-number / sign edits, the overflow paths
    static const char *Tokens[] = {"%99999999999999999999 ",
                                   " 99999999999999999999",
                                   " -99999999999999999999", " %0", " --3",
                                   "%4294967296 "};
    Out.insert(R.index(Out.size() + 1), Tokens[R.index(6)]);
    break;
  }
  }
  return Out;
}

TEST(TextRobustness, ThousandMutatedDisassemblies) {
  Rng R(0x7ab5);
  std::vector<std::string> Corpus;
  for (uint64_t Seed = 1; Seed <= 5; ++Seed)
    Corpus.push_back(writeModuleText(generateProgram(Seed).M));

  size_t Parsed = 0, Rejected = 0;
  for (int Iteration = 0; Iteration < 1000; ++Iteration) {
    std::string Text = Corpus[R.index(Corpus.size())];
    for (uint32_t I = 0, E = R.uniform(1, 3); I < E; ++I)
      Text = mutateText(Text, R);

    Module M;
    std::string Error;
    if (readModuleText(Text, M, Error)) {
      // Whatever parsed must round-trip: disassemble and re-parse to the
      // same module. (Validity is not required — the assembler accepts
      // structurally well-formed but semantically bogus modules.)
      ++Parsed;
      std::string Again = writeModuleText(M);
      Module M2;
      ASSERT_TRUE(readModuleText(Again, M2, Error))
          << "re-parse of a parsed mutant failed: " << Error << "\n"
          << Again;
      EXPECT_EQ(hashModule(M2), hashModule(M));
    } else {
      ++Rejected;
      EXPECT_TRUE(hasLinePrefix(Error))
          << "diagnostic without line info: '" << Error << "'\ninput:\n"
          << Text;
    }
  }
  // The mutator must actually exercise both outcomes.
  EXPECT_GT(Parsed, 0u);
  EXPECT_GT(Rejected, 100u);
}

TEST(TextRobustness, OverflowAndTrailingTokensAreRejected) {
  Module M;
  std::string Error;

  // Ids above 2^32-1 must not wrap around.
  EXPECT_FALSE(readModuleText("OpEntryPoint %4294967297\n", M, Error));
  EXPECT_TRUE(hasLinePrefix(Error)) << Error;

  // Literals outside int32/uint32 range must not silently truncate.
  EXPECT_FALSE(readModuleText("%1 = OpTypeInt 99999999999999999999\n", M,
                              Error));
  EXPECT_TRUE(hasLinePrefix(Error)) << Error;
  EXPECT_FALSE(
      readModuleText("%1 = OpTypeInt -99999999999999999999\n", M, Error));
  EXPECT_TRUE(hasLinePrefix(Error)) << Error;

  // Structural one-token lines must not absorb trailing garbage.
  EXPECT_FALSE(readModuleText("OpEntryPoint %1 %2\n", M, Error));
  EXPECT_TRUE(hasLinePrefix(Error)) << Error;
  EXPECT_FALSE(readModuleText("%9 = OpEntryPoint %1\n", M, Error));
  EXPECT_TRUE(hasLinePrefix(Error)) << Error;
  EXPECT_FALSE(readModuleText("OpEntryPoint %1\n%2 = OpFunction %1 None %3\n"
                              "OpFunctionEnd extra\n",
                              M, Error));
  EXPECT_TRUE(hasLinePrefix(Error)) << Error;
  EXPECT_FALSE(readModuleText("OpEntryPoint %1\n%2 = OpFunction %1 None %3\n"
                              "%4 = OpLabel %5\n",
                              M, Error));
  EXPECT_TRUE(hasLinePrefix(Error)) << Error;

  // An unterminated function reports the line it ran off the end at.
  EXPECT_FALSE(readModuleText(
      "OpEntryPoint %1\n%2 = OpFunction %1 None %3\n", M, Error));
  EXPECT_TRUE(hasLinePrefix(Error)) << Error;
}

} // namespace
