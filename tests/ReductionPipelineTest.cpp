//===- tests/ReductionPipelineTest.cpp - Learned + post-reduction ---------===//
//
// Part of the spirv-fuzz reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The ReductionPipeline contract: learned candidate ordering is
/// bit-identical at any job count and never spends more interestingness
/// checks than the paper's fixed scan (and strictly fewer in aggregate);
/// every IR-level post-reduction pass preserves validity and
/// interestingness of the reproducer it hands back; and a store-backed
/// campaign using learned + post-reduce reduction resumes byte-identically
/// after an interruption.
///
//===----------------------------------------------------------------------===//

#include "analysis/Validator.h"
#include "campaign/CampaignEngine.h"
#include "core/Fuzzer.h"
#include "core/ReductionPipeline.h"
#include "gen/Generator.h"
#include "store/CampaignStore.h"
#include "support/ThreadPool.h"
#include "TestHelpers.h"

#include <sstream>
#include <stdexcept>

using namespace spvfuzz;
using namespace spvfuzz::test;

namespace {

//===----------------------------------------------------------------------===//
// ProbabilisticModel
//===----------------------------------------------------------------------===//

TEST(ProbabilisticModel, UntrainedScoresHalfAndZeroTieBreak) {
  GeneratedProgram Program = generateProgram(3);
  FuzzResult Fuzzed = fuzz(Program.M, Program.Input, {}, 3, FuzzerOptions{});
  ASSERT_GE(Fuzzed.Sequence.size(), 4u);

  ProbabilisticModel Fresh;
  EXPECT_EQ(Fresh.updates(), 0u);
  EXPECT_EQ(Fresh.chunkScore(Fuzzed.Sequence, 0, 2), 0.5);
  EXPECT_EQ(Fresh.chunkScore(Fuzzed.Sequence, 1, 4), 0.5);
  // Seed 0 ties keep the paper order under the stable sort.
  EXPECT_EQ(Fresh.tieBreak(0, 2), 0u);
  EXPECT_EQ(Fresh.tieBreak(1, 4), 0u);
  EXPECT_NE(ProbabilisticModel(7).tieBreak(0, 2), 0u);
}

TEST(ProbabilisticModel, OutcomesMoveScoresTheRightWay) {
  GeneratedProgram Program = generateProgram(3);
  FuzzResult Fuzzed = fuzz(Program.M, Program.Input, {}, 3, FuzzerOptions{});
  ASSERT_GE(Fuzzed.Sequence.size(), 2u);

  ProbabilisticModel Up, Down;
  Up.recordOutcome(Fuzzed.Sequence, 0, 1, /*Removed=*/true);
  Down.recordOutcome(Fuzzed.Sequence, 0, 1, /*Removed=*/false);
  EXPECT_GT(Up.chunkScore(Fuzzed.Sequence, 0, 1), 0.5);
  EXPECT_LT(Down.chunkScore(Fuzzed.Sequence, 0, 1), 0.5);
  EXPECT_EQ(Up.updates(), 1u);
}

TEST(CandidateOrderNames, RoundTrip) {
  for (CandidateOrder Order :
       {CandidateOrder::Paper, CandidateOrder::Learned}) {
    CandidateOrder Parsed;
    ASSERT_TRUE(candidateOrderFromName(candidateOrderName(Order), Parsed));
    EXPECT_EQ(Parsed, Order);
  }
  CandidateOrder Out;
  EXPECT_FALSE(candidateOrderFromName("chaotic", Out));
}

//===----------------------------------------------------------------------===//
// Learned ordering: determinism and check budget
//===----------------------------------------------------------------------===//

/// An interestingness test every fuzzed campaign satisfies: the variant
/// kept at least \p Extra more instructions than the original (same idiom
/// as ReducerCacheTest, so every seed reduces non-trivially).
InterestingnessTest grewBy(size_t OriginalCount, size_t Extra) {
  return [=](const Module &Variant, const FactManager &) {
    return Variant.instructionCount() >= OriginalCount + Extra;
  };
}

void expectSameReduceResult(const ReduceResult &A, const ReduceResult &B,
                            uint64_t Seed, const char *What) {
  ASSERT_EQ(A.Minimized.size(), B.Minimized.size())
      << What << " seed " << Seed;
  for (size_t I = 0; I < A.Minimized.size(); ++I)
    EXPECT_EQ(A.Minimized[I]->kind(), B.Minimized[I]->kind())
        << What << " seed " << Seed << " step " << I;
  EXPECT_EQ(writeModuleText(A.ReducedVariant),
            writeModuleText(B.ReducedVariant))
      << What << " seed " << Seed;
  EXPECT_EQ(A.Checks, B.Checks) << What << " seed " << Seed;
}

TEST(ReductionPipeline, LearnedIsJobInvariantAndNeverWorseThanPaper) {
  // Across >= 20 fuzzed campaigns: learned-order reduction at one job and
  // at eight speculative jobs is bit-identical (sequence, variant and
  // Checks), never spends more checks than the paper order on any seed,
  // and spends strictly fewer in aggregate (the decision memo's savings).
  ThreadPool Pool(8);
  size_t PaperChecks = 0, LearnedChecks = 0, Campaigns = 0;
  for (uint64_t Seed = 100; Seed < 160 && Campaigns < 22; ++Seed) {
    GeneratedProgram Program = generateProgram(Seed);
    FuzzerOptions Options;
    Options.TransformationLimit = 60;
    FuzzResult Fuzzed = fuzz(Program.M, Program.Input, {}, Seed, Options);
    InterestingnessTest Test = grewBy(Program.M.instructionCount(), 5);
    if (!Test(Fuzzed.Variant, Fuzzed.Facts))
      continue; // fuzzing added too little on this seed; fine
    ++Campaigns;

    ReduceResult Paper =
        ReductionPipeline(ReductionPlan{})
            .run(Program.M, Program.Input, Fuzzed.Sequence, Test);
    ReductionPlan Serial = ReductionPlan{}.withOrder(CandidateOrder::Learned);
    ReduceResult Learned = ReductionPipeline(Serial).run(
        Program.M, Program.Input, Fuzzed.Sequence, Test);
    ReductionPlan Parallel =
        ReductionPlan{}.withOrder(CandidateOrder::Learned).withPool(&Pool);
    ReduceResult LearnedJobs8 = ReductionPipeline(Parallel).run(
        Program.M, Program.Input, Fuzzed.Sequence, Test);

    expectSameReduceResult(Learned, LearnedJobs8, Seed, "jobs 1 vs 8");
    EXPECT_LE(Learned.Checks, Paper.Checks) << "seed " << Seed;
    EXPECT_TRUE(Test(Learned.ReducedVariant, Learned.ReducedFacts))
        << "seed " << Seed;
    PaperChecks += Paper.Checks;
    LearnedChecks += Learned.Checks;
  }
  ASSERT_GE(Campaigns, 20u);
  EXPECT_LT(LearnedChecks, PaperChecks)
      << "learned ordering saved nothing across " << Campaigns
      << " campaigns";
}

TEST(ReductionPipeline, DefaultPlanMatchesFromDefaultOptions) {
  // ReductionPlan{} and ReductionPlan::fromOptions(ReduceOptions{}) are the
  // same plan, bit for bit — the two spellings callers migrated to when the
  // legacy reduceSequence wrappers were removed.
  for (uint64_t Seed : {100u, 107u, 113u}) {
    GeneratedProgram Program = generateProgram(Seed);
    FuzzerOptions Options;
    Options.TransformationLimit = 60;
    FuzzResult Fuzzed = fuzz(Program.M, Program.Input, {}, Seed, Options);
    InterestingnessTest Test = grewBy(Program.M.instructionCount(), 5);
    if (!Test(Fuzzed.Variant, Fuzzed.Facts))
      continue;
    ReduceResult Defaulted =
        ReductionPipeline(ReductionPlan{})
            .run(Program.M, Program.Input, Fuzzed.Sequence, Test);
    ReduceResult FromOptions =
        ReductionPipeline(ReductionPlan::fromOptions(ReduceOptions{}))
            .run(Program.M, Program.Input, Fuzzed.Sequence, Test);
    expectSameReduceResult(Defaulted, FromOptions, Seed,
                           "default plan vs default options");
  }
}

//===----------------------------------------------------------------------===//
// IR-level post-reduction
//===----------------------------------------------------------------------===//

TEST(ReductionPipeline, StandardPassListIsNamedAndFindable) {
  const std::vector<ReductionPassPtr> &Passes = standardPostReducePasses();
  ASSERT_EQ(Passes.size(), 3u);
  EXPECT_STREQ(Passes[0]->name(), "StripUnusedDefs");
  EXPECT_STREQ(Passes[1]->name(), "StripUnusedTypesAndGlobals");
  EXPECT_STREQ(Passes[2]->name(), "SimplifyReferenceProgram");
  for (const ReductionPassPtr &Pass : Passes)
    EXPECT_EQ(findPostReducePass(Pass->name()), Pass);
  EXPECT_EQ(findPostReducePass("NoSuchPass"), nullptr);
}

TEST(ReductionPipeline, PostReducePreservesValidityAndInterestingness) {
  for (uint64_t Seed = 100; Seed < 122; ++Seed) {
    GeneratedProgram Program = generateProgram(Seed);
    FuzzerOptions Options;
    Options.TransformationLimit = 60;
    FuzzResult Fuzzed = fuzz(Program.M, Program.Input, {}, Seed, Options);
    InterestingnessTest Test = grewBy(Program.M.instructionCount(), 5);
    if (!Test(Fuzzed.Variant, Fuzzed.Facts))
      continue;

    ReductionPlan Plan = ReductionPlan{}
                             .withOrder(CandidateOrder::Learned)
                             .withPostReduce(true);
    ReduceResult Result = ReductionPipeline(Plan).run(
        Program.M, Program.Input, Fuzzed.Sequence, Test);

    // One stats row per standard pass, in pass-list order, and the stage's
    // checks are folded into the total.
    ASSERT_EQ(Result.PostStats.size(), standardPostReducePasses().size());
    size_t PostChecks = 0;
    for (size_t P = 0; P != Result.PostStats.size(); ++P) {
      EXPECT_EQ(Result.PostStats[P].Pass,
                standardPostReducePasses()[P]->name());
      EXPECT_LE(Result.PostStats[P].Accepted, Result.PostStats[P].Attempted);
      PostChecks += Result.PostStats[P].Checks;
    }
    EXPECT_LE(PostChecks, Result.Checks) << "seed " << Seed;

    // The post-reduced reference validates, never grows, and the
    // reproducer replayed onto it is still interesting.
    EXPECT_TRUE(validateModule(Result.ReducedOriginal).empty())
        << "seed " << Seed;
    EXPECT_LE(Result.ReducedOriginal.instructionCount(),
              Program.M.instructionCount())
        << "seed " << Seed;
    EXPECT_TRUE(Test(Result.ReducedVariant, Result.ReducedFacts))
        << "seed " << Seed;
  }
}

TEST(ReductionPipeline, PostReduceShrinksDeadReferenceCode) {
  // An interestingness test a growth oracle cannot play: any variant with
  // at least ten instructions counts, so dead reference code is free to
  // go. Generated programs carry unused declarations and dead helpers
  // often enough that some campaign must shrink its reference.
  InterestingnessTest AtLeastTen = [](const Module &Variant,
                                      const FactManager &) {
    return Variant.instructionCount() >= 10;
  };
  size_t Shrunk = 0;
  for (uint64_t Seed = 100; Seed < 110; ++Seed) {
    GeneratedProgram Program = generateProgram(Seed);
    FuzzerOptions Options;
    Options.TransformationLimit = 60;
    FuzzResult Fuzzed = fuzz(Program.M, Program.Input, {}, Seed, Options);
    ASSERT_TRUE(AtLeastTen(Fuzzed.Variant, Fuzzed.Facts));

    ReductionPlan Plan = ReductionPlan{}.withPostReduce(true);
    ReduceResult Result = ReductionPipeline(Plan).run(
        Program.M, Program.Input, Fuzzed.Sequence, AtLeastTen);
    EXPECT_TRUE(validateModule(Result.ReducedOriginal).empty())
        << "seed " << Seed;
    EXPECT_TRUE(AtLeastTen(Result.ReducedVariant, Result.ReducedFacts))
        << "seed " << Seed;
    if (Result.ReducedOriginal.instructionCount() <
        Program.M.instructionCount())
      ++Shrunk;
  }
  EXPECT_GT(Shrunk, 0u);
}

TEST(ReductionPipeline, PostPassSubsetRunsOnlyThosePasses) {
  GeneratedProgram Program = generateProgram(101);
  FuzzerOptions Options;
  Options.TransformationLimit = 60;
  FuzzResult Fuzzed = fuzz(Program.M, Program.Input, {}, 101, Options);
  InterestingnessTest Test = grewBy(Program.M.instructionCount(), 5);
  ASSERT_TRUE(Test(Fuzzed.Variant, Fuzzed.Facts));

  ReductionPlan Plan =
      ReductionPlan{}.withPostReduce(true).withPostPasses(
          {"SimplifyReferenceProgram"});
  ReduceResult Result = ReductionPipeline(Plan).run(
      Program.M, Program.Input, Fuzzed.Sequence, Test);
  ASSERT_EQ(Result.PostStats.size(), 1u);
  EXPECT_EQ(Result.PostStats[0].Pass, "SimplifyReferenceProgram");
}

//===----------------------------------------------------------------------===//
// Store-backed campaign resume
//===----------------------------------------------------------------------===//

std::string uniqueDir(const std::string &Hint) {
  static int Counter = 0;
  return ::testing::TempDir() + "spvfuzz-pipeline-" + Hint + "-" +
         std::to_string(::getpid()) + "-" + std::to_string(Counter++);
}

/// Forwards to a real store but throws (a simulated crash) when the save
/// budget runs out — before the inner save, like a crash mid-commit.
class AbortAfter : public CampaignCheckpointer {
public:
  AbortAfter(CampaignCheckpointer &Inner, size_t Saves)
      : Inner(Inner), Remaining(Saves) {}

  bool loadEvaluation(const std::string &Phase,
                      EvaluationCheckpoint &Out) override {
    return Inner.loadEvaluation(Phase, Out);
  }
  void saveEvaluation(const EvaluationCheckpoint &Checkpoint) override {
    spend();
    Inner.saveEvaluation(Checkpoint);
  }
  bool loadReduction(const std::string &Phase,
                     ReductionCheckpoint &Out) override {
    return Inner.loadReduction(Phase, Out);
  }
  void saveReduction(const ReductionCheckpoint &Checkpoint) override {
    spend();
    Inner.saveReduction(Checkpoint);
  }
  void recordReproducer(const ReductionRecord &Record, const Module &Original,
                        const ShaderInput &Input, const Module &Reduced,
                        const TransformationSequence &Minimized) override {
    Inner.recordReproducer(Record, Original, Input, Reduced, Minimized);
  }

private:
  void spend() {
    if (Remaining == 0)
      throw std::runtime_error("simulated crash at checkpoint");
    --Remaining;
  }

  CampaignCheckpointer &Inner;
  size_t Remaining;
};

ExecutionPolicy learnedPolicy(uint64_t Seed, size_t Jobs) {
  return ExecutionPolicy{}
      .withSeed(Seed)
      .withJobs(Jobs)
      .withTransformationLimit(120)
      .withReduceOrder(CandidateOrder::Learned)
      .withPostReduce(true);
}

/// Every result-shaping field of the reduce phase flattened to one
/// comparable string (PostStats included; SpeculativeChecks excluded — it
/// is a cost measurement that varies with scheduling).
std::string runLearnedReductions(const ExecutionPolicy &Policy,
                                 CampaignCheckpointer *Checkpointer) {
  CampaignEngine Engine(Policy, CorpusSpec{}, ToolsetSpec{}, TargetFleet{});
  if (Checkpointer)
    Engine.setCheckpointer(Checkpointer);
  ReductionConfig Config;
  Config.TestsPerTool = 40;
  ReductionData Data = Engine.runReductions(Config);
  std::ostringstream Out;
  for (const ReductionRecord &Record : Data.Records) {
    Out << Record.Tool << "/" << Record.TargetName << "/" << Record.Signature
        << " test=" << Record.TestIndex << " checks=" << Record.Checks
        << " kept=" << Record.MinimizedLength
        << " reduced=" << Record.ReducedCount;
    for (const PostReducePassStats &Stat : Record.PostStats)
      Out << " " << Stat.Pass << "=" << Stat.Accepted << "/" << Stat.Attempted
          << ":" << Stat.Checks;
    Out << "\n";
  }
  return Out.str();
}

TEST(ReductionPipeline, StoreResumeReplaysLearnedPostReduceByteIdentical) {
  std::string Baseline = runLearnedReductions(learnedPolicy(5, 1), nullptr);
  ASSERT_FALSE(Baseline.empty());
  // The flattened records mention post-reduce stats (the phase really ran).
  EXPECT_NE(Baseline.find("StripUnusedDefs"), std::string::npos);

  // Interrupt a stored learned+post-reduce campaign mid-phase, then resume
  // at eight jobs: the records must match the uninterrupted serial run.
  std::string Dir = uniqueDir("resume");
  std::string Error;
  {
    ExecutionPolicy Fresh = learnedPolicy(5, 1);
    std::unique_ptr<CampaignStore> Store =
        CampaignStore::open(Dir, Fresh, Error);
    ASSERT_NE(Store, nullptr) << Error;
    AbortAfter Crashing(*Store, 3);
    EXPECT_THROW(runLearnedReductions(Fresh, &Crashing), std::runtime_error);
  }
  ExecutionPolicy Resumed = learnedPolicy(5, 8).withResume(true);
  std::unique_ptr<CampaignStore> Store =
      CampaignStore::open(Dir, Resumed, Error);
  ASSERT_NE(Store, nullptr) << Error;
  EXPECT_EQ(runLearnedReductions(Resumed, Store.get()), Baseline);
}

} // namespace
