//===- tests/InterpreterTest.cpp - Reference semantics tests --------------===//
//
// Part of the spirv-fuzz reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "TestHelpers.h"

using namespace spvfuzz;
using namespace spvfuzz::test;

namespace {

/// Builds a module whose main computes Op(LhsValue, RhsValue) and stores
/// the result to output location 0.
int32_t evalBinOp(Op Opcode, int32_t Lhs, int32_t Rhs) {
  Module M;
  ModuleBuilder Builder(M);
  Id IntType = Builder.getIntType();
  Id VoidType = Builder.getVoidType();
  Id Out = Builder.addOutput(IntType, 0);
  Id LhsId = Builder.getIntConstant(Lhs);
  Id RhsId = Builder.getIntConstant(Rhs);
  Function &Main = Builder.startFunction(VoidType, {});
  Builder.setEntryPoint(Main.id());
  Id ResultId = M.takeFreshId();
  Main.entryBlock().Body.push_back(
      ModuleBuilder::makeBinOp(Opcode, IntType, ResultId, LhsId, RhsId));
  Main.entryBlock().Body.push_back(ModuleBuilder::makeStore(Out, ResultId));
  Main.entryBlock().Body.push_back(ModuleBuilder::makeReturn());
  EXPECT_TRUE(isValidModule(M));
  ExecResult Result = interpret(M, ShaderInput());
  EXPECT_EQ(Result.ExecStatus, ExecResult::Status::Ok);
  return Result.Outputs.at(0).asInt();
}

TEST(Interpreter, IntegerArithmetic) {
  EXPECT_EQ(evalBinOp(Op::IAdd, 3, 4), 7);
  EXPECT_EQ(evalBinOp(Op::ISub, 3, 4), -1);
  EXPECT_EQ(evalBinOp(Op::IMul, -3, 4), -12);
  EXPECT_EQ(evalBinOp(Op::SDiv, 7, 2), 3);
  EXPECT_EQ(evalBinOp(Op::SDiv, -7, 2), -3);
  EXPECT_EQ(evalBinOp(Op::SMod, 7, 3), 1);
  EXPECT_EQ(evalBinOp(Op::SMod, -7, 3), -1);
}

TEST(Interpreter, TotalSemanticsAtEdgeCases) {
  // Division and remainder by zero yield zero: MiniSPV has no UB.
  EXPECT_EQ(evalBinOp(Op::SDiv, 5, 0), 0);
  EXPECT_EQ(evalBinOp(Op::SMod, 5, 0), 0);
  EXPECT_EQ(evalBinOp(Op::SDiv, INT32_MIN, -1), 0);
  EXPECT_EQ(evalBinOp(Op::SMod, INT32_MIN, -1), 0);
  // Wrap-around on overflow.
  EXPECT_EQ(evalBinOp(Op::IAdd, INT32_MAX, 1), INT32_MIN);
  EXPECT_EQ(evalBinOp(Op::ISub, INT32_MIN, 1), INT32_MAX);
  EXPECT_EQ(evalBinOp(Op::IMul, 1 << 30, 4), 0);
}

TEST(Interpreter, FixtureComputesHelperOf7) {
  Fixture F;
  ExecResult Result = interpret(F.M, F.Input);
  ASSERT_EQ(Result.ExecStatus, ExecResult::Status::Ok);
  // U0 = 7 > 2, so out = helper(7) = 7 + 3 = 10.
  EXPECT_EQ(Result.Outputs.at(0), Value::makeInt(10));
}

TEST(Interpreter, ElseBranchWhenUniformSmall) {
  Fixture F;
  ShaderInput Input = F.Input;
  Input.Bindings[0] = Value::makeInt(1); // 1 > 2 is false
  ExecResult Result = interpret(F.M, Input);
  ASSERT_EQ(Result.ExecStatus, ExecResult::Status::Ok);
  EXPECT_EQ(Result.Outputs.at(0), Value::makeInt(5));
}

TEST(Interpreter, MissingUniformDefaultsToZero) {
  Fixture F;
  ShaderInput Empty;
  ExecResult Result = interpret(F.M, Empty);
  ASSERT_EQ(Result.ExecStatus, ExecResult::Status::Ok);
  EXPECT_EQ(Result.Outputs.at(0), Value::makeInt(5)); // 0 > 2 is false
}

TEST(Interpreter, KillTerminatesWholeInvocation) {
  Fixture F;
  Module M = F.M;
  // Replace the helper's body with OpKill: the call kills everything.
  BasicBlock *Helper = M.findFunction(F.HelperId)->findBlock(F.HelperBlock);
  Helper->Body.clear();
  Helper->Body.push_back(ModuleBuilder::makeKill());
  ASSERT_TRUE(isValidModule(M));
  ExecResult Result = interpret(M, F.Input);
  EXPECT_EQ(Result.ExecStatus, ExecResult::Status::Killed);
  // Two killed executions compare equal regardless of outputs.
  EXPECT_EQ(Result, interpret(M, F.Input));
}

TEST(Interpreter, PhiSelectsByIncomingEdge) {
  Fixture F;
  Module M = F.M;
  // Replace the merge-block load with a phi over constants.
  BasicBlock *Merge = M.findFunction(F.MainId)->findBlock(F.MergeBlock);
  Id LoadL = Merge->Body[0].Result;
  Merge->Body[0] =
      Instruction(Op::Phi, F.IntType, LoadL,
                  {Operand::id(F.Const2), Operand::id(F.ThenBlock),
                   Operand::id(F.Const5), Operand::id(F.ElseBlock)});
  ASSERT_TRUE(isValidModule(M));
  EXPECT_EQ(interpret(M, F.Input).Outputs.at(0), Value::makeInt(2));
  ShaderInput Small = F.Input;
  Small.Bindings[0] = Value::makeInt(0);
  EXPECT_EQ(interpret(M, Small).Outputs.at(0), Value::makeInt(5));
}

TEST(Interpreter, LoopsAndStepLimit) {
  // A counting loop: out = sum of 0..4 stored through a local.
  Module M;
  ModuleBuilder Builder(M);
  Id IntType = Builder.getIntType();
  Id BoolType = Builder.getBoolType();
  Id VoidType = Builder.getVoidType();
  Id Out = Builder.addOutput(IntType, 0);
  Id Zero = Builder.getIntConstant(0);
  Id One = Builder.getIntConstant(1);
  Id Five = Builder.getIntConstant(5);
  Id IntPtr = Builder.getPointerType(StorageClass::Function, IntType);

  Function &Main = Builder.startFunction(VoidType, {});
  Builder.setEntryPoint(Main.id());
  Id Counter = M.takeFreshId(), Acc = M.takeFreshId();
  Id Header = M.takeFreshId(), Body = M.takeFreshId(), Exit = M.takeFreshId();
  BasicBlock &Entry = Main.entryBlock();
  Entry.Body.push_back(ModuleBuilder::makeLocalVariable(IntPtr, Counter, Zero));
  Entry.Body.push_back(ModuleBuilder::makeLocalVariable(IntPtr, Acc, Zero));
  Entry.Body.push_back(ModuleBuilder::makeBranch(Header));

  BasicBlock HeaderBlock(Header);
  Id IvLoad = M.takeFreshId(), Cond = M.takeFreshId();
  HeaderBlock.Body.push_back(ModuleBuilder::makeLoad(IntType, IvLoad, Counter));
  HeaderBlock.Body.push_back(
      ModuleBuilder::makeBinOp(Op::SLessThan, BoolType, Cond, IvLoad, Five));
  HeaderBlock.Body.push_back(
      ModuleBuilder::makeBranchConditional(Cond, Body, Exit));
  Main.Blocks.push_back(std::move(HeaderBlock));

  BasicBlock BodyBlock(Body);
  Id AccLoad = M.takeFreshId(), AccNext = M.takeFreshId(),
     IvNext = M.takeFreshId(), IvLoad2 = M.takeFreshId();
  BodyBlock.Body.push_back(ModuleBuilder::makeLoad(IntType, AccLoad, Acc));
  BodyBlock.Body.push_back(ModuleBuilder::makeLoad(IntType, IvLoad2, Counter));
  BodyBlock.Body.push_back(
      ModuleBuilder::makeBinOp(Op::IAdd, IntType, AccNext, AccLoad, IvLoad2));
  BodyBlock.Body.push_back(ModuleBuilder::makeStore(Acc, AccNext));
  BodyBlock.Body.push_back(
      ModuleBuilder::makeBinOp(Op::IAdd, IntType, IvNext, IvLoad2, One));
  BodyBlock.Body.push_back(ModuleBuilder::makeStore(Counter, IvNext));
  BodyBlock.Body.push_back(ModuleBuilder::makeBranch(Header));
  Main.Blocks.push_back(std::move(BodyBlock));

  BasicBlock ExitBlock(Exit);
  Id Final = M.takeFreshId();
  ExitBlock.Body.push_back(ModuleBuilder::makeLoad(IntType, Final, Acc));
  ExitBlock.Body.push_back(ModuleBuilder::makeStore(Out, Final));
  ExitBlock.Body.push_back(ModuleBuilder::makeReturn());
  Main.Blocks.push_back(std::move(ExitBlock));

  ASSERT_TRUE(isValidModule(M)) << validateModule(M).front();
  ExecResult Result = interpret(M, ShaderInput());
  ASSERT_EQ(Result.ExecStatus, ExecResult::Status::Ok);
  EXPECT_EQ(Result.Outputs.at(0), Value::makeInt(10)); // 0+1+2+3+4

  // An infinite loop faults at the step limit (non-termination is
  // "faulting" per ğ2.2).
  BasicBlock *HeaderRef = M.findFunction(Main.id())->findBlock(Header);
  HeaderRef->Body.back() = ModuleBuilder::makeBranch(Body);
  InterpreterOptions Tight;
  Tight.StepLimit = 1000;
  ExecResult Looped = interpret(M, ShaderInput(), Tight);
  EXPECT_EQ(Looped.ExecStatus, ExecResult::Status::Fault);
  EXPECT_NE(Looped.FaultMessage.find("step limit"), std::string::npos);
}

TEST(Interpreter, PrivateGlobalsInitializeAndPersist) {
  Module M;
  ModuleBuilder Builder(M);
  Id IntType = Builder.getIntType();
  Id VoidType = Builder.getVoidType();
  Id Out = Builder.addOutput(IntType, 0);
  Id Nine = Builder.getIntConstant(9);
  Id G = Builder.addPrivate(IntType, Nine);
  Function &Main = Builder.startFunction(VoidType, {});
  Builder.setEntryPoint(Main.id());
  Id LoadG = M.takeFreshId();
  Main.entryBlock().Body.push_back(ModuleBuilder::makeLoad(IntType, LoadG, G));
  Main.entryBlock().Body.push_back(ModuleBuilder::makeStore(Out, LoadG));
  Main.entryBlock().Body.push_back(ModuleBuilder::makeReturn());
  ASSERT_TRUE(isValidModule(M));
  EXPECT_EQ(interpret(M, ShaderInput()).Outputs.at(0), Value::makeInt(9));
}

TEST(Interpreter, SelectCopyAndComposites) {
  Module M;
  ModuleBuilder Builder(M);
  Id IntType = Builder.getIntType();
  Id BoolType = Builder.getBoolType();
  Id VoidType = Builder.getVoidType();
  Id Vec2 = Builder.getVectorType(IntType, 2);
  Id Out = Builder.addOutput(IntType, 0);
  Id C1 = Builder.getIntConstant(1);
  Id C2 = Builder.getIntConstant(2);
  Id True = Builder.getBoolConstant(true);
  (void)BoolType;

  Function &Main = Builder.startFunction(VoidType, {});
  Builder.setEntryPoint(Main.id());
  BasicBlock &Entry = Main.entryBlock();
  Id Sel = M.takeFreshId();
  Entry.Body.push_back(ModuleBuilder::makeSelect(IntType, Sel, True, C1, C2));
  Id Copy = M.takeFreshId();
  Entry.Body.push_back(
      ModuleBuilder::makeUnaryOp(Op::CopyObject, IntType, Copy, Sel));
  Id Composite = M.takeFreshId();
  Entry.Body.push_back(Instruction(Op::CompositeConstruct, Vec2, Composite,
                                   {Operand::id(Copy), Operand::id(C2)}));
  Id Extracted = M.takeFreshId();
  Entry.Body.push_back(Instruction(Op::CompositeExtract, IntType, Extracted,
                                   {Operand::id(Composite),
                                    Operand::literal(0)}));
  Entry.Body.push_back(ModuleBuilder::makeStore(Out, Extracted));
  Entry.Body.push_back(ModuleBuilder::makeReturn());
  ASSERT_TRUE(isValidModule(M)) << validateModule(M).front();
  EXPECT_EQ(interpret(M, ShaderInput()).Outputs.at(0), Value::makeInt(1));
}

TEST(Interpreter, ExecResultEqualityAndPrinting) {
  ExecResult A, B;
  A.Outputs[0] = Value::makeInt(4);
  B.Outputs[0] = Value::makeInt(5);
  EXPECT_NE(A, B);
  B.Outputs[0] = Value::makeInt(4);
  EXPECT_EQ(A, B);
  EXPECT_EQ(A.str(), "{0: 4}");
  ExecResult Killed;
  Killed.ExecStatus = ExecResult::Status::Killed;
  EXPECT_EQ(Killed.str(), "<killed>");
  EXPECT_NE(A, Killed);
  EXPECT_EQ(Value::makeComposite({Value::makeBool(true)}).str(), "{true}");
}

TEST(Interpreter, ZeroValueOfTypes) {
  Fixture F;
  Module M = F.M;
  ModuleBuilder Builder(M);
  Id Vec3 = Builder.getVectorType(F.IntType, 3);
  Id StructT = Builder.getStructType({F.BoolType, Vec3});
  Value Zero = zeroValueOfType(M, StructT);
  ASSERT_EQ(Zero.Elements.size(), 2u);
  EXPECT_EQ(Zero.Elements[0], Value::makeBool(false));
  EXPECT_EQ(Zero.Elements[1].Elements.size(), 3u);
  EXPECT_EQ(Zero.Elements[1].Elements[2], Value::makeInt(0));
}

} // namespace
