//===- tests/TelemetryTest.cpp - Metrics registry unit tests --------------===//
//
// Part of the spirv-fuzz reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Unit tests for the metrics registry, centred on the property the
/// parallel campaign engine relies on: merging per-worker registries is
/// associative and commutative, so p50/p90/p99 snapshots do not depend on
/// observation order or merge shape.
///
//===----------------------------------------------------------------------===//

#include "support/Telemetry.h"

#include "gtest/gtest.h"

#include <algorithm>
#include <random>

using namespace spvfuzz;
using namespace spvfuzz::telemetry;

namespace {

void expectSameHistogram(const HistogramStats &A, const HistogramStats &B) {
  EXPECT_EQ(A.Count, B.Count);
  EXPECT_DOUBLE_EQ(A.Sum, B.Sum);
  EXPECT_DOUBLE_EQ(A.Min, B.Min);
  EXPECT_DOUBLE_EQ(A.Max, B.Max);
  EXPECT_DOUBLE_EQ(A.P50, B.P50);
  EXPECT_DOUBLE_EQ(A.P90, B.P90);
  EXPECT_DOUBLE_EQ(A.P99, B.P99);
}

TEST(Telemetry, HistogramIsObservationOrderIndependent) {
  std::vector<double> Samples;
  for (int I = 1; I <= 500; ++I)
    Samples.push_back(static_cast<double>(I % 97) * 3.0);

  MetricsRegistry Forward, Shuffled;
  Forward.setEnabled(true);
  Shuffled.setEnabled(true);
  for (double Sample : Samples)
    Forward.observe("h", Sample);
  std::mt19937 Rng(7);
  std::shuffle(Samples.begin(), Samples.end(), Rng);
  for (double Sample : Samples)
    Shuffled.observe("h", Sample);

  expectSameHistogram(Forward.snapshot().Histograms["h"],
                      Shuffled.snapshot().Histograms["h"]);
}

TEST(Telemetry, MergeIsAssociativeAndCommutative) {
  // Three per-worker registries with different shards of the same stream.
  auto MakeWorker = [](int Offset) {
    auto Registry = std::make_unique<MetricsRegistry>();
    Registry->setEnabled(true);
    for (int I = 0; I < 200; ++I) {
      Registry->observe("reduce.checks",
                        static_cast<double>((I * 13 + Offset) % 211));
      Registry->add("tests", 1);
    }
    return Registry;
  };

  // (A + B) + C
  auto A1 = MakeWorker(0), B1 = MakeWorker(5), C1 = MakeWorker(11);
  A1->mergeFrom(*B1);
  A1->mergeFrom(*C1);
  // C + (B + A): different order and shape.
  auto A2 = MakeWorker(0), B2 = MakeWorker(5), C2 = MakeWorker(11);
  B2->mergeFrom(*A2);
  C2->mergeFrom(*B2);

  MetricsSnapshot Left = A1->snapshot(), Right = C2->snapshot();
  EXPECT_EQ(Left.Counters, Right.Counters);
  EXPECT_EQ(Left.Counters["tests"], 600u);
  ASSERT_TRUE(Left.Histograms.count("reduce.checks"));
  expectSameHistogram(Left.Histograms["reduce.checks"],
                      Right.Histograms["reduce.checks"]);
  EXPECT_EQ(Left.Histograms["reduce.checks"].Count, 600u);
}

TEST(Telemetry, MergeIntoEmptyAndFromEmpty) {
  MetricsRegistry Empty, Full;
  Full.setEnabled(true);
  Full.observe("h", 4.0);
  Full.observe("h", 70.0);
  Full.add("c", 3);
  Full.set("g", 1.5);

  MetricsRegistry Target;
  Target.mergeFrom(Empty); // no-op
  Target.mergeFrom(Full);
  Target.mergeFrom(Empty); // still a no-op
  MetricsSnapshot Snapshot = Target.snapshot();
  EXPECT_EQ(Snapshot.Counters["c"], 3u);
  EXPECT_DOUBLE_EQ(Snapshot.Gauges["g"], 1.5);
  expectSameHistogram(Snapshot.Histograms["h"],
                      Full.snapshot().Histograms["h"]);
}

TEST(Telemetry, MergeSemanticsForCountersAndGauges) {
  MetricsRegistry A, B;
  A.setEnabled(true);
  B.setEnabled(true);
  A.add("c", 2);
  B.add("c", 5);
  A.set("g", 1.0);
  B.set("g", 9.0);
  A.mergeFrom(B);
  MetricsSnapshot Snapshot = A.snapshot();
  EXPECT_EQ(Snapshot.Counters["c"], 7u); // counters add
  EXPECT_DOUBLE_EQ(Snapshot.Gauges["g"], 9.0); // gauges: other wins
}

TEST(Telemetry, PercentilesAreOrderedAndBounded) {
  MetricsRegistry Registry;
  Registry.setEnabled(true);
  for (int I = 1; I <= 1000; ++I)
    Registry.observe("h", static_cast<double>(I));
  HistogramStats Stats = Registry.snapshot().Histograms["h"];
  EXPECT_EQ(Stats.Count, 1000u);
  EXPECT_DOUBLE_EQ(Stats.Min, 1.0);
  EXPECT_DOUBLE_EQ(Stats.Max, 1000.0);
  EXPECT_LE(Stats.Min, Stats.P50);
  EXPECT_LE(Stats.P50, Stats.P90);
  EXPECT_LE(Stats.P90, Stats.P99);
  EXPECT_LE(Stats.P99, Stats.Max);
  // Log2 buckets are coarse, but the median of 1..1000 must land within
  // its bucket, [512, 1024).
  EXPECT_GE(Stats.P50, 256.0);
  EXPECT_LE(Stats.P50, 1000.0);
}

TEST(Telemetry, HistogramHandlesNonPositiveValues) {
  MetricsRegistry Registry;
  Registry.setEnabled(true);
  Registry.observe("h", -3.0);
  Registry.observe("h", 0.0);
  Registry.observe("h", 0.5);
  Registry.observe("h", 2.0);
  HistogramStats Stats = Registry.snapshot().Histograms["h"];
  EXPECT_EQ(Stats.Count, 4u);
  EXPECT_DOUBLE_EQ(Stats.Min, -3.0);
  EXPECT_DOUBLE_EQ(Stats.Max, 2.0);
  EXPECT_GE(Stats.P50, Stats.Min);
  EXPECT_LE(Stats.P99, Stats.Max);
}

TEST(Telemetry, SnapshotSurvivesJsonRoundTrip) {
  MetricsRegistry Registry;
  Registry.setEnabled(true);
  Registry.add("c", 12);
  Registry.set("g", 2.25);
  Registry.observe("h", 3.0);
  Registry.observe("h", 17.0);
  MetricsSnapshot Before = Registry.snapshot();

  MetricsSnapshot After;
  std::string Error;
  ASSERT_TRUE(metricsFromJson(metricsToJson(Before), After, Error)) << Error;
  EXPECT_EQ(After.Counters, Before.Counters);
  EXPECT_EQ(After.Gauges, Before.Gauges);
  ASSERT_TRUE(After.Histograms.count("h"));
  EXPECT_EQ(After.Histograms["h"].Count, Before.Histograms["h"].Count);
  EXPECT_DOUBLE_EQ(After.Histograms["h"].P90, Before.Histograms["h"].P90);
}

TEST(Telemetry, ParserSurvivesTruncationAndBitFlips) {
  MetricsRegistry Registry;
  Registry.setEnabled(true);
  Registry.add("campaign.bugs", 3);
  Registry.set("bench.throughput_per_sec", 12.5);
  Registry.observe("h", 3.0);
  std::string Json = metricsToJson(Registry.snapshot());

  // Every truncation of a valid dump either still contains the whole top
  // object (only trailing whitespace was cut) or produces a line/column
  // accurate diagnostic — never an assert or a crash.
  const size_t LastBrace = Json.rfind('}');
  for (size_t Keep = 0; Keep < Json.size(); ++Keep) {
    MetricsSnapshot Out;
    std::string Error;
    if (metricsFromJson(Json.substr(0, Keep), Out, Error)) {
      EXPECT_GT(Keep, LastBrace) << "incomplete dump parsed";
      continue;
    }
    EXPECT_NE(Error.find("line "), std::string::npos)
        << "truncation at " << Keep << ": " << Error;
    EXPECT_NE(Error.find("column "), std::string::npos)
        << "truncation at " << Keep << ": " << Error;
  }

  // Flip one bit of every byte: parse must return cleanly each time.
  for (size_t At = 0; At < Json.size(); ++At) {
    std::string Mutated = Json;
    Mutated[At] = static_cast<char>(Mutated[At] ^ 0x04);
    MetricsSnapshot Out;
    std::string Error;
    if (!metricsFromJson(Mutated, Out, Error)) {
      EXPECT_FALSE(Error.empty()) << "bit flip at " << At;
    }
  }
}

TEST(Telemetry, ParseErrorsAreLineAccurate) {
  MetricsSnapshot Out;
  std::string Error;
  ASSERT_FALSE(metricsFromJson("{\n  \"counters\": {\n    oops\n", Out,
                               Error));
  EXPECT_NE(Error.find("line 3"), std::string::npos) << Error;
}

} // namespace
