//===- tests/IrTest.cpp - IR, text format, descriptors, analyses ----------===//
//
// Part of the spirv-fuzz reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "analysis/Cfg.h"
#include "analysis/Dominators.h"
#include "analysis/ModuleAnalysis.h"
#include "TestHelpers.h"

using namespace spvfuzz;
using namespace spvfuzz::test;

namespace {

//===----------------------------------------------------------------------===//
// Opcode metadata
//===----------------------------------------------------------------------===//

TEST(Opcode, NamesRoundTrip) {
  for (uint8_t Raw = 0; Raw <= static_cast<uint8_t>(Op::FunctionCall); ++Raw) {
    Op Opcode = static_cast<Op>(Raw);
    Op Parsed;
    ASSERT_TRUE(opFromName(opName(Opcode), Parsed));
    EXPECT_EQ(Parsed, Opcode);
  }
  Op Ignored;
  EXPECT_FALSE(opFromName("OpBogus", Ignored));
}

TEST(Opcode, Classification) {
  EXPECT_TRUE(isTypeDecl(Op::TypeVector));
  EXPECT_FALSE(isTypeDecl(Op::Constant));
  EXPECT_TRUE(isConstantDecl(Op::ConstantComposite));
  EXPECT_TRUE(isTerminator(Op::Kill));
  EXPECT_FALSE(isTerminator(Op::Load));
  EXPECT_FALSE(hasResult(Op::Store));
  EXPECT_TRUE(hasResult(Op::Load));
  EXPECT_TRUE(hasResultType(Op::Load));
  EXPECT_FALSE(hasResultType(Op::TypeInt)); // types have no result type
  EXPECT_TRUE(isCommutativeBinOp(Op::IAdd));
  EXPECT_FALSE(isCommutativeBinOp(Op::ISub));
  EXPECT_TRUE(isSideEffectFree(Op::Load));
  EXPECT_FALSE(isSideEffectFree(Op::Store));
  EXPECT_FALSE(isSideEffectFree(Op::FunctionCall));
}

TEST(StorageClassNames, RoundTrip) {
  for (StorageClass SC : {StorageClass::Function, StorageClass::Private,
                          StorageClass::Uniform, StorageClass::Output}) {
    StorageClass Parsed;
    ASSERT_TRUE(storageClassFromName(storageClassName(SC), Parsed));
    EXPECT_EQ(Parsed, SC);
  }
}

//===----------------------------------------------------------------------===//
// Module queries
//===----------------------------------------------------------------------===//

TEST(Module, FindDefCoversAllDefinitionSites) {
  Fixture F;
  EXPECT_NE(F.M.findDef(F.IntType), nullptr);
  EXPECT_NE(F.M.findDef(F.Const5), nullptr);
  EXPECT_NE(F.M.findDef(F.U0), nullptr);
  EXPECT_NE(F.M.findDef(F.HelperId), nullptr);    // function def
  EXPECT_NE(F.M.findDef(F.HelperParam), nullptr); // parameter
  EXPECT_NE(F.M.findDef(F.LoadX), nullptr);       // body instruction
  EXPECT_EQ(F.M.findDef(F.EntryBlock), nullptr);  // labels are not defs
  EXPECT_EQ(F.M.findDef(99999), nullptr);
  EXPECT_EQ(F.M.findDef(InvalidId), nullptr);
}

TEST(Module, BlockAndFunctionLookups) {
  Fixture F;
  auto [Func, Block] = F.M.findBlockDef(F.ThenBlock);
  ASSERT_NE(Block, nullptr);
  EXPECT_EQ(Func->id(), F.MainId);
  EXPECT_EQ(F.M.findBlockDef(424242).second, nullptr);
  EXPECT_EQ(F.M.entryPoint()->id(), F.MainId);
  EXPECT_EQ(F.M.findFunction(F.HelperId)->returnTypeId(), F.IntType);
}

TEST(Module, InstructionCountMatchesTextLineCount) {
  Fixture F;
  // Every instruction prints as exactly one line, plus the OpEntryPoint
  // header and one OpFunctionEnd per function.
  std::string Text = writeModuleText(F.M);
  size_t Lines = static_cast<size_t>(
      std::count(Text.begin(), Text.end(), '\n'));
  EXPECT_EQ(Lines, F.M.instructionCount() + 1 + F.M.Functions.size());
}

TEST(Module, TypeQueries) {
  Fixture F;
  EXPECT_TRUE(F.M.isIntTypeId(F.IntType));
  EXPECT_TRUE(F.M.isBoolTypeId(F.BoolType));
  EXPECT_TRUE(F.M.isVoidTypeId(F.VoidType));
  EXPECT_FALSE(F.M.isIntTypeId(F.BoolType));
  Id PtrType = F.M.typeOfId(F.U0);
  ASSERT_TRUE(F.M.isPointerTypeId(PtrType));
  auto [SC, Pointee] = F.M.pointerInfo(PtrType);
  EXPECT_EQ(SC, StorageClass::Uniform);
  EXPECT_EQ(Pointee, F.IntType);
  EXPECT_EQ(F.M.typeOfId(F.Const5), F.IntType);
}

//===----------------------------------------------------------------------===//
// Instruction descriptors
//===----------------------------------------------------------------------===//

TEST(InstructionDescriptor, DescribeAndLocateAgree) {
  Fixture F;
  for (const Function &Func : F.M.Functions) {
    for (const BasicBlock &Block : Func.Blocks) {
      for (size_t I = 0; I < Block.Body.size(); ++I) {
        InstructionDescriptor Desc = describeInstruction(Block, I);
        LocatedInstruction Loc = locateInstruction(F.M, Desc);
        ASSERT_TRUE(Loc.valid());
        EXPECT_EQ(Loc.Block->LabelId, Block.LabelId);
        EXPECT_EQ(Loc.Index, I);
      }
    }
  }
}

TEST(InstructionDescriptor, LabelBasedDescriptor) {
  Fixture F;
  // The else-block's first instruction is a store (no result), so its
  // descriptor must be relative to the block label.
  const BasicBlock *Else = F.M.findFunction(F.MainId)->findBlock(F.ElseBlock);
  ASSERT_EQ(Else->Body[0].Opcode, Op::Store);
  InstructionDescriptor Desc = describeInstruction(*Else, 0);
  EXPECT_EQ(Desc.Base, F.ElseBlock);
  EXPECT_EQ(Desc.TargetOpcode, Op::Store);
  EXPECT_EQ(Desc.Skip, 0u);
}

TEST(InstructionDescriptor, SkipCountsSameOpcodeOnly) {
  Fixture F;
  // The merge block: load, store, return. The store descriptor relative to
  // the load must have skip 0 even though other opcodes intervene
  // elsewhere.
  const BasicBlock *Merge =
      F.M.findFunction(F.MainId)->findBlock(F.MergeBlock);
  InstructionDescriptor Desc = describeInstruction(*Merge, 1);
  EXPECT_EQ(Desc.TargetOpcode, Op::Store);
  EXPECT_EQ(Desc.Skip, 0u);
  EXPECT_EQ(Desc.Base, Merge->Body[0].Result);
}

TEST(InstructionDescriptor, UnresolvableDescriptors) {
  Fixture F;
  Module M = F.M;
  // Unknown base id.
  EXPECT_FALSE(locateInstruction(M, {99999, Op::Store, 0}).valid());
  // Base exists but no matching opcode after it.
  const BasicBlock *Merge = M.findFunction(F.MainId)->findBlock(F.MergeBlock);
  Id LoadL = Merge->Body[0].Result;
  EXPECT_FALSE(locateInstruction(M, {LoadL, Op::Kill, 0}).valid());
  // Skip count exceeds matches.
  EXPECT_FALSE(locateInstruction(M, {LoadL, Op::Store, 5}).valid());
}

//===----------------------------------------------------------------------===//
// Text format
//===----------------------------------------------------------------------===//

TEST(TextFormat, FixtureRoundTrips) {
  Fixture F;
  std::string Text = writeModuleText(F.M);
  Module Reparsed;
  std::string Error;
  ASSERT_TRUE(readModuleText(Text, Reparsed, Error)) << Error;
  EXPECT_EQ(writeModuleText(Reparsed), Text);
  EXPECT_EQ(Reparsed.EntryPointId, F.M.EntryPointId);
  EXPECT_GE(Reparsed.Bound, F.M.Bound - 1);
}

TEST(TextFormat, ParserDiagnostics) {
  Module M;
  std::string Error;
  EXPECT_FALSE(readModuleText("OpBogus", M, Error));
  EXPECT_NE(Error.find("line 1"), std::string::npos);
  EXPECT_FALSE(readModuleText("%1 = OpTypeInt 32\nOpReturn", M, Error));
  EXPECT_NE(Error.find("line 2"), std::string::npos);
  EXPECT_FALSE(readModuleText("OpFunctionEnd", M, Error));
  EXPECT_FALSE(readModuleText("%1 = OpStore %2 %3", M, Error));
  EXPECT_FALSE(readModuleText("OpLoad %1 %2", M, Error)); // missing result
  EXPECT_FALSE(
      readModuleText("%1 = OpTypeVoid\n%2 = OpFunction %1 None %3", M,
                     Error)); // unterminated function
}

TEST(TextFormat, CommentsAndNegativeLiterals) {
  Module M;
  std::string Error;
  std::string Text = "OpEntryPoint %10 ; entry\n"
                     "%1 = OpTypeInt 32 ; the int type\n"
                     "%2 = OpConstant %1 -5\n"
                     "%3 = OpTypeVoid\n"
                     "%4 = OpTypeFunction %3\n"
                     "%10 = OpFunction %3 None %4\n"
                     "%11 = OpLabel\n"
                     "OpReturn\n"
                     "OpFunctionEnd\n";
  ASSERT_TRUE(readModuleText(Text, M, Error)) << Error;
  EXPECT_EQ(evalConstant(M, 2), Value::makeInt(-5));
  EXPECT_TRUE(isValidModule(M));
}

TEST(TextFormat, DiffShowsOnlyChangedLines) {
  Fixture F;
  Module Changed = F.M;
  // Flip the helper's control mask — a one-line change.
  Changed.findFunction(F.HelperId)->setControlMask(FC_DontInline);
  std::string Diff = diffModuleText(F.M, Changed);
  EXPECT_NE(Diff.find("- %"), std::string::npos);
  EXPECT_NE(Diff.find("+ %"), std::string::npos);
  EXPECT_NE(Diff.find("DontInline"), std::string::npos);
  // Exactly one removed and one added line.
  EXPECT_EQ(std::count(Diff.begin(), Diff.end(), '\n'), 2);
  EXPECT_TRUE(diffModuleText(F.M, F.M).empty());
}

//===----------------------------------------------------------------------===//
// CFG and dominators
//===----------------------------------------------------------------------===//

TEST(Cfg, SuccessorsAndPredecessors) {
  Fixture F;
  const Function &Main = *F.M.findFunction(F.MainId);
  Cfg Graph(Main);
  EXPECT_EQ(Graph.entryId(), F.EntryBlock);
  std::vector<Id> EntrySuccs = Graph.successors(F.EntryBlock);
  ASSERT_EQ(EntrySuccs.size(), 2u);
  EXPECT_EQ(EntrySuccs[0], F.ThenBlock);
  EXPECT_EQ(EntrySuccs[1], F.ElseBlock);
  EXPECT_EQ(Graph.predecessors(F.MergeBlock).size(), 2u);
  EXPECT_TRUE(Graph.predecessors(F.EntryBlock).empty());
  EXPECT_TRUE(Graph.isReachable(F.MergeBlock));
  EXPECT_EQ(Graph.reversePostorder().front(), F.EntryBlock);
  EXPECT_EQ(Graph.reversePostorder().size(), 4u);
}

TEST(Dominators, DiamondShape) {
  Fixture F;
  const Function &Main = *F.M.findFunction(F.MainId);
  Cfg Graph(Main);
  DominatorTree Dom(Main, Graph);
  EXPECT_TRUE(Dom.dominates(F.EntryBlock, F.MergeBlock));
  EXPECT_TRUE(Dom.strictlyDominates(F.EntryBlock, F.ThenBlock));
  EXPECT_FALSE(Dom.dominates(F.ThenBlock, F.MergeBlock));
  EXPECT_FALSE(Dom.dominates(F.ThenBlock, F.ElseBlock));
  EXPECT_TRUE(Dom.dominates(F.ThenBlock, F.ThenBlock));
  EXPECT_EQ(Dom.immediateDominator(F.MergeBlock), F.EntryBlock);
  EXPECT_EQ(Dom.immediateDominator(F.EntryBlock), InvalidId);
}

TEST(ModuleAnalysis, AvailabilityRules) {
  Fixture F;
  ModuleAnalysis Analysis(F.M);
  // Globals are available everywhere.
  EXPECT_TRUE(Analysis.idAvailableBefore(F.Const5, F.MainId, F.EntryBlock, 0));
  // A value defined in the entry block is available in dominated blocks...
  EXPECT_TRUE(Analysis.idAvailableBefore(F.LoadX, F.MainId, F.MergeBlock, 0));
  // ...but not before its own definition.
  EXPECT_FALSE(Analysis.idAvailableBefore(F.LoadX, F.MainId, F.EntryBlock, 1));
  // Values from one arm are not available in the merge block.
  EXPECT_FALSE(Analysis.idAvailableBefore(F.CallY, F.MainId, F.MergeBlock, 0));
  // ...but are available at the end of their own block (phi rule).
  EXPECT_TRUE(Analysis.idAvailableAtEnd(F.CallY, F.MainId, F.ThenBlock));
  // Parameters are function-scoped.
  EXPECT_TRUE(
      Analysis.idAvailableBefore(F.HelperParam, F.HelperId, F.HelperBlock, 0));
  EXPECT_FALSE(
      Analysis.idAvailableBefore(F.HelperParam, F.MainId, F.EntryBlock, 1));
  // Use counts.
  EXPECT_GE(Analysis.useCount(F.LoadX), 2u); // condition + call argument
  EXPECT_EQ(Analysis.useCount(99999), 0u);
}

//===----------------------------------------------------------------------===//
// Validator negative tests
//===----------------------------------------------------------------------===//

TEST(Validator, AcceptsFixture) {
  Fixture F;
  EXPECT_TRUE(validateModule(F.M).empty());
}

TEST(Validator, RejectsDuplicateIds) {
  Fixture F;
  Module M = F.M;
  M.GlobalInsts.push_back(
      Instruction(Op::TypeBool, InvalidId, F.IntType, {}));
  EXPECT_FALSE(isValidModule(M));
}

TEST(Validator, RejectsUseBeforeDefinition) {
  Fixture F;
  Module M = F.M;
  // Use CallY (defined in Then) inside Else.
  BasicBlock *Else = M.findFunction(F.MainId)->findBlock(F.ElseBlock);
  Else->Body.insert(Else->Body.begin(),
                    ModuleBuilder::makeBinOp(Op::IAdd, F.IntType,
                                             M.takeFreshId(), F.CallY,
                                             F.Const2));
  EXPECT_FALSE(isValidModule(M));
}

TEST(Validator, RejectsMissingTerminator) {
  Fixture F;
  Module M = F.M;
  M.findFunction(F.MainId)->findBlock(F.MergeBlock)->Body.pop_back();
  EXPECT_FALSE(isValidModule(M));
}

TEST(Validator, RejectsTerminatorMidBlock) {
  Fixture F;
  Module M = F.M;
  BasicBlock *Merge = M.findFunction(F.MainId)->findBlock(F.MergeBlock);
  Merge->Body.insert(Merge->Body.begin(), ModuleBuilder::makeReturn());
  EXPECT_FALSE(isValidModule(M));
}

TEST(Validator, RejectsBranchToEntryBlock) {
  Fixture F;
  Module M = F.M;
  BasicBlock *Merge = M.findFunction(F.MainId)->findBlock(F.MergeBlock);
  Merge->Body.back() = ModuleBuilder::makeBranch(F.EntryBlock);
  EXPECT_FALSE(isValidModule(M));
}

TEST(Validator, RejectsTypeErrors) {
  Fixture F;
  Module M = F.M;
  // Bool-typed operand to integer addition.
  BasicBlock *Merge = M.findFunction(F.MainId)->findBlock(F.MergeBlock);
  Merge->Body.insert(
      Merge->Body.begin() + 1,
      ModuleBuilder::makeBinOp(Op::IAdd, F.IntType, M.takeFreshId(),
                               F.LoadX, F.CondC));
  EXPECT_FALSE(isValidModule(M));
}

TEST(Validator, RejectsStoreToUniformAndLoadFromOutput) {
  Fixture F;
  {
    Module M = F.M;
    BasicBlock *Merge = M.findFunction(F.MainId)->findBlock(F.MergeBlock);
    Merge->Body.insert(Merge->Body.begin() + 1,
                       ModuleBuilder::makeStore(F.U0, F.Const5));
    EXPECT_FALSE(isValidModule(M));
  }
  {
    Module M = F.M;
    BasicBlock *Merge = M.findFunction(F.MainId)->findBlock(F.MergeBlock);
    Merge->Body.insert(
        Merge->Body.begin(),
        ModuleBuilder::makeLoad(F.IntType, M.takeFreshId(), F.Out));
    EXPECT_FALSE(isValidModule(M));
  }
}

TEST(Validator, RejectsBadLayoutOrder) {
  Fixture F;
  Module M = F.M;
  // Move the merge block before the then/else blocks it is dominated by...
  // actually before its dominator (the entry block cannot move, so swap
  // merge ahead of then): merge's idom is entry, which stays first, so
  // that swap alone is legal. Instead, split then-block and move the tail
  // before its dominator.
  Function *Main = M.findFunction(F.MainId);
  // Rotate: put the merge block right after entry. Its idom (entry) still
  // precedes it, so this is legal; check the validator agrees.
  std::swap(Main->Blocks[1], Main->Blocks[3]);
  std::swap(Main->Blocks[2], Main->Blocks[3]);
  EXPECT_TRUE(isValidModule(M));
  // Now break it for real: helper's entry... single-block functions cannot
  // break layout; instead make then-block appear before entry.
  Module M2 = F.M;
  Function *Main2 = M2.findFunction(F.MainId);
  std::swap(Main2->Blocks[0], Main2->Blocks[1]);
  EXPECT_FALSE(isValidModule(M2));
}

TEST(Validator, RejectsPhiInconsistencies) {
  Fixture F;
  Module M = F.M;
  BasicBlock *Merge = M.findFunction(F.MainId)->findBlock(F.MergeBlock);
  // A phi that does not cover all predecessors.
  Merge->Body.insert(Merge->Body.begin(),
                     Instruction(Op::Phi, F.IntType, M.takeFreshId(),
                                 {Operand::id(F.Const5),
                                  Operand::id(F.ThenBlock)}));
  EXPECT_FALSE(isValidModule(M));
  // Fix coverage but use a non-predecessor.
  Merge->Body[0].Operands = {Operand::id(F.Const5), Operand::id(F.ThenBlock),
                             Operand::id(F.Const2),
                             Operand::id(F.EntryBlock)};
  EXPECT_FALSE(isValidModule(M));
  // Correct phi validates.
  Merge->Body[0].Operands = {Operand::id(F.Const5), Operand::id(F.ThenBlock),
                             Operand::id(F.Const2), Operand::id(F.ElseBlock)};
  EXPECT_TRUE(isValidModule(M));
}

TEST(Validator, RejectsCallArityAndTypeMismatch) {
  Fixture F;
  Module M = F.M;
  BasicBlock *Then = M.findFunction(F.MainId)->findBlock(F.ThenBlock);
  Then->Body[0].Operands.push_back(Operand::id(F.Const5)); // extra arg
  EXPECT_FALSE(isValidModule(M));

  Module M2 = F.M;
  BasicBlock *Then2 = M2.findFunction(F.MainId)->findBlock(F.ThenBlock);
  Then2->Body[0].Operands[1] = Operand::id(F.CondC); // bool arg to int param
  EXPECT_FALSE(isValidModule(M2));
}

TEST(Validator, RejectsEntryPointWithParamsOrNonVoid) {
  Fixture F;
  Module M = F.M;
  M.EntryPointId = F.HelperId; // returns int, takes a parameter
  EXPECT_FALSE(isValidModule(M));
  M.EntryPointId = 123456; // not a function at all
  EXPECT_FALSE(isValidModule(M));
}

TEST(Validator, RejectsVariableOutsideEntryBlockLeadingZone) {
  Fixture F;
  Module M = F.M;
  ModuleBuilder Builder(M);
  Id FunctionPtr = Builder.getPointerType(StorageClass::Function, F.IntType);
  BasicBlock *Merge = M.findFunction(F.MainId)->findBlock(F.MergeBlock);
  Merge->Body.insert(
      Merge->Body.begin(),
      ModuleBuilder::makeLocalVariable(FunctionPtr, M.takeFreshId()));
  EXPECT_FALSE(isValidModule(M));
}

//===----------------------------------------------------------------------===//
// Facts
//===----------------------------------------------------------------------===//

TEST(FactManager, SynonymUnionFind) {
  FactManager Facts;
  Facts.addSynonym(DataDescriptor(1), DataDescriptor(2));
  Facts.addSynonym(DataDescriptor(2), DataDescriptor(3));
  EXPECT_TRUE(Facts.areSynonymous(DataDescriptor(1), DataDescriptor(3)));
  EXPECT_FALSE(Facts.areSynonymous(DataDescriptor(1), DataDescriptor(4)));
  // Indexed descriptors are distinct from whole-object descriptors.
  EXPECT_FALSE(
      Facts.areSynonymous(DataDescriptor(1), DataDescriptor(1, {0})));
  Facts.addSynonym(DataDescriptor(5, {1}), DataDescriptor(1));
  EXPECT_TRUE(Facts.areSynonymous(DataDescriptor(5, {1}), DataDescriptor(3)));
  std::vector<Id> IdSynonyms = Facts.idSynonymsOf(3);
  EXPECT_EQ(IdSynonyms.size(), 2u); // 1 and 2, not 5[1]
}

TEST(FactManager, FactKindsAreIndependent) {
  FactManager Facts;
  Facts.addDeadBlock(10);
  Facts.addIrrelevantId(10);
  Facts.addIrrelevantPointee(11);
  Facts.addLiveSafeFunction(12);
  EXPECT_TRUE(Facts.blockIsDead(10));
  EXPECT_FALSE(Facts.blockIsDead(11));
  EXPECT_TRUE(Facts.idIsIrrelevant(10));
  EXPECT_FALSE(Facts.idIsIrrelevant(11));
  EXPECT_TRUE(Facts.pointeeIsIrrelevant(11));
  EXPECT_TRUE(Facts.functionIsLiveSafe(12));
  EXPECT_FALSE(Facts.functionIsLiveSafe(10));
}

TEST(DataDescriptor, OrderingAndPrinting) {
  EXPECT_LT(DataDescriptor(1), DataDescriptor(2));
  EXPECT_LT(DataDescriptor(1), DataDescriptor(1, {0}));
  EXPECT_EQ(DataDescriptor(7, {0, 1}).str(), "%7[0][1]");
  EXPECT_EQ(DataDescriptor(7).str(), "%7");
}

} // namespace
