//===- tests/OptBugTriggersTest.cpp - Injected-bug trigger tests ----------===//
//
// Part of the spirv-fuzz reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// For each injected bug: a module exhibiting the trigger feature crashes
/// the hosting pass with the expected signature (or is miscompiled), and
/// the same module passes cleanly with the bug disabled. These are the
/// ground-truth bugs the whole evaluation counts.
///
//===----------------------------------------------------------------------===//

#include "core/TransformationUtil.h"
#include "core/Transformations.h"
#include "opt/Passes.h"
#include "TestHelpers.h"

using namespace spvfuzz;
using namespace spvfuzz::test;

namespace {

/// Runs \p Pass twice: with \p Point enabled expecting the signature, and
/// with no bugs expecting a clean, valid, equivalent result.
void expectTriggerAndCleanRun(const Module &M, const ShaderInput &Input,
                              OptPassKind Pass, BugPoint Point) {
  {
    Module Copy = M;
    PassCrash Crash = runOptPass(Pass, Copy, BugHost({Point}));
    ASSERT_TRUE(Crash.has_value())
        << optPassName(Pass) << " did not trigger " << bugSignature(Point);
    EXPECT_EQ(*Crash, bugSignature(Point));
  }
  {
    Module Copy = M;
    PassCrash Crash = runOptPass(Pass, Copy, BugHost());
    EXPECT_FALSE(Crash.has_value());
    expectValidAndEquivalent(M, Copy, Input);
  }
}

/// Fixture + dead block (with fact) reached from the then-block.
struct DeadBlockFixture {
  Fixture F;
  FactManager Facts;
  Id Dead;

  DeadBlockFixture() {
    ModuleBuilder Builder(F.M);
    Id TrueConst = Builder.getBoolConstant(true);
    Dead = F.M.takeFreshId();
    TransformationAddDeadBlock Add(Dead, F.ThenBlock, TrueConst);
    ModuleAnalysis Analysis(F.M);
    EXPECT_TRUE(Add.isApplicable(F.M, Analysis, Facts));
    Add.apply(F.M, Facts);
  }
};

TEST(BugTriggers, KillObstructsMerge) {
  DeadBlockFixture D;
  TransformationReplaceBranchWithKill Kill(D.Dead);
  ASSERT_TRUE(applyIfApplicable(D.F.M, D.Facts, Kill));
  expectTriggerAndCleanRun(D.F.M, D.F.Input, OptPassKind::SimplifyCfg,
                           BugPoint::CrashKillObstructsMerge);
}

TEST(BugTriggers, KillInCalleeIsAFrontendCrash) {
  Fixture F;
  Module M = F.M;
  // Put a kill in the helper (a non-entry function).
  BasicBlock *Helper = M.findFunction(F.HelperId)->findBlock(F.HelperBlock);
  Helper->Body.back() = ModuleBuilder::makeKill();
  ASSERT_TRUE(isValidModule(M));
  Module Copy = M;
  PassCrash Crash = runOptPass(OptPassKind::FrontendCheck, Copy,
                               BugHost({BugPoint::CrashKillInCallee}));
  ASSERT_TRUE(Crash.has_value());
  EXPECT_EQ(*Crash, bugSignature(BugPoint::CrashKillInCallee));
  // A kill in the *entry* function does not trigger it.
  Module M2 = F.M;
  M2.findFunction(F.MainId)->findBlock(F.MergeBlock)->Body.back() =
      ModuleBuilder::makeKill();
  PassCrash NoCrash = runOptPass(OptPassKind::FrontendCheck, M2,
                                 BugHost({BugPoint::CrashKillInCallee}));
  EXPECT_FALSE(NoCrash.has_value());
}

TEST(BugTriggers, DeadStoreToModuleScope) {
  DeadBlockFixture D;
  Module &M = D.F.M;
  ModuleBuilder Builder(M);
  Id PrivatePtr = Builder.getPointerType(StorageClass::Private, D.F.IntType);
  Id G = M.takeFreshId();
  ASSERT_TRUE(applyIfApplicable(
      M, D.Facts, TransformationAddGlobalVariable(G, PrivatePtr, InvalidId)));
  const BasicBlock *Dead = M.findFunction(D.F.MainId)->findBlock(D.Dead);
  ASSERT_TRUE(applyIfApplicable(
      M, D.Facts,
      TransformationAddStore(G, D.F.Const5,
                             describeInstruction(*Dead, 0))));
  expectTriggerAndCleanRun(M, D.F.Input, OptPassKind::DeadBranchElim,
                           BugPoint::CrashDeadStoreToModuleScope);
}

TEST(BugTriggers, DontInlineAttribute) {
  Fixture F;
  Module M = F.M;
  M.findFunction(F.HelperId)->setControlMask(FC_DontInline);
  expectTriggerAndCleanRun(M, F.Input, OptPassKind::Inliner,
                           BugPoint::CrashDontInlineAttribute);
}

TEST(BugTriggers, WideCallArity) {
  Fixture F;
  Module M = F.M;
  FactManager Facts;
  // Grow the helper to four parameters.
  for (int I = 0; I < 3; ++I) {
    const Function *Helper = M.findFunction(F.HelperId);
    std::vector<Id> Signature;
    for (const Instruction &Param : Helper->Params)
      Signature.push_back(Param.ResultType);
    Signature.push_back(F.IntType);
    Id NewType = M.takeFreshId();
    ASSERT_TRUE(applyIfApplicable(
        M, Facts,
        TransformationAddTypeFunction(NewType, F.IntType, Signature)));
    ASSERT_TRUE(applyIfApplicable(
        M, Facts,
        TransformationAddParameter(F.HelperId, M.takeFreshId(), F.IntType,
                                   NewType, F.Const2)));
  }
  expectTriggerAndCleanRun(M, F.Input, OptPassKind::Inliner,
                           BugPoint::CrashWideCallArity);
}

TEST(BugTriggers, CopyChainValueNumbering) {
  Fixture F;
  Module M = F.M;
  FactManager Facts;
  const BasicBlock *Merge = M.findFunction(F.MainId)->findBlock(F.MergeBlock);
  Id LoadL = Merge->Body[0].Result;
  InstructionDescriptor Where = describeInstruction(*Merge, 1);
  Id Copy1 = M.takeFreshId();
  ASSERT_TRUE(applyIfApplicable(
      M, Facts, TransformationAddSynonymViaCopyObject(Copy1, LoadL, Where)));
  Id Copy2 = M.takeFreshId();
  ASSERT_TRUE(applyIfApplicable(
      M, Facts, TransformationAddSynonymViaCopyObject(Copy2, Copy1, Where)));
  expectTriggerAndCleanRun(M, F.Input, OptPassKind::LocalCSE,
                           BugPoint::CrashCopyChainValueNumbering);
}

TEST(BugTriggers, PhiManyPredecessors) {
  // Build a three-predecessor merge via two dead blocks over a phi.
  Fixture F;
  Module M = F.M;
  FactManager Facts;
  // First create a phi in the merge block by propagating the load up.
  Id FreshThen = M.takeFreshId(), FreshElse = M.takeFreshId();
  ASSERT_TRUE(applyIfApplicable(
      M, Facts,
      TransformationPropagateInstructionUp(
          F.MergeBlock, {F.ThenBlock, FreshThen, F.ElseBlock, FreshElse})));
  // Then give the merge block a third predecessor via a dead block on the
  // then edge.
  ModuleBuilder Builder(M);
  Id TrueConst = Builder.getBoolConstant(true);
  Id Dead = M.takeFreshId();
  ASSERT_TRUE(applyIfApplicable(
      M, Facts, TransformationAddDeadBlock(Dead, F.ThenBlock, TrueConst)));
  const Instruction &Phi =
      M.findFunction(F.MainId)->findBlock(F.MergeBlock)->Body[0];
  ASSERT_EQ(Phi.Opcode, Op::Phi);
  ASSERT_EQ(Phi.Operands.size() / 2, 3u);
  expectTriggerAndCleanRun(M, F.Input, OptPassKind::BlockLayout,
                           BugPoint::CrashPhiManyPredecessors);
}

TEST(BugTriggers, CompositeFoldAndUnusedComposite) {
  Fixture F;
  Module M = F.M;
  FactManager Facts;
  ModuleBuilder Builder(M);
  Id Vec2 = Builder.getVectorType(F.IntType, 2);
  const BasicBlock *Merge = M.findFunction(F.MainId)->findBlock(F.MergeBlock);
  Id LoadL = Merge->Body[0].Result;
  InstructionDescriptor Where = describeInstruction(*Merge, 1);
  Id Composite = M.takeFreshId();
  ASSERT_TRUE(applyIfApplicable(
      M, Facts,
      TransformationCompositeConstruct(Composite, Vec2, {LoadL, F.Const5},
                                       Where)));
  // Unused construct: DCE bug triggers.
  expectTriggerAndCleanRun(M, F.Input, OptPassKind::Dce,
                           BugPoint::CrashUnusedComposite);
  // Add an extract: ConstantFold bug triggers.
  ASSERT_TRUE(applyIfApplicable(
      M, Facts,
      TransformationCompositeExtract(M.takeFreshId(), Composite, 1, Where)));
  expectTriggerAndCleanRun(M, F.Input, OptPassKind::ConstantFold,
                           BugPoint::CrashCompositeFold);
}

TEST(BugTriggers, PointerCopyAlias) {
  Fixture F;
  Module M = F.M;
  FactManager Facts;
  // Copy the local's pointer and store through the copy.
  const BasicBlock *Else = M.findFunction(F.MainId)->findBlock(F.ElseBlock);
  InstructionDescriptor Where = describeInstruction(*Else, 0);
  Id PtrCopy = M.takeFreshId();
  ASSERT_TRUE(applyIfApplicable(
      M, Facts,
      TransformationAddSynonymViaCopyObject(PtrCopy, F.LocalL, Where)));
  ASSERT_TRUE(applyIfApplicable(
      M, Facts, TransformationReplaceIdWithSynonym(
                    describeInstruction(
                        *M.findFunction(F.MainId)->findBlock(F.ElseBlock), 1),
                    0, PtrCopy)));
  expectTriggerAndCleanRun(M, F.Input, OptPassKind::LoadStoreForwarding,
                           BugPoint::CrashPointerCopyAlias);
}

TEST(BugTriggers, TrivialPhiIsAFrontendCrash) {
  Fixture F;
  Module M = F.M;
  FactManager Facts;
  // Inline the helper call: single return produces a single-entry phi.
  const Function *Helper = M.findFunction(F.HelperId);
  std::vector<uint32_t> IdMap;
  for (const BasicBlock &Block : Helper->Blocks) {
    IdMap.push_back(Block.LabelId);
    IdMap.push_back(M.takeFreshId());
    for (const Instruction &Inst : Block.Body)
      if (Inst.Result != InvalidId) {
        IdMap.push_back(Inst.Result);
        IdMap.push_back(M.takeFreshId());
      }
  }
  const BasicBlock *Then = M.findFunction(F.MainId)->findBlock(F.ThenBlock);
  ASSERT_TRUE(applyIfApplicable(
      M, Facts,
      TransformationInlineFunction(describeInstruction(*Then, 0),
                                   M.takeFreshId(), IdMap)));
  expectTriggerAndCleanRun(M, F.Input, OptPassKind::FrontendCheck,
                           BugPoint::CrashTrivialPhi);
}

TEST(BugTriggers, EqualTargetBranch) {
  Fixture F;
  Module M = F.M;
  FactManager Facts;
  ModuleBuilder Builder(M);
  Id FalseConst = Builder.getBoolConstant(false);
  ASSERT_TRUE(applyIfApplicable(
      M, Facts,
      TransformationReplaceBranchWithConditional(F.ElseBlock, FalseConst,
                                                 false)));
  expectTriggerAndCleanRun(M, F.Input, OptPassKind::DeadBranchElim,
                           BugPoint::CrashEqualTargetBranch);
}

TEST(BugTriggers, StoreToPrivateGlobal) {
  Fixture F;
  Module M = F.M;
  FactManager Facts;
  ModuleBuilder Builder(M);
  Id PrivatePtr = Builder.getPointerType(StorageClass::Private, F.IntType);
  Id G = M.takeFreshId();
  ASSERT_TRUE(applyIfApplicable(
      M, Facts, TransformationAddGlobalVariable(G, PrivatePtr, InvalidId)));
  const BasicBlock *Merge = M.findFunction(F.MainId)->findBlock(F.MergeBlock);
  ASSERT_TRUE(applyIfApplicable(
      M, Facts,
      TransformationAddStore(G, F.Const5, describeInstruction(*Merge, 1))));
  expectTriggerAndCleanRun(M, F.Input, OptPassKind::DeadStoreElim,
                           BugPoint::CrashStoreToPrivateGlobal);
}

TEST(BugTriggers, UnusedCallResultAndFunctionLimit) {
  Fixture F;
  Module M = F.M;
  FactManager Facts;
  Facts.addLiveSafeFunction(F.HelperId); // pretend, for call insertion
  const BasicBlock *Merge = M.findFunction(F.MainId)->findBlock(F.MergeBlock);
  ASSERT_TRUE(applyIfApplicable(
      M, Facts,
      TransformationAddFunctionCall(M.takeFreshId(), F.HelperId, {F.Const5},
                                    describeInstruction(*Merge, 0))));
  {
    Module Copy = M;
    PassCrash Crash = runOptPass(OptPassKind::FrontendCheck, Copy,
                                 BugHost({BugPoint::CrashUnusedCallResult}));
    ASSERT_TRUE(Crash.has_value());
    EXPECT_EQ(*Crash, bugSignature(BugPoint::CrashUnusedCallResult));
  }
  // The function-limit bug needs five functions; the fixture has two.
  {
    Module Copy = M;
    PassCrash Crash = runOptPass(OptPassKind::FrontendCheck, Copy,
                                 BugHost({BugPoint::CrashModuleFunctionLimit}));
    EXPECT_FALSE(Crash.has_value());
  }
}

TEST(BugTriggers, NegatedConstantBranch) {
  Fixture F;
  Module M = F.M;
  FactManager Facts;
  ModuleBuilder Builder(M);
  Id FalseConst = Builder.getBoolConstant(false);
  ASSERT_TRUE(applyIfApplicable(
      M, Facts,
      TransformationReplaceBranchWithConditional(F.ElseBlock, FalseConst,
                                                 false)));
  ASSERT_TRUE(applyIfApplicable(
      M, Facts,
      TransformationInvertBranchCondition(F.ElseBlock, M.takeFreshId())));
  expectTriggerAndCleanRun(M, F.Input, OptPassKind::FrontendCheck,
                           BugPoint::CrashNegatedConstantBranch);
}

//===----------------------------------------------------------------------===//
// Miscompilation bugs: wrong results, not crashes
//===----------------------------------------------------------------------===//

TEST(MiscompileBugs, UniformBranchFoldChangesBehaviour) {
  // A branch on a loaded boolean uniform (true at runtime) gets folded to
  // the false edge.
  Fixture F;
  Module M = F.M;
  // Rewrite main's condition to branch on the bool uniform directly.
  BasicBlock *Entry = &M.findFunction(F.MainId)->entryBlock();
  Id LoadK = M.takeFreshId();
  Entry->Body.insert(Entry->Body.end() - 1,
                     ModuleBuilder::makeLoad(F.BoolType, LoadK, F.U1));
  Entry->Body.back() =
      ModuleBuilder::makeBranchConditional(LoadK, F.ThenBlock, F.ElseBlock);
  ASSERT_TRUE(isValidModule(M));
  ExecResult Honest = interpret(M, F.Input);
  ASSERT_EQ(Honest.Outputs.at(0), Value::makeInt(10)); // then branch

  Module Buggy = M;
  PassCrash Crash =
      runOptPass(OptPassKind::DeadBranchElim, Buggy,
                 BugHost({BugPoint::MiscompileUniformBranchFold}));
  EXPECT_FALSE(Crash.has_value());
  ExecResult Broken = interpret(Buggy, F.Input);
  EXPECT_EQ(Broken.Outputs.at(0), Value::makeInt(5)); // forced else branch
  // With the bug disabled the pass leaves the branch alone.
  Module Clean = M;
  runOptPass(OptPassKind::DeadBranchElim, Clean, BugHost());
  EXPECT_EQ(interpret(Clean, F.Input), Honest);
}

TEST(MiscompileBugs, PhiLayoutOrderShufflesValues) {
  Fixture F;
  Module M = F.M;
  FactManager Facts;
  // Create a phi whose operand order (then, else) disagrees with the
  // layout pass's reverse postorder (which visits else before then).
  Id FreshThen = M.takeFreshId(), FreshElse = M.takeFreshId();
  ASSERT_TRUE(applyIfApplicable(
      M, Facts,
      TransformationPropagateInstructionUp(
          F.MergeBlock, {F.ThenBlock, FreshThen, F.ElseBlock, FreshElse})));
  ExecResult Honest = interpret(M, F.Input);

  Module Buggy = M;
  runOptPass(OptPassKind::BlockLayout, Buggy,
             BugHost({BugPoint::MiscompilePhiLayoutOrder}));
  // The phi's values got rebound positionally: different result.
  EXPECT_NE(interpret(Buggy, F.Input), Honest);
  Module Clean = M;
  runOptPass(OptPassKind::BlockLayout, Clean, BugHost());
  EXPECT_EQ(interpret(Clean, F.Input), Honest);
}

TEST(MiscompileBugs, AliasBlindForwardingUsesStaleValue) {
  // store L, a; store copy(L), b; load L — the alias-blind pass forwards a.
  Fixture F;
  Module M = F.M;
  BasicBlock *Merge = M.findFunction(F.MainId)->findBlock(F.MergeBlock);
  Id PtrCopy = M.takeFreshId();
  Id PtrType = M.typeOfId(F.LocalL);
  std::vector<Instruction> Prefix = {
      ModuleBuilder::makeStore(F.LocalL, F.Const2),
      ModuleBuilder::makeUnaryOp(Op::CopyObject, PtrType, PtrCopy, F.LocalL),
      ModuleBuilder::makeStore(PtrCopy, F.Const3),
  };
  Merge->Body.insert(Merge->Body.begin(), Prefix.begin(), Prefix.end());
  ASSERT_TRUE(isValidModule(M));
  ExecResult Honest = interpret(M, F.Input);
  ASSERT_EQ(Honest.Outputs.at(0), Value::makeInt(3));

  Module Buggy = M;
  runOptPass(OptPassKind::LoadStoreForwarding, Buggy,
             BugHost({BugPoint::MiscompileAliasBlindForward}));
  ExecResult Broken = interpret(Buggy, F.Input);
  EXPECT_EQ(Broken.Outputs.at(0), Value::makeInt(2)); // stale value
  Module Clean = M;
  runOptPass(OptPassKind::LoadStoreForwarding, Clean, BugHost());
  EXPECT_EQ(interpret(Clean, F.Input), Honest);
}

//===----------------------------------------------------------------------===//
// Honest pass behaviours (bugs disabled)
//===----------------------------------------------------------------------===//

TEST(OptBehaviour, ConstantFoldFoldsArithmetic) {
  Fixture F;
  Module M = F.M;
  BasicBlock *Merge = M.findFunction(F.MainId)->findBlock(F.MergeBlock);
  Id Sum = M.takeFreshId();
  Merge->Body.insert(Merge->Body.begin() + 1,
                     ModuleBuilder::makeBinOp(Op::IAdd, F.IntType, Sum,
                                              F.Const2, F.Const3));
  Merge->Body[2] = ModuleBuilder::makeStore(F.Out, Sum);
  ASSERT_TRUE(isValidModule(M));
  runOptPass(OptPassKind::ConstantFold, M, BugHost());
  // The add became a copy of a constant 5.
  const Instruction &Folded =
      M.findFunction(F.MainId)->findBlock(F.MergeBlock)->Body[1];
  EXPECT_EQ(Folded.Opcode, Op::CopyObject);
  EXPECT_EQ(evalConstant(M, Folded.idOperand(0)), Value::makeInt(5));
  EXPECT_EQ(interpret(M, F.Input).Outputs.at(0), Value::makeInt(5));
}

TEST(OptBehaviour, DceRemovesUnusedChains) {
  Fixture F;
  Module M = F.M;
  BasicBlock *Merge = M.findFunction(F.MainId)->findBlock(F.MergeBlock);
  Id A = M.takeFreshId(), B = M.takeFreshId();
  Merge->Body.insert(Merge->Body.begin() + 1,
                     ModuleBuilder::makeBinOp(Op::IAdd, F.IntType, B, A, A));
  Merge->Body.insert(Merge->Body.begin() + 1,
                     ModuleBuilder::makeBinOp(Op::IAdd, F.IntType, A,
                                              F.Const2, F.Const3));
  size_t Before = M.instructionCount();
  runOptPass(OptPassKind::Dce, M, BugHost());
  // Both chained unused adds disappear (fixpoint iteration).
  EXPECT_EQ(M.instructionCount(), Before - 2);
  expectValidAndEquivalent(F.M, M, F.Input);
}

TEST(OptBehaviour, SimplifyCfgMergesSplitBlocks) {
  Fixture F;
  Module M = F.M;
  FactManager Facts;
  const BasicBlock *Merge = M.findFunction(F.MainId)->findBlock(F.MergeBlock);
  ASSERT_TRUE(applyIfApplicable(
      M, Facts,
      TransformationSplitBlock(describeInstruction(*Merge, 1),
                               M.takeFreshId())));
  size_t BlocksBefore = M.findFunction(F.MainId)->Blocks.size();
  runOptPass(OptPassKind::SimplifyCfg, M, BugHost());
  EXPECT_EQ(M.findFunction(F.MainId)->Blocks.size(), BlocksBefore - 1);
  expectValidAndEquivalent(F.M, M, F.Input);
}

TEST(OptBehaviour, InlinerInlinesAndHonorsDontInline) {
  Fixture F;
  {
    Module M = F.M;
    runOptPass(OptPassKind::Inliner, M, BugHost());
    for (const BasicBlock &Block : M.findFunction(F.MainId)->Blocks)
      for (const Instruction &Inst : Block.Body)
        EXPECT_NE(Inst.Opcode, Op::FunctionCall);
    expectValidAndEquivalent(F.M, M, F.Input);
  }
  {
    Module M = F.M;
    M.findFunction(F.HelperId)->setControlMask(FC_DontInline);
    runOptPass(OptPassKind::Inliner, M, BugHost());
    bool CallSurvives = false;
    for (const BasicBlock &Block : M.findFunction(F.MainId)->Blocks)
      for (const Instruction &Inst : Block.Body)
        if (Inst.Opcode == Op::FunctionCall)
          CallSurvives = true;
    EXPECT_TRUE(CallSurvives);
  }
}

TEST(OptBehaviour, ForwardingEliminatesRedundantLoad) {
  Fixture F;
  Module M = F.M;
  // else-block: store L, 5 — add "load L; store Out, load" right after.
  BasicBlock *Else = M.findFunction(F.MainId)->findBlock(F.ElseBlock);
  Id LoadId = M.takeFreshId();
  Else->Body.insert(Else->Body.begin() + 1,
                    ModuleBuilder::makeLoad(F.IntType, LoadId, F.LocalL));
  ASSERT_TRUE(isValidModule(M));
  runOptPass(OptPassKind::LoadStoreForwarding, M, BugHost());
  EXPECT_EQ(M.findFunction(F.MainId)->findBlock(F.ElseBlock)->Body[1].Opcode,
            Op::CopyObject);
  expectValidAndEquivalent(F.M, M, F.Input);
}

TEST(OptBehaviour, BlockLayoutProducesReversePostorder) {
  // Our DFS pushes the conditional's false edge last and pops it first in
  // reverse postorder, so the canonical order is entry, else, then, merge
  // regardless of the input order.
  Fixture F;
  for (bool Scramble : {false, true}) {
    Module M = F.M;
    if (Scramble) {
      Function *Main = M.findFunction(F.MainId);
      std::swap(Main->Blocks[1], Main->Blocks[2]);
      ASSERT_TRUE(isValidModule(M));
    }
    runOptPass(OptPassKind::BlockLayout, M, BugHost());
    const Function *Main = M.findFunction(F.MainId);
    EXPECT_EQ(Main->Blocks[0].LabelId, F.EntryBlock);
    EXPECT_EQ(Main->Blocks[1].LabelId, F.ElseBlock);
    EXPECT_EQ(Main->Blocks[2].LabelId, F.ThenBlock);
    EXPECT_EQ(Main->Blocks[3].LabelId, F.MergeBlock);
    expectValidAndEquivalent(F.M, M, F.Input);
  }
}

TEST(OptBehaviour, PhiSimplifyCollapsesSingleEntryPhis) {
  Fixture F;
  Module M = F.M;
  BasicBlock *Then = M.findFunction(F.MainId)->findBlock(F.ThenBlock);
  Id PhiId = M.takeFreshId();
  Then->Body.insert(Then->Body.begin(),
                    Instruction(Op::Phi, F.IntType, PhiId,
                                {Operand::id(F.LoadX),
                                 Operand::id(F.EntryBlock)}));
  ASSERT_TRUE(isValidModule(M));
  runOptPass(OptPassKind::PhiSimplify, M, BugHost());
  EXPECT_EQ(M.findFunction(F.MainId)->findBlock(F.ThenBlock)->Body[0].Opcode,
            Op::CopyObject);
  expectValidAndEquivalent(F.M, M, F.Input);
}

TEST(OptBehaviour, DeadStoreElimRemovesWriteOnlyLocals) {
  Fixture F;
  Module M = F.M;
  FactManager Facts;
  ModuleBuilder Builder(M);
  Id FunctionPtr = Builder.getPointerType(StorageClass::Function, F.IntType);
  Id Scratch = M.takeFreshId();
  ASSERT_TRUE(applyIfApplicable(
      M, Facts,
      TransformationAddLocalVariable(Scratch, FunctionPtr, F.MainId,
                                     InvalidId)));
  const BasicBlock *Merge = M.findFunction(F.MainId)->findBlock(F.MergeBlock);
  ASSERT_TRUE(applyIfApplicable(
      M, Facts,
      TransformationAddStore(Scratch, F.Const5,
                             describeInstruction(*Merge, 1))));
  size_t Before = M.instructionCount();
  runOptPass(OptPassKind::DeadStoreElim, M, BugHost());
  EXPECT_EQ(M.instructionCount(), Before - 1); // the store is gone
  expectValidAndEquivalent(F.M, M, F.Input);
}

} // namespace
