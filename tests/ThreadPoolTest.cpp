//===- tests/ThreadPoolTest.cpp - Worker-pool unit tests ------------------===//
//
// Part of the spirv-fuzz reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Unit tests for support/ThreadPool: results come back in submission
/// order via futures, exceptions propagate through future::get, and
/// cooperative cancellation lets queued jobs drain cheaply.
///
//===----------------------------------------------------------------------===//

#include "support/ThreadPool.h"

#include "gtest/gtest.h"

#include <atomic>
#include <chrono>
#include <stdexcept>
#include <thread>

using namespace spvfuzz;

namespace {

TEST(ThreadPool, ResultsComeBackInSubmissionOrder) {
  ThreadPool Pool(4);
  std::vector<std::future<size_t>> Futures;
  for (size_t I = 0; I < 64; ++I)
    Futures.push_back(Pool.submit([I] {
      if (I % 7 == 0)
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      return I * I;
    }));
  for (size_t I = 0; I < Futures.size(); ++I)
    EXPECT_EQ(Futures[I].get(), I * I);
}

TEST(ThreadPool, ExceptionsPropagateThroughFutures) {
  ThreadPool Pool(2);
  std::future<int> Ok = Pool.submit([] { return 7; });
  std::future<int> Bad = Pool.submit(
      []() -> int { throw std::runtime_error("job failed"); });
  EXPECT_EQ(Ok.get(), 7);
  EXPECT_THROW(Bad.get(), std::runtime_error);
  // The pool survives a throwing job.
  EXPECT_EQ(Pool.submit([] { return 8; }).get(), 8);
}

TEST(ThreadPool, CooperativeCancellationShortCircuitsQueuedJobs) {
  ThreadPool Pool(1);
  ASSERT_FALSE(Pool.cancelRequested());
  Pool.requestCancel();
  std::vector<std::future<bool>> Futures;
  for (size_t I = 0; I < 16; ++I)
    Futures.push_back(
        Pool.submit([&Pool] { return Pool.cancelRequested(); }));
  for (std::future<bool> &Future : Futures)
    EXPECT_TRUE(Future.get()) << "queued job did not observe the cancel";
  Pool.clearCancel();
  EXPECT_FALSE(Pool.cancelRequested());
  EXPECT_FALSE(Pool.submit([&Pool] { return Pool.cancelRequested(); }).get());
}

TEST(ThreadPool, ZeroWorkersFallsBackToHardwareConcurrency) {
  ThreadPool Pool(0);
  EXPECT_GE(Pool.workerCount(), 1u);
  EXPECT_EQ(Pool.submit([] { return 42; }).get(), 42);
}

TEST(ThreadPool, WaitBlocksUntilQueueDrains) {
  ThreadPool Pool(2);
  std::atomic<size_t> Done{0};
  for (size_t I = 0; I < 32; ++I)
    Pool.submit([&Done] {
      std::this_thread::sleep_for(std::chrono::microseconds(100));
      ++Done;
    });
  Pool.wait();
  EXPECT_EQ(Done.load(), 32u);
}

TEST(ThreadPool, DestructorDrainsOutstandingJobs) {
  std::atomic<size_t> Done{0};
  {
    ThreadPool Pool(1);
    for (size_t I = 0; I < 16; ++I)
      Pool.submit([&Done] { ++Done; });
  }
  EXPECT_EQ(Done.load(), 16u);
}

} // namespace
