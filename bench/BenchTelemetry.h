//===- bench/BenchTelemetry.h - Shared bench telemetry glue -----*- C++ -*-===//
//
// Part of the spirv-fuzz reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// RAII glue that routes the evaluation binaries through the metrics
/// registry: construction enables the global registry (so campaign
/// progress reporting and all instrumentation fire), destruction prints a
/// compact counter-derived footer and honours REPRO_METRICS_OUT=<path> to
/// dump the full registry as JSON — the same format `minispv report`
/// renders. Benches that name a rate counter also publish
/// `bench.wall_seconds` and `bench.throughput_per_sec` gauges into the
/// dump, which is what `minispv report --compare` judges against the
/// committed snapshots in bench/baselines/.
///
/// bench_micro deliberately does not use this: its google-benchmark loops
/// measure the disabled-telemetry fast path, and its REPRO_METRICS_OUT
/// dump (the BENCH_interp.json dispatch-throughput gate) enables the
/// registry itself only after those loops finish.
///
//===----------------------------------------------------------------------===//

#ifndef BENCH_BENCH_TELEMETRY_H
#define BENCH_BENCH_TELEMETRY_H

#include "support/Telemetry.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

namespace spvfuzz {
namespace bench {

class BenchTelemetry {
public:
  /// Enables the registry; \p FooterCounters are the counters the footer
  /// reports (in order) when the bench exits. When \p RateCounter is
  /// non-empty, the destructor publishes `bench.wall_seconds` and
  /// `bench.throughput_per_sec` (that counter's final value divided by the
  /// bench's wall time) as gauges before the REPRO_METRICS_OUT dump.
  explicit BenchTelemetry(std::vector<std::string> FooterCounters,
                          std::string RateCounter = "")
      : FooterCounters(std::move(FooterCounters)),
        RateCounter(std::move(RateCounter)),
        Start(std::chrono::steady_clock::now()) {
    telemetry::MetricsRegistry::global().setEnabled(true);
  }
  BenchTelemetry(const BenchTelemetry &) = delete;
  BenchTelemetry &operator=(const BenchTelemetry &) = delete;

  ~BenchTelemetry() {
    telemetry::MetricsRegistry &Metrics = telemetry::MetricsRegistry::global();
    if (!RateCounter.empty()) {
      double Seconds = std::chrono::duration<double>(
                           std::chrono::steady_clock::now() - Start)
                           .count();
      Metrics.set("bench.wall_seconds", Seconds);
      if (Seconds > 0.0)
        Metrics.set("bench.throughput_per_sec",
                    static_cast<double>(Metrics.counterValue(RateCounter)) /
                        Seconds);
    }
    if (!FooterCounters.empty()) {
      printf("\ntelemetry:");
      for (const std::string &Name : FooterCounters)
        printf(" %s=%llu", Name.c_str(),
               static_cast<unsigned long long>(Metrics.counterValue(Name)));
      printf("\n");
    }
    if (const char *Path = std::getenv("REPRO_METRICS_OUT")) {
      std::string Error;
      if (!telemetry::writeGlobalMetrics(Path, Error))
        fprintf(stderr, "warning: failed to write metrics: %s\n",
                Error.c_str());
      else
        fprintf(stderr, "wrote metrics to %s (render with: minispv report)\n",
                Path);
    }
  }

private:
  std::vector<std::string> FooterCounters;
  std::string RateCounter;
  std::chrono::steady_clock::time_point Start;
};

} // namespace bench
} // namespace spvfuzz

#endif // BENCH_BENCH_TELEMETRY_H
