//===- bench/BenchEngine.h - Shared engine glue for benches -----*- C++ -*-===//
//
// Part of the spirv-fuzz reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Shared plumbing for routing the evaluation binaries through the
/// CampaignEngine: `--jobs N` / REPRO_JOBS parsing and a scope timer. The
/// timer reports to stderr so stdout stays byte-identical across job
/// counts — `diff <(bench --jobs 1) <(bench --jobs 8)` is the bit-identical
/// parallelism check.
///
//===----------------------------------------------------------------------===//

#ifndef BENCH_BENCH_ENGINE_H
#define BENCH_BENCH_ENGINE_H

#include "campaign/CampaignEngine.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

namespace spvfuzz {
namespace bench {

/// Worker-thread count: `--jobs N` (or `-j N`) on the command line wins,
/// then REPRO_JOBS, then serial.
inline size_t parseJobs(int Argc, char **Argv) {
  for (int I = 1; I + 1 < Argc; ++I)
    if (!std::strcmp(Argv[I], "--jobs") || !std::strcmp(Argv[I], "-j"))
      return static_cast<size_t>(std::strtoull(Argv[I + 1], nullptr, 10));
  if (const char *Env = std::getenv("REPRO_JOBS"))
    return static_cast<size_t>(std::strtoull(Env, nullptr, 10));
  return 1;
}

/// True when boolean flag \p Name (e.g. "--faulty-fleet") appears on the
/// command line.
inline bool parseFlag(int Argc, char **Argv, const char *Name) {
  for (int I = 1; I < Argc; ++I)
    if (!std::strcmp(Argv[I], Name))
      return true;
  return false;
}

/// The value of string flag \p Name (e.g. "--store DIR"), or "" if absent.
inline std::string parseString(int Argc, char **Argv, const char *Name) {
  for (int I = 1; I + 1 < Argc; ++I)
    if (!std::strcmp(Argv[I], Name))
      return Argv[I + 1];
  return "";
}

/// Prints "engine: jobs=N elapsed=X.XXs" to stderr at scope exit; running
/// the same bench at two job counts and comparing the elapsed lines is the
/// speedup measurement of EXPERIMENTS.md.
class EngineTimer {
public:
  explicit EngineTimer(size_t Jobs)
      : Jobs(Jobs), Start(std::chrono::steady_clock::now()) {}
  EngineTimer(const EngineTimer &) = delete;
  EngineTimer &operator=(const EngineTimer &) = delete;
  ~EngineTimer() {
    double Seconds = std::chrono::duration<double>(
                         std::chrono::steady_clock::now() - Start)
                         .count();
    std::fprintf(stderr, "engine: jobs=%zu elapsed=%.2fs\n", Jobs, Seconds);
  }

private:
  size_t Jobs;
  std::chrono::steady_clock::time_point Start;
};

} // namespace bench
} // namespace spvfuzz

#endif // BENCH_BENCH_ENGINE_H
