//===- bench/bench_table4_dedup.cpp - Regenerates Table 4 -----------------===//
//
// Part of the spirv-fuzz reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// RQ3: effectiveness of the transformation-type deduplication heuristic
/// (Figure 6 algorithm). Crash-triggering reduced tests per target (NVIDIA
/// excluded, as in the paper) are deduplicated; ground truth is the
/// injected crash signature. Paper totals: 1467 tests / 78 sigs /
/// 49 reports / 41 distinct / 8 dups.
///
/// `--ground-truth` adds the measurement the paper's field study could not
/// make: every reduced reproducer is attributed to its culprit pass
/// (triage bisection), and the three clustering axes — transformation
/// types, bisection culprit labels, and their combination — are scored
/// against the injected bug identities (pairwise precision/recall plus
/// cluster purity).
///
//===----------------------------------------------------------------------===//

#include "campaign/Experiments.h"

#include "BenchEngine.h"
#include "BenchTelemetry.h"
#include "opt/BugHost.h"
#include "store/CampaignStore.h"
#include "triage/Triage.h"

#include <cstdio>
#include <memory>

using namespace spvfuzz;

int main(int argc, char **argv) {
  bool FaultyFleet = bench::parseFlag(argc, argv, "--faulty-fleet");
  bool GroundTruth = bench::parseFlag(argc, argv, "--ground-truth");
  std::vector<std::string> Footer = {"target.compiles",
                                     "campaign.reductions", "reducer.checks"};
  if (FaultyFleet) {
    Footer.push_back("harness.timeouts");
    Footer.push_back("harness.retries");
    Footer.push_back("harness.tool_errors");
    Footer.push_back("harness.quarantined");
    Footer.push_back("evalcache.flaky_consults");
  }
  if (GroundTruth) {
    Footer.push_back("triage.attributions");
    Footer.push_back("triage.exact");
    Footer.push_back("triage.bisection_checks");
  }
  bench::BenchTelemetry Telemetry(Footer,
                                  /*RateCounter=*/"campaign.reductions");
  size_t Jobs = bench::parseJobs(argc, argv);
  ExecutionPolicy Policy =
      ExecutionPolicy{}.withJobs(Jobs).withTransformationLimit(150);

  // `--store DIR` makes the bench durable: an interrupted regeneration
  // resumes with `--store DIR --resume` and prints the same table.
  std::unique_ptr<CampaignStore> Store;
  std::string StorePath = bench::parseString(argc, argv, "--store");
  if (!StorePath.empty()) {
    Policy.withStorePath(StorePath)
        .withResume(bench::parseFlag(argc, argv, "--resume"));
    std::string Error;
    Store = CampaignStore::open(StorePath, Policy, Error);
    if (!Store) {
      fprintf(stderr, "bench_table4_dedup: %s\n", Error.c_str());
      return 1;
    }
    if (Policy.Resume)
      Store->restoreMetrics();
  }

  CampaignEngine Engine(Policy, CorpusSpec{}, ToolsetSpec{},
                        FaultyFleet ? TargetFleet::faulty() : TargetFleet{});
  if (Store)
    Engine.setCheckpointer(Store.get());

  // Ground-truth mode captures every reduced reproducer as it is
  // committed (serial fold order, so the capture is deterministic at any
  // job count) for post-hoc attribution.
  struct CapturedRepro {
    ReductionRecord Record;
    Module Repro;
    ShaderInput Input;
  };
  std::vector<CapturedRepro> Reproducers;
  if (GroundTruth)
    Engine.setReproducerSink(
        [&Reproducers](const ReductionRecord &Record, const Module &,
                       const ShaderInput &Input, const Module &Reduced,
                       const TransformationSequence &) {
          Reproducers.push_back({Record, Reduced, Input});
        });

  ReductionConfig Config;
  Config.TestsPerTool = envSize("REPRO_TESTS", 500);
  Config.MaxReductionsPerTool = envSize("REPRO_REDUCTIONS", 260);
  Config.CapPerSignature = 6; // paper caps at 20 on GPU targets
  printf("Table 4: effectiveness of test-case deduplication "
         "(cap %zu reduced tests per signature%s)\n\n",
         Config.CapPerSignature,
         FaultyFleet ? ", faulty fleet" : "");
  bench::EngineTimer Timer(Jobs);
  DedupData Data = Engine.runDedup(Config);

  printf("%-14s %-7s %-6s %-9s %-10s %-6s\n", "Target", "Tests", "Sigs",
         "Reports", "Distinct", "Dups");
  printf("%.*s\n", 56,
         "--------------------------------------------------------");
  for (const DedupTargetResult &Row : Data.PerTarget)
    printf("%-14s %-7zu %-6zu %-9zu %-10zu %-6zu\n", Row.TargetName.c_str(),
           Row.Tests, Row.Sigs, Row.Reports, Row.Distinct, Row.Dups);
  printf("%.*s\n", 56,
         "--------------------------------------------------------");
  printf("%-14s %-7zu %-6zu %-9zu %-10zu %-6zu\n", "Total", Data.Total.Tests,
         Data.Total.Sigs, Data.Total.Reports, Data.Total.Distinct,
         Data.Total.Dups);

  double Coverage = Data.Total.Sigs
                        ? 100.0 * static_cast<double>(Data.Total.Distinct) /
                              static_cast<double>(Data.Total.Sigs)
                        : 0.0;
  double DupRate = Data.Total.Reports
                       ? 100.0 * static_cast<double>(Data.Total.Dups) /
                             static_cast<double>(Data.Total.Reports)
                       : 0.0;
  printf("\nSignature coverage: %.0f%%   duplicate rate: %.0f%%\n", Coverage,
         DupRate);
  printf("Shape to compare against the paper: a substantial share of the "
         "distinct signatures\ncovered at a low duplicate rate (paper: 53%% "
         "coverage, 16%% dups over 78 real bugs;\nour simulated bug space "
         "is smaller and its type fingerprints cleaner, so coverage\nruns "
         "higher).\n");

  if (GroundTruth) {
    // Attribute every captured reproducer to its culprit pass, then score
    // the three dedup axes against the injected bug identities.
    triage::TriageOptions TriageOpts;
    TriageOpts.Jobs = Jobs;
    std::vector<triage::TriageItem> Items;
    Items.reserve(Reproducers.size());
    for (const CapturedRepro &C : Reproducers) {
      triage::TriageItem Item;
      Item.TargetName = C.Record.TargetName;
      Item.Signature = C.Record.Signature;
      Item.Repro = C.Repro;
      Item.Input = C.Input;
      Items.push_back(std::move(Item));
    }
    std::vector<triage::BugAttribution> Attrs =
        triage::attributeAll(Engine.fleet(), Items, TriageOpts);

    std::vector<triage::GroundTruthItem> Scored;
    Scored.reserve(Attrs.size());
    size_t Solid = 0, SolidExact = 0;
    for (size_t I = 0; I < Attrs.size(); ++I) {
      const ReductionRecord &Record = Reproducers[I].Record;
      Scored.push_back(triage::groundTruthItemFor(Record, Attrs[I]));
      const Target *T = Engine.fleet().find(Record.TargetName);
      if (!T)
        continue;
      // Solid crash signatures have a knowable expected culprit — the
      // injected point's host pass — so attribution accuracy is exact.
      for (BugPoint P : T->spec().Bugs.all()) {
        if (Record.Signature != bugSignature(P))
          continue;
        if (T->spec().Bugs.flavor(P) == BugFlavor::Solid) {
          ++Solid;
          if (Attrs[I].Verdict == triage::TriageVerdict::ExactPass &&
              Attrs[I].Culprit == bugHostPass(P))
            ++SolidExact;
        }
        break;
      }
    }

    std::vector<triage::DedupAxisScore> Axes = triage::scoreDedupAxes(Scored);
    printf("\nGround-truth dedup quality (%zu reproducers, truth = "
           "injected bug identity):\n",
           Scored.size());
    printf("%-10s %-10s %-8s %-8s %-9s\n", "Axis", "Precision", "Recall",
           "Purity", "Clusters");
    for (const triage::DedupAxisScore &Axis : Axes)
      printf("%-10s %-10.3f %-8.3f %-8.3f %-9zu\n", Axis.Axis.c_str(),
             Axis.Precision, Axis.Recall, Axis.Purity, Axis.Clusters);
    printf("Exact-culprit attribution on solid crash bugs: %zu/%zu%s\n",
           SolidExact, Solid,
           (Solid && SolidExact == Solid) ? " (100%)" : "");

    telemetry::MetricsRegistry &Metrics =
        telemetry::MetricsRegistry::global();
    for (const triage::DedupAxisScore &Axis : Axes) {
      Metrics.set("dedup.groundtruth." + Axis.Axis + ".precision",
                  Axis.Precision);
      Metrics.set("dedup.groundtruth." + Axis.Axis + ".recall", Axis.Recall);
      Metrics.set("dedup.groundtruth." + Axis.Axis + ".purity", Axis.Purity);
    }
    Metrics.set("dedup.groundtruth.reproducers",
                static_cast<double>(Scored.size()));
    Metrics.set("dedup.groundtruth.solid_exact",
                Solid ? static_cast<double>(SolidExact) /
                            static_cast<double>(Solid)
                      : 1.0);
  }
  return 0;
}
