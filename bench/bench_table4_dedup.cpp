//===- bench/bench_table4_dedup.cpp - Regenerates Table 4 -----------------===//
//
// Part of the spirv-fuzz reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// RQ3: effectiveness of the transformation-type deduplication heuristic
/// (Figure 6 algorithm). Crash-triggering reduced tests per target (NVIDIA
/// excluded, as in the paper) are deduplicated; ground truth is the
/// injected crash signature. Paper totals: 1467 tests / 78 sigs /
/// 49 reports / 41 distinct / 8 dups.
///
//===----------------------------------------------------------------------===//

#include "campaign/Experiments.h"

#include "BenchEngine.h"
#include "BenchTelemetry.h"
#include "store/CampaignStore.h"

#include <cstdio>
#include <memory>

using namespace spvfuzz;

int main(int argc, char **argv) {
  bool FaultyFleet = bench::parseFlag(argc, argv, "--faulty-fleet");
  std::vector<std::string> Footer = {"target.compiles",
                                     "campaign.reductions", "reducer.checks"};
  if (FaultyFleet) {
    Footer.push_back("harness.timeouts");
    Footer.push_back("harness.retries");
    Footer.push_back("harness.tool_errors");
    Footer.push_back("harness.quarantined");
    Footer.push_back("evalcache.flaky_consults");
  }
  bench::BenchTelemetry Telemetry(Footer,
                                  /*RateCounter=*/"campaign.reductions");
  size_t Jobs = bench::parseJobs(argc, argv);
  ExecutionPolicy Policy =
      ExecutionPolicy{}.withJobs(Jobs).withTransformationLimit(150);

  // `--store DIR` makes the bench durable: an interrupted regeneration
  // resumes with `--store DIR --resume` and prints the same table.
  std::unique_ptr<CampaignStore> Store;
  std::string StorePath = bench::parseString(argc, argv, "--store");
  if (!StorePath.empty()) {
    Policy.withStorePath(StorePath)
        .withResume(bench::parseFlag(argc, argv, "--resume"));
    std::string Error;
    Store = CampaignStore::open(StorePath, Policy, Error);
    if (!Store) {
      fprintf(stderr, "bench_table4_dedup: %s\n", Error.c_str());
      return 1;
    }
    if (Policy.Resume)
      Store->restoreMetrics();
  }

  CampaignEngine Engine(Policy, CorpusSpec{}, ToolsetSpec{},
                        FaultyFleet ? TargetFleet::faulty() : TargetFleet{});
  if (Store)
    Engine.setCheckpointer(Store.get());
  ReductionConfig Config;
  Config.TestsPerTool = envSize("REPRO_TESTS", 500);
  Config.MaxReductionsPerTool = envSize("REPRO_REDUCTIONS", 260);
  Config.CapPerSignature = 6; // paper caps at 20 on GPU targets
  printf("Table 4: effectiveness of test-case deduplication "
         "(cap %zu reduced tests per signature%s)\n\n",
         Config.CapPerSignature,
         FaultyFleet ? ", faulty fleet" : "");
  bench::EngineTimer Timer(Jobs);
  DedupData Data = Engine.runDedup(Config);

  printf("%-14s %-7s %-6s %-9s %-10s %-6s\n", "Target", "Tests", "Sigs",
         "Reports", "Distinct", "Dups");
  printf("%.*s\n", 56,
         "--------------------------------------------------------");
  for (const DedupTargetResult &Row : Data.PerTarget)
    printf("%-14s %-7zu %-6zu %-9zu %-10zu %-6zu\n", Row.TargetName.c_str(),
           Row.Tests, Row.Sigs, Row.Reports, Row.Distinct, Row.Dups);
  printf("%.*s\n", 56,
         "--------------------------------------------------------");
  printf("%-14s %-7zu %-6zu %-9zu %-10zu %-6zu\n", "Total", Data.Total.Tests,
         Data.Total.Sigs, Data.Total.Reports, Data.Total.Distinct,
         Data.Total.Dups);

  double Coverage = Data.Total.Sigs
                        ? 100.0 * static_cast<double>(Data.Total.Distinct) /
                              static_cast<double>(Data.Total.Sigs)
                        : 0.0;
  double DupRate = Data.Total.Reports
                       ? 100.0 * static_cast<double>(Data.Total.Dups) /
                             static_cast<double>(Data.Total.Reports)
                       : 0.0;
  printf("\nSignature coverage: %.0f%%   duplicate rate: %.0f%%\n", Coverage,
         DupRate);
  printf("Shape to compare against the paper: a substantial share of the "
         "distinct signatures\ncovered at a low duplicate rate (paper: 53%% "
         "coverage, 16%% dups over 78 real bugs;\nour simulated bug space "
         "is smaller and its type fingerprints cleaner, so coverage\nruns "
         "higher).\n");
  return 0;
}
