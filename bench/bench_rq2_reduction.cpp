//===- bench/bench_rq2_reduction.cpp - Regenerates the ğ4.2 numbers -------===//
//
// Part of the spirv-fuzz reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// RQ2: quality of the "free" reduction vs the hand-crafted baseline
/// reducer, measured as the instruction-count delta between the original
/// program and the reduced variant (paper medians: 8 for spirv-fuzz vs 29
/// for glsl-fuzz, against unreduced deltas in the thousands). Reductions
/// run on the GPU-less targets, as in ğ4.2.
///
//===----------------------------------------------------------------------===//

#include "campaign/Experiments.h"
#include "core/ReductionPipeline.h"

#include "BenchEngine.h"
#include "BenchTelemetry.h"

#include <cstdio>

using namespace spvfuzz;

static void printToolSummary(const ReductionData &Data,
                             const std::string &Tool) {
  std::vector<ReductionRecord> Records = Data.forTool(Tool);
  if (Records.empty()) {
    printf("%-12s (no reductions)\n", Tool.c_str());
    return;
  }
  double TotalChecks = 0, TotalMinimized = 0;
  for (const ReductionRecord &Record : Records) {
    TotalChecks += static_cast<double>(Record.Checks);
    TotalMinimized += static_cast<double>(Record.MinimizedLength);
  }
  printf("%-12s reductions=%-4zu median-delta=%-7.1f "
         "median-unreduced-delta=%-8.1f mean-kept-transformations=%-6.1f "
         "mean-checks=%.1f\n",
         Tool.c_str(), Records.size(), ReductionData::medianDelta(Records),
         ReductionData::medianUnreducedDelta(Records),
         TotalMinimized / static_cast<double>(Records.size()),
         TotalChecks / static_cast<double>(Records.size()));
}

/// Per-record sequence-stage checks: total minus the post-reduce stage's.
static size_t sequenceChecks(const ReductionRecord &Record) {
  size_t Post = 0;
  for (const PostReducePassStats &Stat : Record.PostStats)
    Post += Stat.Checks;
  return Record.Checks - Post;
}

/// The paper-baseline vs configured-mode comparison table. Every number
/// here is decision data (serial checks, reduced sizes), so the lines are
/// identical at any job count.
static void printComparison(const ReductionData &Base,
                            const ReductionData &Data, CandidateOrder Order,
                            bool PostReduce) {
  printf("\n%s order%s vs paper baseline (same campaigns, same bugs):\n",
         candidateOrderName(Order), PostReduce ? " + post-reduce" : "");
  printf("%-12s %-6s %-13s %-13s %-9s %-11s %-10s %s\n", "Tool", "n",
         "paper-checks", "new-checks", "delta", "paper-size", "new-size",
         "post-checks");
  for (const char *Tool : {"spirv-fuzz", "glsl-fuzz"}) {
    std::vector<ReductionRecord> B = Base.forTool(Tool);
    std::vector<ReductionRecord> N = Data.forTool(Tool);
    if (B.empty() && N.empty())
      continue;
    double BaseChecks = 0, NewChecks = 0, PostChecks = 0;
    long BaseSize = 0, NewSize = 0;
    for (const ReductionRecord &Record : B) {
      BaseChecks += static_cast<double>(Record.Checks);
      BaseSize += static_cast<long>(Record.ReducedCount);
    }
    for (const ReductionRecord &Record : N) {
      NewChecks += static_cast<double>(sequenceChecks(Record));
      PostChecks += static_cast<double>(Record.Checks - sequenceChecks(Record));
      NewSize += static_cast<long>(Record.ReducedCount);
    }
    double MeanBase = B.empty() ? 0.0 : BaseChecks / (double)B.size();
    double MeanNew = N.empty() ? 0.0 : NewChecks / (double)N.size();
    double Delta =
        MeanBase > 0.0 ? (MeanBase - MeanNew) / MeanBase * 100.0 : 0.0;
    printf("%-12s %-6zu %-13.1f %-13.1f %-8.1f%% %-11ld %-10ld %.1f\n",
           Tool, N.size(), MeanBase, MeanNew, Delta, BaseSize, NewSize,
           N.empty() ? 0.0 : PostChecks / (double)N.size());
  }
}

int main(int argc, char **argv) {
  bool FaultyFleet = bench::parseFlag(argc, argv, "--faulty-fleet");
  bool PostReduce = bench::parseFlag(argc, argv, "--post-reduce");
  CandidateOrder Order = CandidateOrder::Paper;
  std::string OrderArg = bench::parseString(argc, argv, "--order");
  if (!OrderArg.empty() && !candidateOrderFromName(OrderArg, Order)) {
    fprintf(stderr, "unknown candidate order '%s'\n", OrderArg.c_str());
    return 1;
  }
  // Either knob switches the bench into comparison mode: a paper-baseline
  // run first, then the configured run, plus the delta table.
  bool Compare = Order != CandidateOrder::Paper || PostReduce;
  std::vector<std::string> Footer = {
      "target.compiles", "campaign.reductions", "reducer.checks",
      "baseline_reducer.checks", "reducer.speculative_checks",
      "evalcache.hits", "evalcache.misses", "replaycache.replays",
      "replaycache.transformations_skipped"};
  if (Order == CandidateOrder::Learned) {
    Footer.push_back("reducer.model.updates");
    Footer.push_back("reducer.model.reorders");
  }
  if (PostReduce) {
    Footer.push_back("reducer.postreduce.checks");
    Footer.push_back("reducer.postreduce.accepted");
  }
  if (FaultyFleet) {
    Footer.push_back("harness.timeouts");
    Footer.push_back("harness.retries");
    Footer.push_back("harness.tool_errors");
    Footer.push_back("harness.quarantined");
    Footer.push_back("evalcache.flaky_consults");
  }
  bench::BenchTelemetry Telemetry(Footer,
                                  /*RateCounter=*/"campaign.reductions");
  size_t Jobs = bench::parseJobs(argc, argv);
  ExecutionPolicy Policy =
      ExecutionPolicy{}.withJobs(Jobs).withTransformationLimit(150);
  // `--exec tree` routes every execution through the tree interpreter;
  // diffing its stdout against the default lowered run is the end-to-end
  // engine-equivalence check of EXPERIMENTS.md.
  std::string EngineArg = bench::parseString(argc, argv, "--exec");
  if (!EngineArg.empty()) {
    ExecEngine ExecSel = ExecEngine::Lowered;
    if (!execEngineFromName(EngineArg, ExecSel)) {
      fprintf(stderr, "unknown execution engine '%s'\n", EngineArg.c_str());
      return 1;
    }
    Policy.withEngine(ExecSel);
  }
  ExecutionPolicy ConfiguredPolicy = Policy;
  ConfiguredPolicy.withReduceOrder(Order).withPostReduce(PostReduce);
  CampaignEngine Engine(ConfiguredPolicy, CorpusSpec{}, ToolsetSpec{},
                        FaultyFleet ? TargetFleet::faulty() : TargetFleet{});
  ReductionConfig Config;
  Config.TestsPerTool = envSize("REPRO_TESTS", 300);
  Config.MaxReductionsPerTool = envSize("REPRO_REDUCTIONS", 120);
  if (FaultyFleet) {
    // The faulty rows on top of the default ğ4.2 GPU-less set. Pixel-3 is
    // GPU-typed and would otherwise be excluded; SwiftShader-old is
    // CPU-typed and already in gpulessNames.
    Config.TargetNames = Engine.fleet().gpulessNames();
    Config.TargetNames.push_back("Pixel-3");
  }
  printf("RQ2: test-case reduction quality (up to %zu reductions per tool, "
         "%s targets)\n\n",
         Config.MaxReductionsPerTool,
         FaultyFleet ? "GPU-less + faulty" : "GPU-less");
  bench::EngineTimer Timer(Jobs);
  ReductionData Data = Engine.runReductions(Config);

  printToolSummary(Data, "spirv-fuzz");
  printToolSummary(Data, "glsl-fuzz");

  if (Compare) {
    // Same seed, same corpus, paper-default reduction: the bugs and the
    // unreduced variants are identical, so the table isolates the cost
    // and size effect of the configured mode.
    CampaignEngine Baseline(Policy, CorpusSpec{}, ToolsetSpec{},
                            FaultyFleet ? TargetFleet::faulty()
                                        : TargetFleet{});
    ReductionData Base = Baseline.runReductions(Config);
    printComparison(Base, Data, Order, PostReduce);
  }

  printf("\nPer-reduction detail (delta = reduced variant size - original "
         "size):\n");
  printf("%-12s %-14s %-7s %-10s %-7s %s\n", "Tool", "Target", "Delta",
         "Unreduced", "Kept", "Signature");
  for (const ReductionRecord &Record : Data.Records)
    printf("%-12s %-14s %-7ld %-10ld %-7zu %s\n", Record.Tool.c_str(),
           Record.TargetName.c_str(), Record.delta(),
           Record.unreducedDelta(), Record.MinimizedLength,
           Record.Signature.c_str());

  printf("\nShape to compare against the paper: both reducers collapse "
         "multi-hundred-instruction\nvariants to near-original size, and "
         "spirv-fuzz's free reducer yields a smaller median\ndelta than the "
         "hand-crafted group-reverting baseline reducer (paper: 8 vs 29).\n");
  return 0;
}
