//===- bench/bench_table2_targets.cpp - Regenerates Table 2 ---------------===//
//
// Part of the spirv-fuzz reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Prints the target inventory of Table 2: name, version, GPU type, plus
/// the simulation-specific columns (pipeline length, injected bug count,
/// execution capability).
///
//===----------------------------------------------------------------------===//

#include "target/Target.h"

#include "BenchEngine.h"
#include "BenchTelemetry.h"

#include <cstdio>
#include <string>

using namespace spvfuzz;

/// "2 flaky, 1 hang" style summary of a target's fault model; "-" for a
/// fully solid row.
static std::string faultSummary(const TargetSpec &Spec) {
  size_t Flaky = 0, Hangs = 0;
  for (BugPoint Point : Spec.Bugs.all()) {
    BugFlavor Flavor = Spec.Bugs.flavor(Point);
    if (isFlakyFlavor(Flavor))
      ++Flaky;
    if (isHangFlavor(Flavor))
      ++Hangs;
  }
  std::string Out;
  if (Flaky)
    Out += std::to_string(Flaky) + " flaky";
  if (Hangs)
    Out += (Out.empty() ? "" : ", ") + std::to_string(Hangs) + " hang";
  if (Spec.Faults.ToolErrorRate > 0.0) {
    char Buffer[32];
    snprintf(Buffer, sizeof(Buffer), "err %.0f%%",
             Spec.Faults.ToolErrorRate * 100.0);
    Out += (Out.empty() ? "" : ", ") + std::string(Buffer);
  }
  return Out.empty() ? "-" : Out;
}

int main(int argc, char **argv) {
  // Inventory only — no campaign runs, so no footer counters; still
  // honours REPRO_METRICS_OUT for uniformity with the other binaries.
  bench::BenchTelemetry Telemetry({});
  bool FaultyFleet = bench::parseFlag(argc, argv, "--faulty-fleet");
  TargetFleet Fleet =
      FaultyFleet ? TargetFleet::faulty() : TargetFleet::standard();
  printf("Table 2: the SPIR-V targets we test (simulated%s)\n",
         FaultyFleet ? ", faulty fleet" : "");
  printf("%-14s %-22s %-11s %-8s %-6s %-5s %s\n", "Target", "Version",
         "GPU type", "Passes", "Bugs", "Exec", "Faults");
  printf("%.*s\n", 72,
         "------------------------------------------------------------------"
         "----------");
  for (const Target &T : Fleet) {
    const TargetSpec &Spec = T.spec();
    printf("%-14s %-22s %-11s %-8zu %-6zu %-5s %s\n", Spec.Name.c_str(),
           Spec.Version.c_str(), Spec.GpuType.c_str(), Spec.Pipeline.size(),
           Spec.Bugs.all().size(), Spec.CanExecute ? "yes" : "no",
           faultSummary(Spec).c_str());
  }
  printf("\nCrash-only targets (no execution): AMD-LLPC, spirv-opt, "
         "spirv-opt-old (as in the paper,\nwhich lacked an AMD GPU and notes "
         "spirv-opt is not a full Vulkan implementation).\n");
  return 0;
}
