//===- bench/bench_table2_targets.cpp - Regenerates Table 2 ---------------===//
//
// Part of the spirv-fuzz reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Prints the target inventory of Table 2: name, version, GPU type, plus
/// the simulation-specific columns (pipeline length, injected bug count,
/// execution capability). With `--throughput N` it additionally measures
/// execution-engine throughput: N generated modules, each compiled once
/// per executing target (artifacts shared through an ExecutableCache) and
/// run over a uniform-input matrix for several rounds. `--exec tree`
/// selects the tree-walking interpreter; the per-target result digests on
/// stdout are engine-independent, so
/// `diff <(bench --throughput N) <(bench --throughput N --exec tree)` is
/// the cross-engine equivalence check, and the `bench.throughput_per_sec`
/// gauge (exec.runs per wall second) in the REPRO_METRICS_OUT dump is the
/// speedup measurement.
///
//===----------------------------------------------------------------------===//

#include "campaign/Campaign.h"
#include "gen/Generator.h"
#include "target/ExecutableCache.h"
#include "target/Target.h"

#include "BenchEngine.h"
#include "BenchTelemetry.h"

#include <cstdio>
#include <string>
#include <vector>

using namespace spvfuzz;

/// "2 flaky, 1 hang" style summary of a target's fault model; "-" for a
/// fully solid row.
static std::string faultSummary(const TargetSpec &Spec) {
  size_t Flaky = 0, Hangs = 0;
  for (BugPoint Point : Spec.Bugs.all()) {
    BugFlavor Flavor = Spec.Bugs.flavor(Point);
    if (isFlakyFlavor(Flavor))
      ++Flaky;
    if (isHangFlavor(Flavor))
      ++Hangs;
  }
  std::string Out;
  if (Flaky)
    Out += std::to_string(Flaky) + " flaky";
  if (Hangs)
    Out += (Out.empty() ? "" : ", ") + std::to_string(Hangs) + " hang";
  if (Spec.Faults.ToolErrorRate > 0.0) {
    char Buffer[32];
    snprintf(Buffer, sizeof(Buffer), "err %.0f%%",
             Spec.Faults.ToolErrorRate * 100.0);
    Out += (Out.empty() ? "" : ", ") + std::string(Buffer);
  }
  return Out.empty() ? "-" : Out;
}

/// FNV-1a over the rendered result, so the digest is stable across builds
/// and identical whenever the two engines agree.
static uint64_t resultDigest(uint64_t Digest, const TargetRun &Run) {
  std::string Rendered = std::to_string(static_cast<int>(Run.RunOutcome)) +
                         Run.Signature + Run.Result.str();
  for (char C : Rendered)
    Digest = (Digest ^ static_cast<unsigned char>(C)) * 0x100000001b3ULL;
  return Digest;
}

/// Execution-engine throughput over \p NumModules generated modules ×
/// \p NumInputs uniform vectors × \p Rounds repeat rounds per executing
/// target. Rounds after the first hit the ExecutableCache, so the measured
/// path is runBatch over a shared artifact — the campaign's steady state.
static void runThroughput(const TargetFleet &Fleet, ExecEngine Engine,
                          size_t NumModules, size_t NumInputs, size_t Rounds) {
  ExecutableCache ExeCache(256ull << 20);
  printf("\nExecution throughput: %zu modules x %zu inputs x %zu rounds\n",
         NumModules, NumInputs, Rounds);
  std::vector<GeneratedProgram> Programs;
  for (size_t I = 0; I < NumModules; ++I)
    Programs.push_back(generateProgram(1000 + I));
  for (const Target &T : Fleet) {
    if (!T.canExecute() || !T.spec().deterministic())
      continue;
    uint64_t Digest = 0xcbf29ce484222325ULL;
    RunContext Ctx;
    Ctx.Engine = Engine;
    Ctx.ExeCache = &ExeCache;
    for (const GeneratedProgram &Program : Programs) {
      std::vector<ShaderInput> Matrix =
          uniformInputMatrix(Program.Input, NumInputs, 1000);
      for (size_t Round = 0; Round < Rounds; ++Round)
        for (const TargetRun &Run : T.runBatch(Program.M, Matrix, Ctx))
          Digest = resultDigest(Digest, Run);
    }
    printf("  %-14s digest=%016llx\n", T.spec().Name.c_str(),
           static_cast<unsigned long long>(Digest));
  }
}

int main(int argc, char **argv) {
  size_t NumModules = 0;
  std::string ThroughputArg = bench::parseString(argc, argv, "--throughput");
  if (!ThroughputArg.empty())
    NumModules = std::strtoull(ThroughputArg.c_str(), nullptr, 10);
  // Inventory-only runs print no footer counters, keeping the default
  // stdout byte-identical to the pre-throughput bench; still honours
  // REPRO_METRICS_OUT for uniformity with the other binaries.
  bench::BenchTelemetry Telemetry(
      NumModules ? std::vector<std::string>{"exec.runs", "exec.steps",
                                            "target.compiles"}
                 : std::vector<std::string>{},
      NumModules ? "exec.runs" : "");
  bool FaultyFleet = bench::parseFlag(argc, argv, "--faulty-fleet");
  TargetFleet Fleet =
      FaultyFleet ? TargetFleet::faulty() : TargetFleet::standard();
  printf("Table 2: the SPIR-V targets we test (simulated%s)\n",
         FaultyFleet ? ", faulty fleet" : "");
  printf("%-14s %-22s %-11s %-8s %-6s %-5s %s\n", "Target", "Version",
         "GPU type", "Passes", "Bugs", "Exec", "Faults");
  printf("%.*s\n", 72,
         "------------------------------------------------------------------"
         "----------");
  for (const Target &T : Fleet) {
    const TargetSpec &Spec = T.spec();
    printf("%-14s %-22s %-11s %-8zu %-6zu %-5s %s\n", Spec.Name.c_str(),
           Spec.Version.c_str(), Spec.GpuType.c_str(), Spec.Pipeline.size(),
           Spec.Bugs.all().size(), Spec.CanExecute ? "yes" : "no",
           faultSummary(Spec).c_str());
  }
  printf("\nCrash-only targets (no execution): AMD-LLPC, spirv-opt, "
         "spirv-opt-old (as in the paper,\nwhich lacked an AMD GPU and notes "
         "spirv-opt is not a full Vulkan implementation).\n");

  if (NumModules) {
    ExecEngine Engine = ExecEngine::Lowered;
    std::string EngineArg = bench::parseString(argc, argv, "--exec");
    if (!EngineArg.empty() && !execEngineFromName(EngineArg, Engine)) {
      fprintf(stderr, "unknown execution engine '%s'\n", EngineArg.c_str());
      return 1;
    }
    size_t NumInputs = 16, Rounds = 8;
    std::string InputsArg = bench::parseString(argc, argv, "--inputs");
    if (!InputsArg.empty())
      NumInputs = std::strtoull(InputsArg.c_str(), nullptr, 10);
    std::string RoundsArg = bench::parseString(argc, argv, "--rounds");
    if (!RoundsArg.empty())
      Rounds = std::strtoull(RoundsArg.c_str(), nullptr, 10);
    fprintf(stderr, "engine: %s\n", execEngineName(Engine));
    runThroughput(Fleet, Engine, NumModules, NumInputs, Rounds);
  }
  return 0;
}
