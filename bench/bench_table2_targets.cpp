//===- bench/bench_table2_targets.cpp - Regenerates Table 2 ---------------===//
//
// Part of the spirv-fuzz reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Prints the target inventory of Table 2: name, version, GPU type, plus
/// the simulation-specific columns (pipeline length, injected bug count,
/// execution capability).
///
//===----------------------------------------------------------------------===//

#include "target/Target.h"

#include "BenchTelemetry.h"

#include <cstdio>

using namespace spvfuzz;

int main() {
  // Inventory only — no campaign runs, so no footer counters; still
  // honours REPRO_METRICS_OUT for uniformity with the other binaries.
  bench::BenchTelemetry Telemetry({});
  printf("Table 2: the SPIR-V targets we test (simulated)\n");
  printf("%-14s %-22s %-11s %-8s %-6s %-5s\n", "Target", "Version", "GPU type",
         "Passes", "Bugs", "Exec");
  printf("%.*s\n", 72,
         "------------------------------------------------------------------"
         "----------");
  for (const Target &T : standardTargets()) {
    const TargetSpec &Spec = T.spec();
    printf("%-14s %-22s %-11s %-8zu %-6zu %-5s\n", Spec.Name.c_str(),
           Spec.Version.c_str(), Spec.GpuType.c_str(), Spec.Pipeline.size(),
           Spec.Bugs.all().size(), Spec.CanExecute ? "yes" : "no");
  }
  printf("\nCrash-only targets (no execution): AMD-LLPC, spirv-opt, "
         "spirv-opt-old (as in the paper,\nwhich lacked an AMD GPU and notes "
         "spirv-opt is not a full Vulkan implementation).\n");
  return 0;
}
