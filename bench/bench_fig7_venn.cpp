//===- bench/bench_fig7_venn.cpp - Regenerates Figure 7 -------------------===//
//
// Part of the spirv-fuzz reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// RQ1 complementarity: the Venn-diagram regions of Figure 7 — how many
/// distinct bug signatures were found by each combination of spirv-fuzz
/// (A), spirv-fuzz-simple (B) and glsl-fuzz (C), per target and overall.
///
//===----------------------------------------------------------------------===//

#include "campaign/Experiments.h"

#include "BenchEngine.h"
#include "BenchTelemetry.h"

#include <cstdio>

using namespace spvfuzz;

int main(int argc, char **argv) {
  bench::BenchTelemetry Telemetry(
      {"campaign.tests", "target.compiles", "exec.runs"},
      /*RateCounter=*/"campaign.tests");
  size_t Jobs = bench::parseJobs(argc, argv);
  CampaignEngine Engine(
      ExecutionPolicy{}.withJobs(Jobs).withTransformationLimit(250));
  BugFindingConfig Config;
  Config.TestsPerTool = envSize("REPRO_TESTS", 600);
  printf("Figure 7: complementarity of spirv-fuzz (A), spirv-fuzz-simple "
         "(B), glsl-fuzz (C)\n(%zu tests per tool)\n\n",
         Config.TestsPerTool);
  bench::EngineTimer Timer(Jobs);
  BugFindingData Data = Engine.runBugFinding(Config);

  printf("%-14s %6s %6s %6s %6s %6s %6s %6s\n", "Target", "A", "B", "C",
         "AB", "AC", "BC", "ABC");
  printf("%.*s\n", 66,
         "------------------------------------------------------------------");
  std::vector<std::string> Rows = Data.TargetNames;
  Rows.push_back("All");
  for (const std::string &TargetName : Rows) {
    VennCounts Venn = vennForTarget(Data, TargetName);
    printf("%-14s %6zu %6zu %6zu %6zu %6zu %6zu %6zu\n", TargetName.c_str(),
           Venn.OnlyA, Venn.OnlyB, Venn.OnlyC, Venn.AB, Venn.AC, Venn.BC,
           Venn.ABC);
  }
  printf("\nShape to compare against the paper: the spirv-fuzz "
         "configurations dominate, with\nglsl-fuzz complementary (an "
         "exclusive region appears at larger REPRO_TESTS as its\n"
         "wrap-specific trigger surfaces); A+B >> C throughout.\n");
  return 0;
}
