//===- bench/bench_micro.cpp - Engineering microbenchmarks ----------------===//
//
// Part of the spirv-fuzz reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// google-benchmark timings for the building blocks: program generation,
/// validation, interpretation, fuzzing, compilation, sequence replay and
/// reduction. Not a paper table; engineering-health numbers.
///
//===----------------------------------------------------------------------===//

#include "analysis/Validator.h"
#include "campaign/Campaign.h"
#include "core/Fuzzer.h"
#include "core/Reducer.h"
#include "exec/Interpreter.h"
#include "gen/Generator.h"

#include <benchmark/benchmark.h>

using namespace spvfuzz;

namespace {

const GeneratedProgram &sharedProgram() {
  static GeneratedProgram Program = generateProgram(7);
  return Program;
}

bool variantHasKill(const Module &M) {
  for (const Function &Func : M.Functions)
    for (const BasicBlock &Block : Func.Blocks)
      for (const Instruction &Inst : Block.Body)
        if (Inst.Opcode == Op::Kill)
          return true;
  return false;
}

const FuzzResult &sharedFuzz() {
  static FuzzResult Result = [] {
    const GeneratedProgram &Program = sharedProgram();
    static std::vector<GeneratedProgram> DonorPrograms =
        generateCorpus(3, 99);
    std::vector<const Module *> Donors;
    for (const GeneratedProgram &Donor : DonorPrograms)
      Donors.push_back(&Donor.M);
    FuzzerOptions Options;
    Options.TransformationLimit = 200;
    // Pick the first seed whose variant contains a Kill so that the
    // reduction benchmark has a non-trivial interestingness target.
    for (uint64_t Seed = 7;; ++Seed) {
      FuzzResult Candidate =
          fuzz(Program.M, Program.Input, Donors, Seed, Options);
      if (variantHasKill(Candidate.Variant))
        return Candidate;
    }
  }();
  return Result;
}

void BM_GenerateProgram(benchmark::State &State) {
  uint64_t Seed = 0;
  for (auto _ : State)
    benchmark::DoNotOptimize(generateProgram(Seed++).M.Bound);
}
BENCHMARK(BM_GenerateProgram);

void BM_ValidateModule(benchmark::State &State) {
  const Module &M = sharedFuzz().Variant;
  for (auto _ : State)
    benchmark::DoNotOptimize(validateModule(M).size());
}
BENCHMARK(BM_ValidateModule);

void BM_Interpret(benchmark::State &State) {
  const GeneratedProgram &Program = sharedProgram();
  for (auto _ : State)
    benchmark::DoNotOptimize(
        interpret(Program.M, Program.Input).Outputs.size());
}
BENCHMARK(BM_Interpret);

void BM_FuzzProgram(benchmark::State &State) {
  const GeneratedProgram &Program = sharedProgram();
  std::vector<const Module *> Donors;
  FuzzerOptions Options;
  Options.TransformationLimit = 150;
  uint64_t Seed = 0;
  for (auto _ : State)
    benchmark::DoNotOptimize(
        fuzz(Program.M, Program.Input, Donors, Seed++, Options)
            .Sequence.size());
}
BENCHMARK(BM_FuzzProgram);

void BM_ReplaySequence(benchmark::State &State) {
  const GeneratedProgram &Program = sharedProgram();
  const FuzzResult &Fuzzed = sharedFuzz();
  for (auto _ : State) {
    Module Replayed = Program.M;
    FactManager Facts;
    Facts.setKnownInput(Program.Input);
    benchmark::DoNotOptimize(
        applySequence(Replayed, Facts, Fuzzed.Sequence).size());
  }
}
BENCHMARK(BM_ReplaySequence);

void BM_TargetCompile(benchmark::State &State) {
  const FuzzResult &Fuzzed = sharedFuzz();
  TargetFleet Fleet = TargetFleet::standard();
  const Target &SwiftShader = Fleet[Fleet.size() - 1];
  for (auto _ : State) {
    Module Optimized;
    benchmark::DoNotOptimize(
        SwiftShader.compile(Fuzzed.Variant, Optimized).has_value());
  }
}
BENCHMARK(BM_TargetCompile);

void BM_ReduceSequence(benchmark::State &State) {
  const GeneratedProgram &Program = sharedProgram();
  const FuzzResult &Fuzzed = sharedFuzz();
  // A synthetic interestingness test: "a Kill instruction is present".
  InterestingnessTest Test = [](const Module &Variant, const FactManager &) {
    for (const Function &Func : Variant.Functions)
      for (const BasicBlock &Block : Func.Blocks)
        for (const Instruction &Inst : Block.Body)
          if (Inst.Opcode == Op::Kill)
            return true;
    return false;
  };
  for (auto _ : State)
    benchmark::DoNotOptimize(
        reduceSequence(Program.M, Program.Input, Fuzzed.Sequence, Test)
            .Minimized.size());
}
BENCHMARK(BM_ReduceSequence);

} // namespace

BENCHMARK_MAIN();
