//===- bench/bench_micro.cpp - Engineering microbenchmarks ----------------===//
//
// Part of the spirv-fuzz reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// google-benchmark timings for the building blocks: program generation,
/// validation, interpretation, fuzzing, compilation, sequence replay and
/// reduction. Not a paper table; engineering-health numbers.
///
//===----------------------------------------------------------------------===//

#include "analysis/Validator.h"
#include "campaign/Campaign.h"
#include "core/Fuzzer.h"
#include "core/ReductionPipeline.h"
#include "exec/Executable.h"
#include "exec/Interpreter.h"
#include "gen/Generator.h"
#include "support/Telemetry.h"

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

using namespace spvfuzz;

namespace {

const GeneratedProgram &sharedProgram() {
  static GeneratedProgram Program = generateProgram(7);
  return Program;
}

bool variantHasKill(const Module &M) {
  for (const Function &Func : M.Functions)
    for (const BasicBlock &Block : Func.Blocks)
      for (const Instruction &Inst : Block.Body)
        if (Inst.Opcode == Op::Kill)
          return true;
  return false;
}

const FuzzResult &sharedFuzz() {
  static FuzzResult Result = [] {
    const GeneratedProgram &Program = sharedProgram();
    static std::vector<GeneratedProgram> DonorPrograms =
        generateCorpus(3, 99);
    std::vector<const Module *> Donors;
    for (const GeneratedProgram &Donor : DonorPrograms)
      Donors.push_back(&Donor.M);
    FuzzerOptions Options;
    Options.TransformationLimit = 200;
    // Pick the first seed whose variant contains a Kill so that the
    // reduction benchmark has a non-trivial interestingness target.
    for (uint64_t Seed = 7;; ++Seed) {
      FuzzResult Candidate =
          fuzz(Program.M, Program.Input, Donors, Seed, Options);
      if (variantHasKill(Candidate.Variant))
        return Candidate;
    }
  }();
  return Result;
}

void BM_GenerateProgram(benchmark::State &State) {
  uint64_t Seed = 0;
  for (auto _ : State)
    benchmark::DoNotOptimize(generateProgram(Seed++).M.Bound);
}
BENCHMARK(BM_GenerateProgram);

void BM_ValidateModule(benchmark::State &State) {
  const Module &M = sharedFuzz().Variant;
  for (auto _ : State)
    benchmark::DoNotOptimize(validateModule(M).size());
}
BENCHMARK(BM_ValidateModule);

void BM_Interpret(benchmark::State &State) {
  const GeneratedProgram &Program = sharedProgram();
  for (auto _ : State)
    benchmark::DoNotOptimize(
        interpret(Program.M, Program.Input).Outputs.size());
}
BENCHMARK(BM_Interpret);

void BM_LowerModule(benchmark::State &State) {
  const GeneratedProgram &Program = sharedProgram();
  for (auto _ : State)
    benchmark::DoNotOptimize(
        Executable::compile(Program.M, ExecEngine::Lowered)->approxBytes());
}
BENCHMARK(BM_LowerModule);

void BM_LoweredRun(benchmark::State &State) {
  const GeneratedProgram &Program = sharedProgram();
  std::shared_ptr<const Executable> Exe =
      Executable::compile(Program.M, ExecEngine::Lowered);
  for (auto _ : State)
    benchmark::DoNotOptimize(Exe->run(Program.Input).Outputs.size());
}
BENCHMARK(BM_LoweredRun);

void BM_LoweredRunBatch(benchmark::State &State) {
  // 32 perturbed inputs per batch: the amortised steady state of campaign
  // scans. Report per-run time so the batch numbers compare directly with
  // BM_Interpret / BM_LoweredRun.
  const GeneratedProgram &Program = sharedProgram();
  std::shared_ptr<const Executable> Exe =
      Executable::compile(Program.M, ExecEngine::Lowered);
  std::vector<ShaderInput> Matrix =
      uniformInputMatrix(Program.Input, 32, 7);
  for (auto _ : State)
    benchmark::DoNotOptimize(Exe->runBatch(Matrix).size());
  State.SetItemsProcessed(static_cast<int64_t>(State.iterations()) *
                          static_cast<int64_t>(Matrix.size()));
}
BENCHMARK(BM_LoweredRunBatch);

void BM_FuzzProgram(benchmark::State &State) {
  const GeneratedProgram &Program = sharedProgram();
  std::vector<const Module *> Donors;
  FuzzerOptions Options;
  Options.TransformationLimit = 150;
  uint64_t Seed = 0;
  for (auto _ : State)
    benchmark::DoNotOptimize(
        fuzz(Program.M, Program.Input, Donors, Seed++, Options)
            .Sequence.size());
}
BENCHMARK(BM_FuzzProgram);

void BM_ReplaySequence(benchmark::State &State) {
  const GeneratedProgram &Program = sharedProgram();
  const FuzzResult &Fuzzed = sharedFuzz();
  for (auto _ : State) {
    Module Replayed = Program.M;
    FactManager Facts;
    Facts.setKnownInput(Program.Input);
    benchmark::DoNotOptimize(
        applySequence(Replayed, Facts, Fuzzed.Sequence).size());
  }
}
BENCHMARK(BM_ReplaySequence);

void BM_TargetCompile(benchmark::State &State) {
  const FuzzResult &Fuzzed = sharedFuzz();
  TargetFleet Fleet = TargetFleet::standard();
  const Target &SwiftShader = Fleet[Fleet.size() - 1];
  for (auto _ : State) {
    Module Optimized;
    benchmark::DoNotOptimize(
        SwiftShader.compile(Fuzzed.Variant, Optimized).has_value());
  }
}
BENCHMARK(BM_TargetCompile);

void BM_ReduceSequence(benchmark::State &State) {
  const GeneratedProgram &Program = sharedProgram();
  const FuzzResult &Fuzzed = sharedFuzz();
  // A synthetic interestingness test: "a Kill instruction is present".
  InterestingnessTest Test = [](const Module &Variant, const FactManager &) {
    for (const Function &Func : Variant.Functions)
      for (const BasicBlock &Block : Func.Blocks)
        for (const Instruction &Inst : Block.Body)
          if (Inst.Opcode == Op::Kill)
            return true;
    return false;
  };
  for (auto _ : State)
    benchmark::DoNotOptimize(
        ReductionPipeline(ReductionPlan{})
            .run(Program.M, Program.Input, Fuzzed.Sequence, Test)
            .Minimized.size());
}
BENCHMARK(BM_ReduceSequence);

/// Fixed-workload dispatch throughput for the regression gate: the same
/// module run the same number of times through the tree interpreter and
/// the lowered engine, timed separately. Published as `*_runs_per_sec`
/// gauges (judged by `minispv report --compare`) plus the deterministic
/// exec.* counters, and dumped to REPRO_METRICS_OUT — the committed
/// snapshot is bench/baselines/BENCH_interp.json.
void dumpDispatchThroughput(const char *Path) {
  telemetry::MetricsRegistry &Metrics = telemetry::MetricsRegistry::global();
  Metrics.setEnabled(true);
  const GeneratedProgram &Program = sharedProgram();
  std::vector<ShaderInput> Matrix = uniformInputMatrix(Program.Input, 32, 7);
  constexpr size_t Rounds = 64;

  auto Start = std::chrono::steady_clock::now();
  size_t TreeOutputs = 0;
  for (size_t Round = 0; Round < Rounds; ++Round)
    for (const ShaderInput &Input : Matrix)
      TreeOutputs += interpret(Program.M, Input).Outputs.size();
  double TreeSeconds = std::chrono::duration<double>(
                           std::chrono::steady_clock::now() - Start)
                           .count();

  Start = std::chrono::steady_clock::now();
  std::shared_ptr<const Executable> Exe =
      Executable::compile(Program.M, ExecEngine::Lowered);
  size_t LoweredOutputs = 0;
  for (size_t Round = 0; Round < Rounds; ++Round)
    for (const ExecResult &Result : Exe->runBatch(Matrix))
      LoweredOutputs += Result.Outputs.size();
  double LoweredSeconds = std::chrono::duration<double>(
                              std::chrono::steady_clock::now() - Start)
                              .count();

  if (TreeOutputs != LoweredOutputs)
    fprintf(stderr, "warning: engines disagree (%zu vs %zu outputs)\n",
            TreeOutputs, LoweredOutputs);
  double Runs = static_cast<double>(Rounds * Matrix.size());
  Metrics.set("bench.wall_seconds", TreeSeconds + LoweredSeconds);
  if (TreeSeconds > 0.0)
    Metrics.set("interp.tree_runs_per_sec", Runs / TreeSeconds);
  if (LoweredSeconds > 0.0) {
    Metrics.set("interp.lowered_runs_per_sec", Runs / LoweredSeconds);
    // Speedup is a ratio, not a judged gauge; informational only.
    if (TreeSeconds > 0.0)
      Metrics.set("interp.lowered_speedup", LoweredSeconds > 0.0
                                                ? TreeSeconds / LoweredSeconds
                                                : 0.0);
  }
  std::string Error;
  if (!telemetry::writeGlobalMetrics(Path, Error))
    fprintf(stderr, "warning: failed to write metrics: %s\n", Error.c_str());
  else
    fprintf(stderr, "wrote metrics to %s (render with: minispv report)\n",
            Path);
}

} // namespace

int main(int argc, char **argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv))
    return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  // The google-benchmark loops above run with telemetry disabled (the
  // fast path they are meant to measure); the gate workload below turns
  // the registry on only for its own fixed run counts.
  if (const char *Path = std::getenv("REPRO_METRICS_OUT"))
    dumpDispatchThroughput(Path);
  return 0;
}
