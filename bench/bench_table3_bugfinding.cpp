//===- bench/bench_table3_bugfinding.cpp - Regenerates Table 3 ------------===//
//
// Part of the spirv-fuzz reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// RQ1: bug-finding ability of spirv-fuzz vs spirv-fuzz-simple vs
/// glsl-fuzz. Prints, per target: total distinct bug signatures over all
/// tests, the median over disjoint test groups, and the one-sided
/// Mann-Whitney U confidences of Table 3. Scaled by REPRO_TESTS
/// (default 400 tests per tool; the paper used 10,000).
///
/// Scale-out mode: `--scaleout 1,4 --store DIR --minispv PATH` runs the
/// same campaign once per worker count — serial in-process for 1, a
/// ServeCoordinator spawning `minispv worker` processes otherwise — and
/// publishes `scaleout.w<K>.wall_seconds` / `scaleout.w<K>.tests_per_sec`
/// gauges into the REPRO_METRICS_OUT dump, which is what `minispv report
/// --compare bench/baselines/BENCH_scaleout.json` gates on.
///
//===----------------------------------------------------------------------===//

#include "campaign/Experiments.h"
#include "serve/Coordinator.h"
#include "store/CampaignStore.h"

#include "BenchEngine.h"
#include "BenchTelemetry.h"

#include <chrono>
#include <cstdio>
#include <memory>

#include <sys/stat.h>

using namespace spvfuzz;

namespace {

ExecutionPolicy scaleoutPolicy(const std::string &StoreDir) {
  return ExecutionPolicy{}.withTransformationLimit(250).withStorePath(
      StoreDir);
}

/// One full campaign at \p Workers worker processes over a fresh store
/// subdirectory; returns the wall seconds or a negative value on failure.
double runAtWorkerCount(size_t Workers, const std::string &StoreDir,
                        const std::string &MinispvPath, size_t Tests) {
  const std::string Dir = StoreDir + "/w" + std::to_string(Workers);
  ExecutionPolicy Policy = scaleoutPolicy(Dir);
  std::string Error;
  std::unique_ptr<CampaignStore> Store = CampaignStore::open(Dir, Policy, Error);
  if (!Store) {
    fprintf(stderr, "scaleout: cannot open store %s: %s\n", Dir.c_str(),
            Error.c_str());
    return -1.0;
  }
  CampaignEngine Engine(Policy);
  Engine.setCheckpointer(Store.get());

  std::unique_ptr<serve::ServeCoordinator> Coordinator;
  if (Workers > 1) {
    serve::ServeOptions SOpts;
    SOpts.StoreDir = Dir;
    SOpts.Workers = Workers;
    SOpts.WorkerJobs = 1;
    SOpts.MinispvPath = MinispvPath;
    // Generous TTL: a spurious expiry costs a recomputation, which would
    // pollute the wall-clock measurement.
    SOpts.LeaseTtlMs = 30000;
    SOpts.PollMs = 5;
    Coordinator = std::make_unique<serve::ServeCoordinator>(Engine, SOpts);
    serve::WorkerConfigMsg WC;
    WC.CampaignId = Store->campaignId();
    WC.Seed = Policy.Seed;
    WC.TransformationLimit = Policy.TransformationLimit;
    WC.TargetDeadlineSteps = Policy.TargetDeadlineSteps;
    WC.FlakyRetries = Policy.FlakyRetries;
    WC.QuarantineThreshold = Policy.QuarantineThreshold;
    WC.Engine = static_cast<uint8_t>(Policy.Engine);
    WC.UniformInputs = Policy.UniformInputs;
    WC.Tests = Tests;
    WC.LeaseTtlMs = SOpts.LeaseTtlMs;
    if (!Coordinator->start(WC, Error)) {
      fprintf(stderr, "scaleout: %s\n", Error.c_str());
      return -1.0;
    }
    Engine.setShardProvider(Coordinator.get());
  }

  BugFindingConfig Config;
  Config.TestsPerTool = Tests;
  auto Start = std::chrono::steady_clock::now();
  BugFindingData Data = Engine.runBugFinding(Config);
  double Seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - Start)
          .count();
  if (Coordinator)
    Coordinator->shutdown();
  size_t TotalTests = Data.ToolNames.size() * Tests;
  telemetry::MetricsRegistry &Metrics = telemetry::MetricsRegistry::global();
  const std::string Prefix = "scaleout.w" + std::to_string(Workers);
  Metrics.set(Prefix + ".wall_seconds", Seconds);
  if (Seconds > 0.0)
    Metrics.set(Prefix + ".tests_per_sec",
                static_cast<double>(TotalTests) / Seconds);
  return Seconds;
}

int runScaleout(const std::string &Spec, int argc, char **argv) {
  bench::BenchTelemetry Telemetry({"campaign.tests", "exec.runs"});
  const std::string StoreDir = bench::parseString(argc, argv, "--store");
  if (StoreDir.empty()) {
    fprintf(stderr, "scaleout: --store DIR is required\n");
    return 2;
  }
  ::mkdir(StoreDir.c_str(), 0755); // per-K stores live underneath
  std::string MinispvPath = bench::parseString(argc, argv, "--minispv");
  if (MinispvPath.empty())
    if (const char *Env = std::getenv("REPRO_MINISPV"))
      MinispvPath = Env;

  std::vector<size_t> Counts;
  for (size_t Pos = 0; Pos < Spec.size();) {
    size_t Comma = Spec.find(',', Pos);
    if (Comma == std::string::npos)
      Comma = Spec.size();
    char *End = nullptr;
    unsigned long long K = strtoull(Spec.substr(Pos, Comma - Pos).c_str(),
                                    &End, 10);
    if (!K) {
      fprintf(stderr, "scaleout: bad worker count in '%s'\n", Spec.c_str());
      return 1;
    }
    Counts.push_back(static_cast<size_t>(K));
    Pos = Comma + 1;
  }
  for (size_t K : Counts)
    if (K > 1 && MinispvPath.empty()) {
      // /proc/self/exe would re-exec this bench, not minispv.
      fprintf(stderr,
              "scaleout: --minispv PATH (or REPRO_MINISPV) is required for "
              "worker counts > 1\n");
      return 2;
    }

  size_t Tests = envSize("REPRO_TESTS", 600);
  printf("Table 3 scale-out: %zu tests per tool\n", Tests);
  double Reference = -1.0;
  for (size_t K : Counts) {
    double Seconds = runAtWorkerCount(K, StoreDir, MinispvPath, Tests);
    if (Seconds < 0.0)
      return 2;
    if (Reference < 0.0)
      Reference = Seconds;
    printf("scaleout: workers=%zu wall=%.2fs speedup=%.2fx\n", K, Seconds,
           Reference / Seconds);
  }
  return 0;
}

} // namespace

int main(int argc, char **argv) {
  const std::string Scaleout = bench::parseString(argc, argv, "--scaleout");
  if (!Scaleout.empty())
    return runScaleout(Scaleout, argc, argv);
  bench::BenchTelemetry Telemetry(
      {"campaign.tests", "target.compiles", "exec.runs"},
      /*RateCounter=*/"campaign.tests");
  size_t Jobs = bench::parseJobs(argc, argv);
  CampaignEngine Engine(
      ExecutionPolicy{}.withJobs(Jobs).withTransformationLimit(250));
  BugFindingConfig Config;
  Config.TestsPerTool = envSize("REPRO_TESTS", 600);
  printf("Table 3: bug-finding ability (%zu tests per tool, %zu groups)\n\n",
         Config.TestsPerTool, Config.NumGroups);
  bench::EngineTimer Timer(Jobs);
  BugFindingData Data = Engine.runBugFinding(Config);

  printf("%-14s | %-17s | %-17s | %-17s | %-22s | %-20s\n", "",
         "spirv-fuzz", "spirv-fuzz-simple", "glsl-fuzz",
         "beats simple? (conf)", "beats glsl? (conf)");
  printf("%-14s | %-8s %-8s | %-8s %-8s | %-8s %-8s |\n", "Target", "Total",
         "Median", "Total", "Median", "Total", "Median");
  printf("%.*s\n", 120,
         "----------------------------------------------------------------"
         "----------------------------------------------------------------");

  auto Row = [&](const std::string &Name, const ToolTargetStats &Full,
                 const ToolTargetStats &Simple, const ToolTargetStats &Glsl) {
    MannWhitneyResult VsSimple =
        mannWhitneyU(Full.groupCounts(), Simple.groupCounts());
    MannWhitneyResult VsGlsl =
        mannWhitneyU(Full.groupCounts(), Glsl.groupCounts());
    printf("%-14s | %-8zu %-8.1f | %-8zu %-8.1f | %-8zu %-8.1f | "
           "%-3s (%6.2f%%)         | %-3s (%6.2f%%)\n",
           Name.c_str(), Full.Distinct.size(), median(Full.groupCounts()),
           Simple.Distinct.size(), median(Simple.groupCounts()),
           Glsl.Distinct.size(), median(Glsl.groupCounts()),
           VsSimple.AWins ? "Yes" : "No", VsSimple.ConfidenceAGreater,
           VsGlsl.AWins ? "Yes" : "No", VsGlsl.ConfidenceAGreater);
  };

  for (const std::string &TargetName : Data.TargetNames)
    Row(TargetName, Data.Stats["spirv-fuzz"][TargetName],
        Data.Stats["spirv-fuzz-simple"][TargetName],
        Data.Stats["glsl-fuzz"][TargetName]);
  Row("All", Data.allTargets("spirv-fuzz"),
      Data.allTargets("spirv-fuzz-simple"), Data.allTargets("glsl-fuzz"));

  printf("\nPaper's shape to compare against: spirv-fuzz beats glsl-fuzz "
         "overall with very high\nconfidence; spirv-fuzz vs "
         "spirv-fuzz-simple is positive but less clear-cut.\n");
  return 0;
}
