//===- bench/bench_table3_bugfinding.cpp - Regenerates Table 3 ------------===//
//
// Part of the spirv-fuzz reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// RQ1: bug-finding ability of spirv-fuzz vs spirv-fuzz-simple vs
/// glsl-fuzz. Prints, per target: total distinct bug signatures over all
/// tests, the median over disjoint test groups, and the one-sided
/// Mann-Whitney U confidences of Table 3. Scaled by REPRO_TESTS
/// (default 400 tests per tool; the paper used 10,000).
///
//===----------------------------------------------------------------------===//

#include "campaign/Experiments.h"

#include "BenchEngine.h"
#include "BenchTelemetry.h"

#include <cstdio>

using namespace spvfuzz;

int main(int argc, char **argv) {
  bench::BenchTelemetry Telemetry(
      {"campaign.tests", "target.compiles", "exec.runs"},
      /*RateCounter=*/"campaign.tests");
  size_t Jobs = bench::parseJobs(argc, argv);
  CampaignEngine Engine(
      ExecutionPolicy{}.withJobs(Jobs).withTransformationLimit(250));
  BugFindingConfig Config;
  Config.TestsPerTool = envSize("REPRO_TESTS", 600);
  printf("Table 3: bug-finding ability (%zu tests per tool, %zu groups)\n\n",
         Config.TestsPerTool, Config.NumGroups);
  bench::EngineTimer Timer(Jobs);
  BugFindingData Data = Engine.runBugFinding(Config);

  printf("%-14s | %-17s | %-17s | %-17s | %-22s | %-20s\n", "",
         "spirv-fuzz", "spirv-fuzz-simple", "glsl-fuzz",
         "beats simple? (conf)", "beats glsl? (conf)");
  printf("%-14s | %-8s %-8s | %-8s %-8s | %-8s %-8s |\n", "Target", "Total",
         "Median", "Total", "Median", "Total", "Median");
  printf("%.*s\n", 120,
         "----------------------------------------------------------------"
         "----------------------------------------------------------------");

  auto Row = [&](const std::string &Name, const ToolTargetStats &Full,
                 const ToolTargetStats &Simple, const ToolTargetStats &Glsl) {
    MannWhitneyResult VsSimple =
        mannWhitneyU(Full.groupCounts(), Simple.groupCounts());
    MannWhitneyResult VsGlsl =
        mannWhitneyU(Full.groupCounts(), Glsl.groupCounts());
    printf("%-14s | %-8zu %-8.1f | %-8zu %-8.1f | %-8zu %-8.1f | "
           "%-3s (%6.2f%%)         | %-3s (%6.2f%%)\n",
           Name.c_str(), Full.Distinct.size(), median(Full.groupCounts()),
           Simple.Distinct.size(), median(Simple.groupCounts()),
           Glsl.Distinct.size(), median(Glsl.groupCounts()),
           VsSimple.AWins ? "Yes" : "No", VsSimple.ConfidenceAGreater,
           VsGlsl.AWins ? "Yes" : "No", VsGlsl.ConfidenceAGreater);
  };

  for (const std::string &TargetName : Data.TargetNames)
    Row(TargetName, Data.Stats["spirv-fuzz"][TargetName],
        Data.Stats["spirv-fuzz-simple"][TargetName],
        Data.Stats["glsl-fuzz"][TargetName]);
  Row("All", Data.allTargets("spirv-fuzz"),
      Data.allTargets("spirv-fuzz-simple"), Data.allTargets("glsl-fuzz"));

  printf("\nPaper's shape to compare against: spirv-fuzz beats glsl-fuzz "
         "overall with very high\nconfidence; spirv-fuzz vs "
         "spirv-fuzz-simple is positive but less clear-cut.\n");
  return 0;
}
