//===- target/ExecutableCache.cpp - Shared compiled artifacts -------------===//
//
// Part of the spirv-fuzz reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "target/ExecutableCache.h"

#include "support/ModuleHash.h"

using namespace spvfuzz;

size_t ExecutableCache::KeyHasher::operator()(const Key &K) const {
  return static_cast<size_t>(StructuralHasher::mix(
      K.ArtifactId ^ (static_cast<uint64_t>(K.Engine) << 56)));
}

std::shared_ptr<const TargetArtifact>
ExecutableCache::getOrCompile(const Target &T, const Module &M,
                              ExecEngine Engine, uint64_t ModuleHash) {
  Key K{T.artifactId(ModuleHash), Engine};
  std::shared_ptr<const TargetArtifact> Cached;
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    auto It = Index.find(K);
    if (It != Index.end()) {
      ++Hits;
      Lru.splice(Lru.begin(), Lru, It->second);
      Cached = It->second->Art;
    } else {
      ++Misses;
    }
  }
  if (Cached) {
    // Replay outside the lock; the registry locks internally.
    T.replayCompileMetrics(*Cached);
    return Cached;
  }

  // Compile outside the lock: pipelines are the expensive part and the
  // artifact is deterministic, so a racing duplicate compile is wasted
  // work, not wrong results.
  std::shared_ptr<const TargetArtifact> Art = T.compile(M, Engine);

  const size_t Bytes = Art->approxBytes();
  if (Bytes > BudgetBytes)
    return Art; // covers the budget-0 "cache disabled" case

  std::lock_guard<std::mutex> Lock(Mutex);
  if (Index.count(K))
    return Art; // racing insert of the same (deterministic) artifact
  while (BytesUsed + Bytes > BudgetBytes && !Lru.empty()) {
    BytesUsed -= Lru.back().Bytes;
    Index.erase(Lru.back().K);
    Lru.pop_back();
    ++Evictions;
  }
  Lru.push_front(Entry{K, Art, Bytes});
  Index.emplace(K, Lru.begin());
  BytesUsed += Bytes;
  return Art;
}

size_t ExecutableCache::bytesUsed() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return BytesUsed;
}

size_t ExecutableCache::entryCount() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return Lru.size();
}

uint64_t ExecutableCache::hitCount() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return Hits;
}

uint64_t ExecutableCache::missCount() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return Misses;
}

uint64_t ExecutableCache::evictionCount() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return Evictions;
}
