//===- target/ExecutableCache.h - Shared compiled artifacts -----*- C++ -*-===//
//
// Part of the spirv-fuzz reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A thread-safe LRU cache of TargetArtifacts keyed by (artifact id,
/// engine). Campaign evaluation compiles the same module on the same
/// target over and over — every test re-runs its reference program, every
/// failed chunk removal in delta debugging regenerates an already-seen
/// variant — and for a *deterministic* target the artifact is a pure
/// function of the module, so the pipeline and the register-bytecode
/// lowering need only happen once per distinct module.
///
/// Cache hits replay the compile-side counters a fresh compile would have
/// bumped (Target::replayCompileMetrics), so counter totals stay exactly
/// what they would be with no cache at all — independent of job count and
/// hit/miss interleaving, which the campaign determinism gates assert.
/// Only wall-time histograms (opt.pass_time_us) reflect real compiles.
/// Hit/miss/eviction tallies are exposed through accessors, deliberately
/// not through the registry.
///
//===----------------------------------------------------------------------===//

#ifndef TARGET_EXECUTABLECACHE_H
#define TARGET_EXECUTABLECACHE_H

#include "target/Target.h"

#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>

namespace spvfuzz {

/// Thread-safe LRU cache of compiled target artifacts, bounded by an
/// approximate byte budget. A budget of 0 disables storage (every call
/// compiles fresh). Compilation happens outside the lock; a racing miss on
/// the same key may compile twice, but each call still bumps compile
/// counters exactly once, so totals are schedule-independent.
class ExecutableCache {
public:
  explicit ExecutableCache(size_t BudgetBytes) : BudgetBytes(BudgetBytes) {}

  ExecutableCache(const ExecutableCache &) = delete;
  ExecutableCache &operator=(const ExecutableCache &) = delete;

  /// The artifact of compiling \p M (whose structural hash is
  /// \p ModuleHash) on \p T for \p Engine — cached, or compiled and
  /// cached. \p T must be deterministic (the caller's responsibility: a
  /// flaky target's artifact depends on the attempt draw and must not be
  /// frozen). A hit replays compile metrics; a miss compiles and bumps
  /// them for real.
  std::shared_ptr<const TargetArtifact>
  getOrCompile(const Target &T, const Module &M, ExecEngine Engine,
               uint64_t ModuleHash);

  size_t bytesUsed() const;
  size_t entryCount() const;
  uint64_t hitCount() const;
  uint64_t missCount() const;
  uint64_t evictionCount() const;

private:
  struct Key {
    uint64_t ArtifactId = 0;
    ExecEngine Engine = ExecEngine::Lowered;

    bool operator==(const Key &Other) const {
      return ArtifactId == Other.ArtifactId && Engine == Other.Engine;
    }
  };
  struct KeyHasher {
    size_t operator()(const Key &K) const;
  };
  struct Entry {
    Key K;
    std::shared_ptr<const TargetArtifact> Art;
    size_t Bytes = 0;
  };

  mutable std::mutex Mutex;
  const size_t BudgetBytes;
  size_t BytesUsed = 0;
  uint64_t Hits = 0;
  uint64_t Misses = 0;
  uint64_t Evictions = 0;
  /// Front = most recently used.
  std::list<Entry> Lru;
  std::unordered_map<Key, std::list<Entry>::iterator, KeyHasher> Index;
};

} // namespace spvfuzz

#endif // TARGET_EXECUTABLECACHE_H
