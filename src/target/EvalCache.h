//===- target/EvalCache.h - Memoized target evaluations ---------*- C++ -*-===//
//
// Part of the spirv-fuzz reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Memoization of Target::run outcomes. A *deterministic* target is a pure
/// function of (module, input) — so an outcome can be replayed from a
/// cache keyed by (artifact id, input hash), where the artifact id
/// (Target::artifactId) already encodes both the structural module hash
/// and the target identity, instead of re-running the pipeline. Flaky-flavored targets are not pure
/// attempt-free: memoizing them would silently freeze one sample as truth,
/// so CachedTarget refuses to (bypassing the cache and raising the
/// evalcache.flaky_consults alarm counter, which CI asserts stays zero);
/// the Harness is the supported way to run faulty targets. Delta-debugging reduction re-evaluates many
/// identical variants (failed chunk removals regenerate the same module),
/// and the dedup phase re-runs modules the reduction phase already ran;
/// both hit this cache.
///
/// Because the memoized function is deterministic, a hit returns exactly
/// what a miss would have computed: cache state (and therefore budget,
/// eviction order, or cross-thread interleaving) can never change a
/// reduction or dedup result, only its cost. Hit/miss/eviction counters
/// are published through telemetry as evalcache.*.
///
//===----------------------------------------------------------------------===//

#ifndef TARGET_EVALCACHE_H
#define TARGET_EVALCACHE_H

#include "target/Target.h"

#include <list>
#include <mutex>
#include <span>
#include <unordered_map>

namespace spvfuzz {

/// Thread-safe LRU cache of TargetRun outcomes, bounded by an approximate
/// byte budget. A budget of 0 disables the cache (every lookup misses and
/// nothing is stored).
class EvalCache {
public:
  explicit EvalCache(size_t BudgetBytes) : BudgetBytes(BudgetBytes) {}

  EvalCache(const EvalCache &) = delete;
  EvalCache &operator=(const EvalCache &) = delete;

  /// True (and fills \p Out) iff an outcome for the key is cached; a hit
  /// refreshes the entry's LRU position. \p ArtifactId is
  /// Target::artifactId of the module's structural hash.
  bool lookup(uint64_t ArtifactId, uint64_t InputHash, TargetRun &Out);

  /// Caches \p Run under the key, evicting least-recently-used entries
  /// until the byte budget holds. No-op when the budget is 0 or the entry
  /// alone exceeds it.
  void insert(uint64_t ArtifactId, uint64_t InputHash, const TargetRun &Run);

  size_t bytesUsed() const;
  size_t entryCount() const;
  uint64_t hitCount() const;
  uint64_t missCount() const;

private:
  struct Key {
    uint64_t ArtifactId = 0;
    uint64_t InputHash = 0;

    bool operator==(const Key &Other) const {
      return ArtifactId == Other.ArtifactId && InputHash == Other.InputHash;
    }
  };
  struct KeyHasher {
    size_t operator()(const Key &K) const;
  };
  struct Entry {
    Key K;
    TargetRun Run;
    size_t Bytes = 0;
  };

  mutable std::mutex Mutex;
  const size_t BudgetBytes;
  size_t BytesUsed = 0;
  uint64_t Hits = 0;
  uint64_t Misses = 0;
  /// Front = most recently used.
  std::list<Entry> Lru;
  std::unordered_map<Key, std::list<Entry>::iterator, KeyHasher> Index;
};

/// A Target plus an EvalCache, presenting the same run() interface as
/// Target so it drops into the interestingness-test factories of
/// core/Reducer.h and the campaign scan loop. Both referents must outlive
/// the wrapper; run() is thread-safe (Target::run is const and pure, the
/// cache locks internally).
class CachedTarget {
public:
  CachedTarget(const Target &T, EvalCache &Cache)
      : Inner(&T), Cache(&Cache) {}

  const std::string &name() const { return Inner->name(); }
  const TargetSpec &spec() const { return Inner->spec(); }
  bool canExecute() const { return Inner->canExecute(); }
  const Target &target() const { return *Inner; }

  TargetRun run(const Module &M, const ShaderInput &Input) const;

  /// Per-input memoized batch: element i equals run(M, Inputs[i]). The
  /// cache key is per (artifact, input), so batching here is a loop.
  std::vector<TargetRun> runBatch(const Module &M,
                                  std::span<const ShaderInput> Inputs) const {
    std::vector<TargetRun> Runs;
    Runs.reserve(Inputs.size());
    for (const ShaderInput &Input : Inputs)
      Runs.push_back(run(M, Input));
    return Runs;
  }

private:
  const Target *Inner;
  EvalCache *Cache;
};

} // namespace spvfuzz

#endif // TARGET_EVALCACHE_H
