//===- target/Target.h - Simulated compiler targets -------------*- C++ -*-===//
//
// Part of the spirv-fuzz reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The simulated device fleet of Table 2. Each target couples an optimizer
/// pipeline with a set of injected bugs (the controlled ground truth) and,
/// for targets that can execute, the reference interpreter standing in for
/// the GPU. Crash-only targets model offline compilers (and the
/// SwiftShader-style configurations the reduction/dedup experiments run
/// on GPU-less machines).
///
/// The fleet is not a clean lab: the faulty rows model the paper's field
/// conditions — drivers that wedge (hangs become timeouts under a step
/// budget), bugs that fire intermittently (flaky flavors, resolved by a
/// seeded per-attempt draw so campaigns stay bit-identical), and
/// toolchains that fail outright (tool errors). The Harness wraps these
/// with retry/voting and quarantine.
///
//===----------------------------------------------------------------------===//

#ifndef TARGET_TARGET_H
#define TARGET_TARGET_H

#include "exec/Executable.h"
#include "exec/Interpreter.h"
#include "opt/Passes.h"

#include <functional>
#include <memory>
#include <span>
#include <string>
#include <vector>

namespace spvfuzz {

class ExecutableCache;

/// The unified outcome of handing one module to one target. This replaces
/// the old TargetRun::Kind / ExecStatus::Fault split: every consumer asks
/// one question — is this run interesting? — through isInteresting()
/// instead of comparing kinds and signatures piecemeal.
enum class Outcome : uint8_t {
  Executed,  ///< compilation succeeded (Result valid iff canExecute())
  Crash,     ///< the compiler aborted; Signature identifies the bug
  Timeout,   ///< the pipeline or execution spun past the step budget
  ToolError, ///< the toolchain failed outright (infrastructure, not a bug)
};

/// The single policy point for "does this outcome make a test a bug
/// candidate". Crashes and timeouts are bugs worth reducing; tool errors
/// are infrastructure noise and clean executions only become interesting
/// through the differential (miscompilation) check.
inline bool isInteresting(Outcome O) {
  return O == Outcome::Crash || O == Outcome::Timeout;
}

/// Human-readable outcome name for CLI/bench rendering.
const char *outcomeName(Outcome O);

/// The signature shared by all timeout runs — timeouts reduce and dedup
/// like crashes, under one bucket per target.
extern const char *const TimeoutSignature;
/// The signature carried by tool-error runs (never a bug report).
extern const char *const ToolErrorSignature;

/// The outcome of one target run.
struct TargetRun {
  Outcome RunOutcome = Outcome::Executed;
  std::string Signature;
  ExecResult Result;

  /// True if this run is a bug candidate (crash or timeout).
  bool interesting() const { return isInteresting(RunOutcome); }
  /// True if compilation and (where modelled) execution completed, i.e.
  /// Result is meaningful for differential comparison.
  bool executed() const { return RunOutcome == Outcome::Executed; }
};

/// Per-attempt context for a target run. All fault draws are pure
/// functions of the fields here plus the module/input, so identical
/// contexts always reproduce identical runs regardless of thread count.
struct RunContext {
  /// Campaign seed the flaky/tool-error draws key on.
  uint64_t CampaignSeed = 0;
  /// Which retry attempt this is (0 = first); flaky draws differ by it.
  uint32_t Attempt = 0;
  /// Simulated compile/execute step budget; 0 = unlimited. Hang-flavored
  /// bugs and oversized pipelines surface as Outcome::Timeout against it.
  uint64_t StepBudget = 0;
  /// Which execution engine compiled artifacts run on. Lowered and Tree
  /// produce byte-identical ExecResults (exec/Executable.h's contract);
  /// the knob exists for the differential gate and for benchmarks.
  ExecEngine Engine = ExecEngine::Lowered;
  /// Optional shared artifact cache. Only consulted for deterministic
  /// targets (a flaky bug resolution changes the compiled artifact, so
  /// those always compile fresh); hits replay compile-side counters so
  /// metric totals are independent of hit/miss scheduling.
  ExecutableCache *ExeCache = nullptr;
};

/// The immutable product of compiling one module on one target: the
/// pipeline verdict plus (for executing targets) an Executable artifact.
/// One artifact amortizes the pipeline and the register-bytecode lowering
/// across every input it is run on — the batched-evaluation story — and is
/// safe to share across threads (Executable::run keeps per-thread state).
struct TargetArtifact {
  /// Structural hash of the *source* module this artifact was compiled
  /// from.
  uint64_t ModuleHash = 0;
  /// Dense identity of (target, source module): Target::artifactId. Keys
  /// the ExecutableCache and the EvalCache.
  uint64_t ArtifactId = 0;
  /// The crash signature, if an injected bug fired during the pipeline.
  PassCrash Crash;
  /// True if Crash is hang-flavored (surfaces as Timeout, not Crash).
  bool HangCrash = false;
  /// Simulated compile cost of the source module (budget accounting).
  uint64_t CompileCost = 0;
  /// The passes that actually ran, in order (the pipeline prefix up to and
  /// including a crashing pass). Replayed into opt.pass_runs.* counters on
  /// cache hits.
  std::vector<OptPassKind> PassesRun;
  /// The compiled module, ready to execute; null for crash-only targets
  /// and for crashed compiles.
  std::shared_ptr<const Executable> Exe;

  size_t approxBytes() const;
};

/// Pure seeded draw: does a flaky-flavored bug fire on this attempt?
/// Deterministic in (Seed, ModuleHash, Point, Attempt).
bool flakyBugFires(uint64_t Seed, uint64_t ModuleHash, BugPoint Point,
                   uint32_t Attempt);

/// Pure seeded draw: does the toolchain fail outright on this attempt?
/// Deterministic in (Seed, ModuleHash, TargetName, Attempt, Rate).
bool toolErrorFires(uint64_t Seed, uint64_t ModuleHash,
                    const std::string &TargetName, uint32_t Attempt,
                    double Rate);

/// Reliability model of a target's toolchain/device. All-zero for the
/// solid Table 2 rows; the faulty fleet rows set these.
struct FaultSpec {
  /// Per-attempt probability that the toolchain fails outright before the
  /// compiler runs (the phone that needs a reboot). Drawn deterministically
  /// from (seed, module, target, attempt).
  double ToolErrorRate = 0.0;
};

/// Static description of one simulated target (one row of Table 2).
struct TargetSpec {
  std::string Name;
  std::string Version;
  /// The GPU model, or "-" for targets that only compile.
  std::string GpuType;
  /// The optimizer pipeline this target's compiler runs.
  std::vector<OptPassKind> Pipeline;
  /// The injected bugs this target's compiler carries.
  BugHost Bugs;
  /// The target's infrastructure reliability model.
  FaultSpec Faults;
  /// Whether the target can execute compiled modules (GPU present).
  bool CanExecute = true;

  /// True if identical (module, input, context-with-attempt-0) runs always
  /// produce identical outcomes without consulting the attempt draw — the
  /// precondition for attempt-free memoization (EvalCache).
  bool deterministic() const {
    return Faults.ToolErrorRate == 0.0 && !Bugs.hasNondeterministic();
  }
  /// True if the target models any field fault (flaky/hang flavors or a
  /// nonzero tool-error rate).
  bool faulty() const {
    return Faults.ToolErrorRate > 0.0 || Bugs.hasFaultFlavors();
  }
};

/// One simulated target: compiles via its pipeline into an Executable
/// artifact and, if a GPU is modelled, executes it through the execution
/// engine (exec/Executable.h).
class Target {
public:
  explicit Target(TargetSpec Spec) : Spec(std::move(Spec)) {}

  const std::string &name() const { return Spec.Name; }
  const TargetSpec &spec() const { return Spec; }
  bool canExecute() const { return Spec.CanExecute; }

  /// Runs the target's pipeline over a copy of \p M, leaving the result in
  /// \p OptimizedOut. Returns the crash signature if an injected bug fired.
  PassCrash compile(const Module &M, Module &OptimizedOut) const;

  /// Runs only the first \p PrefixLength passes of the pipeline over a
  /// copy of \p M, under an explicit bug host \p Bugs (pass solidBugs()
  /// for the attempt-free view), leaving the intermediate module in
  /// \p OptimizedOut. Stops at the first crash, like the full pipeline.
  /// This is the triage subsystem's probe primitive: because the pipeline
  /// halts at its first crash, "some pass in [0, k) crashes" is monotone
  /// in k, which makes pass-sequence bisection sound.
  PassCrash compilePrefix(const Module &M, size_t PrefixLength,
                          const BugHost &Bugs, Module &OptimizedOut) const;

  /// The deterministic view of this target's bug host: every
  /// flaky-flavored bug removed (solid and hang flavors survive). Pipeline
  /// runs under this host are pure functions of the module, which is the
  /// determinism contract triage attribution relies on.
  BugHost solidBugs() const;

  /// Compiles \p M into a shareable artifact under this target's static
  /// bug host (the deterministic, attempt-0 view): runs the pipeline,
  /// records the pass trail, and — when the target executes and the
  /// pipeline did not crash — lowers the optimized module for \p Engine.
  std::shared_ptr<const TargetArtifact> compile(const Module &M,
                                                ExecEngine Engine) const;

  /// Dense identity of (this target, source module hash). Stable across
  /// processes; keys artifact and evaluation caches.
  uint64_t artifactId(uint64_t ModuleHash) const;

  /// Re-applies the compile-side counters a fresh compile of \p Art would
  /// have bumped (target.compiles[.*], target.crashes.*, opt.pass_runs.*,
  /// opt.bug_triggers.*), so ExecutableCache hits leave counter totals
  /// schedule-independent. Timing histograms are not replayed.
  void replayCompileMetrics(const TargetArtifact &Art) const;

  /// Compiles \p M and, if this target can execute, runs the optimized
  /// module on \p Input. Equivalent to run(M, Input, RunContext{}): no
  /// step budget, attempt 0 — on the solid fleet this is the full story.
  TargetRun run(const Module &M, const ShaderInput &Input) const;

  /// One attempt under a fault context: resolves flaky draws for
  /// \p Ctx.Attempt, maps hang-flavored crashes and budget exhaustion to
  /// Outcome::Timeout, and surfaces tool errors. Pure in (M, Input, Ctx).
  /// Equivalent to runBatch(M, {Input}, Ctx)[0].
  TargetRun run(const Module &M, const ShaderInput &Input,
                const RunContext &Ctx) const;

  /// One attempt over a whole uniform-input matrix: the pipeline (and the
  /// tool-error/flaky draws, which do not depend on the input) run once,
  /// the compiled artifact executes once per input. Compile-side outcomes
  /// (Crash/Timeout/ToolError) replicate across all results; per-input
  /// step-budget exhaustion maps to Timeout individually. Element i equals
  /// what run(M, Inputs[i], Ctx) would return. Returns one TargetRun per
  /// input, in order.
  std::vector<TargetRun> runBatch(const Module &M,
                                  std::span<const ShaderInput> Inputs,
                                  const RunContext &Ctx) const;

  /// Convenience: runBatch under a default context (no budget, attempt 0).
  std::vector<TargetRun> runBatch(const Module &M,
                                  std::span<const ShaderInput> Inputs) const {
    return runBatch(M, Inputs, RunContext());
  }

private:
  std::shared_ptr<const TargetArtifact>
  compileWith(const Module &M, const BugHost &Bugs, ExecEngine Engine,
              uint64_t ModuleHash) const;

  TargetSpec Spec;
};

/// The device fleet: named lookup, faultiness/capability filtering, and
/// iteration over an ordered set of targets.
class TargetFleet {
public:
  using const_iterator = std::vector<Target>::const_iterator;

  TargetFleet() = default;

  /// The nine solid targets of Table 2, SwiftShader last. Exactly three
  /// are crash-only (AMD-LLPC, spirv-opt, spirv-opt-old).
  static TargetFleet standard();

  /// The standard fleet plus the faulty rows (Pixel-3, SwiftShader-old):
  /// flaky/hang-flavored bugs and nonzero tool-error rates.
  static TargetFleet faulty();

  TargetFleet &add(Target T) {
    Targets.push_back(std::move(T));
    return *this;
  }

  bool empty() const { return Targets.empty(); }
  size_t size() const { return Targets.size(); }
  const Target &operator[](size_t I) const { return Targets[I]; }
  const_iterator begin() const { return Targets.begin(); }
  const_iterator end() const { return Targets.end(); }
  const std::vector<Target> &targets() const { return Targets; }

  /// Named lookup; nullptr if absent.
  const Target *find(const std::string &Name) const;

  /// All target names, in fleet order.
  std::vector<std::string> names() const;

  /// The targets usable on GPU-less machines (the reduction/dedup
  /// experiments' default fleet): crash-only compilers plus CPU
  /// rasterizers, in fleet order.
  std::vector<std::string> gpulessNames() const;

  /// A new fleet holding only the targets \p Keep accepts, in order.
  TargetFleet filter(const std::function<bool(const Target &)> &Keep) const;

private:
  std::vector<Target> Targets;
};

} // namespace spvfuzz

#endif // TARGET_TARGET_H
