//===- target/Target.h - Simulated compiler targets -------------*- C++ -*-===//
//
// Part of the spirv-fuzz reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The simulated device fleet of Table 2. Each target couples an optimizer
/// pipeline with a set of injected bugs (the controlled ground truth) and,
/// for targets that can execute, the reference interpreter standing in for
/// the GPU. Crash-only targets model offline compilers (and the
/// SwiftShader-style configurations the reduction/dedup experiments run
/// on GPU-less machines).
///
//===----------------------------------------------------------------------===//

#ifndef TARGET_TARGET_H
#define TARGET_TARGET_H

#include "exec/Interpreter.h"
#include "opt/Passes.h"

#include <string>
#include <vector>

namespace spvfuzz {

/// The outcome of handing one module to one target: either the compiler
/// crashed with a signature, or compilation succeeded and — on targets
/// that can execute — the optimized module was run.
struct TargetRun {
  enum class Kind : uint8_t {
    Crash,    ///< the compiler aborted; Signature identifies the bug
    Executed, ///< compilation succeeded (Result valid iff canExecute())
  };
  Kind RunKind = Kind::Executed;
  std::string Signature;
  ExecResult Result;
};

/// Static description of one simulated target (one row of Table 2).
struct TargetSpec {
  std::string Name;
  std::string Version;
  /// The GPU model, or "-" for targets that only compile.
  std::string GpuType;
  /// The optimizer pipeline this target's compiler runs.
  std::vector<OptPassKind> Pipeline;
  /// The injected bugs this target's compiler carries.
  BugHost Bugs;
  /// Whether the target can execute compiled modules (GPU present).
  bool CanExecute = true;
};

/// One simulated target: compiles via its pipeline and, if a GPU is
/// modelled, executes via the reference interpreter.
class Target {
public:
  explicit Target(TargetSpec Spec) : Spec(std::move(Spec)) {}

  const std::string &name() const { return Spec.Name; }
  const TargetSpec &spec() const { return Spec; }
  bool canExecute() const { return Spec.CanExecute; }

  /// Runs the target's pipeline over a copy of \p M, leaving the result in
  /// \p OptimizedOut. Returns the crash signature if an injected bug fired.
  PassCrash compile(const Module &M, Module &OptimizedOut) const;

  /// Compiles \p M and, if this target can execute, runs the optimized
  /// module on \p Input.
  TargetRun run(const Module &M, const ShaderInput &Input) const;

private:
  TargetSpec Spec;
};

/// The nine standard targets of Table 2, SwiftShader last. Exactly three
/// are crash-only (AMD-LLPC, spirv-opt, spirv-opt-old).
std::vector<Target> standardTargets();

/// The targets usable on GPU-less machines (the reduction/dedup
/// experiments' default fleet).
std::vector<std::string> gpulessTargetNames();

} // namespace spvfuzz

#endif // TARGET_TARGET_H
