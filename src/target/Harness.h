//===- target/Harness.h - Fault-tolerant target execution -------*- C++ -*-===//
//
// Part of the spirv-fuzz reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The fault-tolerant execution harness over the device fleet. The paper's
/// campaigns ran against real drivers that hung, crashed flakily and
/// needed reboots; the harness turns that reality back into something a
/// deterministic campaign can consume:
///
///  * every run carries a step budget, so wedged pipelines surface as
///    Outcome::Timeout instead of never returning;
///  * runs against nondeterministic (flaky) targets are retried and put to
///    a vote — an interesting verdict must reproduce on a majority of
///    attempts, the paper's "reliably reproducible" requirement — and are
///    never memoized (one sample is not truth);
///  * a per-target circuit breaker quarantines a target after enough
///    consecutive hard tool errors, sidelining it from subsequent waves.
///
/// Because every fault draw is a pure function of (campaign seed, module,
/// attempt), HarnessedTarget::run is itself a pure function of
/// (module, input): campaigns over the faulty fleet stay bit-identical at
/// any job count. Counters: harness.timeouts, harness.retries,
/// harness.tool_errors, harness.quarantined.
///
//===----------------------------------------------------------------------===//

#ifndef TARGET_HARNESS_H
#define TARGET_HARNESS_H

#include "target/EvalCache.h"
#include "target/ExecutableCache.h"
#include "target/Target.h"

#include <map>
#include <mutex>
#include <span>

namespace spvfuzz {

/// Knobs of the fault-tolerance harness (ExecutionPolicy mirrors these).
struct HarnessPolicy {
  /// Campaign seed the per-attempt fault draws key on.
  uint64_t CampaignSeed = 0;
  /// Simulated step budget per target attempt; 0 = unlimited. The default
  /// matches the interpreter's own step limit, so solid targets behave
  /// exactly as if unharnessed.
  uint64_t TargetDeadlineSteps = 1ull << 22;
  /// Attempts per run on nondeterministic targets: the voting pool n. An
  /// interesting verdict must reproduce on a strict majority (n/2 + 1).
  uint32_t FlakyRetries = 5;
  /// Consecutive hard tool-error runs before a target is quarantined.
  uint32_t QuarantineThreshold = 3;
  /// Which execution engine targets run compiled artifacts on. Lowered and
  /// Tree produce byte-identical results; see exec/Executable.h.
  ExecEngine Engine = ExecEngine::Lowered;
};

/// One target wrapped with the harness's deadline, retry/voting and
/// memoization policy. Presents the same run(M, Input) interface as
/// Target, so it drops into the interestingness-test factories of
/// core/Reducer.h and the campaign scan loop unchanged. run() is pure in
/// (module, input) for a fixed policy, and thread-safe.
class HarnessedTarget {
public:
  /// \p Cache, if given, memoizes runs — but only for deterministic
  /// targets; flaky outcomes always bypass it. \p ExeC, if given, shares
  /// compiled artifacts across runs of the same module (safe for any view:
  /// hits replay compile counters, so totals stay schedule-independent).
  HarnessedTarget(const Target &T, const HarnessPolicy &Policy,
                  EvalCache *Cache = nullptr, ExecutableCache *ExeC = nullptr)
      : Inner(&T), Policy(Policy), Cache(Cache), ExeC(ExeC) {}

  const std::string &name() const { return Inner->name(); }
  const TargetSpec &spec() const { return Inner->spec(); }
  bool canExecute() const { return Inner->canExecute(); }
  const Target &target() const { return *Inner; }
  bool deterministic() const { return Inner->spec().deterministic(); }

  /// The harnessed verdict: single (possibly memoized) attempt for
  /// deterministic targets; majority vote over FlakyRetries attempts for
  /// nondeterministic ones. A ToolError verdict means the attempts were
  /// dominated by hard toolchain failures (circuit-breaker material).
  TargetRun run(const Module &M, const ShaderInput &Input) const;

  /// The whole uniform-input matrix in one harnessed attempt: element i
  /// equals run(M, Inputs[i]). Deterministic unmemoized targets compile
  /// once and execute the artifact per input (Target::runBatch); memoized
  /// and flaky targets fall back to per-input run().
  std::vector<TargetRun> runBatch(const Module &M,
                                  std::span<const ShaderInput> Inputs) const;

private:
  TargetRun votedRun(const Module &M, const ShaderInput &Input) const;

  const Target *Inner;
  HarnessPolicy Policy;
  EvalCache *Cache;
  ExecutableCache *ExeC;
};

/// The harness over a whole fleet: harnessed views of every target plus
/// the per-target quarantine circuit breakers. Breaker state is updated
/// serially (in test-index order, at wave boundaries) by the campaign
/// engine, so quarantine decisions are schedule-independent; the mutex
/// only guards against concurrent readers during a wave.
class Harness {
public:
  /// The fleet must outlive the harness. \p Cache (optional) memoizes the
  /// cached() views; uncached() views never touch it. \p ExeC (optional)
  /// shares compiled artifacts across *both* view sets — unlike outcome
  /// memoization, artifact sharing never changes counters or results, only
  /// cost, so the scan may use it too.
  Harness(const TargetFleet &Fleet, HarnessPolicy Policy,
          EvalCache *Cache = nullptr, ExecutableCache *ExeC = nullptr);

  const HarnessPolicy &policy() const { return Policy; }

  /// Harnessed views that memoize deterministic targets through the cache.
  const std::vector<HarnessedTarget> &cached() const { return CachedViews; }
  /// Harnessed views that never consult the cache (the bug-finding scan,
  /// whose counters must not depend on cross-thread cache interleaving).
  const std::vector<HarnessedTarget> &uncached() const {
    return UncachedViews;
  }
  /// Named lookup into the cached views; nullptr if absent.
  const HarnessedTarget *find(const std::string &Name) const;

  /// Serially commits one observed run outcome for the breaker: a hard
  /// tool error advances the consecutive-failure count, anything else
  /// resets it. Returns true exactly when this commit newly quarantines
  /// the target (and bumps harness.quarantined).
  bool recordOutcome(const std::string &Name, bool HardToolError);

  /// True if the target is currently sidelined.
  bool quarantined(const std::string &Name) const;

  /// Re-admits a quarantined target (the operator rebooted the phone).
  void clearQuarantine(const std::string &Name);

  size_t quarantinedCount() const;

  /// Externally visible breaker state, for campaign checkpoints.
  struct BreakerState {
    uint32_t ConsecutiveToolErrors = 0;
    bool Open = false;
  };

  /// Snapshots every target's breaker (taken at wave boundaries, where
  /// breaker state is schedule-independent).
  std::map<std::string, BreakerState> snapshotBreakers() const;

  /// Restores a snapshot taken by snapshotBreakers. Unknown target names
  /// are ignored; the harness.quarantined counter is *not* bumped for
  /// breakers restored open (the quarantine was already counted by the run
  /// that originally opened it).
  void restoreBreakers(const std::map<std::string, BreakerState> &Snapshot);

private:
  HarnessPolicy Policy;
  std::vector<HarnessedTarget> CachedViews;
  std::vector<HarnessedTarget> UncachedViews;

  mutable std::mutex Mutex;
  std::map<std::string, BreakerState> Breakers;
};

} // namespace spvfuzz

#endif // TARGET_HARNESS_H
