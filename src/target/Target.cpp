//===- target/Target.cpp - Simulated compiler targets ---------------------===//
//
// Part of the spirv-fuzz reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "target/Target.h"

#include "support/ModuleHash.h"
#include "support/Telemetry.h"
#include "target/ExecutableCache.h"

#include <algorithm>

using namespace spvfuzz;

const char *const spvfuzz::TimeoutSignature = "<timeout>";
const char *const spvfuzz::ToolErrorSignature = "<tool error>";

const char *spvfuzz::outcomeName(Outcome O) {
  switch (O) {
  case Outcome::Executed:
    return "executed";
  case Outcome::Crash:
    return "crash";
  case Outcome::Timeout:
    return "timeout";
  case Outcome::ToolError:
    return "tool-error";
  }
  return "unknown";
}

namespace {

/// Probability that a flaky-flavored bug fires on any one attempt. High
/// enough that a majority vote over FlakyRetries attempts almost always
/// classifies the bug as reliably reproducible, low enough that single
/// samples regularly disagree (which is the point of the model).
constexpr double FlakyFireProbability = 0.75;

/// Seeded Bernoulli draw with 24-bit resolution over a well-mixed word.
bool seededDraw(uint64_t Word, double Probability) {
  const uint64_t Threshold =
      static_cast<uint64_t>(Probability * static_cast<double>(1ull << 24));
  return (Word >> 40) < Threshold;
}

uint64_t hashName(const std::string &Name) {
  uint64_t H = 0x7461726765746eULL; // arbitrary domain tag
  for (char C : Name)
    H = StructuralHasher::mix(H ^ static_cast<uint64_t>(
                                      static_cast<unsigned char>(C)));
  return H;
}

/// The simulated cost of one pipeline run: every pass walks every
/// instruction once. Hang-flavored bugs aside, a compile "times out" when
/// this exceeds the context's step budget.
uint64_t compileStepCost(const Module &M, const TargetSpec &Spec) {
  return static_cast<uint64_t>(M.instructionCount()) * Spec.Pipeline.size();
}

} // namespace

bool spvfuzz::flakyBugFires(uint64_t Seed, uint64_t ModuleHash, BugPoint Point,
                            uint32_t Attempt) {
  uint64_t X = StructuralHasher::mix(Seed ^ 0x666c616b79ULL); // "flaky"
  X = StructuralHasher::mix(X ^ ModuleHash);
  X = StructuralHasher::mix(
      X ^ ((static_cast<uint64_t>(Point) << 32) | Attempt));
  return seededDraw(X, FlakyFireProbability);
}

bool spvfuzz::toolErrorFires(uint64_t Seed, uint64_t ModuleHash,
                             const std::string &TargetName, uint32_t Attempt,
                             double Rate) {
  uint64_t X = StructuralHasher::mix(Seed ^ 0x746f6f6c657272ULL); // "toolerr"
  X = StructuralHasher::mix(X ^ ModuleHash);
  X = StructuralHasher::mix(X ^ hashName(TargetName));
  X = StructuralHasher::mix(X ^ Attempt);
  return seededDraw(X, Rate);
}

size_t spvfuzz::TargetArtifact::approxBytes() const {
  size_t Bytes =
      sizeof(TargetArtifact) + PassesRun.capacity() * sizeof(OptPassKind);
  if (Crash)
    Bytes += Crash->size();
  if (Exe)
    Bytes += Exe->approxBytes();
  return Bytes;
}

PassCrash Target::compile(const Module &M, Module &OptimizedOut) const {
  OptimizedOut = M;
  PassCrash Crash = runPipeline(Spec.Pipeline, OptimizedOut, Spec.Bugs);
  telemetry::MetricsRegistry &Metrics = telemetry::MetricsRegistry::global();
  if (Metrics.enabled()) {
    Metrics.add("target.compiles");
    Metrics.add("target.compiles." + Spec.Name);
    if (Crash)
      Metrics.add("target.crashes." + Spec.Name);
  }
  return Crash;
}

PassCrash Target::compilePrefix(const Module &M, size_t PrefixLength,
                                const BugHost &Bugs,
                                Module &OptimizedOut) const {
  OptimizedOut = M;
  PrefixLength = std::min(PrefixLength, Spec.Pipeline.size());
  for (size_t I = 0; I < PrefixLength; ++I)
    if (PassCrash Crash = runOptPass(Spec.Pipeline[I], OptimizedOut, Bugs))
      return Crash;
  return std::nullopt;
}

BugHost Target::solidBugs() const {
  return Spec.Bugs.resolve([](BugPoint) { return false; });
}

uint64_t Target::artifactId(uint64_t ModuleHash) const {
  return StructuralHasher::mix(ModuleHash ^ hashName(Spec.Name));
}

std::shared_ptr<const TargetArtifact>
Target::compileWith(const Module &M, const BugHost &Bugs, ExecEngine Engine,
                    uint64_t ModuleHash) const {
  auto Art = std::make_shared<TargetArtifact>();
  Art->ModuleHash = ModuleHash;
  Art->ArtifactId = artifactId(ModuleHash);
  Art->CompileCost = compileStepCost(M, Spec);

  Module Optimized = M;
  Art->PassesRun.reserve(Spec.Pipeline.size());
  for (OptPassKind Pass : Spec.Pipeline) {
    Art->PassesRun.push_back(Pass);
    if ((Art->Crash = runOptPass(Pass, Optimized, Bugs)))
      break;
  }
  telemetry::MetricsRegistry &Metrics = telemetry::MetricsRegistry::global();
  if (Metrics.enabled()) {
    Metrics.add("target.compiles");
    Metrics.add("target.compiles." + Spec.Name);
    if (Art->Crash)
      Metrics.add("target.crashes." + Spec.Name);
  }
  if (Art->Crash)
    Art->HangCrash = isHangFlavor(Bugs.flavorOfSignature(*Art->Crash));
  else if (Spec.CanExecute)
    Art->Exe =
        Executable::compile(std::move(Optimized), Engine, Art->ArtifactId);
  return Art;
}

std::shared_ptr<const TargetArtifact>
Target::compile(const Module &M, ExecEngine Engine) const {
  return compileWith(M, Spec.Bugs, Engine, hashModule(M));
}

void Target::replayCompileMetrics(const TargetArtifact &Art) const {
  telemetry::MetricsRegistry &Metrics = telemetry::MetricsRegistry::global();
  if (!Metrics.enabled())
    return;
  for (OptPassKind Pass : Art.PassesRun)
    Metrics.add(std::string("opt.pass_runs.") + optPassName(Pass));
  if (Art.Crash)
    Metrics.add(std::string("opt.bug_triggers.") + *Art.Crash);
  Metrics.add("target.compiles");
  Metrics.add("target.compiles." + Spec.Name);
  if (Art.Crash)
    Metrics.add("target.crashes." + Spec.Name);
}

TargetRun Target::run(const Module &M, const ShaderInput &Input) const {
  return run(M, Input, RunContext());
}

TargetRun Target::run(const Module &M, const ShaderInput &Input,
                      const RunContext &Ctx) const {
  std::vector<TargetRun> Runs =
      runBatch(M, std::span<const ShaderInput>(&Input, 1), Ctx);
  return std::move(Runs.front());
}

std::vector<TargetRun>
Target::runBatch(const Module &M, std::span<const ShaderInput> Inputs,
                 const RunContext &Ctx) const {
  std::vector<TargetRun> Runs;
  if (Inputs.empty())
    return Runs;
  telemetry::MetricsRegistry &Metrics = telemetry::MetricsRegistry::global();

  // Infrastructure faults fire before the compiler even starts; the draw
  // does not depend on the input, so one covers the whole batch (one
  // toolchain invocation, one failure).
  if (Spec.Faults.ToolErrorRate > 0.0 &&
      toolErrorFires(Ctx.CampaignSeed, hashModule(M), Spec.Name, Ctx.Attempt,
                     Spec.Faults.ToolErrorRate)) {
    TargetRun Run;
    Run.RunOutcome = Outcome::ToolError;
    Run.Signature = ToolErrorSignature;
    if (Metrics.enabled())
      Metrics.add("target.tool_errors." + Spec.Name);
    Runs.assign(Inputs.size(), Run);
    return Runs;
  }

  // Acquire the compiled artifact: shared through the cache when the
  // target is deterministic (the artifact is then a pure function of the
  // module), compiled fresh under this attempt's resolved bug host
  // otherwise — a non-firing flaky bug is simply absent from the compiler
  // this time around.
  const uint64_t MHash = hashModule(M);
  std::shared_ptr<const TargetArtifact> Art;
  if (!Spec.Bugs.hasNondeterministic()) {
    if (Ctx.ExeCache && Spec.deterministic())
      Art = Ctx.ExeCache->getOrCompile(*this, M, Ctx.Engine, MHash);
    else
      Art = compileWith(M, Spec.Bugs, Ctx.Engine, MHash);
  } else {
    BugHost Resolved = Spec.Bugs.resolve([&](BugPoint P) {
      return flakyBugFires(Ctx.CampaignSeed, MHash, P, Ctx.Attempt);
    });
    Art = compileWith(M, Resolved, Ctx.Engine, MHash);
  }

  if (Art->Crash) {
    TargetRun Run;
    // Hang-flavored bugs wedge the pipeline instead of aborting it; under
    // a step budget that surfaces as a timeout, signature-less by design.
    if (Art->HangCrash) {
      Run.RunOutcome = Outcome::Timeout;
      Run.Signature = TimeoutSignature;
    } else {
      Run.RunOutcome = Outcome::Crash;
      Run.Signature = *Art->Crash;
    }
    Runs.assign(Inputs.size(), Run);
    return Runs;
  }

  // Even a healthy pipeline can exhaust the budget on oversized modules.
  if (Ctx.StepBudget != 0 && Art->CompileCost > Ctx.StepBudget) {
    TargetRun Run;
    Run.RunOutcome = Outcome::Timeout;
    Run.Signature = TimeoutSignature;
    Runs.assign(Inputs.size(), Run);
    return Runs;
  }

  Runs.resize(Inputs.size());
  if (!Spec.CanExecute)
    return Runs;

  InterpreterOptions Opts;
  // Only a budget *tighter* than the engine's own limit changes semantics:
  // step-limit faults then become timeouts. With the default (or no)
  // budget, behaviour is identical to the unbudgeted overload.
  const bool Tighter = Ctx.StepBudget != 0 && Ctx.StepBudget < Opts.StepLimit;
  if (Tighter)
    Opts.StepLimit = Ctx.StepBudget;
  for (size_t I = 0; I < Inputs.size(); ++I) {
    TargetRun &Run = Runs[I];
    Run.Result = Art->Exe->run(Inputs[I], Opts);
    if (Tighter && Run.Result.ExecStatus == ExecResult::Status::Fault &&
        Run.Result.FaultMessage == "step limit exceeded") {
      Run.RunOutcome = Outcome::Timeout;
      Run.Signature = TimeoutSignature;
      Run.Result = ExecResult();
    }
    if (Metrics.enabled())
      Metrics.add("target.executions." + Spec.Name);
  }
  return Runs;
}

namespace {

Target makeTarget(std::string Name, std::string Version, std::string GpuType,
                  std::vector<OptPassKind> Pipeline,
                  std::set<BugPoint> Bugs, bool CanExecute) {
  TargetSpec Spec;
  Spec.Name = std::move(Name);
  Spec.Version = std::move(Version);
  Spec.GpuType = std::move(GpuType);
  Spec.Pipeline = std::move(Pipeline);
  Spec.Bugs = BugHost(std::move(Bugs));
  Spec.CanExecute = CanExecute;
  return Target(std::move(Spec));
}

} // namespace

// Pipeline ordering rules the fleet obeys (each is load-bearing for the
// "originals never trigger injected bugs" invariant):
//
//  * FrontendCheck, where present, runs first: the inliner materializes
//    single-pair result phis mid-pipeline, which would otherwise trip the
//    frontend's trivial-phi crash on unfuzzed programs.
//  * Targets hosting the copy-chain value-numbering bug run LocalCSE
//    *before* ConstantFold and LoadStoreForwarding (both rewrite
//    instructions into CopyObjects and can manufacture copy-of-copy chains
//    on unfuzzed programs) and never run CopyPropagation first.
//  * No target enables the uniform-branch-fold miscompilation: reference
//    programs can branch directly on a loaded boolean uniform, so that bug
//    fires on originals.
TargetFleet TargetFleet::standard() {
  TargetFleet Fleet;

  // Offline compiler; crash-only.
  Fleet.add(makeTarget(
      "AMD-LLPC", "vulkan-1.2.154 llpc", "-",
      {OptPassKind::FrontendCheck, OptPassKind::SimplifyCfg,
       OptPassKind::DeadBranchElim, OptPassKind::Inliner,
       OptPassKind::LoadStoreForwarding, OptPassKind::DeadStoreElim,
       OptPassKind::Dce, OptPassKind::BlockLayout},
      {BugPoint::CrashKillInCallee, BugPoint::CrashStoreToPrivateGlobal,
       BugPoint::CrashEqualTargetBranch},
      /*CanExecute=*/false));

  Fleet.add(makeTarget(
      "Mali-G78", "r32p1-01rel0", "ARM Mali-G78",
      {OptPassKind::FrontendCheck, OptPassKind::SimplifyCfg,
       OptPassKind::DeadBranchElim, OptPassKind::LoadStoreForwarding,
       OptPassKind::DeadStoreElim, OptPassKind::PhiSimplify,
       OptPassKind::BlockLayout},
      {BugPoint::CrashKillObstructsMerge, BugPoint::CrashEqualTargetBranch,
       BugPoint::CrashDeadStoreToModuleScope},
      /*CanExecute=*/true));

  // Miscompile-only: crashes never crowd out the wrong-image bugs here.
  Fleet.add(makeTarget(
      "Mesa", "20.0.8 (iris)", "Intel UHD 630",
      {OptPassKind::FrontendCheck, OptPassKind::SimplifyCfg,
       OptPassKind::DeadBranchElim, OptPassKind::ConstantFold,
       OptPassKind::LoadStoreForwarding, OptPassKind::DeadStoreElim,
       OptPassKind::BlockLayout, OptPassKind::Dce},
      {BugPoint::MiscompileAliasBlindForward,
       BugPoint::MiscompilePhiLayoutOrder},
      /*CanExecute=*/true));

  // The most crash-diverse driver (and therefore excluded from the dedup
  // experiment, as in the paper).
  Fleet.add(makeTarget(
      "NVIDIA", "456.71", "GeForce GTX 1070",
      {OptPassKind::FrontendCheck, OptPassKind::LocalCSE,
       OptPassKind::SimplifyCfg, OptPassKind::DeadBranchElim,
       OptPassKind::ConstantFold, OptPassKind::Inliner, OptPassKind::Dce,
       OptPassKind::BlockLayout},
      {BugPoint::CrashKillObstructsMerge, BugPoint::CrashTrivialPhi,
       BugPoint::CrashCompositeFold, BugPoint::CrashUnusedComposite,
       BugPoint::CrashWideCallArity, BugPoint::CrashPhiManyPredecessors,
       BugPoint::CrashCopyChainValueNumbering},
      /*CanExecute=*/true));

  // Two driver generations of the same mobile GPU family: the older
  // driver's bug set strictly contains the newer one's.
  Fleet.add(makeTarget(
      "Pixel-4", "512.415.0 (old driver)", "Adreno 640",
      {OptPassKind::FrontendCheck, OptPassKind::SimplifyCfg,
       OptPassKind::DeadBranchElim, OptPassKind::CopyPropagation,
       OptPassKind::DeadStoreElim, OptPassKind::Dce},
      {BugPoint::CrashNegatedConstantBranch, BugPoint::CrashUnusedCallResult,
       BugPoint::CrashModuleFunctionLimit,
       BugPoint::CrashStoreToPrivateGlobal},
      /*CanExecute=*/true));

  Fleet.add(makeTarget(
      "Pixel-5", "512.491.0", "Adreno 620",
      {OptPassKind::FrontendCheck, OptPassKind::SimplifyCfg,
       OptPassKind::DeadBranchElim, OptPassKind::CopyPropagation,
       OptPassKind::DeadStoreElim, OptPassKind::Dce},
      {BugPoint::CrashNegatedConstantBranch,
       BugPoint::CrashUnusedCallResult},
      /*CanExecute=*/true));

  // Standalone optimizer; crash-only. Both of its bugs need composite
  // transformations, which the baseline tool never performs.
  Fleet.add(makeTarget(
      "spirv-opt", "v2021.2", "-",
      {OptPassKind::SimplifyCfg, OptPassKind::DeadBranchElim,
       OptPassKind::ConstantFold, OptPassKind::CopyPropagation,
       OptPassKind::LocalCSE, OptPassKind::LoadStoreForwarding,
       OptPassKind::DeadStoreElim, OptPassKind::Dce,
       OptPassKind::PhiSimplify, OptPassKind::BlockLayout},
      {BugPoint::CrashCompositeFold, BugPoint::CrashUnusedComposite},
      /*CanExecute=*/false));

  // An older optimizer release with two extra, since-fixed bugs.
  Fleet.add(makeTarget(
      "spirv-opt-old", "v2020.1", "-",
      {OptPassKind::SimplifyCfg, OptPassKind::DeadBranchElim,
       OptPassKind::LocalCSE, OptPassKind::ConstantFold,
       OptPassKind::LoadStoreForwarding, OptPassKind::DeadStoreElim,
       OptPassKind::Dce, OptPassKind::PhiSimplify,
       OptPassKind::BlockLayout},
      {BugPoint::CrashCompositeFold, BugPoint::CrashUnusedComposite,
       BugPoint::CrashCopyChainValueNumbering,
       BugPoint::CrashPointerCopyAlias},
      /*CanExecute=*/false));

  // The CPU rasterizer, kept last among the solid rows so examples can
  // grab the fleet's last standard target. Its single bug is the Figure 3
  // artefact, so the signature stays pure.
  Fleet.add(makeTarget(
      "SwiftShader", "4.1 (subzero)", "CPU",
      {OptPassKind::FrontendCheck, OptPassKind::SimplifyCfg,
       OptPassKind::Inliner, OptPassKind::DeadBranchElim,
       OptPassKind::ConstantFold, OptPassKind::LocalCSE, OptPassKind::Dce,
       OptPassKind::BlockLayout},
      {BugPoint::CrashDontInlineAttribute},
      /*CanExecute=*/true));

  return Fleet;
}

TargetFleet TargetFleet::faulty() {
  TargetFleet Fleet = standard();

  // The dying phone: same driver family as Pixel-4 but a flash-worn unit
  // that frequently fails to even launch the compiler (reboot needed), and
  // whose crashes reproduce only intermittently. The hard tool-error rate
  // is what exercises the harness's quarantine breaker.
  {
    Target Phone = makeTarget(
        "Pixel-3", "512.386.0 (dying unit)", "Adreno 630",
        {OptPassKind::FrontendCheck, OptPassKind::SimplifyCfg,
         OptPassKind::DeadBranchElim, OptPassKind::CopyPropagation,
         OptPassKind::DeadStoreElim, OptPassKind::Dce},
        {BugPoint::CrashNegatedConstantBranch,
         BugPoint::CrashUnusedCallResult},
        /*CanExecute=*/true);
    TargetSpec Spec = Phone.spec();
    Spec.Faults.ToolErrorRate = 0.8;
    Spec.Bugs.withFlavor(BugPoint::CrashNegatedConstantBranch,
                         BugFlavor::Flaky);
    Spec.Bugs.withFlavor(BugPoint::CrashUnusedCallResult, BugFlavor::Flaky);
    Fleet.add(Target(std::move(Spec)));
  }

  // The wedging rasterizer: an older SwiftShader whose DontInline bug
  // hangs the pipeline instead of aborting it, and only some of the time.
  // GpuType "CPU" makes it part of the GPU-less reduction fleet. It keeps
  // an extra since-fixed solid bug so the faulty fleet also carries a
  // superset relation, like the other old-version rows.
  {
    Target Wedge = makeTarget(
        "SwiftShader-old", "3.3 (wedging)", "CPU",
        {OptPassKind::FrontendCheck, OptPassKind::SimplifyCfg,
         OptPassKind::Inliner, OptPassKind::DeadBranchElim,
         OptPassKind::ConstantFold, OptPassKind::LocalCSE, OptPassKind::Dce,
         OptPassKind::BlockLayout},
        {BugPoint::CrashDontInlineAttribute, BugPoint::CrashUnusedComposite},
        /*CanExecute=*/true);
    TargetSpec Spec = Wedge.spec();
    Spec.Faults.ToolErrorRate = 0.1;
    Spec.Bugs.withFlavor(BugPoint::CrashDontInlineAttribute,
                         BugFlavor::FlakyHang);
    Fleet.add(Target(std::move(Spec)));
  }

  return Fleet;
}

const Target *TargetFleet::find(const std::string &Name) const {
  for (const Target &T : Targets)
    if (T.name() == Name)
      return &T;
  return nullptr;
}

std::vector<std::string> TargetFleet::names() const {
  std::vector<std::string> Out;
  Out.reserve(Targets.size());
  for (const Target &T : Targets)
    Out.push_back(T.name());
  return Out;
}

std::vector<std::string> TargetFleet::gpulessNames() const {
  std::vector<std::string> Out;
  for (const Target &T : Targets)
    if (T.spec().GpuType == "-" || T.spec().GpuType == "CPU")
      Out.push_back(T.name());
  return Out;
}

TargetFleet
TargetFleet::filter(const std::function<bool(const Target &)> &Keep) const {
  TargetFleet Out;
  for (const Target &T : Targets)
    if (Keep(T))
      Out.add(T);
  return Out;
}
