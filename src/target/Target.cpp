//===- target/Target.cpp - Simulated compiler targets ---------------------===//
//
// Part of the spirv-fuzz reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "target/Target.h"

#include "support/Telemetry.h"

using namespace spvfuzz;

PassCrash Target::compile(const Module &M, Module &OptimizedOut) const {
  OptimizedOut = M;
  PassCrash Crash = runPipeline(Spec.Pipeline, OptimizedOut, Spec.Bugs);
  telemetry::MetricsRegistry &Metrics = telemetry::MetricsRegistry::global();
  if (Metrics.enabled()) {
    Metrics.add("target.compiles");
    Metrics.add("target.compiles." + Spec.Name);
    if (Crash)
      Metrics.add("target.crashes." + Spec.Name);
  }
  return Crash;
}

TargetRun Target::run(const Module &M, const ShaderInput &Input) const {
  TargetRun Run;
  Module Optimized;
  if (PassCrash Crash = compile(M, Optimized)) {
    Run.RunKind = TargetRun::Kind::Crash;
    Run.Signature = *Crash;
    return Run;
  }
  Run.RunKind = TargetRun::Kind::Executed;
  if (Spec.CanExecute) {
    Run.Result = interpret(Optimized, Input);
    telemetry::MetricsRegistry &Metrics = telemetry::MetricsRegistry::global();
    if (Metrics.enabled())
      Metrics.add("target.executions." + Spec.Name);
  }
  return Run;
}

namespace {

Target makeTarget(std::string Name, std::string Version, std::string GpuType,
                  std::vector<OptPassKind> Pipeline,
                  std::set<BugPoint> Bugs, bool CanExecute) {
  TargetSpec Spec;
  Spec.Name = std::move(Name);
  Spec.Version = std::move(Version);
  Spec.GpuType = std::move(GpuType);
  Spec.Pipeline = std::move(Pipeline);
  Spec.Bugs = BugHost(std::move(Bugs));
  Spec.CanExecute = CanExecute;
  return Target(std::move(Spec));
}

} // namespace

// Pipeline ordering rules the fleet obeys (each is load-bearing for the
// "originals never trigger injected bugs" invariant):
//
//  * FrontendCheck, where present, runs first: the inliner materializes
//    single-pair result phis mid-pipeline, which would otherwise trip the
//    frontend's trivial-phi crash on unfuzzed programs.
//  * Targets hosting the copy-chain value-numbering bug run LocalCSE
//    *before* ConstantFold and LoadStoreForwarding (both rewrite
//    instructions into CopyObjects and can manufacture copy-of-copy chains
//    on unfuzzed programs) and never run CopyPropagation first.
//  * No target enables the uniform-branch-fold miscompilation: reference
//    programs can branch directly on a loaded boolean uniform, so that bug
//    fires on originals.
std::vector<Target> spvfuzz::standardTargets() {
  std::vector<Target> Targets;

  // Offline compiler; crash-only.
  Targets.push_back(makeTarget(
      "AMD-LLPC", "vulkan-1.2.154 llpc", "-",
      {OptPassKind::FrontendCheck, OptPassKind::SimplifyCfg,
       OptPassKind::DeadBranchElim, OptPassKind::Inliner,
       OptPassKind::LoadStoreForwarding, OptPassKind::DeadStoreElim,
       OptPassKind::Dce, OptPassKind::BlockLayout},
      {BugPoint::CrashKillInCallee, BugPoint::CrashStoreToPrivateGlobal,
       BugPoint::CrashEqualTargetBranch},
      /*CanExecute=*/false));

  Targets.push_back(makeTarget(
      "Mali-G78", "r32p1-01rel0", "ARM Mali-G78",
      {OptPassKind::FrontendCheck, OptPassKind::SimplifyCfg,
       OptPassKind::DeadBranchElim, OptPassKind::LoadStoreForwarding,
       OptPassKind::DeadStoreElim, OptPassKind::PhiSimplify,
       OptPassKind::BlockLayout},
      {BugPoint::CrashKillObstructsMerge, BugPoint::CrashEqualTargetBranch,
       BugPoint::CrashDeadStoreToModuleScope},
      /*CanExecute=*/true));

  // Miscompile-only: crashes never crowd out the wrong-image bugs here.
  Targets.push_back(makeTarget(
      "Mesa", "20.0.8 (iris)", "Intel UHD 630",
      {OptPassKind::FrontendCheck, OptPassKind::SimplifyCfg,
       OptPassKind::DeadBranchElim, OptPassKind::ConstantFold,
       OptPassKind::LoadStoreForwarding, OptPassKind::DeadStoreElim,
       OptPassKind::BlockLayout, OptPassKind::Dce},
      {BugPoint::MiscompileAliasBlindForward,
       BugPoint::MiscompilePhiLayoutOrder},
      /*CanExecute=*/true));

  // The most crash-diverse driver (and therefore excluded from the dedup
  // experiment, as in the paper).
  Targets.push_back(makeTarget(
      "NVIDIA", "456.71", "GeForce GTX 1070",
      {OptPassKind::FrontendCheck, OptPassKind::LocalCSE,
       OptPassKind::SimplifyCfg, OptPassKind::DeadBranchElim,
       OptPassKind::ConstantFold, OptPassKind::Inliner, OptPassKind::Dce,
       OptPassKind::BlockLayout},
      {BugPoint::CrashKillObstructsMerge, BugPoint::CrashTrivialPhi,
       BugPoint::CrashCompositeFold, BugPoint::CrashUnusedComposite,
       BugPoint::CrashWideCallArity, BugPoint::CrashPhiManyPredecessors,
       BugPoint::CrashCopyChainValueNumbering},
      /*CanExecute=*/true));

  // Two driver generations of the same mobile GPU family: the older
  // driver's bug set strictly contains the newer one's.
  Targets.push_back(makeTarget(
      "Pixel-4", "512.415.0 (old driver)", "Adreno 640",
      {OptPassKind::FrontendCheck, OptPassKind::SimplifyCfg,
       OptPassKind::DeadBranchElim, OptPassKind::CopyPropagation,
       OptPassKind::DeadStoreElim, OptPassKind::Dce},
      {BugPoint::CrashNegatedConstantBranch, BugPoint::CrashUnusedCallResult,
       BugPoint::CrashModuleFunctionLimit,
       BugPoint::CrashStoreToPrivateGlobal},
      /*CanExecute=*/true));

  Targets.push_back(makeTarget(
      "Pixel-5", "512.491.0", "Adreno 620",
      {OptPassKind::FrontendCheck, OptPassKind::SimplifyCfg,
       OptPassKind::DeadBranchElim, OptPassKind::CopyPropagation,
       OptPassKind::DeadStoreElim, OptPassKind::Dce},
      {BugPoint::CrashNegatedConstantBranch,
       BugPoint::CrashUnusedCallResult},
      /*CanExecute=*/true));

  // Standalone optimizer; crash-only. Both of its bugs need composite
  // transformations, which the baseline tool never performs.
  Targets.push_back(makeTarget(
      "spirv-opt", "v2021.2", "-",
      {OptPassKind::SimplifyCfg, OptPassKind::DeadBranchElim,
       OptPassKind::ConstantFold, OptPassKind::CopyPropagation,
       OptPassKind::LocalCSE, OptPassKind::LoadStoreForwarding,
       OptPassKind::DeadStoreElim, OptPassKind::Dce,
       OptPassKind::PhiSimplify, OptPassKind::BlockLayout},
      {BugPoint::CrashCompositeFold, BugPoint::CrashUnusedComposite},
      /*CanExecute=*/false));

  // An older optimizer release with two extra, since-fixed bugs.
  Targets.push_back(makeTarget(
      "spirv-opt-old", "v2020.1", "-",
      {OptPassKind::SimplifyCfg, OptPassKind::DeadBranchElim,
       OptPassKind::LocalCSE, OptPassKind::ConstantFold,
       OptPassKind::LoadStoreForwarding, OptPassKind::DeadStoreElim,
       OptPassKind::Dce, OptPassKind::PhiSimplify,
       OptPassKind::BlockLayout},
      {BugPoint::CrashCompositeFold, BugPoint::CrashUnusedComposite,
       BugPoint::CrashCopyChainValueNumbering,
       BugPoint::CrashPointerCopyAlias},
      /*CanExecute=*/false));

  // The CPU rasterizer, kept last so examples can grab Targets.back().
  // Its single bug is the Figure 3 artefact, so the signature stays pure.
  Targets.push_back(makeTarget(
      "SwiftShader", "4.1 (subzero)", "CPU",
      {OptPassKind::FrontendCheck, OptPassKind::SimplifyCfg,
       OptPassKind::Inliner, OptPassKind::DeadBranchElim,
       OptPassKind::ConstantFold, OptPassKind::LocalCSE, OptPassKind::Dce,
       OptPassKind::BlockLayout},
      {BugPoint::CrashDontInlineAttribute},
      /*CanExecute=*/true));

  return Targets;
}

std::vector<std::string> spvfuzz::gpulessTargetNames() {
  return {"AMD-LLPC", "spirv-opt", "spirv-opt-old", "SwiftShader"};
}
