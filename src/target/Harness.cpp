//===- target/Harness.cpp - Fault-tolerant target execution ---------------===//
//
// Part of the spirv-fuzz reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "target/Harness.h"

#include "support/ModuleHash.h"
#include "support/Telemetry.h"
#include "support/Trace.h"

#include <algorithm>

using namespace spvfuzz;

TargetRun HarnessedTarget::run(const Module &M,
                               const ShaderInput &Input) const {
  telemetry::MetricsRegistry &Metrics = telemetry::MetricsRegistry::global();

  telemetry::TraceSpan RunSpan("target.run");
  if (RunSpan.active())
    RunSpan.note({"target", Inner->name()});

  TargetRun Final;
  if (deterministic()) {
    // One attempt suffices — and is safe to memoize.
    RunContext Ctx;
    Ctx.CampaignSeed = Policy.CampaignSeed;
    Ctx.StepBudget = Policy.TargetDeadlineSteps;
    Ctx.Engine = Policy.Engine;
    Ctx.ExeCache = ExeC;
    if (!Cache) {
      Final = Inner->run(M, Input, Ctx);
    } else {
      const uint64_t AId = Inner->artifactId(hashModule(M));
      const uint64_t IHash = hashShaderInput(Input);
      if (!Cache->lookup(AId, IHash, Final)) {
        Final = Inner->run(M, Input, Ctx);
        Cache->insert(AId, IHash, Final);
      }
    }
  } else {
    Final = votedRun(M, Input);
  }

  if (Metrics.enabled() && Final.RunOutcome == Outcome::Timeout)
    Metrics.add("harness.timeouts");
  if (RunSpan.active())
    RunSpan.note({"outcome", outcomeName(Final.RunOutcome)});
  return Final;
}

std::vector<TargetRun>
HarnessedTarget::runBatch(const Module &M,
                          std::span<const ShaderInput> Inputs) const {
  std::vector<TargetRun> Runs;
  if (Inputs.empty())
    return Runs;
  // Memoized views and flaky targets go input-by-input: the EvalCache key
  // and the retry vote are both per (module, input). The artifact cache
  // (when wired) still amortizes the compile across the loop.
  if (!deterministic() || Cache) {
    Runs.reserve(Inputs.size());
    for (const ShaderInput &Input : Inputs)
      Runs.push_back(run(M, Input));
    return Runs;
  }

  telemetry::MetricsRegistry &Metrics = telemetry::MetricsRegistry::global();
  telemetry::TraceSpan BatchSpan("target.run_batch");
  if (BatchSpan.active()) {
    BatchSpan.note({"target", Inner->name()});
    BatchSpan.note({"inputs", std::to_string(Inputs.size())});
  }

  RunContext Ctx;
  Ctx.CampaignSeed = Policy.CampaignSeed;
  Ctx.StepBudget = Policy.TargetDeadlineSteps;
  Ctx.Engine = Policy.Engine;
  Ctx.ExeCache = ExeC;
  Runs = Inner->runBatch(M, Inputs, Ctx);
  if (Metrics.enabled())
    for (const TargetRun &R : Runs)
      if (R.RunOutcome == Outcome::Timeout)
        Metrics.add("harness.timeouts");
  return Runs;
}

TargetRun HarnessedTarget::votedRun(const Module &M,
                                    const ShaderInput &Input) const {
  telemetry::MetricsRegistry &Metrics = telemetry::MetricsRegistry::global();

  const uint32_t Attempts = std::max(1u, Policy.FlakyRetries);
  const uint32_t Quorum = Attempts / 2 + 1;

  // One ballot per distinct (outcome, signature) verdict; the
  // representative run is the earliest attempt that produced it, so the
  // returned TargetRun never depends on tally iteration order.
  struct Tally {
    size_t Count = 0;
    uint32_t FirstAttempt = 0;
    TargetRun Rep;
  };
  std::map<std::pair<Outcome, std::string>, Tally> Votes;

  uint32_t Used = 0;
  uint32_t ConsecutiveErrors = 0;
  TargetRun LastError;
  bool HardFailure = false;

  for (uint32_t Attempt = 0; Attempt < Attempts; ++Attempt) {
    RunContext Ctx;
    Ctx.CampaignSeed = Policy.CampaignSeed;
    Ctx.Attempt = Attempt;
    Ctx.StepBudget = Policy.TargetDeadlineSteps;
    Ctx.Engine = Policy.Engine;
    Ctx.ExeCache = ExeC;
    TargetRun R = Inner->run(M, Input, Ctx);
    ++Used;
    if (R.RunOutcome == Outcome::ToolError) {
      LastError = R;
      if (Metrics.enabled())
        Metrics.add("harness.tool_errors");
      // Enough back-to-back failures and the run as a whole is a hard
      // toolchain failure — no verdict, breaker material.
      if (++ConsecutiveErrors >= Policy.QuarantineThreshold) {
        HardFailure = true;
        break;
      }
      continue;
    }
    ConsecutiveErrors = 0;
    auto Key = std::make_pair(R.RunOutcome, R.Signature);
    auto [It, Fresh] = Votes.try_emplace(Key);
    if (Fresh) {
      It->second.FirstAttempt = Attempt;
      It->second.Rep = std::move(R);
    }
    ++It->second.Count;
  }

  if (Metrics.enabled() && Used > 1)
    Metrics.add("harness.retries", Used - 1);

  // An empty ballot means every attempt tool-errored (without crossing the
  // consecutive threshold mid-loop only when the threshold exceeds the
  // attempt count) — still a hard failure from the caller's perspective.
  if (HardFailure || Votes.empty())
    return LastError;

  // The winning interesting verdict, if any, needs a strict majority — the
  // paper's "reliably reproducible" bar. Ties break toward the earliest
  // first occurrence, which is deterministic.
  const Tally *Best = nullptr;
  for (const auto &[Key, T] : Votes) {
    if (!isInteresting(Key.first))
      continue;
    if (!Best || T.Count > Best->Count ||
        (T.Count == Best->Count && T.FirstAttempt < Best->FirstAttempt))
      Best = &T;
  }
  if (Best && Best->Count >= Quorum)
    return Best->Rep;

  // Not reliably reproducible: report the clean execution if one was seen,
  // else fall back to the most-voted interesting verdict (every non-error
  // attempt was interesting, just without a majority for any one bucket).
  auto Clean = Votes.find(std::make_pair(Outcome::Executed, std::string()));
  if (Clean != Votes.end())
    return Clean->second.Rep;
  if (Best)
    return Best->Rep;
  return Votes.begin()->second.Rep;
}

Harness::Harness(const TargetFleet &Fleet, HarnessPolicy Policy,
                 EvalCache *Cache, ExecutableCache *ExeC)
    : Policy(Policy) {
  CachedViews.reserve(Fleet.size());
  UncachedViews.reserve(Fleet.size());
  for (const Target &T : Fleet) {
    CachedViews.emplace_back(T, Policy, Cache, ExeC);
    UncachedViews.emplace_back(T, Policy, nullptr, ExeC);
    Breakers[T.name()];
  }
}

const HarnessedTarget *Harness::find(const std::string &Name) const {
  for (const HarnessedTarget &T : CachedViews)
    if (T.name() == Name)
      return &T;
  return nullptr;
}

bool Harness::recordOutcome(const std::string &Name, bool HardToolError) {
  std::lock_guard<std::mutex> Lock(Mutex);
  BreakerState &B = Breakers[Name];
  if (!HardToolError) {
    B.ConsecutiveToolErrors = 0;
    return false;
  }
  if (B.Open)
    return false;
  if (++B.ConsecutiveToolErrors < Policy.QuarantineThreshold)
    return false;
  B.Open = true;
  telemetry::MetricsRegistry &Metrics = telemetry::MetricsRegistry::global();
  if (Metrics.enabled())
    Metrics.add("harness.quarantined");
  return true;
}

bool Harness::quarantined(const std::string &Name) const {
  std::lock_guard<std::mutex> Lock(Mutex);
  auto It = Breakers.find(Name);
  return It != Breakers.end() && It->second.Open;
}

void Harness::clearQuarantine(const std::string &Name) {
  std::lock_guard<std::mutex> Lock(Mutex);
  auto It = Breakers.find(Name);
  if (It == Breakers.end())
    return;
  It->second.Open = false;
  It->second.ConsecutiveToolErrors = 0;
}

size_t Harness::quarantinedCount() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  size_t N = 0;
  for (const auto &[Name, B] : Breakers)
    if (B.Open)
      ++N;
  return N;
}

std::map<std::string, Harness::BreakerState>
Harness::snapshotBreakers() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return Breakers;
}

void Harness::restoreBreakers(
    const std::map<std::string, BreakerState> &Snapshot) {
  std::lock_guard<std::mutex> Lock(Mutex);
  for (const auto &[Name, State] : Snapshot) {
    auto It = Breakers.find(Name);
    if (It != Breakers.end())
      It->second = State;
  }
}
