//===- target/EvalCache.cpp - Memoized target evaluations ------------------===//
//
// Part of the spirv-fuzz reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "target/EvalCache.h"

#include "support/ModuleHash.h"
#include "support/Telemetry.h"
#include "support/Trace.h"

using namespace spvfuzz;

namespace {

size_t approxValueBytes(const Value &V) {
  size_t Bytes = sizeof(Value);
  for (const Value &Elem : V.Elements)
    Bytes += approxValueBytes(Elem);
  return Bytes;
}

size_t approxRunBytes(const TargetRun &Run) {
  size_t Bytes = sizeof(TargetRun) + Run.Signature.size() +
                 Run.Result.FaultMessage.size();
  for (const auto &[Location, V] : Run.Result.Outputs)
    Bytes += sizeof(Location) + approxValueBytes(V);
  return Bytes;
}

} // namespace

size_t EvalCache::KeyHasher::operator()(const Key &K) const {
  StructuralHasher H;
  H.word(K.ArtifactId);
  H.word(K.InputHash);
  return static_cast<size_t>(H.digest());
}

bool EvalCache::lookup(uint64_t ArtifactId, uint64_t InputHash,
                       TargetRun &Out) {
  telemetry::MetricsRegistry &Metrics = telemetry::MetricsRegistry::global();
  Key K{ArtifactId, InputHash};
  std::lock_guard<std::mutex> Lock(Mutex);
  auto It = Index.find(K);
  if (It == Index.end()) {
    ++Misses;
    if (Metrics.enabled())
      Metrics.add("evalcache.misses");
    return false;
  }
  ++Hits;
  if (Metrics.enabled())
    Metrics.add("evalcache.hits");
  Lru.splice(Lru.begin(), Lru, It->second);
  Out = It->second->Run;
  return true;
}

void EvalCache::insert(uint64_t ArtifactId, uint64_t InputHash,
                       const TargetRun &Run) {
  telemetry::MetricsRegistry &Metrics = telemetry::MetricsRegistry::global();
  Key K{ArtifactId, InputHash};
  size_t Bytes = approxRunBytes(Run);
  if (Bytes > BudgetBytes)
    return; // covers the budget-0 "cache disabled" case
  std::lock_guard<std::mutex> Lock(Mutex);
  if (Index.count(K))
    return; // racing insert of the same (deterministic) outcome
  while (BytesUsed + Bytes > BudgetBytes && !Lru.empty()) {
    size_t EvictedBytes = Lru.back().Bytes;
    BytesUsed -= EvictedBytes;
    Index.erase(Lru.back().K);
    Lru.pop_back();
    if (Metrics.enabled())
      Metrics.add("evalcache.evictions");
    if (telemetry::Tracer::global().enabled())
      telemetry::Tracer::global().event("evalcache.evict",
                                        {{"bytes", EvictedBytes}});
  }
  Lru.push_front(Entry{K, Run, Bytes});
  Index.emplace(std::move(K), Lru.begin());
  BytesUsed += Bytes;
  if (Metrics.enabled())
    Metrics.set("evalcache.bytes", static_cast<double>(BytesUsed));
}

size_t EvalCache::bytesUsed() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return BytesUsed;
}

size_t EvalCache::entryCount() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return Lru.size();
}

uint64_t EvalCache::hitCount() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return Hits;
}

uint64_t EvalCache::missCount() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return Misses;
}

TargetRun CachedTarget::run(const Module &M, const ShaderInput &Input) const {
  if (!Inner->spec().deterministic()) {
    // Memoizing a flaky target would freeze one sample as truth. This path
    // is a policy violation (the Harness owns faulty targets); the counter
    // is an alarm that CI asserts stays zero.
    telemetry::MetricsRegistry &Metrics = telemetry::MetricsRegistry::global();
    if (Metrics.enabled())
      Metrics.add("evalcache.flaky_consults");
    return Inner->run(M, Input);
  }
  uint64_t AId = Inner->artifactId(hashModule(M));
  uint64_t IHash = hashShaderInput(Input);
  TargetRun Cached;
  if (Cache->lookup(AId, IHash, Cached))
    return Cached;
  TargetRun Fresh = Inner->run(M, Input);
  Cache->insert(AId, IHash, Fresh);
  return Fresh;
}
