//===- analysis/Dominators.h - Dominator tree -------------------*- C++ -*-===//
//
// Part of the spirv-fuzz reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Dominator tree over a function's CFG, via the Cooper-Harvey-Kennedy
/// iterative algorithm. Needed by the validator (MiniSPV inherits SPIR-V's
/// rule that a block must precede the blocks it dominates and that uses
/// must be dominated by definitions) and by several transformations
/// (MoveBlockDown, PropagateInstructionUp).
///
/// Dominance queries are answered in O(1) from a DFS interval numbering of
/// the tree computed at construction time: A dominates B iff A's interval
/// contains B's.
///
//===----------------------------------------------------------------------===//

#ifndef ANALYSIS_DOMINATORS_H
#define ANALYSIS_DOMINATORS_H

#include "analysis/Cfg.h"

namespace spvfuzz {

class DominatorTree {
public:
  DominatorTree(const Function &Func, const Cfg &Graph);

  /// Returns the immediate dominator of \p Block, or InvalidId for the
  /// entry block and for unreachable blocks.
  Id immediateDominator(Id Block) const {
    auto It = Nodes.find(Block);
    return It == Nodes.end() ? InvalidId : It->second.Idom;
  }

  /// True if \p A dominates \p B (reflexively). Unreachable blocks
  /// dominate nothing and are dominated by nothing (except themselves).
  bool dominates(Id A, Id B) const;

  /// True if \p A strictly dominates \p B.
  bool strictlyDominates(Id A, Id B) const { return A != B && dominates(A, B); }

private:
  struct Node {
    Id Idom = InvalidId;
    uint32_t In = 0; // DFS entry time in the dominator tree
    uint32_t Out = 0; // DFS exit time
  };

  Id Entry = InvalidId;
  std::unordered_map<Id, Node> Nodes; // reachable blocks only
};

} // namespace spvfuzz

#endif // ANALYSIS_DOMINATORS_H
