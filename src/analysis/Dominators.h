//===- analysis/Dominators.h - Dominator tree -------------------*- C++ -*-===//
//
// Part of the spirv-fuzz reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Dominator tree over a function's CFG, via the Cooper-Harvey-Kennedy
/// iterative algorithm. Needed by the validator (MiniSPV inherits SPIR-V's
/// rule that a block must precede the blocks it dominates and that uses
/// must be dominated by definitions) and by several transformations
/// (MoveBlockDown, PropagateInstructionUp).
///
//===----------------------------------------------------------------------===//

#ifndef ANALYSIS_DOMINATORS_H
#define ANALYSIS_DOMINATORS_H

#include "analysis/Cfg.h"

namespace spvfuzz {

class DominatorTree {
public:
  DominatorTree(const Function &Func, const Cfg &Graph);

  /// Returns the immediate dominator of \p Block, or InvalidId for the
  /// entry block and for unreachable blocks.
  Id immediateDominator(Id Block) const {
    auto It = Idom.find(Block);
    return It == Idom.end() ? InvalidId : It->second;
  }

  /// True if \p A dominates \p B (reflexively). Unreachable blocks
  /// dominate nothing and are dominated by nothing (except themselves).
  bool dominates(Id A, Id B) const;

  /// True if \p A strictly dominates \p B.
  bool strictlyDominates(Id A, Id B) const { return A != B && dominates(A, B); }

private:
  Id Entry = InvalidId;
  std::unordered_map<Id, Id> Idom;
};

} // namespace spvfuzz

#endif // ANALYSIS_DOMINATORS_H
