//===- analysis/ModuleAnalysis.h - Def/use and availability -----*- C++ -*-===//
//
// Part of the spirv-fuzz reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A module-wide snapshot combining definition sites, use counts, and
/// per-function CFGs and dominator trees. Transformations consult it to
/// decide whether an id is *available* at a program point (defined in a
/// dominating position), which is MiniSPV's (and SPIR-V's) core scoping
/// rule. Invalidated by any module mutation; rebuild after transforming.
///
/// An analysis is constructed once per transformation attempt on both the
/// fuzzing and replay hot paths, so construction builds only the def-site
/// index eagerly; use counts, CFGs and dominator trees are computed
/// on first query (most precondition checks never ask for them). The lazy
/// state makes a ModuleAnalysis instance single-threaded: construct one
/// per thread, never share.
///
//===----------------------------------------------------------------------===//

#ifndef ANALYSIS_MODULEANALYSIS_H
#define ANALYSIS_MODULEANALYSIS_H

#include "analysis/Cfg.h"
#include "analysis/Dominators.h"

#include <memory>

namespace spvfuzz {

class ModuleAnalysis {
public:
  explicit ModuleAnalysis(const Module &M);

  struct DefInfo {
    enum class Kind { None, Global, FunctionDef, Param, Body, Label };
    Kind DefKind = Kind::None;
    Id FuncId = InvalidId;  // for Param/Body/Label/FunctionDef
    Id BlockId = InvalidId; // for Body/Label
    size_t Index = 0;       // for Body: index into the block
    /// The defining instruction; nullptr for labels (which, as in
    /// Module::findDef, have no instruction). Valid while the analysed
    /// module is unchanged.
    const Instruction *Inst = nullptr;
  };

  /// Returns the definition site of \p TheId, or nullptr. Ids are dense
  /// (always below Module::Bound), so the table is a flat vector and the
  /// lookup is an index, not a hash.
  const DefInfo *defInfo(Id TheId) const {
    if (TheId >= Defs.size())
      return nullptr;
    const DefInfo &Info = Defs[TheId];
    return Info.DefKind == DefInfo::Kind::None ? nullptr : &Info;
  }

  /// O(1) equivalent of Module::findDef over the analysed module: the
  /// defining instruction of \p TheId, or nullptr for unknown ids and
  /// labels.
  const Instruction *def(Id TheId) const {
    const DefInfo *Info = defInfo(TheId);
    return Info ? Info->Inst : nullptr;
  }

  /// True if \p ValueId may be used by the instruction at position
  /// (\p FuncId, \p BlockId, \p InstIndex): globals and the function's
  /// parameters are available everywhere in the function; body definitions
  /// must precede the use in the same block or strictly dominate its block.
  bool idAvailableBefore(Id ValueId, Id FuncId, Id BlockId,
                         size_t InstIndex) const;

  /// True if \p ValueId is available at the *end* of \p BlockId, the rule
  /// for phi incoming values.
  bool idAvailableAtEnd(Id ValueId, Id FuncId, Id BlockId) const;

  /// Number of id uses of \p TheId across the module (including phi and
  /// branch operands and result types). Counted on first call.
  size_t useCount(Id TheId) const;

  /// Built on first query per function.
  const Cfg &cfg(Id FuncId) const;
  const DominatorTree &domTree(Id FuncId) const;

private:
  const Module *M = nullptr;
  std::vector<DefInfo> Defs; // indexed by id, sized to the module bound
  std::unordered_map<Id, const Function *> FuncsById;
  std::unordered_map<Id, std::unordered_map<Id, size_t>> BlockSizes;
  // Lazily materialized query state (see file comment: single-threaded).
  mutable bool UsesBuilt = false;
  mutable std::vector<size_t> Uses; // indexed by id
  mutable std::unordered_map<Id, std::unique_ptr<Cfg>> Cfgs;
  mutable std::unordered_map<Id, std::unique_ptr<DominatorTree>> DomTrees;
};

} // namespace spvfuzz

#endif // ANALYSIS_MODULEANALYSIS_H
