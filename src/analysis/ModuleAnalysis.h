//===- analysis/ModuleAnalysis.h - Def/use and availability -----*- C++ -*-===//
//
// Part of the spirv-fuzz reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A module-wide snapshot combining definition sites, use counts, and
/// per-function CFGs and dominator trees. Transformations consult it to
/// decide whether an id is *available* at a program point (defined in a
/// dominating position), which is MiniSPV's (and SPIR-V's) core scoping
/// rule. Invalidated by any module mutation; rebuild after transforming.
///
//===----------------------------------------------------------------------===//

#ifndef ANALYSIS_MODULEANALYSIS_H
#define ANALYSIS_MODULEANALYSIS_H

#include "analysis/Cfg.h"
#include "analysis/Dominators.h"

#include <memory>

namespace spvfuzz {

class ModuleAnalysis {
public:
  explicit ModuleAnalysis(const Module &M);

  struct DefInfo {
    enum class Kind { Global, FunctionDef, Param, Body, Label };
    Kind DefKind = Kind::Global;
    Id FuncId = InvalidId;  // for Param/Body/Label/FunctionDef
    Id BlockId = InvalidId; // for Body/Label
    size_t Index = 0;       // for Body: index into the block
  };

  /// Returns the definition site of \p TheId, or nullptr.
  const DefInfo *defInfo(Id TheId) const {
    auto It = Defs.find(TheId);
    return It == Defs.end() ? nullptr : &It->second;
  }

  /// True if \p ValueId may be used by the instruction at position
  /// (\p FuncId, \p BlockId, \p InstIndex): globals and the function's
  /// parameters are available everywhere in the function; body definitions
  /// must precede the use in the same block or strictly dominate its block.
  bool idAvailableBefore(Id ValueId, Id FuncId, Id BlockId,
                         size_t InstIndex) const;

  /// True if \p ValueId is available at the *end* of \p BlockId, the rule
  /// for phi incoming values.
  bool idAvailableAtEnd(Id ValueId, Id FuncId, Id BlockId) const;

  /// Number of id uses of \p TheId across the module (including phi and
  /// branch operands and result types).
  size_t useCount(Id TheId) const {
    auto It = Uses.find(TheId);
    return It == Uses.end() ? 0 : It->second;
  }

  const Cfg &cfg(Id FuncId) const;
  const DominatorTree &domTree(Id FuncId) const;

private:
  std::unordered_map<Id, DefInfo> Defs;
  std::unordered_map<Id, size_t> Uses;
  std::unordered_map<Id, std::unique_ptr<Cfg>> Cfgs;
  std::unordered_map<Id, std::unique_ptr<DominatorTree>> DomTrees;
  std::unordered_map<Id, std::unordered_map<Id, size_t>> BlockSizes;
};

} // namespace spvfuzz

#endif // ANALYSIS_MODULEANALYSIS_H
