//===- analysis/Dominators.cpp - Dominator tree ---------------------------===//
//
// Part of the spirv-fuzz reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "analysis/Dominators.h"

#include <vector>

using namespace spvfuzz;

DominatorTree::DominatorTree(const Function &Func, const Cfg &Graph) {
  (void)Func;
  Entry = Graph.entryId();
  const std::vector<Id> &Rpo = Graph.reversePostorder();

  std::unordered_map<Id, size_t> RpoIndex;
  RpoIndex.reserve(Rpo.size());
  for (size_t I = 0, E = Rpo.size(); I != E; ++I)
    RpoIndex[Rpo[I]] = I;

  std::unordered_map<Id, Id> Idom;
  Idom.reserve(Rpo.size());
  auto Intersect = [&](Id A, Id B) {
    while (A != B) {
      while (RpoIndex[A] > RpoIndex[B])
        A = Idom[A];
      while (RpoIndex[B] > RpoIndex[A])
        B = Idom[B];
    }
    return A;
  };

  Idom[Entry] = Entry;
  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (Id Block : Rpo) {
      if (Block == Entry)
        continue;
      Id NewIdom = InvalidId;
      for (Id Pred : Graph.predecessors(Block)) {
        if (!Graph.isReachable(Pred) || Idom.find(Pred) == Idom.end())
          continue;
        NewIdom = NewIdom == InvalidId ? Pred : Intersect(NewIdom, Pred);
      }
      if (NewIdom == InvalidId)
        continue;
      auto It = Idom.find(Block);
      if (It == Idom.end() || It->second != NewIdom) {
        Idom[Block] = NewIdom;
        Changed = true;
      }
    }
  }
  // The entry's idom is conventionally "none".
  Idom[Entry] = InvalidId;

  // Number the tree with DFS intervals so dominates() is two lookups
  // instead of a chain walk: A dominates B iff In[A] <= In[B] and
  // Out[B] <= Out[A].
  Nodes.reserve(Idom.size());
  std::unordered_map<Id, std::vector<Id>> Children;
  Children.reserve(Idom.size());
  for (const auto &[Block, Parent] : Idom) {
    Nodes[Block].Idom = Parent;
    if (Parent != InvalidId)
      Children[Parent].push_back(Block);
  }
  uint32_t Clock = 0;
  // Iterative DFS; the second visit of a frame assigns the exit time.
  std::vector<std::pair<Id, bool>> Stack;
  Stack.push_back({Entry, false});
  while (!Stack.empty()) {
    auto [Block, Done] = Stack.back();
    Stack.pop_back();
    Node &N = Nodes[Block];
    if (Done) {
      N.Out = ++Clock;
      continue;
    }
    N.In = ++Clock;
    Stack.push_back({Block, true});
    auto It = Children.find(Block);
    if (It != Children.end())
      for (Id Child : It->second)
        Stack.push_back({Child, false});
  }
}

bool DominatorTree::dominates(Id A, Id B) const {
  if (A == B)
    return true;
  auto AIt = Nodes.find(A);
  auto BIt = Nodes.find(B);
  if (AIt == Nodes.end() || BIt == Nodes.end())
    return false;
  return AIt->second.In <= BIt->second.In &&
         BIt->second.Out <= AIt->second.Out;
}
