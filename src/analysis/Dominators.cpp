//===- analysis/Dominators.cpp - Dominator tree ---------------------------===//
//
// Part of the spirv-fuzz reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "analysis/Dominators.h"

using namespace spvfuzz;

DominatorTree::DominatorTree(const Function &Func, const Cfg &Graph) {
  (void)Func;
  Entry = Graph.entryId();
  const std::vector<Id> &Rpo = Graph.reversePostorder();

  std::unordered_map<Id, size_t> RpoIndex;
  for (size_t I = 0, E = Rpo.size(); I != E; ++I)
    RpoIndex[Rpo[I]] = I;

  auto Intersect = [&](Id A, Id B) {
    while (A != B) {
      while (RpoIndex[A] > RpoIndex[B])
        A = Idom[A];
      while (RpoIndex[B] > RpoIndex[A])
        B = Idom[B];
    }
    return A;
  };

  Idom[Entry] = Entry;
  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (Id Block : Rpo) {
      if (Block == Entry)
        continue;
      Id NewIdom = InvalidId;
      for (Id Pred : Graph.predecessors(Block)) {
        if (!Graph.isReachable(Pred) || Idom.find(Pred) == Idom.end())
          continue;
        NewIdom = NewIdom == InvalidId ? Pred : Intersect(NewIdom, Pred);
      }
      if (NewIdom == InvalidId)
        continue;
      auto It = Idom.find(Block);
      if (It == Idom.end() || It->second != NewIdom) {
        Idom[Block] = NewIdom;
        Changed = true;
      }
    }
  }
  // The entry's idom is conventionally "none".
  Idom[Entry] = InvalidId;
}

bool DominatorTree::dominates(Id A, Id B) const {
  if (A == B)
    return true;
  // Walk B's dominator chain up to the entry.
  Id Cursor = B;
  while (true) {
    auto It = Idom.find(Cursor);
    if (It == Idom.end() || It->second == InvalidId)
      return false;
    Cursor = It->second;
    if (Cursor == A)
      return true;
  }
}
