//===- analysis/Cfg.cpp - Control-flow graph utilities --------------------===//
//
// Part of the spirv-fuzz reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "analysis/Cfg.h"

#include <algorithm>
#include <functional>

using namespace spvfuzz;

Cfg::Cfg(const Function &Func) {
  if (Func.Blocks.empty())
    return;
  Entry = Func.Blocks.front().LabelId;
  for (const BasicBlock &Block : Func.Blocks) {
    std::vector<Id> BlockSuccs = Block.successors();
    for (Id Succ : BlockSuccs)
      Preds[Succ].push_back(Block.LabelId);
    Succs[Block.LabelId] = std::move(BlockSuccs);
  }

  // Depth-first search for reachability and postorder.
  std::vector<Id> Postorder;
  std::unordered_set<Id> OnStackOrDone;
  std::function<void(Id)> Visit = [&](Id Block) {
    if (!OnStackOrDone.insert(Block).second)
      return;
    Reachable.insert(Block);
    for (Id Succ : successors(Block))
      Visit(Succ);
    Postorder.push_back(Block);
  };
  Visit(Entry);
  Rpo.assign(Postorder.rbegin(), Postorder.rend());
}
