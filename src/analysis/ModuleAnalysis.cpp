//===- analysis/ModuleAnalysis.cpp - Def/use and availability -------------===//
//
// Part of the spirv-fuzz reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "analysis/ModuleAnalysis.h"

using namespace spvfuzz;

ModuleAnalysis::ModuleAnalysis(const Module &M) {
  auto CountUses = [&](const Instruction &Inst) {
    Inst.forEachUsedId([&](Id Used) { ++Uses[Used]; });
  };

  for (const Instruction &Inst : M.GlobalInsts) {
    Defs[Inst.Result] = DefInfo{DefInfo::Kind::Global, InvalidId, InvalidId, 0};
    CountUses(Inst);
  }
  for (const Function &Func : M.Functions) {
    Defs[Func.Def.Result] =
        DefInfo{DefInfo::Kind::FunctionDef, Func.id(), InvalidId, 0};
    CountUses(Func.Def);
    for (const Instruction &Param : Func.Params) {
      Defs[Param.Result] =
          DefInfo{DefInfo::Kind::Param, Func.id(), InvalidId, 0};
      CountUses(Param);
    }
    for (const BasicBlock &Block : Func.Blocks) {
      Defs[Block.LabelId] =
          DefInfo{DefInfo::Kind::Label, Func.id(), Block.LabelId, 0};
      BlockSizes[Func.id()][Block.LabelId] = Block.Body.size();
      for (size_t I = 0, E = Block.Body.size(); I != E; ++I) {
        const Instruction &Inst = Block.Body[I];
        if (Inst.Result != InvalidId)
          Defs[Inst.Result] =
              DefInfo{DefInfo::Kind::Body, Func.id(), Block.LabelId, I};
        CountUses(Inst);
      }
    }
    Cfgs[Func.id()] = std::make_unique<Cfg>(Func);
    DomTrees[Func.id()] =
        std::make_unique<DominatorTree>(Func, *Cfgs[Func.id()]);
  }
}

bool ModuleAnalysis::idAvailableBefore(Id ValueId, Id FuncId, Id BlockId,
                                       size_t InstIndex) const {
  const DefInfo *Info = defInfo(ValueId);
  if (!Info)
    return false;
  switch (Info->DefKind) {
  case DefInfo::Kind::Global:
    return true;
  case DefInfo::Kind::FunctionDef:
  case DefInfo::Kind::Label:
    // Function ids and labels are not data values.
    return false;
  case DefInfo::Kind::Param:
    return Info->FuncId == FuncId;
  case DefInfo::Kind::Body:
    if (Info->FuncId != FuncId)
      return false;
    if (Info->BlockId == BlockId)
      return Info->Index < InstIndex;
    return domTree(FuncId).strictlyDominates(Info->BlockId, BlockId);
  }
  return false;
}

bool ModuleAnalysis::idAvailableAtEnd(Id ValueId, Id FuncId, Id BlockId) const {
  auto FuncIt = BlockSizes.find(FuncId);
  if (FuncIt == BlockSizes.end())
    return false;
  auto BlockIt = FuncIt->second.find(BlockId);
  if (BlockIt == FuncIt->second.end())
    return false;
  return idAvailableBefore(ValueId, FuncId, BlockId, BlockIt->second);
}

const Cfg &ModuleAnalysis::cfg(Id FuncId) const {
  auto It = Cfgs.find(FuncId);
  assert(It != Cfgs.end() && "unknown function");
  return *It->second;
}

const DominatorTree &ModuleAnalysis::domTree(Id FuncId) const {
  auto It = DomTrees.find(FuncId);
  assert(It != DomTrees.end() && "unknown function");
  return *It->second;
}
