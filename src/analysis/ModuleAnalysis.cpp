//===- analysis/ModuleAnalysis.cpp - Def/use and availability -------------===//
//
// Part of the spirv-fuzz reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "analysis/ModuleAnalysis.h"

using namespace spvfuzz;

ModuleAnalysis::ModuleAnalysis(const Module &M) : M(&M) {
  // Ids are dense (below M.Bound), so the def table is a flat vector filled
  // with plain stores — this runs once per transformation attempt on both
  // the fuzzing and replay hot paths. Out-of-bound ids (only possible in a
  // module the validator will reject anyway) are ignored rather than
  // indexed.
  Defs.assign(M.Bound, DefInfo{});
  auto Set = [this](Id TheId, DefInfo Info) {
    if (TheId < Defs.size())
      Defs[TheId] = Info;
  };
  for (const Instruction &Inst : M.GlobalInsts)
    Set(Inst.Result,
        DefInfo{DefInfo::Kind::Global, InvalidId, InvalidId, 0, &Inst});
  FuncsById.reserve(M.Functions.size());
  BlockSizes.reserve(M.Functions.size());
  for (const Function &Func : M.Functions) {
    FuncsById[Func.id()] = &Func;
    Set(Func.Def.Result,
        DefInfo{DefInfo::Kind::FunctionDef, Func.id(), InvalidId, 0,
                &Func.Def});
    for (const Instruction &Param : Func.Params)
      Set(Param.Result,
          DefInfo{DefInfo::Kind::Param, Func.id(), InvalidId, 0, &Param});
    std::unordered_map<Id, size_t> &FuncBlockSizes = BlockSizes[Func.id()];
    FuncBlockSizes.reserve(Func.Blocks.size());
    for (const BasicBlock &Block : Func.Blocks) {
      Set(Block.LabelId,
          DefInfo{DefInfo::Kind::Label, Func.id(), Block.LabelId, 0,
                  nullptr});
      FuncBlockSizes[Block.LabelId] = Block.Body.size();
      for (size_t I = 0, E = Block.Body.size(); I != E; ++I) {
        const Instruction &Inst = Block.Body[I];
        if (Inst.Result != InvalidId)
          Set(Inst.Result, DefInfo{DefInfo::Kind::Body, Func.id(),
                                   Block.LabelId, I, &Inst});
      }
    }
  }
}

size_t ModuleAnalysis::useCount(Id TheId) const {
  if (!UsesBuilt) {
    UsesBuilt = true;
    Uses.assign(M->Bound, 0);
    auto CountUses = [&](const Instruction &Inst) {
      Inst.forEachUsedId([&](Id Used) {
        if (Used < Uses.size())
          ++Uses[Used];
      });
    };
    for (const Instruction &Inst : M->GlobalInsts)
      CountUses(Inst);
    for (const Function &Func : M->Functions) {
      CountUses(Func.Def);
      for (const Instruction &Param : Func.Params)
        CountUses(Param);
      for (const BasicBlock &Block : Func.Blocks)
        for (const Instruction &Inst : Block.Body)
          CountUses(Inst);
    }
  }
  return TheId < Uses.size() ? Uses[TheId] : 0;
}

bool ModuleAnalysis::idAvailableBefore(Id ValueId, Id FuncId, Id BlockId,
                                       size_t InstIndex) const {
  const DefInfo *Info = defInfo(ValueId);
  if (!Info)
    return false;
  switch (Info->DefKind) {
  case DefInfo::Kind::None:
    return false; // unreachable: defInfo() filters empty slots
  case DefInfo::Kind::Global:
    return true;
  case DefInfo::Kind::FunctionDef:
  case DefInfo::Kind::Label:
    // Function ids and labels are not data values.
    return false;
  case DefInfo::Kind::Param:
    return Info->FuncId == FuncId;
  case DefInfo::Kind::Body:
    if (Info->FuncId != FuncId)
      return false;
    if (Info->BlockId == BlockId)
      return Info->Index < InstIndex;
    return domTree(FuncId).strictlyDominates(Info->BlockId, BlockId);
  }
  return false;
}

bool ModuleAnalysis::idAvailableAtEnd(Id ValueId, Id FuncId, Id BlockId) const {
  auto FuncIt = BlockSizes.find(FuncId);
  if (FuncIt == BlockSizes.end())
    return false;
  auto BlockIt = FuncIt->second.find(BlockId);
  if (BlockIt == FuncIt->second.end())
    return false;
  return idAvailableBefore(ValueId, FuncId, BlockId, BlockIt->second);
}

const Cfg &ModuleAnalysis::cfg(Id FuncId) const {
  auto It = Cfgs.find(FuncId);
  if (It == Cfgs.end()) {
    auto FuncIt = FuncsById.find(FuncId);
    assert(FuncIt != FuncsById.end() && "unknown function");
    It = Cfgs.emplace(FuncId, std::make_unique<Cfg>(*FuncIt->second)).first;
  }
  return *It->second;
}

const DominatorTree &ModuleAnalysis::domTree(Id FuncId) const {
  auto It = DomTrees.find(FuncId);
  if (It == DomTrees.end()) {
    auto FuncIt = FuncsById.find(FuncId);
    assert(FuncIt != FuncsById.end() && "unknown function");
    It = DomTrees
             .emplace(FuncId, std::make_unique<DominatorTree>(*FuncIt->second,
                                                              cfg(FuncId)))
             .first;
  }
  return *It->second;
}
