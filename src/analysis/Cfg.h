//===- analysis/Cfg.h - Control-flow graph utilities ------------*- C++ -*-===//
//
// Part of the spirv-fuzz reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Successor/predecessor maps and reachability over a function's blocks.
///
//===----------------------------------------------------------------------===//

#ifndef ANALYSIS_CFG_H
#define ANALYSIS_CFG_H

#include "ir/Module.h"

#include <unordered_map>
#include <unordered_set>

namespace spvfuzz {

/// A snapshot of a function's control-flow graph. Invalidated by any CFG
/// mutation; rebuild after transforming.
class Cfg {
public:
  explicit Cfg(const Function &Func);

  const std::vector<Id> &successors(Id Block) const {
    static const std::vector<Id> Empty;
    auto It = Succs.find(Block);
    return It == Succs.end() ? Empty : It->second;
  }

  const std::vector<Id> &predecessors(Id Block) const {
    static const std::vector<Id> Empty;
    auto It = Preds.find(Block);
    return It == Preds.end() ? Empty : It->second;
  }

  /// Blocks reachable from the entry block (which is always included).
  const std::unordered_set<Id> &reachable() const { return Reachable; }

  bool isReachable(Id Block) const { return Reachable.count(Block) != 0; }

  Id entryId() const { return Entry; }

  /// Block ids in reverse-postorder over reachable blocks.
  const std::vector<Id> &reversePostorder() const { return Rpo; }

private:
  Id Entry = InvalidId;
  std::unordered_map<Id, std::vector<Id>> Succs;
  std::unordered_map<Id, std::vector<Id>> Preds;
  std::unordered_set<Id> Reachable;
  std::vector<Id> Rpo;
};

} // namespace spvfuzz

#endif // ANALYSIS_CFG_H
