//===- analysis/Validator.cpp - MiniSPV module validation -----------------===//
//
// Part of the spirv-fuzz reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "analysis/Validator.h"

#include "analysis/ModuleAnalysis.h"
#include "ir/Text.h"

#include <sstream>
#include <unordered_set>

using namespace spvfuzz;

namespace {

class ValidatorImpl {
public:
  explicit ValidatorImpl(const Module &M) : M(M) {}

  std::vector<std::string> run() {
    checkIds();
    if (!Diags.empty())
      return Diags; // id table is broken; later checks would be noise
    Analysis = std::make_unique<ModuleAnalysis>(M);
    for (const Instruction &Global : M.GlobalInsts) {
      if (Global.Opcode == Op::TypeBool)
        BoolType = Global.Result;
      if (Global.Opcode == Op::TypeInt)
        IntType = Global.Result;
    }
    checkEntryPoint();
    checkGlobals();
    for (const Function &Func : M.Functions)
      checkFunction(Func);
    return Diags;
  }

private:
  void error(const std::string &Message) { Diags.push_back(Message); }

  // Built with append rather than `"%" + std::to_string(...)`: inserting
  // into the rvalue temporary trips GCC 12's -Wrestrict false positive
  // (PR105651) under -Werror.
  std::string idStr(Id TheId) {
    std::string S("%");
    S += std::to_string(TheId);
    return S;
  }

  // --- Id uniqueness and bound -------------------------------------------

  void defineId(Id TheId, const char *What) {
    if (TheId == InvalidId) {
      error(std::string(What) + " with invalid id 0");
      return;
    }
    if (TheId >= M.Bound)
      error(idStr(TheId) + " exceeds module bound");
    if (!SeenIds.insert(TheId).second)
      error("duplicate definition of " + idStr(TheId));
  }

  void checkIds() {
    for (const Instruction &Inst : M.GlobalInsts)
      defineId(Inst.Result, "global");
    for (const Function &Func : M.Functions) {
      defineId(Func.Def.Result, "function");
      for (const Instruction &Param : Func.Params)
        defineId(Param.Result, "parameter");
      for (const BasicBlock &Block : Func.Blocks) {
        defineId(Block.LabelId, "label");
        for (const Instruction &Inst : Block.Body)
          if (Inst.Result != InvalidId)
            defineId(Inst.Result, "instruction");
      }
    }
  }

  // --- Entry point ---------------------------------------------------------

  void checkEntryPoint() {
    const Function *Entry = M.findFunction(M.EntryPointId);
    if (!Entry) {
      error("entry point " + idStr(M.EntryPointId) + " is not a function");
      return;
    }
    if (!typeIdHasOpcode(Entry->returnTypeId(), Op::TypeVoid))
      error("entry point must return void");
    if (!Entry->Params.empty())
      error("entry point must have no parameters");
  }

  // --- Global section ------------------------------------------------------

  // All def/type queries go through the analysis's O(1) def index (the
  // module is constant for the lifetime of a validation run); results are
  // identical to the Module::findDef-based queries, only cheaper.
  bool isTypeId(Id TheId) {
    const Instruction *Def = Analysis->def(TheId);
    return Def && isTypeDecl(Def->Opcode);
  }

  bool isConstantId(Id TheId) {
    const Instruction *Def = Analysis->def(TheId);
    return Def && isConstantDecl(Def->Opcode);
  }

  bool typeIdHasOpcode(Id TypeId, Op Opcode) {
    const Instruction *Def = Analysis->def(TypeId);
    return Def && Def->Opcode == Opcode;
  }

  std::pair<StorageClass, Id> pointerInfo(Id PointerTypeId) {
    const Instruction *Def = Analysis->def(PointerTypeId);
    assert(Def && Def->Opcode == Op::TypePointer && "not a pointer type");
    return {static_cast<StorageClass>(Def->literalOperand(0)),
            Def->idOperand(1)};
  }

  void checkGlobals() {
    std::unordered_set<Id> DefinedSoFar;
    for (const Instruction &Inst : M.GlobalInsts) {
      // Globals may only reference globals defined earlier in the section.
      bool ForwardRef = false;
      Inst.forEachUsedId([&](Id Used) {
        if (DefinedSoFar.count(Used) == 0)
          ForwardRef = true;
      });
      if (ForwardRef)
        error("global " + idStr(Inst.Result) +
              " references an id not yet defined in the global section");
      DefinedSoFar.insert(Inst.Result);

      switch (Inst.Opcode) {
      case Op::TypeVoid:
      case Op::TypeBool:
        break;
      case Op::TypeInt:
        if (Inst.Operands.size() != 1 || Inst.literalOperand(0) != 32)
          error("OpTypeInt must have width 32");
        break;
      case Op::TypeVector: {
        if (Inst.Operands.size() != 2) {
          error("OpTypeVector expects 2 operands");
          break;
        }
        Id Component = Inst.idOperand(0);
        if (!typeIdHasOpcode(Component, Op::TypeInt) &&
            !typeIdHasOpcode(Component, Op::TypeBool))
          error("vector component type must be scalar");
        uint32_t Count = Inst.literalOperand(1);
        if (Count < 2 || Count > 4)
          error("vector size must be in [2, 4]");
        break;
      }
      case Op::TypeStruct:
        for (const Operand &Member : Inst.Operands)
          if (!Member.isId() || !isTypeId(Member.asId()) ||
              typeIdHasOpcode(Member.asId(), Op::TypePointer))
            error("struct members must be non-pointer types");
        break;
      case Op::TypePointer:
        if (Inst.Operands.size() != 2 || !Inst.Operands[0].isLiteral() ||
            !isTypeId(Inst.idOperand(1)))
          error("malformed OpTypePointer");
        else if (typeIdHasOpcode(Inst.idOperand(1), Op::TypePointer))
          error("pointers to pointers are not supported");
        break;
      case Op::TypeFunction:
        for (const Operand &Op : Inst.Operands)
          if (!Op.isId() || !isTypeId(Op.asId()))
            error("malformed OpTypeFunction");
        break;
      case Op::ConstantTrue:
      case Op::ConstantFalse:
        if (!typeIdHasOpcode(Inst.ResultType, Op::TypeBool))
          error("boolean constant must have bool type");
        break;
      case Op::Constant:
        if (!typeIdHasOpcode(Inst.ResultType, Op::TypeInt) ||
            Inst.Operands.size() != 1 ||
            !Inst.Operands[0].isLiteral())
          error("malformed OpConstant");
        break;
      case Op::ConstantComposite:
        checkCompositeConstant(Inst);
        break;
      case Op::Variable:
        checkGlobalVariable(Inst);
        break;
      default:
        error("opcode not allowed in global section: " +
              std::string(opName(Inst.Opcode)));
      }
    }
  }

  void checkCompositeConstant(const Instruction &Inst) {
    std::vector<Id> MemberTypes;
    if (!compositeMemberTypes(Inst.ResultType, MemberTypes)) {
      error("OpConstantComposite result type must be vector or struct");
      return;
    }
    if (Inst.Operands.size() != MemberTypes.size()) {
      error("OpConstantComposite component count mismatch");
      return;
    }
    for (size_t I = 0; I != MemberTypes.size(); ++I) {
      Id Component = Inst.idOperand(I);
      if (!isConstantId(Component) || typeOf(Component) != MemberTypes[I])
        error("OpConstantComposite component " + std::to_string(I) +
              " has wrong type or is not a constant");
    }
  }

  void checkGlobalVariable(const Instruction &Inst) {
    if (Inst.Operands.empty() || !Inst.Operands[0].isLiteral()) {
      error("malformed OpVariable");
      return;
    }
    auto SC = static_cast<StorageClass>(Inst.literalOperand(0));
    if (SC == StorageClass::Function) {
      error("Function-storage variable in global section");
      return;
    }
    if (!typeIdHasOpcode(Inst.ResultType, Op::TypePointer)) {
      error("OpVariable result type must be a pointer");
      return;
    }
    auto [PtrSC, Pointee] = pointerInfo(Inst.ResultType);
    if (PtrSC != SC)
      error("variable/pointer storage class mismatch");
    switch (SC) {
    case StorageClass::Uniform:
    case StorageClass::Output:
      if (Inst.Operands.size() != 2 || !Inst.Operands[1].isLiteral())
        error("Uniform/Output variable needs a binding/location literal");
      break;
    case StorageClass::Private:
      if (Inst.Operands.size() == 2) {
        Id Init = Inst.idOperand(1);
        if (!isConstantId(Init) || typeOf(Init) != Pointee)
          error("bad Private variable initializer");
      } else if (Inst.Operands.size() != 1) {
        error("malformed Private variable");
      }
      break;
    case StorageClass::Function:
      break;
    }
  }

  /// Fills \p Out with the member types of a vector or struct type.
  bool compositeMemberTypes(Id TypeId, std::vector<Id> &Out) {
    const Instruction *Def = Analysis->def(TypeId);
    if (!Def)
      return false;
    if (Def->Opcode == Op::TypeVector) {
      Out.assign(Def->literalOperand(1), Def->idOperand(0));
      return true;
    }
    if (Def->Opcode == Op::TypeStruct) {
      for (const Operand &Op : Def->Operands)
        Out.push_back(Op.asId());
      return true;
    }
    return false;
  }

  // --- Functions -----------------------------------------------------------

  void checkFunction(const Function &Func) {
    std::string Where = "function " + idStr(Func.id()) + ": ";
    const Instruction *FuncType = Analysis->def(Func.functionTypeId());
    if (!FuncType || FuncType->Opcode != Op::TypeFunction) {
      error(Where + "bad function type");
      return;
    }
    if (FuncType->idOperand(0) != Func.returnTypeId())
      error(Where + "return type disagrees with function type");
    if (FuncType->Operands.size() - 1 != Func.Params.size())
      error(Where + "parameter count disagrees with function type");
    else
      for (size_t I = 0; I != Func.Params.size(); ++I)
        if (Func.Params[I].ResultType != FuncType->idOperand(I + 1))
          error(Where + "parameter " + std::to_string(I) + " type mismatch");

    if (Func.Blocks.empty()) {
      error(Where + "function has no blocks");
      return;
    }

    const Cfg &Graph = Analysis->cfg(Func.id());
    const DominatorTree &Dom = Analysis->domTree(Func.id());

    // The entry block may not be a branch target.
    if (!Graph.predecessors(Func.entryBlock().LabelId).empty())
      error(Where + "entry block has predecessors");

    // Layout rule: a block's immediate dominator must precede it.
    for (size_t I = 1; I < Func.Blocks.size(); ++I) {
      Id Block = Func.Blocks[I].LabelId;
      if (!Graph.isReachable(Block))
        continue;
      Id Idom = Dom.immediateDominator(Block);
      auto IdomIndex = Func.blockIndex(Idom);
      if (!IdomIndex || *IdomIndex >= I)
        error(Where + "block " + idStr(Block) +
              " appears before its dominator");
    }

    for (const BasicBlock &Block : Func.Blocks)
      checkBlock(Func, Block, Graph);
  }

  void checkBlock(const Function &Func, const BasicBlock &Block,
                  const Cfg &Graph) {
    std::string Where = "block " + idStr(Block.LabelId) + ": ";
    if (Block.Body.empty() || !isTerminator(Block.Body.back().Opcode)) {
      error(Where + "missing terminator");
      return;
    }
    bool SeenNonPhi = false;
    bool SeenNonLeading = false;
    for (size_t I = 0, E = Block.Body.size(); I != E; ++I) {
      const Instruction &Inst = Block.Body[I];
      if (isTerminator(Inst.Opcode) && I + 1 != E)
        error(Where + "terminator in the middle of a block");
      if (Inst.Opcode == Op::Phi) {
        if (SeenNonPhi)
          error(Where + "phi after non-phi instruction");
      } else {
        SeenNonPhi = true;
      }
      if (Inst.Opcode == Op::Variable) {
        if (&Block != &Func.entryBlock())
          error(Where + "local variable outside the entry block");
        if (SeenNonLeading)
          error(Where + "local variable after general instructions");
      } else if (Inst.Opcode != Op::Phi) {
        SeenNonLeading = true;
      }
      checkInstruction(Func, Block, I, Graph);
    }
  }

  Id typeOf(Id ValueId) {
    const Instruction *Def = Analysis->def(ValueId);
    return Def ? Def->ResultType : InvalidId;
  }

  void checkValueOperand(const std::string &Where, const Function &Func,
                         const BasicBlock &Block, size_t Index, Id ValueId) {
    const ModuleAnalysis::DefInfo *Info = Analysis->defInfo(ValueId);
    if (!Info) {
      error(Where + "use of undefined id " + idStr(ValueId));
      return;
    }
    // Uses inside statically unreachable blocks are exempt from the
    // dominance rule (they can never execute) but must still name values.
    if (!Analysis->cfg(Func.id()).isReachable(Block.LabelId))
      return;
    if (!Analysis->idAvailableBefore(ValueId, Func.id(), Block.LabelId, Index))
      error(Where + "id " + idStr(ValueId) + " is not available here");
  }

  void checkLabelOperand(const std::string &Where, const Function &Func,
                         Id LabelId) {
    const BasicBlock *Target = Func.findBlock(LabelId);
    if (!Target)
      error(Where + "branch to unknown block " + idStr(LabelId));
    else if (Target == &Func.entryBlock())
      error(Where + "branch to the entry block");
  }

  void checkInstruction(const Function &Func, const BasicBlock &Block,
                        size_t Index, const Cfg &Graph) {
    const Instruction &Inst = Block.Body[Index];
    std::string Where = std::string(opName(Inst.Opcode)) + " in block " +
                        idStr(Block.LabelId) + ": ";

    if (hasResultType(Inst.Opcode) && !isTypeId(Inst.ResultType)) {
      error(Where + "result type is not a type");
      return;
    }

    auto RequireOperands = [&](size_t Count) {
      if (Inst.Operands.size() != Count) {
        error(Where + "expected " + std::to_string(Count) + " operands");
        return false;
      }
      return true;
    };
    auto RequireValue = [&](size_t OpIndex, Id ExpectedType) {
      if (!Inst.Operands[OpIndex].isId()) {
        error(Where + "operand " + std::to_string(OpIndex) +
              " must be an id");
        return;
      }
      Id ValueId = Inst.idOperand(OpIndex);
      checkValueOperand(Where, Func, Block, Index, ValueId);
      if (ExpectedType != InvalidId && typeOf(ValueId) != ExpectedType)
        error(Where + "operand " + std::to_string(OpIndex) +
              " has the wrong type");
    };

    switch (Inst.Opcode) {
    case Op::Variable: {
      if (Inst.Operands.empty() || !Inst.Operands[0].isLiteral() ||
          static_cast<StorageClass>(Inst.literalOperand(0)) !=
              StorageClass::Function) {
        error(Where + "local variables must have Function storage");
        break;
      }
      if (!typeIdHasOpcode(Inst.ResultType, Op::TypePointer)) {
        error(Where + "variable result type must be a pointer");
        break;
      }
      auto [SC, Pointee] = pointerInfo(Inst.ResultType);
      if (SC != StorageClass::Function)
        error(Where + "pointer storage class mismatch");
      if (Inst.Operands.size() == 2) {
        Id Init = Inst.idOperand(1);
        if (!isConstantId(Init) || typeOf(Init) != Pointee)
          error(Where + "bad local variable initializer");
      } else if (Inst.Operands.size() != 1) {
        error(Where + "malformed local variable");
      }
      break;
    }
    case Op::Load: {
      if (!RequireOperands(1))
        break;
      Id Pointer = Inst.idOperand(0);
      checkValueOperand(Where, Func, Block, Index, Pointer);
      Id PtrType = typeOf(Pointer);
      if (!typeIdHasOpcode(PtrType, Op::TypePointer)) {
        error(Where + "load from non-pointer");
        break;
      }
      auto [SC, Pointee] = pointerInfo(PtrType);
      if (SC == StorageClass::Output)
        error(Where + "load from Output variable");
      if (Pointee != Inst.ResultType)
        error(Where + "load result type mismatch");
      break;
    }
    case Op::Store: {
      if (!RequireOperands(2))
        break;
      Id Pointer = Inst.idOperand(0);
      checkValueOperand(Where, Func, Block, Index, Pointer);
      Id PtrType = typeOf(Pointer);
      if (!typeIdHasOpcode(PtrType, Op::TypePointer)) {
        error(Where + "store to non-pointer");
        break;
      }
      auto [SC, Pointee] = pointerInfo(PtrType);
      if (SC == StorageClass::Uniform)
        error(Where + "store to Uniform variable");
      RequireValue(1, Pointee);
      break;
    }
    case Op::IAdd:
    case Op::ISub:
    case Op::IMul:
    case Op::SDiv:
    case Op::SMod:
      if (!RequireOperands(2))
        break;
      if (Inst.ResultType != IntType)
        error(Where + "integer op with non-integer result");
      RequireValue(0, IntType);
      RequireValue(1, IntType);
      break;
    case Op::SNegate:
      if (!RequireOperands(1))
        break;
      if (Inst.ResultType != IntType)
        error(Where + "SNegate with non-integer result");
      RequireValue(0, IntType);
      break;
    case Op::LogicalAnd:
    case Op::LogicalOr:
      if (!RequireOperands(2))
        break;
      if (Inst.ResultType != BoolType)
        error(Where + "logical op with non-bool result");
      RequireValue(0, BoolType);
      RequireValue(1, BoolType);
      break;
    case Op::LogicalNot:
      if (!RequireOperands(1))
        break;
      if (Inst.ResultType != BoolType)
        error(Where + "LogicalNot with non-bool result");
      RequireValue(0, BoolType);
      break;
    case Op::IEqual:
    case Op::INotEqual:
    case Op::SLessThan:
    case Op::SLessThanEqual:
    case Op::SGreaterThan:
    case Op::SGreaterThanEqual:
      if (!RequireOperands(2))
        break;
      if (Inst.ResultType != BoolType)
        error(Where + "comparison with non-bool result");
      RequireValue(0, IntType);
      RequireValue(1, IntType);
      break;
    case Op::Select:
      if (!RequireOperands(3))
        break;
      RequireValue(0, BoolType);
      RequireValue(1, Inst.ResultType);
      RequireValue(2, Inst.ResultType);
      break;
    case Op::CopyObject:
      if (!RequireOperands(1))
        break;
      RequireValue(0, Inst.ResultType);
      break;
    case Op::CompositeConstruct: {
      std::vector<Id> MemberTypes;
      if (!compositeMemberTypes(Inst.ResultType, MemberTypes)) {
        error(Where + "result type must be vector or struct");
        break;
      }
      if (Inst.Operands.size() != MemberTypes.size()) {
        error(Where + "component count mismatch");
        break;
      }
      for (size_t I = 0; I != MemberTypes.size(); ++I)
        RequireValue(I, MemberTypes[I]);
      break;
    }
    case Op::CompositeExtract: {
      if (Inst.Operands.size() < 2 || !Inst.Operands[0].isId()) {
        error(Where + "malformed CompositeExtract");
        break;
      }
      Id Composite = Inst.idOperand(0);
      checkValueOperand(Where, Func, Block, Index, Composite);
      Id CurrentType = typeOf(Composite);
      for (size_t I = 1; I < Inst.Operands.size(); ++I) {
        if (!Inst.Operands[I].isLiteral()) {
          error(Where + "extract indices must be literals");
          CurrentType = InvalidId;
          break;
        }
        std::vector<Id> MemberTypes;
        if (!compositeMemberTypes(CurrentType, MemberTypes) ||
            Inst.literalOperand(I) >= MemberTypes.size()) {
          error(Where + "extract index out of range");
          CurrentType = InvalidId;
          break;
        }
        CurrentType = MemberTypes[Inst.literalOperand(I)];
      }
      if (CurrentType != InvalidId && CurrentType != Inst.ResultType)
        error(Where + "extract result type mismatch");
      break;
    }
    case Op::Phi: {
      if (Inst.Operands.size() % 2 != 0 || Inst.Operands.empty()) {
        error(Where + "phi needs (value, predecessor) pairs");
        break;
      }
      if (!Graph.isReachable(Block.LabelId))
        break;
      std::vector<Id> Preds = Graph.predecessors(Block.LabelId);
      std::unordered_set<Id> PredSet(Preds.begin(), Preds.end());
      std::unordered_set<Id> SeenPreds;
      for (size_t I = 0; I < Inst.Operands.size(); I += 2) {
        if (!Inst.Operands[I].isId() || !Inst.Operands[I + 1].isId()) {
          error(Where + "phi operands must be ids");
          continue;
        }
        Id Value = Inst.idOperand(I);
        Id Pred = Inst.idOperand(I + 1);
        if (PredSet.count(Pred) == 0)
          error(Where + idStr(Pred) + " is not a predecessor");
        if (!SeenPreds.insert(Pred).second)
          error(Where + "duplicate phi predecessor " + idStr(Pred));
        if (typeOf(Value) != Inst.ResultType)
          error(Where + "phi value type mismatch");
        if (!Analysis->idAvailableAtEnd(Value, Func.id(), Pred))
          error(Where + "phi value " + idStr(Value) +
                " unavailable at end of " + idStr(Pred));
      }
      if (SeenPreds.size() != PredSet.size())
        error(Where + "phi does not cover all predecessors");
      break;
    }
    case Op::Branch:
      if (!RequireOperands(1))
        break;
      checkLabelOperand(Where, Func, Inst.idOperand(0));
      break;
    case Op::BranchConditional:
      if (!RequireOperands(3))
        break;
      RequireValue(0, BoolType);
      checkLabelOperand(Where, Func, Inst.idOperand(1));
      checkLabelOperand(Where, Func, Inst.idOperand(2));
      break;
    case Op::Return:
      if (!typeIdHasOpcode(Func.returnTypeId(), Op::TypeVoid))
        error(Where + "value-returning function returns void");
      break;
    case Op::ReturnValue:
      if (!RequireOperands(1))
        break;
      RequireValue(0, Func.returnTypeId());
      break;
    case Op::Kill:
      break;
    case Op::FunctionCall: {
      if (Inst.Operands.empty() || !Inst.Operands[0].isId()) {
        error(Where + "malformed call");
        break;
      }
      const Function *Callee = M.findFunction(Inst.idOperand(0));
      if (!Callee) {
        error(Where + "call to non-function");
        break;
      }
      if (Callee->returnTypeId() != Inst.ResultType)
        error(Where + "call result type mismatch");
      if (Inst.Operands.size() - 1 != Callee->Params.size()) {
        error(Where + "call argument count mismatch");
        break;
      }
      for (size_t I = 1; I < Inst.Operands.size(); ++I)
        RequireValue(I, Callee->Params[I - 1].ResultType);
      break;
    }
    default:
      error(Where + "opcode not allowed in a function body");
    }
  }

  const Module &M;
  Id BoolType = InvalidId;
  Id IntType = InvalidId;
  std::unique_ptr<ModuleAnalysis> Analysis;
  std::unordered_set<Id> SeenIds;
  std::vector<std::string> Diags;
};

} // namespace

std::vector<std::string> spvfuzz::validateModule(const Module &M) {
  return ValidatorImpl(M).run();
}
