//===- analysis/Validator.h - MiniSPV module validation ---------*- C++ -*-===//
//
// Part of the spirv-fuzz reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Structural, scoping and type validation of MiniSPV modules, mirroring
/// the SPIR-V validation rules that matter for this reproduction:
/// SSA-unique ids, definitions dominating uses, entry-block-first and
/// dominator-before-dominated block layout, phi/predecessor agreement, and
/// per-opcode type rules. Every transformation must map valid modules to
/// valid modules; the property-based tests enforce this with the validator.
///
//===----------------------------------------------------------------------===//

#ifndef ANALYSIS_VALIDATOR_H
#define ANALYSIS_VALIDATOR_H

#include "ir/Module.h"

#include <string>
#include <vector>

namespace spvfuzz {

/// Validates \p M and returns diagnostics; an empty result means valid.
std::vector<std::string> validateModule(const Module &M);

/// Convenience wrapper around validateModule.
inline bool isValidModule(const Module &M) { return validateModule(M).empty(); }

} // namespace spvfuzz

#endif // ANALYSIS_VALIDATOR_H
