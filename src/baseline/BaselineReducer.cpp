//===- baseline/BaselineReducer.cpp - Hand-crafted group reducer ----------===//
//
// Part of the spirv-fuzz reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "baseline/BaselineReducer.h"

using namespace spvfuzz;

ReduceResult spvfuzz::reduceByGroups(
    const Module &Original, const ShaderInput &Input,
    const TransformationSequence &Sequence,
    const std::vector<std::pair<size_t, size_t>> &Groups,
    const InterestingnessTest &Test) {
  ReduceResult Result;

  // Which groups are currently kept.
  std::vector<bool> Kept(Groups.size(), true);

  auto BuildSequence = [&]() {
    TransformationSequence Out;
    for (size_t G = 0; G != Groups.size(); ++G) {
      if (!Kept[G])
        continue;
      for (size_t I = Groups[G].first; I != Groups[G].second; ++I)
        Out.push_back(Sequence[I]);
    }
    return Out;
  };

  auto IsInteresting = [&](const TransformationSequence &Candidate,
                           Module &VariantOut, FactManager &FactsOut) {
    ++Result.Checks;
    VariantOut = Original;
    FactsOut = FactManager();
    FactsOut.setKnownInput(Input);
    applySequence(VariantOut, FactsOut, Candidate);
    return Test(VariantOut, FactsOut);
  };

  // Linear sweeps from the last group to the first, to a fixpoint.
  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (size_t G = Groups.size(); G-- > 0;) {
      if (!Kept[G])
        continue;
      Kept[G] = false;
      Module Variant;
      FactManager Facts;
      if (IsInteresting(BuildSequence(), Variant, Facts)) {
        Changed = true;
      } else {
        Kept[G] = true;
      }
    }
  }

  Result.Minimized = BuildSequence();
  Result.ReducedVariant = Original;
  Result.ReducedFacts = FactManager();
  Result.ReducedFacts.setKnownInput(Input);
  applySequence(Result.ReducedVariant, Result.ReducedFacts, Result.Minimized);
  return Result;
}
