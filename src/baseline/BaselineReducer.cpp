//===- baseline/BaselineReducer.cpp - Hand-crafted group reducer ----------===//
//
// Part of the spirv-fuzz reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "baseline/BaselineReducer.h"

#include "support/Telemetry.h"
#include "support/Trace.h"

#include <algorithm>

using namespace spvfuzz;

ReduceResult spvfuzz::reduceByGroups(
    const Module &Original, const ShaderInput &Input,
    const TransformationSequence &Sequence,
    const std::vector<std::pair<size_t, size_t>> &Groups,
    const InterestingnessTest &Test) {
  ReduceResult Result;
  telemetry::MetricsRegistry &Metrics = telemetry::MetricsRegistry::global();
  telemetry::TraceSpan Span("reduce.groups");
  Span.note({"groups", Groups.size()});
  Span.note({"initial_length", Sequence.size()});
  if (Metrics.enabled())
    Metrics.add("baseline_reducer.reductions");

  // Which groups are currently kept.
  std::vector<bool> Kept(Groups.size(), true);

  auto BuildSequence = [&]() {
    TransformationSequence Out;
    for (size_t G = 0; G != Groups.size(); ++G) {
      if (!Kept[G])
        continue;
      for (size_t I = Groups[G].first; I != Groups[G].second; ++I)
        Out.push_back(Sequence[I]);
    }
    return Out;
  };

  auto IsInteresting = [&](const TransformationSequence &Candidate,
                           Module &VariantOut, FactManager &FactsOut) {
    ++Result.Checks;
    if (Metrics.enabled())
      Metrics.add("baseline_reducer.checks");
    VariantOut = Original;
    FactsOut = FactManager();
    FactsOut.setKnownInput(Input);
    applySequence(VariantOut, FactsOut, Candidate);
    return Test(VariantOut, FactsOut);
  };

  // Linear sweeps from the last group to the first, to a fixpoint.
  bool Changed = true;
  while (Changed) {
    telemetry::Tracer::global().event(
        "reduce.groups.sweep",
        {{"kept_groups",
          static_cast<uint64_t>(std::count(Kept.begin(), Kept.end(), true))},
         {"checks", Result.Checks}});
    Changed = false;
    for (size_t G = Groups.size(); G-- > 0;) {
      if (!Kept[G])
        continue;
      Kept[G] = false;
      Module Variant;
      FactManager Facts;
      if (IsInteresting(BuildSequence(), Variant, Facts)) {
        Changed = true;
      } else {
        Kept[G] = true;
      }
    }
  }

  Result.Minimized = BuildSequence();
  Result.ReducedVariant = Original;
  Result.ReducedFacts = FactManager();
  Result.ReducedFacts.setKnownInput(Input);
  applySequence(Result.ReducedVariant, Result.ReducedFacts, Result.Minimized);
  if (Metrics.enabled()) {
    Metrics.observe("baseline_reducer.checks_per_reduction",
                    static_cast<double>(Result.Checks));
    Metrics.observe("baseline_reducer.minimized_length",
                    static_cast<double>(Result.Minimized.size()));
  }
  Span.note({"checks", Result.Checks});
  Span.note({"minimized_length", Result.Minimized.size()});
  return Result;
}
