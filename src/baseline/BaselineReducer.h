//===- baseline/BaselineReducer.h - Hand-crafted group reducer -*- C++ -*-===//
//
// Part of the spirv-fuzz reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The glsl-fuzz-style reducer. glsl-fuzz reverts whole transformation
/// instances identified by syntactic markers in the transformed program
/// (ğ6 of the paper), so its reduction granularity is the injection, not
/// the individual micro-transformation, and it cannot strip the parts of
/// an injection that are unnecessary for a bug. We model this by reducing
/// over the fuzzer's *pass groups*: a group is kept or reverted in its
/// entirety, with linear sweeps to a fixpoint (no chunk halving).
///
//===----------------------------------------------------------------------===//

#ifndef BASELINE_BASELINEREDUCER_H
#define BASELINE_BASELINEREDUCER_H

#include "core/Reducer.h"

namespace spvfuzz {

/// Reduces at group granularity. \p Groups are the half-open ranges of
/// \p Sequence produced by FuzzResult::PassGroups.
ReduceResult
reduceByGroups(const Module &Original, const ShaderInput &Input,
               const TransformationSequence &Sequence,
               const std::vector<std::pair<size_t, size_t>> &Groups,
               const InterestingnessTest &Test);

} // namespace spvfuzz

#endif // BASELINE_BASELINEREDUCER_H
