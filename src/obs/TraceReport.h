//===- obs/TraceReport.h - Trace file analysis and reporting ----*- C++ -*-===//
//
// Part of the spirv-fuzz reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Reader and report renderer for the hierarchical JSONL traces written by
/// support/Trace.h (`--trace-out`). `minispv report --trace` loads a trace
/// file and renders a per-phase / per-target time breakdown; span time is
/// attributed as *self time* (a span's duration minus its children's), so
/// nested spans never double-count. When a metrics snapshot is supplied
/// alongside, the report also ranks the hottest transformation kinds from
/// the per-kind `transformation.apply_us.<kind>` timing histograms.
///
//===----------------------------------------------------------------------===//

#ifndef OBS_TRACEREPORT_H
#define OBS_TRACEREPORT_H

#include "support/Telemetry.h"

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace spvfuzz {
namespace obs {

/// One parsed trace record (a span or an event). The well-known keys are
/// lifted into members; any extra fields stay in Text/Numbers.
struct TraceRecord {
  std::string Type; // "span" or "event"
  std::string Name;
  std::string Phase;
  uint64_t TsUs = 0;
  uint64_t DurUs = 0;
  uint64_t Id = 0;
  uint64_t Parent = 0;
  std::map<std::string, std::string> Text;
  std::map<std::string, double> Numbers;

  bool isSpan() const { return Type == "span"; }
};

/// Parses one trace line. Returns false and sets \p Error (with a column
/// position) on malformed input.
bool parseTraceLine(const std::string &Line, TraceRecord &Out,
                    std::string &Error);

/// Loads a whole trace file. Returns false and sets \p Error in
/// "path:line: message" form on the first malformed line, or a plain
/// message when the file cannot be opened. Blank lines are skipped.
bool loadTraceFile(const std::string &Path, std::vector<TraceRecord> &Out,
                   std::string &Error);

/// Renders the `minispv report --trace` breakdown: per-phase self-time
/// (with interpreter step attribution from the wave spans), the hottest
/// span names and per-target time, plus — when \p Metrics is non-null —
/// the top \p TopK transformation kinds by total apply time.
std::string renderTraceReport(const std::vector<TraceRecord> &Records,
                              const telemetry::MetricsSnapshot *Metrics,
                              size_t TopK = 5);

} // namespace obs
} // namespace spvfuzz

#endif // OBS_TRACEREPORT_H
