//===- obs/FlatJson.h - Flat JSON-object line parsing -----------*- C++ -*-===//
//
// Part of the spirv-fuzz reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A tiny parser for the flat one-object-per-line JSON both the journal
/// and the tracer emit: a single top-level object whose values are strings
/// or numbers (no nesting, arrays, booleans or nulls). Internal to the obs
/// library; errors carry a column so callers can build line-accurate
/// diagnostics.
///
//===----------------------------------------------------------------------===//

#ifndef OBS_FLATJSON_H
#define OBS_FLATJSON_H

#include <cctype>
#include <cstdlib>
#include <map>
#include <string>

namespace spvfuzz {
namespace obs {

/// The parsed fields of one flat JSON object, split by value type.
struct FlatObject {
  std::map<std::string, std::string> Text;
  std::map<std::string, double> Numbers;

  bool hasText(const std::string &Key) const { return Text.count(Key) != 0; }
  bool hasNumber(const std::string &Key) const {
    return Numbers.count(Key) != 0;
  }
  std::string text(const std::string &Key) const {
    auto It = Text.find(Key);
    return It == Text.end() ? std::string() : It->second;
  }
  double number(const std::string &Key, double Default = 0.0) const {
    auto It = Numbers.find(Key);
    return It == Numbers.end() ? Default : It->second;
  }
  uint64_t count(const std::string &Key) const {
    double Value = number(Key);
    return Value <= 0 ? 0 : static_cast<uint64_t>(Value);
  }
};

/// Parses \p Line as one flat JSON object. Returns false and sets \p Error
/// (with a 1-based "column N" suffix) on malformed input; trailing
/// whitespace after the closing brace is tolerated.
inline bool parseFlatObject(const std::string &Line, FlatObject &Out,
                            std::string &Error) {
  size_t Pos = 0;
  auto failAt = [&](const std::string &Message, size_t Where) {
    Error = Message + ", column " + std::to_string(Where + 1);
    return false;
  };
  auto skipSpace = [&]() {
    while (Pos < Line.size() &&
           std::isspace(static_cast<unsigned char>(Line[Pos])))
      ++Pos;
  };
  auto parseString = [&](std::string &S) {
    skipSpace();
    if (Pos >= Line.size() || Line[Pos] != '"')
      return failAt("expected string", Pos);
    ++Pos;
    S.clear();
    while (Pos < Line.size() && Line[Pos] != '"') {
      char C = Line[Pos++];
      if (C == '\\' && Pos < Line.size()) {
        char E = Line[Pos++];
        switch (E) {
        case 'n':
          S += '\n';
          break;
        case 't':
          S += '\t';
          break;
        case 'u':
          if (Pos + 4 > Line.size())
            return failAt("truncated \\u escape", Pos);
          S += static_cast<char>(
              std::strtoul(Line.substr(Pos, 4).c_str(), nullptr, 16));
          Pos += 4;
          break;
        default:
          S += E;
        }
      } else {
        S += C;
      }
    }
    if (Pos >= Line.size())
      return failAt("unterminated string", Pos);
    ++Pos; // closing quote
    return true;
  };
  auto parseNumber = [&](double &Value) {
    skipSpace();
    size_t End = Pos;
    while (End < Line.size() &&
           (std::isdigit(static_cast<unsigned char>(Line[End])) ||
            Line[End] == '-' || Line[End] == '+' || Line[End] == '.' ||
            Line[End] == 'e' || Line[End] == 'E'))
      ++End;
    if (End == Pos)
      return failAt("expected number", Pos);
    Value = std::strtod(Line.substr(Pos, End - Pos).c_str(), nullptr);
    Pos = End;
    return true;
  };

  skipSpace();
  if (Pos >= Line.size() || Line[Pos] != '{')
    return failAt("expected '{'", Pos);
  ++Pos;
  skipSpace();
  if (Pos < Line.size() && Line[Pos] == '}') {
    ++Pos;
  } else {
    while (true) {
      std::string Key;
      if (!parseString(Key))
        return false;
      skipSpace();
      if (Pos >= Line.size() || Line[Pos] != ':')
        return failAt("expected ':'", Pos);
      ++Pos;
      skipSpace();
      if (Pos < Line.size() && Line[Pos] == '"') {
        std::string Value;
        if (!parseString(Value))
          return false;
        Out.Text[Key] = std::move(Value);
      } else {
        double Value = 0.0;
        if (!parseNumber(Value))
          return false;
        Out.Numbers[Key] = Value;
      }
      skipSpace();
      if (Pos < Line.size() && Line[Pos] == ',') {
        ++Pos;
        continue;
      }
      if (Pos < Line.size() && Line[Pos] == '}') {
        ++Pos;
        break;
      }
      return failAt("expected ',' or '}'", Pos);
    }
  }
  skipSpace();
  if (Pos != Line.size())
    return failAt("trailing garbage after object", Pos);
  return true;
}

} // namespace obs
} // namespace spvfuzz

#endif // OBS_FLATJSON_H
