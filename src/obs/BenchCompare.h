//===- obs/BenchCompare.h - Bench snapshot regression compare ---*- C++ -*-===//
//
// Part of the spirv-fuzz reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Performance-trajectory comparison between two metrics snapshots (a
/// committed `bench/baselines/BENCH_*.json` baseline and a fresh bench
/// run). `minispv report --compare A.json B.json` renders the delta table
/// and exits nonzero when a throughput gauge regressed beyond the
/// configured threshold, which is how CI gates on bench regressions.
///
/// Regression rules are deliberately narrow: only timing gauges are
/// judged. A `*per_sec*` gauge dropping by more than the threshold, or a
/// `*wall_seconds*` gauge rising by more than it, is a regression; counter
/// drift (different work done) is reported as a warning, never a failure,
/// because decision counters are compared exactly by the determinism CI
/// steps instead.
///
//===----------------------------------------------------------------------===//

#ifndef OBS_BENCHCOMPARE_H
#define OBS_BENCHCOMPARE_H

#include "support/Telemetry.h"

#include <string>
#include <vector>

namespace spvfuzz {
namespace obs {

struct CompareOptions {
  /// Percentage change beyond which a judged gauge counts as regressed.
  double ThresholdPct = 25.0;
};

struct CompareResult {
  /// The rendered delta table.
  std::string Report;
  /// One line per regressed gauge; empty means the gate passes.
  std::vector<std::string> Regressions;
  /// Non-fatal observations (counter drift, metrics missing on one side).
  std::vector<std::string> Warnings;
};

CompareResult compareSnapshots(const telemetry::MetricsSnapshot &Base,
                               const telemetry::MetricsSnapshot &Current,
                               const CompareOptions &Opts = CompareOptions{});

} // namespace obs
} // namespace spvfuzz

#endif // OBS_BENCHCOMPARE_H
