//===- obs/Monitor.cpp - Live campaign monitoring views -------------------===//
//
// Part of the spirv-fuzz reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "obs/Monitor.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

using namespace spvfuzz;
using namespace spvfuzz::obs;

TopModel obs::buildTopModel(const std::vector<JournalEvent> &Events) {
  TopModel Model;
  for (const JournalEvent &Event : Events) {
    if (Event.WallUs) {
      if (!Model.FirstWallUs)
        Model.FirstWallUs = Event.WallUs;
      Model.LastWallUs = std::max(Model.LastWallUs, Event.WallUs);
    }
    switch (Event.Kind) {
    case JournalEventKind::CampaignStarted:
      Model.Campaign = Event.Campaign;
      Model.Seed = Event.Seed;
      Model.Limit = Event.Limit;
      Model.Tests = Event.Total;
      break;
    case JournalEventKind::WaveCommitted: {
      PhaseProgress *Row = nullptr;
      for (PhaseProgress &Existing : Model.Phases)
        if (Existing.Phase == Event.Phase)
          Row = &Existing;
      if (!Row) {
        Model.Phases.push_back({Event.Phase, 0, 0, 0});
        Row = &Model.Phases.back();
      }
      Row->Wave = Event.Wave;
      Row->Total = Event.Total;
      Row->Count = Event.Count;
      break;
    }
    case JournalEventKind::BugFound:
      ++Model.BugEvents;
      Model.BugsPerTarget[Event.Target].insert(Event.Signature);
      break;
    case JournalEventKind::ReductionStep:
      ++Model.Reductions;
      break;
    case JournalEventKind::PostReduceStep:
      Model.PostReduceAccepted += Event.Accepted;
      break;
    case JournalEventKind::BugAttributed:
      ++Model.Attributions;
      break;
    case JournalEventKind::TargetQuarantined:
      Model.Quarantined.insert(Event.Target);
      break;
    case JournalEventKind::CheckpointSaved:
      ++Model.Checkpoints;
      break;
    case JournalEventKind::CampaignFinished:
      Model.Finished = true;
      Model.FinalBugs = Event.Count;
      break;
    case JournalEventKind::WorkerAttached:
    case JournalEventKind::WorkerExited:
    case JournalEventKind::ShardLeased:
    case JournalEventKind::ShardCompleted:
    case JournalEventKind::LeaseExpired:
      // Scheduling events live in serve.jsonl and fold into ServeModel.
      break;
    }
  }
  return Model;
}

ServeModel obs::buildServeModel(const std::vector<JournalEvent> &Events) {
  ServeModel Model;
  auto Row = [&](uint64_t Worker) -> WorkerStatus & {
    for (WorkerStatus &Existing : Model.Workers)
      if (Existing.Worker == Worker)
        return Existing;
    Model.Workers.push_back({});
    Model.Workers.back().Worker = Worker;
    return Model.Workers.back();
  };
  for (const JournalEvent &Event : Events) {
    switch (Event.Kind) {
    case JournalEventKind::WorkerAttached: {
      WorkerStatus &W = Row(Event.Worker);
      W.Pid = Event.Count;
      W.Exited = false;
      break;
    }
    case JournalEventKind::WorkerExited:
      Row(Event.Worker).Exited = true;
      break;
    case JournalEventKind::ShardLeased: {
      ++Model.ShardsLeased;
      WorkerStatus &W = Row(Event.Worker);
      W.LastPhase = Event.Phase;
      W.LastWave = Event.Wave;
      break;
    }
    case JournalEventKind::ShardCompleted: {
      ++Model.ShardsCompleted;
      WorkerStatus &W = Row(Event.Worker);
      ++W.ShardsCompleted;
      W.LastPhase = Event.Phase;
      W.LastWave = Event.Wave;
      break;
    }
    case JournalEventKind::LeaseExpired:
      ++Model.LeasesExpired;
      ++Row(Event.Worker).LeasesExpired;
      break;
    default:
      break;
    }
  }
  std::sort(Model.Workers.begin(), Model.Workers.end(),
            [](const WorkerStatus &A, const WorkerStatus &B) {
              return A.Worker < B.Worker;
            });
  return Model;
}

namespace {

std::string formatSeconds(double Seconds) {
  char Buf[32];
  if (Seconds >= 90.0)
    std::snprintf(Buf, sizeof(Buf), "%.1fm", Seconds / 60.0);
  else
    std::snprintf(Buf, sizeof(Buf), "%.1fs", Seconds);
  return Buf;
}

/// Hit rate of a hits/misses counter pair, or -1 when never exercised.
double hitRate(const telemetry::MetricsSnapshot &Metrics,
               const std::string &HitsName, const std::string &MissesName) {
  auto Hits = Metrics.Counters.find(HitsName);
  auto Misses = Metrics.Counters.find(MissesName);
  double H = Hits == Metrics.Counters.end() ? 0.0
                                            : static_cast<double>(Hits->second);
  double M = Misses == Metrics.Counters.end()
                 ? 0.0
                 : static_cast<double>(Misses->second);
  if (H + M == 0.0)
    return -1.0;
  return H / (H + M) * 100.0;
}

} // namespace

std::string obs::renderTop(const TopModel &Model,
                           const telemetry::MetricsSnapshot *Metrics) {
  std::ostringstream Out;
  char Line[320];

  Out << "campaign " << (Model.Campaign.empty() ? "?" : Model.Campaign)
      << "  seed=" << Model.Seed << " limit=" << Model.Limit
      << " tests=" << Model.Tests << "  ["
      << (Model.Finished ? "finished" : "running") << "]\n";

  double ElapsedSec =
      Model.LastWallUs > Model.FirstWallUs
          ? static_cast<double>(Model.LastWallUs - Model.FirstWallUs) / 1e6
          : 0.0;
  std::snprintf(Line, sizeof(Line),
                "bugs=%llu (events)  reductions=%llu  checkpoints=%llu",
                (unsigned long long)Model.BugEvents,
                (unsigned long long)Model.Reductions,
                (unsigned long long)Model.Checkpoints);
  Out << Line;
  if (Model.PostReduceAccepted) {
    std::snprintf(Line, sizeof(Line), "  post-reduce=%llu",
                  (unsigned long long)Model.PostReduceAccepted);
    Out << Line;
  }
  if (Model.Attributions) {
    std::snprintf(Line, sizeof(Line), "  attributions=%llu",
                  (unsigned long long)Model.Attributions);
    Out << Line;
  }
  if (ElapsedSec > 0.0) {
    std::snprintf(Line, sizeof(Line), "  elapsed=%s  bugs/sec=%.2f",
                  formatSeconds(ElapsedSec).c_str(),
                  static_cast<double>(Model.BugEvents) / ElapsedSec);
    Out << Line;
  }
  Out << "\n\n";

  Out << "phases\n";
  size_t Width = 8;
  for (const PhaseProgress &Phase : Model.Phases)
    Width = std::max(Width, Phase.Phase.size());
  std::snprintf(Line, sizeof(Line), "  %-*s %14s %6s %8s %8s", (int)Width,
                "phase", "wave", "pct", "count", "eta");
  Out << Line << "\n";
  for (size_t I = 0; I < Model.Phases.size(); ++I) {
    const PhaseProgress &Phase = Model.Phases[I];
    double Pct = Phase.Total
                     ? static_cast<double>(Phase.Wave) /
                           static_cast<double>(Phase.Total) * 100.0
                     : 0.0;
    std::string Wave =
        std::to_string(Phase.Wave) + "/" + std::to_string(Phase.Total);
    std::string Eta = "-";
    // ETA only makes sense for the phase still in flight (the last one),
    // and only when the journal carries wall-clock stamps.
    bool InFlight = !Model.Finished && I + 1 == Model.Phases.size() &&
                    Phase.Wave < Phase.Total;
    if (InFlight && ElapsedSec > 0.0 && Phase.Wave > 0) {
      double Remaining = ElapsedSec *
                         static_cast<double>(Phase.Total - Phase.Wave) /
                         static_cast<double>(Phase.Wave);
      Eta = formatSeconds(Remaining);
    }
    std::snprintf(Line, sizeof(Line), "  %-*s %14s %5.1f%% %8llu %8s",
                  (int)Width, Phase.Phase.c_str(), Wave.c_str(), Pct,
                  (unsigned long long)Phase.Count, Eta.c_str());
    Out << Line << "\n";
  }
  if (Model.Phases.empty())
    Out << "  (no waves committed yet)\n";
  Out << "\n";

  Out << "targets\n";
  Width = 8;
  for (const auto &[Target, Sigs] : Model.BugsPerTarget)
    Width = std::max(Width, Target.size());
  for (const std::string &Target : Model.Quarantined)
    Width = std::max(Width, Target.size());
  std::snprintf(Line, sizeof(Line), "  %-*s %14s  %s", (int)Width, "target",
                "distinct-bugs", "state");
  Out << Line << "\n";
  std::set<std::string> AllTargets = Model.Quarantined;
  for (const auto &[Target, Sigs] : Model.BugsPerTarget)
    AllTargets.insert(Target);
  for (const std::string &Target : AllTargets) {
    auto Sigs = Model.BugsPerTarget.find(Target);
    size_t Distinct = Sigs == Model.BugsPerTarget.end() ? 0
                                                        : Sigs->second.size();
    std::snprintf(Line, sizeof(Line), "  %-*s %14llu  %s", (int)Width,
                  Target.c_str(), (unsigned long long)Distinct,
                  Model.Quarantined.count(Target) ? "QUARANTINED" : "ok");
    Out << Line << "\n";
  }
  if (AllTargets.empty())
    Out << "  (no bugs observed yet)\n";

  if (Metrics) {
    Out << "\ncaches\n";
    double EvalRate =
        hitRate(*Metrics, "evalcache.hits", "evalcache.misses");
    // Replay-cache "hit rate": transformation applications the prefix
    // snapshots let the reducer skip, over all it would otherwise replay.
    double Skipped = 0.0, Applied = 0.0;
    for (const auto &[Name, Value] : Metrics->Counters) {
      if (Name == "replaycache.transformations_skipped")
        Skipped += static_cast<double>(Value);
      else if (Name.rfind("replay.applications.", 0) == 0)
        Applied += static_cast<double>(Value);
    }
    double ReplayRate =
        Skipped + Applied > 0.0 ? Skipped / (Skipped + Applied) * 100.0 : -1.0;
    if (EvalRate >= 0.0) {
      std::snprintf(Line, sizeof(Line), "  evalcache hit rate: %5.1f%%",
                    EvalRate);
      Out << Line << "\n";
    }
    if (ReplayRate >= 0.0) {
      std::snprintf(Line, sizeof(Line), "  replay-cache skip rate: %5.1f%%",
                    ReplayRate);
      Out << Line << "\n";
    }
    if (EvalRate < 0.0 && ReplayRate < 0.0)
      Out << "  (no cache counters in metrics snapshot)\n";
  }
  if (Model.Finished) {
    std::snprintf(Line, sizeof(Line),
                  "\nCampaignFinished: %llu distinct bugs",
                  (unsigned long long)Model.FinalBugs);
    Out << Line << "\n";
  }
  return Out.str();
}

std::string obs::renderServePanel(const ServeModel &Model) {
  std::ostringstream Out;
  char Line[320];
  std::snprintf(Line, sizeof(Line),
                "workers  shards: %llu leased, %llu completed, %llu leases "
                "expired",
                (unsigned long long)Model.ShardsLeased,
                (unsigned long long)Model.ShardsCompleted,
                (unsigned long long)Model.LeasesExpired);
  Out << Line << "\n";
  std::snprintf(Line, sizeof(Line), "  %6s %8s %8s %8s  %-24s %8s", "worker",
                "pid", "shards", "expired", "last phase", "state");
  Out << Line << "\n";
  for (const WorkerStatus &W : Model.Workers) {
    // Worker 0 is the coordinator's own inline-compute fallback.
    std::string Name = W.Worker == 0 ? "coord" : std::to_string(W.Worker);
    std::string LastPhase = W.LastPhase.empty()
                                ? "-"
                                : W.LastPhase + "@" +
                                      std::to_string(W.LastWave);
    std::snprintf(Line, sizeof(Line), "  %6s %8llu %8llu %8llu  %-24s %8s",
                  Name.c_str(), (unsigned long long)W.Pid,
                  (unsigned long long)W.ShardsCompleted,
                  (unsigned long long)W.LeasesExpired, LastPhase.c_str(),
                  W.Exited ? "exited" : "live");
    Out << Line << "\n";
  }
  if (Model.Workers.empty())
    Out << "  (no worker events)\n";
  return Out.str();
}
