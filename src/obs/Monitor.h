//===- obs/Monitor.h - Live campaign monitoring views -----------*- C++ -*-===//
//
// Part of the spirv-fuzz reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The read side of the live monitoring surface: `minispv top <store>`
/// folds the journal into a TopModel — campaign identity, per-phase wave
/// progress, per-target bug/quarantine state, throughput and an ETA — and
/// renders it as a single screen, refreshed in place while the campaign
/// runs. The model is pure journal-fold, so it works equally on a live
/// journal (tail + re-fold) and on a finished one (post-mortem).
///
//===----------------------------------------------------------------------===//

#ifndef OBS_MONITOR_H
#define OBS_MONITOR_H

#include "obs/Journal.h"
#include "support/Telemetry.h"

#include <map>
#include <set>
#include <string>
#include <vector>

namespace spvfuzz {
namespace obs {

/// Wave progress of one engine phase, from its latest WaveCommitted.
struct PhaseProgress {
  std::string Phase;
  uint64_t Wave = 0;
  uint64_t Total = 0;
  /// The phase's running tally (bugs or reductions committed so far).
  uint64_t Count = 0;
};

/// Everything `minispv top` shows, folded from the journal events.
struct TopModel {
  std::string Campaign;
  uint64_t Seed = 0;
  uint64_t Limit = 0;
  uint64_t Tests = 0;
  bool Finished = false;
  uint64_t FinalBugs = 0;
  /// Phases in first-seen (journal) order.
  std::vector<PhaseProgress> Phases;
  /// Distinct signatures seen per target.
  std::map<std::string, std::set<std::string>> BugsPerTarget;
  std::set<std::string> Quarantined;
  uint64_t BugEvents = 0;
  uint64_t Reductions = 0;
  /// IR-level post-reduction acceptances (PostReduceStep events' Accepted
  /// sum); stays 0 unless the campaign ran with post-reduce enabled.
  uint64_t PostReduceAccepted = 0;
  /// Triage attributions journaled (BugAttributed events); stays 0 unless
  /// the campaign ran with --triage.
  uint64_t Attributions = 0;
  uint64_t Checkpoints = 0;
  /// Wall-clock range covered by the journal (0 under deterministic mode).
  uint64_t FirstWallUs = 0;
  uint64_t LastWallUs = 0;
};

TopModel buildTopModel(const std::vector<JournalEvent> &Events);

/// Per-worker scheduling state of a scale-out run, folded from the
/// serve.jsonl stream (servePathFor). Worker 0 is the coordinator's
/// inline-compute fallback.
struct WorkerStatus {
  uint64_t Worker = 0;
  uint64_t Pid = 0;
  uint64_t ShardsCompleted = 0;
  uint64_t LeasesExpired = 0;
  std::string LastPhase;
  uint64_t LastWave = 0;
  bool Exited = false;
};

/// The `minispv top` per-worker panel, shown when the store has a
/// scheduling journal.
struct ServeModel {
  std::vector<WorkerStatus> Workers;
  uint64_t ShardsLeased = 0;
  uint64_t ShardsCompleted = 0;
  uint64_t LeasesExpired = 0;
};

ServeModel buildServeModel(const std::vector<JournalEvent> &Events);

/// Renders the single-screen `minispv top` view. \p Metrics (optional)
/// contributes cache hit rates when the campaign also exported a metrics
/// snapshot into the store.
std::string renderTop(const TopModel &Model,
                      const telemetry::MetricsSnapshot *Metrics);

/// Renders the per-worker panel appended below renderTop for scale-out
/// runs.
std::string renderServePanel(const ServeModel &Model);

} // namespace obs
} // namespace spvfuzz

#endif // OBS_MONITOR_H
