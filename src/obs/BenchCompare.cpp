//===- obs/BenchCompare.cpp - Bench snapshot regression compare -----------===//
//
// Part of the spirv-fuzz reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "obs/BenchCompare.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <set>
#include <sstream>

using namespace spvfuzz;
using namespace spvfuzz::obs;

namespace {

double percentDelta(double Base, double Current) {
  if (Base == 0.0)
    return Current == 0.0 ? 0.0 : 100.0;
  return (Current - Base) / std::fabs(Base) * 100.0;
}

std::string formatValue(double Value) {
  char Buf[64];
  if (std::fabs(Value) >= 1000.0 || Value == std::floor(Value))
    std::snprintf(Buf, sizeof(Buf), "%.0f", Value);
  else
    std::snprintf(Buf, sizeof(Buf), "%.4f", Value);
  return Buf;
}

/// Is gauge \p Name judged, and if so, is \p Delta (in percent) a
/// regression? Throughput gauges regress downward, wall-time gauges
/// regress upward.
bool isRegression(const std::string &Name, double Delta, double Threshold) {
  if (Name.find("per_sec") != std::string::npos)
    return Delta < -Threshold;
  if (Name.find("wall_seconds") != std::string::npos)
    return Delta > Threshold;
  return false;
}

bool isJudged(const std::string &Name) {
  return Name.find("per_sec") != std::string::npos ||
         Name.find("wall_seconds") != std::string::npos;
}

} // namespace

CompareResult obs::compareSnapshots(const telemetry::MetricsSnapshot &Base,
                                    const telemetry::MetricsSnapshot &Current,
                                    const CompareOptions &Opts) {
  CompareResult Result;
  std::ostringstream Out;

  std::set<std::string> GaugeNames;
  for (const auto &[Name, Value] : Base.Gauges)
    GaugeNames.insert(Name);
  for (const auto &[Name, Value] : Current.Gauges)
    GaugeNames.insert(Name);

  size_t Width = 12;
  for (const std::string &Name : GaugeNames)
    Width = std::max(Width, Name.size());

  char Line[320];
  Out << "gauges (threshold " << formatValue(Opts.ThresholdPct) << "%)\n";
  std::snprintf(Line, sizeof(Line), "  %-*s %14s %14s %9s  %s", (int)Width,
                "gauge", "base", "current", "delta%", "verdict");
  Out << Line << "\n";
  for (const std::string &Name : GaugeNames) {
    auto BaseIt = Base.Gauges.find(Name);
    auto CurrentIt = Current.Gauges.find(Name);
    if (BaseIt == Base.Gauges.end() || CurrentIt == Current.Gauges.end()) {
      Result.Warnings.push_back(
          "gauge '" + Name + "' present only in the " +
          (BaseIt == Base.Gauges.end() ? "current" : "base") + " snapshot");
      continue;
    }
    double Delta = percentDelta(BaseIt->second, CurrentIt->second);
    const char *Verdict = "";
    if (isRegression(Name, Delta, Opts.ThresholdPct)) {
      Verdict = "REGRESSION";
      char Message[320];
      std::snprintf(Message, sizeof(Message),
                    "%s regressed %+.1f%% (base %s, current %s, threshold "
                    "%.0f%%)",
                    Name.c_str(), Delta, formatValue(BaseIt->second).c_str(),
                    formatValue(CurrentIt->second).c_str(),
                    Opts.ThresholdPct);
      Result.Regressions.push_back(Message);
    } else if (isJudged(Name)) {
      Verdict = "ok";
    }
    std::snprintf(Line, sizeof(Line), "  %-*s %14s %14s %+8.1f%%  %s",
                  (int)Width, Name.c_str(),
                  formatValue(BaseIt->second).c_str(),
                  formatValue(CurrentIt->second).c_str(), Delta, Verdict);
    Out << Line << "\n";
  }
  if (GaugeNames.empty())
    Out << "  (no gauges)\n";
  Out << "\n";

  // Counters: exact-work drift is informational. Only differing counters
  // are listed to keep the table focused.
  std::set<std::string> CounterNames;
  for (const auto &[Name, Value] : Base.Counters)
    CounterNames.insert(Name);
  for (const auto &[Name, Value] : Current.Counters)
    CounterNames.insert(Name);
  std::vector<std::string> Differing;
  for (const std::string &Name : CounterNames) {
    auto BaseIt = Base.Counters.find(Name);
    auto CurrentIt = Current.Counters.find(Name);
    uint64_t BaseValue = BaseIt == Base.Counters.end() ? 0 : BaseIt->second;
    uint64_t CurrentValue =
        CurrentIt == Current.Counters.end() ? 0 : CurrentIt->second;
    if (BaseValue != CurrentValue)
      Differing.push_back(Name);
  }
  Out << "counters: " << CounterNames.size() << " compared, "
      << Differing.size() << " differ\n";
  for (const std::string &Name : Differing) {
    auto BaseIt = Base.Counters.find(Name);
    auto CurrentIt = Current.Counters.find(Name);
    uint64_t BaseValue = BaseIt == Base.Counters.end() ? 0 : BaseIt->second;
    uint64_t CurrentValue =
        CurrentIt == Current.Counters.end() ? 0 : CurrentIt->second;
    std::snprintf(Line, sizeof(Line), "  %-*s %14llu %14llu", (int)Width,
                  Name.c_str(), (unsigned long long)BaseValue,
                  (unsigned long long)CurrentValue);
    Out << Line << "\n";
  }
  if (!Differing.empty())
    Result.Warnings.push_back(std::to_string(Differing.size()) +
                              " counter(s) differ between snapshots (work "
                              "drift; not judged for regression)");

  Result.Report = Out.str();
  return Result;
}
