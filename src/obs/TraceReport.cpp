//===- obs/TraceReport.cpp - Trace file analysis and reporting ------------===//
//
// Part of the spirv-fuzz reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "obs/TraceReport.h"

#include "obs/FlatJson.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>

using namespace spvfuzz;
using namespace spvfuzz::obs;

bool obs::parseTraceLine(const std::string &Line, TraceRecord &Out,
                         std::string &Error) {
  FlatObject Object;
  if (!parseFlatObject(Line, Object, Error))
    return false;
  if (!Object.hasText("type")) {
    Error = "missing record type";
    return false;
  }
  if (!Object.hasText("name")) {
    Error = "missing record name";
    return false;
  }
  Out.Type = Object.text("type");
  Out.Name = Object.text("name");
  Out.Phase = Object.text("phase");
  Out.TsUs = Object.count("ts_us");
  Out.DurUs = Object.count("dur_us");
  Out.Id = Object.count("id");
  Out.Parent = Object.count("parent");
  Out.Text = std::move(Object.Text);
  Out.Numbers = std::move(Object.Numbers);
  for (const char *Known :
       {"type", "name", "phase"})
    Out.Text.erase(Known);
  for (const char *Known : {"ts_us", "dur_us", "id", "parent"})
    Out.Numbers.erase(Known);
  return true;
}

bool obs::loadTraceFile(const std::string &Path,
                        std::vector<TraceRecord> &Out, std::string &Error) {
  std::ifstream In(Path, std::ios::binary);
  if (!In) {
    Error = "cannot open '" + Path + "'";
    return false;
  }
  std::string Line;
  uint64_t LineNo = 0;
  while (std::getline(In, Line)) {
    ++LineNo;
    if (Line.empty())
      continue;
    TraceRecord Record;
    std::string LineError;
    if (!parseTraceLine(Line, Record, LineError)) {
      Error = Path + ":" + std::to_string(LineNo) + ": " + LineError;
      return false;
    }
    Out.push_back(std::move(Record));
  }
  return true;
}

namespace {

std::string formatMs(double Us) {
  char Buf[32];
  std::snprintf(Buf, sizeof(Buf), "%.2f", Us / 1000.0);
  return Buf;
}

struct Row {
  std::string Label;
  uint64_t Count = 0;
  double SelfUs = 0.0;
  double TotalUs = 0.0;
  double Steps = 0.0;
};

void renderRows(std::ostringstream &Out, const char *Header,
                const char *LabelName, std::vector<Row> Rows, size_t Limit,
                bool ShowSteps) {
  std::sort(Rows.begin(), Rows.end(), [](const Row &A, const Row &B) {
    return A.SelfUs != B.SelfUs ? A.SelfUs > B.SelfUs : A.Label < B.Label;
  });
  if (Limit && Rows.size() > Limit)
    Rows.resize(Limit);
  size_t Width = 12;
  for (const Row &R : Rows)
    Width = std::max(Width, R.Label.size());
  Out << Header << "\n";
  char Line[256];
  std::snprintf(Line, sizeof(Line), "  %-*s %10s %12s %12s", (int)Width,
                LabelName, "count", "self-ms", "total-ms");
  Out << Line;
  if (ShowSteps)
    Out << "        steps";
  Out << "\n";
  for (const Row &R : Rows) {
    std::snprintf(Line, sizeof(Line), "  %-*s %10llu %12s %12s", (int)Width,
                  R.Label.c_str(), (unsigned long long)R.Count,
                  formatMs(R.SelfUs).c_str(), formatMs(R.TotalUs).c_str());
    Out << Line;
    if (ShowSteps) {
      std::snprintf(Line, sizeof(Line), " %12.0f", R.Steps);
      Out << Line;
    }
    Out << "\n";
  }
  if (Rows.empty())
    Out << "  (none)\n";
  Out << "\n";
}

} // namespace

std::string obs::renderTraceReport(const std::vector<TraceRecord> &Records,
                                   const telemetry::MetricsSnapshot *Metrics,
                                   size_t TopK) {
  // Self time: a span's duration minus the summed duration of its direct
  // children. Spans are emitted at destruction (children precede parents),
  // so child sums must be collected over the whole file first.
  std::map<uint64_t, double> ChildUs;
  size_t Spans = 0, Events = 0;
  uint64_t EndUs = 0;
  for (const TraceRecord &Record : Records) {
    EndUs = std::max(EndUs, Record.TsUs + Record.DurUs);
    if (!Record.isSpan()) {
      ++Events;
      continue;
    }
    ++Spans;
    if (Record.Parent)
      ChildUs[Record.Parent] += static_cast<double>(Record.DurUs);
  }

  auto selfUs = [&](const TraceRecord &Record) {
    double Children = 0.0;
    auto It = ChildUs.find(Record.Id);
    if (It != ChildUs.end())
      Children = It->second;
    double Dur = static_cast<double>(Record.DurUs);
    return Dur > Children ? Dur - Children : 0.0;
  };

  std::map<std::string, Row> PerPhase, PerName, PerTarget;
  for (const TraceRecord &Record : Records) {
    if (!Record.isSpan())
      continue;
    double Self = selfUs(Record);
    double Dur = static_cast<double>(Record.DurUs);

    std::string Phase = Record.Phase.empty() ? "(other)" : Record.Phase;
    Row &P = PerPhase[Phase];
    P.Label = Phase;
    ++P.Count;
    P.SelfUs += Self;
    P.TotalUs += Dur;
    auto Steps = Record.Numbers.find("steps");
    if (Steps != Record.Numbers.end())
      P.Steps += Steps->second;

    Row &N = PerName[Record.Name];
    N.Label = Record.Name;
    ++N.Count;
    N.SelfUs += Self;
    N.TotalUs += Dur;

    auto Target = Record.Text.find("target");
    if (Target != Record.Text.end()) {
      Row &T = PerTarget[Target->second];
      T.Label = Target->second;
      ++T.Count;
      T.SelfUs += Self;
      T.TotalUs += Dur;
    }
  }

  auto values = [](const std::map<std::string, Row> &Rows) {
    std::vector<Row> Out;
    for (const auto &[Label, R] : Rows)
      Out.push_back(R);
    return Out;
  };

  std::ostringstream Out;
  Out << "trace report: " << Spans << " spans, " << Events << " events, "
      << formatMs(static_cast<double>(EndUs)) << " ms covered\n\n";
  renderRows(Out, "time by phase (span self time)", "phase",
             values(PerPhase), /*Limit=*/0, /*ShowSteps=*/true);
  renderRows(Out, "hottest spans", "span", values(PerName), TopK,
             /*ShowSteps=*/false);
  renderRows(Out, "time by target", "target", values(PerTarget),
             /*Limit=*/0, /*ShowSteps=*/false);

  if (Metrics) {
    static const std::string Prefix = "transformation.apply_us.";
    std::vector<std::pair<std::string, telemetry::HistogramStats>> Kinds;
    for (const auto &[Name, Stats] : Metrics->Histograms)
      if (Name.rfind(Prefix, 0) == 0)
        Kinds.emplace_back(Name.substr(Prefix.size()), Stats);
    std::sort(Kinds.begin(), Kinds.end(), [](const auto &A, const auto &B) {
      return A.second.Sum != B.second.Sum ? A.second.Sum > B.second.Sum
                                          : A.first < B.first;
    });
    if (Kinds.size() > TopK)
      Kinds.resize(TopK);
    Out << "hottest transformation kinds (apply time)\n";
    if (Kinds.empty()) {
      Out << "  (no transformation.apply_us.* histograms in metrics)\n";
    } else {
      char Line[256];
      std::snprintf(Line, sizeof(Line), "  %-28s %10s %12s %10s %10s",
                    "kind", "applies", "total-ms", "mean-us", "p99-us");
      Out << Line << "\n";
      for (const auto &[Kind, Stats] : Kinds) {
        std::snprintf(Line, sizeof(Line),
                      "  %-28s %10llu %12s %10.1f %10.1f", Kind.c_str(),
                      (unsigned long long)Stats.Count,
                      formatMs(Stats.Sum).c_str(), Stats.Mean, Stats.P99);
        Out << Line << "\n";
      }
    }
    Out << "\n";
  }
  return Out.str();
}
