//===- obs/Journal.h - Crash-safe campaign event journal --------*- C++ -*-===//
//
// Part of the spirv-fuzz reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The campaign event journal: a typed, versioned, append-only JSONL
/// stream of the campaign's decision events, written into
/// `<store>/journal/events.jsonl` in serial commit order. Because every
/// event is emitted at a serial commit point of the campaign engine (wave
/// boundaries, in test-index order), the decision-bearing byte stream at
/// `--jobs N` is identical to `--jobs 1`; the only non-deterministic field
/// is the trailing `wall_us` wall-clock stamp, which `--deterministic-
/// journal` zeroes so journals can be diffed directly.
///
/// One line per event, each line self-describing and versioned:
///
///   {"v":2,"seq":12,"kind":"BugFound","phase":"eval/spirv-fuzz/100",
///    "wave":64,"test":41,"target":"Mali","signature":"...","wall_us":...}
///
/// Crash safety: lines are flushed to the OS as they are appended and
/// fsync'd at wave boundaries (JournalWriter::commit), and every append
/// happens *before* the corresponding store checkpoint save — so after a
/// crash the journal is always at or ahead of the store. On resume the
/// writer keeps the parseable prefix (a torn tail from a mid-write crash
/// is truncated away), and the engine's onPhaseStarted callback trims the
/// journal back to the wave the store actually resumes from; recomputed
/// waves then re-append byte-identical events. A `CampaignFinished` line
/// therefore marks a journal as complete: anything after the last
/// checkpoint of an interrupted run is reproduced, never duplicated.
///
/// The journal covers the most recent campaign run into the store; the
/// live monitoring surface (`minispv top` / `minispv tail --follow`)
/// tails it while the campaign is still running via JournalTailer.
///
//===----------------------------------------------------------------------===//

#ifndef OBS_JOURNAL_H
#define OBS_JOURNAL_H

#include "campaign/CampaignEngine.h"

#include <cstdint>
#include <cstdio>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace spvfuzz {
namespace obs {

/// The journal line-format version this build writes. Readers refuse
/// lines from a newer version instead of misinterpreting them.
/// Version 2 added the PostReduceStep event kind (IR-level post-reduction
/// pass accounting, emitted only when the policy enables post-reduce).
/// Version 3 added the BugAttributed event kind (triage post-pass,
/// emitted only under --triage).
constexpr uint64_t JournalFormatVersion = 3;

/// Every event kind the journal records. The first block are the
/// campaign's decision events (written to events.jsonl in serial commit
/// order, byte-identical at any job or worker count); the Worker* / Shard*
/// / Lease* kinds are scale-out *scheduling* events, which are inherently
/// nondeterministic and therefore go to a separate stream
/// (`<store>/journal/serve.jsonl`, see servePathFor) that equivalence
/// checks never diff.
enum class JournalEventKind {
  CampaignStarted,
  WaveCommitted,
  BugFound,
  ReductionStep,
  PostReduceStep,
  BugAttributed,
  TargetQuarantined,
  CheckpointSaved,
  CampaignFinished,
  WorkerAttached,
  WorkerExited,
  ShardLeased,
  ShardCompleted,
  LeaseExpired,
};

const char *journalEventKindName(JournalEventKind Kind);
bool journalEventKindFromName(const std::string &Name,
                              JournalEventKind &Out);

/// One journal event. Which fields are meaningful (and serialized) depends
/// on the kind; unused fields stay at their defaults. `WallUs` is the only
/// non-deterministic field and always serializes last.
struct JournalEvent {
  uint64_t Seq = 0;
  JournalEventKind Kind = JournalEventKind::CampaignStarted;
  /// CampaignStarted/CampaignFinished: the campaign id.
  std::string Campaign;
  /// Phase key of the engine phase the event belongs to.
  std::string Phase;
  /// BugFound/ReductionStep/BugAttributed/TargetQuarantined: the target.
  std::string Target;
  /// BugFound/ReductionStep/PostReduceStep/BugAttributed: the signature.
  std::string Signature;
  /// PostReduceStep: name of the post-reduction pass. BugAttributed: the
  /// attribution's culprit label ("inliner#0", or "(unattributable)" /
  /// "(no-repro)").
  std::string Pass;
  /// Phase events: the wave (end) boundary, in test indices.
  uint64_t Wave = 0;
  /// CampaignStarted: tests per tool; WaveCommitted: phase total.
  uint64_t Total = 0;
  /// BugFound/ReductionStep: the test index.
  uint64_t Test = 0;
  /// WaveCommitted: bugs (eval) or reductions (reduce) committed so far;
  /// CampaignFinished: total distinct bugs.
  uint64_t Count = 0;
  /// CampaignStarted: campaign seed / transformation limit.
  uint64_t Seed = 0;
  uint64_t Limit = 0;
  /// ReductionStep: instruction counts and check budget of the record.
  uint64_t Unreduced = 0;
  uint64_t Reduced = 0;
  uint64_t Minimized = 0;
  /// ReductionStep/PostReduceStep: serial interestingness checks decided.
  /// BugAttributed: bisection prefix probes spent (Test carries the
  /// culprit's pipeline index, Count its instance index).
  uint64_t Checks = 0;
  /// PostReduceStep: candidates attempted / accepted by the pass.
  uint64_t Attempted = 0;
  uint64_t Accepted = 0;
  /// Scale-out events: the worker id (0 = the coordinator itself). For
  /// ShardLeased/ShardCompleted/LeaseExpired, Count carries the lease
  /// ledger job id and Wave the shard's end boundary; for
  /// WorkerAttached/WorkerExited, Count carries the worker's pid.
  uint64_t Worker = 0;
  /// Wall clock (microseconds since the Unix epoch) when the event was
  /// appended; 0 under deterministic-journal mode.
  uint64_t WallUs = 0;
};

/// Serializes \p Event as one JSONL line (no trailing newline), with the
/// deterministic fields first and `wall_us` last.
std::string serializeJournalEvent(const JournalEvent &Event);

/// Parses one journal line. Returns false and sets \p Error (with a
/// column position) on malformed input, an unknown kind, or a format
/// version newer than this build understands.
bool parseJournalLine(const std::string &Line, JournalEvent &Out,
                      std::string &Error);

/// A one-line human rendering of \p Event (the `minispv tail` format).
std::string formatJournalEvent(const JournalEvent &Event);

/// Path of the journal file inside store directory \p StoreDir.
std::string journalPathFor(const std::string &StoreDir);

/// Path of the scale-out scheduling journal (worker/lease events) inside
/// store directory \p StoreDir. Kept separate from events.jsonl so the
/// decision stream stays byte-identical across worker counts.
std::string servePathFor(const std::string &StoreDir);

/// The append side of the journal. Thread-compatible: the campaign engine
/// invokes its observer serially, but appends are mutex-guarded anyway so
/// a CLI thread can append CampaignStarted/Finished around the run.
class JournalWriter {
public:
  /// Opens `<StoreDir>/journal/events.jsonl` (creating the directory if
  /// needed). Without \p Resume any existing journal is truncated (a
  /// fresh campaign run starts a fresh journal); with \p Resume the
  /// parseable prefix of the existing journal is kept — an unparseable or
  /// torn tail is truncated away — and sequence numbers continue from it.
  /// With \p Deterministic every event's wall_us is written as 0.
  /// Returns nullptr and sets \p Error on I/O failure or when the
  /// existing journal was written by a newer format version.
  static std::unique_ptr<JournalWriter> open(const std::string &StoreDir,
                                             bool Resume, bool Deterministic,
                                             std::string &Error);
  /// Same contract, but writing to an explicit \p Path (whose parent
  /// directory must already exist). Used for the scale-out scheduling
  /// stream at servePathFor(StoreDir).
  static std::unique_ptr<JournalWriter> openAt(const std::string &Path,
                                               bool Resume,
                                               bool Deterministic,
                                               std::string &Error);
  ~JournalWriter();
  JournalWriter(const JournalWriter &) = delete;
  JournalWriter &operator=(const JournalWriter &) = delete;

  /// Appends one event: assigns Seq (and WallUs unless deterministic),
  /// writes the line and flushes it to the OS. Returns the assigned Seq.
  uint64_t append(JournalEvent Event);

  /// Durability point: fsyncs the journal file. The engine observer calls
  /// this at wave boundaries, before the store checkpoint save.
  void commit();

  /// Trims the journal for a phase resuming at wave boundary
  /// \p StartWave: every event of \p Phase with Wave > StartWave — and
  /// everything after the first such event — is dropped, because the
  /// engine is about to recompute those waves and re-append their events.
  void truncateForPhaseResume(const std::string &Phase, uint64_t StartWave);

  bool empty() const;
  /// Kind of the last journaled event (meaningful only when !empty()).
  JournalEventKind lastKind() const;
  const std::vector<JournalEvent> &events() const { return Events; }
  const std::string &path() const { return Path; }

private:
  JournalWriter() = default;

  std::string Path;
  FILE *File = nullptr;
  bool Deterministic = false;
  uint64_t NextSeq = 0;
  mutable std::mutex Mutex;
  std::vector<JournalEvent> Events;
  /// Byte offset just past each event's line, for truncation.
  std::vector<uint64_t> LineEnds;
};

/// Incremental journal reader for live monitoring: each poll() picks up
/// the complete lines appended since the last one. A missing file or a
/// partial (still-being-written) last line is not an error — poll simply
/// returns no new events until more bytes land.
class JournalTailer {
public:
  explicit JournalTailer(std::string Path) : Path(std::move(Path)) {}

  /// Appends newly completed events to \p Out. Returns false and sets
  /// \p Error (line-accurate, prefixed with the path) on a malformed or
  /// version-incompatible line.
  bool poll(std::vector<JournalEvent> &Out, std::string &Error);

  /// Bytes consumed so far.
  uint64_t offset() const { return Offset; }

  /// Whether the last poll left a partial (not yet newline-terminated)
  /// line pending — i.e. the writer is mid-append or crashed mid-write.
  bool hasPartial() const { return !Pending.empty(); }

private:
  std::string Path;
  uint64_t Offset = 0;
  uint64_t LineNo = 0;
  std::string Pending;
};

/// Reads every complete event currently in \p Path (a convenience
/// one-shot JournalTailer). Returns false on parse error; a torn tail is
/// tolerated (\p TornTail reports whether one was seen).
bool readJournalFile(const std::string &Path,
                     std::vector<JournalEvent> &Events, std::string &Error,
                     bool *TornTail = nullptr);

/// The engine-side adapter: a CampaignObserver that maps engine callbacks
/// onto journal events. All callbacks arrive on the engine's aggregation
/// thread at serial commit points, so the journal's event order is the
/// decision order.
class JournalObserver : public CampaignObserver {
public:
  explicit JournalObserver(JournalWriter &Writer) : Writer(Writer) {}

  void onPhaseStarted(const std::string &Phase, size_t StartWave,
                      size_t Total) override;
  void onBugFound(const std::string &Phase, size_t WaveEnd, size_t TestIndex,
                  const std::string &Target,
                  const std::string &Signature) override;
  void onTargetQuarantined(const std::string &Phase, size_t WaveEnd,
                           const std::string &Target) override;
  void onReductionStep(const std::string &Phase, size_t WaveEnd,
                       const ReductionRecord &Record) override;
  void onPostReduceStep(const std::string &Phase, size_t WaveEnd,
                        const ReductionRecord &Record,
                        const PostReducePassStats &Stat) override;
  void onWaveCommitted(const std::string &Phase, size_t WaveEnd,
                       size_t Total, size_t Count) override;
  void onCheckpointSaved(const std::string &Phase, size_t WaveEnd) override;

private:
  JournalWriter &Writer;
};

} // namespace obs
} // namespace spvfuzz

#endif // OBS_JOURNAL_H
