//===- obs/Journal.cpp - Crash-safe campaign event journal ----------------===//
//
// Part of the spirv-fuzz reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "obs/Journal.h"

#include "obs/FlatJson.h"

#include <cerrno>
#include <chrono>
#include <cstring>
#include <fstream>
#include <sstream>

#include <sys/stat.h>
#include <unistd.h>

using namespace spvfuzz;
using namespace spvfuzz::obs;

const char *obs::journalEventKindName(JournalEventKind Kind) {
  switch (Kind) {
  case JournalEventKind::CampaignStarted:
    return "CampaignStarted";
  case JournalEventKind::WaveCommitted:
    return "WaveCommitted";
  case JournalEventKind::BugFound:
    return "BugFound";
  case JournalEventKind::ReductionStep:
    return "ReductionStep";
  case JournalEventKind::PostReduceStep:
    return "PostReduceStep";
  case JournalEventKind::BugAttributed:
    return "BugAttributed";
  case JournalEventKind::TargetQuarantined:
    return "TargetQuarantined";
  case JournalEventKind::CheckpointSaved:
    return "CheckpointSaved";
  case JournalEventKind::CampaignFinished:
    return "CampaignFinished";
  case JournalEventKind::WorkerAttached:
    return "WorkerAttached";
  case JournalEventKind::WorkerExited:
    return "WorkerExited";
  case JournalEventKind::ShardLeased:
    return "ShardLeased";
  case JournalEventKind::ShardCompleted:
    return "ShardCompleted";
  case JournalEventKind::LeaseExpired:
    return "LeaseExpired";
  }
  return "Unknown";
}

bool obs::journalEventKindFromName(const std::string &Name,
                                   JournalEventKind &Out) {
  static const JournalEventKind All[] = {
      JournalEventKind::CampaignStarted,  JournalEventKind::WaveCommitted,
      JournalEventKind::BugFound,         JournalEventKind::ReductionStep,
      JournalEventKind::PostReduceStep,   JournalEventKind::BugAttributed,
      JournalEventKind::TargetQuarantined, JournalEventKind::CheckpointSaved,
      JournalEventKind::CampaignFinished, JournalEventKind::WorkerAttached,
      JournalEventKind::WorkerExited,     JournalEventKind::ShardLeased,
      JournalEventKind::ShardCompleted,   JournalEventKind::LeaseExpired,
  };
  for (JournalEventKind Kind : All)
    if (Name == journalEventKindName(Kind)) {
      Out = Kind;
      return true;
    }
  return false;
}

namespace {

void appendQuoted(std::string &Out, const std::string &S) {
  Out += '"';
  for (char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
        Out += Buf;
      } else {
        Out += C;
      }
    }
  }
  Out += '"';
}

void appendField(std::string &Out, const char *Key, const std::string &S) {
  Out += ",\"";
  Out += Key;
  Out += "\":";
  appendQuoted(Out, S);
}

void appendField(std::string &Out, const char *Key, uint64_t Value) {
  Out += ",\"";
  Out += Key;
  Out += "\":";
  Out += std::to_string(Value);
}

} // namespace

std::string obs::serializeJournalEvent(const JournalEvent &Event) {
  std::string Out = "{\"v\":" + std::to_string(JournalFormatVersion);
  appendField(Out, "seq", Event.Seq);
  appendField(Out, "kind", std::string(journalEventKindName(Event.Kind)));
  switch (Event.Kind) {
  case JournalEventKind::CampaignStarted:
    appendField(Out, "campaign", Event.Campaign);
    appendField(Out, "seed", Event.Seed);
    appendField(Out, "limit", Event.Limit);
    appendField(Out, "total", Event.Total);
    break;
  case JournalEventKind::WaveCommitted:
    appendField(Out, "phase", Event.Phase);
    appendField(Out, "wave", Event.Wave);
    appendField(Out, "total", Event.Total);
    appendField(Out, "count", Event.Count);
    break;
  case JournalEventKind::BugFound:
    appendField(Out, "phase", Event.Phase);
    appendField(Out, "wave", Event.Wave);
    appendField(Out, "test", Event.Test);
    appendField(Out, "target", Event.Target);
    appendField(Out, "signature", Event.Signature);
    break;
  case JournalEventKind::ReductionStep:
    appendField(Out, "phase", Event.Phase);
    appendField(Out, "wave", Event.Wave);
    appendField(Out, "test", Event.Test);
    appendField(Out, "target", Event.Target);
    appendField(Out, "signature", Event.Signature);
    appendField(Out, "unreduced", Event.Unreduced);
    appendField(Out, "reduced", Event.Reduced);
    appendField(Out, "minimized", Event.Minimized);
    appendField(Out, "checks", Event.Checks);
    break;
  case JournalEventKind::PostReduceStep:
    appendField(Out, "phase", Event.Phase);
    appendField(Out, "wave", Event.Wave);
    appendField(Out, "test", Event.Test);
    appendField(Out, "target", Event.Target);
    appendField(Out, "signature", Event.Signature);
    appendField(Out, "pass", Event.Pass);
    appendField(Out, "attempted", Event.Attempted);
    appendField(Out, "accepted", Event.Accepted);
    appendField(Out, "checks", Event.Checks);
    break;
  case JournalEventKind::BugAttributed:
    appendField(Out, "target", Event.Target);
    appendField(Out, "signature", Event.Signature);
    appendField(Out, "pass", Event.Pass);
    appendField(Out, "test", Event.Test);
    appendField(Out, "count", Event.Count);
    appendField(Out, "checks", Event.Checks);
    break;
  case JournalEventKind::TargetQuarantined:
    appendField(Out, "phase", Event.Phase);
    appendField(Out, "wave", Event.Wave);
    appendField(Out, "target", Event.Target);
    break;
  case JournalEventKind::CheckpointSaved:
    appendField(Out, "phase", Event.Phase);
    appendField(Out, "wave", Event.Wave);
    break;
  case JournalEventKind::CampaignFinished:
    appendField(Out, "campaign", Event.Campaign);
    appendField(Out, "count", Event.Count);
    break;
  case JournalEventKind::WorkerAttached:
  case JournalEventKind::WorkerExited:
    appendField(Out, "worker", Event.Worker);
    appendField(Out, "count", Event.Count);
    break;
  case JournalEventKind::ShardLeased:
  case JournalEventKind::ShardCompleted:
  case JournalEventKind::LeaseExpired:
    appendField(Out, "phase", Event.Phase);
    appendField(Out, "wave", Event.Wave);
    appendField(Out, "worker", Event.Worker);
    appendField(Out, "count", Event.Count);
    break;
  }
  appendField(Out, "wall_us", Event.WallUs);
  Out += "}";
  return Out;
}

bool obs::parseJournalLine(const std::string &Line, JournalEvent &Out,
                           std::string &Error) {
  FlatObject Object;
  if (!parseFlatObject(Line, Object, Error))
    return false;
  if (!Object.hasNumber("v")) {
    Error = "missing journal format version field 'v'";
    return false;
  }
  uint64_t Version = Object.count("v");
  if (Version == 0 || Version > JournalFormatVersion) {
    Error = "unsupported journal format version " + std::to_string(Version) +
            " (this build understands up to " +
            std::to_string(JournalFormatVersion) + ")";
    return false;
  }
  if (!Object.hasText("kind")) {
    Error = "missing event kind";
    return false;
  }
  if (!journalEventKindFromName(Object.text("kind"), Out.Kind)) {
    Error = "unknown event kind '" + Object.text("kind") + "'";
    return false;
  }
  Out.Seq = Object.count("seq");
  Out.Campaign = Object.text("campaign");
  Out.Phase = Object.text("phase");
  Out.Target = Object.text("target");
  Out.Signature = Object.text("signature");
  Out.Pass = Object.text("pass");
  Out.Wave = Object.count("wave");
  Out.Total = Object.count("total");
  Out.Test = Object.count("test");
  Out.Count = Object.count("count");
  Out.Seed = Object.count("seed");
  Out.Limit = Object.count("limit");
  Out.Unreduced = Object.count("unreduced");
  Out.Reduced = Object.count("reduced");
  Out.Minimized = Object.count("minimized");
  Out.Checks = Object.count("checks");
  Out.Attempted = Object.count("attempted");
  Out.Accepted = Object.count("accepted");
  Out.Worker = Object.count("worker");
  Out.WallUs = Object.count("wall_us");
  return true;
}

std::string obs::formatJournalEvent(const JournalEvent &Event) {
  std::ostringstream Out;
  Out << "#" << Event.Seq << " " << journalEventKindName(Event.Kind);
  switch (Event.Kind) {
  case JournalEventKind::CampaignStarted:
    Out << " campaign=" << Event.Campaign << " seed=" << Event.Seed
        << " limit=" << Event.Limit << " tests=" << Event.Total;
    break;
  case JournalEventKind::WaveCommitted:
    Out << " [" << Event.Phase << "] wave " << Event.Wave << "/"
        << Event.Total << " count=" << Event.Count;
    break;
  case JournalEventKind::BugFound:
    Out << " [" << Event.Phase << "] test " << Event.Test
        << " target=" << Event.Target << " sig=" << Event.Signature;
    break;
  case JournalEventKind::ReductionStep:
    Out << " [" << Event.Phase << "] test " << Event.Test
        << " target=" << Event.Target << " sig=" << Event.Signature << " "
        << Event.Unreduced << "->" << Event.Reduced << " instrs, "
        << Event.Minimized << " transformations, " << Event.Checks
        << " checks";
    break;
  case JournalEventKind::PostReduceStep:
    Out << " [" << Event.Phase << "] test " << Event.Test
        << " target=" << Event.Target << " pass=" << Event.Pass << " "
        << Event.Accepted << "/" << Event.Attempted << " accepted, "
        << Event.Checks << " checks";
    break;
  case JournalEventKind::BugAttributed:
    Out << " target=" << Event.Target << " sig=" << Event.Signature
        << " culprit=" << Event.Pass << " (" << Event.Checks << " probes)";
    break;
  case JournalEventKind::TargetQuarantined:
    Out << " [" << Event.Phase << "] target=" << Event.Target << " at wave "
        << Event.Wave;
    break;
  case JournalEventKind::CheckpointSaved:
    Out << " [" << Event.Phase << "] wave " << Event.Wave;
    break;
  case JournalEventKind::CampaignFinished:
    Out << " campaign=" << Event.Campaign << " distinct_bugs=" << Event.Count;
    break;
  case JournalEventKind::WorkerAttached:
    Out << " worker=" << Event.Worker << " pid=" << Event.Count;
    break;
  case JournalEventKind::WorkerExited:
    Out << " worker=" << Event.Worker << " pid=" << Event.Count;
    break;
  case JournalEventKind::ShardLeased:
    Out << " [" << Event.Phase << "] wave " << Event.Wave << " worker="
        << Event.Worker << " job=" << Event.Count;
    break;
  case JournalEventKind::ShardCompleted:
    Out << " [" << Event.Phase << "] wave " << Event.Wave << " worker="
        << Event.Worker << " job=" << Event.Count;
    break;
  case JournalEventKind::LeaseExpired:
    Out << " [" << Event.Phase << "] wave " << Event.Wave << " worker="
        << Event.Worker << " job=" << Event.Count;
    break;
  }
  return Out.str();
}

std::string obs::journalPathFor(const std::string &StoreDir) {
  return StoreDir + "/journal/events.jsonl";
}

std::string obs::servePathFor(const std::string &StoreDir) {
  return StoreDir + "/journal/serve.jsonl";
}

//===----------------------------------------------------------------------===//
// JournalWriter
//===----------------------------------------------------------------------===//

namespace {

bool ensureDir(const std::string &Path) {
  return ::mkdir(Path.c_str(), 0755) == 0 || errno == EEXIST;
}

uint64_t wallClockUs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());
}

} // namespace

std::unique_ptr<JournalWriter> JournalWriter::open(const std::string &StoreDir,
                                                   bool Resume,
                                                   bool Deterministic,
                                                   std::string &Error) {
  if (!ensureDir(StoreDir + "/journal")) {
    Error = "cannot create journal directory under '" + StoreDir +
            "': " + std::strerror(errno);
    return nullptr;
  }
  return openAt(journalPathFor(StoreDir), Resume, Deterministic, Error);
}

std::unique_ptr<JournalWriter> JournalWriter::openAt(const std::string &Path,
                                                     bool Resume,
                                                     bool Deterministic,
                                                     std::string &Error) {
  std::unique_ptr<JournalWriter> Writer(new JournalWriter());
  Writer->Path = Path;
  Writer->Deterministic = Deterministic;

  uint64_t KeepBytes = 0;
  if (Resume) {
    // Keep the parseable prefix of any existing journal; a torn or
    // malformed tail (mid-write crash) is truncated away. A journal from
    // a newer format version is refused rather than extended.
    std::ifstream In(Writer->Path, std::ios::binary);
    if (In) {
      std::string Line;
      uint64_t Offset = 0;
      while (std::getline(In, Line)) {
        if (In.eof() && !In.good())
          break; // no trailing newline: torn tail
        uint64_t LineBytes = static_cast<uint64_t>(Line.size()) + 1;
        if (Line.empty()) {
          Offset += LineBytes;
          continue;
        }
        JournalEvent Event;
        std::string LineError;
        if (!parseJournalLine(Line, Event, LineError)) {
          if (LineError.rfind("unsupported journal format version", 0) == 0) {
            Error = Writer->Path + ": " + LineError;
            return nullptr;
          }
          break; // torn/corrupt line: keep the prefix before it
        }
        Offset += LineBytes;
        Writer->Events.push_back(std::move(Event));
        Writer->LineEnds.push_back(Offset);
      }
      KeepBytes = Offset;
    }
    if (!Writer->Events.empty())
      Writer->NextSeq = Writer->Events.back().Seq + 1;
  }

  Writer->File = std::fopen(Writer->Path.c_str(), Resume ? "ab" : "wb");
  if (!Writer->File) {
    Error = "cannot open '" + Writer->Path +
            "' for writing: " + std::strerror(errno);
    return nullptr;
  }
  if (Resume) {
    // Drop the torn tail (no-op when the file already ends cleanly).
    if (::ftruncate(fileno(Writer->File), static_cast<off_t>(KeepBytes)) !=
        0) {
      Error = "cannot truncate '" + Writer->Path +
              "': " + std::strerror(errno);
      return nullptr;
    }
  }
  return Writer;
}

JournalWriter::~JournalWriter() {
  if (File) {
    std::fflush(File);
    std::fclose(File);
  }
}

uint64_t JournalWriter::append(JournalEvent Event) {
  std::lock_guard<std::mutex> Lock(Mutex);
  Event.Seq = NextSeq++;
  Event.WallUs = Deterministic ? 0 : wallClockUs();
  std::string Line = serializeJournalEvent(Event) + "\n";
  if (File) {
    std::fwrite(Line.data(), 1, Line.size(), File);
    std::fflush(File);
  }
  uint64_t PrevEnd = LineEnds.empty() ? 0 : LineEnds.back();
  LineEnds.push_back(PrevEnd + Line.size());
  uint64_t Seq = Event.Seq;
  Events.push_back(std::move(Event));
  return Seq;
}

void JournalWriter::commit() {
  std::lock_guard<std::mutex> Lock(Mutex);
  if (File) {
    std::fflush(File);
    ::fsync(fileno(File));
  }
}

void JournalWriter::truncateForPhaseResume(const std::string &Phase,
                                           uint64_t StartWave) {
  std::lock_guard<std::mutex> Lock(Mutex);
  size_t Cut = Events.size();
  for (size_t I = 0; I < Events.size(); ++I)
    if (Events[I].Phase == Phase && Events[I].Wave > StartWave) {
      Cut = I;
      break;
    }
  if (Cut == Events.size())
    return;
  uint64_t KeepBytes = Cut == 0 ? 0 : LineEnds[Cut - 1];
  Events.resize(Cut);
  LineEnds.resize(Cut);
  NextSeq = Events.empty() ? 0 : Events.back().Seq + 1;
  if (File) {
    std::fflush(File);
    ::ftruncate(fileno(File), static_cast<off_t>(KeepBytes));
    std::fseek(File, 0, SEEK_END);
  }
}

bool JournalWriter::empty() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return Events.empty();
}

JournalEventKind JournalWriter::lastKind() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return Events.empty() ? JournalEventKind::CampaignStarted
                        : Events.back().Kind;
}

//===----------------------------------------------------------------------===//
// JournalTailer
//===----------------------------------------------------------------------===//

bool JournalTailer::poll(std::vector<JournalEvent> &Out, std::string &Error) {
  std::ifstream In(Path, std::ios::binary);
  if (!In)
    return true; // not created yet: no events, not an error
  In.seekg(static_cast<std::streamoff>(Offset));
  if (!In)
    return true;
  std::ostringstream Chunk;
  Chunk << In.rdbuf();
  std::string Bytes = Chunk.str();
  if (Bytes.empty())
    return true;
  Offset += Bytes.size();
  Pending += Bytes;

  size_t Start = 0;
  while (true) {
    size_t Newline = Pending.find('\n', Start);
    if (Newline == std::string::npos)
      break;
    std::string Line = Pending.substr(Start, Newline - Start);
    Start = Newline + 1;
    ++LineNo;
    if (Line.empty())
      continue;
    JournalEvent Event;
    std::string LineError;
    if (!parseJournalLine(Line, Event, LineError)) {
      Error = Path + ":" + std::to_string(LineNo) + ": " + LineError;
      return false;
    }
    Out.push_back(std::move(Event));
  }
  Pending.erase(0, Start);
  return true;
}

bool obs::readJournalFile(const std::string &Path,
                          std::vector<JournalEvent> &Events,
                          std::string &Error, bool *TornTail) {
  std::ifstream In(Path, std::ios::binary);
  if (!In) {
    Error = "cannot open '" + Path + "'";
    return false;
  }
  In.close();
  JournalTailer Tailer(Path);
  if (!Tailer.poll(Events, Error))
    return false;
  if (TornTail)
    *TornTail = Tailer.hasPartial();
  return true;
}

//===----------------------------------------------------------------------===//
// JournalObserver
//===----------------------------------------------------------------------===//

void JournalObserver::onPhaseStarted(const std::string &Phase,
                                     size_t StartWave, size_t) {
  // The store resumes this phase at StartWave: drop journaled events from
  // the waves about to be recomputed (they will be re-appended
  // byte-identically in the same serial order).
  Writer.truncateForPhaseResume(Phase, StartWave);
}

void JournalObserver::onBugFound(const std::string &Phase, size_t WaveEnd,
                                 size_t TestIndex, const std::string &Target,
                                 const std::string &Signature) {
  JournalEvent Event;
  Event.Kind = JournalEventKind::BugFound;
  Event.Phase = Phase;
  Event.Wave = WaveEnd;
  Event.Test = TestIndex;
  Event.Target = Target;
  Event.Signature = Signature;
  Writer.append(std::move(Event));
}

void JournalObserver::onTargetQuarantined(const std::string &Phase,
                                          size_t WaveEnd,
                                          const std::string &Target) {
  JournalEvent Event;
  Event.Kind = JournalEventKind::TargetQuarantined;
  Event.Phase = Phase;
  Event.Wave = WaveEnd;
  Event.Target = Target;
  Writer.append(std::move(Event));
}

void JournalObserver::onReductionStep(const std::string &Phase,
                                      size_t WaveEnd,
                                      const ReductionRecord &Record) {
  JournalEvent Event;
  Event.Kind = JournalEventKind::ReductionStep;
  Event.Phase = Phase;
  Event.Wave = WaveEnd;
  Event.Test = Record.TestIndex;
  Event.Target = Record.TargetName;
  Event.Signature = Record.Signature;
  Event.Unreduced = Record.UnreducedCount;
  Event.Reduced = Record.ReducedCount;
  Event.Minimized = Record.MinimizedLength;
  Event.Checks = Record.Checks;
  Writer.append(std::move(Event));
}

void JournalObserver::onPostReduceStep(const std::string &Phase,
                                       size_t WaveEnd,
                                       const ReductionRecord &Record,
                                       const PostReducePassStats &Stat) {
  JournalEvent Event;
  Event.Kind = JournalEventKind::PostReduceStep;
  Event.Phase = Phase;
  Event.Wave = WaveEnd;
  Event.Test = Record.TestIndex;
  Event.Target = Record.TargetName;
  Event.Signature = Record.Signature;
  Event.Pass = Stat.Pass;
  Event.Attempted = Stat.Attempted;
  Event.Accepted = Stat.Accepted;
  Event.Checks = Stat.Checks;
  Writer.append(std::move(Event));
}

void JournalObserver::onWaveCommitted(const std::string &Phase,
                                      size_t WaveEnd, size_t Total,
                                      size_t Count) {
  JournalEvent Event;
  Event.Kind = JournalEventKind::WaveCommitted;
  Event.Phase = Phase;
  Event.Wave = WaveEnd;
  Event.Total = Total;
  Event.Count = Count;
  Writer.append(std::move(Event));
  // Wave boundary: make everything up to here durable *before* the store
  // checkpoints, keeping the journal at-or-ahead of the store.
  Writer.commit();
}

void JournalObserver::onCheckpointSaved(const std::string &Phase,
                                        size_t WaveEnd) {
  JournalEvent Event;
  Event.Kind = JournalEventKind::CheckpointSaved;
  Event.Phase = Phase;
  Event.Wave = WaveEnd;
  Writer.append(std::move(Event));
  Writer.commit();
}
