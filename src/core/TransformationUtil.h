//===- core/TransformationUtil.h - Shared transformation helpers -*- C++ -*-===//
//
// Part of the spirv-fuzz reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Helpers shared by the concrete transformation implementations.
///
//===----------------------------------------------------------------------===//

#ifndef CORE_TRANSFORMATIONUTIL_H
#define CORE_TRANSFORMATIONUTIL_H

#include "core/Transformation.h"

namespace spvfuzz {

/// True if \p TheId is not used as any result id, label, or function id in
/// \p M (and is not 0), i.e. it may be introduced as a fresh id.
bool idIsFreshInModule(const Module &M, Id TheId);

/// All ids in \p Ids are fresh in \p M and pairwise distinct.
bool idsAreFreshAndDistinct(const Module &M, const std::vector<Id> &Ids);

/// Returns the id of the first bool/int type declaration, or InvalidId.
Id findBoolTypeId(const Module &M);
Id findIntTypeId(const Module &M);

/// True if function \p From transitively calls function \p To (used to
/// block call-graph cycles when adding calls).
bool functionReachesViaCalls(const Module &M, Id From, Id To);

/// Clones the module and facts, applies \p T without checking its
/// precondition, and validates the result. Used as a belt-and-braces
/// component of the preconditions of the intricate CFG-restructuring
/// transformations (inlining, kill-replacement, instruction propagation),
/// whose full static legality conditions are subtle.
bool applyKeepsModuleValid(const Transformation &T, const Module &M,
                           const FactManager &Facts);

/// Resolves a descriptor against a const module. locateInstruction needs a
/// mutable module only to hand back mutable pointers; preconditions use
/// this wrapper for read-only resolution.
LocatedInstruction locateInstructionConst(const Module &M,
                                          const InstructionDescriptor &Desc);

/// Removes phi entries for predecessor \p Pred from every phi of \p Block.
void removePhiEntriesForPred(BasicBlock &Block, Id Pred);

/// In every phi of \p Block, renames predecessor \p From to \p To.
void renamePhiPred(BasicBlock &Block, Id From, Id To);

} // namespace spvfuzz

#endif // CORE_TRANSFORMATIONUTIL_H
