//===- core/Fuzzer.cpp - The transformation-based fuzzer ------------------===//
//
// Part of the spirv-fuzz reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "core/Fuzzer.h"

#include "core/TransformationUtil.h"
#include "core/Transformations.h"
#include "exec/Interpreter.h"
#include "support/Rng.h"
#include "support/Telemetry.h"

#include <algorithm>
#include <deque>
#include <functional>
#include <unordered_map>

using namespace spvfuzz;

namespace {

/// The fuzzer passes. Each sweeps the module for opportunities to apply one
/// family of transformations (ğ3.2).
enum class PassId : uint8_t {
  AddDeadBlocks,
  AddStores,
  AddVariables,
  AddLoads,
  AddSynonyms,
  ApplySynonyms,
  ObfuscateConstants,
  SplitBlocks,
  PermuteBlocks,
  PropagateInstructionsUp,
  ReplaceBranchesWithConditionals,
  InvertConditions,
  PermutePhis,
  SwapOperands,
  AddCompositeSynonyms,
  AddFunctions,
  AddFunctionCalls,
  InlineFunctions,
  AddParameters,
  ToggleDontInline,
  ReplaceIrrelevantIds,
  ReplaceBranchesWithKill,
  WrapConditionalNegation, // baseline-profile only (glsl-fuzz-style wrap)
  Count,
};

/// The transformation families each simulated tool draws from.
const PassId FullPool[] = {
    PassId::AddDeadBlocks,       PassId::AddStores,
    PassId::AddVariables,        PassId::AddLoads,
    PassId::AddSynonyms,         PassId::ApplySynonyms,
    PassId::ObfuscateConstants,  PassId::SplitBlocks,
    PassId::PermuteBlocks,       PassId::PropagateInstructionsUp,
    PassId::ReplaceBranchesWithConditionals,
    PassId::InvertConditions,    PassId::PermutePhis,
    PassId::SwapOperands,        PassId::AddCompositeSynonyms,
    PassId::AddFunctions,        PassId::AddFunctionCalls,
    PassId::InlineFunctions,     PassId::AddParameters,
    PassId::ToggleDontInline,    PassId::ReplaceIrrelevantIds,
    PassId::ReplaceBranchesWithKill,
};
const PassId BaselinePool[] = {
    PassId::AddDeadBlocks,      PassId::AddStores,
    PassId::AddVariables,       PassId::AddLoads,
    PassId::ObfuscateConstants, PassId::SplitBlocks,
    PassId::AddFunctions,       PassId::AddFunctionCalls,
    PassId::WrapConditionalNegation,
};

constexpr size_t NumPasses = static_cast<size_t>(PassId::Count);

/// The hand-curated follow-on table of the recommendations strategy: after
/// running a pass, passes that are likely to interact with its output are
/// queued (ğ3.2 "using recommendations to drive fuzzing").
std::vector<PassId> followOnPasses(PassId Pass) {
  switch (Pass) {
  case PassId::AddDeadBlocks:
    return {PassId::AddStores, PassId::ReplaceBranchesWithKill,
            PassId::ObfuscateConstants, PassId::AddFunctionCalls};
  case PassId::AddStores:
    return {PassId::AddLoads};
  case PassId::AddVariables:
    return {PassId::AddLoads, PassId::AddStores};
  case PassId::AddLoads:
    return {PassId::AddSynonyms};
  case PassId::AddSynonyms:
    return {PassId::ApplySynonyms};
  case PassId::ApplySynonyms:
    return {PassId::ObfuscateConstants};
  case PassId::ObfuscateConstants:
    return {PassId::SplitBlocks};
  case PassId::SplitBlocks:
    return {PassId::AddDeadBlocks, PassId::PermuteBlocks};
  case PassId::PermuteBlocks:
    return {PassId::PermutePhis};
  case PassId::PropagateInstructionsUp:
    return {PassId::PermutePhis, PassId::PermuteBlocks};
  case PassId::ReplaceBranchesWithConditionals:
    return {PassId::InvertConditions};
  case PassId::InvertConditions:
    return {};
  case PassId::PermutePhis:
    return {};
  case PassId::SwapOperands:
    return {};
  case PassId::AddCompositeSynonyms:
    return {PassId::ApplySynonyms};
  case PassId::AddFunctions:
    return {PassId::AddFunctionCalls, PassId::AddParameters,
            PassId::ToggleDontInline};
  case PassId::AddFunctionCalls:
    return {PassId::InlineFunctions, PassId::ReplaceIrrelevantIds};
  case PassId::InlineFunctions:
    return {PassId::SplitBlocks, PassId::PermuteBlocks};
  case PassId::AddParameters:
    return {PassId::ReplaceIrrelevantIds};
  case PassId::ToggleDontInline:
    return {PassId::InlineFunctions};
  case PassId::ReplaceIrrelevantIds:
    return {};
  case PassId::ReplaceBranchesWithKill:
    return {};
  case PassId::WrapConditionalNegation:
    return {PassId::ObfuscateConstants};
  case PassId::Count:
    break;
  }
  return {};
}

/// One fuzzing run over one module.
class FuzzerImpl {
public:
  FuzzerImpl(const Module &Original, const ShaderInput &Input,
             const std::vector<const Module *> &Donors, uint64_t Seed,
             const FuzzerOptions &Options)
      : Donors(Donors), Random(Seed), Options(Options) {
    Result.Variant = Original;
    Result.Facts.setKnownInput(Input);
  }

  FuzzResult run() {
    std::deque<PassId> Recommended;
    for (uint32_t Iter = 0; Iter < Options.MaxPasses; ++Iter) {
      if (Result.Sequence.size() >= Options.TransformationLimit)
        break;
      PassId Pass;
      if (!Recommended.empty() && Random.flip()) {
        Pass = Recommended.front();
        Recommended.pop_front();
      } else if (Options.Profile == FuzzerProfile::Baseline) {
        Pass = BaselinePool[Random.index(std::size(BaselinePool))];
      } else {
        Pass = FullPool[Random.index(std::size(FullPool))];
      }
      size_t GroupBegin = Result.Sequence.size();
      runPass(Pass);
      if (Result.Sequence.size() > GroupBegin)
        Result.PassGroups.push_back({GroupBegin, Result.Sequence.size()});
      if (Options.EnableRecommendations)
        for (PassId FollowOn : followOnPasses(Pass))
          if (passInActivePool(FollowOn) && Random.flip())
            Recommended.push_back(FollowOn);
      if (!Random.chancePercent(Options.ContinuePercent))
        break;
    }
    return std::move(Result);
  }

private:
  Module &module() { return Result.Variant; }
  FactManager &facts() { return Result.Facts; }

  /// True if \p Pass belongs to the active profile's pool; recommended
  /// follow-ons outside the pool are dropped so a restricted profile can
  /// never escape its transformation families.
  bool passInActivePool(PassId Pass) const {
    if (Options.Profile == FuzzerProfile::Baseline)
      return std::find(std::begin(BaselinePool), std::end(BaselinePool),
                       Pass) != std::end(BaselinePool);
    return std::find(std::begin(FullPool), std::end(FullPool), Pass) !=
           std::end(FullPool);
  }

  /// Re-checks the precondition against the current module and, if it
  /// holds, applies \p T and appends it to the sequence.
  bool maybeApply(TransformationPtr T) {
    if (Result.Sequence.size() >= Options.TransformationLimit)
      return false;
    telemetry::MetricsRegistry &Metrics = telemetry::MetricsRegistry::global();
    const bool Instrumented = Metrics.enabled();
    const char *KindName =
        Instrumented ? transformationKindName(T->kind()) : nullptr;
    if (Instrumented)
      Metrics.add(std::string("fuzzer.attempts.") + KindName);
    ModuleAnalysis Analysis(module());
    if (!T->isApplicable(module(), Analysis, facts())) {
      if (Instrumented)
        Metrics.add(std::string("fuzzer.precondition_failures.") + KindName);
      return false;
    }
    T->apply(module(), facts());
    if (Instrumented)
      Metrics.add(std::string("fuzzer.applications.") + KindName);
    Result.Sequence.push_back(std::move(T));
    return true;
  }

  bool takeOpportunity() {
    return Random.chancePercent(Options.OpportunityPercent);
  }

  Id freshId() { return module().takeFreshId(); }

  // --- Supporting-declaration helpers --------------------------------------
  //
  // Each ensures a declaration exists, preferring reuse, and otherwise
  // applies the corresponding supporting transformation (so that the
  // declaration's origin is recorded in the sequence and can be stripped by
  // the reducer).

  Id ensureIntType() {
    if (Id Existing = findIntTypeId(module()))
      return Existing;
    TransformationPtr T =
        std::make_shared<TransformationAddTypeInt>(freshId());
    Id NewId = static_cast<const TransformationAddTypeInt &>(*T).Fresh;
    return maybeApply(T) ? NewId : InvalidId;
  }

  Id ensureBoolType() {
    if (Id Existing = findBoolTypeId(module()))
      return Existing;
    TransformationPtr T =
        std::make_shared<TransformationAddTypeBool>(freshId());
    Id NewId = static_cast<const TransformationAddTypeBool &>(*T).Fresh;
    return maybeApply(T) ? NewId : InvalidId;
  }

  /// Finds a usable scalar constant: right shape, and not irrelevant (an
  /// irrelevant constant must not be wired into semantics-relevant slots).
  Id findScalarConstant(Id Type, uint32_t Word) {
    for (const Instruction &Global : module().GlobalInsts) {
      if (!isConstantDecl(Global.Opcode) || Global.ResultType != Type)
        continue;
      if (facts().idIsIrrelevant(Global.Result))
        continue;
      if (Global.Opcode == Op::Constant && Global.literalOperand(0) == Word)
        return Global.Result;
      if (Global.Opcode == Op::ConstantTrue && Word == 1)
        return Global.Result;
      if (Global.Opcode == Op::ConstantFalse && Word == 0)
        return Global.Result;
    }
    return InvalidId;
  }

  Id ensureIntConstant(int32_t Value) {
    Id Type = ensureIntType();
    if (Type == InvalidId)
      return InvalidId;
    if (Id Existing = findScalarConstant(Type, static_cast<uint32_t>(Value)))
      return Existing;
    Id NewId = freshId();
    return maybeApply(std::make_shared<TransformationAddConstantScalar>(
               NewId, Type, static_cast<uint32_t>(Value), false))
               ? NewId
               : InvalidId;
  }

  Id ensureBoolConstant(bool Value) {
    Id Type = ensureBoolType();
    if (Type == InvalidId)
      return InvalidId;
    if (Id Existing = findScalarConstant(Type, Value ? 1 : 0))
      return Existing;
    Id NewId = freshId();
    return maybeApply(std::make_shared<TransformationAddConstantScalar>(
               NewId, Type, Value ? 1 : 0, false))
               ? NewId
               : InvalidId;
  }

  /// A fresh constant whose value is recorded as irrelevant, used for call
  /// arguments and added parameters.
  Id makeIrrelevantConstant(Id Type) {
    Id NewId = freshId();
    uint32_t Word = module().isBoolTypeId(Type) ? 0 : 0;
    return maybeApply(std::make_shared<TransformationAddConstantScalar>(
               NewId, Type, Word, true))
               ? NewId
               : InvalidId;
  }

  Id ensurePointerType(StorageClass SC, Id Pointee) {
    for (const Instruction &Global : module().GlobalInsts)
      if (Global.Opcode == Op::TypePointer &&
          Global.literalOperand(0) == static_cast<uint32_t>(SC) &&
          Global.idOperand(1) == Pointee)
        return Global.Result;
    Id NewId = freshId();
    return maybeApply(std::make_shared<TransformationAddTypePointer>(
               NewId, SC, Pointee))
               ? NewId
               : InvalidId;
  }

  Id ensureVectorType(Id Component, uint32_t Count) {
    for (const Instruction &Global : module().GlobalInsts)
      if (Global.Opcode == Op::TypeVector &&
          Global.idOperand(0) == Component &&
          Global.literalOperand(1) == Count)
        return Global.Result;
    Id NewId = freshId();
    return maybeApply(std::make_shared<TransformationAddTypeVector>(
               NewId, Component, Count))
               ? NewId
               : InvalidId;
  }

  // --- Opportunity enumeration ----------------------------------------------

  struct InsertPoint {
    Id FuncId = InvalidId;
    Id BlockId = InvalidId;
    size_t Index = 0;
    InstructionDescriptor Before;
  };

  /// All positions at which a general instruction may be inserted.
  std::vector<InsertPoint> collectInsertPoints() {
    std::vector<InsertPoint> Points;
    for (const Function &Func : module().Functions)
      for (const BasicBlock &Block : Func.Blocks)
        for (size_t I = Block.firstInsertionIndex(); I < Block.Body.size();
             ++I)
          Points.push_back({Func.id(), Block.LabelId, I,
                            describeInstruction(Block, I)});
    return Points;
  }

  /// A candidate value together with its (module-level) type id, so that
  /// callers can classify candidates without a per-candidate findDef scan.
  struct ValueInfo {
    Id ValueId = InvalidId;
    Id TypeId = InvalidId;
  };

  /// Ids holding values of type \p TypeId available before \p Point.
  /// Excludes irrelevant ids unless \p AllowIrrelevant.
  std::vector<ValueInfo> availableValues(const ModuleAnalysis &Analysis,
                                         const InsertPoint &Point, Id TypeId,
                                         bool AllowIrrelevant) {
    std::vector<ValueInfo> Out;
    auto Consider = [&](Id Candidate, Id CandidateType) {
      if (TypeId != InvalidId && CandidateType != TypeId)
        return;
      if (CandidateType == InvalidId)
        return;
      if (!AllowIrrelevant && facts().idIsIrrelevant(Candidate))
        return;
      if (Analysis.idAvailableBefore(Candidate, Point.FuncId, Point.BlockId,
                                     Point.Index))
        Out.push_back({Candidate, CandidateType});
    };
    for (const Instruction &Global : module().GlobalInsts)
      if (isConstantDecl(Global.Opcode) || Global.Opcode == Op::Variable)
        Consider(Global.Result, Global.ResultType);
    const Function *Func = module().findFunction(Point.FuncId);
    if (Func) {
      for (const Instruction &Param : Func->Params)
        Consider(Param.Result, Param.ResultType);
      for (const BasicBlock &Block : Func->Blocks)
        for (const Instruction &Inst : Block.Body)
          if (Inst.Result != InvalidId)
            Consider(Inst.Result, Inst.ResultType);
    }
    return Out;
  }

  /// Candidates for operand replacement: (descriptor, operand index,
  /// current id).
  struct UseSite {
    InstructionDescriptor Where;
    uint32_t OperandIndex;
    Id Current;
  };

  std::vector<UseSite> collectValueUses() {
    std::vector<UseSite> Uses;
    for (const Function &Func : module().Functions)
      for (const BasicBlock &Block : Func.Blocks)
        for (size_t I = 0; I < Block.Body.size(); ++I) {
          const Instruction &Inst = Block.Body[I];
          for (uint32_t OpIndex = 0; OpIndex < Inst.Operands.size(); ++OpIndex)
            if (operandIsValueUse(Inst, OpIndex))
              Uses.push_back({describeInstruction(Block, I), OpIndex,
                              Inst.idOperand(OpIndex)});
        }
    return Uses;
  }

  // --- Passes -------------------------------------------------------------

  void runPass(PassId Pass) {
    switch (Pass) {
    case PassId::AddDeadBlocks:
      return passAddDeadBlocks();
    case PassId::AddStores:
      return passAddStores();
    case PassId::AddVariables:
      return passAddVariables();
    case PassId::AddLoads:
      return passAddLoads();
    case PassId::AddSynonyms:
      return passAddSynonyms();
    case PassId::ApplySynonyms:
      return passApplySynonyms();
    case PassId::ObfuscateConstants:
      return passObfuscateConstants();
    case PassId::SplitBlocks:
      return passSplitBlocks();
    case PassId::PermuteBlocks:
      return passPermuteBlocks();
    case PassId::PropagateInstructionsUp:
      return passPropagateInstructionsUp();
    case PassId::ReplaceBranchesWithConditionals:
      return passReplaceBranchesWithConditionals();
    case PassId::InvertConditions:
      return passInvertConditions();
    case PassId::PermutePhis:
      return passPermutePhis();
    case PassId::SwapOperands:
      return passSwapOperands();
    case PassId::AddCompositeSynonyms:
      return passAddCompositeSynonyms();
    case PassId::AddFunctions:
      return passAddFunctions();
    case PassId::AddFunctionCalls:
      return passAddFunctionCalls();
    case PassId::InlineFunctions:
      return passInlineFunctions();
    case PassId::AddParameters:
      return passAddParameters();
    case PassId::ToggleDontInline:
      return passToggleDontInline();
    case PassId::ReplaceIrrelevantIds:
      return passReplaceIrrelevantIds();
    case PassId::ReplaceBranchesWithKill:
      return passReplaceBranchesWithKill();
    case PassId::WrapConditionalNegation:
      return passWrapConditionalNegation();
    case PassId::Count:
      break;
    }
  }

  void passAddDeadBlocks() {
    Id TrueConst = ensureBoolConstant(true);
    if (TrueConst == InvalidId)
      return;
    std::vector<Id> Candidates;
    for (const Function &Func : module().Functions)
      for (const BasicBlock &Block : Func.Blocks)
        if (Block.hasTerminator() && Block.terminator().Opcode == Op::Branch)
          Candidates.push_back(Block.LabelId);
    for (Id BlockId : Candidates)
      if (takeOpportunity())
        maybeApply(std::make_shared<TransformationAddDeadBlock>(
            freshId(), BlockId, TrueConst));
  }

  void passAddStores() {
    ModuleAnalysis Analysis(module());
    for (const InsertPoint &Point : collectInsertPoints()) {
      bool Dead = facts().blockIsDead(Point.BlockId);
      if (!takeOpportunity())
        continue;
      // Find pointers usable here: any non-uniform pointer if the block is
      // dead, otherwise only irrelevant pointees.
      std::vector<ValueInfo> Pointers;
      for (const ValueInfo &Candidate :
           availableValues(Analysis, Point, InvalidId, true)) {
        if (!module().isPointerTypeId(Candidate.TypeId))
          continue;
        if (module().pointerInfo(Candidate.TypeId).first ==
            StorageClass::Uniform)
          continue;
        if (!Dead && !facts().pointeeIsIrrelevant(Candidate.ValueId))
          continue;
        Pointers.push_back(Candidate);
      }
      if (Pointers.empty())
        continue;
      const ValueInfo &Pointer = Random.pick(Pointers);
      Id Pointee = module().pointerInfo(Pointer.TypeId).second;
      std::vector<ValueInfo> Values =
          availableValues(Analysis, Point, Pointee, /*AllowIrrelevant=*/Dead);
      if (Values.empty())
        continue;
      maybeApply(std::make_shared<TransformationAddStore>(
          Pointer.ValueId, Random.pick(Values).ValueId, Point.Before));
    }
  }

  void passAddVariables() {
    for (uint32_t I = 0; I < 3; ++I) {
      if (!takeOpportunity())
        continue;
      Id ValueType = Random.flip() ? ensureIntType() : ensureBoolType();
      if (ValueType == InvalidId)
        continue;
      Id Init = module().isIntTypeId(ValueType)
                    ? ensureIntConstant(
                          static_cast<int32_t>(Random.uniform(0, 10)))
                    : ensureBoolConstant(Random.flip());
      if (Random.flip()) {
        Id PtrType = ensurePointerType(StorageClass::Private, ValueType);
        if (PtrType != InvalidId)
          maybeApply(std::make_shared<TransformationAddGlobalVariable>(
              freshId(), PtrType, Init));
      } else if (!module().Functions.empty()) {
        Id PtrType = ensurePointerType(StorageClass::Function, ValueType);
        size_t FuncIndex = Random.index(module().Functions.size());
        Id FuncId = module().Functions[FuncIndex].id();
        if (PtrType != InvalidId)
          maybeApply(std::make_shared<TransformationAddLocalVariable>(
              freshId(), PtrType, FuncId, Init));
      }
    }
  }

  void passAddLoads() {
    ModuleAnalysis Analysis(module());
    for (const InsertPoint &Point : collectInsertPoints()) {
      if (!takeOpportunity())
        continue;
      std::vector<Id> Pointers;
      for (const ValueInfo &Candidate :
           availableValues(Analysis, Point, InvalidId, true)) {
        if (!module().isPointerTypeId(Candidate.TypeId))
          continue;
        if (module().pointerInfo(Candidate.TypeId).first ==
            StorageClass::Output)
          continue;
        Pointers.push_back(Candidate.ValueId);
      }
      if (Pointers.empty())
        continue;
      maybeApply(std::make_shared<TransformationAddLoad>(
          freshId(), Random.pick(Pointers), Point.Before));
    }
  }

  void passAddSynonyms() {
    // Phi synonyms at merge points.
    {
      ModuleAnalysis Analysis(module());
      for (const Function &Func : module().Functions) {
        const Cfg &Graph = Analysis.cfg(Func.id());
        for (const BasicBlock &Block : Func.Blocks) {
          if (Graph.predecessors(Block.LabelId).empty() || !takeOpportunity())
            continue;
          InsertPoint Point{Func.id(), Block.LabelId, 0,
                            InstructionDescriptor()};
          std::vector<Id> Sources;
          for (const ValueInfo &Candidate :
               availableValues(Analysis, Point, InvalidId, false))
            if (module().isIntTypeId(Candidate.TypeId) ||
                module().isBoolTypeId(Candidate.TypeId))
              Sources.push_back(Candidate.ValueId);
          if (Sources.empty())
            continue;
          maybeApply(std::make_shared<TransformationAddSynonymViaPhi>(
              freshId(), Random.pick(Sources), Block.LabelId));
        }
      }
    }
    ModuleAnalysis Analysis(module());
    for (const InsertPoint &Point : collectInsertPoints()) {
      if (!takeOpportunity())
        continue;
      std::vector<ValueInfo> Sources;
      std::vector<Id> PointerSources;
      for (const ValueInfo &Candidate :
           availableValues(Analysis, Point, InvalidId, false)) {
        if (module().isIntTypeId(Candidate.TypeId) ||
            module().isBoolTypeId(Candidate.TypeId))
          Sources.push_back(Candidate);
        else if (module().isPointerTypeId(Candidate.TypeId))
          PointerSources.push_back(Candidate.ValueId);
      }
      // Pointers only admit CopyObject synonyms (no arithmetic identities),
      // but those aliases are what make the alias-sensitive compiler bugs
      // reachable, so give them their own draw.
      if (!PointerSources.empty() && Random.chancePercent(35)) {
        maybeApply(std::make_shared<TransformationAddSynonymViaCopyObject>(
            freshId(), Random.pick(PointerSources), Point.Before));
        continue;
      }
      if (Sources.empty())
        continue;
      const ValueInfo &Source = Random.pick(Sources);
      if (Random.flip()) {
        maybeApply(std::make_shared<TransformationAddSynonymViaCopyObject>(
            freshId(), Source.ValueId, Point.Before));
        continue;
      }
      bool IsInt = module().isIntTypeId(Source.TypeId);
      uint32_t Which;
      Id ConstId;
      if (IsInt) {
        static const uint32_t IntIdentities[] = {
            TransformationAddArithmeticSynonym::AddZero,
            TransformationAddArithmeticSynonym::SubZero,
            TransformationAddArithmeticSynonym::MulOne,
            TransformationAddArithmeticSynonym::ZeroPlus};
        Which = IntIdentities[Random.index(4)];
        ConstId = ensureIntConstant(
            Which == TransformationAddArithmeticSynonym::MulOne ? 1 : 0);
      } else {
        Which = Random.flip() ? TransformationAddArithmeticSynonym::AndTrue
                              : TransformationAddArithmeticSynonym::OrFalse;
        ConstId = ensureBoolConstant(
            Which == TransformationAddArithmeticSynonym::AndTrue);
      }
      if (ConstId == InvalidId)
        continue;
      maybeApply(std::make_shared<TransformationAddArithmeticSynonym>(
          freshId(), Source.ValueId, Which, ConstId, Point.Before));
    }
  }

  void passApplySynonyms() {
    for (const UseSite &Use : collectValueUses()) {
      if (!takeOpportunity())
        continue;
      std::vector<Id> Synonyms = facts().idSynonymsOf(Use.Current);
      if (Synonyms.empty())
        continue;
      maybeApply(std::make_shared<TransformationReplaceIdWithSynonym>(
          Use.Where, Use.OperandIndex, Random.pick(Synonyms)));
    }
  }

  void passObfuscateConstants() {
    // Uniform variables by (pointee type, binding), with known values.
    struct UniformInfo {
      Id Var;
      Id Pointee;
      Value KnownValue;
    };
    std::vector<UniformInfo> Uniforms;
    for (const Instruction &Global : module().GlobalInsts) {
      if (Global.Opcode != Op::Variable ||
          static_cast<StorageClass>(Global.literalOperand(0)) !=
              StorageClass::Uniform)
        continue;
      auto It =
          facts().knownInput().Bindings.find(Global.literalOperand(1));
      if (It == facts().knownInput().Bindings.end())
        continue;
      Uniforms.push_back({Global.Result,
                          module().pointerInfo(Global.ResultType).second,
                          It->second});
    }
    if (Uniforms.empty())
      return;
    for (const UseSite &Use : collectValueUses()) {
      if (!takeOpportunity())
        continue;
      const Instruction *Def = module().findDef(Use.Current);
      if (!Def || !isConstantDecl(Def->Opcode) ||
          Def->Opcode == Op::ConstantComposite)
        continue;
      Value ConstValue = evalConstant(module(), Use.Current);
      std::vector<const UniformInfo *> Matches;
      for (const UniformInfo &Info : Uniforms)
        if (Info.Pointee == Def->ResultType && Info.KnownValue == ConstValue)
          Matches.push_back(&Info);
      if (Matches.empty())
        continue;
      maybeApply(std::make_shared<TransformationReplaceConstantWithUniform>(
          Use.Where, Use.OperandIndex, Matches[Random.index(Matches.size())]->Var,
          freshId()));
    }
  }

  void passSplitBlocks() {
    for (const InsertPoint &Point : collectInsertPoints())
      if (takeOpportunity())
        maybeApply(std::make_shared<TransformationSplitBlock>(Point.Before,
                                                              freshId()));
  }

  void passPermuteBlocks() {
    for (const Function &Func : module().Functions) {
      std::vector<Id> BlockIds;
      for (const BasicBlock &Block : Func.Blocks)
        BlockIds.push_back(Block.LabelId);
      for (Id BlockId : BlockIds)
        if (takeOpportunity())
          maybeApply(std::make_shared<TransformationMoveBlockDown>(BlockId));
    }
  }

  void passPropagateInstructionsUp() {
    ModuleAnalysis Analysis(module());
    for (const Function &Func : module().Functions) {
      const Cfg &Graph = Analysis.cfg(Func.id());
      for (const BasicBlock &Block : Func.Blocks) {
        if (!takeOpportunity())
          continue;
        const std::vector<Id> &Preds = Graph.predecessors(Block.LabelId);
        if (Preds.empty())
          continue;
        std::vector<uint32_t> PredFreshPairs;
        std::unordered_map<Id, bool> Seen;
        for (Id Pred : Preds) {
          if (Seen[Pred])
            continue;
          Seen[Pred] = true;
          PredFreshPairs.push_back(Pred);
          PredFreshPairs.push_back(freshId());
        }
        maybeApply(std::make_shared<TransformationPropagateInstructionUp>(
            Block.LabelId, PredFreshPairs));
      }
    }
  }

  void passReplaceBranchesWithConditionals() {
    ModuleAnalysis Analysis(module());
    for (const Function &Func : module().Functions) {
      for (const BasicBlock &Block : Func.Blocks) {
        if (!Block.hasTerminator() ||
            Block.terminator().Opcode != Op::Branch || !takeOpportunity())
          continue;
        InsertPoint Point{Func.id(), Block.LabelId, Block.Body.size() - 1,
                          InstructionDescriptor()};
        std::vector<Id> Conditions;
        for (const ValueInfo &Candidate :
             availableValues(Analysis, Point, InvalidId, true))
          if (module().isBoolTypeId(Candidate.TypeId))
            Conditions.push_back(Candidate.ValueId);
        if (Conditions.empty())
          continue;
        maybeApply(
            std::make_shared<TransformationReplaceBranchWithConditional>(
                Block.LabelId, Random.pick(Conditions), Random.flip()));
      }
    }
  }

  void passInvertConditions() {
    std::vector<Id> Candidates;
    for (const Function &Func : module().Functions)
      for (const BasicBlock &Block : Func.Blocks) {
        if (!Block.hasTerminator() ||
            Block.terminator().Opcode != Op::BranchConditional)
          continue;
        // Skip constant conditions: negating a literal is a degenerate
        // obfuscation (ObfuscateConstants handles constants), and glsl-fuzz
        // is the tool whose wrapping macro produces that shape.
        const Instruction *CondDef =
            module().findDef(Block.terminator().idOperand(0));
        if (CondDef && isConstantDecl(CondDef->Opcode))
          continue;
        Candidates.push_back(Block.LabelId);
      }
    for (Id BlockId : Candidates)
      if (takeOpportunity())
        maybeApply(std::make_shared<TransformationInvertBranchCondition>(
            BlockId, freshId()));
  }

  void passPermutePhis() {
    for (const Function &Func : module().Functions)
      for (const BasicBlock &Block : Func.Blocks)
        for (size_t I = 0;
             I < Block.Body.size() && Block.Body[I].Opcode == Op::Phi; ++I) {
          if (!takeOpportunity())
            continue;
          size_t NumPairs = Block.Body[I].Operands.size() / 2;
          std::vector<uint32_t> Perm(NumPairs);
          for (size_t P = 0; P < NumPairs; ++P)
            Perm[P] = static_cast<uint32_t>(P);
          Random.shuffle(Perm);
          maybeApply(std::make_shared<TransformationPermutePhiOperands>(
              describeInstruction(Block, I), Perm));
        }
  }

  void passSwapOperands() {
    for (const Function &Func : module().Functions)
      for (const BasicBlock &Block : Func.Blocks)
        for (size_t I = 0; I < Block.Body.size(); ++I)
          if (isCommutativeBinOp(Block.Body[I].Opcode) && takeOpportunity())
            maybeApply(std::make_shared<TransformationSwapCommutableOperands>(
                describeInstruction(Block, I)));
  }

  void passAddCompositeSynonyms() {
    Id IntType = ensureIntType();
    if (IntType == InvalidId)
      return;
    ModuleAnalysis Analysis(module());
    for (const InsertPoint &Point : collectInsertPoints()) {
      if (!takeOpportunity())
        continue;
      std::vector<ValueInfo> Ints =
          availableValues(Analysis, Point, IntType, false);
      if (Ints.size() < 2)
        continue;
      uint32_t Count = Random.uniform(2, 4);
      Id VecType = ensureVectorType(IntType, Count);
      if (VecType == InvalidId)
        continue;
      std::vector<Id> Components;
      for (uint32_t I = 0; I < Count; ++I)
        Components.push_back(Random.pick(Ints).ValueId);
      Id Constructed = freshId();
      if (!maybeApply(std::make_shared<TransformationCompositeConstruct>(
              Constructed, VecType, Components, Point.Before)))
        continue;
      // Immediately give one component a synonym via extraction; the
      // descriptor still resolves because it is relative to the original
      // instruction, which the construct was inserted before.
      uint32_t Index = Random.uniform(0, Count - 1);
      maybeApply(std::make_shared<TransformationCompositeExtract>(
          freshId(), Constructed, Index, Point.Before));
    }
  }

  void passAddFunctions();     // defined below (donor adaptation)
  void passAddFunctionCalls(); // defined below

  void passInlineFunctions() {
    // Collect call sites first; inlining invalidates iteration state.
    struct CallSite {
      InstructionDescriptor Where;
      Id Callee;
    };
    std::vector<CallSite> Calls;
    for (const Function &Func : module().Functions)
      for (const BasicBlock &Block : Func.Blocks)
        for (size_t I = 0; I < Block.Body.size(); ++I)
          if (Block.Body[I].Opcode == Op::FunctionCall)
            Calls.push_back(
                {describeInstruction(Block, I), Block.Body[I].idOperand(0)});
    for (const CallSite &Call : Calls) {
      if (!takeOpportunity())
        continue;
      const Function *Callee = module().findFunction(Call.Callee);
      if (!Callee)
        continue;
      std::vector<uint32_t> IdMap;
      for (const BasicBlock &Block : Callee->Blocks) {
        IdMap.push_back(Block.LabelId);
        IdMap.push_back(freshId());
        for (const Instruction &Inst : Block.Body)
          if (Inst.Result != InvalidId) {
            IdMap.push_back(Inst.Result);
            IdMap.push_back(freshId());
          }
      }
      maybeApply(std::make_shared<TransformationInlineFunction>(
          Call.Where, freshId(), IdMap));
    }
  }

  void passAddParameters() {
    std::vector<Id> Candidates;
    for (const Function &Func : module().Functions)
      if (Func.id() != module().EntryPointId)
        Candidates.push_back(Func.id());
    for (Id FuncId : Candidates) {
      if (!takeOpportunity())
        continue;
      const Function *Func = module().findFunction(FuncId);
      if (!Func)
        continue;
      Id ParamType = Random.flip() ? ensureIntType() : ensureBoolType();
      if (ParamType == InvalidId)
        continue;
      std::vector<Id> NewSignature;
      for (const Instruction &Param : Func->Params)
        NewSignature.push_back(Param.ResultType);
      NewSignature.push_back(ParamType);
      // Ensure the new function type exists (supporting transformation).
      Id NewFuncType = InvalidId;
      for (const Instruction &Global : module().GlobalInsts) {
        if (Global.Opcode != Op::TypeFunction ||
            Global.Operands.size() != NewSignature.size() + 1 ||
            Global.idOperand(0) != Func->returnTypeId())
          continue;
        bool Same = true;
        for (size_t I = 0; I < NewSignature.size(); ++I)
          if (Global.idOperand(I + 1) != NewSignature[I])
            Same = false;
        if (Same) {
          NewFuncType = Global.Result;
          break;
        }
      }
      if (NewFuncType == InvalidId) {
        Id Fresh = freshId();
        if (maybeApply(std::make_shared<TransformationAddTypeFunction>(
                Fresh, Func->returnTypeId(), NewSignature)))
          NewFuncType = Fresh;
        else
          continue;
      }
      Id ArgConst = makeIrrelevantConstant(ParamType);
      if (ArgConst == InvalidId)
        continue;
      maybeApply(std::make_shared<TransformationAddParameter>(
          FuncId, freshId(), ParamType, NewFuncType, ArgConst));
    }
  }

  void passToggleDontInline() {
    for (const Function &Func : module().Functions)
      if (Func.id() != module().EntryPointId && takeOpportunity())
        maybeApply(std::make_shared<TransformationToggleDontInline>(
            Func.id(), !Func.isDontInline()));
  }

  void passReplaceIrrelevantIds() {
    ModuleAnalysis Analysis(module());
    for (const UseSite &Use : collectValueUses()) {
      if (!facts().idIsIrrelevant(Use.Current) || !takeOpportunity())
        continue;
      LocatedInstruction Loc = locateInstructionConst(module(), Use.Where);
      if (!Loc.valid())
        continue;
      InsertPoint Point{Loc.Func->id(), Loc.Block->LabelId, Loc.Index,
                        Use.Where};
      std::vector<ValueInfo> Replacements = availableValues(
          Analysis, Point, module().typeOfId(Use.Current), true);
      if (Replacements.empty())
        continue;
      maybeApply(std::make_shared<TransformationReplaceIrrelevantId>(
          Use.Where, Use.OperandIndex, Random.pick(Replacements).ValueId));
    }
  }

  /// Baseline-only: rewrites "Branch S" as "if (!false) S else S", the
  /// shape of glsl-fuzz's conditional wrapping macro.
  void passWrapConditionalNegation() {
    std::vector<Id> Candidates;
    for (const Function &Func : module().Functions)
      for (const BasicBlock &Block : Func.Blocks)
        if (Block.hasTerminator() && Block.terminator().Opcode == Op::Branch)
          Candidates.push_back(Block.LabelId);
    for (Id BlockId : Candidates) {
      if (!takeOpportunity())
        continue;
      Id FalseConst = ensureBoolConstant(false);
      if (FalseConst == InvalidId)
        continue;
      if (!maybeApply(
              std::make_shared<TransformationReplaceBranchWithConditional>(
                  BlockId, FalseConst, false)))
        continue;
      maybeApply(std::make_shared<TransformationInvertBranchCondition>(
          BlockId, freshId()));
    }
  }

  void passReplaceBranchesWithKill() {
    std::vector<Id> DeadBlocks(facts().deadBlocks().begin(),
                               facts().deadBlocks().end());
    std::sort(DeadBlocks.begin(), DeadBlocks.end());
    for (Id BlockId : DeadBlocks)
      if (takeOpportunity())
        maybeApply(
            std::make_shared<TransformationReplaceBranchWithKill>(BlockId));
  }

  const std::vector<const Module *> &Donors;
  Rng Random;
  FuzzerOptions Options;
  FuzzResult Result;

  /// Maps donor (module, function) pairs already transplanted in this run
  /// to their new ids, so call chains can be transplanted once.
  std::unordered_map<const Module *, std::unordered_map<Id, Id>> Transplants;

  friend class DonorAdapter;
};

//===----------------------------------------------------------------------===//
// Donor function adaptation (passAddFunctions / passAddFunctionCalls)
//===----------------------------------------------------------------------===//

/// Rewrites a donor function so that it can live in the recipient module:
/// donor types/constants are re-created in the recipient (via supporting
/// transformations), donor global variables are matched or replaced, donor
/// callees are transplanted first, and all internal ids are refreshed.
class DonorAdapter {
public:
  DonorAdapter(FuzzerImpl &Fuzzer, const Module &Donor)
      : Fuzzer(Fuzzer), Donor(Donor) {}

  /// Returns the recipient id of the transplanted donor function
  /// \p DonorFuncId, transplanting it (and its callees) on demand;
  /// InvalidId on failure.
  Id transplant(Id DonorFuncId) {
    auto &Cache = Fuzzer.Transplants[&Donor];
    auto It = Cache.find(DonorFuncId);
    if (It != Cache.end())
      return It->second;

    const Function *DonorFunc = Donor.findFunction(DonorFuncId);
    if (!DonorFunc || DonorFuncId == Donor.EntryPointId)
      return InvalidId;

    // Transplant callees first; reject if any fails.
    for (const BasicBlock &Block : DonorFunc->Blocks)
      for (const Instruction &Inst : Block.Body)
        if (Inst.Opcode == Op::FunctionCall &&
            transplant(Inst.idOperand(0)) == InvalidId)
          return InvalidId;

    std::unordered_map<Id, Id> Remap;
    if (!mapExternals(*DonorFunc, Remap))
      return InvalidId;

    // Refresh the function's own ids.
    Function Adapted = *DonorFunc;
    Adapted.Def.Result = Fuzzer.freshId();
    Remap[DonorFunc->id()] = Adapted.Def.Result;
    for (Instruction &Param : Adapted.Params) {
      Remap[Param.Result] = Fuzzer.freshId();
      Param.Result = Remap[Param.Result];
    }
    for (BasicBlock &Block : Adapted.Blocks) {
      Remap[Block.LabelId] = Fuzzer.freshId();
      Block.LabelId = Remap[Block.LabelId];
      for (Instruction &Inst : Block.Body)
        if (Inst.Result != InvalidId) {
          Remap[Inst.Result] = Fuzzer.freshId();
          Inst.Result = Remap[Inst.Result];
        }
    }
    // Rewrite all id references through the remap.
    auto MapId = [&Remap](Id TheId) {
      auto It = Remap.find(TheId);
      return It == Remap.end() ? TheId : It->second;
    };
    Adapted.Def.ResultType = MapId(Adapted.Def.ResultType);
    Adapted.Def.Operands[1] = Operand::id(MapId(Adapted.Def.idOperand(1)));
    for (Instruction &Param : Adapted.Params)
      Param.ResultType = MapId(Param.ResultType);
    for (BasicBlock &Block : Adapted.Blocks)
      for (Instruction &Inst : Block.Body) {
        Inst.ResultType = MapId(Inst.ResultType);
        for (Operand &Opnd : Inst.Operands)
          if (Opnd.isId())
            Opnd = Operand::id(MapId(Opnd.Word));
      }

    bool LiveSafe = donorFunctionIsLiveSafeCandidate(*DonorFunc);
    TransformationPtr T = std::make_shared<TransformationAddFunction>(
        TransformationAddFunction::encodeFunction(Adapted), LiveSafe);
    if (!Fuzzer.maybeApply(T))
      return InvalidId;
    Cache[DonorFuncId] = Adapted.Def.Result;
    return Adapted.Def.Result;
  }

private:
  /// True if the donor function only stores through its own locals — the
  /// static part of live-safety that depends on the donor, not the
  /// recipient (donor loops are bounded by construction of the generator).
  bool donorFunctionIsLiveSafeCandidate(const Function &DonorFunc) {
    std::unordered_set<Id> OwnLocals;
    for (const BasicBlock &Block : DonorFunc.Blocks)
      for (const Instruction &Inst : Block.Body)
        if (Inst.Opcode == Op::Variable)
          OwnLocals.insert(Inst.Result);
    for (const BasicBlock &Block : DonorFunc.Blocks)
      for (const Instruction &Inst : Block.Body) {
        if (Inst.Opcode == Op::Kill)
          return false;
        if (Inst.Opcode == Op::Store &&
            OwnLocals.count(Inst.idOperand(0)) == 0)
          return false;
      }
    return true;
  }

  /// Resolves every id the donor function references but does not define,
  /// creating recipient-side types/constants as needed.
  bool mapExternals(const Function &DonorFunc,
                    std::unordered_map<Id, Id> &Remap) {
    std::unordered_set<Id> Internal;
    Internal.insert(DonorFunc.id());
    for (const Instruction &Param : DonorFunc.Params)
      Internal.insert(Param.Result);
    for (const BasicBlock &Block : DonorFunc.Blocks) {
      Internal.insert(Block.LabelId);
      for (const Instruction &Inst : Block.Body)
        if (Inst.Result != InvalidId)
          Internal.insert(Inst.Result);
    }

    bool Ok = true;
    auto Resolve = [&](Id External) {
      if (!Ok || Internal.count(External) || Remap.count(External))
        return;
      Id Mapped = resolveExternal(External);
      if (Mapped == InvalidId)
        Ok = false;
      else
        Remap[External] = Mapped;
    };
    DonorFunc.Def.forEachUsedId(Resolve);
    for (const Instruction &Param : DonorFunc.Params)
      Param.forEachUsedId(Resolve);
    for (const BasicBlock &Block : DonorFunc.Blocks)
      for (const Instruction &Inst : Block.Body)
        Inst.forEachUsedId(Resolve);
    return Ok;
  }

  /// Produces a recipient id equivalent to donor global \p External.
  Id resolveExternal(Id External) {
    const Instruction *Def = Donor.findDef(External);
    if (!Def)
      return InvalidId;
    // Donor callees were transplanted up front.
    if (Def->Opcode == Op::Function) {
      auto &Cache = Fuzzer.Transplants[&Donor];
      auto It = Cache.find(External);
      return It == Cache.end() ? InvalidId : It->second;
    }
    switch (Def->Opcode) {
    case Op::TypeVoid: {
      // The recipient has a void type iff it has an entry point; reuse it.
      for (const Instruction &Global : Fuzzer.module().GlobalInsts)
        if (Global.Opcode == Op::TypeVoid)
          return Global.Result;
      return InvalidId;
    }
    case Op::TypeInt:
      return Fuzzer.ensureIntType();
    case Op::TypeBool:
      return Fuzzer.ensureBoolType();
    case Op::TypeVector: {
      Id Component = resolveExternal(Def->idOperand(0));
      if (Component == InvalidId)
        return InvalidId;
      return Fuzzer.ensureVectorType(Component, Def->literalOperand(1));
    }
    case Op::TypePointer: {
      Id Pointee = resolveExternal(Def->idOperand(1));
      if (Pointee == InvalidId)
        return InvalidId;
      auto SC = static_cast<StorageClass>(Def->literalOperand(0));
      if (SC != StorageClass::Function && SC != StorageClass::Private)
        return InvalidId; // uniform/output pointers resolved via variables
      return Fuzzer.ensurePointerType(SC, Pointee);
    }
    case Op::TypeFunction: {
      Id Return = resolveExternal(Def->idOperand(0));
      if (Return == InvalidId)
        return InvalidId;
      std::vector<Id> Params;
      for (size_t I = 1; I < Def->Operands.size(); ++I) {
        Id Param = resolveExternal(Def->idOperand(I));
        if (Param == InvalidId)
          return InvalidId;
        Params.push_back(Param);
      }
      for (const Instruction &Global : Fuzzer.module().GlobalInsts) {
        if (Global.Opcode != Op::TypeFunction ||
            Global.Operands.size() != Params.size() + 1 ||
            Global.idOperand(0) != Return)
          continue;
        bool Same = true;
        for (size_t I = 0; I < Params.size(); ++I)
          if (Global.idOperand(I + 1) != Params[I])
            Same = false;
        if (Same)
          return Global.Result;
      }
      Id Fresh = Fuzzer.freshId();
      return Fuzzer.maybeApply(std::make_shared<TransformationAddTypeFunction>(
                 Fresh, Return, Params))
                 ? Fresh
                 : InvalidId;
    }
    case Op::Constant: {
      Id Type = Fuzzer.ensureIntType();
      if (Type == InvalidId)
        return InvalidId;
      if (Id Existing =
              Fuzzer.findScalarConstant(Type, Def->literalOperand(0)))
        return Existing;
      Id Fresh = Fuzzer.freshId();
      return Fuzzer.maybeApply(
                 std::make_shared<TransformationAddConstantScalar>(
                     Fresh, Type, Def->literalOperand(0), false))
                 ? Fresh
                 : InvalidId;
    }
    case Op::ConstantTrue:
      return Fuzzer.ensureBoolConstant(true);
    case Op::ConstantFalse:
      return Fuzzer.ensureBoolConstant(false);
    case Op::Variable: {
      // Match a recipient variable of the same storage class and value
      // type. Donor helpers only *load* globals, so any same-typed
      // variable preserves well-definedness (the loaded value is absorbed
      // into the transplanted function's irrelevant result).
      auto SC = static_cast<StorageClass>(Def->literalOperand(0));
      Id DonorPointee = Donor.pointerInfo(Def->ResultType).second;
      const Instruction *DonorPointeeDef = Donor.findDef(DonorPointee);
      for (const Instruction &Global : Fuzzer.module().GlobalInsts) {
        if (Global.Opcode != Op::Variable ||
            static_cast<StorageClass>(Global.literalOperand(0)) != SC)
          continue;
        Id Pointee = Fuzzer.module().pointerInfo(Global.ResultType).second;
        const Instruction *PointeeDef = Fuzzer.module().findDef(Pointee);
        if (DonorPointeeDef && PointeeDef &&
            DonorPointeeDef->Opcode == PointeeDef->Opcode &&
            (DonorPointeeDef->Opcode == Op::TypeInt ||
             DonorPointeeDef->Opcode == Op::TypeBool))
          return Global.Result;
      }
      // No match: create a private variable of the right type instead.
      if (!DonorPointeeDef || (DonorPointeeDef->Opcode != Op::TypeInt &&
                               DonorPointeeDef->Opcode != Op::TypeBool))
        return InvalidId;
      Id Pointee = DonorPointeeDef->Opcode == Op::TypeInt
                       ? Fuzzer.ensureIntType()
                       : Fuzzer.ensureBoolType();
      Id PtrType = Fuzzer.ensurePointerType(StorageClass::Private, Pointee);
      if (PtrType == InvalidId)
        return InvalidId;
      Id Fresh = Fuzzer.freshId();
      return Fuzzer.maybeApply(
                 std::make_shared<TransformationAddGlobalVariable>(
                     Fresh, PtrType, InvalidId))
                 ? Fresh
                 : InvalidId;
    }
    default:
      return InvalidId;
    }
  }

  FuzzerImpl &Fuzzer;
  const Module &Donor;
};

void FuzzerImpl::passAddFunctions() {
  if (Donors.empty())
    return;
  for (uint32_t Attempt = 0; Attempt < 2; ++Attempt) {
    if (!takeOpportunity())
      continue;
    const Module *Donor = Donors[Random.index(Donors.size())];
    std::vector<Id> Candidates;
    for (const Function &Func : Donor->Functions)
      if (Func.id() != Donor->EntryPointId)
        Candidates.push_back(Func.id());
    if (Candidates.empty())
      continue;
    DonorAdapter Adapter(*this, *Donor);
    Adapter.transplant(Random.pick(Candidates));
  }
}

void FuzzerImpl::passAddFunctionCalls() {
  ModuleAnalysis Analysis(module());
  for (const InsertPoint &Point : collectInsertPoints()) {
    if (!takeOpportunity())
      continue;
    bool Dead = facts().blockIsDead(Point.BlockId);
    std::vector<Id> Callees;
    for (const Function &Func : module().Functions) {
      if (Func.id() == module().EntryPointId || Func.id() == Point.FuncId)
        continue;
      if (!Dead && !facts().functionIsLiveSafe(Func.id()))
        continue;
      Callees.push_back(Func.id());
    }
    if (Callees.empty())
      continue;
    Id Callee = Random.pick(Callees);
    const Function *CalleeFunc = module().findFunction(Callee);
    std::vector<Id> Args;
    bool ArgsOk = true;
    for (const Instruction &Param : CalleeFunc->Params) {
      // Favor trivial irrelevant constants (later upgradable via
      // ReplaceIrrelevantId; the reducer can strip the upgrade — ğ3.3).
      Id Arg = InvalidId;
      if (module().isIntTypeId(Param.ResultType) ||
          module().isBoolTypeId(Param.ResultType)) {
        Arg = makeIrrelevantConstant(Param.ResultType);
      } else {
        std::vector<ValueInfo> Options =
            availableValues(Analysis, Point, Param.ResultType, true);
        if (!Options.empty())
          Arg = Random.pick(Options).ValueId;
      }
      if (Arg == InvalidId) {
        ArgsOk = false;
        break;
      }
      Args.push_back(Arg);
    }
    if (!ArgsOk)
      continue;
    maybeApply(std::make_shared<TransformationAddFunctionCall>(
        freshId(), Callee, Args, Point.Before));
  }
}

} // namespace

FuzzResult spvfuzz::fuzz(const Module &Original, const ShaderInput &Input,
                         const std::vector<const Module *> &Donors,
                         uint64_t Seed, const FuzzerOptions &Options) {
  return FuzzerImpl(Original, Input, Donors, Seed, Options).run();
}
