//===- core/Fuzzer.h - The transformation-based fuzzer ----------*- C++ -*-===//
//
// Part of the spirv-fuzz reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The fuzzer component (ğ3.2): repeatedly runs fuzzer passes, each of
/// which sweeps the module for opportunities to apply a particular family
/// of transformations and takes them probabilistically. Pass scheduling
/// follows the paper's *recommendations* strategy: after a pass runs, a
/// random subset of its follow-on passes is pushed onto a queue, and the
/// next pass is drawn with equal probability from the queue or at random.
/// Disabling recommendations yields the paper's spirv-fuzz-simple
/// configuration.
///
//===----------------------------------------------------------------------===//

#ifndef CORE_FUZZER_H
#define CORE_FUZZER_H

#include "core/Transformation.h"

namespace spvfuzz {

/// Which tool is being simulated.
enum class FuzzerProfile : uint8_t {
  /// spirv-fuzz: the full transformation catalogue.
  Full,
  /// The glsl-fuzz-style baseline: only the coarse families that a
  /// source-level tool applies (dead code injection, conditional wrapping,
  /// donor injection, constant obfuscation, block splitting), with no
  /// SPIR-V-specific fine-grained transformations. Its reducer works at
  /// whole-injection granularity (see baseline/BaselineReducer.h).
  Baseline,
};

struct FuzzerOptions {
  /// Hard cap on applied transformations (the paper's limit is 2000).
  uint32_t TransformationLimit = 2000;
  /// Transformation-family pool.
  FuzzerProfile Profile = FuzzerProfile::Full;
  /// After each pass the fuzzer continues with this probability.
  uint32_t ContinuePercent = 85;
  /// Upper bound on the number of passes (backstop for the probabilistic
  /// stop).
  uint32_t MaxPasses = 40;
  /// Chance of taking each discovered opportunity within a pass.
  uint32_t OpportunityPercent = 25;
  /// The recommendations strategy toggle (spirv-fuzz vs spirv-fuzz-simple).
  bool EnableRecommendations = true;
};

/// The outcome of a fuzzing run: the transformed module and facts, plus the
/// sequence that produces them from the original (replayable with
/// applySequence).
struct FuzzResult {
  Module Variant;
  FactManager Facts;
  TransformationSequence Sequence;
  /// Half-open index ranges of Sequence, one per fuzzer-pass run that
  /// applied at least one transformation. These are the "syntactic marker"
  /// groups the baseline's hand-crafted reducer reverts wholesale.
  std::vector<std::pair<size_t, size_t>> PassGroups;
};

/// Fuzzes \p Original (which must be valid and well-defined on \p Input).
/// \p Donors supplies modules whose non-entry functions may be transplanted
/// by AddFunction transformations.
FuzzResult fuzz(const Module &Original, const ShaderInput &Input,
                const std::vector<const Module *> &Donors, uint64_t Seed,
                const FuzzerOptions &Options = FuzzerOptions());

} // namespace spvfuzz

#endif // CORE_FUZZER_H
