//===- core/Dedup.cpp - Transformation-type deduplication ------------------===//
//
// Part of the spirv-fuzz reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "core/Dedup.h"

#include <algorithm>

using namespace spvfuzz;

std::set<TransformationKind>
spvfuzz::dedupTypesOf(const TransformationSequence &Sequence) {
  std::set<TransformationKind> Types;
  for (const TransformationPtr &T : Sequence)
    if (!isDedupIgnoredKind(T->kind()))
      Types.insert(T->kind());
  return Types;
}

std::vector<size_t> spvfuzz::deduplicateTests(
    const std::vector<std::set<TransformationKind>> &TestTypes) {
  std::vector<size_t> ToInvestigate;
  // Remaining tests; tests with empty type sets carry no signal and are
  // dropped up front (Figure 6 would otherwise never terminate on them).
  std::vector<size_t> Remaining;
  for (size_t I = 0; I != TestTypes.size(); ++I)
    if (!TestTypes[I].empty())
      Remaining.push_back(I);

  size_t TargetSize = 1;
  while (!Remaining.empty()) {
    // Find a test with exactly TargetSize types (lowest index for
    // determinism).
    auto It = std::find_if(Remaining.begin(), Remaining.end(),
                           [&](size_t Index) {
                             return TestTypes[Index].size() == TargetSize;
                           });
    if (It == Remaining.end()) {
      ++TargetSize;
      continue;
    }
    size_t Chosen = *It;
    ToInvestigate.push_back(Chosen);
    // Keep only tests sharing no type with the chosen one.
    std::vector<size_t> Kept;
    for (size_t Index : Remaining) {
      bool Disjoint = true;
      for (TransformationKind Kind : TestTypes[Chosen])
        if (TestTypes[Index].count(Kind)) {
          Disjoint = false;
          break;
        }
      if (Disjoint)
        Kept.push_back(Index);
    }
    Remaining = std::move(Kept);
  }
  return ToInvestigate;
}
