//===- core/Transformations.h - Concrete transformations -------*- C++ -*-===//
//
// Part of the spirv-fuzz reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The concrete transformation catalogue (ğ3.2/ğ3.3 of the paper). Every
/// class documents its precondition (Pre) and effect. Design principles
/// from ğ2.3 show up concretely:
///  - instructions are addressed by InstructionDescriptor, not offsets;
///  - InlineFunction carries an explicit fresh-id map;
///  - dead blocks, stores into them, kill-terminators and constant
///    obfuscation are separate, small transformations;
///  - AddStore handles both dead-block and irrelevant-pointee stores under
///    one type, and ReplaceBranchWithConditional handles both of its forms
///    under one type.
///
//===----------------------------------------------------------------------===//

#ifndef CORE_TRANSFORMATIONS_H
#define CORE_TRANSFORMATIONS_H

#include "core/Transformation.h"

namespace spvfuzz {

//===----------------------------------------------------------------------===//
// Supporting transformations (types, constants, variables)
//===----------------------------------------------------------------------===//

/// Adds the 32-bit integer type with a fresh id.
class TransformationAddTypeInt final : public Transformation {
public:
  explicit TransformationAddTypeInt(Id Fresh) : Fresh(Fresh) {}
  TransformationKind kind() const override {
    return TransformationKind::AddTypeInt;
  }
  bool isApplicable(const Module &M, const ModuleAnalysis &Analysis,
                    const FactManager &Facts) const override;
  void apply(Module &M, FactManager &Facts) const override;
  ParamMap params() const override;

  Id Fresh;
};

/// Adds the boolean type with a fresh id.
class TransformationAddTypeBool final : public Transformation {
public:
  explicit TransformationAddTypeBool(Id Fresh) : Fresh(Fresh) {}
  TransformationKind kind() const override {
    return TransformationKind::AddTypeBool;
  }
  bool isApplicable(const Module &M, const ModuleAnalysis &Analysis,
                    const FactManager &Facts) const override;
  void apply(Module &M, FactManager &Facts) const override;
  ParamMap params() const override;

  Id Fresh;
};

/// Adds a vector type over an existing scalar type.
class TransformationAddTypeVector final : public Transformation {
public:
  TransformationAddTypeVector(Id Fresh, Id Component, uint32_t Count)
      : Fresh(Fresh), Component(Component), Count(Count) {}
  TransformationKind kind() const override {
    return TransformationKind::AddTypeVector;
  }
  bool isApplicable(const Module &M, const ModuleAnalysis &Analysis,
                    const FactManager &Facts) const override;
  void apply(Module &M, FactManager &Facts) const override;
  ParamMap params() const override;

  Id Fresh;
  Id Component;
  uint32_t Count;
};

/// Adds a struct type over existing non-pointer member types.
class TransformationAddTypeStruct final : public Transformation {
public:
  TransformationAddTypeStruct(Id Fresh, std::vector<Id> Members)
      : Fresh(Fresh), Members(std::move(Members)) {}
  TransformationKind kind() const override {
    return TransformationKind::AddTypeStruct;
  }
  bool isApplicable(const Module &M, const ModuleAnalysis &Analysis,
                    const FactManager &Facts) const override;
  void apply(Module &M, FactManager &Facts) const override;
  ParamMap params() const override;

  Id Fresh;
  std::vector<Id> Members;
};

/// Adds a pointer type.
class TransformationAddTypePointer final : public Transformation {
public:
  TransformationAddTypePointer(Id Fresh, StorageClass SC, Id Pointee)
      : Fresh(Fresh), SC(SC), Pointee(Pointee) {}
  TransformationKind kind() const override {
    return TransformationKind::AddTypePointer;
  }
  bool isApplicable(const Module &M, const ModuleAnalysis &Analysis,
                    const FactManager &Facts) const override;
  void apply(Module &M, FactManager &Facts) const override;
  ParamMap params() const override;

  Id Fresh;
  StorageClass SC;
  Id Pointee;
};

/// Adds a function type (used by AddParameter to retype a function).
class TransformationAddTypeFunction final : public Transformation {
public:
  TransformationAddTypeFunction(Id Fresh, Id ReturnType,
                                std::vector<Id> ParamTypes)
      : Fresh(Fresh), ReturnType(ReturnType),
        ParamTypes(std::move(ParamTypes)) {}
  TransformationKind kind() const override {
    return TransformationKind::AddTypeFunction;
  }
  bool isApplicable(const Module &M, const ModuleAnalysis &Analysis,
                    const FactManager &Facts) const override;
  void apply(Module &M, FactManager &Facts) const override;
  ParamMap params() const override;

  Id Fresh;
  Id ReturnType;
  std::vector<Id> ParamTypes;
};

/// Adds a scalar (int or bool) constant. When Irrelevant is set the fresh
/// constant id is recorded with an Irrelevant fact — the device spirv-fuzz
/// uses for trivial call arguments (ğ3.3 "favoring simple transformations").
class TransformationAddConstantScalar final : public Transformation {
public:
  TransformationAddConstantScalar(Id Fresh, Id Type, uint32_t Word,
                                  bool Irrelevant)
      : Fresh(Fresh), Type(Type), Word(Word), Irrelevant(Irrelevant) {}
  TransformationKind kind() const override {
    return TransformationKind::AddConstantScalar;
  }
  bool isApplicable(const Module &M, const ModuleAnalysis &Analysis,
                    const FactManager &Facts) const override;
  void apply(Module &M, FactManager &Facts) const override;
  ParamMap params() const override;

  Id Fresh;
  Id Type;
  uint32_t Word;
  bool Irrelevant;
};

/// Adds a composite (vector/struct) constant from existing constants.
class TransformationAddConstantComposite final : public Transformation {
public:
  TransformationAddConstantComposite(Id Fresh, Id Type,
                                     std::vector<Id> Components)
      : Fresh(Fresh), Type(Type), Components(std::move(Components)) {}
  TransformationKind kind() const override {
    return TransformationKind::AddConstantComposite;
  }
  bool isApplicable(const Module &M, const ModuleAnalysis &Analysis,
                    const FactManager &Facts) const override;
  void apply(Module &M, FactManager &Facts) const override;
  ParamMap params() const override;

  Id Fresh;
  Id Type;
  std::vector<Id> Components;
};

/// Adds a Private-storage module-scope variable. Because nothing in the
/// original program reads it, its pointee value is irrelevant, which is
/// recorded as an IrrelevantPointee fact.
class TransformationAddGlobalVariable final : public Transformation {
public:
  TransformationAddGlobalVariable(Id Fresh, Id PointerType, Id Initializer)
      : Fresh(Fresh), PointerType(PointerType), Initializer(Initializer) {}
  TransformationKind kind() const override {
    return TransformationKind::AddGlobalVariable;
  }
  bool isApplicable(const Module &M, const ModuleAnalysis &Analysis,
                    const FactManager &Facts) const override;
  void apply(Module &M, FactManager &Facts) const override;
  ParamMap params() const override;

  Id Fresh;
  Id PointerType;
  Id Initializer; // InvalidId for zero-initialization
};

/// Adds a Function-storage variable to a function's entry block, recorded
/// as IrrelevantPointee.
class TransformationAddLocalVariable final : public Transformation {
public:
  TransformationAddLocalVariable(Id Fresh, Id PointerType, Id FunctionId,
                                 Id Initializer)
      : Fresh(Fresh), PointerType(PointerType), FunctionId(FunctionId),
        Initializer(Initializer) {}
  TransformationKind kind() const override {
    return TransformationKind::AddLocalVariable;
  }
  bool isApplicable(const Module &M, const ModuleAnalysis &Analysis,
                    const FactManager &Facts) const override;
  void apply(Module &M, FactManager &Facts) const override;
  ParamMap params() const override;

  Id Fresh;
  Id PointerType;
  Id FunctionId;
  Id Initializer; // InvalidId for zero-initialization
};

//===----------------------------------------------------------------------===//
// Control-flow transformations
//===----------------------------------------------------------------------===//

/// Splits a block before the instruction identified by Where, moving it and
/// everything after it into a fresh block. Identifying the split point via
/// a descriptor (not a block/offset pair) is the ğ2.3 independence fix.
class TransformationSplitBlock final : public Transformation {
public:
  TransformationSplitBlock(InstructionDescriptor Where, Id FreshBlockId)
      : Where(Where), FreshBlockId(FreshBlockId) {}
  TransformationKind kind() const override {
    return TransformationKind::SplitBlock;
  }
  bool isApplicable(const Module &M, const ModuleAnalysis &Analysis,
                    const FactManager &Facts) const override;
  void apply(Module &M, FactManager &Facts) const override;
  ParamMap params() const override;

  InstructionDescriptor Where;
  Id FreshBlockId;
};

/// Redirects an unconditional branch through a conditional on an existing
/// true constant, with a fresh dead block on the false edge. Records a
/// DeadBlock fact. Unlike Table 1's version, the true constant must already
/// exist (provided by AddConstantScalar) — the "favor simple
/// transformations" fix of ğ2.3.
class TransformationAddDeadBlock final : public Transformation {
public:
  TransformationAddDeadBlock(Id FreshBlockId, Id ExistingBlockId,
                             Id TrueConstId)
      : FreshBlockId(FreshBlockId), ExistingBlockId(ExistingBlockId),
        TrueConstId(TrueConstId) {}
  TransformationKind kind() const override {
    return TransformationKind::AddDeadBlock;
  }
  bool isApplicable(const Module &M, const ModuleAnalysis &Analysis,
                    const FactManager &Facts) const override;
  void apply(Module &M, FactManager &Facts) const override;
  ParamMap params() const override;

  Id FreshBlockId;
  Id ExistingBlockId;
  Id TrueConstId;
};

/// Replaces the terminator of a dead block with OpKill, substantially
/// changing the static CFG with no semantic impact (ğ3.2).
class TransformationReplaceBranchWithKill final : public Transformation {
public:
  explicit TransformationReplaceBranchWithKill(Id BlockId) : BlockId(BlockId) {}
  TransformationKind kind() const override {
    return TransformationKind::ReplaceBranchWithKill;
  }
  bool isApplicable(const Module &M, const ModuleAnalysis &Analysis,
                    const FactManager &Facts) const override;
  void apply(Module &M, FactManager &Facts) const override;
  ParamMap params() const override;

  Id BlockId;
};

/// Turns "Branch S" into "BranchConditional C, S, S" for an arbitrary
/// available boolean C. Both of its forms — condition reported as the
/// "true" or the "false" way — share this single type, per ğ2.3's
/// "use the same type for similar transformations".
class TransformationReplaceBranchWithConditional final : public Transformation {
public:
  TransformationReplaceBranchWithConditional(Id BlockId, Id CondId,
                                             bool SwapArms)
      : BlockId(BlockId), CondId(CondId), SwapArms(SwapArms) {}
  TransformationKind kind() const override {
    return TransformationKind::ReplaceBranchWithConditional;
  }
  bool isApplicable(const Module &M, const ModuleAnalysis &Analysis,
                    const FactManager &Facts) const override;
  void apply(Module &M, FactManager &Facts) const override;
  ParamMap params() const override;

  Id BlockId;
  Id CondId;
  bool SwapArms; // cosmetic: which arm is listed first
};

/// Swaps a block with its syntactic successor when the SPIR-V dominance
/// layout rules permit (ğ3.2).
class TransformationMoveBlockDown final : public Transformation {
public:
  explicit TransformationMoveBlockDown(Id BlockId) : BlockId(BlockId) {}
  TransformationKind kind() const override {
    return TransformationKind::MoveBlockDown;
  }
  bool isApplicable(const Module &M, const ModuleAnalysis &Analysis,
                    const FactManager &Facts) const override;
  void apply(Module &M, FactManager &Facts) const override;
  ParamMap params() const override;

  Id BlockId;
};

/// Negates the condition of a conditional branch and swaps its arms.
class TransformationInvertBranchCondition final : public Transformation {
public:
  TransformationInvertBranchCondition(Id BlockId, Id FreshNotId)
      : BlockId(BlockId), FreshNotId(FreshNotId) {}
  TransformationKind kind() const override {
    return TransformationKind::InvertBranchCondition;
  }
  bool isApplicable(const Module &M, const ModuleAnalysis &Analysis,
                    const FactManager &Facts) const override;
  void apply(Module &M, FactManager &Facts) const override;
  ParamMap params() const override;

  Id BlockId;
  Id FreshNotId;
};

/// Reorders the (value, predecessor) pairs of a phi.
class TransformationPermutePhiOperands final : public Transformation {
public:
  TransformationPermutePhiOperands(InstructionDescriptor Where,
                                   std::vector<uint32_t> Permutation)
      : Where(Where), Permutation(std::move(Permutation)) {}
  TransformationKind kind() const override {
    return TransformationKind::PermutePhiOperands;
  }
  bool isApplicable(const Module &M, const ModuleAnalysis &Analysis,
                    const FactManager &Facts) const override;
  void apply(Module &M, FactManager &Facts) const override;
  ParamMap params() const override;

  InstructionDescriptor Where;
  std::vector<uint32_t> Permutation;
};

/// Duplicates the first non-phi instruction of a block into each of its
/// predecessors and replaces it with a phi of the copies — the
/// transformation behind the Mesa miscompilation of Figure 8a.
class TransformationPropagateInstructionUp final : public Transformation {
public:
  /// \p PredFreshPairs maps each unique predecessor label to the fresh id
  /// used for its copy, flattened as (pred, fresh)*.
  TransformationPropagateInstructionUp(Id BlockId,
                                       std::vector<uint32_t> PredFreshPairs)
      : BlockId(BlockId), PredFreshPairs(std::move(PredFreshPairs)) {}
  TransformationKind kind() const override {
    return TransformationKind::PropagateInstructionUp;
  }
  bool isApplicable(const Module &M, const ModuleAnalysis &Analysis,
                    const FactManager &Facts) const override;
  void apply(Module &M, FactManager &Facts) const override;
  ParamMap params() const override;

  Id BlockId;
  std::vector<uint32_t> PredFreshPairs;
};

//===----------------------------------------------------------------------===//
// Data transformations
//===----------------------------------------------------------------------===//

/// Inserts a store. One type covers both of its legitimations — the target
/// block is dead, or the pointee is irrelevant — per ğ2.3.
class TransformationAddStore final : public Transformation {
public:
  TransformationAddStore(Id Pointer, Id ValueId, InstructionDescriptor Where)
      : Pointer(Pointer), ValueId(ValueId), Where(Where) {}
  TransformationKind kind() const override {
    return TransformationKind::AddStore;
  }
  bool isApplicable(const Module &M, const ModuleAnalysis &Analysis,
                    const FactManager &Facts) const override;
  void apply(Module &M, FactManager &Facts) const override;
  ParamMap params() const override;

  Id Pointer;
  Id ValueId;
  InstructionDescriptor Where; // insert before the located instruction
};

/// Inserts a load from any non-Output pointer; loads are pure in MiniSPV.
class TransformationAddLoad final : public Transformation {
public:
  TransformationAddLoad(Id Fresh, Id Pointer, InstructionDescriptor Where)
      : Fresh(Fresh), Pointer(Pointer), Where(Where) {}
  TransformationKind kind() const override { return TransformationKind::AddLoad; }
  bool isApplicable(const Module &M, const ModuleAnalysis &Analysis,
                    const FactManager &Facts) const override;
  void apply(Module &M, FactManager &Facts) const override;
  ParamMap params() const override;

  Id Fresh;
  Id Pointer;
  InstructionDescriptor Where;
};

/// Copies a value into a fresh id, recording a Synonymous fact.
class TransformationAddSynonymViaCopyObject final : public Transformation {
public:
  TransformationAddSynonymViaCopyObject(Id Fresh, Id Source,
                                        InstructionDescriptor Where)
      : Fresh(Fresh), Source(Source), Where(Where) {}
  TransformationKind kind() const override {
    return TransformationKind::AddSynonymViaCopyObject;
  }
  bool isApplicable(const Module &M, const ModuleAnalysis &Analysis,
                    const FactManager &Facts) const override;
  void apply(Module &M, FactManager &Facts) const override;
  ParamMap params() const override;

  Id Fresh;
  Id Source;
  InstructionDescriptor Where;
};

/// Computes an identity of an existing value (x+0, x*1, x&&true, ...),
/// recording a Synonymous fact.
class TransformationAddArithmeticSynonym final : public Transformation {
public:
  enum Identity : uint32_t {
    AddZero = 0,
    SubZero = 1,
    MulOne = 2,
    ZeroPlus = 3,
    AndTrue = 4,
    OrFalse = 5,
  };

  TransformationAddArithmeticSynonym(Id Fresh, Id Source, uint32_t Which,
                                     Id ConstId, InstructionDescriptor Where)
      : Fresh(Fresh), Source(Source), Which(Which), ConstId(ConstId),
        Where(Where) {}
  TransformationKind kind() const override {
    return TransformationKind::AddArithmeticSynonym;
  }
  bool isApplicable(const Module &M, const ModuleAnalysis &Analysis,
                    const FactManager &Facts) const override;
  void apply(Module &M, FactManager &Facts) const override;
  ParamMap params() const override;

  Id Fresh;
  Id Source;
  uint32_t Which;
  Id ConstId;
  InstructionDescriptor Where;
};

/// Replaces one value-use with a known synonym (exploits Synonymous facts).
class TransformationReplaceIdWithSynonym final : public Transformation {
public:
  TransformationReplaceIdWithSynonym(InstructionDescriptor Where,
                                     uint32_t OperandIndex, Id SynonymId)
      : Where(Where), OperandIndex(OperandIndex), SynonymId(SynonymId) {}
  TransformationKind kind() const override {
    return TransformationKind::ReplaceIdWithSynonym;
  }
  bool isApplicable(const Module &M, const ModuleAnalysis &Analysis,
                    const FactManager &Facts) const override;
  void apply(Module &M, FactManager &Facts) const override;
  ParamMap params() const override;

  InstructionDescriptor Where;
  uint32_t OperandIndex;
  Id SynonymId;
};

/// Replaces one use of an id that carries an Irrelevant fact with any
/// available id of the same type.
class TransformationReplaceIrrelevantId final : public Transformation {
public:
  TransformationReplaceIrrelevantId(InstructionDescriptor Where,
                                    uint32_t OperandIndex, Id ReplacementId)
      : Where(Where), OperandIndex(OperandIndex), ReplacementId(ReplacementId) {
  }
  TransformationKind kind() const override {
    return TransformationKind::ReplaceIrrelevantId;
  }
  bool isApplicable(const Module &M, const ModuleAnalysis &Analysis,
                    const FactManager &Facts) const override;
  void apply(Module &M, FactManager &Facts) const override;
  ParamMap params() const override;

  InstructionDescriptor Where;
  uint32_t OperandIndex;
  Id ReplacementId;
};

/// Replaces a use of a constant with a load from a uniform known (to the
/// fuzzer, not the compiler) to hold the same value — the key obfuscation
/// that hides dead-block facts from the compiler under test.
class TransformationReplaceConstantWithUniform final : public Transformation {
public:
  TransformationReplaceConstantWithUniform(InstructionDescriptor Where,
                                           uint32_t OperandIndex,
                                           Id UniformVar, Id FreshLoadId)
      : Where(Where), OperandIndex(OperandIndex), UniformVar(UniformVar),
        FreshLoadId(FreshLoadId) {}
  TransformationKind kind() const override {
    return TransformationKind::ReplaceConstantWithUniform;
  }
  bool isApplicable(const Module &M, const ModuleAnalysis &Analysis,
                    const FactManager &Facts) const override;
  void apply(Module &M, FactManager &Facts) const override;
  ParamMap params() const override;

  InstructionDescriptor Where;
  uint32_t OperandIndex;
  Id UniformVar;
  Id FreshLoadId;
};

/// Swaps the operands of a commutative binary operation.
class TransformationSwapCommutableOperands final : public Transformation {
public:
  explicit TransformationSwapCommutableOperands(InstructionDescriptor Where)
      : Where(Where) {}
  TransformationKind kind() const override {
    return TransformationKind::SwapCommutableOperands;
  }
  bool isApplicable(const Module &M, const ModuleAnalysis &Analysis,
                    const FactManager &Facts) const override;
  void apply(Module &M, FactManager &Facts) const override;
  ParamMap params() const override;

  InstructionDescriptor Where;
};

/// Builds a composite from available components, recording Synonymous
/// facts between each composite index and its component (ğ3.2).
class TransformationCompositeConstruct final : public Transformation {
public:
  TransformationCompositeConstruct(Id Fresh, Id TypeId,
                                   std::vector<Id> Components,
                                   InstructionDescriptor Where)
      : Fresh(Fresh), TypeId(TypeId), Components(std::move(Components)),
        Where(Where) {}
  TransformationKind kind() const override {
    return TransformationKind::CompositeConstruct;
  }
  bool isApplicable(const Module &M, const ModuleAnalysis &Analysis,
                    const FactManager &Facts) const override;
  void apply(Module &M, FactManager &Facts) const override;
  ParamMap params() const override;

  Id Fresh;
  Id TypeId;
  std::vector<Id> Components;
  InstructionDescriptor Where;
};

/// Extracts one component of a composite, recording a Synonymous fact with
/// the indexed component (ğ3.2).
class TransformationCompositeExtract final : public Transformation {
public:
  TransformationCompositeExtract(Id Fresh, Id Composite, uint32_t Index,
                                 InstructionDescriptor Where)
      : Fresh(Fresh), Composite(Composite), Index(Index), Where(Where) {}
  TransformationKind kind() const override {
    return TransformationKind::CompositeExtract;
  }
  bool isApplicable(const Module &M, const ModuleAnalysis &Analysis,
                    const FactManager &Facts) const override;
  void apply(Module &M, FactManager &Facts) const override;
  ParamMap params() const override;

  Id Fresh;
  Id Composite;
  uint32_t Index;
  InstructionDescriptor Where;
};

/// Inserts a phi at the head of a multi-predecessor block whose incoming
/// value from every edge is the same available id, recording a Synonymous
/// fact between the phi and that id (spirv-fuzz's AddOpPhiSynonym).
class TransformationAddSynonymViaPhi final : public Transformation {
public:
  TransformationAddSynonymViaPhi(Id Fresh, Id Source, Id BlockId)
      : Fresh(Fresh), Source(Source), BlockId(BlockId) {}
  TransformationKind kind() const override {
    return TransformationKind::AddSynonymViaPhi;
  }
  bool isApplicable(const Module &M, const ModuleAnalysis &Analysis,
                    const FactManager &Facts) const override;
  void apply(Module &M, FactManager &Facts) const override;
  ParamMap params() const override;

  Id Fresh;
  Id Source;
  Id BlockId;
};

//===----------------------------------------------------------------------===//
// Function transformations
//===----------------------------------------------------------------------===//

/// Sets or clears the DontInline control bit of a function — the
/// transformation behind the SwiftShader bug of Figure 3.
class TransformationToggleDontInline final : public Transformation {
public:
  TransformationToggleDontInline(Id FunctionId, bool Enable)
      : FunctionId(FunctionId), Enable(Enable) {}
  TransformationKind kind() const override {
    return TransformationKind::ToggleDontInline;
  }
  bool isApplicable(const Module &M, const ModuleAnalysis &Analysis,
                    const FactManager &Facts) const override;
  void apply(Module &M, FactManager &Facts) const override;
  ParamMap params() const override;

  Id FunctionId;
  bool Enable;
};

/// Adds an entire donor function, fully encoded in the transformation so
/// donors are not needed during reduction (ğ3.2). Optionally records a
/// LiveSafe fact after checking the static live-safety conditions.
class TransformationAddFunction final : public Transformation {
public:
  TransformationAddFunction(std::vector<uint32_t> Encoded, bool MakeLiveSafe)
      : Encoded(std::move(Encoded)), MakeLiveSafe(MakeLiveSafe) {}
  TransformationKind kind() const override {
    return TransformationKind::AddFunction;
  }
  bool isApplicable(const Module &M, const ModuleAnalysis &Analysis,
                    const FactManager &Facts) const override;
  void apply(Module &M, FactManager &Facts) const override;
  ParamMap params() const override;

  /// Encodes \p Func into the word stream format.
  static std::vector<uint32_t> encodeFunction(const Function &Func);
  /// Decodes a word stream; false on malformed input.
  static bool decodeFunction(const std::vector<uint32_t> &Words,
                             Function &FuncOut);

  std::vector<uint32_t> Encoded;
  bool MakeLiveSafe;
};

/// Calls a function: live-safe callees may be called from anywhere,
/// arbitrary callees only from dead blocks (ğ3.2). The result id is
/// recorded as irrelevant.
class TransformationAddFunctionCall final : public Transformation {
public:
  TransformationAddFunctionCall(Id Fresh, Id Callee, std::vector<Id> Args,
                                InstructionDescriptor Where)
      : Fresh(Fresh), Callee(Callee), Args(std::move(Args)), Where(Where) {}
  TransformationKind kind() const override {
    return TransformationKind::AddFunctionCall;
  }
  bool isApplicable(const Module &M, const ModuleAnalysis &Analysis,
                    const FactManager &Facts) const override;
  void apply(Module &M, FactManager &Facts) const override;
  ParamMap params() const override;

  Id Fresh;
  Id Callee;
  std::vector<Id> Args;
  InstructionDescriptor Where;
};

/// Inlines a call. The explicit callee-id-to-fresh-id map makes the
/// transformation independent of earlier transformations (the ğ3.3
/// "maximizing independence" example).
class TransformationInlineFunction final : public Transformation {
public:
  TransformationInlineFunction(InstructionDescriptor CallWhere,
                               Id AfterBlockId,
                               std::vector<uint32_t> IdMapPairs)
      : CallWhere(CallWhere), AfterBlockId(AfterBlockId),
        IdMapPairs(std::move(IdMapPairs)) {}
  TransformationKind kind() const override {
    return TransformationKind::InlineFunction;
  }
  bool isApplicable(const Module &M, const ModuleAnalysis &Analysis,
                    const FactManager &Facts) const override;
  void apply(Module &M, FactManager &Facts) const override;
  ParamMap params() const override;

  InstructionDescriptor CallWhere;
  Id AfterBlockId;
  std::vector<uint32_t> IdMapPairs; // (callee id, fresh id)*
};

/// Appends a parameter to a function, passing a constant (typically an
/// irrelevant one) at every call site; the new parameter is irrelevant.
class TransformationAddParameter final : public Transformation {
public:
  TransformationAddParameter(Id FunctionId, Id FreshParamId, Id TypeId,
                             Id NewFunctionTypeId, Id ArgConstId)
      : FunctionId(FunctionId), FreshParamId(FreshParamId), TypeId(TypeId),
        NewFunctionTypeId(NewFunctionTypeId), ArgConstId(ArgConstId) {}
  TransformationKind kind() const override {
    return TransformationKind::AddParameter;
  }
  bool isApplicable(const Module &M, const ModuleAnalysis &Analysis,
                    const FactManager &Facts) const override;
  void apply(Module &M, FactManager &Facts) const override;
  ParamMap params() const override;

  Id FunctionId;
  Id FreshParamId;
  Id TypeId;
  Id NewFunctionTypeId;
  Id ArgConstId;
};

} // namespace spvfuzz

#endif // CORE_TRANSFORMATIONS_H
