//===- core/TransformationsSupport.cpp - Type/constant/variable adds ------===//
//
// Part of the spirv-fuzz reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "core/TransformationUtil.h"
#include "core/Transformations.h"
#include "ir/ModuleBuilder.h"

using namespace spvfuzz;

//===----------------------------------------------------------------------===//
// AddTypeInt / AddTypeBool
//===----------------------------------------------------------------------===//

bool TransformationAddTypeInt::isApplicable(const Module &M,
                                            const ModuleAnalysis &,
                                            const FactManager &) const {
  return idIsFreshInModule(M, Fresh);
}

void TransformationAddTypeInt::apply(Module &M, FactManager &) const {
  M.addGlobal(
      Instruction(Op::TypeInt, InvalidId, Fresh, {Operand::literal(32)}));
}

ParamMap TransformationAddTypeInt::params() const {
  ParamMap Params;
  putWord(Params, "fresh", Fresh);
  return Params;
}

bool TransformationAddTypeBool::isApplicable(const Module &M,
                                             const ModuleAnalysis &,
                                             const FactManager &) const {
  return idIsFreshInModule(M, Fresh);
}

void TransformationAddTypeBool::apply(Module &M, FactManager &) const {
  M.addGlobal(Instruction(Op::TypeBool, InvalidId, Fresh, {}));
}

ParamMap TransformationAddTypeBool::params() const {
  ParamMap Params;
  putWord(Params, "fresh", Fresh);
  return Params;
}

//===----------------------------------------------------------------------===//
// AddTypeVector / AddTypeStruct / AddTypePointer / AddTypeFunction
//===----------------------------------------------------------------------===//

bool TransformationAddTypeVector::isApplicable(const Module &M,
                                               const ModuleAnalysis &,
                                               const FactManager &) const {
  if (!idIsFreshInModule(M, Fresh))
    return false;
  if (Count < 2 || Count > 4)
    return false;
  return M.isIntTypeId(Component) || M.isBoolTypeId(Component);
}

void TransformationAddTypeVector::apply(Module &M, FactManager &) const {
  M.addGlobal(Instruction(Op::TypeVector, InvalidId, Fresh,
                          {Operand::id(Component), Operand::literal(Count)}));
}

ParamMap TransformationAddTypeVector::params() const {
  ParamMap Params;
  putWord(Params, "fresh", Fresh);
  putWord(Params, "component", Component);
  putWord(Params, "count", Count);
  return Params;
}

bool TransformationAddTypeStruct::isApplicable(const Module &M,
                                               const ModuleAnalysis &,
                                               const FactManager &) const {
  if (!idIsFreshInModule(M, Fresh) || Members.empty())
    return false;
  for (Id Member : Members) {
    const Instruction *Def = M.findDef(Member);
    if (!Def || !isTypeDecl(Def->Opcode) || Def->Opcode == Op::TypePointer ||
        Def->Opcode == Op::TypeVoid || Def->Opcode == Op::TypeFunction)
      return false;
  }
  return true;
}

void TransformationAddTypeStruct::apply(Module &M, FactManager &) const {
  std::vector<Operand> Ops;
  for (Id Member : Members)
    Ops.push_back(Operand::id(Member));
  M.addGlobal(Instruction(Op::TypeStruct, InvalidId, Fresh, std::move(Ops)));
}

ParamMap TransformationAddTypeStruct::params() const {
  ParamMap Params;
  putWord(Params, "fresh", Fresh);
  Params["members"] = Members;
  return Params;
}

bool TransformationAddTypePointer::isApplicable(const Module &M,
                                                const ModuleAnalysis &,
                                                const FactManager &) const {
  if (!idIsFreshInModule(M, Fresh))
    return false;
  const Instruction *Def = M.findDef(Pointee);
  if (!Def || !isTypeDecl(Def->Opcode) || Def->Opcode == Op::TypePointer ||
      Def->Opcode == Op::TypeVoid || Def->Opcode == Op::TypeFunction)
    return false;
  return static_cast<uint32_t>(SC) <=
         static_cast<uint32_t>(StorageClass::Output);
}

void TransformationAddTypePointer::apply(Module &M, FactManager &) const {
  M.addGlobal(Instruction(Op::TypePointer, InvalidId, Fresh,
                          {Operand::literal(static_cast<uint32_t>(SC)),
                           Operand::id(Pointee)}));
}

ParamMap TransformationAddTypePointer::params() const {
  ParamMap Params;
  putWord(Params, "fresh", Fresh);
  putWord(Params, "sc", static_cast<uint32_t>(SC));
  putWord(Params, "pointee", Pointee);
  return Params;
}

bool TransformationAddTypeFunction::isApplicable(const Module &M,
                                                 const ModuleAnalysis &,
                                                 const FactManager &) const {
  if (!idIsFreshInModule(M, Fresh))
    return false;
  const Instruction *Return = M.findDef(ReturnType);
  if (!Return || !isTypeDecl(Return->Opcode) ||
      Return->Opcode == Op::TypeFunction)
    return false;
  for (Id Param : ParamTypes) {
    const Instruction *Def = M.findDef(Param);
    if (!Def || !isTypeDecl(Def->Opcode) || Def->Opcode == Op::TypeVoid ||
        Def->Opcode == Op::TypeFunction)
      return false;
  }
  return true;
}

void TransformationAddTypeFunction::apply(Module &M, FactManager &) const {
  std::vector<Operand> Ops = {Operand::id(ReturnType)};
  for (Id Param : ParamTypes)
    Ops.push_back(Operand::id(Param));
  M.addGlobal(Instruction(Op::TypeFunction, InvalidId, Fresh, std::move(Ops)));
}

ParamMap TransformationAddTypeFunction::params() const {
  ParamMap Params;
  putWord(Params, "fresh", Fresh);
  putWord(Params, "return", ReturnType);
  Params["params"] = ParamTypes;
  return Params;
}

//===----------------------------------------------------------------------===//
// AddConstantScalar / AddConstantComposite
//===----------------------------------------------------------------------===//

bool TransformationAddConstantScalar::isApplicable(const Module &M,
                                                   const ModuleAnalysis &,
                                                   const FactManager &) const {
  if (!idIsFreshInModule(M, Fresh))
    return false;
  if (M.isIntTypeId(Type))
    return true;
  if (M.isBoolTypeId(Type))
    return Word <= 1;
  return false;
}

void TransformationAddConstantScalar::apply(Module &M,
                                            FactManager &Facts) const {
  if (M.isBoolTypeId(Type)) {
    M.addGlobal(Instruction(Word ? Op::ConstantTrue : Op::ConstantFalse, Type,
                            Fresh, {}));
  } else {
    M.addGlobal(
        Instruction(Op::Constant, Type, Fresh, {Operand::literal(Word)}));
  }
  if (Irrelevant)
    Facts.addIrrelevantId(Fresh);
}

ParamMap TransformationAddConstantScalar::params() const {
  ParamMap Params;
  putWord(Params, "fresh", Fresh);
  putWord(Params, "type", Type);
  putWord(Params, "word", Word);
  putWord(Params, "irrelevant", Irrelevant ? 1 : 0);
  return Params;
}

bool TransformationAddConstantComposite::isApplicable(
    const Module &M, const ModuleAnalysis &, const FactManager &) const {
  if (!idIsFreshInModule(M, Fresh))
    return false;
  const Instruction *TypeDef = M.findDef(Type);
  if (!TypeDef)
    return false;
  std::vector<Id> MemberTypes;
  if (TypeDef->Opcode == Op::TypeVector) {
    MemberTypes.assign(TypeDef->literalOperand(1), TypeDef->idOperand(0));
  } else if (TypeDef->Opcode == Op::TypeStruct) {
    for (const Operand &Op : TypeDef->Operands)
      MemberTypes.push_back(Op.asId());
  } else {
    return false;
  }
  if (Components.size() != MemberTypes.size())
    return false;
  for (size_t I = 0; I != Components.size(); ++I) {
    const Instruction *Def = M.findDef(Components[I]);
    if (!Def || !isConstantDecl(Def->Opcode) ||
        Def->ResultType != MemberTypes[I])
      return false;
  }
  return true;
}

void TransformationAddConstantComposite::apply(Module &M,
                                               FactManager &) const {
  std::vector<Operand> Ops;
  for (Id Component : Components)
    Ops.push_back(Operand::id(Component));
  M.addGlobal(
      Instruction(Op::ConstantComposite, Type, Fresh, std::move(Ops)));
}

ParamMap TransformationAddConstantComposite::params() const {
  ParamMap Params;
  putWord(Params, "fresh", Fresh);
  putWord(Params, "type", Type);
  Params["components"] = Components;
  return Params;
}

//===----------------------------------------------------------------------===//
// AddGlobalVariable / AddLocalVariable
//===----------------------------------------------------------------------===//

bool TransformationAddGlobalVariable::isApplicable(const Module &M,
                                                   const ModuleAnalysis &,
                                                   const FactManager &) const {
  if (!idIsFreshInModule(M, Fresh))
    return false;
  if (!M.isPointerTypeId(PointerType))
    return false;
  auto [SC, Pointee] = M.pointerInfo(PointerType);
  if (SC != StorageClass::Private)
    return false;
  if (Initializer == InvalidId)
    return true;
  const Instruction *Init = M.findDef(Initializer);
  return Init && isConstantDecl(Init->Opcode) && Init->ResultType == Pointee;
}

void TransformationAddGlobalVariable::apply(Module &M,
                                            FactManager &Facts) const {
  std::vector<Operand> Ops = {
      Operand::literal(static_cast<uint32_t>(StorageClass::Private))};
  if (Initializer != InvalidId)
    Ops.push_back(Operand::id(Initializer));
  M.addGlobal(Instruction(Op::Variable, PointerType, Fresh, std::move(Ops)));
  Facts.addIrrelevantPointee(Fresh);
}

ParamMap TransformationAddGlobalVariable::params() const {
  ParamMap Params;
  putWord(Params, "fresh", Fresh);
  putWord(Params, "ptr_type", PointerType);
  putWord(Params, "init", Initializer);
  return Params;
}

bool TransformationAddLocalVariable::isApplicable(const Module &M,
                                                  const ModuleAnalysis &,
                                                  const FactManager &) const {
  if (!idIsFreshInModule(M, Fresh))
    return false;
  if (!M.findFunction(FunctionId))
    return false;
  if (!M.isPointerTypeId(PointerType))
    return false;
  auto [SC, Pointee] = M.pointerInfo(PointerType);
  if (SC != StorageClass::Function)
    return false;
  if (Initializer == InvalidId)
    return true;
  const Instruction *Init = M.findDef(Initializer);
  return Init && isConstantDecl(Init->Opcode) && Init->ResultType == Pointee;
}

void TransformationAddLocalVariable::apply(Module &M,
                                           FactManager &Facts) const {
  Function *Func = M.findFunction(FunctionId);
  assert(Func && "precondition violated");
  BasicBlock &Entry = Func->entryBlock();
  Entry.Body.insert(
      Entry.Body.begin() + Entry.firstInsertionIndex(),
      ModuleBuilder::makeLocalVariable(PointerType, Fresh, Initializer));
  M.reserveId(Fresh);
  Facts.addIrrelevantPointee(Fresh);
}

ParamMap TransformationAddLocalVariable::params() const {
  ParamMap Params;
  putWord(Params, "fresh", Fresh);
  putWord(Params, "ptr_type", PointerType);
  putWord(Params, "function", FunctionId);
  putWord(Params, "init", Initializer);
  return Params;
}
