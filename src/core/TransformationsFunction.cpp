//===- core/TransformationsFunction.cpp - Function transformations --------===//
//
// Part of the spirv-fuzz reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "core/TransformationUtil.h"
#include "core/Transformations.h"
#include "ir/ModuleBuilder.h"

#include <unordered_map>
#include <unordered_set>

using namespace spvfuzz;

//===----------------------------------------------------------------------===//
// ToggleDontInline
//===----------------------------------------------------------------------===//

bool TransformationToggleDontInline::isApplicable(const Module &M,
                                                  const ModuleAnalysis &,
                                                  const FactManager &) const {
  const Function *Func = M.findFunction(FunctionId);
  if (!Func)
    return false;
  // Only report applicable when the toggle changes something, so that the
  // reducer can always drop a no-op toggle.
  return Func->isDontInline() != Enable;
}

void TransformationToggleDontInline::apply(Module &M, FactManager &) const {
  Function *Func = M.findFunction(FunctionId);
  assert(Func && "precondition violated");
  uint32_t Mask = Func->controlMask();
  Func->setControlMask(Enable ? (Mask | FC_DontInline)
                              : (Mask & ~uint32_t(FC_DontInline)));
}

ParamMap TransformationToggleDontInline::params() const {
  ParamMap Params;
  putWord(Params, "function", FunctionId);
  putWord(Params, "enable", Enable ? 1 : 0);
  return Params;
}

//===----------------------------------------------------------------------===//
// AddFunction
//===----------------------------------------------------------------------===//

std::vector<uint32_t>
TransformationAddFunction::encodeFunction(const Function &Func) {
  std::vector<uint32_t> Words;
  auto PutInst = [&Words](const Instruction &Inst) {
    Words.push_back(static_cast<uint32_t>(Inst.Opcode));
    Words.push_back(Inst.ResultType);
    Words.push_back(Inst.Result);
    Words.push_back(static_cast<uint32_t>(Inst.Operands.size()));
    for (const Operand &Opnd : Inst.Operands) {
      Words.push_back(Opnd.isId() ? 1 : 0);
      Words.push_back(Opnd.Word);
    }
  };
  Words.push_back(Func.Def.ResultType);     // return type
  Words.push_back(Func.Def.idOperand(1));   // function type
  Words.push_back(Func.Def.literalOperand(0)); // control mask
  Words.push_back(Func.Def.Result);         // function id
  Words.push_back(static_cast<uint32_t>(Func.Params.size()));
  for (const Instruction &Param : Func.Params) {
    Words.push_back(Param.ResultType);
    Words.push_back(Param.Result);
  }
  Words.push_back(static_cast<uint32_t>(Func.Blocks.size()));
  for (const BasicBlock &Block : Func.Blocks) {
    Words.push_back(Block.LabelId);
    Words.push_back(static_cast<uint32_t>(Block.Body.size()));
    for (const Instruction &Inst : Block.Body)
      PutInst(Inst);
  }
  return Words;
}

bool TransformationAddFunction::decodeFunction(
    const std::vector<uint32_t> &Words, Function &FuncOut) {
  size_t Cursor = 0;
  auto Take = [&](uint32_t &Out) {
    if (Cursor >= Words.size())
      return false;
    Out = Words[Cursor++];
    return true;
  };
  auto TakeInst = [&](Instruction &Inst) {
    uint32_t OpWord, NumOperands;
    if (!Take(OpWord) || !Take(Inst.ResultType) || !Take(Inst.Result) ||
        !Take(NumOperands))
      return false;
    if (OpWord > static_cast<uint32_t>(Op::FunctionCall))
      return false;
    Inst.Opcode = static_cast<Op>(OpWord);
    Inst.Operands.clear();
    for (uint32_t I = 0; I < NumOperands; ++I) {
      uint32_t Kind, Word;
      if (!Take(Kind) || !Take(Word) || Kind > 1)
        return false;
      Inst.Operands.push_back(Kind ? Operand::id(Word)
                                   : Operand::literal(Word));
    }
    return true;
  };

  uint32_t ReturnType, FunctionType, ControlMask, FunctionId, NumParams;
  if (!Take(ReturnType) || !Take(FunctionType) || !Take(ControlMask) ||
      !Take(FunctionId) || !Take(NumParams))
    return false;
  FuncOut.Def =
      Instruction(Op::Function, ReturnType, FunctionId,
                  {Operand::literal(ControlMask), Operand::id(FunctionType)});
  FuncOut.Params.clear();
  for (uint32_t I = 0; I < NumParams; ++I) {
    uint32_t ParamType, ParamId;
    if (!Take(ParamType) || !Take(ParamId))
      return false;
    FuncOut.Params.push_back(
        Instruction(Op::FunctionParameter, ParamType, ParamId, {}));
  }
  uint32_t NumBlocks;
  if (!Take(NumBlocks) || NumBlocks == 0)
    return false;
  FuncOut.Blocks.clear();
  for (uint32_t B = 0; B < NumBlocks; ++B) {
    uint32_t LabelId, NumInsts;
    if (!Take(LabelId) || !Take(NumInsts))
      return false;
    BasicBlock Block(LabelId);
    for (uint32_t I = 0; I < NumInsts; ++I) {
      Instruction Inst;
      if (!TakeInst(Inst))
        return false;
      Block.Body.push_back(std::move(Inst));
    }
    FuncOut.Blocks.push_back(std::move(Block));
  }
  return Cursor == Words.size();
}

/// Checks the static live-safety conditions (ğ3.2): no Kill, no stores
/// except through the function's own locals or parameters that are
/// irrelevant pointees, and calls only to functions already known to be
/// live-safe.
static bool functionIsStaticallyLiveSafe(const Function &Func,
                                         const FactManager &Facts) {
  std::unordered_set<Id> OwnLocals;
  for (const BasicBlock &Block : Func.Blocks)
    for (const Instruction &Inst : Block.Body)
      if (Inst.Opcode == Op::Variable)
        OwnLocals.insert(Inst.Result);

  for (const BasicBlock &Block : Func.Blocks) {
    for (const Instruction &Inst : Block.Body) {
      switch (Inst.Opcode) {
      case Op::Kill:
        return false;
      case Op::Store:
        if (OwnLocals.count(Inst.idOperand(0)) == 0 &&
            !Facts.pointeeIsIrrelevant(Inst.idOperand(0)))
          return false;
        break;
      case Op::FunctionCall:
        if (!Facts.functionIsLiveSafe(Inst.idOperand(0)))
          return false;
        break;
      default:
        break;
      }
    }
  }
  return true;
}

bool TransformationAddFunction::isApplicable(const Module &M,
                                             const ModuleAnalysis &,
                                             const FactManager &Facts) const {
  Function Func;
  if (!decodeFunction(Encoded, Func))
    return false;

  // Every id the function defines must be fresh and distinct.
  std::vector<Id> Defined = {Func.Def.Result};
  for (const Instruction &Param : Func.Params)
    Defined.push_back(Param.Result);
  for (const BasicBlock &Block : Func.Blocks) {
    Defined.push_back(Block.LabelId);
    for (const Instruction &Inst : Block.Body)
      if (Inst.Result != InvalidId)
        Defined.push_back(Inst.Result);
  }
  if (!idsAreFreshAndDistinct(M, Defined))
    return false;

  if (MakeLiveSafe && !functionIsStaticallyLiveSafe(Func, Facts))
    return false;

  // Full structural/type legality (references to module globals, internal
  // dominance, ...) is delegated to the validator on a clone.
  return applyKeepsModuleValid(*this, M, Facts);
}

void TransformationAddFunction::apply(Module &M, FactManager &Facts) const {
  Function Func;
  [[maybe_unused]] bool Ok = decodeFunction(Encoded, Func);
  assert(Ok && "precondition violated");
  M.reserveId(Func.Def.Result);
  for (const Instruction &Param : Func.Params)
    M.reserveId(Param.Result);
  for (const BasicBlock &Block : Func.Blocks) {
    M.reserveId(Block.LabelId);
    for (const Instruction &Inst : Block.Body)
      if (Inst.Result != InvalidId)
        M.reserveId(Inst.Result);
  }
  if (MakeLiveSafe) {
    Facts.addLiveSafeFunction(Func.Def.Result);
    // A live-safe function's result does not feed anything relevant, so
    // its parameters may take any value.
    for (const Instruction &Param : Func.Params)
      Facts.addIrrelevantId(Param.Result);
  }
  M.Functions.push_back(std::move(Func));
}

ParamMap TransformationAddFunction::params() const {
  ParamMap Params;
  Params["encoded"] = Encoded;
  putWord(Params, "live_safe", MakeLiveSafe ? 1 : 0);
  return Params;
}

//===----------------------------------------------------------------------===//
// AddFunctionCall
//===----------------------------------------------------------------------===//

bool TransformationAddFunctionCall::isApplicable(const Module &M,
                                                 const ModuleAnalysis &Analysis,
                                                 const FactManager &Facts) const {
  if (!idIsFreshInModule(M, Fresh))
    return false;
  LocatedInstruction Loc = locateInstructionConst(M, Where);
  if (!Loc.valid() || !validInsertionPoint(*Loc.Block, Loc.Index))
    return false;

  const Function *CalleeFunc = M.findFunction(Callee);
  if (!CalleeFunc || Callee == M.EntryPointId)
    return false;
  Id CallerId = Loc.Func->id();
  if (Callee == CallerId || functionReachesViaCalls(M, Callee, CallerId))
    return false;

  bool InDeadBlock = Facts.blockIsDead(Loc.Block->LabelId);
  if (!InDeadBlock && !Facts.functionIsLiveSafe(Callee))
    return false;

  if (Args.size() != CalleeFunc->Params.size())
    return false;
  for (size_t I = 0; I != Args.size(); ++I) {
    Id ParamType = CalleeFunc->Params[I].ResultType;
    if (M.typeOfId(Args[I]) != ParamType)
      return false;
    if (!Analysis.idAvailableBefore(Args[I], CallerId, Loc.Block->LabelId,
                                    Loc.Index))
      return false;
    // Live-safe calls from live code require pointer arguments to point at
    // irrelevant data (ğ3.2).
    if (!InDeadBlock && M.isPointerTypeId(ParamType) &&
        !Facts.pointeeIsIrrelevant(Args[I]))
      return false;
  }
  return true;
}

void TransformationAddFunctionCall::apply(Module &M,
                                          FactManager &Facts) const {
  LocatedInstruction Loc = locateInstruction(M, Where);
  assert(Loc.valid() && "precondition violated");
  const Function *CalleeFunc = M.findFunction(Callee);
  std::vector<Operand> Ops = {Operand::id(Callee)};
  for (Id Arg : Args)
    Ops.push_back(Operand::id(Arg));
  Loc.Block->Body.insert(Loc.Block->Body.begin() + Loc.Index,
                         Instruction(Op::FunctionCall,
                                     CalleeFunc->returnTypeId(), Fresh,
                                     std::move(Ops)));
  M.reserveId(Fresh);
  Facts.addIrrelevantId(Fresh);
}

ParamMap TransformationAddFunctionCall::params() const {
  ParamMap Params;
  putWord(Params, "fresh", Fresh);
  putWord(Params, "callee", Callee);
  Params["args"] = Args;
  putDescriptor(Params, "where", Where);
  return Params;
}

//===----------------------------------------------------------------------===//
// InlineFunction
//===----------------------------------------------------------------------===//

bool TransformationInlineFunction::isApplicable(const Module &M,
                                                const ModuleAnalysis &,
                                                const FactManager &Facts) const {
  LocatedInstruction Loc = locateInstructionConst(M, CallWhere);
  if (!Loc.valid() || Loc.instruction().Opcode != Op::FunctionCall)
    return false;
  const Function *Callee = M.findFunction(Loc.instruction().idOperand(0));
  if (!Callee || Callee->id() == Loc.Func->id())
    return false;

  // A non-void callee must return somewhere, or the call's result id would
  // have no definition after inlining.
  if (!M.isVoidTypeId(Callee->returnTypeId())) {
    bool HasReturn = false;
    for (const BasicBlock &Block : Callee->Blocks)
      if (Block.hasTerminator() &&
          Block.terminator().Opcode == Op::ReturnValue)
        HasReturn = true;
    if (!HasReturn)
      return false;
  }

  // The explicit id map (the ğ3.3 independence device) must cover the
  // callee's labels and body result ids, with fresh, distinct images.
  // Superfluous entries are tolerated: when a reducer shrinks the callee
  // (ğ3.4's spirv-reduce step), the map keeps entries for deleted ids.
  std::unordered_map<Id, Id> IdMap;
  for (size_t I = 0; I + 1 < IdMapPairs.size(); I += 2)
    if (!IdMap.emplace(IdMapPairs[I], IdMapPairs[I + 1]).second)
      return false;
  std::unordered_set<Id> Needed;
  for (const BasicBlock &Block : Callee->Blocks) {
    Needed.insert(Block.LabelId);
    for (const Instruction &Inst : Block.Body)
      if (Inst.Result != InvalidId)
        Needed.insert(Inst.Result);
  }
  std::vector<Id> FreshIds = {AfterBlockId};
  for (Id Need : Needed) {
    auto It = IdMap.find(Need);
    if (It == IdMap.end())
      return false;
    FreshIds.push_back(It->second);
  }
  if (!idsAreFreshAndDistinct(M, FreshIds))
    return false;

  // The CFG surgery has subtle layout/phi corner cases; confirm on a clone.
  return applyKeepsModuleValid(*this, M, Facts);
}

void TransformationInlineFunction::apply(Module &M, FactManager &Facts) const {
  LocatedInstruction Loc = locateInstruction(M, CallWhere);
  assert(Loc.valid() && "precondition violated");
  Instruction Call = Loc.instruction();
  Function *Caller = Loc.Func;
  Id CallBlockId = Loc.Block->LabelId;
  size_t CallIndex = Loc.Index;
  const Function CalleeCopy = *M.findFunction(Call.idOperand(0));

  std::unordered_map<Id, Id> Remap;
  for (size_t I = 0; I + 1 < IdMapPairs.size(); I += 2)
    Remap[IdMapPairs[I]] = IdMapPairs[I + 1];
  for (size_t I = 0; I != CalleeCopy.Params.size(); ++I)
    Remap[CalleeCopy.Params[I].Result] = Call.idOperand(I + 1);
  auto MapId = [&Remap](Id TheId) {
    auto It = Remap.find(TheId);
    return It == Remap.end() ? TheId : It->second;
  };

  // Move the call block's tail (including its terminator) into the fresh
  // after-block, and retarget the successors' phis.
  BasicBlock After(AfterBlockId);
  BasicBlock *CallBlock = Caller->findBlock(CallBlockId);
  After.Body.assign(CallBlock->Body.begin() + CallIndex + 1,
                    CallBlock->Body.end());
  CallBlock->Body.erase(CallBlock->Body.begin() + CallIndex,
                        CallBlock->Body.end());
  for (Id Succ : After.successors())
    if (BasicBlock *SuccBlock = Caller->findBlock(Succ))
      renamePhiPred(*SuccBlock, CallBlockId, AfterBlockId);

  // Clone the callee's blocks, remapping ids; hoist its local variables to
  // the caller's entry block; rewrite returns as branches to the
  // after-block.
  std::vector<BasicBlock> Cloned;
  std::vector<Instruction> HoistedVariables;
  std::vector<std::pair<Id, Id>> ReturnValueSites; // (value, return block)
  for (const BasicBlock &Block : CalleeCopy.Blocks) {
    BasicBlock NewBlock(MapId(Block.LabelId));
    for (const Instruction &Inst : Block.Body) {
      Instruction Copy = Inst;
      if (Copy.Result != InvalidId)
        Copy.Result = MapId(Copy.Result);
      for (Operand &Opnd : Copy.Operands)
        if (Opnd.isId())
          Opnd = Operand::id(MapId(Opnd.Word));
      if (Copy.Opcode == Op::Variable) {
        HoistedVariables.push_back(std::move(Copy));
        continue;
      }
      if (Copy.Opcode == Op::Return) {
        NewBlock.Body.push_back(ModuleBuilder::makeBranch(AfterBlockId));
        continue;
      }
      if (Copy.Opcode == Op::ReturnValue) {
        ReturnValueSites.push_back({Copy.idOperand(0), NewBlock.LabelId});
        NewBlock.Body.push_back(ModuleBuilder::makeBranch(AfterBlockId));
        continue;
      }
      NewBlock.Body.push_back(std::move(Copy));
    }
    Cloned.push_back(std::move(NewBlock));
  }

  // The call is replaced by a branch into the inlined entry block.
  CallBlock->Body.push_back(
      ModuleBuilder::makeBranch(MapId(CalleeCopy.entryBlock().LabelId)));

  // A non-void call's result id is redefined as a phi over the return
  // values.
  if (!M.isVoidTypeId(CalleeCopy.returnTypeId())) {
    std::vector<Operand> PhiOps;
    for (auto [ValueId, BlockId] : ReturnValueSites) {
      PhiOps.push_back(Operand::id(ValueId));
      PhiOps.push_back(Operand::id(BlockId));
    }
    After.Body.insert(After.Body.begin(),
                      Instruction(Op::Phi, CalleeCopy.returnTypeId(),
                                  Call.Result, std::move(PhiOps)));
  }

  size_t InsertAt = *Caller->blockIndex(CallBlockId) + 1;
  Cloned.push_back(std::move(After));
  Caller->Blocks.insert(Caller->Blocks.begin() + InsertAt,
                        std::make_move_iterator(Cloned.begin()),
                        std::make_move_iterator(Cloned.end()));

  BasicBlock &Entry = Caller->entryBlock();
  Entry.Body.insert(Entry.Body.begin() + Entry.firstInsertionIndex(),
                    std::make_move_iterator(HoistedVariables.begin()),
                    std::make_move_iterator(HoistedVariables.end()));

  for (size_t I = 0; I + 1 < IdMapPairs.size(); I += 2)
    M.reserveId(IdMapPairs[I + 1]);
  M.reserveId(AfterBlockId);

  // Everything reachable only via a dead call block is itself dead.
  if (Facts.blockIsDead(CallBlockId)) {
    for (size_t I = 0; I + 1 < IdMapPairs.size(); I += 2)
      Facts.addDeadBlock(IdMapPairs[I + 1]); // labels among them; harmless
    Facts.addDeadBlock(AfterBlockId);
  }
}

ParamMap TransformationInlineFunction::params() const {
  ParamMap Params;
  putDescriptor(Params, "call", CallWhere);
  putWord(Params, "after_block", AfterBlockId);
  Params["id_map"] = IdMapPairs;
  return Params;
}

//===----------------------------------------------------------------------===//
// AddParameter
//===----------------------------------------------------------------------===//

bool TransformationAddParameter::isApplicable(const Module &M,
                                              const ModuleAnalysis &,
                                              const FactManager &) const {
  if (!idIsFreshInModule(M, FreshParamId))
    return false;
  const Function *Func = M.findFunction(FunctionId);
  if (!Func || FunctionId == M.EntryPointId)
    return false;

  // The new function type must already exist: the old signature with TypeId
  // appended.
  const Instruction *NewType = M.findDef(NewFunctionTypeId);
  if (!NewType || NewType->Opcode != Op::TypeFunction)
    return false;
  if (NewType->Operands.size() != Func->Params.size() + 2)
    return false;
  if (NewType->idOperand(0) != Func->returnTypeId())
    return false;
  for (size_t I = 0; I != Func->Params.size(); ++I)
    if (NewType->idOperand(I + 1) != Func->Params[I].ResultType)
      return false;
  if (NewType->idOperand(Func->Params.size() + 1) != TypeId)
    return false;

  // The value passed at every call site must be a constant of the new type
  // (constants are available everywhere).
  const Instruction *Arg = M.findDef(ArgConstId);
  return Arg && isConstantDecl(Arg->Opcode) && Arg->ResultType == TypeId;
}

void TransformationAddParameter::apply(Module &M, FactManager &Facts) const {
  Function *Func = M.findFunction(FunctionId);
  assert(Func && "precondition violated");
  Func->Params.push_back(
      Instruction(Op::FunctionParameter, TypeId, FreshParamId, {}));
  Func->Def.Operands[1] = Operand::id(NewFunctionTypeId);
  M.reserveId(FreshParamId);

  for (Function &Caller : M.Functions)
    for (BasicBlock &Block : Caller.Blocks)
      for (Instruction &Inst : Block.Body)
        if (Inst.Opcode == Op::FunctionCall &&
            Inst.idOperand(0) == FunctionId)
          Inst.Operands.push_back(Operand::id(ArgConstId));

  Facts.addIrrelevantId(FreshParamId);
}

ParamMap TransformationAddParameter::params() const {
  ParamMap Params;
  putWord(Params, "function", FunctionId);
  putWord(Params, "fresh_param", FreshParamId);
  putWord(Params, "type", TypeId);
  putWord(Params, "new_function_type", NewFunctionTypeId);
  putWord(Params, "arg_const", ArgConstId);
  return Params;
}
