//===- core/FunctionShrinker.h - spirv-reduce analogue ----------*- C++ -*-===//
//
// Part of the spirv-fuzz reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The ğ3.4 post-pass: AddFunction is the one transformation that resists
/// being split into smaller ones, so after delta debugging the paper
/// applies spirv-reduce to the functions added by any surviving
/// AddFunction transformations. Our analogue edits the *encoded* function
/// payload directly: it greedily deletes instructions (and rewires
/// straight-line blocks) as long as the interestingness test keeps
/// passing. Precondition checking on replay guarantees any malformed
/// candidate is simply skipped, never applied.
///
//===----------------------------------------------------------------------===//

#ifndef CORE_FUNCTIONSHRINKER_H
#define CORE_FUNCTIONSHRINKER_H

#include "core/Reducer.h"

namespace spvfuzz {

/// Shrinks the payloads of AddFunction transformations inside
/// \p Minimized (typically a sequence-reduction stage's output). Returns the
/// improved result; \p ChecksOut accumulates interestingness invocations.
ReduceResult shrinkAddFunctions(const Module &Original,
                                const ShaderInput &Input,
                                const TransformationSequence &Minimized,
                                const InterestingnessTest &Test);

} // namespace spvfuzz

#endif // CORE_FUNCTIONSHRINKER_H
