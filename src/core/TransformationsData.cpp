//===- core/TransformationsData.cpp - Data transformations ----------------===//
//
// Part of the spirv-fuzz reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "core/TransformationUtil.h"
#include "core/Transformations.h"
#include "exec/Interpreter.h"
#include "ir/ModuleBuilder.h"

using namespace spvfuzz;

/// Shared precondition plumbing: resolves \p Where and checks that an
/// instruction may be inserted immediately before it.
static bool resolveInsertionPoint(const Module &M,
                                  const InstructionDescriptor &Where,
                                  LocatedInstruction &LocOut) {
  LocOut = locateInstructionConst(M, Where);
  return LocOut.valid() && validInsertionPoint(*LocOut.Block, LocOut.Index);
}

//===----------------------------------------------------------------------===//
// AddStore
//===----------------------------------------------------------------------===//

bool TransformationAddStore::isApplicable(const Module &M,
                                          const ModuleAnalysis &Analysis,
                                          const FactManager &Facts) const {
  LocatedInstruction Loc;
  if (!resolveInsertionPoint(M, Where, Loc))
    return false;
  Id FuncId = Loc.Func->id();
  Id BlockId = Loc.Block->LabelId;
  if (!Analysis.idAvailableBefore(Pointer, FuncId, BlockId, Loc.Index) ||
      !Analysis.idAvailableBefore(ValueId, FuncId, BlockId, Loc.Index))
    return false;
  Id PtrType = M.typeOfId(Pointer);
  if (!M.isPointerTypeId(PtrType))
    return false;
  auto [SC, Pointee] = M.pointerInfo(PtrType);
  if (SC == StorageClass::Uniform)
    return false;
  if (M.typeOfId(ValueId) != Pointee)
    return false;
  // The paper's single-type design: legal in a dead block, or through a
  // pointer whose pointee is irrelevant.
  return Facts.blockIsDead(BlockId) || Facts.pointeeIsIrrelevant(Pointer);
}

void TransformationAddStore::apply(Module &M, FactManager &) const {
  LocatedInstruction Loc = locateInstruction(M, Where);
  assert(Loc.valid() && "precondition violated");
  Loc.Block->Body.insert(Loc.Block->Body.begin() + Loc.Index,
                         ModuleBuilder::makeStore(Pointer, ValueId));
}

ParamMap TransformationAddStore::params() const {
  ParamMap Params;
  putWord(Params, "pointer", Pointer);
  putWord(Params, "value", ValueId);
  putDescriptor(Params, "where", Where);
  return Params;
}

//===----------------------------------------------------------------------===//
// AddLoad
//===----------------------------------------------------------------------===//

bool TransformationAddLoad::isApplicable(const Module &M,
                                         const ModuleAnalysis &Analysis,
                                         const FactManager &) const {
  if (!idIsFreshInModule(M, Fresh))
    return false;
  LocatedInstruction Loc;
  if (!resolveInsertionPoint(M, Where, Loc))
    return false;
  if (!Analysis.idAvailableBefore(Pointer, Loc.Func->id(), Loc.Block->LabelId,
                                  Loc.Index))
    return false;
  Id PtrType = M.typeOfId(Pointer);
  if (!M.isPointerTypeId(PtrType))
    return false;
  return M.pointerInfo(PtrType).first != StorageClass::Output;
}

void TransformationAddLoad::apply(Module &M, FactManager &Facts) const {
  LocatedInstruction Loc = locateInstruction(M, Where);
  assert(Loc.valid() && "precondition violated");
  Id Pointee = M.pointerInfo(M.typeOfId(Pointer)).second;
  Loc.Block->Body.insert(Loc.Block->Body.begin() + Loc.Index,
                         ModuleBuilder::makeLoad(Pointee, Fresh, Pointer));
  M.reserveId(Fresh);
  if (Facts.pointeeIsIrrelevant(Pointer))
    Facts.addIrrelevantId(Fresh);
}

ParamMap TransformationAddLoad::params() const {
  ParamMap Params;
  putWord(Params, "fresh", Fresh);
  putWord(Params, "pointer", Pointer);
  putDescriptor(Params, "where", Where);
  return Params;
}

//===----------------------------------------------------------------------===//
// AddSynonymViaCopyObject
//===----------------------------------------------------------------------===//

bool TransformationAddSynonymViaCopyObject::isApplicable(
    const Module &M, const ModuleAnalysis &Analysis,
    const FactManager &) const {
  if (!idIsFreshInModule(M, Fresh))
    return false;
  LocatedInstruction Loc;
  if (!resolveInsertionPoint(M, Where, Loc))
    return false;
  if (!Analysis.idAvailableBefore(Source, Loc.Func->id(), Loc.Block->LabelId,
                                  Loc.Index))
    return false;
  return M.typeOfId(Source) != InvalidId;
}

void TransformationAddSynonymViaCopyObject::apply(Module &M,
                                                  FactManager &Facts) const {
  LocatedInstruction Loc = locateInstruction(M, Where);
  assert(Loc.valid() && "precondition violated");
  Id Type = M.typeOfId(Source);
  Loc.Block->Body.insert(
      Loc.Block->Body.begin() + Loc.Index,
      ModuleBuilder::makeUnaryOp(Op::CopyObject, Type, Fresh, Source));
  M.reserveId(Fresh);
  if (Facts.idIsIrrelevant(Source)) {
    // A copy of an irrelevant value is irrelevant; no synonym fact, since
    // synonym replacement must not launder irrelevant values into relevant
    // positions.
    Facts.addIrrelevantId(Fresh);
  } else if (Facts.pointeeIsIrrelevant(Source)) {
    Facts.addIrrelevantPointee(Fresh);
    Facts.addSynonym(DataDescriptor(Fresh), DataDescriptor(Source));
  } else {
    Facts.addSynonym(DataDescriptor(Fresh), DataDescriptor(Source));
  }
}

ParamMap TransformationAddSynonymViaCopyObject::params() const {
  ParamMap Params;
  putWord(Params, "fresh", Fresh);
  putWord(Params, "source", Source);
  putDescriptor(Params, "where", Where);
  return Params;
}

//===----------------------------------------------------------------------===//
// AddArithmeticSynonym
//===----------------------------------------------------------------------===//

bool TransformationAddArithmeticSynonym::isApplicable(
    const Module &M, const ModuleAnalysis &Analysis,
    const FactManager &Facts) const {
  if (!idIsFreshInModule(M, Fresh))
    return false;
  LocatedInstruction Loc;
  if (!resolveInsertionPoint(M, Where, Loc))
    return false;
  if (!Analysis.idAvailableBefore(Source, Loc.Func->id(), Loc.Block->LabelId,
                                  Loc.Index))
    return false;
  if (Facts.idIsIrrelevant(Source))
    return false;

  const Instruction *Const = M.findDef(ConstId);
  if (!Const || !isConstantDecl(Const->Opcode))
    return false;
  Id SourceType = M.typeOfId(Source);
  switch (Which) {
  case AddZero:
  case SubZero:
  case ZeroPlus:
    return M.isIntTypeId(SourceType) && Const->Opcode == Op::Constant &&
           Const->literalOperand(0) == 0;
  case MulOne:
    return M.isIntTypeId(SourceType) && Const->Opcode == Op::Constant &&
           Const->literalOperand(0) == 1;
  case AndTrue:
    return M.isBoolTypeId(SourceType) && Const->Opcode == Op::ConstantTrue;
  case OrFalse:
    return M.isBoolTypeId(SourceType) && Const->Opcode == Op::ConstantFalse;
  default:
    return false;
  }
}

void TransformationAddArithmeticSynonym::apply(Module &M,
                                               FactManager &Facts) const {
  LocatedInstruction Loc = locateInstruction(M, Where);
  assert(Loc.valid() && "precondition violated");
  Id Type = M.typeOfId(Source);
  Instruction Inst;
  switch (Which) {
  case AddZero:
    Inst = ModuleBuilder::makeBinOp(Op::IAdd, Type, Fresh, Source, ConstId);
    break;
  case SubZero:
    Inst = ModuleBuilder::makeBinOp(Op::ISub, Type, Fresh, Source, ConstId);
    break;
  case MulOne:
    Inst = ModuleBuilder::makeBinOp(Op::IMul, Type, Fresh, Source, ConstId);
    break;
  case ZeroPlus:
    Inst = ModuleBuilder::makeBinOp(Op::IAdd, Type, Fresh, ConstId, Source);
    break;
  case AndTrue:
    Inst =
        ModuleBuilder::makeBinOp(Op::LogicalAnd, Type, Fresh, Source, ConstId);
    break;
  case OrFalse:
    Inst =
        ModuleBuilder::makeBinOp(Op::LogicalOr, Type, Fresh, Source, ConstId);
    break;
  default:
    assert(false && "precondition violated");
  }
  Loc.Block->Body.insert(Loc.Block->Body.begin() + Loc.Index, std::move(Inst));
  M.reserveId(Fresh);
  Facts.addSynonym(DataDescriptor(Fresh), DataDescriptor(Source));
}

ParamMap TransformationAddArithmeticSynonym::params() const {
  ParamMap Params;
  putWord(Params, "fresh", Fresh);
  putWord(Params, "source", Source);
  putWord(Params, "which", Which);
  putWord(Params, "const", ConstId);
  putDescriptor(Params, "where", Where);
  return Params;
}

//===----------------------------------------------------------------------===//
// ReplaceIdWithSynonym / ReplaceIrrelevantId
//===----------------------------------------------------------------------===//

bool TransformationReplaceIdWithSynonym::isApplicable(
    const Module &M, const ModuleAnalysis &Analysis,
    const FactManager &Facts) const {
  LocatedInstruction Loc = locateInstructionConst(M, Where);
  if (!Loc.valid())
    return false;
  const Instruction &Inst = Loc.instruction();
  if (!operandIsValueUse(Inst, OperandIndex))
    return false;
  Id Current = Inst.idOperand(OperandIndex);
  if (Current == SynonymId)
    return false;
  if (!Facts.areSynonymous(DataDescriptor(Current), DataDescriptor(SynonymId)))
    return false;
  if (M.typeOfId(Current) != M.typeOfId(SynonymId))
    return false;
  return Analysis.idAvailableBefore(SynonymId, Loc.Func->id(),
                                    Loc.Block->LabelId, Loc.Index);
}

void TransformationReplaceIdWithSynonym::apply(Module &M,
                                               FactManager &) const {
  LocatedInstruction Loc = locateInstruction(M, Where);
  assert(Loc.valid() && "precondition violated");
  Loc.instruction().Operands[OperandIndex] = Operand::id(SynonymId);
}

ParamMap TransformationReplaceIdWithSynonym::params() const {
  ParamMap Params;
  putDescriptor(Params, "where", Where);
  putWord(Params, "operand", OperandIndex);
  putWord(Params, "synonym", SynonymId);
  return Params;
}

bool TransformationReplaceIrrelevantId::isApplicable(
    const Module &M, const ModuleAnalysis &Analysis,
    const FactManager &Facts) const {
  LocatedInstruction Loc = locateInstructionConst(M, Where);
  if (!Loc.valid())
    return false;
  const Instruction &Inst = Loc.instruction();
  if (!operandIsValueUse(Inst, OperandIndex))
    return false;
  Id Current = Inst.idOperand(OperandIndex);
  if (Current == ReplacementId || !Facts.idIsIrrelevant(Current))
    return false;
  if (M.typeOfId(Current) != M.typeOfId(ReplacementId))
    return false;
  return Analysis.idAvailableBefore(ReplacementId, Loc.Func->id(),
                                    Loc.Block->LabelId, Loc.Index);
}

void TransformationReplaceIrrelevantId::apply(Module &M,
                                              FactManager &) const {
  LocatedInstruction Loc = locateInstruction(M, Where);
  assert(Loc.valid() && "precondition violated");
  Loc.instruction().Operands[OperandIndex] = Operand::id(ReplacementId);
}

ParamMap TransformationReplaceIrrelevantId::params() const {
  ParamMap Params;
  putDescriptor(Params, "where", Where);
  putWord(Params, "operand", OperandIndex);
  putWord(Params, "replacement", ReplacementId);
  return Params;
}

//===----------------------------------------------------------------------===//
// ReplaceConstantWithUniform
//===----------------------------------------------------------------------===//

bool TransformationReplaceConstantWithUniform::isApplicable(
    const Module &M, const ModuleAnalysis &, const FactManager &Facts) const {
  if (!idIsFreshInModule(M, FreshLoadId))
    return false;
  LocatedInstruction Loc = locateInstructionConst(M, Where);
  if (!Loc.valid())
    return false;
  const Instruction &Inst = Loc.instruction();
  if (!operandIsValueUse(Inst, OperandIndex))
    return false;
  if (!validInsertionPoint(*Loc.Block, Loc.Index))
    return false;

  Id ConstId = Inst.idOperand(OperandIndex);
  const Instruction *Const = M.findDef(ConstId);
  if (!Const || !isConstantDecl(Const->Opcode) ||
      Const->Opcode == Op::ConstantComposite)
    return false;

  const Instruction *Uniform = M.findDef(UniformVar);
  if (!Uniform || Uniform->Opcode != Op::Variable)
    return false;
  if (static_cast<StorageClass>(Uniform->literalOperand(0)) !=
      StorageClass::Uniform)
    return false;
  Id Pointee = M.pointerInfo(Uniform->ResultType).second;
  if (Pointee != Const->ResultType)
    return false;

  // The fuzzer knows the runtime input: the uniform's value must equal the
  // constant being obfuscated.
  const ShaderInput &Input = Facts.knownInput();
  auto It = Input.Bindings.find(Uniform->literalOperand(1));
  if (It == Input.Bindings.end())
    return false;
  return It->second == evalConstant(M, ConstId);
}

void TransformationReplaceConstantWithUniform::apply(Module &M,
                                                     FactManager &) const {
  LocatedInstruction Loc = locateInstruction(M, Where);
  assert(Loc.valid() && "precondition violated");
  Id Pointee = M.pointerInfo(M.typeOfId(UniformVar)).second;
  Loc.Block->Body.insert(
      Loc.Block->Body.begin() + Loc.Index,
      ModuleBuilder::makeLoad(Pointee, FreshLoadId, UniformVar));
  // The located instruction moved one slot to the right.
  Loc.Block->Body[Loc.Index + 1].Operands[OperandIndex] =
      Operand::id(FreshLoadId);
  M.reserveId(FreshLoadId);
}

ParamMap TransformationReplaceConstantWithUniform::params() const {
  ParamMap Params;
  putDescriptor(Params, "where", Where);
  putWord(Params, "operand", OperandIndex);
  putWord(Params, "uniform", UniformVar);
  putWord(Params, "fresh_load", FreshLoadId);
  return Params;
}

//===----------------------------------------------------------------------===//
// SwapCommutableOperands
//===----------------------------------------------------------------------===//

bool TransformationSwapCommutableOperands::isApplicable(
    const Module &M, const ModuleAnalysis &, const FactManager &) const {
  LocatedInstruction Loc = locateInstructionConst(M, Where);
  return Loc.valid() && isCommutativeBinOp(Loc.instruction().Opcode) &&
         Loc.instruction().Operands.size() == 2;
}

void TransformationSwapCommutableOperands::apply(Module &M,
                                                 FactManager &) const {
  LocatedInstruction Loc = locateInstruction(M, Where);
  assert(Loc.valid() && "precondition violated");
  std::swap(Loc.instruction().Operands[0], Loc.instruction().Operands[1]);
}

ParamMap TransformationSwapCommutableOperands::params() const {
  ParamMap Params;
  putDescriptor(Params, "where", Where);
  return Params;
}

//===----------------------------------------------------------------------===//
// CompositeConstruct / CompositeExtract
//===----------------------------------------------------------------------===//

/// Member types of a vector/struct type, or empty if not composite.
static std::vector<Id> memberTypesOf(const Module &M, Id TypeId) {
  const Instruction *Def = M.findDef(TypeId);
  std::vector<Id> Members;
  if (!Def)
    return Members;
  if (Def->Opcode == Op::TypeVector)
    Members.assign(Def->literalOperand(1), Def->idOperand(0));
  else if (Def->Opcode == Op::TypeStruct)
    for (const Operand &Opnd : Def->Operands)
      Members.push_back(Opnd.asId());
  return Members;
}

bool TransformationCompositeConstruct::isApplicable(
    const Module &M, const ModuleAnalysis &Analysis,
    const FactManager &Facts) const {
  if (!idIsFreshInModule(M, Fresh))
    return false;
  LocatedInstruction Loc;
  if (!resolveInsertionPoint(M, Where, Loc))
    return false;
  std::vector<Id> Members = memberTypesOf(M, TypeId);
  if (Members.empty() || Members.size() != Components.size())
    return false;
  for (size_t I = 0; I != Components.size(); ++I) {
    if (M.typeOfId(Components[I]) != Members[I])
      return false;
    if (Facts.idIsIrrelevant(Components[I]))
      return false;
    if (!Analysis.idAvailableBefore(Components[I], Loc.Func->id(),
                                    Loc.Block->LabelId, Loc.Index))
      return false;
  }
  return true;
}

void TransformationCompositeConstruct::apply(Module &M,
                                             FactManager &Facts) const {
  LocatedInstruction Loc = locateInstruction(M, Where);
  assert(Loc.valid() && "precondition violated");
  std::vector<Operand> Ops;
  for (Id Component : Components)
    Ops.push_back(Operand::id(Component));
  Loc.Block->Body.insert(
      Loc.Block->Body.begin() + Loc.Index,
      Instruction(Op::CompositeConstruct, TypeId, Fresh, std::move(Ops)));
  M.reserveId(Fresh);
  for (uint32_t I = 0; I != Components.size(); ++I)
    Facts.addSynonym(DataDescriptor(Fresh, {I}),
                     DataDescriptor(Components[I]));
}

ParamMap TransformationCompositeConstruct::params() const {
  ParamMap Params;
  putWord(Params, "fresh", Fresh);
  putWord(Params, "type", TypeId);
  Params["components"] = Components;
  putDescriptor(Params, "where", Where);
  return Params;
}

bool TransformationCompositeExtract::isApplicable(const Module &M,
                                                  const ModuleAnalysis &Analysis,
                                                  const FactManager &Facts) const {
  if (!idIsFreshInModule(M, Fresh))
    return false;
  LocatedInstruction Loc;
  if (!resolveInsertionPoint(M, Where, Loc))
    return false;
  if (Facts.idIsIrrelevant(Composite))
    return false;
  if (!Analysis.idAvailableBefore(Composite, Loc.Func->id(),
                                  Loc.Block->LabelId, Loc.Index))
    return false;
  std::vector<Id> Members = memberTypesOf(M, M.typeOfId(Composite));
  return Index < Members.size();
}

void TransformationCompositeExtract::apply(Module &M,
                                           FactManager &Facts) const {
  LocatedInstruction Loc = locateInstruction(M, Where);
  assert(Loc.valid() && "precondition violated");
  std::vector<Id> Members = memberTypesOf(M, M.typeOfId(Composite));
  Loc.Block->Body.insert(
      Loc.Block->Body.begin() + Loc.Index,
      Instruction(Op::CompositeExtract, Members[Index], Fresh,
                  {Operand::id(Composite), Operand::literal(Index)}));
  M.reserveId(Fresh);
  Facts.addSynonym(DataDescriptor(Fresh), DataDescriptor(Composite, {Index}));
}

ParamMap TransformationCompositeExtract::params() const {
  ParamMap Params;
  putWord(Params, "fresh", Fresh);
  putWord(Params, "composite", Composite);
  putWord(Params, "index", Index);
  putDescriptor(Params, "where", Where);
  return Params;
}

//===----------------------------------------------------------------------===//
// AddSynonymViaPhi
//===----------------------------------------------------------------------===//

bool TransformationAddSynonymViaPhi::isApplicable(
    const Module &M, const ModuleAnalysis &Analysis,
    const FactManager &Facts) const {
  if (!idIsFreshInModule(M, Fresh))
    return false;
  auto [Func, Block] = M.findBlockDef(BlockId);
  if (!Block)
    return false;
  const Cfg &Graph = Analysis.cfg(Func->id());
  if (!Graph.isReachable(BlockId))
    return false;
  const std::vector<Id> &Preds = Graph.predecessors(BlockId);
  if (Preds.empty())
    return false;
  if (M.typeOfId(Source) == InvalidId || Facts.idIsIrrelevant(Source))
    return false;
  // The source must reach the end of every predecessor (validator phi
  // rule), and every predecessor must be reachable so that rule is
  // meaningful.
  for (Id Pred : Preds) {
    if (!Graph.isReachable(Pred))
      return false;
    if (!Analysis.idAvailableAtEnd(Source, Func->id(), Pred))
      return false;
  }
  return true;
}

void TransformationAddSynonymViaPhi::apply(Module &M,
                                           FactManager &Facts) const {
  auto [Func, Block] = M.findBlockDef(BlockId);
  assert(Block && "precondition violated");
  ModuleAnalysis Analysis(M);
  const std::vector<Id> &Preds = Analysis.cfg(Func->id()).predecessors(BlockId);
  std::vector<Operand> PhiOps;
  std::unordered_set<Id> Seen;
  for (Id Pred : Preds) {
    if (!Seen.insert(Pred).second)
      continue; // duplicate edges contribute one phi pair
    PhiOps.push_back(Operand::id(Source));
    PhiOps.push_back(Operand::id(Pred));
  }
  Block->Body.insert(Block->Body.begin(),
                     Instruction(Op::Phi, M.typeOfId(Source), Fresh,
                                 std::move(PhiOps)));
  M.reserveId(Fresh);
  if (Facts.pointeeIsIrrelevant(Source)) {
    Facts.addIrrelevantPointee(Fresh);
  }
  Facts.addSynonym(DataDescriptor(Fresh), DataDescriptor(Source));
}

ParamMap TransformationAddSynonymViaPhi::params() const {
  ParamMap Params;
  putWord(Params, "fresh", Fresh);
  putWord(Params, "source", Source);
  putWord(Params, "block", BlockId);
  return Params;
}
