//===- core/TransformationRegistry.cpp - Deserialization factory -----------===//
//
// Part of the spirv-fuzz reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "core/Transformations.h"

#include "support/Telemetry.h"

using namespace spvfuzz;

namespace {

TransformationPtr makeTransformationImpl(TransformationKind Kind,
                                         const ParamMap &Params,
                                         std::string &ErrorOut) {
  ErrorOut.clear();
  auto Fail = [&ErrorOut, Kind]() -> TransformationPtr {
    ErrorOut = std::string("bad parameters for ") +
               transformationKindName(Kind);
    return nullptr;
  };

  uint32_t W0 = 0, W1 = 0, W2 = 0, W3 = 0, W4 = 0;
  std::vector<uint32_t> List;
  InstructionDescriptor Where;

  switch (Kind) {
  case TransformationKind::AddTypeInt:
    if (!getWord(Params, "fresh", W0))
      return Fail();
    return std::make_shared<TransformationAddTypeInt>(W0);
  case TransformationKind::AddTypeBool:
    if (!getWord(Params, "fresh", W0))
      return Fail();
    return std::make_shared<TransformationAddTypeBool>(W0);
  case TransformationKind::AddTypeVector:
    if (!getWord(Params, "fresh", W0) || !getWord(Params, "component", W1) ||
        !getWord(Params, "count", W2))
      return Fail();
    return std::make_shared<TransformationAddTypeVector>(W0, W1, W2);
  case TransformationKind::AddTypeStruct:
    if (!getWord(Params, "fresh", W0) || !getWords(Params, "members", List))
      return Fail();
    return std::make_shared<TransformationAddTypeStruct>(W0, List);
  case TransformationKind::AddTypePointer:
    if (!getWord(Params, "fresh", W0) || !getWord(Params, "sc", W1) ||
        !getWord(Params, "pointee", W2))
      return Fail();
    return std::make_shared<TransformationAddTypePointer>(
        W0, static_cast<StorageClass>(W1), W2);
  case TransformationKind::AddTypeFunction:
    if (!getWord(Params, "fresh", W0) || !getWord(Params, "return", W1) ||
        !getWords(Params, "params", List))
      return Fail();
    return std::make_shared<TransformationAddTypeFunction>(W0, W1, List);
  case TransformationKind::AddConstantScalar:
    if (!getWord(Params, "fresh", W0) || !getWord(Params, "type", W1) ||
        !getWord(Params, "word", W2) || !getWord(Params, "irrelevant", W3))
      return Fail();
    return std::make_shared<TransformationAddConstantScalar>(W0, W1, W2,
                                                             W3 != 0);
  case TransformationKind::AddConstantComposite:
    if (!getWord(Params, "fresh", W0) || !getWord(Params, "type", W1) ||
        !getWords(Params, "components", List))
      return Fail();
    return std::make_shared<TransformationAddConstantComposite>(W0, W1, List);
  case TransformationKind::AddGlobalVariable:
    if (!getWord(Params, "fresh", W0) || !getWord(Params, "ptr_type", W1) ||
        !getWord(Params, "init", W2))
      return Fail();
    return std::make_shared<TransformationAddGlobalVariable>(W0, W1, W2);
  case TransformationKind::AddLocalVariable:
    if (!getWord(Params, "fresh", W0) || !getWord(Params, "ptr_type", W1) ||
        !getWord(Params, "function", W2) || !getWord(Params, "init", W3))
      return Fail();
    return std::make_shared<TransformationAddLocalVariable>(W0, W1, W2, W3);
  case TransformationKind::SplitBlock:
    if (!getDescriptor(Params, "where", Where) ||
        !getWord(Params, "fresh_block", W0))
      return Fail();
    return std::make_shared<TransformationSplitBlock>(Where, W0);
  case TransformationKind::AddDeadBlock:
    if (!getWord(Params, "fresh_block", W0) ||
        !getWord(Params, "existing_block", W1) ||
        !getWord(Params, "true_const", W2))
      return Fail();
    return std::make_shared<TransformationAddDeadBlock>(W0, W1, W2);
  case TransformationKind::ReplaceBranchWithKill:
    if (!getWord(Params, "block", W0))
      return Fail();
    return std::make_shared<TransformationReplaceBranchWithKill>(W0);
  case TransformationKind::ReplaceBranchWithConditional:
    if (!getWord(Params, "block", W0) || !getWord(Params, "cond", W1) ||
        !getWord(Params, "swap", W2))
      return Fail();
    return std::make_shared<TransformationReplaceBranchWithConditional>(
        W0, W1, W2 != 0);
  case TransformationKind::MoveBlockDown:
    if (!getWord(Params, "block", W0))
      return Fail();
    return std::make_shared<TransformationMoveBlockDown>(W0);
  case TransformationKind::InvertBranchCondition:
    if (!getWord(Params, "block", W0) || !getWord(Params, "fresh_not", W1))
      return Fail();
    return std::make_shared<TransformationInvertBranchCondition>(W0, W1);
  case TransformationKind::PermutePhiOperands:
    if (!getDescriptor(Params, "where", Where) ||
        !getWords(Params, "perm", List))
      return Fail();
    return std::make_shared<TransformationPermutePhiOperands>(Where, List);
  case TransformationKind::PropagateInstructionUp:
    if (!getWord(Params, "block", W0) ||
        !getWords(Params, "pred_fresh", List))
      return Fail();
    return std::make_shared<TransformationPropagateInstructionUp>(W0, List);
  case TransformationKind::AddStore:
    if (!getWord(Params, "pointer", W0) || !getWord(Params, "value", W1) ||
        !getDescriptor(Params, "where", Where))
      return Fail();
    return std::make_shared<TransformationAddStore>(W0, W1, Where);
  case TransformationKind::AddLoad:
    if (!getWord(Params, "fresh", W0) || !getWord(Params, "pointer", W1) ||
        !getDescriptor(Params, "where", Where))
      return Fail();
    return std::make_shared<TransformationAddLoad>(W0, W1, Where);
  case TransformationKind::AddSynonymViaCopyObject:
    if (!getWord(Params, "fresh", W0) || !getWord(Params, "source", W1) ||
        !getDescriptor(Params, "where", Where))
      return Fail();
    return std::make_shared<TransformationAddSynonymViaCopyObject>(W0, W1,
                                                                   Where);
  case TransformationKind::AddArithmeticSynonym:
    if (!getWord(Params, "fresh", W0) || !getWord(Params, "source", W1) ||
        !getWord(Params, "which", W2) || !getWord(Params, "const", W3) ||
        !getDescriptor(Params, "where", Where))
      return Fail();
    return std::make_shared<TransformationAddArithmeticSynonym>(W0, W1, W2, W3,
                                                                Where);
  case TransformationKind::ReplaceIdWithSynonym:
    if (!getDescriptor(Params, "where", Where) ||
        !getWord(Params, "operand", W0) || !getWord(Params, "synonym", W1))
      return Fail();
    return std::make_shared<TransformationReplaceIdWithSynonym>(Where, W0, W1);
  case TransformationKind::ReplaceIrrelevantId:
    if (!getDescriptor(Params, "where", Where) ||
        !getWord(Params, "operand", W0) ||
        !getWord(Params, "replacement", W1))
      return Fail();
    return std::make_shared<TransformationReplaceIrrelevantId>(Where, W0, W1);
  case TransformationKind::ReplaceConstantWithUniform:
    if (!getDescriptor(Params, "where", Where) ||
        !getWord(Params, "operand", W0) || !getWord(Params, "uniform", W1) ||
        !getWord(Params, "fresh_load", W2))
      return Fail();
    return std::make_shared<TransformationReplaceConstantWithUniform>(
        Where, W0, W1, W2);
  case TransformationKind::SwapCommutableOperands:
    if (!getDescriptor(Params, "where", Where))
      return Fail();
    return std::make_shared<TransformationSwapCommutableOperands>(Where);
  case TransformationKind::CompositeConstruct:
    if (!getWord(Params, "fresh", W0) || !getWord(Params, "type", W1) ||
        !getWords(Params, "components", List) ||
        !getDescriptor(Params, "where", Where))
      return Fail();
    return std::make_shared<TransformationCompositeConstruct>(W0, W1, List,
                                                              Where);
  case TransformationKind::CompositeExtract:
    if (!getWord(Params, "fresh", W0) || !getWord(Params, "composite", W1) ||
        !getWord(Params, "index", W2) ||
        !getDescriptor(Params, "where", Where))
      return Fail();
    return std::make_shared<TransformationCompositeExtract>(W0, W1, W2, Where);
  case TransformationKind::AddSynonymViaPhi:
    if (!getWord(Params, "fresh", W0) || !getWord(Params, "source", W1) ||
        !getWord(Params, "block", W2))
      return Fail();
    return std::make_shared<TransformationAddSynonymViaPhi>(W0, W1, W2);
  case TransformationKind::ToggleDontInline:
    if (!getWord(Params, "function", W0) || !getWord(Params, "enable", W1))
      return Fail();
    return std::make_shared<TransformationToggleDontInline>(W0, W1 != 0);
  case TransformationKind::AddFunction:
    if (!getWords(Params, "encoded", List) ||
        !getWord(Params, "live_safe", W0))
      return Fail();
    return std::make_shared<TransformationAddFunction>(List, W0 != 0);
  case TransformationKind::AddFunctionCall:
    if (!getWord(Params, "fresh", W0) || !getWord(Params, "callee", W1) ||
        !getWords(Params, "args", List) ||
        !getDescriptor(Params, "where", Where))
      return Fail();
    return std::make_shared<TransformationAddFunctionCall>(W0, W1, List,
                                                           Where);
  case TransformationKind::InlineFunction:
    if (!getDescriptor(Params, "call", Where) ||
        !getWord(Params, "after_block", W0) ||
        !getWords(Params, "id_map", List))
      return Fail();
    return std::make_shared<TransformationInlineFunction>(Where, W0, List);
  case TransformationKind::AddParameter:
    if (!getWord(Params, "function", W0) ||
        !getWord(Params, "fresh_param", W1) || !getWord(Params, "type", W2) ||
        !getWord(Params, "new_function_type", W3) ||
        !getWord(Params, "arg_const", W4))
      return Fail();
    return std::make_shared<TransformationAddParameter>(W0, W1, W2, W3, W4);
  }
  return Fail();
}

} // namespace

TransformationPtr spvfuzz::makeTransformation(TransformationKind Kind,
                                              const ParamMap &Params,
                                              std::string &ErrorOut) {
  TransformationPtr T = makeTransformationImpl(Kind, Params, ErrorOut);
  telemetry::MetricsRegistry &Metrics = telemetry::MetricsRegistry::global();
  if (Metrics.enabled()) {
    if (T)
      Metrics.add(std::string("registry.deserialized.") +
                  transformationKindName(Kind));
    else
      Metrics.add("registry.deserialize_failures");
  }
  return T;
}
