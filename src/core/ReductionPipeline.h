//===- core/ReductionPipeline.h - Staged reduction pipeline -----*- C++ -*-===//
//
// Part of the spirv-fuzz reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The reduction subsystem behind one composable API. A ReductionPipeline
/// runs up to three stages against a single interestingness test:
///
///   1. Sequence reduction — the paper's §3.4 delta debugging over the
///      transformation sequence, optionally with *learned* candidate
///      ordering: a ProbabilisticModel tracks per-transformation-kind
///      removal success rates online and orders each round's chunk
///      candidates by expected payoff (Chisel-style), and a decision memo
///      keyed on the replayed variant's structural hash reuses verdicts
///      for candidates whose module was already decided — the
///      interestingness test is a pure function of the variant, the same
///      contract target/EvalCache.h rests on. Removing replay-skipped
///      transformations and re-scanning a suffix the last acceptance left
///      untouched then cost no further checks, which is where the learned
///      mode's Checks saving comes from: reordering alone cannot save
///      checks in a full-sweep scan (every enumerated candidate is
///      decided either way), so after an acceptance the pending ranges
///      are remapped onto the shortened sequence rather than dropped, and
///      the memo removes the oracle consultations. Acceptance still
///      commits in strictly serial scan order through the speculation
///      machinery, so the minimized sequence — and the serial check
///      count — is bit-identical at any job count.
///   2. AddFunction shrinking — the spirv-reduce analogue
///      (core/FunctionShrinker.h), folded in behind a plan knob so callers
///      no longer hand-roll the check accounting.
///   3. IR-level post-reduction — a Bugpoint-style pass list
///      (StripUnusedDefs, StripUnusedTypesAndGlobals,
///      SimplifyReferenceProgram) that shrinks the *reference module
///      itself*, something sequence reduction cannot do. Every candidate
///      is validated first and then re-checked against the interestingness
///      test after replaying the minimized sequence onto it, so the pass
///      layer sits above the validator and can never smuggle in an invalid
///      or uninteresting reproducer.
///
/// The stages are configured by a ReductionPlan (builder-style, mirroring
/// campaign/ExecutionPolicy); a default plan reproduces the paper's
/// reducer exactly.
///
//===----------------------------------------------------------------------===//

#ifndef CORE_REDUCTIONPIPELINE_H
#define CORE_REDUCTIONPIPELINE_H

#include "core/Reducer.h"

#include <array>
#include <memory>
#include <string>
#include <vector>

namespace spvfuzz {

//===----------------------------------------------------------------------===//
// Candidate ordering
//===----------------------------------------------------------------------===//

/// How a delta-debugging scan orders its chunk candidates.
enum class CandidateOrder : uint8_t {
  /// The paper's fixed order: back to front, last chunk first.
  Paper,
  /// Expected-payoff order from the online ProbabilisticModel, plus
  /// memoized verdicts for byte-identical replayed variants; ties keep
  /// the paper order, so an untrained model degenerates to Paper's scan
  /// order exactly.
  Learned,
};

/// Returns "paper" / "learned".
const char *candidateOrderName(CandidateOrder Order);

/// Parses a name produced by candidateOrderName; false on failure.
bool candidateOrderFromName(const std::string &Name, CandidateOrder &Out);

/// Chisel-style online model of removal success: per transformation kind,
/// how often chunks containing that kind were successfully removed. Pure
/// and deterministic — state advances only at the serial consumption
/// points of the scan, in decision order, so the model (and therefore the
/// learned candidate order) is identical at any job count and fully
/// replayable.
class ProbabilisticModel {
public:
  /// \p Seed salts the deterministic tie-break only; 0 (the default)
  /// breaks ties by keeping the paper order.
  explicit ProbabilisticModel(uint64_t Seed = 0) : Seed(Seed) {}

  /// Records the serial decision for the chunk [\p Start, \p End) of
  /// \p Current: \p Removed iff the interestingness test accepted its
  /// removal.
  void recordOutcome(const TransformationSequence &Current, size_t Start,
                     size_t End, bool Removed);

  /// Expected removal payoff of chunk [\p Start, \p End) of \p Current:
  /// the mean Laplace-smoothed removal rate of the kinds it contains.
  /// Untrained kinds score exactly 0.5, so a fresh model scores every
  /// chunk equally.
  double chunkScore(const TransformationSequence &Current, size_t Start,
                    size_t End) const;

  /// Deterministic tie-break key for a chunk; 0 whenever Seed is 0 (ties
  /// then keep the paper order under a stable sort).
  uint64_t tieBreak(size_t Start, size_t End) const;

  /// Serial decisions recorded so far.
  size_t updates() const { return Updates; }

private:
  struct KindStats {
    uint64_t Attempts = 0;
    uint64_t Removed = 0;
  };
  std::array<KindStats, NumTransformationKinds> Stats{};
  uint64_t Seed;
  size_t Updates = 0;
};

//===----------------------------------------------------------------------===//
// IR-level post-reduction passes
//===----------------------------------------------------------------------===//

/// One Bugpoint-style reduction pass over the reference module. A pass
/// deterministically enumerates *units* — independently removable pieces
/// of the module — and produces candidates with chosen units removed; the
/// pipeline's driver owns validation, interestingness re-checking and
/// acceptance. Passes must be semantics-preserving (dead-code removal
/// only): the miscompilation interestingness test compares against a
/// baseline captured from the original reference, so removing live code
/// would make the differential vacuously true (bug slippage).
class ReductionPass {
public:
  virtual ~ReductionPass() = default;

  virtual const char *name() const = 0;

  /// Number of removable units in \p M, under a deterministic enumeration
  /// that withUnitsRemoved agrees with.
  virtual size_t countUnits(const Module &M) const = 0;

  /// Returns \p M with the units at \p UnitIndices removed.
  /// \p UnitIndices are ascending indices into the countUnits enumeration.
  virtual Module withUnitsRemoved(const Module &M,
                                  const std::vector<size_t> &UnitIndices)
      const = 0;
};

using ReductionPassPtr = std::shared_ptr<const ReductionPass>;

/// The standard post-reduction pass list, in the order the pipeline runs
/// them: StripUnusedDefs (dead side-effect-free body instructions),
/// StripUnusedTypesAndGlobals (transitively unreferenced declarations,
/// keeping the Uniform/Output interface), SimplifyReferenceProgram
/// (functions unreachable from the entry point). The pipeline iterates
/// the list to a fixpoint, so removals that orphan other code (an
/// uncalled function's private constants, say) are picked up by the next
/// round.
const std::vector<ReductionPassPtr> &standardPostReducePasses();

/// Looks up a standard pass by name; nullptr if unknown.
ReductionPassPtr findPostReducePass(const std::string &Name);

//===----------------------------------------------------------------------===//
// Plan and pipeline
//===----------------------------------------------------------------------===//

/// Everything that shapes a reduction run. Builder-style like
/// campaign/ExecutionPolicy. The defaults reproduce the paper's reducer
/// exactly.
struct ReductionPlan {
  /// Prefix-snapshot spacing for incremental replay (see ReplayCache);
  /// 0 disables snapshots and every check replays from the original.
  size_t SnapshotInterval = 8;
  /// Approximate byte budget for retained snapshots.
  size_t SnapshotBudgetBytes = 64ull << 20;
  /// When non-null, each scan's candidates are evaluated speculatively on
  /// the pool while acceptance commits strictly in serial scan order;
  /// results invalidated by an earlier acceptance are discarded (counted
  /// in ReduceResult::SpeculativeChecks). The pipeline only submits leaf
  /// jobs — never call run() itself from a job on the same pool.
  ThreadPool *Pool = nullptr;
  /// Chunk-candidate ordering for the delta-debugging scans.
  CandidateOrder Order = CandidateOrder::Paper;
  /// Tie-break salt for the learned order (0 keeps paper-order ties).
  uint64_t ModelSeed = 0;
  /// Shrink surviving AddFunction payloads after sequence reduction
  /// (core/FunctionShrinker.h).
  bool ShrinkFunctions = false;
  /// Run the IR-level post-reduction pass list against the reference
  /// module after sequence reduction.
  bool PostReduce = false;
  /// Post-reduction passes to run, by name; empty = the full standard
  /// list. Unknown names are ignored (callers validate user input with
  /// findPostReducePass).
  std::vector<std::string> PostPasses;

  /// Lifts the legacy performance-knob struct into a plan.
  static ReductionPlan fromOptions(const ReduceOptions &Options) {
    ReductionPlan Plan;
    Plan.SnapshotInterval = Options.SnapshotInterval;
    Plan.SnapshotBudgetBytes = Options.SnapshotBudgetBytes;
    Plan.Pool = Options.Pool;
    return Plan;
  }

  ReductionPlan &withSnapshotInterval(size_t Interval) {
    SnapshotInterval = Interval;
    return *this;
  }
  ReductionPlan &withSnapshotBudgetBytes(size_t Bytes) {
    SnapshotBudgetBytes = Bytes;
    return *this;
  }
  ReductionPlan &withPool(ThreadPool *P) {
    Pool = P;
    return *this;
  }
  ReductionPlan &withOrder(CandidateOrder O) {
    Order = O;
    return *this;
  }
  ReductionPlan &withModelSeed(uint64_t Seed) {
    ModelSeed = Seed;
    return *this;
  }
  ReductionPlan &withShrinkFunctions(bool On) {
    ShrinkFunctions = On;
    return *this;
  }
  ReductionPlan &withPostReduce(bool On) {
    PostReduce = On;
    return *this;
  }
  ReductionPlan &withPostPasses(std::vector<std::string> Names) {
    PostPasses = std::move(Names);
    return *this;
  }
};

/// The staged reducer. Stateless between run() calls: every run starts a
/// fresh ProbabilisticModel, so reductions are independently replayable —
/// a resumed campaign that skips already-checkpointed reductions still
/// reproduces the remaining records byte-identically.
class ReductionPipeline {
public:
  explicit ReductionPipeline(ReductionPlan Plan) : Plan(std::move(Plan)) {}

  /// Reduces \p Sequence against \p Original + \p Input. \p Sequence must
  /// itself be interesting (the caller found a bug with it). Runs the
  /// stages the plan enables; see ReduceResult for what each stage fills
  /// in.
  ReduceResult run(const Module &Original, const ShaderInput &Input,
                   const TransformationSequence &Sequence,
                   const InterestingnessTest &Test) const;

  const ReductionPlan &plan() const { return Plan; }

private:
  ReduceResult reduceSequenceStage(const Module &Original,
                                   const ShaderInput &Input,
                                   const TransformationSequence &Sequence,
                                   const InterestingnessTest &Test) const;
  void postReduceStage(const Module &Original, const ShaderInput &Input,
                       const InterestingnessTest &Test,
                       ReduceResult &Result) const;

  ReductionPlan Plan;
};

} // namespace spvfuzz

#endif // CORE_REDUCTIONPIPELINE_H
