//===- core/Fact.cpp - Fact manager for transformation contexts ------------===//
//
// Part of the spirv-fuzz reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "core/Fact.h"

#include <algorithm>

using namespace spvfuzz;

// Built with append rather than `"%" + std::to_string(...)`: inserting into
// the rvalue temporary trips GCC 12's -Wrestrict false positive (PR105651)
// under -Werror.
std::string DataDescriptor::str() const {
  std::string Out("%");
  Out += std::to_string(Object);
  for (uint32_t Index : Indices) {
    Out += '[';
    Out += std::to_string(Index);
    Out += ']';
  }
  return Out;
}

const DataDescriptor &FactManager::findRoot(const DataDescriptor &D) const {
  auto It = SynonymParent.find(D);
  if (It == SynonymParent.end()) {
    // Not yet in the forest: it is its own root. Insert lazily so that a
    // stable reference can be returned.
    It = SynonymParent.emplace(D, D).first;
    return It->first;
  }
  if (It->second == D)
    return It->first;
  const DataDescriptor &Root = findRoot(It->second);
  It->second = Root; // path compression
  return Root;
}

void FactManager::addSynonym(const DataDescriptor &A, const DataDescriptor &B) {
  DataDescriptor RootA = findRoot(A);
  DataDescriptor RootB = findRoot(B);
  if (RootA == RootB)
    return;
  SynonymParent[RootA] = RootB;
}

bool FactManager::areSynonymous(const DataDescriptor &A,
                                const DataDescriptor &B) const {
  if (A == B)
    return true;
  // Avoid growing the forest for descriptors that were never recorded.
  if (SynonymParent.find(A) == SynonymParent.end() ||
      SynonymParent.find(B) == SynonymParent.end())
    return false;
  return findRoot(A) == findRoot(B);
}

std::vector<DataDescriptor>
FactManager::synonymsOf(const DataDescriptor &D) const {
  std::vector<DataDescriptor> Result;
  if (SynonymParent.find(D) == SynonymParent.end())
    return Result;
  const DataDescriptor &Root = findRoot(D);
  for (const auto &[Member, Parent] : SynonymParent) {
    (void)Parent;
    if (Member == D)
      continue;
    if (findRoot(Member) == Root)
      Result.push_back(Member);
  }
  return Result;
}

std::vector<std::pair<DataDescriptor, DataDescriptor>>
FactManager::canonicalSynonyms() const {
  // Group every recorded descriptor by its root, pick the smallest member
  // of each class as the representative, then emit sorted (member,
  // representative) pairs for the non-trivial classes.
  std::map<DataDescriptor, std::vector<DataDescriptor>> Classes;
  for (const auto &[Member, Parent] : SynonymParent) {
    (void)Parent;
    Classes[findRoot(Member)].push_back(Member);
  }
  std::vector<std::pair<DataDescriptor, DataDescriptor>> Out;
  for (auto &[Root, Members] : Classes) {
    (void)Root;
    if (Members.size() < 2)
      continue;
    const DataDescriptor *Representative = &Members.front();
    for (const DataDescriptor &Member : Members)
      if (Member < *Representative)
        Representative = &Member;
    for (const DataDescriptor &Member : Members)
      if (!(Member == *Representative))
        Out.emplace_back(Member, *Representative);
  }
  std::sort(Out.begin(), Out.end());
  return Out;
}

std::vector<Id> FactManager::idSynonymsOf(Id TheId) const {
  std::vector<Id> Result;
  for (const DataDescriptor &Synonym : synonymsOf(DataDescriptor(TheId)))
    if (Synonym.Indices.empty())
      Result.push_back(Synonym.Object);
  return Result;
}
