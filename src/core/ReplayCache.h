//===- core/ReplayCache.h - Prefix snapshots for incremental replay -*- C++ -*-===//
//
// Part of the spirv-fuzz reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Incremental replay for delta debugging. Every candidate the reducer
/// tries is the current sequence with one chunk deleted, so it shares a
/// (possibly empty) prefix with the current sequence. The ReplayCache
/// snapshots the (Module, FactManager) state reached after replaying each
/// interval-aligned prefix of the current sequence; replaying a candidate
/// then costs only the transformations after the deepest snapshot at or
/// below the divergence point, instead of the whole candidate.
///
/// Correctness rests on applySequenceRange: transformation application is
/// strictly sequential, so resuming from a replayed prefix is identical to
/// replaying from scratch. Snapshots therefore never change reduction
/// results — only how much work a check costs — and the cache is safe to
/// bound by an arbitrary byte budget (eviction thins snapshots to every
/// other one, doubling the effective interval, until the budget holds).
///
/// Concurrency contract: prepare() and invalidateBeyond() mutate the
/// snapshot list and must run with no concurrent calls; replay() only
/// reads it, so any number of replay() calls may run in parallel between
/// mutations. The speculative reducer prepares snapshots serially before
/// each batch and replays from worker threads.
///
//===----------------------------------------------------------------------===//

#ifndef CORE_REPLAYCACHE_H
#define CORE_REPLAYCACHE_H

#include "core/Transformation.h"

namespace spvfuzz {

class ReplayCache {
public:
  /// \p Interval is the prefix-length spacing between snapshots (0 disables
  /// snapshotting entirely: every replay starts from \p Original).
  /// \p BudgetBytes bounds the approximate memory held in snapshots.
  /// \p Original and \p Input must outlive the cache.
  ReplayCache(const Module &Original, const ShaderInput &Input,
              size_t Interval, size_t BudgetBytes);

  /// Ensures snapshots exist at every effective-interval multiple up to
  /// \p PrefixLen of \p Current, replaying forward from the deepest
  /// existing snapshot. Serial only.
  void prepare(const TransformationSequence &Current, size_t PrefixLen);

  /// Drops snapshots deeper than \p PrefixLen. Call when the current
  /// sequence changes past that point (a chunk was accepted): snapshots of
  /// the unchanged prefix stay valid. Serial only.
  void invalidateBeyond(size_t PrefixLen);

  /// Replays \p Candidate onto (\p MOut, \p FactsOut), starting from the
  /// deepest snapshot whose prefix length is <= \p SharedPrefixLen —
  /// \p Candidate must agree with the sequence last passed to prepare() on
  /// its first \p SharedPrefixLen entries. Read-only; thread-safe against
  /// other replay() calls.
  void replay(const TransformationSequence &Candidate, size_t SharedPrefixLen,
              Module &MOut, FactManager &FactsOut) const;

  size_t snapshotCount() const { return Snapshots.size(); }
  size_t bytesUsed() const { return BytesUsed; }
  size_t effectiveInterval() const { return EffectiveInterval; }

private:
  struct Snapshot {
    size_t PrefixLen = 0;
    Module M;
    FactManager Facts;
    size_t Bytes = 0;
  };

  /// Index of the deepest snapshot with PrefixLen <= \p PrefixLen, or
  /// SIZE_MAX when none exists.
  size_t deepestAtOrBelow(size_t PrefixLen) const;

  /// Halves snapshot density (and doubles EffectiveInterval) until the
  /// budget holds; always keeps at least one snapshot.
  void thinToBudget();

  const Module &Original;
  const ShaderInput &Input;
  size_t EffectiveInterval;
  const size_t BudgetBytes;
  size_t BytesUsed = 0;
  std::vector<Snapshot> Snapshots; // sorted by PrefixLen, strictly increasing
};

/// Approximate heap footprint of \p M, used for snapshot and eval-cache
/// byte budgets. An estimate, not an accounting: vectors are costed at
/// element payload size.
size_t approxModuleBytes(const Module &M);

} // namespace spvfuzz

#endif // CORE_REPLAYCACHE_H
