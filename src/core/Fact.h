//===- core/Fact.h - Fact manager for transformation contexts --*- C++ -*-===//
//
// Part of the spirv-fuzz reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The fact component of a transformation context (Definition 2.3 of the
/// paper): properties of the program and input that are known to hold,
/// recorded by transformation effects and consumed by transformation
/// preconditions. The fact kinds are the five of spirv-fuzz ğ3.2:
/// DeadBlock, Synonymous, Irrelevant, IrrelevantPointee and LiveSafe, plus
/// knowledge of the runtime input values (used to obfuscate constants).
///
//===----------------------------------------------------------------------===//

#ifndef CORE_FACT_H
#define CORE_FACT_H

#include "exec/Value.h"
#include "ir/Module.h"

#include <map>
#include <set>
#include <unordered_map>
#include <unordered_set>

namespace spvfuzz {

/// Identifies a value or a component of a composite value: id 7 with
/// indices {0, 1} denotes element [0][1] of the composite with result id 7.
/// Mirrors spirv-fuzz's DataDescriptor.
struct DataDescriptor {
  Id Object = InvalidId;
  std::vector<uint32_t> Indices;

  DataDescriptor() = default;
  DataDescriptor(Id Object, std::vector<uint32_t> Indices = {})
      : Object(Object), Indices(std::move(Indices)) {}

  bool operator==(const DataDescriptor &Other) const {
    return Object == Other.Object && Indices == Other.Indices;
  }
  bool operator<(const DataDescriptor &Other) const {
    if (Object != Other.Object)
      return Object < Other.Object;
    return Indices < Other.Indices;
  }

  std::string str() const;
};

/// Holds facts about a (program, input) pair. Facts are monotone: they are
/// only ever added, and each transformation's effect may add new ones.
class FactManager {
public:
  FactManager() = default;

  // --- DeadBlock -----------------------------------------------------------

  void addDeadBlock(Id Block) { DeadBlocks.insert(Block); }
  bool blockIsDead(Id Block) const { return DeadBlocks.count(Block) != 0; }
  const std::unordered_set<Id> &deadBlocks() const { return DeadBlocks; }

  // --- Synonymous ------------------------------------------------------------

  /// Records that \p A and \p B hold equal values wherever both are
  /// available. Synonymy is maintained as a union-find over descriptors.
  void addSynonym(const DataDescriptor &A, const DataDescriptor &B);
  bool areSynonymous(const DataDescriptor &A, const DataDescriptor &B) const;

  /// All descriptors recorded synonymous with \p D (excluding \p D itself).
  std::vector<DataDescriptor> synonymsOf(const DataDescriptor &D) const;

  /// All whole-id descriptors (no indices) synonymous with id \p TheId.
  std::vector<Id> idSynonymsOf(Id TheId) const;

  /// The synonym relation in canonical form, for serialization and
  /// equality checks: one (member, representative) pair per descriptor in a
  /// non-trivial equivalence class, where the representative is the class's
  /// smallest member and pairs are sorted by member. Self pairs are
  /// omitted, so the result is independent of insertion order and of any
  /// path compression the union-find has performed.
  std::vector<std::pair<DataDescriptor, DataDescriptor>>
  canonicalSynonyms() const;

  // --- Irrelevant -------------------------------------------------------------

  void addIrrelevantId(Id TheId) { IrrelevantIds.insert(TheId); }
  bool idIsIrrelevant(Id TheId) const {
    return IrrelevantIds.count(TheId) != 0;
  }
  const std::unordered_set<Id> &irrelevantIds() const { return IrrelevantIds; }

  void addIrrelevantPointee(Id Pointer) { IrrelevantPointees.insert(Pointer); }
  bool pointeeIsIrrelevant(Id Pointer) const {
    return IrrelevantPointees.count(Pointer) != 0;
  }
  const std::unordered_set<Id> &irrelevantPointees() const {
    return IrrelevantPointees;
  }

  // --- LiveSafe ----------------------------------------------------------------

  void addLiveSafeFunction(Id Func) { LiveSafeFunctions.insert(Func); }
  bool functionIsLiveSafe(Id Func) const {
    return LiveSafeFunctions.count(Func) != 0;
  }
  const std::unordered_set<Id> &liveSafeFunctions() const {
    return LiveSafeFunctions;
  }

  // --- Known input values ---------------------------------------------------

  /// The fuzzer knows the values the module will be executed on; the
  /// compiler under test does not. ReplaceConstantWithUniform exploits the
  /// asymmetry.
  void setKnownInput(const ShaderInput &Input) { KnownInput = Input; }
  const ShaderInput &knownInput() const { return KnownInput; }

private:
  /// Union-find over descriptors, with path compression on lookup.
  const DataDescriptor &findRoot(const DataDescriptor &D) const;

  std::unordered_set<Id> DeadBlocks;
  std::unordered_set<Id> IrrelevantIds;
  std::unordered_set<Id> IrrelevantPointees;
  std::unordered_set<Id> LiveSafeFunctions;
  mutable std::map<DataDescriptor, DataDescriptor> SynonymParent;
  ShaderInput KnownInput;
};

} // namespace spvfuzz

#endif // CORE_FACT_H
