//===- core/Reducer.cpp - Delta-debugging sequence reduction ---------------===//
//
// Part of the spirv-fuzz reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "core/Reducer.h"

#include "core/ReplayCache.h"
#include "support/Telemetry.h"
#include "support/ThreadPool.h"
#include "support/Trace.h"

#include <future>

using namespace spvfuzz;

namespace {

/// One chunk-removal candidate within a pass: the current sequence with
/// [Start, End) deleted. The candidate shares the prefix [0, Start) with
/// the current sequence, which is what lets the ReplayCache resume from a
/// snapshot instead of replaying from scratch.
struct ChunkCandidate {
  size_t Start = 0;
  size_t End = 0;
  TransformationSequence Seq;
  bool Interesting = false;
};

void buildCandidate(const TransformationSequence &Current, size_t Start,
                    size_t End, TransformationSequence &Out) {
  Out.clear();
  Out.reserve(Current.size() - (End - Start));
  Out.insert(Out.end(), Current.begin(), Current.begin() + Start);
  Out.insert(Out.end(), Current.begin() + End, Current.end());
}

} // namespace

ReduceResult spvfuzz::reduceSequence(const Module &Original,
                                     const ShaderInput &Input,
                                     const TransformationSequence &Sequence,
                                     const InterestingnessTest &Test) {
  return reduceSequence(Original, Input, Sequence, Test, ReduceOptions());
}

ReduceResult spvfuzz::reduceSequence(const Module &Original,
                                     const ShaderInput &Input,
                                     const TransformationSequence &Sequence,
                                     const InterestingnessTest &Test,
                                     const ReduceOptions &Options) {
  ReduceResult Result;
  TransformationSequence Current = Sequence;
  telemetry::MetricsRegistry &Metrics = telemetry::MetricsRegistry::global();
  telemetry::TraceSpan Span("reduce.sequence");
  Span.note({"initial_length", Sequence.size()});
  if (Metrics.enabled())
    Metrics.add("reducer.reductions");

  ReplayCache Cache(Original, Input, Options.SnapshotInterval,
                    Options.SnapshotBudgetBytes);

  // Candidates per speculative batch. 1 (no pool) degenerates to the plain
  // serial algorithm; with a pool, one batch of W candidates is evaluated
  // concurrently and then consumed in pass order, so the accept/reject
  // decision sequence — and therefore Checks and the minimized result — is
  // identical to the serial run.
  const size_t BatchWidth =
      Options.Pool ? std::max<size_t>(Options.Pool->workerCount(), 1) : 1;

  // Evaluates one candidate: incremental replay from the deepest snapshot
  // at or below the candidate's shared prefix, then the interestingness
  // test. Safe to run concurrently with other evaluations (Cache.replay is
  // read-only; the test must be thread-safe per the header contract).
  auto Evaluate = [&Cache, &Test](ChunkCandidate &C) {
    Module Variant;
    FactManager Facts;
    Cache.replay(C.Seq, C.Start, Variant, Facts);
    C.Interesting = Test(Variant, Facts);
  };

  size_t ChunkSize = Current.size() / 2;
  if (ChunkSize == 0)
    ChunkSize = 1;

  std::vector<ChunkCandidate> Batch(BatchWidth);

  while (true) {
    telemetry::Tracer::global().event(
        "reduce.chunk", {{"chunk_size", ChunkSize},
                         {"sequence_length", Current.size()},
                         {"checks", Result.Checks}});
    bool RemovedAny = false;
    // Work backwards from the last transformation; the leading chunk may
    // be smaller than ChunkSize.
    size_t End = Current.size();
    while (End > 0) {
      // Assemble up to BatchWidth consecutive candidates of the scan.
      size_t BatchSize = 0;
      size_t NextEnd = End;
      while (BatchSize < BatchWidth && NextEnd > 0) {
        ChunkCandidate &C = Batch[BatchSize++];
        C.Start = NextEnd >= ChunkSize ? NextEnd - ChunkSize : 0;
        C.End = NextEnd;
        buildCandidate(Current, C.Start, C.End, C.Seq);
        C.Interesting = false;
        NextEnd = C.Start;
      }
      // Snapshots need only reach the deepest shared prefix of this batch
      // (the first candidate's Start; later candidates share less).
      Cache.prepare(Current, Batch[0].Start);

      if (BatchSize > 1) {
        // Barrier: every future must be collected before Current or the
        // cache is mutated below — the jobs read both through references.
        std::vector<std::future<void>> Futures;
        Futures.reserve(BatchSize);
        for (size_t I = 0; I != BatchSize; ++I)
          Futures.push_back(
              Options.Pool->submit([&Evaluate, &C = Batch[I]] { Evaluate(C); }));
        for (std::future<void> &F : Futures)
          F.get();
      } else {
        Evaluate(Batch[0]);
      }

      // Consume in pass order. Checks counts only consumed candidates, so
      // it matches the serial algorithm exactly; evaluated-but-discarded
      // candidates are accounted separately as speculative waste.
      size_t Consumed = 0;
      bool Accepted = false;
      for (; Consumed != BatchSize; ++Consumed) {
        ChunkCandidate &C = Batch[Consumed];
        ++Result.Checks;
        if (Metrics.enabled())
          Metrics.add("reducer.checks");
        End = C.Start;
        if (C.Interesting) {
          Current = std::move(C.Seq);
          Cache.invalidateBeyond(C.Start);
          RemovedAny = true;
          Accepted = true;
          ++Consumed;
          break;
        }
      }
      if (Accepted && Consumed != BatchSize) {
        // The rest of the batch was speculated against the pre-acceptance
        // sequence; their results no longer answer the question the serial
        // scan would ask next. Discard and re-scan from the acceptance
        // point.
        size_t Wasted = BatchSize - Consumed;
        Result.SpeculativeChecks += Wasted;
        if (Metrics.enabled())
          Metrics.add("reducer.speculative_checks", Wasted);
      }
    }
    if (RemovedAny)
      continue; // retry at the same chunk size until a pass removes nothing
    if (ChunkSize == 1)
      break; // 1-minimal
    ChunkSize /= 2;
  }

  // The cache only ever holds snapshots of still-valid prefixes of Current,
  // so the final replay is incremental too.
  Result.ReducedVariant = Module();
  Cache.replay(Current, Current.size(), Result.ReducedVariant,
               Result.ReducedFacts);
  Result.Minimized = std::move(Current);
  if (Metrics.enabled()) {
    Metrics.observe("reducer.checks_per_reduction",
                    static_cast<double>(Result.Checks));
    Metrics.observe("reducer.minimized_length",
                    static_cast<double>(Result.Minimized.size()));
  }
  Span.note({"checks", Result.Checks});
  Span.note({"minimized_length", Result.Minimized.size()});
  return Result;
}
