//===- core/Reducer.cpp - Legacy reduceSequence wrappers -------------------===//
//
// Part of the spirv-fuzz reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
//
// The delta-debugging algorithm lives in core/ReductionPipeline.cpp; these
// free functions are the deprecated pre-pipeline entry points, kept as thin
// wrappers so existing callers reduce bit-identically to before.
//
//===----------------------------------------------------------------------===//

#include "core/Reducer.h"

#include "core/ReductionPipeline.h"

using namespace spvfuzz;

ReduceResult spvfuzz::reduceSequence(const Module &Original,
                                     const ShaderInput &Input,
                                     const TransformationSequence &Sequence,
                                     const InterestingnessTest &Test) {
  return reduceSequence(Original, Input, Sequence, Test, ReduceOptions());
}

ReduceResult spvfuzz::reduceSequence(const Module &Original,
                                     const ShaderInput &Input,
                                     const TransformationSequence &Sequence,
                                     const InterestingnessTest &Test,
                                     const ReduceOptions &Options) {
  return ReductionPipeline(ReductionPlan::fromOptions(Options))
      .run(Original, Input, Sequence, Test);
}
