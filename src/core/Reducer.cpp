//===- core/Reducer.cpp - Delta-debugging sequence reduction ---------------===//
//
// Part of the spirv-fuzz reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "core/Reducer.h"

#include "support/Telemetry.h"
#include "support/Trace.h"

using namespace spvfuzz;

namespace {

/// Applies \p Sequence to a copy of the original, returning the variant
/// and facts.
struct Replay {
  Module Variant;
  FactManager Facts;

  Replay(const Module &Original, const ShaderInput &Input,
         const TransformationSequence &Sequence) {
    Variant = Original;
    Facts.setKnownInput(Input);
    applySequence(Variant, Facts, Sequence);
  }
};

} // namespace

ReduceResult spvfuzz::reduceSequence(const Module &Original,
                                     const ShaderInput &Input,
                                     const TransformationSequence &Sequence,
                                     const InterestingnessTest &Test) {
  ReduceResult Result;
  TransformationSequence Current = Sequence;
  telemetry::MetricsRegistry &Metrics = telemetry::MetricsRegistry::global();
  telemetry::TraceSpan Span("reduce.sequence");
  Span.note({"initial_length", Sequence.size()});
  if (Metrics.enabled())
    Metrics.add("reducer.reductions");

  auto IsInteresting = [&](const TransformationSequence &Candidate) {
    ++Result.Checks;
    if (Metrics.enabled())
      Metrics.add("reducer.checks");
    Replay Replayed(Original, Input, Candidate);
    return Test(Replayed.Variant, Replayed.Facts);
  };

  size_t ChunkSize = Current.size() / 2;
  if (ChunkSize == 0)
    ChunkSize = 1;

  while (true) {
    telemetry::Tracer::global().event(
        "reduce.chunk", {{"chunk_size", ChunkSize},
                         {"sequence_length", Current.size()},
                         {"checks", Result.Checks}});
    bool RemovedAny = false;
    if (!Current.empty()) {
      // Work backwards from the last transformation; the leading chunk may
      // be smaller than ChunkSize.
      size_t End = Current.size();
      while (End > 0) {
        size_t Start = End >= ChunkSize ? End - ChunkSize : 0;
        TransformationSequence Candidate;
        Candidate.reserve(Current.size() - (End - Start));
        Candidate.insert(Candidate.end(), Current.begin(),
                         Current.begin() + Start);
        Candidate.insert(Candidate.end(), Current.begin() + End,
                         Current.end());
        if (IsInteresting(Candidate)) {
          Current = std::move(Candidate);
          RemovedAny = true;
        }
        End = Start;
      }
    }
    if (RemovedAny)
      continue; // retry at the same chunk size until a pass removes nothing
    if (ChunkSize == 1)
      break; // 1-minimal
    ChunkSize /= 2;
    if (ChunkSize == 0)
      ChunkSize = 1;
  }

  Replay Final(Original, Input, Current);
  Result.Minimized = std::move(Current);
  Result.ReducedVariant = std::move(Final.Variant);
  Result.ReducedFacts = std::move(Final.Facts);
  if (Metrics.enabled()) {
    Metrics.observe("reducer.checks_per_reduction",
                    static_cast<double>(Result.Checks));
    Metrics.observe("reducer.minimized_length",
                    static_cast<double>(Result.Minimized.size()));
  }
  Span.note({"checks", Result.Checks});
  Span.note({"minimized_length", Result.Minimized.size()});
  return Result;
}
