//===- core/TransformationUtil.cpp - Shared transformation helpers ---------===//
//
// Part of the spirv-fuzz reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "core/TransformationUtil.h"

#include "analysis/Validator.h"

#include <unordered_set>

using namespace spvfuzz;

bool spvfuzz::idIsFreshInModule(const Module &M, Id TheId) {
  if (TheId == InvalidId)
    return false;
  if (M.findDef(TheId))
    return false;
  for (const Function &Func : M.Functions)
    for (const BasicBlock &Block : Func.Blocks)
      if (Block.LabelId == TheId)
        return false;
  return true;
}

bool spvfuzz::idsAreFreshAndDistinct(const Module &M,
                                     const std::vector<Id> &Ids) {
  std::unordered_set<Id> Seen;
  for (Id TheId : Ids) {
    if (!idIsFreshInModule(M, TheId))
      return false;
    if (!Seen.insert(TheId).second)
      return false;
  }
  return true;
}

Id spvfuzz::findBoolTypeId(const Module &M) {
  for (const Instruction &Global : M.GlobalInsts)
    if (Global.Opcode == Op::TypeBool)
      return Global.Result;
  return InvalidId;
}

Id spvfuzz::findIntTypeId(const Module &M) {
  for (const Instruction &Global : M.GlobalInsts)
    if (Global.Opcode == Op::TypeInt)
      return Global.Result;
  return InvalidId;
}

bool spvfuzz::functionReachesViaCalls(const Module &M, Id From, Id To) {
  std::unordered_set<Id> Visited;
  std::vector<Id> Worklist = {From};
  while (!Worklist.empty()) {
    Id Current = Worklist.back();
    Worklist.pop_back();
    if (Current == To)
      return true;
    if (!Visited.insert(Current).second)
      continue;
    const Function *Func = M.findFunction(Current);
    if (!Func)
      continue;
    for (const BasicBlock &Block : Func->Blocks)
      for (const Instruction &Inst : Block.Body)
        if (Inst.Opcode == Op::FunctionCall)
          Worklist.push_back(Inst.idOperand(0));
  }
  return false;
}

bool spvfuzz::applyKeepsModuleValid(const Transformation &T, const Module &M,
                                    const FactManager &Facts) {
  Module Clone = M;
  FactManager FactsClone = Facts;
  T.apply(Clone, FactsClone);
  return isValidModule(Clone);
}

LocatedInstruction
spvfuzz::locateInstructionConst(const Module &M,
                                const InstructionDescriptor &Desc) {
  // locateInstruction does not mutate; it only returns mutable pointers.
  return locateInstruction(const_cast<Module &>(M), Desc);
}

void spvfuzz::removePhiEntriesForPred(BasicBlock &Block, Id Pred) {
  for (Instruction &Inst : Block.Body) {
    if (Inst.Opcode != Op::Phi)
      break;
    std::vector<Operand> Kept;
    for (size_t I = 0; I + 1 < Inst.Operands.size(); I += 2) {
      if (Inst.Operands[I + 1].asId() == Pred)
        continue;
      Kept.push_back(Inst.Operands[I]);
      Kept.push_back(Inst.Operands[I + 1]);
    }
    Inst.Operands = std::move(Kept);
  }
}

void spvfuzz::renamePhiPred(BasicBlock &Block, Id From, Id To) {
  for (Instruction &Inst : Block.Body) {
    if (Inst.Opcode != Op::Phi)
      break;
    for (size_t I = 0; I + 1 < Inst.Operands.size(); I += 2)
      if (Inst.Operands[I + 1].asId() == From)
        Inst.Operands[I + 1] = Operand::id(To);
  }
}
