//===- core/FunctionShrinker.cpp - spirv-reduce analogue --------------------===//
//
// Part of the spirv-fuzz reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "core/FunctionShrinker.h"

#include "core/Transformations.h"

using namespace spvfuzz;

namespace {

/// Replays \p Sequence onto a copy of \p Original and runs \p Test. The
/// sequence must re-apply in full: a candidate that knocks out its own
/// AddFunction (failing the precondition) may still pass the test "by
/// accident", so full application is required to count as an improvement.
bool candidateIsInteresting(const Module &Original, const ShaderInput &Input,
                            const TransformationSequence &Sequence,
                            const InterestingnessTest &Test, size_t &Checks) {
  ++Checks;
  Module Variant = Original;
  FactManager Facts;
  Facts.setKnownInput(Input);
  std::vector<size_t> Applied = applySequence(Variant, Facts, Sequence);
  if (Applied.size() != Sequence.size())
    return false;
  return Test(Variant, Facts);
}

/// Tries removing the instruction at (\p BlockIndex, \p InstIndex) from
/// \p Func, producing a candidate function. Terminators are never removed.
bool removeInstruction(Function &Func, size_t BlockIndex, size_t InstIndex) {
  BasicBlock &Block = Func.Blocks[BlockIndex];
  if (InstIndex >= Block.Body.size())
    return false;
  if (isTerminator(Block.Body[InstIndex].Opcode))
    return false;
  Block.Body.erase(Block.Body.begin() + InstIndex);
  return true;
}

} // namespace

ReduceResult spvfuzz::shrinkAddFunctions(const Module &Original,
                                         const ShaderInput &Input,
                                         const TransformationSequence &Minimized,
                                         const InterestingnessTest &Test) {
  ReduceResult Result;
  TransformationSequence Current = Minimized;

  for (size_t Index = 0; Index < Current.size(); ++Index) {
    if (Current[Index]->kind() != TransformationKind::AddFunction)
      continue;
    const auto &Add =
        static_cast<const TransformationAddFunction &>(*Current[Index]);
    Function Func;
    if (!TransformationAddFunction::decodeFunction(Add.Encoded, Func))
      continue;

    // Greedy one-at-a-time instruction deletion, last to first (late
    // instructions tend to be the unused tail of a donor function).
    bool Changed = true;
    while (Changed) {
      Changed = false;
      for (size_t B = Func.Blocks.size(); B-- > 0;) {
        for (size_t I = Func.Blocks[B].Body.size(); I-- > 0;) {
          Function Candidate = Func;
          if (!removeInstruction(Candidate, B, I))
            continue;
          TransformationSequence CandidateSequence = Current;
          CandidateSequence[Index] =
              std::make_shared<TransformationAddFunction>(
                  TransformationAddFunction::encodeFunction(Candidate),
                  Add.MakeLiveSafe);
          if (candidateIsInteresting(Original, Input, CandidateSequence, Test,
                                     Result.Checks)) {
            Func = std::move(Candidate);
            Current = std::move(CandidateSequence);
            Changed = true;
          }
        }
      }
    }
  }

  Result.Minimized = std::move(Current);
  Result.ReducedVariant = Original;
  Result.ReducedFacts = FactManager();
  Result.ReducedFacts.setKnownInput(Input);
  applySequence(Result.ReducedVariant, Result.ReducedFacts, Result.Minimized);
  return Result;
}
