//===- core/Transformation.h - Transformation framework --------*- C++ -*-===//
//
// Part of the spirv-fuzz reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's Definition 2.4: a transformation is (Type, Pre, Effect)
/// where Pre is a predicate over contexts (module, input, facts) and
/// Effect maps contexts to contexts, preserving Semantics(P, I). Concrete
/// transformations subclass Transformation; sequences of (immutable,
/// shared) transformations are replayed with applySequence, which skips
/// transformations whose preconditions fail (Definition 2.5) — the property
/// that makes delta debugging over subsequences sound.
///
/// Transformations are serializable, one per line, so that a bug report can
/// carry the exact minimized sequence (the role protobufs play in
/// spirv-fuzz).
///
//===----------------------------------------------------------------------===//

#ifndef CORE_TRANSFORMATION_H
#define CORE_TRANSFORMATION_H

#include "analysis/ModuleAnalysis.h"
#include "core/Fact.h"
#include "ir/InstructionDescriptor.h"

#include <map>
#include <memory>
#include <string>

namespace spvfuzz {

/// Every concrete transformation type. The Type component of Definition
/// 2.4; the deduplication heuristic of Figure 6 operates on sets of these.
enum class TransformationKind : uint8_t {
  // Supporting transformations (ignored by deduplication, see ğ3.5).
  AddTypeInt,
  AddTypeBool,
  AddTypeVector,
  AddTypeStruct,
  AddTypePointer,
  AddTypeFunction,
  AddConstantScalar,
  AddConstantComposite,
  AddGlobalVariable,
  AddLocalVariable,

  // Control flow.
  SplitBlock,
  AddDeadBlock,
  ReplaceBranchWithKill,
  ReplaceBranchWithConditional,
  MoveBlockDown,
  InvertBranchCondition,
  PermutePhiOperands,
  PropagateInstructionUp,

  // Data.
  AddStore,
  AddLoad,
  AddSynonymViaCopyObject,
  AddArithmeticSynonym,
  ReplaceIdWithSynonym,
  ReplaceIrrelevantId,
  ReplaceConstantWithUniform,
  SwapCommutableOperands,
  CompositeConstruct,
  CompositeExtract,
  AddSynonymViaPhi,

  // Functions.
  ToggleDontInline,
  AddFunction,
  AddFunctionCall,
  InlineFunction,
  AddParameter,
};

/// Number of transformation kinds (for tables indexed by kind).
inline constexpr size_t NumTransformationKinds =
    static_cast<size_t>(TransformationKind::AddParameter) + 1;

const char *transformationKindName(TransformationKind Kind);
bool transformationKindFromName(const std::string &Name,
                                TransformationKind &Out);

/// True for the supporting/enabler kinds that the deduplication script
/// ignores (ğ3.5): type/constant/variable creation, SplitBlock and
/// AddFunction (enablers for other transformations) and
/// ReplaceIdWithSynonym (reaps the benefit of earlier transformations but
/// is not interesting in isolation).
bool isDedupIgnoredKind(TransformationKind Kind);

/// Named lists of 32-bit words; the wire format of transformation
/// parameters.
using ParamMap = std::map<std::string, std::vector<uint32_t>>;

class Transformation {
public:
  virtual ~Transformation() = default;

  virtual TransformationKind kind() const = 0;

  /// The precondition Pre(C). \p Analysis must be a fresh snapshot of \p M.
  virtual bool isApplicable(const Module &M, const ModuleAnalysis &Analysis,
                            const FactManager &Facts) const = 0;

  /// The effect. May assume isApplicable holds. Must preserve
  /// Semantics(P, I) and module validity, and may record new facts.
  virtual void apply(Module &M, FactManager &Facts) const = 0;

  /// Parameters for serialization.
  virtual ParamMap params() const = 0;

  /// One-line wire form: "KindName key=w1,w2 key2=w ...".
  std::string serialize() const;
};

using TransformationPtr = std::shared_ptr<const Transformation>;
using TransformationSequence = std::vector<TransformationPtr>;

/// Parses one serialized transformation line; nullptr on failure with a
/// diagnostic in \p ErrorOut.
TransformationPtr deserializeTransformation(const std::string &Line,
                                            std::string &ErrorOut);

/// Serializes a whole sequence, one transformation per line.
std::string serializeSequence(const TransformationSequence &Sequence);

/// Parses a sequence serialized by serializeSequence.
bool deserializeSequence(const std::string &Text,
                         TransformationSequence &SequenceOut,
                         std::string &ErrorOut);

/// Builds a concrete transformation from a kind and a parameter map
/// (implemented by the registry, which knows every kind). Returns nullptr
/// with a diagnostic in \p ErrorOut on missing/malformed parameters.
TransformationPtr makeTransformation(TransformationKind Kind,
                                     const ParamMap &Params,
                                     std::string &ErrorOut);

class ByteWriter;
class ByteReader;

/// Binary wire form of a sequence: u32 count, then per transformation a
/// u16 kind plus its parameter map. Table-driven via each transformation's
/// params(); round-trips through makeTransformation exactly like the text
/// form, but endian-stable and compact for the persistent store.
void writeSequenceBinary(ByteWriter &W, const TransformationSequence &Sequence);

/// Reads a sequence written by writeSequenceBinary. Unknown kinds,
/// malformed parameters and truncation are rejected with a diagnostic left
/// in the reader (and false returned), never undefined behaviour.
bool readSequenceBinary(ByteReader &R, TransformationSequence &SequenceOut);

/// Definition 2.5: applies \p Sequence to (\p M, \p Facts) in order,
/// skipping transformations whose preconditions fail. Returns the indices
/// of the transformations that were actually applied.
std::vector<size_t> applySequence(Module &M, FactManager &Facts,
                                  const TransformationSequence &Sequence);

/// Applies only [\p Begin, \p End) of \p Sequence. Because application is
/// strictly sequential, resuming from a state that already replayed
/// [0, Begin) is identical to a from-scratch applySequence — the hook the
/// reducer's prefix-snapshot ReplayCache is built on. Returned indices are
/// relative to \p Sequence.
std::vector<size_t> applySequenceRange(Module &M, FactManager &Facts,
                                       const TransformationSequence &Sequence,
                                       size_t Begin, size_t End);

// --- Helpers shared by the concrete transformations -----------------------

/// True if operand \p OperandIndex of \p Inst is a *data value* use — i.e.
/// a position where one id holding a value may be substituted with another
/// id holding an equal value. Excludes labels, callee ids, variable
/// initializers (which must be constants), and phi operands (whose
/// availability rule differs).
bool operandIsValueUse(const Instruction &Inst, size_t OperandIndex);

/// True if a fresh, non-phi, non-variable instruction may be inserted
/// immediately before position \p Index of \p Block: i.e. the position is
/// past the leading phi/variable zone and not past the terminator.
bool validInsertionPoint(const BasicBlock &Block, size_t Index);

/// Serializes an InstructionDescriptor into three named params with prefix
/// \p Prefix.
void putDescriptor(ParamMap &Params, const std::string &Prefix,
                   const InstructionDescriptor &Desc);

/// Reads a descriptor written by putDescriptor; false if absent/malformed.
bool getDescriptor(const ParamMap &Params, const std::string &Prefix,
                   InstructionDescriptor &DescOut);

/// Convenience for single-word parameters.
void putWord(ParamMap &Params, const std::string &Key, uint32_t Word);
bool getWord(const ParamMap &Params, const std::string &Key,
             uint32_t &WordOut);
bool getWords(const ParamMap &Params, const std::string &Key,
              std::vector<uint32_t> &WordsOut);

} // namespace spvfuzz

#endif // CORE_TRANSFORMATION_H
