//===- core/TransformationsControlFlow.cpp - CFG transformations ----------===//
//
// Part of the spirv-fuzz reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "core/TransformationUtil.h"
#include "core/Transformations.h"
#include "ir/ModuleBuilder.h"

#include <algorithm>
#include <unordered_set>

using namespace spvfuzz;

//===----------------------------------------------------------------------===//
// SplitBlock
//===----------------------------------------------------------------------===//

bool TransformationSplitBlock::isApplicable(const Module &M,
                                            const ModuleAnalysis &,
                                            const FactManager &) const {
  if (!idIsFreshInModule(M, FreshBlockId))
    return false;
  LocatedInstruction Loc = locateInstructionConst(M, Where);
  if (!Loc.valid())
    return false;
  const Instruction &Inst = Loc.instruction();
  // Splitting before a phi or a local variable would strand them outside
  // their mandatory block-leading zone.
  return Inst.Opcode != Op::Phi && Inst.Opcode != Op::Variable;
}

void TransformationSplitBlock::apply(Module &M, FactManager &Facts) const {
  LocatedInstruction Loc = locateInstruction(M, Where);
  assert(Loc.valid() && "precondition violated");
  Function &Func = *Loc.Func;
  Id OriginalId = Loc.Block->LabelId;

  BasicBlock NewBlock(FreshBlockId);
  NewBlock.Body.assign(Loc.Block->Body.begin() + Loc.Index,
                       Loc.Block->Body.end());
  Loc.Block->Body.erase(Loc.Block->Body.begin() + Loc.Index,
                        Loc.Block->Body.end());
  Loc.Block->Body.push_back(ModuleBuilder::makeBranch(FreshBlockId));

  // Successors' phis referred to the original block as a predecessor; the
  // edge now comes from the new block.
  for (Id Succ : NewBlock.successors())
    if (BasicBlock *SuccBlock = Func.findBlock(Succ))
      renamePhiPred(*SuccBlock, OriginalId, FreshBlockId);

  size_t InsertAt = *Func.blockIndex(OriginalId) + 1;
  Func.Blocks.insert(Func.Blocks.begin() + InsertAt, std::move(NewBlock));
  M.reserveId(FreshBlockId);

  // A suffix of a dead block is dead.
  if (Facts.blockIsDead(OriginalId))
    Facts.addDeadBlock(FreshBlockId);
}

ParamMap TransformationSplitBlock::params() const {
  ParamMap Params;
  putDescriptor(Params, "where", Where);
  putWord(Params, "fresh_block", FreshBlockId);
  return Params;
}

//===----------------------------------------------------------------------===//
// AddDeadBlock
//===----------------------------------------------------------------------===//

bool TransformationAddDeadBlock::isApplicable(const Module &M,
                                              const ModuleAnalysis &,
                                              const FactManager &) const {
  if (!idIsFreshInModule(M, FreshBlockId))
    return false;
  const Instruction *TrueConst = M.findDef(TrueConstId);
  if (!TrueConst || TrueConst->Opcode != Op::ConstantTrue)
    return false;
  auto [Func, Block] =
      const_cast<Module &>(M).findBlockDef(ExistingBlockId);
  if (!Block || !Block->hasTerminator() ||
      Block->terminator().Opcode != Op::Branch)
    return false;
  Id Succ = Block->terminator().idOperand(0);
  const BasicBlock *SuccBlock = Func->findBlock(Succ);
  if (!SuccBlock)
    return false;
  // Each phi in the successor must have an entry for the existing block,
  // which the effect duplicates for the new dead predecessor.
  for (const Instruction &Inst : SuccBlock->Body) {
    if (Inst.Opcode != Op::Phi)
      break;
    bool Found = false;
    for (size_t I = 0; I + 1 < Inst.Operands.size(); I += 2)
      if (Inst.Operands[I + 1].asId() == ExistingBlockId)
        Found = true;
    if (!Found)
      return false;
  }
  return true;
}

void TransformationAddDeadBlock::apply(Module &M, FactManager &Facts) const {
  auto [Func, Block] = M.findBlockDef(ExistingBlockId);
  assert(Block && "precondition violated");
  Id Succ = Block->terminator().idOperand(0);

  Block->Body.back() =
      ModuleBuilder::makeBranchConditional(TrueConstId, Succ, FreshBlockId);

  BasicBlock Dead(FreshBlockId);
  Dead.Body.push_back(ModuleBuilder::makeBranch(Succ));

  // Extend the successor's phis: the value flowing from the new dead
  // predecessor mirrors the one from the existing block (it is dominated by
  // the existing block, so the value is available).
  BasicBlock *SuccBlock = Func->findBlock(Succ);
  for (Instruction &Inst : SuccBlock->Body) {
    if (Inst.Opcode != Op::Phi)
      break;
    Id IncomingValue = InvalidId;
    for (size_t I = 0; I + 1 < Inst.Operands.size(); I += 2)
      if (Inst.Operands[I + 1].asId() == ExistingBlockId)
        IncomingValue = Inst.Operands[I].asId();
    assert(IncomingValue != InvalidId && "precondition violated");
    Inst.Operands.push_back(Operand::id(IncomingValue));
    Inst.Operands.push_back(Operand::id(FreshBlockId));
  }

  size_t InsertAt = *Func->blockIndex(ExistingBlockId) + 1;
  Func->Blocks.insert(Func->Blocks.begin() + InsertAt, std::move(Dead));
  M.reserveId(FreshBlockId);
  Facts.addDeadBlock(FreshBlockId);
}

ParamMap TransformationAddDeadBlock::params() const {
  ParamMap Params;
  putWord(Params, "fresh_block", FreshBlockId);
  putWord(Params, "existing_block", ExistingBlockId);
  putWord(Params, "true_const", TrueConstId);
  return Params;
}

//===----------------------------------------------------------------------===//
// ReplaceBranchWithKill
//===----------------------------------------------------------------------===//

bool TransformationReplaceBranchWithKill::isApplicable(
    const Module &M, const ModuleAnalysis &, const FactManager &Facts) const {
  if (!Facts.blockIsDead(BlockId))
    return false;
  auto [Func, Block] = M.findBlockDef(BlockId);
  (void)Func;
  if (!Block || !Block->hasTerminator())
    return false;
  Op TermOp = Block->terminator().Opcode;
  if (TermOp != Op::Branch && TermOp != Op::BranchConditional)
    return false;
  // Removing the outgoing edges restructures the CFG; guard the subtle
  // layout/phi side conditions by validating the effect on a clone.
  return applyKeepsModuleValid(*this, M, Facts);
}

void TransformationReplaceBranchWithKill::apply(Module &M,
                                                FactManager &) const {
  auto [Func, Block] = M.findBlockDef(BlockId);
  assert(Block && "precondition violated");
  std::vector<Id> Succs = Block->successors();
  std::unordered_set<Id> Unique(Succs.begin(), Succs.end());
  for (Id Succ : Unique)
    if (BasicBlock *SuccBlock = Func->findBlock(Succ))
      removePhiEntriesForPred(*SuccBlock, BlockId);
  Block->Body.back() = ModuleBuilder::makeKill();
}

ParamMap TransformationReplaceBranchWithKill::params() const {
  ParamMap Params;
  putWord(Params, "block", BlockId);
  return Params;
}

//===----------------------------------------------------------------------===//
// ReplaceBranchWithConditional
//===----------------------------------------------------------------------===//

bool TransformationReplaceBranchWithConditional::isApplicable(
    const Module &M, const ModuleAnalysis &Analysis,
    const FactManager &) const {
  auto [Func, Block] = M.findBlockDef(BlockId);
  if (!Block || !Block->hasTerminator() ||
      Block->terminator().Opcode != Op::Branch)
    return false;
  if (!M.isBoolTypeId(M.typeOfId(CondId)))
    return false;
  // The condition must be available just before the terminator.
  return Analysis.idAvailableBefore(CondId, Func->id(), BlockId,
                                    Block->Body.size() - 1);
}

void TransformationReplaceBranchWithConditional::apply(Module &M,
                                                       FactManager &) const {
  auto [Func, Block] = M.findBlockDef(BlockId);
  (void)Func;
  assert(Block && "precondition violated");
  Id Succ = Block->terminator().idOperand(0);
  // Both arms target the same successor, so the (arbitrary) condition value
  // never matters; SwapArms only changes which arm is listed first.
  (void)SwapArms;
  Block->Body.back() =
      ModuleBuilder::makeBranchConditional(CondId, Succ, Succ);
}

ParamMap TransformationReplaceBranchWithConditional::params() const {
  ParamMap Params;
  putWord(Params, "block", BlockId);
  putWord(Params, "cond", CondId);
  putWord(Params, "swap", SwapArms ? 1 : 0);
  return Params;
}

//===----------------------------------------------------------------------===//
// MoveBlockDown
//===----------------------------------------------------------------------===//

bool TransformationMoveBlockDown::isApplicable(const Module &M,
                                               const ModuleAnalysis &Analysis,
                                               const FactManager &) const {
  auto [Func, Block] = M.findBlockDef(BlockId);
  (void)Block;
  if (!Func)
    return false;
  auto Index = Func->blockIndex(BlockId);
  if (!Index || *Index == 0 || *Index + 1 >= Func->Blocks.size())
    return false;
  Id Next = Func->Blocks[*Index + 1].LabelId;
  const Cfg &Graph = Analysis.cfg(Func->id());
  const DominatorTree &Dom = Analysis.domTree(Func->id());
  // After the swap the next block precedes this one, which is only legal if
  // this block is not its immediate dominator.
  if (Graph.isReachable(Next) && Dom.immediateDominator(Next) == BlockId)
    return false;
  return true;
}

void TransformationMoveBlockDown::apply(Module &M, FactManager &) const {
  auto [Func, Block] = M.findBlockDef(BlockId);
  (void)Block;
  assert(Func && "precondition violated");
  size_t Index = *Func->blockIndex(BlockId);
  std::swap(Func->Blocks[Index], Func->Blocks[Index + 1]);
}

ParamMap TransformationMoveBlockDown::params() const {
  ParamMap Params;
  putWord(Params, "block", BlockId);
  return Params;
}

//===----------------------------------------------------------------------===//
// InvertBranchCondition
//===----------------------------------------------------------------------===//

bool TransformationInvertBranchCondition::isApplicable(
    const Module &M, const ModuleAnalysis &, const FactManager &) const {
  if (!idIsFreshInModule(M, FreshNotId))
    return false;
  auto [Func, Block] = M.findBlockDef(BlockId);
  (void)Func;
  return Block && Block->hasTerminator() &&
         Block->terminator().Opcode == Op::BranchConditional;
}

void TransformationInvertBranchCondition::apply(Module &M,
                                                FactManager &) const {
  auto [Func, Block] = M.findBlockDef(BlockId);
  (void)Func;
  assert(Block && "precondition violated");
  Instruction &Term = Block->terminator();
  Id Cond = Term.idOperand(0);
  Id TrueTarget = Term.idOperand(1);
  Id FalseTarget = Term.idOperand(2);
  Id BoolType = M.typeOfId(Cond);
  Block->Body.insert(
      Block->Body.end() - 1,
      ModuleBuilder::makeUnaryOp(Op::LogicalNot, BoolType, FreshNotId, Cond));
  Block->Body.back() =
      ModuleBuilder::makeBranchConditional(FreshNotId, FalseTarget, TrueTarget);
  M.reserveId(FreshNotId);
}

ParamMap TransformationInvertBranchCondition::params() const {
  ParamMap Params;
  putWord(Params, "block", BlockId);
  putWord(Params, "fresh_not", FreshNotId);
  return Params;
}

//===----------------------------------------------------------------------===//
// PermutePhiOperands
//===----------------------------------------------------------------------===//

bool TransformationPermutePhiOperands::isApplicable(const Module &M,
                                                    const ModuleAnalysis &,
                                                    const FactManager &) const {
  LocatedInstruction Loc = locateInstructionConst(M, Where);
  if (!Loc.valid() || Loc.instruction().Opcode != Op::Phi)
    return false;
  size_t NumPairs = Loc.instruction().Operands.size() / 2;
  if (Permutation.size() != NumPairs)
    return false;
  std::vector<bool> Seen(NumPairs, false);
  for (uint32_t P : Permutation) {
    if (P >= NumPairs || Seen[P])
      return false;
    Seen[P] = true;
  }
  return true;
}

void TransformationPermutePhiOperands::apply(Module &M, FactManager &) const {
  LocatedInstruction Loc = locateInstruction(M, Where);
  assert(Loc.valid() && "precondition violated");
  Instruction &Phi = Loc.instruction();
  std::vector<Operand> Reordered;
  Reordered.reserve(Phi.Operands.size());
  for (uint32_t P : Permutation) {
    Reordered.push_back(Phi.Operands[2 * P]);
    Reordered.push_back(Phi.Operands[2 * P + 1]);
  }
  Phi.Operands = std::move(Reordered);
}

ParamMap TransformationPermutePhiOperands::params() const {
  ParamMap Params;
  putDescriptor(Params, "where", Where);
  Params["perm"] = Permutation;
  return Params;
}

//===----------------------------------------------------------------------===//
// PropagateInstructionUp
//===----------------------------------------------------------------------===//

/// Returns the index of the first non-phi instruction of \p Block, or the
/// body size if there is none before the terminator... (the terminator
/// itself is non-phi, so this always returns a valid index for a block
/// with a terminator).
static size_t firstNonPhiIndex(const BasicBlock &Block) {
  size_t Index = 0;
  while (Index < Block.Body.size() && Block.Body[Index].Opcode == Op::Phi)
    ++Index;
  return Index;
}

bool TransformationPropagateInstructionUp::isApplicable(
    const Module &M, const ModuleAnalysis &Analysis,
    const FactManager &Facts) const {
  auto [Func, Block] = M.findBlockDef(BlockId);
  if (!Block || !Block->hasTerminator())
    return false;
  const Cfg &Graph = Analysis.cfg(Func->id());
  if (!Graph.isReachable(BlockId))
    return false;
  const std::vector<Id> &Preds = Graph.predecessors(BlockId);
  if (Preds.empty())
    return false;

  size_t InstIndex = firstNonPhiIndex(*Block);
  const Instruction &Inst = Block->Body[InstIndex];
  if (!isSideEffectFree(Inst.Opcode) || Inst.Opcode == Op::Phi ||
      Inst.Result == InvalidId)
    return false;

  // The parameter list must name each unique predecessor exactly once, with
  // fresh and distinct copy ids.
  std::unordered_set<Id> UniquePreds(Preds.begin(), Preds.end());
  if (PredFreshPairs.size() != UniquePreds.size() * 2)
    return false;
  std::vector<Id> FreshIds;
  std::unordered_set<Id> CoveredPreds;
  for (size_t I = 0; I + 1 < PredFreshPairs.size(); I += 2) {
    if (UniquePreds.count(PredFreshPairs[I]) == 0)
      return false;
    if (!CoveredPreds.insert(PredFreshPairs[I]).second)
      return false;
    FreshIds.push_back(PredFreshPairs[I + 1]);
  }
  if (!idsAreFreshAndDistinct(M, FreshIds))
    return false;

  // Every operand must either be a phi of this block (remapped per
  // predecessor) or be available at the end of each reachable predecessor.
  for (const Operand &Opnd : Inst.Operands) {
    if (!Opnd.isId())
      continue;
    const Instruction *OperandDef = M.findDef(Opnd.asId());
    bool IsLocalPhi = false;
    if (OperandDef && OperandDef->Opcode == Op::Phi) {
      const ModuleAnalysis::DefInfo *Info = Analysis.defInfo(Opnd.asId());
      IsLocalPhi = Info && Info->BlockId == BlockId;
    }
    if (IsLocalPhi)
      continue;
    for (Id Pred : UniquePreds) {
      if (!Graph.isReachable(Pred))
        continue;
      if (!Analysis.idAvailableAtEnd(Opnd.asId(), Func->id(), Pred))
        return false;
    }
  }

  // Self-loops and other corner cases: confirm on a clone.
  return applyKeepsModuleValid(*this, M, Facts);
}

void TransformationPropagateInstructionUp::apply(Module &M,
                                                 FactManager &) const {
  auto [Func, Block] = M.findBlockDef(BlockId);
  assert(Block && "precondition violated");
  size_t InstIndex = firstNonPhiIndex(*Block);
  Instruction Original = Block->Body[InstIndex];

  // Phis of this block, for operand remapping per predecessor. Copied by
  // value: inserting the copies can reallocate this very block's body when
  // the block is its own predecessor.
  std::vector<Instruction> LocalPhis(Block->Body.begin(),
                                     Block->Body.begin() + InstIndex);

  std::vector<Operand> PhiOperands;
  for (size_t PairIndex = 0; PairIndex + 1 < PredFreshPairs.size();
       PairIndex += 2) {
    Id Pred = PredFreshPairs[PairIndex];
    Id FreshId = PredFreshPairs[PairIndex + 1];

    Instruction Copy = Original;
    Copy.Result = FreshId;
    for (Operand &Op : Copy.Operands) {
      if (!Op.isId())
        continue;
      for (const Instruction &Phi : LocalPhis) {
        if (Phi.Result != Op.Word)
          continue;
        for (size_t I = 0; I + 1 < Phi.Operands.size(); I += 2)
          if (Phi.Operands[I + 1].asId() == Pred)
            Op = Operand::id(Phi.Operands[I].asId());
        break;
      }
    }
    BasicBlock *PredBlock = Func->findBlock(Pred);
    assert(PredBlock && "precondition violated");
    PredBlock->Body.insert(PredBlock->Body.end() - 1, std::move(Copy));
    M.reserveId(FreshId);

    PhiOperands.push_back(Operand::id(FreshId));
    PhiOperands.push_back(Operand::id(Pred));
  }

  // Re-find the block: inserting into predecessors does not move blocks,
  // but be defensive about vector reallocation via findBlock.
  Block = Func->findBlock(BlockId);
  InstIndex = firstNonPhiIndex(*Block);
  Block->Body[InstIndex] = Instruction(Op::Phi, Original.ResultType,
                                       Original.Result, std::move(PhiOperands));
}

ParamMap TransformationPropagateInstructionUp::params() const {
  ParamMap Params;
  putWord(Params, "block", BlockId);
  Params["pred_fresh"] = PredFreshPairs;
  return Params;
}
