//===- core/Dedup.h - Transformation-type deduplication --------*- C++ -*-===//
//
// Part of the spirv-fuzz reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The deduplication heuristic of Figure 6: given reduced test cases, pick
/// a subset to investigate such that no two picked tests share a
/// transformation type, preferring tests with fewer types. A fixed list of
/// supporting/enabler types is ignored (ğ3.5), exposed via
/// isDedupIgnoredKind.
///
//===----------------------------------------------------------------------===//

#ifndef CORE_DEDUP_H
#define CORE_DEDUP_H

#include "core/Transformation.h"

#include <set>

namespace spvfuzz {

/// types(t) from the paper: the duplicate-free set of transformation types
/// of a reduced test's sequence, minus the ğ3.5 ignore list.
std::set<TransformationKind>
dedupTypesOf(const TransformationSequence &Sequence);

/// Figure 6. \p TestTypes holds types(t) per test; returns the indices of
/// the tests recommended for investigation, in selection order. Tests
/// whose type set is empty (all types ignored) are never selected.
std::vector<size_t>
deduplicateTests(const std::vector<std::set<TransformationKind>> &TestTypes);

} // namespace spvfuzz

#endif // CORE_DEDUP_H
