//===- core/Transformation.cpp - Transformation framework -----------------===//
//
// Part of the spirv-fuzz reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "core/Transformation.h"

#include "support/BinaryIO.h"
#include "support/Telemetry.h"

#include <chrono>
#include <sstream>
#include <string_view>
#include <unordered_map>

using namespace spvfuzz;

namespace {

/// Kind names indexed by the enum's numeric value. Both lookup directions
/// are hot (dedup signature construction and sequence serialization walk
/// every transformation), so name lookup is O(1) by index and kind lookup
/// is a hash probe.
const char *const KindNames[NumTransformationKinds] = {
    "AddTypeInt",
    "AddTypeBool",
    "AddTypeVector",
    "AddTypeStruct",
    "AddTypePointer",
    "AddTypeFunction",
    "AddConstantScalar",
    "AddConstantComposite",
    "AddGlobalVariable",
    "AddLocalVariable",
    "SplitBlock",
    "AddDeadBlock",
    "ReplaceBranchWithKill",
    "ReplaceBranchWithConditional",
    "MoveBlockDown",
    "InvertBranchCondition",
    "PermutePhiOperands",
    "PropagateInstructionUp",
    "AddStore",
    "AddLoad",
    "AddSynonymViaCopyObject",
    "AddArithmeticSynonym",
    "ReplaceIdWithSynonym",
    "ReplaceIrrelevantId",
    "ReplaceConstantWithUniform",
    "SwapCommutableOperands",
    "CompositeConstruct",
    "CompositeExtract",
    "AddSynonymViaPhi",
    "ToggleDontInline",
    "AddFunction",
    "AddFunctionCall",
    "InlineFunction",
    "AddParameter",
};

static_assert(sizeof(KindNames) / sizeof(KindNames[0]) ==
                  NumTransformationKinds,
              "KindNames must cover every TransformationKind, in enum order");

} // namespace

const char *spvfuzz::transformationKindName(TransformationKind Kind) {
  size_t Index = static_cast<size_t>(Kind);
  assert(Index < NumTransformationKinds && "unknown transformation kind");
  return KindNames[Index];
}

bool spvfuzz::transformationKindFromName(const std::string &Name,
                                         TransformationKind &Out) {
  static const std::unordered_map<std::string_view, TransformationKind>
      KindsByName = [] {
        std::unordered_map<std::string_view, TransformationKind> Map;
        Map.reserve(NumTransformationKinds);
        for (size_t I = 0; I < NumTransformationKinds; ++I)
          Map.emplace(KindNames[I], static_cast<TransformationKind>(I));
        return Map;
      }();
  auto It = KindsByName.find(Name);
  if (It == KindsByName.end())
    return false;
  Out = It->second;
  return true;
}

bool spvfuzz::isDedupIgnoredKind(TransformationKind Kind) {
  switch (Kind) {
  case TransformationKind::AddTypeInt:
  case TransformationKind::AddTypeBool:
  case TransformationKind::AddTypeVector:
  case TransformationKind::AddTypeStruct:
  case TransformationKind::AddTypePointer:
  case TransformationKind::AddTypeFunction:
  case TransformationKind::AddConstantScalar:
  case TransformationKind::AddConstantComposite:
  case TransformationKind::AddGlobalVariable:
  case TransformationKind::AddLocalVariable:
  case TransformationKind::SplitBlock:
  case TransformationKind::AddFunction:
  case TransformationKind::ReplaceIdWithSynonym:
    return true;
  default:
    return false;
  }
}

std::string Transformation::serialize() const {
  std::ostringstream Out;
  Out << transformationKindName(kind());
  for (const auto &[Key, Words] : params()) {
    Out << " " << Key << "=";
    for (size_t I = 0; I != Words.size(); ++I) {
      if (I)
        Out << ",";
      Out << Words[I];
    }
  }
  return Out.str();
}

std::string spvfuzz::serializeSequence(const TransformationSequence &Sequence) {
  std::string Out;
  for (const TransformationPtr &T : Sequence) {
    Out += T->serialize();
    Out += "\n";
  }
  return Out;
}

// makeTransformation is provided by TransformationRegistry.cpp (declared in
// the header); it builds a concrete transformation from a kind and a
// parameter map.

TransformationPtr spvfuzz::deserializeTransformation(const std::string &Line,
                                                     std::string &ErrorOut) {
  std::istringstream In(Line);
  std::string KindName;
  if (!(In >> KindName)) {
    ErrorOut = "empty transformation line";
    return nullptr;
  }
  TransformationKind Kind;
  if (!transformationKindFromName(KindName, Kind)) {
    ErrorOut = "unknown transformation kind '" + KindName + "'";
    return nullptr;
  }
  ParamMap Params;
  std::string Token;
  while (In >> Token) {
    size_t Eq = Token.find('=');
    if (Eq == std::string::npos) {
      ErrorOut = "malformed parameter '" + Token + "'";
      return nullptr;
    }
    std::string Key = Token.substr(0, Eq);
    std::vector<uint32_t> Words;
    std::string Rest = Token.substr(Eq + 1);
    if (!Rest.empty()) {
      std::istringstream WordsIn(Rest);
      std::string WordText;
      while (std::getline(WordsIn, WordText, ','))
        Words.push_back(
            static_cast<uint32_t>(strtoul(WordText.c_str(), nullptr, 10)));
    }
    Params[Key] = std::move(Words);
  }
  return makeTransformation(Kind, Params, ErrorOut);
}

bool spvfuzz::deserializeSequence(const std::string &Text,
                                  TransformationSequence &SequenceOut,
                                  std::string &ErrorOut) {
  SequenceOut.clear();
  std::istringstream In(Text);
  std::string Line;
  while (std::getline(In, Line)) {
    if (Line.empty())
      continue;
    TransformationPtr T = deserializeTransformation(Line, ErrorOut);
    if (!T)
      return false;
    SequenceOut.push_back(std::move(T));
  }
  return true;
}

void spvfuzz::writeSequenceBinary(ByteWriter &W,
                                  const TransformationSequence &Sequence) {
  W.u32(static_cast<uint32_t>(Sequence.size()));
  for (const TransformationPtr &T : Sequence) {
    W.u16(static_cast<uint16_t>(T->kind()));
    ParamMap Params = T->params();
    W.u32(static_cast<uint32_t>(Params.size()));
    for (const auto &[Key, Words] : Params) {
      W.str(Key);
      W.words(Words);
    }
  }
}

bool spvfuzz::readSequenceBinary(ByteReader &R,
                                 TransformationSequence &SequenceOut) {
  SequenceOut.clear();
  uint32_t Count = 0;
  // Each transformation occupies at least kind (2) + param count (4) bytes.
  if (!R.u32(Count) || !R.checkCount(Count, 6))
    return false;
  SequenceOut.reserve(Count);
  for (uint32_t I = 0; I < Count; ++I) {
    uint16_t KindWord = 0;
    if (!R.u16(KindWord))
      return false;
    if (KindWord >= NumTransformationKinds)
      return R.failAt("unknown transformation kind " +
                      std::to_string(KindWord));
    uint32_t ParamCount = 0;
    // Each param is at least key length (4) + word count (4) bytes.
    if (!R.u32(ParamCount) || !R.checkCount(ParamCount, 8))
      return false;
    ParamMap Params;
    for (uint32_t P = 0; P < ParamCount; ++P) {
      std::string Key;
      std::vector<uint32_t> Words;
      if (!R.str(Key) || !R.words(Words))
        return false;
      Params[std::move(Key)] = std::move(Words);
    }
    std::string Error;
    TransformationPtr T = makeTransformation(
        static_cast<TransformationKind>(KindWord), Params, Error);
    if (!T)
      return R.failAt("invalid transformation: " + Error);
    SequenceOut.push_back(std::move(T));
  }
  return true;
}

std::vector<size_t>
spvfuzz::applySequence(Module &M, FactManager &Facts,
                       const TransformationSequence &Sequence) {
  return applySequenceRange(M, Facts, Sequence, 0, Sequence.size());
}

std::vector<size_t>
spvfuzz::applySequenceRange(Module &M, FactManager &Facts,
                            const TransformationSequence &Sequence,
                            size_t Begin, size_t End) {
  assert(Begin <= End && End <= Sequence.size() && "range out of bounds");
  std::vector<size_t> Applied;
  telemetry::MetricsRegistry &Metrics = telemetry::MetricsRegistry::global();
  const bool Instrumented = Metrics.enabled();
  for (size_t I = Begin; I != End; ++I) {
    ModuleAnalysis Analysis(M);
    if (!Sequence[I]->isApplicable(M, Analysis, Facts)) {
      if (Instrumented)
        Metrics.add(std::string("replay.skipped.") +
                    transformationKindName(Sequence[I]->kind()));
      continue;
    }
    if (Instrumented) {
      // Per-kind apply-time histograms feed the `report --trace` "hottest
      // transformation kinds" ranking; the clock reads stay off the
      // uninstrumented path entirely.
      auto ApplyStart = std::chrono::steady_clock::now();
      Sequence[I]->apply(M, Facts);
      double Us = std::chrono::duration<double, std::micro>(
                      std::chrono::steady_clock::now() - ApplyStart)
                      .count();
      const char *Kind = transformationKindName(Sequence[I]->kind());
      Metrics.add(std::string("replay.applications.") + Kind);
      Metrics.observe(std::string("transformation.apply_us.") + Kind, Us);
    } else {
      Sequence[I]->apply(M, Facts);
    }
    Applied.push_back(I);
  }
  return Applied;
}

bool spvfuzz::operandIsValueUse(const Instruction &Inst, size_t OperandIndex) {
  if (OperandIndex >= Inst.Operands.size() ||
      !Inst.Operands[OperandIndex].isId())
    return false;
  switch (Inst.Opcode) {
  case Op::Phi:
    return false; // availability rule differs; handled separately
  case Op::Branch:
    return false;
  case Op::BranchConditional:
    return OperandIndex == 0;
  case Op::FunctionCall:
    return OperandIndex > 0;
  case Op::Variable:
    return false; // initializers must be constants
  case Op::CompositeExtract:
    return OperandIndex == 0;
  default:
    return true;
  }
}

bool spvfuzz::validInsertionPoint(const BasicBlock &Block, size_t Index) {
  if (Index > Block.Body.size())
    return false;
  // Cannot insert past the terminator (inserting *before* it is fine).
  if (Index == Block.Body.size())
    return false;
  // Cannot insert into the leading phi/variable zone.
  return Index >= Block.firstInsertionIndex();
}

void spvfuzz::putDescriptor(ParamMap &Params, const std::string &Prefix,
                            const InstructionDescriptor &Desc) {
  Params[Prefix + "_base"] = {Desc.Base};
  Params[Prefix + "_op"] = {static_cast<uint32_t>(Desc.TargetOpcode)};
  Params[Prefix + "_skip"] = {Desc.Skip};
}

bool spvfuzz::getDescriptor(const ParamMap &Params, const std::string &Prefix,
                            InstructionDescriptor &DescOut) {
  uint32_t Base, OpWord, Skip;
  if (!getWord(Params, Prefix + "_base", Base) ||
      !getWord(Params, Prefix + "_op", OpWord) ||
      !getWord(Params, Prefix + "_skip", Skip))
    return false;
  DescOut.Base = Base;
  DescOut.TargetOpcode = static_cast<Op>(OpWord);
  DescOut.Skip = Skip;
  return true;
}

void spvfuzz::putWord(ParamMap &Params, const std::string &Key,
                      uint32_t Word) {
  Params[Key] = {Word};
}

bool spvfuzz::getWord(const ParamMap &Params, const std::string &Key,
                      uint32_t &WordOut) {
  auto It = Params.find(Key);
  if (It == Params.end() || It->second.size() != 1)
    return false;
  WordOut = It->second[0];
  return true;
}

bool spvfuzz::getWords(const ParamMap &Params, const std::string &Key,
                       std::vector<uint32_t> &WordsOut) {
  auto It = Params.find(Key);
  if (It == Params.end())
    return false;
  WordsOut = It->second;
  return true;
}
