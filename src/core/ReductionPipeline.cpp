//===- core/ReductionPipeline.cpp - Staged reduction pipeline --------------===//
//
// Part of the spirv-fuzz reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "core/ReductionPipeline.h"

#include "analysis/Validator.h"
#include "core/FunctionShrinker.h"
#include "core/ReplayCache.h"
#include "support/ModuleHash.h"
#include "support/Telemetry.h"
#include "support/ThreadPool.h"
#include "support/Trace.h"

#include <algorithm>
#include <future>
#include <numeric>
#include <set>
#include <unordered_map>

using namespace spvfuzz;

//===----------------------------------------------------------------------===//
// Candidate ordering
//===----------------------------------------------------------------------===//

const char *spvfuzz::candidateOrderName(CandidateOrder Order) {
  switch (Order) {
  case CandidateOrder::Paper:
    return "paper";
  case CandidateOrder::Learned:
    return "learned";
  }
  return "paper";
}

bool spvfuzz::candidateOrderFromName(const std::string &Name,
                                     CandidateOrder &Out) {
  if (Name == "paper") {
    Out = CandidateOrder::Paper;
    return true;
  }
  if (Name == "learned") {
    Out = CandidateOrder::Learned;
    return true;
  }
  return false;
}

void ProbabilisticModel::recordOutcome(const TransformationSequence &Current,
                                       size_t Start, size_t End,
                                       bool Removed) {
  for (size_t I = Start; I < End && I < Current.size(); ++I) {
    KindStats &S = Stats[static_cast<size_t>(Current[I]->kind())];
    ++S.Attempts;
    if (Removed)
      ++S.Removed;
  }
  ++Updates;
}

double ProbabilisticModel::chunkScore(const TransformationSequence &Current,
                                      size_t Start, size_t End) const {
  // Mean Laplace-smoothed removal rate of the chunk's kinds. The (+1, +2)
  // smoothing makes every untrained kind score exactly 0.5, so a fresh
  // model ties every chunk and the stable sort preserves the paper order.
  double Sum = 0;
  size_t Count = 0;
  for (size_t I = Start; I < End && I < Current.size(); ++I) {
    const KindStats &S = Stats[static_cast<size_t>(Current[I]->kind())];
    Sum += static_cast<double>(S.Removed + 1) /
           static_cast<double>(S.Attempts + 2);
    ++Count;
  }
  return Count ? Sum / static_cast<double>(Count) : 0.5;
}

uint64_t ProbabilisticModel::tieBreak(size_t Start, size_t End) const {
  if (Seed == 0)
    return 0;
  // splitmix64-style mix of (Seed, Start, End); any fixed bijection works,
  // it only has to be deterministic.
  uint64_t X = Seed ^ (0x9e3779b97f4a7c15ull * (Start + 1)) ^
               (0xbf58476d1ce4e5b9ull * (End + 1));
  X ^= X >> 30;
  X *= 0xbf58476d1ce4e5b9ull;
  X ^= X >> 27;
  X *= 0x94d049bb133111ebull;
  X ^= X >> 31;
  return X;
}

//===----------------------------------------------------------------------===//
// Sequence-reduction stage
//===----------------------------------------------------------------------===//

namespace {

/// One chunk-removal candidate within a scan: the current sequence with
/// [Start, End) deleted. The candidate shares the prefix [0, Start) with
/// the current sequence, which is what lets the ReplayCache resume from a
/// snapshot instead of replaying from scratch.
struct ChunkCandidate {
  size_t Start = 0;
  size_t End = 0;
  TransformationSequence Seq;
  bool Interesting = false;
  /// Structural hash of the replayed variant — the decision-memo key.
  uint64_t Hash = 0;
};

/// A (Start, End) chunk range plus its (learned-order) sort keys.
struct ChunkRange {
  size_t Start = 0;
  size_t End = 0;
  double Score = 0;
  uint64_t Tie = 0;
};

void buildCandidate(const TransformationSequence &Current, size_t Start,
                    size_t End, TransformationSequence &Out) {
  Out.clear();
  Out.reserve(Current.size() - (End - Start));
  Out.insert(Out.end(), Current.begin(), Current.begin() + Start);
  Out.insert(Out.end(), Current.begin() + End, Current.end());
}

} // namespace

ReduceResult ReductionPipeline::reduceSequenceStage(
    const Module &Original, const ShaderInput &Input,
    const TransformationSequence &Sequence,
    const InterestingnessTest &Test) const {
  ReduceResult Result;
  TransformationSequence Current = Sequence;
  telemetry::MetricsRegistry &Metrics = telemetry::MetricsRegistry::global();
  telemetry::TraceSpan Span("reduce.sequence");
  Span.note({"initial_length", Sequence.size()});
  if (Metrics.enabled())
    Metrics.add("reducer.reductions");

  const bool Learned = Plan.Order == CandidateOrder::Learned;
  ProbabilisticModel Model(Plan.ModelSeed);

  ReplayCache Cache(Original, Input, Plan.SnapshotInterval,
                    Plan.SnapshotBudgetBytes);

  // Learned mode's decision memo: replayed-variant hash -> verdict. The
  // interestingness test is a pure function of the variant (the EvalCache
  // contract), so a candidate whose module was already decided needs no
  // new oracle consultation — that decision is free. Entries are inserted
  // only at the serial consumption points, in decision order, so the memo
  // (like the model) is identical at any job count; it is insert-only,
  // which lets workers read it lock-free while no batch is being consumed.
  // Seeded with the current sequence's own module: removing transformations
  // that replay as no-ops yields a byte-identical variant, which must be
  // interesting for the same reason the current sequence is.
  std::unordered_map<uint64_t, bool> Memo;
  if (Learned) {
    Module Init;
    FactManager InitFacts;
    Cache.replay(Sequence, 0, Init, InitFacts);
    Memo.emplace(hashModule(Init), true);
  }

  // Candidates per speculative batch. 1 (no pool) degenerates to the plain
  // serial algorithm; with a pool, one batch of W candidates is evaluated
  // concurrently and then consumed in scan order, so the accept/reject
  // decision sequence — and therefore Checks and the minimized result — is
  // identical to the serial run.
  const size_t BatchWidth =
      Plan.Pool ? std::max<size_t>(Plan.Pool->workerCount(), 1) : 1;

  // Evaluates one candidate: incremental replay from the deepest snapshot
  // at or below the candidate's shared prefix, then the interestingness
  // test. Safe to run concurrently with other evaluations (Cache.replay is
  // read-only; the test must be thread-safe per the header contract).
  auto Evaluate = [&Cache, &Test, &Memo, Learned](ChunkCandidate &C) {
    Module Variant;
    FactManager Facts;
    Cache.replay(C.Seq, C.Start, Variant, Facts);
    if (Learned) {
      // A memo hit here skips the expensive test; the memo is frozen
      // while workers run (inserts happen only between batches), and hits
      // are purely a wall-time saving — check accounting is decided
      // against the live memo at the serial consumption point below.
      C.Hash = hashModule(Variant);
      auto It = Memo.find(C.Hash);
      if (It != Memo.end()) {
        C.Interesting = It->second;
        return;
      }
    }
    C.Interesting = Test(Variant, Facts);
  };

  size_t ChunkSize = Current.size() / 2;
  if (ChunkSize == 0)
    ChunkSize = 1;

  std::vector<ChunkCandidate> Batch(BatchWidth);
  std::vector<ChunkRange> Ranges;

  while (true) {
    telemetry::Tracer::global().event(
        "reduce.chunk", {{"chunk_size", ChunkSize},
                         {"sequence_length", Current.size()},
                         {"checks", Result.Checks}});
    bool RemovedAny = false;

    // Enumerate the scan's chunk ranges in paper order — backwards from
    // the last transformation, the leading chunk possibly smaller than
    // ChunkSize — then optionally stable-sort them by expected payoff.
    // Equal scores keep the paper order, so the first scan (untrained
    // model) and the whole Paper mode reproduce the fixed scan exactly.
    Ranges.clear();
    for (size_t End = Current.size(); End > 0;) {
      ChunkRange R;
      R.End = End;
      R.Start = End >= ChunkSize ? End - ChunkSize : 0;
      Ranges.push_back(R);
      End = R.Start;
    }
    if (Learned) {
      for (ChunkRange &R : Ranges) {
        R.Score = Model.chunkScore(Current, R.Start, R.End);
        R.Tie = Model.tieBreak(R.Start, R.End);
      }
      std::vector<ChunkRange> Sorted = Ranges;
      std::stable_sort(Sorted.begin(), Sorted.end(),
                       [](const ChunkRange &A, const ChunkRange &B) {
                         if (A.Score != B.Score)
                           return A.Score > B.Score;
                         return A.Tie < B.Tie;
                       });
      bool Reordered = false;
      for (size_t I = 0; I != Ranges.size(); ++I)
        if (Sorted[I].Start != Ranges[I].Start ||
            Sorted[I].End != Ranges[I].End)
          Reordered = true;
      if (Reordered && Metrics.enabled())
        Metrics.add("reducer.model.reorders");
      Ranges = std::move(Sorted);
    }

    size_t NextRange = 0;
    while (NextRange < Ranges.size()) {
      // Assemble up to BatchWidth candidates in scan order.
      size_t BatchSize = 0;
      size_t DeepestPrefix = 0;
      while (BatchSize < BatchWidth &&
             NextRange + BatchSize < Ranges.size()) {
        const ChunkRange &R = Ranges[NextRange + BatchSize];
        ChunkCandidate &C = Batch[BatchSize++];
        C.Start = R.Start;
        C.End = R.End;
        buildCandidate(Current, C.Start, C.End, C.Seq);
        C.Interesting = false;
        DeepestPrefix = std::max(DeepestPrefix, C.Start);
      }
      // Snapshots need only reach the deepest shared prefix of this batch.
      Cache.prepare(Current, DeepestPrefix);

      if (BatchSize > 1) {
        // Barrier: every future must be collected before Current or the
        // cache is mutated below — the jobs read both through references.
        std::vector<std::future<void>> Futures;
        Futures.reserve(BatchSize);
        for (size_t I = 0; I != BatchSize; ++I)
          Futures.push_back(
              Plan.Pool->submit([&Evaluate, &C = Batch[I]] { Evaluate(C); }));
        for (std::future<void> &F : Futures)
          F.get();
      } else {
        Evaluate(Batch[0]);
      }

      // Consume in scan order. Checks counts only consumed candidates, so
      // it matches the serial algorithm exactly; evaluated-but-discarded
      // candidates are accounted separately as speculative waste. Model
      // updates happen here — at the serial decision points, in decision
      // order — which is what keeps the learned order job-count-invariant.
      size_t Consumed = 0;
      bool Accepted = false;
      size_t AcceptedStart = 0;
      size_t AcceptedEnd = 0;
      for (; Consumed != BatchSize; ++Consumed) {
        ChunkCandidate &C = Batch[Consumed];
        // In learned mode a live-memo hit reuses the earlier verdict for
        // the byte-identical module and the decision consumes no check;
        // only misses consult the oracle. A worker-side skip above is
        // always a hit here (the memo is insert-only), so an uncounted
        // decision at jobs=1 never ran the test either.
        bool Counted = true;
        if (Learned) {
          auto It = Memo.find(C.Hash);
          if (It != Memo.end()) {
            C.Interesting = It->second;
            Counted = false;
            if (Metrics.enabled())
              Metrics.add("reducer.model.memo_hits");
          } else {
            Memo.emplace(C.Hash, C.Interesting);
          }
        }
        if (Counted) {
          ++Result.Checks;
          if (Metrics.enabled())
            Metrics.add("reducer.checks");
        }
        if (Learned) {
          Model.recordOutcome(Current, C.Start, C.End, C.Interesting);
          if (Metrics.enabled())
            Metrics.add("reducer.model.updates");
        }
        if (C.Interesting) {
          AcceptedStart = C.Start;
          AcceptedEnd = C.End;
          Current = std::move(C.Seq);
          Cache.invalidateBeyond(C.Start);
          RemovedAny = true;
          Accepted = true;
          ++Consumed;
          break;
        }
      }
      NextRange += Consumed;
      if (Accepted) {
        if (Consumed != BatchSize) {
          // The rest of the batch was speculated against the
          // pre-acceptance sequence; their results no longer answer the
          // question the serial scan would ask next. Discard and continue
          // from the acceptance point.
          size_t Wasted = BatchSize - Consumed;
          Result.SpeculativeChecks += Wasted;
          if (Metrics.enabled())
            Metrics.add("reducer.speculative_checks", Wasted);
        }
        // Remap the pending ranges onto the shortened sequence. The
        // enumeration partitions the scan, and remapping preserves
        // disjointness, so a pending range is either entirely inside the
        // untouched prefix (kept as-is) or entirely past the removed
        // chunk (shifted down by its width) — it never straddles the
        // removal. In paper order the scan is strictly decreasing, so
        // everything pending is prefix-side and this is exactly the fixed
        // scan's continuation; in learned order the remap keeps the
        // sorted-ahead candidates alive instead of forfeiting them to the
        // next pass's re-enumeration.
        const size_t Width = AcceptedEnd - AcceptedStart;
        size_t Keep = NextRange;
        for (size_t I = NextRange; I != Ranges.size(); ++I) {
          ChunkRange R = Ranges[I];
          if (R.End <= AcceptedStart) {
            Ranges[Keep++] = R;
          } else if (R.Start >= AcceptedEnd) {
            R.Start -= Width;
            R.End -= Width;
            Ranges[Keep++] = R;
          }
        }
        Ranges.resize(Keep);
      }
    }
    if (RemovedAny)
      continue; // retry at the same chunk size until a scan removes nothing
    if (ChunkSize == 1)
      break; // 1-minimal
    ChunkSize /= 2;
  }

  // The cache only ever holds snapshots of still-valid prefixes of Current,
  // so the final replay is incremental too.
  Result.ReducedVariant = Module();
  Cache.replay(Current, Current.size(), Result.ReducedVariant,
               Result.ReducedFacts);
  Result.Minimized = std::move(Current);
  if (Metrics.enabled()) {
    Metrics.observe("reducer.checks_per_reduction",
                    static_cast<double>(Result.Checks));
    Metrics.observe("reducer.minimized_length",
                    static_cast<double>(Result.Minimized.size()));
  }
  Span.note({"checks", Result.Checks});
  Span.note({"minimized_length", Result.Minimized.size()});
  return Result;
}

//===----------------------------------------------------------------------===//
// Post-reduction passes
//===----------------------------------------------------------------------===//

namespace {

/// Result ids used anywhere in \p M (operands and result types of globals,
/// function defs, parameters and body instructions, plus the entry point).
std::set<Id> usedIdsOf(const Module &M) {
  std::set<Id> Used;
  auto Mark = [&Used](Id TheId) { Used.insert(TheId); };
  for (const Instruction &Inst : M.GlobalInsts)
    Inst.forEachUsedId(Mark);
  for (const Function &F : M.Functions) {
    F.Def.forEachUsedId(Mark);
    for (const Instruction &Param : F.Params)
      Param.forEachUsedId(Mark);
    for (const BasicBlock &B : F.Blocks)
      for (const Instruction &Inst : B.Body)
        Inst.forEachUsedId(Mark);
  }
  Used.insert(M.EntryPointId);
  return Used;
}

/// Removes dead side-effect-free body instructions: has a result, the
/// opcode is a dead-code-elimination candidate, and the result is used
/// nowhere in the module. Chains (a dead instruction keeping another
/// alive) resolve over the pipeline's fixpoint rounds.
class StripUnusedDefsPass : public ReductionPass {
public:
  const char *name() const override { return "StripUnusedDefs"; }

  size_t countUnits(const Module &M) const override {
    size_t Count = 0;
    forEachUnit(M, [&Count](size_t, size_t, size_t) { ++Count; });
    return Count;
  }

  Module withUnitsRemoved(const Module &M,
                          const std::vector<size_t> &UnitIndices)
      const override {
    // Collect unit positions in enumeration order, then erase in reverse
    // so earlier indices stay valid.
    std::vector<std::array<size_t, 3>> Positions;
    forEachUnit(M, [&Positions](size_t F, size_t B, size_t I) {
      Positions.push_back({F, B, I});
    });
    Module Out = M;
    for (size_t U = UnitIndices.size(); U-- > 0;) {
      const std::array<size_t, 3> &P = Positions[UnitIndices[U]];
      std::vector<Instruction> &Body = Out.Functions[P[0]].Blocks[P[1]].Body;
      Body.erase(Body.begin() + static_cast<ptrdiff_t>(P[2]));
    }
    return Out;
  }

private:
  template <typename Callable>
  static void forEachUnit(const Module &M, Callable Action) {
    std::set<Id> Used = usedIdsOf(M);
    for (size_t F = 0; F != M.Functions.size(); ++F)
      for (size_t B = 0; B != M.Functions[F].Blocks.size(); ++B) {
        const std::vector<Instruction> &Body =
            M.Functions[F].Blocks[B].Body;
        for (size_t I = 0; I != Body.size(); ++I) {
          const Instruction &Inst = Body[I];
          if (Inst.Result == InvalidId || isTerminator(Inst.Opcode) ||
              !isSideEffectFree(Inst.Opcode))
            continue;
          if (Used.count(Inst.Result))
            continue;
          Action(F, B, I);
        }
      }
  }
};

/// Removes module-level declarations (types, constants, variables) that
/// are transitively unreferenced from the functions and the Uniform/Output
/// interface. Uniform and Output variables are the reference program's
/// observable surface (input bindings and reported results) and are never
/// removed.
class StripUnusedTypesAndGlobalsPass : public ReductionPass {
public:
  const char *name() const override { return "StripUnusedTypesAndGlobals"; }

  size_t countUnits(const Module &M) const override {
    return deadGlobals(M).size();
  }

  Module withUnitsRemoved(const Module &M,
                          const std::vector<size_t> &UnitIndices)
      const override {
    std::vector<size_t> Dead = deadGlobals(M);
    Module Out = M;
    for (size_t U = UnitIndices.size(); U-- > 0;)
      Out.GlobalInsts.erase(Out.GlobalInsts.begin() +
                            static_cast<ptrdiff_t>(Dead[UnitIndices[U]]));
    return Out;
  }

private:
  static bool isInterfaceVariable(const Instruction &Inst) {
    if (Inst.Opcode != Op::Variable)
      return false;
    auto SC = static_cast<StorageClass>(Inst.literalOperand(0));
    return SC == StorageClass::Uniform || SC == StorageClass::Output;
  }

  /// Indices (into GlobalInsts) of removable globals, in declaration
  /// order. Liveness roots are every id used from function code and the
  /// interface variables; because globals only reference earlier globals,
  /// one reverse scan computes the transitive closure.
  static std::vector<size_t> deadGlobals(const Module &M) {
    std::set<Id> Live;
    auto Mark = [&Live](Id TheId) { Live.insert(TheId); };
    for (const Function &F : M.Functions) {
      F.Def.forEachUsedId(Mark);
      for (const Instruction &Param : F.Params)
        Param.forEachUsedId(Mark);
      for (const BasicBlock &B : F.Blocks)
        for (const Instruction &Inst : B.Body)
          Inst.forEachUsedId(Mark);
    }
    for (size_t I = M.GlobalInsts.size(); I-- > 0;) {
      const Instruction &Inst = M.GlobalInsts[I];
      if (isInterfaceVariable(Inst) || Live.count(Inst.Result))
        Inst.forEachUsedId(Mark);
    }
    std::vector<size_t> Dead;
    for (size_t I = 0; I != M.GlobalInsts.size(); ++I) {
      const Instruction &Inst = M.GlobalInsts[I];
      if (!isInterfaceVariable(Inst) && !Live.count(Inst.Result))
        Dead.push_back(I);
    }
    return Dead;
  }
};

/// Removes functions unreachable from the entry point via FunctionCall —
/// the generator's helper functions frequently end up uncalled. Computed
/// transitively, so whole dead call chains go in one candidate.
class SimplifyReferenceProgramPass : public ReductionPass {
public:
  const char *name() const override { return "SimplifyReferenceProgram"; }

  size_t countUnits(const Module &M) const override {
    return deadFunctions(M).size();
  }

  Module withUnitsRemoved(const Module &M,
                          const std::vector<size_t> &UnitIndices)
      const override {
    std::vector<size_t> Dead = deadFunctions(M);
    Module Out = M;
    for (size_t U = UnitIndices.size(); U-- > 0;)
      Out.Functions.erase(Out.Functions.begin() +
                          static_cast<ptrdiff_t>(Dead[UnitIndices[U]]));
    return Out;
  }

private:
  /// Indices (into Functions) of functions unreachable from the entry
  /// point, in declaration order.
  static std::vector<size_t> deadFunctions(const Module &M) {
    std::set<Id> Reachable;
    std::vector<Id> Worklist;
    Reachable.insert(M.EntryPointId);
    Worklist.push_back(M.EntryPointId);
    while (!Worklist.empty()) {
      Id FuncId = Worklist.back();
      Worklist.pop_back();
      const Function *F = M.findFunction(FuncId);
      if (!F)
        continue;
      for (const BasicBlock &B : F->Blocks)
        for (const Instruction &Inst : B.Body)
          if (Inst.Opcode == Op::FunctionCall &&
              Reachable.insert(Inst.idOperand(0)).second)
            Worklist.push_back(Inst.idOperand(0));
    }
    std::vector<size_t> Dead;
    for (size_t I = 0; I != M.Functions.size(); ++I)
      if (!Reachable.count(M.Functions[I].id()))
        Dead.push_back(I);
    return Dead;
  }
};

} // namespace

const std::vector<ReductionPassPtr> &spvfuzz::standardPostReducePasses() {
  static const std::vector<ReductionPassPtr> Passes = {
      std::make_shared<StripUnusedDefsPass>(),
      std::make_shared<StripUnusedTypesAndGlobalsPass>(),
      std::make_shared<SimplifyReferenceProgramPass>(),
  };
  return Passes;
}

ReductionPassPtr spvfuzz::findPostReducePass(const std::string &Name) {
  for (const ReductionPassPtr &Pass : standardPostReducePasses())
    if (Name == Pass->name())
      return Pass;
  return nullptr;
}

void ReductionPipeline::postReduceStage(const Module &Original,
                                        const ShaderInput &Input,
                                        const InterestingnessTest &Test,
                                        ReduceResult &Result) const {
  telemetry::MetricsRegistry &Metrics = telemetry::MetricsRegistry::global();
  telemetry::TraceSpan Span("reduce.post");

  std::vector<ReductionPassPtr> Passes;
  if (Plan.PostPasses.empty()) {
    Passes = standardPostReducePasses();
  } else {
    for (const std::string &Name : Plan.PostPasses)
      if (ReductionPassPtr Pass = findPostReducePass(Name))
        Passes.push_back(std::move(Pass));
  }
  Result.PostStats.clear();
  Result.PostStats.resize(Passes.size());
  for (size_t P = 0; P != Passes.size(); ++P)
    Result.PostStats[P].Pass = Passes[P]->name();

  Module Ref = Original;
  bool RefChanged = false;

  // Tries one candidate: validate (free — above-the-validator layering;
  // rejection costs no check), replay the minimized sequence onto it
  // (Definition 2.5 skips transformations whose preconditions the removal
  // broke), then re-check interestingness. Strictly serial, so the post
  // stage is trivially job-count-invariant.
  auto TryCandidate = [&](const ReductionPass &Pass, PostReducePassStats &Stat,
                          const std::vector<size_t> &Units) {
    Module Candidate = Pass.withUnitsRemoved(Ref, Units);
    ++Stat.Attempted;
    if (!validateModule(Candidate).empty())
      return false;
    Module Variant = Candidate;
    FactManager Facts;
    Facts.setKnownInput(Input);
    applySequence(Variant, Facts, Result.Minimized);
    ++Stat.Checks;
    ++Result.Checks;
    if (Metrics.enabled())
      Metrics.add("reducer.postreduce.checks");
    if (!Test(Variant, Facts))
      return false;
    Ref = std::move(Candidate);
    ++Stat.Accepted;
    if (Metrics.enabled())
      Metrics.add("reducer.postreduce.accepted");
    return true;
  };

  // Pass-list fixpoint: each round runs every pass to its own local
  // fixpoint (all units at once first, then greedy single units); rounds
  // repeat while anything changed, so one pass's removals (an uncalled
  // function, say) expose the next pass's units (its orphaned constants).
  // Every acceptance strictly shrinks the module, so this terminates; the
  // round bound is a belt-and-braces backstop.
  const size_t MaxRounds = 64;
  for (size_t Round = 0; Round != MaxRounds; ++Round) {
    bool RoundChanged = false;
    for (size_t P = 0; P != Passes.size(); ++P) {
      const ReductionPass &Pass = *Passes[P];
      PostReducePassStats &Stat = Result.PostStats[P];
      while (true) {
        const size_t N = Pass.countUnits(Ref);
        if (N == 0)
          break;
        bool ChangedHere = false;
        if (N > 1) {
          std::vector<size_t> All(N);
          std::iota(All.begin(), All.end(), size_t{0});
          ChangedHere = TryCandidate(Pass, Stat, All);
        }
        for (size_t I = N; !ChangedHere && I-- > 0;)
          ChangedHere = TryCandidate(Pass, Stat, {I});
        if (!ChangedHere)
          break;
        RoundChanged = true;
        RefChanged = true;
      }
    }
    if (!RoundChanged)
      break;
  }

  Result.ReducedOriginal = std::move(Ref);
  if (RefChanged) {
    // Re-derive the reduced variant from the post-reduced reference: the
    // reproducer the pipeline hands back is (ReducedOriginal, Minimized).
    Result.ReducedVariant = Result.ReducedOriginal;
    Result.ReducedFacts = FactManager();
    Result.ReducedFacts.setKnownInput(Input);
    applySequence(Result.ReducedVariant, Result.ReducedFacts,
                  Result.Minimized);
  }
  Span.note({"checks", Result.Checks});
  Span.note({"reference_instructions",
             Result.ReducedOriginal.instructionCount()});
}

//===----------------------------------------------------------------------===//
// Pipeline driver
//===----------------------------------------------------------------------===//

ReduceResult ReductionPipeline::run(const Module &Original,
                                    const ShaderInput &Input,
                                    const TransformationSequence &Sequence,
                                    const InterestingnessTest &Test) const {
  ReduceResult Result = reduceSequenceStage(Original, Input, Sequence, Test);

  if (Plan.ShrinkFunctions) {
    // The §3.4 spirv-reduce step: shrink any surviving AddFunction
    // payloads. Check accounting folds into the pipeline totals.
    bool HasAddFunction = false;
    for (const TransformationPtr &Tr : Result.Minimized)
      if (Tr->kind() == TransformationKind::AddFunction)
        HasAddFunction = true;
    if (HasAddFunction) {
      size_t PriorChecks = Result.Checks;
      size_t PriorSpeculative = Result.SpeculativeChecks;
      Result = shrinkAddFunctions(Original, Input, Result.Minimized, Test);
      Result.Checks += PriorChecks;
      Result.SpeculativeChecks += PriorSpeculative;
    }
  }

  if (Plan.PostReduce)
    postReduceStage(Original, Input, Test, Result);

  return Result;
}
