//===- core/ReplayCache.cpp - Prefix snapshots for incremental replay ------===//
//
// Part of the spirv-fuzz reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "core/ReplayCache.h"

#include "support/Telemetry.h"

#include <algorithm>

using namespace spvfuzz;

namespace {

size_t approxInstructionBytes(const Instruction &Inst) {
  return sizeof(Instruction) + Inst.Operands.size() * sizeof(Operand);
}

/// FactManager's containers are private; cost a snapshot's facts at a flat
/// allowance. Budgets are approximate by design, and module state dwarfs
/// fact state on every real reduction.
constexpr size_t FactsBytesAllowance = 4096;

} // namespace

size_t spvfuzz::approxModuleBytes(const Module &M) {
  size_t Bytes = sizeof(Module);
  for (const Instruction &Inst : M.GlobalInsts)
    Bytes += approxInstructionBytes(Inst);
  for (const Function &Func : M.Functions) {
    Bytes += sizeof(Function) + approxInstructionBytes(Func.Def);
    for (const Instruction &Param : Func.Params)
      Bytes += approxInstructionBytes(Param);
    for (const BasicBlock &Block : Func.Blocks) {
      Bytes += sizeof(BasicBlock);
      for (const Instruction &Inst : Block.Body)
        Bytes += approxInstructionBytes(Inst);
    }
  }
  return Bytes;
}

ReplayCache::ReplayCache(const Module &Original, const ShaderInput &Input,
                         size_t Interval, size_t BudgetBytes)
    : Original(Original), Input(Input), EffectiveInterval(Interval),
      BudgetBytes(BudgetBytes) {}

size_t ReplayCache::deepestAtOrBelow(size_t PrefixLen) const {
  size_t Found = SIZE_MAX;
  for (size_t I = 0; I < Snapshots.size() && Snapshots[I].PrefixLen <= PrefixLen;
       ++I)
    Found = I;
  return Found;
}

void ReplayCache::prepare(const TransformationSequence &Current,
                          size_t PrefixLen) {
  if (EffectiveInterval == 0 || PrefixLen < EffectiveInterval)
    return;
  // Resume from the deepest snapshot we already have.
  size_t Base = deepestAtOrBelow(PrefixLen);
  size_t From = 0;
  Module M;
  FactManager Facts;
  if (Base == SIZE_MAX) {
    M = Original;
    Facts.setKnownInput(Input);
  } else {
    // Everything up to the next interval multiple past this snapshot is
    // already covered; nothing to do if that multiple exceeds PrefixLen.
    From = Snapshots[Base].PrefixLen;
    if (From + EffectiveInterval > PrefixLen)
      return;
    M = Snapshots[Base].M;
    Facts = Snapshots[Base].Facts;
  }
  telemetry::MetricsRegistry &Metrics = telemetry::MetricsRegistry::global();
  size_t Next = (From / EffectiveInterval + 1) * EffectiveInterval;
  while (Next <= PrefixLen) {
    applySequenceRange(M, Facts, Current, From, Next);
    From = Next;
    Snapshot Snap;
    Snap.PrefixLen = Next;
    Snap.M = M;
    Snap.Facts = Facts;
    Snap.Bytes = approxModuleBytes(Snap.M) + FactsBytesAllowance;
    BytesUsed += Snap.Bytes;
    Snapshots.push_back(std::move(Snap));
    if (Metrics.enabled())
      Metrics.add("replaycache.snapshots_created");
    // Re-derive the stride: thinning may have doubled the interval.
    thinToBudget();
    Next = (From / EffectiveInterval + 1) * EffectiveInterval;
    if (Next <= From)
      break; // overflow paranoia; cannot happen with sane intervals
  }
}

void ReplayCache::invalidateBeyond(size_t PrefixLen) {
  while (!Snapshots.empty() && Snapshots.back().PrefixLen > PrefixLen) {
    BytesUsed -= Snapshots.back().Bytes;
    Snapshots.pop_back();
  }
}

void ReplayCache::thinToBudget() {
  telemetry::MetricsRegistry &Metrics = telemetry::MetricsRegistry::global();
  while (BytesUsed > BudgetBytes && Snapshots.size() > 1) {
    // Keep every other snapshot (the deeper of each pair, so the most
    // recently built prefixes survive) and double the stride for future
    // snapshots.
    std::vector<Snapshot> Kept;
    Kept.reserve((Snapshots.size() + 1) / 2);
    size_t KeptBytes = 0;
    for (size_t I = Snapshots.size(); I-- > 0;) {
      if ((Snapshots.size() - 1 - I) % 2 == 0) {
        KeptBytes += Snapshots[I].Bytes;
        Kept.push_back(std::move(Snapshots[I]));
      } else if (Metrics.enabled()) {
        Metrics.add("replaycache.evictions");
      }
    }
    std::reverse(Kept.begin(), Kept.end());
    Snapshots = std::move(Kept);
    BytesUsed = KeptBytes;
    EffectiveInterval *= 2;
  }
}

void ReplayCache::replay(const TransformationSequence &Candidate,
                         size_t SharedPrefixLen, Module &MOut,
                         FactManager &FactsOut) const {
  size_t Base = deepestAtOrBelow(SharedPrefixLen);
  size_t From = 0;
  if (Base == SIZE_MAX) {
    MOut = Original;
    FactsOut = FactManager();
    FactsOut.setKnownInput(Input);
  } else {
    MOut = Snapshots[Base].M;
    FactsOut = Snapshots[Base].Facts;
    From = Snapshots[Base].PrefixLen;
  }
  applySequenceRange(MOut, FactsOut, Candidate, From, Candidate.size());
  telemetry::MetricsRegistry &Metrics = telemetry::MetricsRegistry::global();
  if (Metrics.enabled()) {
    Metrics.add("replaycache.replays");
    Metrics.add("replaycache.transformations_skipped", From);
  }
}
