//===- core/Reducer.h - Delta-debugging sequence reduction -----*- C++ -*-===//
//
// Part of the spirv-fuzz reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The "almost for free" test-case reducer (ğ3.4): delta debugging over the
/// transformation sequence. Because transformations whose preconditions
/// fail are skipped during replay (Definition 2.5) and effects preserve
/// semantics, any subsequence yields a valid, equivalent variant, so the
/// reducer may try arbitrary chunks without external UB analysis.
///
/// The algorithm matches the paper exactly: chunk size starts at n/2,
/// chunks are considered from the last transformation backwards, a chunk
/// is eliminated if the interestingness test still passes without it, and
/// the chunk size is halved when no chunk of the current size can be
/// removed. Reduction terminates at a 1-minimal sequence.
///
//===----------------------------------------------------------------------===//

#ifndef CORE_REDUCER_H
#define CORE_REDUCER_H

#include "core/Transformation.h"

#include <functional>

namespace spvfuzz {

class ThreadPool;

/// The interestingness test: returns true iff the variant produced by a
/// candidate subsequence still exhibits the bug (gfauto's generated script
/// in the paper's pipeline). When a ThreadPool is supplied via
/// ReduceOptions, the test is invoked concurrently from worker threads and
/// must be thread-safe (the standard factories below are, as long as the
/// target's run() is).
using InterestingnessTest =
    std::function<bool(const Module &Variant, const FactManager &Facts)>;

/// Performance knobs for sequence reduction (consumed via
/// ReductionPlan::fromOptions). Every combination yields the same
/// ReduceResult (including Checks) — the options only change how much each
/// interestingness check costs and whether checks are speculated in
/// parallel.
struct ReduceOptions {
  /// Prefix-snapshot spacing for incremental replay (see ReplayCache);
  /// 0 disables snapshots and every check replays from the original.
  size_t SnapshotInterval = 8;
  /// Approximate byte budget for retained snapshots.
  size_t SnapshotBudgetBytes = 64ull << 20;
  /// When non-null, one delta-debugging pass's candidates are evaluated
  /// speculatively on the pool while acceptance commits strictly in serial
  /// pass order; results invalidated by an earlier acceptance are
  /// discarded (counted in ReduceResult::SpeculativeChecks). The reducer
  /// only submits leaf jobs — never run a reduction itself from a job
  /// running on the same pool.
  ThreadPool *Pool = nullptr;
};

/// Per-pass accounting of the IR-level post-reduction stage (see
/// core/ReductionPipeline.h).
struct PostReducePassStats {
  /// The pass name (ReductionPass::name()).
  std::string Pass;
  /// Candidates the pass produced (including ones rejected by the
  /// validator before any interestingness check was spent).
  size_t Attempted = 0;
  /// Candidates accepted into the reference module.
  size_t Accepted = 0;
  /// Interestingness-test invocations the pass consumed.
  size_t Checks = 0;
};

struct ReduceResult {
  /// The 1-minimal subsequence.
  TransformationSequence Minimized;
  /// The variant obtained by applying Minimized to the (possibly
  /// post-reduced) original.
  Module ReducedVariant;
  /// Facts after applying Minimized.
  FactManager ReducedFacts;
  /// Number of *decided* serial interestingness checks across both
  /// reduction stages: the delta-debugging decision sequence (plus any
  /// AddFunction shrinking) and the IR-level post-reduction passes.
  /// Identical whether or not speculation is enabled — speculative
  /// evaluations that were discarded are counted separately below.
  size_t Checks = 0;
  /// Speculative evaluations whose results were discarded because an
  /// earlier candidate in the same batch was accepted (wasted work; 0 when
  /// no thread pool was supplied).
  size_t SpeculativeChecks = 0;
  /// The post-reduced reference module. Meaningful only when the plan
  /// enabled post-reduction (PostStats non-empty); default-constructed
  /// otherwise, and the original module remains the reference.
  Module ReducedOriginal;
  /// Per-pass post-reduction accounting, one entry per pass that ran (in
  /// pass-list order); empty when post-reduction was disabled.
  std::vector<PostReducePassStats> PostStats;
};

// Sequence reduction is driven through ReductionPipeline
// (core/ReductionPipeline.h): build a ReductionPlan — default-constructed,
// or ReductionPlan::fromOptions(ReduceOptions) — and call
// ReductionPipeline(Plan).run(Original, Input, Sequence, Test).

//===----------------------------------------------------------------------===//
// Interestingness-test factories
//===----------------------------------------------------------------------===//
//
// The two interestingness shapes of ğ3.4, shared by the campaign drivers
// and the minispv CLI instead of per-call-site lambdas. They are templates
// over the target type because core sits below target in the library
// layering; any TargetT whose `run(Module, ShaderInput)` returns a record
// with `interesting()`, `executed()`, `Signature` and `Result` fits
// (target/Target.h's TargetRun in practice — the unified Outcome makes
// crashes and timeouts reduce identically). The target is captured by
// pointer and must outlive the returned test.

/// Bug interestingness: the candidate variant must still produce an
/// interesting outcome (crash or timeout) on \p T with exactly
/// \p Signature.
template <typename TargetT>
InterestingnessTest makeCrashInterestingness(const TargetT &T,
                                             std::string Signature,
                                             ShaderInput Input) {
  return [Target = &T, Signature = std::move(Signature),
          Input = std::move(Input)](const Module &Variant,
                                    const FactManager &) {
    auto Run = Target->run(Variant, Input);
    return Run.interesting() && Run.Signature == Signature;
  };
}

/// Miscompilation interestingness: the candidate variant, executed through
/// \p T, must still produce a result different from \p Reference's result
/// through the same target (the ğ3.4 image comparison). \p Reference's
/// baseline result is computed once, at construction.
template <typename TargetT>
InterestingnessTest
makeMiscompilationInterestingness(const TargetT &T, const Module &Reference,
                                  const ShaderInput &Input) {
  auto Baseline = T.run(Reference, Input).Result;
  return [Target = &T, Baseline = std::move(Baseline),
          Input](const Module &Variant, const FactManager &) {
    auto Run = Target->run(Variant, Input);
    // executed(), not !interesting(): a tool-errored run has no meaningful
    // Result and must never count as a repro.
    return Run.executed() && Run.Result != Baseline;
  };
}

} // namespace spvfuzz

#endif // CORE_REDUCER_H
