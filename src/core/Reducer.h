//===- core/Reducer.h - Delta-debugging sequence reduction -----*- C++ -*-===//
//
// Part of the spirv-fuzz reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The "almost for free" test-case reducer (ğ3.4): delta debugging over the
/// transformation sequence. Because transformations whose preconditions
/// fail are skipped during replay (Definition 2.5) and effects preserve
/// semantics, any subsequence yields a valid, equivalent variant, so the
/// reducer may try arbitrary chunks without external UB analysis.
///
/// The algorithm matches the paper exactly: chunk size starts at n/2,
/// chunks are considered from the last transformation backwards, a chunk
/// is eliminated if the interestingness test still passes without it, and
/// the chunk size is halved when no chunk of the current size can be
/// removed. Reduction terminates at a 1-minimal sequence.
///
//===----------------------------------------------------------------------===//

#ifndef CORE_REDUCER_H
#define CORE_REDUCER_H

#include "core/Transformation.h"

#include <functional>

namespace spvfuzz {

/// The interestingness test: returns true iff the variant produced by a
/// candidate subsequence still exhibits the bug (gfauto's generated script
/// in the paper's pipeline).
using InterestingnessTest =
    std::function<bool(const Module &Variant, const FactManager &Facts)>;

struct ReduceResult {
  /// The 1-minimal subsequence.
  TransformationSequence Minimized;
  /// The variant obtained by applying Minimized to the original.
  Module ReducedVariant;
  /// Facts after applying Minimized.
  FactManager ReducedFacts;
  /// Number of interestingness-test invocations (reduction cost metric).
  size_t Checks = 0;
};

/// Reduces \p Sequence against \p Original + \p Input. \p Sequence must
/// itself be interesting (the caller found a bug with it).
ReduceResult reduceSequence(const Module &Original, const ShaderInput &Input,
                            const TransformationSequence &Sequence,
                            const InterestingnessTest &Test);

} // namespace spvfuzz

#endif // CORE_REDUCER_H
