//===- exec/Interpreter.cpp - Reference semantics --------------------------===//
//
// Part of the spirv-fuzz reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "exec/Interpreter.h"

#include "support/Telemetry.h"

#include <sstream>
#include <unordered_map>

using namespace spvfuzz;

std::string Value::str() const {
  switch (ValueKind) {
  case Kind::Bool:
    return asBool() ? "true" : "false";
  case Kind::Int:
    return std::to_string(Scalar);
  case Kind::Pointer:
    return "ptr#" + std::to_string(Scalar);
  case Kind::Composite: {
    std::string Out = "{";
    for (size_t I = 0; I != Elements.size(); ++I) {
      if (I)
        Out += ", ";
      Out += Elements[I].str();
    }
    return Out + "}";
  }
  }
  return "?";
}

std::string ExecResult::str() const {
  switch (ExecStatus) {
  case Status::Killed:
    return "<killed>";
  case Status::Fault:
    return "<fault: " + FaultMessage + ">";
  case Status::Ok: {
    std::ostringstream Out;
    Out << "{";
    bool First = true;
    for (const auto &[Location, V] : Outputs) {
      if (!First)
        Out << ", ";
      First = false;
      Out << Location << ": " << V.str();
    }
    Out << "}";
    return Out.str();
  }
  }
  return "?";
}

Value spvfuzz::zeroValueOfType(const Module &M, Id TypeId) {
  const Instruction *Def = M.findDef(TypeId);
  assert(Def && "unknown type");
  switch (Def->Opcode) {
  case Op::TypeBool:
    return Value::makeBool(false);
  case Op::TypeInt:
    return Value::makeInt(0);
  case Op::TypeVector: {
    std::vector<Value> Elements(Def->literalOperand(1),
                                zeroValueOfType(M, Def->idOperand(0)));
    return Value::makeComposite(std::move(Elements));
  }
  case Op::TypeStruct: {
    std::vector<Value> Elements;
    for (const Operand &Op : Def->Operands)
      Elements.push_back(zeroValueOfType(M, Op.asId()));
    return Value::makeComposite(std::move(Elements));
  }
  default:
    assert(false && "type has no zero value");
    return Value::makeInt(0);
  }
}

Value spvfuzz::evalConstant(const Module &M, Id ConstantId) {
  const Instruction *Def = M.findDef(ConstantId);
  assert(Def && isConstantDecl(Def->Opcode) && "not a constant");
  switch (Def->Opcode) {
  case Op::ConstantTrue:
    return Value::makeBool(true);
  case Op::ConstantFalse:
    return Value::makeBool(false);
  case Op::Constant:
    return Value::makeInt(static_cast<int32_t>(Def->literalOperand(0)));
  case Op::ConstantComposite: {
    std::vector<Value> Elements;
    for (const Operand &Op : Def->Operands)
      Elements.push_back(evalConstant(M, Op.asId()));
    return Value::makeComposite(std::move(Elements));
  }
  default:
    assert(false && "unreachable");
    return Value::makeInt(0);
  }
}

namespace {

/// Interpreter state for one execution.
class Machine {
public:
  Machine(const Module &M, const ShaderInput &Input,
          const InterpreterOptions &Options)
      : M(M), Input(Input), Options(Options) {}

  ExecResult run() {
    const Function *Entry = M.entryPoint();
    if (!Entry)
      return fault("no entry point");

    // Allocate cells for module-scope variables.
    for (const Instruction &Global : M.GlobalInsts) {
      if (Global.Opcode != Op::Variable)
        continue;
      auto SC = static_cast<StorageClass>(Global.literalOperand(0));
      auto [PtrSC, Pointee] = M.pointerInfo(Global.ResultType);
      (void)PtrSC;
      Value Init = zeroValueOfType(M, Pointee);
      if (SC == StorageClass::Uniform) {
        auto It = Input.Bindings.find(Global.literalOperand(1));
        if (It != Input.Bindings.end())
          Init = It->second;
      } else if (SC == StorageClass::Private && Global.Operands.size() == 2) {
        Init = evalConstant(M, Global.idOperand(1));
      }
      GlobalCells[Global.Result] = static_cast<int32_t>(Cells.size());
      Cells.push_back(std::move(Init));
      if (SC == StorageClass::Output)
        OutputCells.push_back({Global.literalOperand(1),
                               GlobalCells[Global.Result]});
    }

    Value Ignored;
    RunOutcome Outcome = callFunction(*Entry, {}, Ignored, 0);
    switch (Outcome) {
    case RunOutcome::Completed: {
      ExecResult Result;
      Result.ExecStatus = ExecResult::Status::Ok;
      for (auto [Location, Cell] : OutputCells)
        Result.Outputs[Location] = Cells[Cell];
      return Result;
    }
    case RunOutcome::Killed: {
      ExecResult Result;
      Result.ExecStatus = ExecResult::Status::Killed;
      return Result;
    }
    case RunOutcome::Faulted:
      return fault(FaultMessage);
    }
    return fault("unreachable");
  }

  /// Instruction steps consumed by run() (telemetry accounting).
  uint64_t stepsExecuted() const { return Steps; }

private:
  enum class RunOutcome { Completed, Killed, Faulted };

  ExecResult fault(const std::string &Message) {
    ExecResult Result;
    Result.ExecStatus = ExecResult::Status::Fault;
    Result.FaultMessage = Message;
    return Result;
  }

  RunOutcome faultOut(const std::string &Message) {
    FaultMessage = Message;
    return RunOutcome::Faulted;
  }

  /// Executes \p Func with \p Args; on normal return stores the returned
  /// value (if non-void) into \p ReturnValue.
  RunOutcome callFunction(const Function &Func, const std::vector<Value> &Args,
                          Value &ReturnValue, uint32_t Depth) {
    if (Depth > Options.MaxCallDepth)
      return faultOut("call depth limit exceeded");

    std::unordered_map<Id, Value> Env;
    assert(Args.size() == Func.Params.size() && "argument count mismatch");
    for (size_t I = 0; I != Args.size(); ++I)
      Env[Func.Params[I].Result] = Args[I];

    const BasicBlock *Block = &Func.entryBlock();
    Id PreviousBlock = InvalidId;

    while (true) {
      // Phis read their inputs simultaneously on block entry.
      std::vector<std::pair<Id, Value>> PhiWrites;
      size_t Index = 0;
      for (; Index < Block->Body.size() &&
             Block->Body[Index].Opcode == Op::Phi;
           ++Index) {
        const Instruction &Phi = Block->Body[Index];
        bool Matched = false;
        for (size_t I = 0; I + 1 < Phi.Operands.size(); I += 2) {
          if (Phi.idOperand(I + 1) != PreviousBlock)
            continue;
          PhiWrites.push_back({Phi.Result, eval(Env, Phi.idOperand(I))});
          Matched = true;
          break;
        }
        if (!Matched)
          return faultOut("phi has no entry for predecessor");
      }
      for (auto &[Dest, V] : PhiWrites)
        Env[Dest] = std::move(V);

      // The step budget is charged per block (phis are free), not per
      // instruction — the same accounting the lowered executor uses, so
      // both engines agree on exactly when a run times out.
      Steps += Block->Body.size() - Index;
      if (Steps > Options.StepLimit)
        return faultOut("step limit exceeded");

      for (; Index < Block->Body.size(); ++Index) {
        const Instruction &Inst = Block->Body[Index];
        switch (Inst.Opcode) {
        case Op::Variable: {
          auto [SC, Pointee] = M.pointerInfo(Inst.ResultType);
          (void)SC;
          Value Init = Inst.Operands.size() == 2
                           ? evalConstant(M, Inst.idOperand(1))
                           : zeroValueOfType(M, Pointee);
          Env[Inst.Result] =
              Value::makePointer(static_cast<int32_t>(Cells.size()));
          Cells.push_back(std::move(Init));
          break;
        }
        case Op::Load: {
          Value Pointer = eval(Env, Inst.idOperand(0));
          Env[Inst.Result] = Cells[static_cast<size_t>(Pointer.Scalar)];
          break;
        }
        case Op::Store: {
          Value Pointer = eval(Env, Inst.idOperand(0));
          Cells[static_cast<size_t>(Pointer.Scalar)] =
              eval(Env, Inst.idOperand(1));
          break;
        }
        case Op::IAdd:
        case Op::ISub:
        case Op::IMul:
        case Op::SDiv:
        case Op::SMod: {
          int32_t Lhs = eval(Env, Inst.idOperand(0)).asInt();
          int32_t Rhs = eval(Env, Inst.idOperand(1)).asInt();
          Env[Inst.Result] = Value::makeInt(evalIntBinOp(Inst.Opcode, Lhs, Rhs));
          break;
        }
        case Op::SNegate: {
          uint32_t In =
              static_cast<uint32_t>(eval(Env, Inst.idOperand(0)).asInt());
          Env[Inst.Result] =
              Value::makeInt(static_cast<int32_t>(0u - In));
          break;
        }
        case Op::LogicalAnd:
          Env[Inst.Result] =
              Value::makeBool(eval(Env, Inst.idOperand(0)).asBool() &&
                              eval(Env, Inst.idOperand(1)).asBool());
          break;
        case Op::LogicalOr:
          Env[Inst.Result] =
              Value::makeBool(eval(Env, Inst.idOperand(0)).asBool() ||
                              eval(Env, Inst.idOperand(1)).asBool());
          break;
        case Op::LogicalNot:
          Env[Inst.Result] =
              Value::makeBool(!eval(Env, Inst.idOperand(0)).asBool());
          break;
        case Op::IEqual:
        case Op::INotEqual:
        case Op::SLessThan:
        case Op::SLessThanEqual:
        case Op::SGreaterThan:
        case Op::SGreaterThanEqual: {
          int32_t Lhs = eval(Env, Inst.idOperand(0)).asInt();
          int32_t Rhs = eval(Env, Inst.idOperand(1)).asInt();
          Env[Inst.Result] =
              Value::makeBool(evalComparison(Inst.Opcode, Lhs, Rhs));
          break;
        }
        case Op::Select: {
          bool Cond = eval(Env, Inst.idOperand(0)).asBool();
          Env[Inst.Result] = eval(Env, Inst.idOperand(Cond ? 1 : 2));
          break;
        }
        case Op::CopyObject:
          Env[Inst.Result] = eval(Env, Inst.idOperand(0));
          break;
        case Op::CompositeConstruct: {
          std::vector<Value> Elements;
          for (const Operand &Op : Inst.Operands)
            Elements.push_back(eval(Env, Op.asId()));
          Env[Inst.Result] = Value::makeComposite(std::move(Elements));
          break;
        }
        case Op::CompositeExtract: {
          Value Current = eval(Env, Inst.idOperand(0));
          for (size_t I = 1; I < Inst.Operands.size(); ++I) {
            uint32_t ExtractIndex = Inst.literalOperand(I);
            if (ExtractIndex >= Current.Elements.size())
              return faultOut("composite extract out of range");
            Value Next = Current.Elements[ExtractIndex];
            Current = std::move(Next);
          }
          Env[Inst.Result] = std::move(Current);
          break;
        }
        case Op::FunctionCall: {
          const Function *Callee = M.findFunction(Inst.idOperand(0));
          if (!Callee)
            return faultOut("call to unknown function");
          std::vector<Value> CallArgs;
          for (size_t I = 1; I < Inst.Operands.size(); ++I)
            CallArgs.push_back(eval(Env, Inst.idOperand(I)));
          Value Returned;
          RunOutcome Outcome =
              callFunction(*Callee, CallArgs, Returned, Depth + 1);
          if (Outcome != RunOutcome::Completed)
            return Outcome;
          if (!M.isVoidTypeId(Callee->returnTypeId()))
            Env[Inst.Result] = std::move(Returned);
          break;
        }
        case Op::Branch:
          PreviousBlock = Block->LabelId;
          Block = Func.findBlock(Inst.idOperand(0));
          if (!Block)
            return faultOut("branch to unknown block");
          goto NextBlock;
        case Op::BranchConditional: {
          bool Cond = eval(Env, Inst.idOperand(0)).asBool();
          PreviousBlock = Block->LabelId;
          Block = Func.findBlock(Inst.idOperand(Cond ? 1 : 2));
          if (!Block)
            return faultOut("branch to unknown block");
          goto NextBlock;
        }
        case Op::Return:
          return RunOutcome::Completed;
        case Op::ReturnValue:
          ReturnValue = eval(Env, Inst.idOperand(0));
          return RunOutcome::Completed;
        case Op::Kill:
          return RunOutcome::Killed;
        default:
          return faultOut("unexpected opcode in function body");
        }
      }
      return faultOut("block fell through without a terminator");
    NextBlock:;
    }
  }

  static int32_t evalIntBinOp(Op Opcode, int32_t Lhs, int32_t Rhs) {
    uint32_t UL = static_cast<uint32_t>(Lhs);
    uint32_t UR = static_cast<uint32_t>(Rhs);
    switch (Opcode) {
    case Op::IAdd:
      return static_cast<int32_t>(UL + UR);
    case Op::ISub:
      return static_cast<int32_t>(UL - UR);
    case Op::IMul:
      return static_cast<int32_t>(UL * UR);
    case Op::SDiv:
      // Division by zero and INT_MIN / -1 are defined to yield zero;
      // MiniSPV has no UB.
      if (Rhs == 0 || (Lhs == INT32_MIN && Rhs == -1))
        return 0;
      return Lhs / Rhs;
    case Op::SMod:
      if (Rhs == 0 || (Lhs == INT32_MIN && Rhs == -1))
        return 0;
      return Lhs % Rhs;
    default:
      assert(false && "not an int binop");
      return 0;
    }
  }

  static bool evalComparison(Op Opcode, int32_t Lhs, int32_t Rhs) {
    switch (Opcode) {
    case Op::IEqual:
      return Lhs == Rhs;
    case Op::INotEqual:
      return Lhs != Rhs;
    case Op::SLessThan:
      return Lhs < Rhs;
    case Op::SLessThanEqual:
      return Lhs <= Rhs;
    case Op::SGreaterThan:
      return Lhs > Rhs;
    case Op::SGreaterThanEqual:
      return Lhs >= Rhs;
    default:
      assert(false && "not a comparison");
      return false;
    }
  }

  /// Reads the runtime value of \p TheId: an SSA value from \p Env, a
  /// module constant, or a global variable pointer.
  Value eval(std::unordered_map<Id, Value> &Env, Id TheId) {
    auto It = Env.find(TheId);
    if (It != Env.end())
      return It->second;
    auto GlobalIt = GlobalCells.find(TheId);
    if (GlobalIt != GlobalCells.end())
      return Value::makePointer(GlobalIt->second);
    const Instruction *Def = M.findDef(TheId);
    if (Def && isConstantDecl(Def->Opcode))
      return evalConstant(M, TheId);
    // The validator guarantees this cannot happen for valid modules.
    return Value::makeInt(0);
  }

  const Module &M;
  const ShaderInput &Input;
  const InterpreterOptions &Options;
  uint64_t Steps = 0;
  std::string FaultMessage;
  std::vector<Value> Cells;
  std::unordered_map<Id, int32_t> GlobalCells;
  std::vector<std::pair<uint32_t, int32_t>> OutputCells;
};

} // namespace

ExecResult spvfuzz::interpret(const Module &M, const ShaderInput &Input,
                              const InterpreterOptions &Options) {
  Machine Mach(M, Input, Options);
  ExecResult Result = Mach.run();
  // Step accounting happens once per run (not per instruction) so that the
  // interpreter's hot loop is untouched when telemetry is off.
  telemetry::MetricsRegistry &Metrics = telemetry::MetricsRegistry::global();
  if (Metrics.enabled()) {
    Metrics.add("exec.runs");
    Metrics.add("exec.steps", Mach.stepsExecuted());
    if (Result.ExecStatus == ExecResult::Status::Killed)
      Metrics.add("exec.killed");
    else if (Result.ExecStatus == ExecResult::Status::Fault)
      Metrics.add("exec.faults");
    Metrics.observe("exec.steps_per_run",
                    static_cast<double>(Mach.stepsExecuted()));
  }
  return Result;
}
