//===- exec/Executable.h - Compiled execution artifact ----------*- C++ -*-===//
//
// Part of the spirv-fuzz reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The product execution path. An Executable is an immutable, shareable
/// artifact compiled once from a (post-optimizer) Module and then run on
/// any number of ShaderInputs — the campaign's scan, reduction and dedup
/// loops all evaluate through it, and EvalCache keys on its artifact id
/// so that every phase touching the same lowered program shares one
/// compilation.
///
/// Two engines live behind the same API:
///
///  * ExecEngine::Lowered (the default) lowers the module to register
///    bytecode (Bytecode.h, Lower.h) and runs it on a threaded-dispatch
///    executor. When the lowerer cannot prove exact equivalence — or a
///    uniform input does not match its declared shape — the run falls
///    back to the tree interpreter, so results are always
///    interpret()-identical.
///  * ExecEngine::Tree runs the reference interpreter directly; it exists
///    for differential testing and for byte-for-byte campaign
///    comparisons against the lowered engine.
///
/// interpret() (Interpreter.h) remains the semantics of record; outside
/// of exec unit tests and differential oracles, execution goes through
/// this API.
///
//===----------------------------------------------------------------------===//

#ifndef EXEC_EXECUTABLE_H
#define EXEC_EXECUTABLE_H

#include "exec/Bytecode.h"
#include "exec/Interpreter.h"
#include "ir/Module.h"

#include <memory>
#include <span>

namespace spvfuzz {

/// Which execution engine an Executable (and everything above it) uses.
enum class ExecEngine : uint8_t {
  Lowered, // register-bytecode executor, tree fallback when unprovable
  Tree,    // reference tree interpreter
};

/// "lowered" / "tree" (CLI flag values and bench labels).
const char *execEngineName(ExecEngine Engine);

/// Parses "lowered"/"tree"; returns false on unknown names.
bool execEngineFromName(const std::string &Name, ExecEngine &Out);

class Executable {
public:
  /// Compiles \p M for \p Engine. \p ArtifactId is the caller's identity
  /// for this compilation (targets derive it from the module hash and
  /// target name); it is what EvalCache keys on.
  static std::shared_ptr<const Executable>
  compile(Module M, ExecEngine Engine = ExecEngine::Lowered,
          uint64_t ArtifactId = 0);

  uint64_t id() const { return ArtifactId; }
  ExecEngine engine() const { return Engine; }

  /// True when runs actually go through the bytecode executor (lowered
  /// engine and the lowerer proved the module).
  bool loweredActive() const { return Prog.Ok; }

  const Module &module() const { return M; }

  /// Executes on one input. Observationally identical to
  /// interpret(module(), Input, Options), including telemetry counters.
  ExecResult run(const ShaderInput &Input,
                 const InterpreterOptions &Options = InterpreterOptions()) const;

  /// Executes on each input in order, amortizing the one-time lowering
  /// across the batch; element i equals run(Inputs[i], Options).
  std::vector<ExecResult>
  runBatch(std::span<const ShaderInput> Inputs,
           const InterpreterOptions &Options = InterpreterOptions()) const;

  size_t approxBytes() const;

private:
  Executable(Module M, ExecEngine Engine, uint64_t ArtifactId);

  Module M;
  ExecEngine Engine;
  uint64_t ArtifactId;
  bytecode::LoweredProgram Prog; // Ok == false for Tree or unprovable
};

} // namespace spvfuzz

#endif // EXEC_EXECUTABLE_H
