//===- exec/Lower.h - Module -> register-bytecode lowering ------*- C++ -*-===//
//
// Part of the spirv-fuzz reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Lowers a Module into the bytecode::LoweredProgram form the compiled
/// executor runs (see Bytecode.h for the program shape and Executable.h
/// for the public API). The lowerer is deliberately conservative: it only
/// claims success (LoweredProgram::Ok) when every construct is provably
/// reproduced with the tree interpreter's exact semantics — including
/// fault messages and their trigger points. Anything it cannot prove
/// (unresolvable ids, structurally ill-typed operands, globals without a
/// zero value) makes the whole program fall back to interpret().
///
//===----------------------------------------------------------------------===//

#ifndef EXEC_LOWER_H
#define EXEC_LOWER_H

#include "exec/Bytecode.h"
#include "exec/Value.h"
#include "ir/Module.h"

namespace spvfuzz {

/// Lowers \p M; on any construct outside the provable subset the result
/// has Ok == false and carries no code.
bytecode::LoweredProgram lowerModule(const Module &M);

/// True when \p V structurally matches \p Shape (leaf kinds and composite
/// arities agree recursively). Raw scalar words are not inspected, so
/// e.g. a Bool carrying the word 7 still matches a Bool leaf.
bool valueMatchesShape(const bytecode::LoweredProgram &P, const Value &V,
                       uint32_t Shape);

/// Appends \p V's scalar words to \p Words in flattening order.
void flattenValue(const Value &V, std::vector<int32_t> &Words);

/// Rebuilds a Value of shape \p Shape from the words at \p Words
/// (advancing the pointer past the consumed span).
Value rebuildValue(const bytecode::LoweredProgram &P, uint32_t Shape,
                   const int32_t *&Words);

} // namespace spvfuzz

#endif // EXEC_LOWER_H
