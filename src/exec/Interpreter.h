//===- exec/Interpreter.h - Reference semantics -----------------*- C++ -*-===//
//
// Part of the spirv-fuzz reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The reference interpreter: Semantics(P, I) from the paper's Definition
/// 2.1. Executes a module's entry point on a ShaderInput, producing the
/// final values of all Output variables (by location) or a Kill. MiniSPV
/// semantics are total — integer wrap-around, division by zero yields
/// zero, variables are zero-initialized — so every valid module is
/// well-defined with respect to every input, up to the step limit.
///
/// Layering: interpret() is the semantics of record and the differential
/// oracle, used directly only by exec unit tests and as the fallback /
/// comparison engine inside exec/Executable.h. Target, harness and
/// campaign code executes modules through the Executable artifact API,
/// never by calling interpret() itself.
///
//===----------------------------------------------------------------------===//

#ifndef EXEC_INTERPRETER_H
#define EXEC_INTERPRETER_H

#include "exec/Value.h"
#include "ir/Module.h"

namespace spvfuzz {

/// The observable result of executing a module.
struct ExecResult {
  enum class Status : uint8_t {
    Ok,     // ran to completion; Outputs hold the result
    Killed, // an OpKill executed; Outputs are irrelevant
    Fault,  // interpreter-level failure (step limit, malformed module)
  };

  Status ExecStatus = Status::Ok;
  std::string FaultMessage;
  std::map<uint32_t, Value> Outputs; // by Output variable location

  bool operator==(const ExecResult &Other) const {
    if (ExecStatus != Other.ExecStatus)
      return false;
    if (ExecStatus == Status::Ok)
      return Outputs == Other.Outputs;
    return true; // two kills / two faults compare equal
  }
  bool operator!=(const ExecResult &Other) const { return !(*this == Other); }

  std::string str() const;
};

struct InterpreterOptions {
  /// Execution aborts with a fault after this many instruction steps; the
  /// paper regards non-termination as faulting (ğ2.2). Steps are charged
  /// block-granularly (a block's non-phi instruction count is charged on
  /// entry), matching the lowered executor's accounting.
  uint64_t StepLimit = 1u << 22;
  /// Call-stack depth limit.
  uint32_t MaxCallDepth = 64;
};

/// Executes \p M's entry point on \p Input. \p M must be valid.
ExecResult interpret(const Module &M, const ShaderInput &Input,
                     const InterpreterOptions &Options = InterpreterOptions());

/// Returns the zero value of type \p TypeId (composites recursively zero).
Value zeroValueOfType(const Module &M, Id TypeId);

/// Evaluates a module-level constant id to a Value.
Value evalConstant(const Module &M, Id ConstantId);

} // namespace spvfuzz

#endif // EXEC_INTERPRETER_H
