//===- exec/Value.h - Runtime values ----------------------------*- C++ -*-===//
//
// Part of the spirv-fuzz reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Runtime values for the MiniSPV interpreter: booleans, 32-bit integers,
/// composites (vectors and structs share a representation) and pointers
/// (handles into the interpreter's cell store).
///
//===----------------------------------------------------------------------===//

#ifndef EXEC_VALUE_H
#define EXEC_VALUE_H

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace spvfuzz {

struct Value {
  enum class Kind : uint8_t { Bool, Int, Composite, Pointer };

  Kind ValueKind = Kind::Int;
  int32_t Scalar = 0;           // Bool (0/1), Int, or Pointer handle
  std::vector<Value> Elements;  // Composite only

  static Value makeBool(bool B) {
    Value V;
    V.ValueKind = Kind::Bool;
    V.Scalar = B ? 1 : 0;
    return V;
  }
  static Value makeInt(int32_t I) {
    Value V;
    V.ValueKind = Kind::Int;
    V.Scalar = I;
    return V;
  }
  static Value makeComposite(std::vector<Value> Elements) {
    Value V;
    V.ValueKind = Kind::Composite;
    V.Elements = std::move(Elements);
    return V;
  }
  static Value makePointer(int32_t Handle) {
    Value V;
    V.ValueKind = Kind::Pointer;
    V.Scalar = Handle;
    return V;
  }

  bool asBool() const { return Scalar != 0; }
  int32_t asInt() const { return Scalar; }

  bool operator==(const Value &Other) const {
    return ValueKind == Other.ValueKind && Scalar == Other.Scalar &&
           Elements == Other.Elements;
  }
  bool operator!=(const Value &Other) const { return !(*this == Other); }

  std::string str() const;
};

/// The values supplied for Uniform variables, keyed by binding.
struct ShaderInput {
  std::map<uint32_t, Value> Bindings;
};

} // namespace spvfuzz

#endif // EXEC_VALUE_H
