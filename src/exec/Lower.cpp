//===- exec/Lower.cpp - Module -> register-bytecode lowering --------------===//
//
// Part of the spirv-fuzz reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
//
// The lowering contract: a lowered program must be observationally
// identical to interpret() on every input — same outputs, same
// Killed/Fault status, same fault message, and the same step count under
// the shared block-granular accounting. The lowerer therefore refuses
// (Ok = false) whenever it would have to guess: every id must resolve to
// a register, constant or global slot; every operand must be structurally
// well-typed so that flattened widths line up; every global must have a
// zero value. Faults the tree interpreter raises at runtime on *valid*
// control flow (unknown branch targets, phis missing a predecessor,
// out-of-range extracts, unexpected opcodes, fall-through blocks, unknown
// callees) are compiled into static Fault ops or fault edges at the exact
// program point where the tree interpreter would raise them.
//
//===----------------------------------------------------------------------===//

#include "exec/Lower.h"

#include <algorithm>
#include <optional>
#include <unordered_map>

using namespace spvfuzz;
using namespace spvfuzz::bytecode;

bool spvfuzz::valueMatchesShape(const LoweredProgram &P, const Value &V,
                                uint32_t Shape) {
  const ValueShape &S = P.Shapes[Shape];
  switch (S.ShapeKind) {
  case ValueShape::Kind::Bool:
    return V.ValueKind == Value::Kind::Bool;
  case ValueShape::Kind::Int:
    return V.ValueKind == Value::Kind::Int;
  case ValueShape::Kind::Pointer:
    return V.ValueKind == Value::Kind::Pointer;
  case ValueShape::Kind::Composite:
    if (V.ValueKind != Value::Kind::Composite ||
        V.Elements.size() != S.NumChildren)
      return false;
    for (uint32_t I = 0; I != S.NumChildren; ++I)
      if (!valueMatchesShape(P, V.Elements[I],
                             P.ShapeChildren[S.FirstChild + I]))
        return false;
    return true;
  }
  return false;
}

void spvfuzz::flattenValue(const Value &V, std::vector<int32_t> &Words) {
  if (V.ValueKind == Value::Kind::Composite) {
    for (const Value &Element : V.Elements)
      flattenValue(Element, Words);
    return;
  }
  Words.push_back(V.Scalar);
}

Value spvfuzz::rebuildValue(const LoweredProgram &P, uint32_t Shape,
                            const int32_t *&Words) {
  const ValueShape &S = P.Shapes[Shape];
  Value V;
  switch (S.ShapeKind) {
  case ValueShape::Kind::Bool:
    V.ValueKind = Value::Kind::Bool;
    V.Scalar = *Words++;
    return V;
  case ValueShape::Kind::Int:
    V.ValueKind = Value::Kind::Int;
    V.Scalar = *Words++;
    return V;
  case ValueShape::Kind::Pointer:
    V.ValueKind = Value::Kind::Pointer;
    V.Scalar = *Words++;
    return V;
  case ValueShape::Kind::Composite:
    V.ValueKind = Value::Kind::Composite;
    V.Elements.reserve(S.NumChildren);
    for (uint32_t I = 0; I != S.NumChildren; ++I)
      V.Elements.push_back(
          rebuildValue(P, P.ShapeChildren[S.FirstChild + I], Words));
    return V;
  }
  return V;
}

namespace {

constexpr unsigned MaxTypeDepth = 64;

/// A constant-folded Value, mirroring evalConstant but total: returns
/// nullopt instead of asserting on malformed declarations.
std::optional<Value> safeConstValue(const Module &M, Id ConstantId,
                                    unsigned Depth = 0) {
  if (Depth > MaxTypeDepth)
    return std::nullopt;
  const Instruction *Def = M.findDef(ConstantId);
  if (!Def)
    return std::nullopt;
  switch (Def->Opcode) {
  case Op::ConstantTrue:
    return Value::makeBool(true);
  case Op::ConstantFalse:
    return Value::makeBool(false);
  case Op::Constant:
    if (Def->Operands.empty() || !Def->Operands[0].isLiteral())
      return std::nullopt;
    return Value::makeInt(static_cast<int32_t>(Def->Operands[0].Word));
  case Op::ConstantComposite: {
    std::vector<Value> Elements;
    for (const Operand &Component : Def->Operands) {
      if (!Component.isId())
        return std::nullopt;
      std::optional<Value> Element =
          safeConstValue(M, Component.Word, Depth + 1);
      if (!Element)
        return std::nullopt;
      Elements.push_back(std::move(*Element));
    }
    return Value::makeComposite(std::move(Elements));
  }
  default:
    return std::nullopt;
  }
}

/// A resolved value id inside one function: frame word offset and width.
struct SlotInfo {
  uint32_t Offset = 0;
  uint32_t Width = 0;
};

class Lowerer {
public:
  explicit Lowerer(const Module &M) : M(M) {
    P.FaultMessages = {"step limit exceeded", "call depth limit exceeded"};
  }

  LoweredProgram lower() {
    lowerGlobals();
    if (!Failed)
      lowerFunctions();
    if (Failed)
      return LoweredProgram{};
    P.Ok = true;
    return std::move(P);
  }

private:
  void fail() { Failed = true; }

  uint32_t intern(const char *Message) {
    for (uint32_t I = 0; I != P.FaultMessages.size(); ++I)
      if (P.FaultMessages[I] == Message)
        return I;
    P.FaultMessages.push_back(Message);
    return static_cast<uint32_t>(P.FaultMessages.size() - 1);
  }

  /// Lowered shape of a value type; nullopt for non-value types, unknown
  /// ids and over-deep (cyclic) declarations.
  std::optional<uint32_t> shapeOfType(Id TypeId, unsigned Depth = 0) {
    auto Cached = ShapeOfTypeId.find(TypeId);
    if (Cached != ShapeOfTypeId.end())
      return Cached->second;
    if (Depth > MaxTypeDepth)
      return std::nullopt;
    const Instruction *Def = M.findDef(TypeId);
    if (!Def)
      return std::nullopt;
    ValueShape S;
    switch (Def->Opcode) {
    case Op::TypeBool:
      S.ShapeKind = ValueShape::Kind::Bool;
      break;
    case Op::TypeInt:
      S.ShapeKind = ValueShape::Kind::Int;
      break;
    case Op::TypePointer:
      S.ShapeKind = ValueShape::Kind::Pointer;
      break;
    case Op::TypeVector: {
      if (Def->Operands.size() != 2 || !Def->Operands[0].isId() ||
          !Def->Operands[1].isLiteral())
        return std::nullopt;
      std::optional<uint32_t> Component =
          shapeOfType(Def->Operands[0].Word, Depth + 1);
      if (!Component)
        return std::nullopt;
      uint32_t Count = Def->Operands[1].Word;
      S.ShapeKind = ValueShape::Kind::Composite;
      S.FirstChild = static_cast<uint32_t>(P.ShapeChildren.size());
      S.NumChildren = Count;
      S.Width = Count * P.Shapes[*Component].Width;
      for (uint32_t I = 0; I != Count; ++I)
        P.ShapeChildren.push_back(*Component);
      break;
    }
    case Op::TypeStruct: {
      std::vector<uint32_t> Members;
      uint32_t Width = 0;
      for (const Operand &Member : Def->Operands) {
        if (!Member.isId())
          return std::nullopt;
        std::optional<uint32_t> MemberShape =
            shapeOfType(Member.Word, Depth + 1);
        if (!MemberShape)
          return std::nullopt;
        Members.push_back(*MemberShape);
        Width += P.Shapes[*MemberShape].Width;
      }
      S.ShapeKind = ValueShape::Kind::Composite;
      S.FirstChild = static_cast<uint32_t>(P.ShapeChildren.size());
      S.NumChildren = static_cast<uint32_t>(Members.size());
      S.Width = Width;
      P.ShapeChildren.insert(P.ShapeChildren.end(), Members.begin(),
                             Members.end());
      break;
    }
    default:
      return std::nullopt;
    }
    uint32_t Index = static_cast<uint32_t>(P.Shapes.size());
    P.Shapes.push_back(S);
    ShapeOfTypeId[TypeId] = Index;
    return Index;
  }

  uint32_t widthOfShape(uint32_t Shape) const { return P.Shapes[Shape].Width; }

  /// True when zeroValueOfType is defined for this shape (no pointer
  /// leaves); the tree interpreter asserts otherwise, so globals and
  /// uninitialized locals of such shapes make lowering fail.
  bool isZeroable(uint32_t Shape) const {
    const ValueShape &S = P.Shapes[Shape];
    switch (S.ShapeKind) {
    case ValueShape::Kind::Bool:
    case ValueShape::Kind::Int:
      return true;
    case ValueShape::Kind::Pointer:
      return false;
    case ValueShape::Kind::Composite:
      for (uint32_t I = 0; I != S.NumChildren; ++I)
        if (!isZeroable(P.ShapeChildren[S.FirstChild + I]))
          return false;
      return true;
    }
    return false;
  }

  void lowerGlobals() {
    const Function *Entry = M.entryPoint();
    if (!Entry || !Entry->Params.empty() || Entry->Blocks.empty())
      return fail();
    for (const Instruction &Global : M.GlobalInsts) {
      if (Global.Opcode != Op::Variable)
        continue;
      if (Global.Operands.empty() || !Global.Operands[0].isLiteral() ||
          !M.isPointerTypeId(Global.ResultType))
        return fail();
      auto SC = static_cast<StorageClass>(Global.Operands[0].Word);
      Id Pointee = M.pointerInfo(Global.ResultType).second;
      std::optional<uint32_t> Shape = shapeOfType(Pointee);
      if (!Shape || !isZeroable(*Shape))
        return fail();
      uint32_t Width = widthOfShape(*Shape);
      uint32_t Base = P.GlobalWords;
      P.GlobalWords += Width;
      P.GlobalTemplate.resize(P.GlobalWords, 0);
      if (!GlobalBases.emplace(Global.Result, Base).second)
        return fail();
      if (SC == StorageClass::Uniform || SC == StorageClass::Output) {
        if (Global.Operands.size() < 2 || !Global.Operands[1].isLiteral())
          return fail();
        if (SC == StorageClass::Uniform)
          P.Uniforms.push_back({Global.Operands[1].Word, Base, *Shape});
        else
          P.Outputs.push_back({Global.Operands[1].Word, Base, *Shape});
      } else if (SC == StorageClass::Private && Global.Operands.size() == 2) {
        if (!Global.Operands[1].isId())
          return fail();
        std::optional<Value> Init = safeConstValue(M, Global.Operands[1].Word);
        if (!Init || !matches(*Init, *Shape))
          return fail();
        std::vector<int32_t> Words;
        flattenValue(*Init, Words);
        std::copy(Words.begin(), Words.end(),
                  P.GlobalTemplate.begin() + Base);
      }
    }
  }

  bool matches(const Value &V, uint32_t Shape) {
    return valueMatchesShape(P, V, Shape);
  }

  void lowerFunctions() {
    // Signatures first: calls may reference functions lowered later.
    for (uint32_t I = 0; I != M.Functions.size(); ++I) {
      const Function &Func = M.Functions[I];
      FunctionIndex.emplace(Func.id(), I);
      LoweredFunction LF;
      if (!M.isVoidTypeId(Func.returnTypeId())) {
        std::optional<uint32_t> Shape = shapeOfType(Func.returnTypeId());
        if (!Shape)
          return fail();
        LF.ReturnWidth = widthOfShape(*Shape);
      }
      for (const Instruction &Param : Func.Params) {
        std::optional<uint32_t> Shape = shapeOfType(Param.ResultType);
        if (!Shape)
          return fail();
        LF.ParamWidths.push_back(widthOfShape(*Shape));
      }
      P.Functions.push_back(std::move(LF));
    }
    std::optional<uint32_t> EntryIndex = functionIndexOf(M.EntryPointId);
    if (!EntryIndex)
      return fail();
    P.EntryFunction = *EntryIndex;
    for (uint32_t I = 0; I != M.Functions.size() && !Failed; ++I)
      lowerFunction(M.Functions[I], P.Functions[I]);
  }

  std::optional<uint32_t> functionIndexOf(Id FuncId) const {
    auto It = FunctionIndex.find(FuncId);
    if (It == FunctionIndex.end())
      return std::nullopt;
    return It->second;
  }

  // --- Per-function state -------------------------------------------------

  /// Invokes \p Action on each operand index of \p Inst that the tree
  /// interpreter evaluates as a runtime value (and therefore needs a
  /// resolvable slot). Labels, literals, callee ids and constant-decl
  /// initializers are not values.
  template <typename Callable>
  static void forEachValueOperand(const Instruction &Inst, Callable Action) {
    switch (Inst.Opcode) {
    case Op::Load:
    case Op::SNegate:
    case Op::LogicalNot:
    case Op::CopyObject:
    case Op::CompositeExtract:
    case Op::ReturnValue:
    case Op::BranchConditional:
      if (!Inst.Operands.empty())
        Action(0);
      break;
    case Op::Store:
    case Op::IAdd:
    case Op::ISub:
    case Op::IMul:
    case Op::SDiv:
    case Op::SMod:
    case Op::LogicalAnd:
    case Op::LogicalOr:
    case Op::IEqual:
    case Op::INotEqual:
    case Op::SLessThan:
    case Op::SLessThanEqual:
    case Op::SGreaterThan:
    case Op::SGreaterThanEqual:
      for (size_t I = 0; I != Inst.Operands.size() && I != 2; ++I)
        Action(I);
      break;
    case Op::Select:
      for (size_t I = 0; I != Inst.Operands.size() && I != 3; ++I)
        Action(I);
      break;
    case Op::CompositeConstruct:
      for (size_t I = 0; I != Inst.Operands.size(); ++I)
        Action(I);
      break;
    case Op::Phi:
      for (size_t I = 0; I + 1 < Inst.Operands.size(); I += 2)
        Action(I);
      break;
    case Op::FunctionCall:
      for (size_t I = 1; I < Inst.Operands.size(); ++I)
        Action(I);
      break;
    default:
      break;
    }
  }

  /// True for body opcodes whose result the tree interpreter writes to the
  /// environment (FunctionCall only when the callee returns a value —
  /// handled separately).
  static bool producesRegister(Op Opcode) {
    switch (Opcode) {
    case Op::Variable:
    case Op::Load:
    case Op::IAdd:
    case Op::ISub:
    case Op::IMul:
    case Op::SDiv:
    case Op::SMod:
    case Op::SNegate:
    case Op::LogicalAnd:
    case Op::LogicalOr:
    case Op::LogicalNot:
    case Op::IEqual:
    case Op::INotEqual:
    case Op::SLessThan:
    case Op::SLessThanEqual:
    case Op::SGreaterThan:
    case Op::SGreaterThanEqual:
    case Op::Select:
    case Op::CopyObject:
    case Op::CompositeConstruct:
    case Op::CompositeExtract:
    case Op::Phi:
      return true;
    default:
      return false;
    }
  }

  void lowerFunction(const Function &Func, LoweredFunction &LF) {
    if (Func.Blocks.empty())
      return fail(); // entryBlock() has no meaning; the tree asserts.
    Slots.clear();
    uint32_t Frame = LF.ReturnWidth;

    auto defineSlot = [&](Id TheId, uint32_t Width) {
      if (!Slots.emplace(TheId, SlotInfo{Frame, Width}).second)
        return fail();
      Frame += Width;
    };

    for (size_t I = 0; I != Func.Params.size(); ++I) {
      LF.ParamOffsets.push_back(Frame);
      defineSlot(Func.Params[I].Result, LF.ParamWidths[I]);
      if (Failed)
        return;
    }

    // Pass A: registers for every result the tree interpreter would write.
    for (const BasicBlock &Block : Func.Blocks) {
      for (const Instruction &Inst : Block.Body) {
        if (Inst.Opcode == Op::FunctionCall) {
          if (Inst.Operands.empty() || !Inst.Operands[0].isId())
            continue; // Becomes a fault or bails during emission.
          std::optional<uint32_t> Callee =
              functionIndexOf(Inst.Operands[0].Word);
          if (!Callee || P.Functions[*Callee].ReturnWidth == 0)
            continue; // Unknown callee faults; void callees store nothing.
          if (Inst.Result == InvalidId)
            return fail();
          std::optional<uint32_t> Shape = shapeOfType(Inst.ResultType);
          if (!Shape || widthOfShape(*Shape) != P.Functions[*Callee].ReturnWidth)
            return fail();
          defineSlot(Inst.Result, P.Functions[*Callee].ReturnWidth);
        } else if (producesRegister(Inst.Opcode)) {
          uint32_t Width = 1;
          if (Inst.Opcode == Op::Variable) {
            if (!M.isPointerTypeId(Inst.ResultType))
              return fail();
          } else {
            std::optional<uint32_t> Shape = shapeOfType(Inst.ResultType);
            if (!Shape)
              return fail();
            Width = widthOfShape(*Shape);
          }
          defineSlot(Inst.Result, Width);
        }
        if (Failed)
          return;
      }
    }

    // Pass B: constant and global-pointer slots for the remaining value
    // operands. Their words are recorded for the frame template.
    std::vector<std::pair<uint32_t, std::vector<int32_t>>> TemplateFills;
    auto resolveOperand = [&](Id TheId) {
      if (Failed || Slots.count(TheId))
        return;
      auto GlobalIt = GlobalBases.find(TheId);
      if (GlobalIt != GlobalBases.end()) {
        TemplateFills.push_back(
            {Frame, {static_cast<int32_t>(GlobalIt->second)}});
        defineSlot(TheId, 1);
        return;
      }
      std::optional<Value> Constant = safeConstValue(M, TheId);
      if (!Constant)
        return fail();
      const Instruction *Def = M.findDef(TheId);
      std::optional<uint32_t> Shape = shapeOfType(Def->ResultType);
      if (!Shape || !matches(*Constant, *Shape))
        return fail();
      std::vector<int32_t> Words;
      flattenValue(*Constant, Words);
      TemplateFills.push_back({Frame, std::move(Words)});
      defineSlot(TheId, widthOfShape(*Shape));
    };
    for (const BasicBlock &Block : Func.Blocks)
      for (const Instruction &Inst : Block.Body)
        forEachValueOperand(Inst, [&](size_t OperandIndex) {
          if (Failed)
            return;
          const Operand &Opnd = Inst.Operands[OperandIndex];
          if (!Opnd.isId())
            return fail(); // The tree interpreter asserts here.
          resolveOperand(Opnd.Word);
        });
    if (Failed)
      return;

    LF.FrameWords = Frame;
    LF.FrameTemplate.assign(Frame, 0);
    for (auto &[Offset, Words] : TemplateFills)
      std::copy(Words.begin(), Words.end(), LF.FrameTemplate.begin() + Offset);

    // Block label -> index; first declaration wins, like findBlock.
    BlockIndexOf.clear();
    for (uint32_t I = 0; I != Func.Blocks.size(); ++I)
      BlockIndexOf.emplace(Func.Blocks[I].LabelId, I);

    // The entry block is (re)entered with no predecessor on every call;
    // leading phis there would need a virtual edge — punt to the tree.
    if (!Func.Blocks.empty() && !Func.Blocks[0].Body.empty() &&
        Func.Blocks[0].Body[0].Opcode == Op::Phi)
      return fail();

    // Pass C: emit code block by block.
    for (const BasicBlock &Block : Func.Blocks) {
      emitBlock(Func, LF, Block);
      if (Failed)
        return;
    }
  }

  SlotInfo slotOf(Id TheId) {
    auto It = Slots.find(TheId);
    if (It == Slots.end()) {
      fail();
      return {};
    }
    return It->second;
  }

  /// Slot of a value operand requiring width exactly \p Width.
  uint32_t slotExpecting(const Instruction &Inst, size_t OperandIndex,
                         uint32_t Width) {
    SlotInfo Slot = slotOf(Inst.Operands[OperandIndex].Word);
    if (!Failed && Slot.Width != Width)
      fail();
    return Slot.Offset;
  }

  uint32_t makeEdge(const Function &Func, LoweredFunction &LF, Id FromLabel,
                    Id ToLabel) {
    Edge E;
    auto TargetIt = BlockIndexOf.find(ToLabel);
    if (TargetIt == BlockIndexOf.end()) {
      E.FaultIndex = intern("branch to unknown block");
    } else {
      E.TargetBlock = TargetIt->second;
      E.MovesBegin = static_cast<uint32_t>(LF.Moves.size());
      const BasicBlock &Target = Func.Blocks[TargetIt->second];
      for (const Instruction &Phi : Target.Body) {
        if (Phi.Opcode != Op::Phi)
          break;
        SlotInfo Dst = slotOf(Phi.Result);
        bool Matched = false;
        for (size_t I = 0; I + 1 < Phi.Operands.size(); I += 2) {
          if (!Phi.Operands[I].isId() || !Phi.Operands[I + 1].isId()) {
            fail();
            return 0;
          }
          if (Phi.Operands[I + 1].Word != FromLabel)
            continue;
          SlotInfo Src = slotOf(Phi.Operands[I].Word);
          if (Failed)
            return 0;
          if (Src.Width != Dst.Width) {
            fail();
            return 0;
          }
          LF.Moves.push_back({Dst.Offset, Src.Offset, Dst.Width});
          Matched = true;
          break;
        }
        if (Failed)
          return 0;
        if (!Matched) {
          LF.Moves.resize(E.MovesBegin);
          E.FaultIndex = intern("phi has no entry for predecessor");
          break;
        }
      }
      E.MovesEnd = static_cast<uint32_t>(LF.Moves.size());
    }
    LF.Edges.push_back(E);
    return static_cast<uint32_t>(LF.Edges.size() - 1);
  }

  void emitBlock(const Function &Func, LoweredFunction &LF,
                 const BasicBlock &Block) {
    size_t PhiCount = 0;
    while (PhiCount < Block.Body.size() &&
           Block.Body[PhiCount].Opcode == Op::Phi)
      ++PhiCount;

    BlockInfo Info;
    Info.CodeBegin = static_cast<uint32_t>(LF.Body.size());
    Info.Cost = static_cast<uint32_t>(Block.Body.size() - PhiCount);
    LF.Blocks.push_back(Info);

    Code &C = LF.Body;
    for (size_t Index = PhiCount; Index != Block.Body.size(); ++Index) {
      const Instruction &Inst = Block.Body[Index];
      switch (Inst.Opcode) {
      case Op::Variable: {
        Id Pointee = M.pointerInfo(Inst.ResultType).second;
        std::optional<uint32_t> Shape = shapeOfType(Pointee);
        if (!Shape)
          return fail();
        uint32_t Width = widthOfShape(*Shape);
        uint32_t InitOffset = NoSlot;
        if (Inst.Operands.size() == 2) {
          if (!Inst.Operands[1].isId())
            return fail();
          std::optional<Value> Init =
              safeConstValue(M, Inst.Operands[1].Word);
          if (!Init || !matches(*Init, *Shape))
            return fail();
          InitOffset = static_cast<uint32_t>(P.InitPool.size());
          flattenValue(*Init, P.InitPool);
        } else if (!isZeroable(*Shape)) {
          return fail();
        }
        C.emit(BcOp::AllocVar, InitOffset, 0, 0, slotOf(Inst.Result).Offset,
               Width);
        break;
      }
      case Op::Load: {
        if (Inst.Operands.empty())
          return fail();
        SlotInfo Dst = slotOf(Inst.Result);
        uint32_t Ptr = slotExpecting(Inst, 0, 1);
        if (Failed || !checkPointeeWidth(Inst.Operands[0].Word, Dst.Width))
          return fail();
        C.emit(BcOp::Load, Ptr, 0, 0, Dst.Offset, Dst.Width);
        break;
      }
      case Op::Store: {
        if (Inst.Operands.size() < 2)
          return fail();
        SlotInfo Src = slotOf(Inst.Operands[1].Word);
        uint32_t Ptr = slotExpecting(Inst, 0, 1);
        if (Failed || !checkPointeeWidth(Inst.Operands[0].Word, Src.Width))
          return fail();
        C.emit(BcOp::Store, Ptr, Src.Offset, 0, 0, Src.Width);
        break;
      }
      case Op::IAdd:
      case Op::ISub:
      case Op::IMul:
      case Op::SDiv:
      case Op::SMod:
      case Op::LogicalAnd:
      case Op::LogicalOr:
      case Op::IEqual:
      case Op::INotEqual:
      case Op::SLessThan:
      case Op::SLessThanEqual:
      case Op::SGreaterThan:
      case Op::SGreaterThanEqual: {
        if (Inst.Operands.size() < 2)
          return fail();
        uint32_t Dst = scalarResult(Inst);
        uint32_t Lhs = slotExpecting(Inst, 0, 1);
        uint32_t Rhs = slotExpecting(Inst, 1, 1);
        if (Failed)
          return;
        C.emit(scalarBinOp(Inst.Opcode), Lhs, Rhs, 0, Dst);
        break;
      }
      case Op::SNegate:
      case Op::LogicalNot: {
        if (Inst.Operands.empty())
          return fail();
        uint32_t Dst = scalarResult(Inst);
        uint32_t Src = slotExpecting(Inst, 0, 1);
        if (Failed)
          return;
        C.emit(Inst.Opcode == Op::SNegate ? BcOp::Neg : BcOp::LNot, Src, 0, 0,
               Dst);
        break;
      }
      case Op::Select: {
        if (Inst.Operands.size() < 3)
          return fail();
        SlotInfo Dst = slotOf(Inst.Result);
        uint32_t Cond = slotExpecting(Inst, 0, 1);
        uint32_t TrueSrc = slotExpecting(Inst, 1, Dst.Width);
        uint32_t FalseSrc = slotExpecting(Inst, 2, Dst.Width);
        if (Failed)
          return;
        C.emit(BcOp::Select, Cond, TrueSrc, FalseSrc, Dst.Offset, Dst.Width);
        break;
      }
      case Op::CopyObject: {
        if (Inst.Operands.empty())
          return fail();
        SlotInfo Dst = slotOf(Inst.Result);
        uint32_t Src = slotExpecting(Inst, 0, Dst.Width);
        if (Failed)
          return;
        C.emit(BcOp::Copy, Src, 0, 0, Dst.Offset, Dst.Width);
        break;
      }
      case Op::CompositeConstruct: {
        SlotInfo Dst = slotOf(Inst.Result);
        if (Failed)
          return;
        uint32_t Offset = 0;
        for (const Operand &Component : Inst.Operands) {
          if (!Component.isId())
            return fail();
          SlotInfo Src = slotOf(Component.Word);
          if (Failed || Offset + Src.Width > Dst.Width)
            return fail();
          C.emit(BcOp::Copy, Src.Offset, 0, 0, Dst.Offset + Offset,
                 Src.Width);
          Offset += Src.Width;
        }
        if (Offset != Dst.Width)
          return fail();
        break;
      }
      case Op::CompositeExtract: {
        if (Inst.Operands.empty())
          return fail();
        SlotInfo Dst = slotOf(Inst.Result);
        SlotInfo Src = slotOf(Inst.Operands[0].Word);
        if (Failed)
          return;
        std::optional<uint32_t> Shape =
            shapeOfType(M.typeOfId(Inst.Operands[0].Word));
        if (!Shape || widthOfShape(*Shape) != Src.Width)
          return fail();
        uint32_t Offset = 0;
        bool OutOfRange = false;
        for (size_t I = 1; I < Inst.Operands.size(); ++I) {
          if (!Inst.Operands[I].isLiteral())
            return fail();
          const ValueShape &S = P.Shapes[*Shape];
          uint32_t ExtractIndex = Inst.Operands[I].Word;
          if (S.ShapeKind != ValueShape::Kind::Composite ||
              ExtractIndex >= S.NumChildren) {
            OutOfRange = true;
            break;
          }
          for (uint32_t Child = 0; Child != ExtractIndex; ++Child)
            Offset +=
                widthOfShape(P.ShapeChildren[S.FirstChild + Child]);
          Shape = P.ShapeChildren[S.FirstChild + ExtractIndex];
        }
        if (OutOfRange) {
          C.emit(BcOp::Fault, intern("composite extract out of range"));
          return; // Dead code past a certain fault.
        }
        if (widthOfShape(*Shape) != Dst.Width)
          return fail();
        C.emit(BcOp::Copy, Src.Offset + Offset, 0, 0, Dst.Offset, Dst.Width);
        break;
      }
      case Op::FunctionCall: {
        if (Inst.Operands.empty() || !Inst.Operands[0].isId())
          return fail();
        std::optional<uint32_t> Callee =
            functionIndexOf(Inst.Operands[0].Word);
        if (!Callee) {
          C.emit(BcOp::Fault, intern("call to unknown function"));
          return;
        }
        const LoweredFunction &CalleeLF = P.Functions[*Callee];
        if (Inst.Operands.size() - 1 != CalleeLF.ParamWidths.size())
          return fail(); // The tree interpreter asserts on arity mismatch.
        uint32_t ArgsAt = static_cast<uint32_t>(LF.Extra.size());
        LF.Extra.push_back(
            static_cast<uint32_t>(CalleeLF.ParamWidths.size()));
        for (size_t I = 1; I < Inst.Operands.size(); ++I) {
          LF.Extra.push_back(
              slotExpecting(Inst, I, CalleeLF.ParamWidths[I - 1]));
          if (Failed)
            return;
        }
        uint32_t Dst = NoSlot;
        if (CalleeLF.ReturnWidth != 0)
          Dst = slotOf(Inst.Result).Offset;
        if (Failed)
          return;
        C.emit(BcOp::Call, *Callee, ArgsAt, 0, Dst);
        break;
      }
      case Op::Branch: {
        if (Inst.Operands.empty() || !Inst.Operands[0].isId())
          return fail();
        uint32_t EdgeIndex =
            makeEdge(Func, LF, Block.LabelId, Inst.Operands[0].Word);
        if (Failed)
          return;
        C.emit(BcOp::Br, EdgeIndex);
        return; // Terminator: anything after it is unreachable.
      }
      case Op::BranchConditional: {
        if (Inst.Operands.size() < 3 || !Inst.Operands[1].isId() ||
            !Inst.Operands[2].isId())
          return fail();
        uint32_t Cond = slotExpecting(Inst, 0, 1);
        uint32_t TrueEdge =
            makeEdge(Func, LF, Block.LabelId, Inst.Operands[1].Word);
        uint32_t FalseEdge =
            makeEdge(Func, LF, Block.LabelId, Inst.Operands[2].Word);
        if (Failed)
          return;
        C.emit(BcOp::BrCond, Cond, TrueEdge, FalseEdge);
        return;
      }
      case Op::Return:
        if (LF.ReturnWidth != 0)
          return fail(); // Ill-typed; the caller would read a stale slot.
        C.emit(BcOp::RetVoid);
        return;
      case Op::ReturnValue: {
        if (Inst.Operands.empty())
          return fail();
        if (LF.ReturnWidth == 0) {
          // The returned value is evaluated but discarded by the caller.
          C.emit(BcOp::RetVoid);
          return;
        }
        uint32_t Src = slotExpecting(Inst, 0, LF.ReturnWidth);
        if (Failed)
          return;
        C.emit(BcOp::RetVal, Src, 0, 0, 0, LF.ReturnWidth);
        return;
      }
      case Op::Kill:
        C.emit(BcOp::Kill);
        return;
      default:
        // Including non-leading phis, exactly like the tree interpreter's
        // switch default.
        C.emit(BcOp::Fault, intern("unexpected opcode in function body"));
        return;
      }
    }
    C.emit(BcOp::Fault, intern("block fell through without a terminator"));
  }

  /// Register of a result that is always a 1-word scalar in the tree
  /// interpreter (arithmetic, comparisons, logic); a wider declared result
  /// type would make the static layout lie about the dynamic value.
  uint32_t scalarResult(const Instruction &Inst) {
    SlotInfo Slot = slotOf(Inst.Result);
    if (!Failed && Slot.Width != 1)
      fail();
    return Slot.Offset;
  }

  /// True when the static pointee of pointer-typed value \p PointerId is
  /// \p Width words wide — the condition for a Load/Store width to match
  /// what the tree interpreter moves cell-at-a-time.
  bool checkPointeeWidth(Id PointerId, uint32_t Width) {
    Id TypeId = M.typeOfId(PointerId);
    if (!M.isPointerTypeId(TypeId))
      return false;
    std::optional<uint32_t> Shape =
        shapeOfType(M.pointerInfo(TypeId).second);
    return Shape && widthOfShape(*Shape) == Width;
  }

  static BcOp scalarBinOp(Op Opcode) {
    switch (Opcode) {
    case Op::IAdd:
      return BcOp::Add;
    case Op::ISub:
      return BcOp::Sub;
    case Op::IMul:
      return BcOp::Mul;
    case Op::SDiv:
      return BcOp::SDiv;
    case Op::SMod:
      return BcOp::SMod;
    case Op::LogicalAnd:
      return BcOp::LAnd;
    case Op::LogicalOr:
      return BcOp::LOr;
    case Op::IEqual:
      return BcOp::CmpEq;
    case Op::INotEqual:
      return BcOp::CmpNe;
    case Op::SLessThan:
      return BcOp::CmpLt;
    case Op::SLessThanEqual:
      return BcOp::CmpLe;
    case Op::SGreaterThan:
      return BcOp::CmpGt;
    default:
      return BcOp::CmpGe;
    }
  }

  const Module &M;
  LoweredProgram P;
  bool Failed = false;
  std::unordered_map<Id, uint32_t> ShapeOfTypeId;
  std::unordered_map<Id, uint32_t> GlobalBases;
  std::unordered_map<Id, uint32_t> FunctionIndex;
  std::unordered_map<Id, SlotInfo> Slots;
  std::unordered_map<Id, uint32_t> BlockIndexOf;
};

} // namespace

LoweredProgram spvfuzz::lowerModule(const Module &M) {
  return Lowerer(M).lower();
}
