//===- exec/Bytecode.h - Register-bytecode program form ---------*- C++ -*-===//
//
// Part of the spirv-fuzz reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The lowered program representation the compiled execution engine runs
/// (exec/Executable.h). A validated Module is flattened into:
///
///  * dense 32-bit register frames — every SSA id becomes a (base, width)
///    slot assigned at lowering time, so the dispatch loop performs no id
///    hashing or map lookups;
///  * SoA instruction storage — parallel opcode/operand arrays so the hot
///    loop touches contiguous memory;
///  * arena-allocated constants — each function's frame template is
///    pre-filled with its constant words and global-pointer bases, so a
///    call prologue is one memcpy;
///  * explicit CFG edges carrying the phi parallel-moves (and any
///    statically-known fault the tree interpreter would raise when the
///    edge is taken), so block entry is a table jump plus a block-granular
///    step charge.
///
/// Composites are flattened by value: a type's *shape* records its
/// recursive structure (for converting ShaderInput values to words and
/// frame words back to output Values) and its flattened word width.
/// Lowering is total-or-nothing: anything the lowerer cannot prove it
/// reproduces exactly (unknown ids, ill-typed operands) clears
/// LoweredProgram::Ok and the Executable falls back to the reference tree
/// interpreter, which *is* the semantics.
///
//===----------------------------------------------------------------------===//

#ifndef EXEC_BYTECODE_H
#define EXEC_BYTECODE_H

#include <cstdint>
#include <string>
#include <vector>

namespace spvfuzz {
namespace bytecode {

/// Sentinel operand: "no register / no pool entry".
inline constexpr uint32_t NoSlot = 0xFFFFFFFFu;

/// Indices of the fault messages every lowered program pre-registers (the
/// strings match the tree interpreter's byte for byte).
inline constexpr uint32_t StepLimitFault = 0;
inline constexpr uint32_t CallDepthFault = 1;

/// Lowered opcodes. Operand meanings (registers are frame-relative word
/// offsets; see the executor in Executable.cpp):
///   Add..CmpGe:  A = lhs, B = rhs, D = dst (width-1 slots)
///   Neg/LNot:    A = src, D = dst
///   Select:      A = cond, B = true base, C = false base, D = dst, E = width
///   Copy:        A = src base, D = dst base, E = width
///   Load:        A = pointer reg, D = dst base, E = width
///   Store:       A = pointer reg, B = src base, E = width
///   AllocVar:    A = init-pool offset or NoSlot, D = dst (pointer reg),
///                E = width
///   Call:        A = callee function index, B = arg-list offset into
///                Extra ([count, base...]), D = dst base or NoSlot
///   RetVoid:     (none)
///   RetVal:      A = src base, E = return width
///   Kill:        (none)
///   Fault:       A = fault-message index
///   Br:          A = edge index
///   BrCond:      A = cond reg, B = true edge index, C = false edge index
enum class BcOp : uint8_t {
  Add,
  Sub,
  Mul,
  SDiv,
  SMod,
  Neg,
  LAnd,
  LOr,
  LNot,
  CmpEq,
  CmpNe,
  CmpLt,
  CmpLe,
  CmpGt,
  CmpGe,
  Select,
  Copy,
  Load,
  Store,
  AllocVar,
  Call,
  RetVoid,
  RetVal,
  Kill,
  Fault,
  Br,
  BrCond,
};
inline constexpr size_t NumBcOps = static_cast<size_t>(BcOp::BrCond) + 1;

/// SoA instruction storage: one opcode stream plus parallel operand
/// columns. Not every op uses every column; unused columns hold zero.
struct Code {
  std::vector<BcOp> Ops;
  std::vector<uint32_t> A, B, C, D, E;

  size_t size() const { return Ops.size(); }

  void emit(BcOp Op, uint32_t OpA = 0, uint32_t OpB = 0, uint32_t OpC = 0,
            uint32_t OpD = 0, uint32_t OpE = 0) {
    Ops.push_back(Op);
    A.push_back(OpA);
    B.push_back(OpB);
    C.push_back(OpC);
    D.push_back(OpD);
    E.push_back(OpE);
  }
};

/// One phi-induced register copy performed when an edge is taken. All of
/// an edge's moves read their sources simultaneously (the executor gathers
/// into a scratch buffer first), matching phi semantics.
struct PhiMove {
  uint32_t Dst = 0;
  uint32_t Src = 0;
  uint32_t Width = 0;
};

/// One CFG edge. Taking an edge applies its moves and enters TargetBlock —
/// unless FaultIndex is set, in which case the run faults exactly where
/// the tree interpreter would (unknown branch target, phi with no entry
/// for the predecessor).
struct Edge {
  uint32_t TargetBlock = 0;
  uint32_t MovesBegin = 0;
  uint32_t MovesEnd = 0;
  uint32_t FaultIndex = NoSlot;
};

/// Per-block dispatch info. Cost is the number of non-phi source
/// instructions: the step budget is charged per block on entry, not per
/// instruction (the tree interpreter uses the same accounting so timeout
/// outcomes agree).
struct BlockInfo {
  uint32_t CodeBegin = 0;
  uint32_t Cost = 0;
};

/// One lowered function. Frame layout: [0, ReturnWidth) is the return
/// slot, parameters follow, then SSA results, then constant/global-pointer
/// slots. FrameTemplate covers the whole frame (zeros plus pre-evaluated
/// constant words), so the prologue is a single copy.
struct LoweredFunction {
  uint32_t FrameWords = 0;
  std::vector<int32_t> FrameTemplate;
  std::vector<uint32_t> ParamOffsets;
  std::vector<uint32_t> ParamWidths;
  uint32_t ReturnWidth = 0;
  std::vector<BlockInfo> Blocks;
  std::vector<Edge> Edges;
  std::vector<PhiMove> Moves;
  /// Call argument lists: [count, src base...] runs, indexed by Call's B.
  std::vector<uint32_t> Extra;
  Code Body;
};

/// The flattened structure of a value type (see file comment). Composite
/// children index into LoweredProgram::ShapeChildren.
struct ValueShape {
  enum class Kind : uint8_t { Bool, Int, Pointer, Composite };
  Kind ShapeKind = Kind::Int;
  uint32_t Width = 1;
  uint32_t FirstChild = 0;
  uint32_t NumChildren = 0;
};

/// A module-scope Uniform variable: input binding -> memory placement.
struct UniformSlot {
  uint32_t Binding = 0;
  uint32_t MemBase = 0;
  uint32_t Shape = 0;
};

/// A module-scope Output variable: memory placement -> result location.
/// Kept in declaration order so duplicate locations overwrite exactly as
/// the tree interpreter's output map does.
struct OutputSlot {
  uint32_t Location = 0;
  uint32_t MemBase = 0;
  uint32_t Shape = 0;
};

/// A whole lowered module. When Ok is false the lowerer could not prove
/// exact equivalence and the Executable runs the tree interpreter instead.
struct LoweredProgram {
  bool Ok = false;
  uint32_t EntryFunction = 0;
  std::vector<LoweredFunction> Functions;
  std::vector<ValueShape> Shapes;
  std::vector<uint32_t> ShapeChildren;
  /// Module-scope memory image: zeros plus Private initializers; Uniform
  /// bindings are flattened over it at run start.
  uint32_t GlobalWords = 0;
  std::vector<int32_t> GlobalTemplate;
  std::vector<UniformSlot> Uniforms;
  std::vector<OutputSlot> Outputs;
  /// Pre-flattened function-local variable initializers (AllocVar's A).
  std::vector<int32_t> InitPool;
  std::vector<std::string> FaultMessages;

  size_t approxBytes() const {
    size_t Bytes = sizeof(LoweredProgram);
    for (const LoweredFunction &F : Functions) {
      Bytes += sizeof(LoweredFunction);
      Bytes += F.FrameTemplate.size() * sizeof(int32_t);
      Bytes += (F.ParamOffsets.size() + F.ParamWidths.size() + F.Extra.size()) *
               sizeof(uint32_t);
      Bytes += F.Blocks.size() * sizeof(BlockInfo);
      Bytes += F.Edges.size() * sizeof(Edge);
      Bytes += F.Moves.size() * sizeof(PhiMove);
      Bytes += F.Body.size() * (sizeof(BcOp) + 5 * sizeof(uint32_t));
    }
    Bytes += Shapes.size() * sizeof(ValueShape);
    Bytes += ShapeChildren.size() * sizeof(uint32_t);
    Bytes += (GlobalTemplate.size() + InitPool.size()) * sizeof(int32_t);
    Bytes += Uniforms.size() * sizeof(UniformSlot);
    Bytes += Outputs.size() * sizeof(OutputSlot);
    for (const std::string &Message : FaultMessages)
      Bytes += Message.size();
    return Bytes;
  }
};

} // namespace bytecode
} // namespace spvfuzz

#endif // EXEC_BYTECODE_H
