//===- exec/Executable.cpp - Bytecode executor ----------------------------===//
//
// Part of the spirv-fuzz reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
//
// The dispatch loop for the register bytecode produced by Lower.cpp.
// Design points that matter for the throughput target:
//
//  * operands come from SoA arrays indexed by a single program counter —
//    no per-instruction decode, no hashing, no Value heap traffic;
//  * dispatch is a computed-goto threaded loop on GNU compilers (a plain
//    switch elsewhere);
//  * the step budget is charged once per block (BlockInfo::Cost), the
//    same accounting interpret() uses, so timeout outcomes and exec.steps
//    totals are engine-independent;
//  * frames live in one contiguous register stack reused across runs via
//    thread-local state, so a batch run does no steady-state allocation.
//
//===----------------------------------------------------------------------===//

#include "exec/Executable.h"

#include "exec/Lower.h"
#include "support/Telemetry.h"

#include <algorithm>

using namespace spvfuzz;
using namespace spvfuzz::bytecode;

const char *spvfuzz::execEngineName(ExecEngine Engine) {
  return Engine == ExecEngine::Lowered ? "lowered" : "tree";
}

bool spvfuzz::execEngineFromName(const std::string &Name, ExecEngine &Out) {
  if (Name == "lowered") {
    Out = ExecEngine::Lowered;
    return true;
  }
  if (Name == "tree") {
    Out = ExecEngine::Tree;
    return true;
  }
  return false;
}

namespace {

/// Reusable per-thread execution state: the register stack, the memory
/// cell store (globals first, function-local allocations appended), and
/// the phi-move gather buffer.
struct ExecState {
  std::vector<int32_t> Regs;
  std::vector<int32_t> Memory;
  std::vector<int32_t> Scratch;
  uint64_t Steps = 0;
};

thread_local ExecState TlsState;

constexpr int StatusOk = -1;
constexpr int StatusKilled = -2;

// Returns StatusOk, StatusKilled, or a fault-message index (>= 0). The
// frame for FnIndex must already be pushed at Base with parameters
// filled; the callee leaves its return value in [Base, ReturnWidth).
int execute(const LoweredProgram &P, ExecState &St, uint32_t FnIndex,
            size_t Base, uint32_t Depth, const InterpreterOptions &Options) {
  const LoweredFunction &F = P.Functions[FnIndex];
  const BcOp *Ops = F.Body.Ops.data();
  const uint32_t *OA = F.Body.A.data();
  const uint32_t *OB = F.Body.B.data();
  const uint32_t *OC = F.Body.C.data();
  const uint32_t *OD = F.Body.D.data();
  const uint32_t *OE = F.Body.E.data();
  int32_t *R = St.Regs.data() + Base;
  uint32_t Block = 0;
  size_t PC = 0;
  size_t Cur = 0;

#define SPV_TAKE_EDGE(EdgeIndex)                                               \
  do {                                                                         \
    const Edge &E = F.Edges[(EdgeIndex)];                                      \
    if (E.FaultIndex != NoSlot)                                                \
      return static_cast<int>(E.FaultIndex);                                   \
    if (E.MovesBegin != E.MovesEnd) {                                          \
      St.Scratch.clear();                                                      \
      for (uint32_t MI = E.MovesBegin; MI != E.MovesEnd; ++MI) {               \
        const PhiMove &Mv = F.Moves[MI];                                       \
        St.Scratch.insert(St.Scratch.end(), R + Mv.Src,                        \
                          R + Mv.Src + Mv.Width);                              \
      }                                                                        \
      size_t ScratchAt = 0;                                                    \
      for (uint32_t MI = E.MovesBegin; MI != E.MovesEnd; ++MI) {               \
        const PhiMove &Mv = F.Moves[MI];                                       \
        std::copy_n(St.Scratch.data() + ScratchAt, Mv.Width, R + Mv.Dst);      \
        ScratchAt += Mv.Width;                                                 \
      }                                                                        \
    }                                                                          \
    Block = E.TargetBlock;                                                     \
    goto EnterBlock;                                                           \
  } while (0)

#if defined(__GNUC__) || defined(__clang__)
#define SPV_THREADED_DISPATCH 1
#define SPV_OP(Name) L_##Name:
#define SPV_NEXT                                                               \
  do {                                                                         \
    Cur = PC++;                                                                \
    goto *JumpTable[static_cast<size_t>(Ops[Cur])];                            \
  } while (0)
  const void *JumpTable[NumBcOps] = {
      &&L_Add,    &&L_Sub,     &&L_Mul,    &&L_SDiv,  &&L_SMod, &&L_Neg,
      &&L_LAnd,   &&L_LOr,     &&L_LNot,   &&L_CmpEq, &&L_CmpNe, &&L_CmpLt,
      &&L_CmpLe,  &&L_CmpGt,   &&L_CmpGe,  &&L_Select, &&L_Copy, &&L_Load,
      &&L_Store,  &&L_AllocVar, &&L_Call,  &&L_RetVoid, &&L_RetVal, &&L_Kill,
      &&L_Fault,  &&L_Br,      &&L_BrCond};
#else
#define SPV_OP(Name) case BcOp::Name:
#define SPV_NEXT break
#endif

EnterBlock : {
  const BlockInfo &BI = F.Blocks[Block];
  St.Steps += BI.Cost;
  if (St.Steps > Options.StepLimit)
    return static_cast<int>(StepLimitFault);
  PC = BI.CodeBegin;
}
#ifdef SPV_THREADED_DISPATCH
  SPV_NEXT;
#else
  for (;;) {
    Cur = PC++;
    switch (Ops[Cur]) {
#endif

  SPV_OP(Add)
  R[OD[Cur]] = static_cast<int32_t>(static_cast<uint32_t>(R[OA[Cur]]) +
                                    static_cast<uint32_t>(R[OB[Cur]]));
  SPV_NEXT;

  SPV_OP(Sub)
  R[OD[Cur]] = static_cast<int32_t>(static_cast<uint32_t>(R[OA[Cur]]) -
                                    static_cast<uint32_t>(R[OB[Cur]]));
  SPV_NEXT;

  SPV_OP(Mul)
  R[OD[Cur]] = static_cast<int32_t>(static_cast<uint32_t>(R[OA[Cur]]) *
                                    static_cast<uint32_t>(R[OB[Cur]]));
  SPV_NEXT;

  SPV_OP(SDiv) {
    int32_t Lhs = R[OA[Cur]], Rhs = R[OB[Cur]];
    R[OD[Cur]] = (Rhs == 0 || (Lhs == INT32_MIN && Rhs == -1)) ? 0 : Lhs / Rhs;
  }
  SPV_NEXT;

  SPV_OP(SMod) {
    int32_t Lhs = R[OA[Cur]], Rhs = R[OB[Cur]];
    R[OD[Cur]] = (Rhs == 0 || (Lhs == INT32_MIN && Rhs == -1)) ? 0 : Lhs % Rhs;
  }
  SPV_NEXT;

  SPV_OP(Neg)
  R[OD[Cur]] =
      static_cast<int32_t>(0u - static_cast<uint32_t>(R[OA[Cur]]));
  SPV_NEXT;

  SPV_OP(LAnd)
  R[OD[Cur]] = (R[OA[Cur]] != 0 && R[OB[Cur]] != 0) ? 1 : 0;
  SPV_NEXT;

  SPV_OP(LOr)
  R[OD[Cur]] = (R[OA[Cur]] != 0 || R[OB[Cur]] != 0) ? 1 : 0;
  SPV_NEXT;

  SPV_OP(LNot)
  R[OD[Cur]] = R[OA[Cur]] != 0 ? 0 : 1;
  SPV_NEXT;

  SPV_OP(CmpEq)
  R[OD[Cur]] = R[OA[Cur]] == R[OB[Cur]] ? 1 : 0;
  SPV_NEXT;

  SPV_OP(CmpNe)
  R[OD[Cur]] = R[OA[Cur]] != R[OB[Cur]] ? 1 : 0;
  SPV_NEXT;

  SPV_OP(CmpLt)
  R[OD[Cur]] = R[OA[Cur]] < R[OB[Cur]] ? 1 : 0;
  SPV_NEXT;

  SPV_OP(CmpLe)
  R[OD[Cur]] = R[OA[Cur]] <= R[OB[Cur]] ? 1 : 0;
  SPV_NEXT;

  SPV_OP(CmpGt)
  R[OD[Cur]] = R[OA[Cur]] > R[OB[Cur]] ? 1 : 0;
  SPV_NEXT;

  SPV_OP(CmpGe)
  R[OD[Cur]] = R[OA[Cur]] >= R[OB[Cur]] ? 1 : 0;
  SPV_NEXT;

  SPV_OP(Select) {
    const int32_t *Src = R + (R[OA[Cur]] != 0 ? OB[Cur] : OC[Cur]);
    std::copy_n(Src, OE[Cur], R + OD[Cur]);
  }
  SPV_NEXT;

  SPV_OP(Copy)
  std::copy_n(R + OA[Cur], OE[Cur], R + OD[Cur]);
  SPV_NEXT;

  SPV_OP(Load)
  std::copy_n(St.Memory.data() +
                  static_cast<size_t>(static_cast<uint32_t>(R[OA[Cur]])),
              OE[Cur], R + OD[Cur]);
  SPV_NEXT;

  SPV_OP(Store)
  std::copy_n(R + OB[Cur], OE[Cur],
              St.Memory.data() +
                  static_cast<size_t>(static_cast<uint32_t>(R[OA[Cur]])));
  SPV_NEXT;

  SPV_OP(AllocVar) {
    uint32_t Cell = static_cast<uint32_t>(St.Memory.size());
    if (OA[Cur] != NoSlot)
      St.Memory.insert(St.Memory.end(), P.InitPool.begin() + OA[Cur],
                       P.InitPool.begin() + OA[Cur] + OE[Cur]);
    else
      St.Memory.resize(St.Memory.size() + OE[Cur], 0);
    R[OD[Cur]] = static_cast<int32_t>(Cell);
  }
  SPV_NEXT;

  SPV_OP(Call) {
    if (Depth + 1 > Options.MaxCallDepth)
      return static_cast<int>(CallDepthFault);
    const LoweredFunction &Callee = P.Functions[OA[Cur]];
    size_t CalleeBase = St.Regs.size();
    St.Regs.resize(CalleeBase + Callee.FrameWords);
    {
      int32_t *CalleeR = St.Regs.data() + CalleeBase;
      std::copy(Callee.FrameTemplate.begin(), Callee.FrameTemplate.end(),
                CalleeR);
      const int32_t *CallerR = St.Regs.data() + Base;
      const uint32_t *Args = F.Extra.data() + OB[Cur];
      for (uint32_t I = 0; I != Args[0]; ++I)
        std::copy_n(CallerR + Args[1 + I], Callee.ParamWidths[I],
                    CalleeR + Callee.ParamOffsets[I]);
    }
    int Status = execute(P, St, OA[Cur], CalleeBase, Depth + 1, Options);
    if (Status != StatusOk)
      return Status;
    if (OD[Cur] != NoSlot)
      std::copy_n(St.Regs.data() + CalleeBase, Callee.ReturnWidth,
                  St.Regs.data() + Base + OD[Cur]);
    St.Regs.resize(CalleeBase);
    R = St.Regs.data() + Base;
  }
  SPV_NEXT;

  SPV_OP(RetVoid)
  return StatusOk;

  SPV_OP(RetVal)
  std::copy_n(R + OA[Cur], OE[Cur], R);
  return StatusOk;

  SPV_OP(Kill)
  return StatusKilled;

  SPV_OP(Fault)
  return static_cast<int>(OA[Cur]);

  SPV_OP(Br)
  SPV_TAKE_EDGE(OA[Cur]);
  SPV_NEXT;

  SPV_OP(BrCond)
  SPV_TAKE_EDGE(R[OA[Cur]] != 0 ? OB[Cur] : OC[Cur]);
  SPV_NEXT;

#ifndef SPV_THREADED_DISPATCH
    }
  }
#endif

#undef SPV_TAKE_EDGE
#undef SPV_OP
#undef SPV_NEXT
#undef SPV_THREADED_DISPATCH
}

} // namespace

Executable::Executable(Module TheModule, ExecEngine TheEngine,
                       uint64_t TheArtifactId)
    : M(std::move(TheModule)), Engine(TheEngine), ArtifactId(TheArtifactId) {
  if (Engine == ExecEngine::Lowered)
    Prog = lowerModule(M);
}

std::shared_ptr<const Executable>
Executable::compile(Module M, ExecEngine Engine, uint64_t ArtifactId) {
  return std::shared_ptr<const Executable>(
      new Executable(std::move(M), Engine, ArtifactId));
}

ExecResult Executable::run(const ShaderInput &Input,
                           const InterpreterOptions &Options) const {
  if (!Prog.Ok)
    return interpret(M, Input, Options);
  // The tree interpreter stores a shape-mismatched uniform value verbatim
  // and lets it propagate; the flat memory image cannot represent that, so
  // such inputs run on the reference interpreter.
  for (const UniformSlot &U : Prog.Uniforms) {
    auto It = Input.Bindings.find(U.Binding);
    if (It != Input.Bindings.end() &&
        !valueMatchesShape(Prog, It->second, U.Shape))
      return interpret(M, Input, Options);
  }

  ExecState &St = TlsState;
  St.Steps = 0;
  St.Memory.assign(Prog.GlobalTemplate.begin(), Prog.GlobalTemplate.end());
  for (const UniformSlot &U : Prog.Uniforms) {
    auto It = Input.Bindings.find(U.Binding);
    if (It == Input.Bindings.end())
      continue;
    St.Scratch.clear();
    flattenValue(It->second, St.Scratch);
    std::copy(St.Scratch.begin(), St.Scratch.end(),
              St.Memory.begin() + U.MemBase);
  }
  const LoweredFunction &Entry = Prog.Functions[Prog.EntryFunction];
  St.Regs.assign(Entry.FrameTemplate.begin(), Entry.FrameTemplate.end());

  int Status = execute(Prog, St, Prog.EntryFunction, /*Base=*/0, /*Depth=*/0,
                       Options);

  ExecResult Result;
  if (Status == StatusKilled) {
    Result.ExecStatus = ExecResult::Status::Killed;
  } else if (Status >= 0) {
    Result.ExecStatus = ExecResult::Status::Fault;
    Result.FaultMessage = Prog.FaultMessages[static_cast<size_t>(Status)];
  } else {
    Result.ExecStatus = ExecResult::Status::Ok;
    for (const OutputSlot &O : Prog.Outputs) {
      const int32_t *Words = St.Memory.data() + O.MemBase;
      Result.Outputs[O.Location] = rebuildValue(Prog, O.Shape, Words);
    }
  }

  // Identical accounting to interpret() so the two engines are
  // counter-for-counter interchangeable.
  telemetry::MetricsRegistry &Metrics = telemetry::MetricsRegistry::global();
  if (Metrics.enabled()) {
    Metrics.add("exec.runs");
    Metrics.add("exec.steps", St.Steps);
    if (Result.ExecStatus == ExecResult::Status::Killed)
      Metrics.add("exec.killed");
    else if (Result.ExecStatus == ExecResult::Status::Fault)
      Metrics.add("exec.faults");
    Metrics.observe("exec.steps_per_run", static_cast<double>(St.Steps));
  }
  return Result;
}

std::vector<ExecResult>
Executable::runBatch(std::span<const ShaderInput> Inputs,
                     const InterpreterOptions &Options) const {
  std::vector<ExecResult> Results;
  Results.reserve(Inputs.size());
  for (const ShaderInput &Input : Inputs)
    Results.push_back(run(Input, Options));
  return Results;
}

size_t Executable::approxBytes() const {
  return sizeof(Executable) + M.instructionCount() * 48 + Prog.approxBytes();
}
