//===- serve/Worker.h - Shard lease worker loop -----------------*- C++ -*-===//
//
// Part of the spirv-fuzz reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The worker side of the scale-out deployment: waits for the
/// coordinator's WorkerConfig, rebuilds the exact campaign policy
/// (cross-checking the campaign-id digest), then loops leasing shards
/// from the ledger, computing each through CampaignEngine::evaluateShard
/// and publishing a ShardResult frame before marking the lease Done. It
/// exits when the DONE marker is down and nothing is queued — or, for
/// the crash-matrix tests, after the configured shard count (optionally
/// tearing its last result or abandoning a fresh lease, the two ways a
/// kill -9 leaves the ledger).
///
/// `minispv worker` runs this in its own process; the tests run it
/// in-process on a std::thread (same ledger, same flock discipline).
///
//===----------------------------------------------------------------------===//

#ifndef SERVE_WORKER_H
#define SERVE_WORKER_H

#include "serve/LeaseLedger.h"

#include <string>

namespace spvfuzz {
namespace serve {

struct WorkerOptions {
  std::string StoreDir;
  uint64_t WorkerId = 1;
  /// Thread-parallelism inside the worker's own engine (jobs per shard).
  size_t Jobs = 1;
  /// Idle-poll interval while waiting for work or the config.
  uint64_t PollMs = 10;
  /// How long to wait for the coordinator's config before giving up.
  uint64_t ConfigWaitMs = 30000;
  /// Ship per-shard metrics-counter deltas in results. On only in
  /// process mode: an in-process worker shares the global registry with
  /// the coordinator, so shipping deltas would double-count.
  bool CollectMetrics = false;
  /// Test hooks for the crash matrix. MaxShards > 0 stops the worker
  /// after that many completed shards (a clean kill at a shard
  /// boundary); TruncateLastResult additionally tears the final result
  /// file after marking the lease Done (a kill mid-publish);
  /// AbandonAfterShards > 0 leases one more shard after that many
  /// completions and exits without computing it (a kill mid-shard,
  /// recovered by lease expiry).
  uint64_t MaxShards = 0;
  bool TruncateLastResult = false;
  uint64_t AbandonAfterShards = 0;
};

/// Worker process exit codes follow the minispv contract: 0 success,
/// 1 parse/protocol error, 2 missing input (no store/serve dir),
/// 3 timeout waiting for the coordinator's config.
class ShardWorker {
public:
  explicit ShardWorker(WorkerOptions Opts);

  /// Runs the lease loop to completion. Returns the process exit code;
  /// nonzero outcomes also set \p ErrorOut.
  int run(std::string &ErrorOut);

  size_t shardsCompleted() const { return Shards; }

private:
  WorkerOptions Opts;
  size_t Shards = 0;
};

} // namespace serve
} // namespace spvfuzz

#endif // SERVE_WORKER_H
