//===- serve/ShardProtocol.cpp - Coordinator/worker message layer ---------===//
//
// Part of the spirv-fuzz reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "serve/ShardProtocol.h"

#include "store/Serde.h"
#include "support/ModuleHash.h"

using namespace spvfuzz;
using namespace spvfuzz::serve;

const char *serve::messageKindName(MessageKind Kind) {
  switch (Kind) {
  case MessageKind::WorkerConfig:
    return "WorkerConfig";
  case MessageKind::WorkerHello:
    return "WorkerHello";
  case MessageKind::ShardJob:
    return "ShardJob";
  case MessageKind::ShardResult:
    return "ShardResult";
  case MessageKind::LeaseLedger:
    return "LeaseLedger";
  }
  return "Unknown";
}

uint64_t serve::sidelinedDigest(const std::vector<std::string> &Sidelined) {
  StructuralHasher H;
  H.word(Sidelined.size());
  for (const std::string &Name : Sidelined) {
    H.word(Name.size());
    for (char C : Name)
      H.word(static_cast<uint8_t>(C));
  }
  return H.digest();
}

//===----------------------------------------------------------------------===//
// Frame layer
//===----------------------------------------------------------------------===//

namespace {

constexpr char FrameMagic[9] = "MSPVSHRD";
constexpr size_t FrameHeaderSize = 8 + 4 + 1 + 8 + 8;

/// Checksum over everything the payload's meaning depends on: version,
/// kind, and the payload bytes in 8-byte little-endian chunks.
uint64_t frameChecksum(uint32_t Version, uint8_t Kind,
                       const std::string &Payload) {
  StructuralHasher H;
  H.word(Version);
  H.word(Kind);
  H.word(Payload.size());
  uint64_t Word = 0;
  size_t Shift = 0;
  for (unsigned char C : Payload) {
    Word |= static_cast<uint64_t>(C) << Shift;
    Shift += 8;
    if (Shift == 64) {
      H.word(Word);
      Word = 0;
      Shift = 0;
    }
  }
  if (Shift)
    H.word(Word);
  return H.digest();
}

std::string encodeFrame(MessageKind Kind, const std::string &Payload) {
  ByteWriter W;
  W.raw(std::string(FrameMagic, 8));
  W.u32(ShardProtocolVersion);
  W.u8(static_cast<uint8_t>(Kind));
  W.u64(frameChecksum(ShardProtocolVersion, static_cast<uint8_t>(Kind),
                      Payload));
  W.u64(Payload.size());
  std::string Out = W.take();
  Out += Payload;
  return Out;
}

bool knownKind(uint8_t Kind) {
  switch (static_cast<MessageKind>(Kind)) {
  case MessageKind::WorkerConfig:
  case MessageKind::WorkerHello:
  case MessageKind::ShardJob:
  case MessageKind::ShardResult:
  case MessageKind::LeaseLedger:
    return true;
  }
  return false;
}

/// Decodes a frame expecting \p Expected; with Expected unset, any known
/// kind passes.
bool decodeFrameExpecting(const std::string &Bytes,
                          const MessageKind *Expected, MessageKind &KindOut,
                          std::string &PayloadOut, std::string &ErrorOut) {
  if (Bytes.size() < FrameHeaderSize) {
    ErrorOut = "shard frame truncated: " + std::to_string(Bytes.size()) +
               " bytes, header needs " + std::to_string(FrameHeaderSize);
    return false;
  }
  if (Bytes.compare(0, 8, FrameMagic, 8) != 0) {
    ErrorOut = "bad shard frame magic";
    return false;
  }
  ByteReader R(Bytes);
  R.skip(8);
  uint32_t Version = 0;
  uint8_t Kind = 0;
  uint64_t Checksum = 0, Size = 0;
  if (!R.u32(Version) || !R.u8(Kind) || !R.u64(Checksum) || !R.u64(Size)) {
    ErrorOut = "shard frame header unreadable: " + R.error();
    return false;
  }
  if (Version == 0 || Version > ShardProtocolVersion) {
    ErrorOut = "unsupported shard protocol version " +
               std::to_string(Version) + " (this build speaks up to " +
               std::to_string(ShardProtocolVersion) + ")";
    return false;
  }
  if (!knownKind(Kind)) {
    ErrorOut = "unknown shard message kind " + std::to_string(Kind);
    return false;
  }
  if (Bytes.size() - FrameHeaderSize != Size) {
    ErrorOut = "shard frame size mismatch: header says " +
               std::to_string(Size) + " payload bytes, frame carries " +
               std::to_string(Bytes.size() - FrameHeaderSize);
    return false;
  }
  std::string Payload = Bytes.substr(FrameHeaderSize);
  if (frameChecksum(Version, Kind, Payload) != Checksum) {
    ErrorOut = "shard frame checksum mismatch (corrupt or torn write)";
    return false;
  }
  KindOut = static_cast<MessageKind>(Kind);
  if (Expected && KindOut != *Expected) {
    ErrorOut = std::string("unexpected shard message kind: wanted ") +
               messageKindName(*Expected) + ", got " +
               messageKindName(KindOut);
    return false;
  }
  PayloadOut = std::move(Payload);
  return true;
}

bool decodeTyped(const std::string &Bytes, MessageKind Expected,
                 std::string &PayloadOut, std::string &ErrorOut) {
  MessageKind Kind;
  return decodeFrameExpecting(Bytes, &Expected, Kind, PayloadOut, ErrorOut);
}

bool payloadError(const ByteReader &R, MessageKind Kind,
                  std::string &ErrorOut) {
  ErrorOut = std::string(messageKindName(Kind)) + " payload malformed";
  if (!R.error().empty())
    ErrorOut += ": " + R.error();
  return false;
}

/// Rejects payloads with trailing bytes: a valid frame decodes exactly.
bool finish(const ByteReader &R, MessageKind Kind, std::string &ErrorOut) {
  if (R.atEnd())
    return true;
  ErrorOut = std::string(messageKindName(Kind)) + " payload has " +
             std::to_string(R.remaining()) + " trailing bytes";
  return false;
}

} // namespace

bool serve::decodeFrame(const std::string &Bytes, MessageKind &KindOut,
                        std::string &PayloadOut, std::string &ErrorOut) {
  return decodeFrameExpecting(Bytes, nullptr, KindOut, PayloadOut, ErrorOut);
}

//===----------------------------------------------------------------------===//
// Payload codecs
//===----------------------------------------------------------------------===//

std::string serve::encodeWorkerConfig(const WorkerConfigMsg &Msg) {
  ByteWriter W;
  W.str(Msg.CampaignId);
  W.u64(Msg.Seed);
  W.u32(Msg.TransformationLimit);
  W.u64(Msg.TargetDeadlineSteps);
  W.u32(Msg.FlakyRetries);
  W.u32(Msg.QuarantineThreshold);
  W.u8(Msg.Engine);
  W.u64(Msg.UniformInputs);
  W.u8(Msg.FaultyFleet);
  W.u64(Msg.Tests);
  W.u64(Msg.LeaseTtlMs);
  return encodeFrame(MessageKind::WorkerConfig, W.take());
}

bool serve::decodeWorkerConfig(const std::string &Bytes, WorkerConfigMsg &Out,
                               std::string &ErrorOut) {
  std::string Payload;
  if (!decodeTyped(Bytes, MessageKind::WorkerConfig, Payload, ErrorOut))
    return false;
  ByteReader R(Payload);
  if (!R.str(Out.CampaignId) || !R.u64(Out.Seed) ||
      !R.u32(Out.TransformationLimit) || !R.u64(Out.TargetDeadlineSteps) ||
      !R.u32(Out.FlakyRetries) || !R.u32(Out.QuarantineThreshold) ||
      !R.u8(Out.Engine) || !R.u64(Out.UniformInputs) ||
      !R.u8(Out.FaultyFleet) || !R.u64(Out.Tests) || !R.u64(Out.LeaseTtlMs))
    return payloadError(R, MessageKind::WorkerConfig, ErrorOut);
  return finish(R, MessageKind::WorkerConfig, ErrorOut);
}

std::string serve::encodeWorkerHello(const WorkerHelloMsg &Msg) {
  ByteWriter W;
  W.u64(Msg.Worker);
  W.u64(Msg.Pid);
  return encodeFrame(MessageKind::WorkerHello, W.take());
}

bool serve::decodeWorkerHello(const std::string &Bytes, WorkerHelloMsg &Out,
                              std::string &ErrorOut) {
  std::string Payload;
  if (!decodeTyped(Bytes, MessageKind::WorkerHello, Payload, ErrorOut))
    return false;
  ByteReader R(Payload);
  if (!R.u64(Out.Worker) || !R.u64(Out.Pid))
    return payloadError(R, MessageKind::WorkerHello, ErrorOut);
  return finish(R, MessageKind::WorkerHello, ErrorOut);
}

std::string serve::encodeShardJob(const ShardJobMsg &Msg) {
  ByteWriter W;
  W.u64(Msg.JobId);
  W.u64(Msg.Generation);
  W.str(Msg.CampaignId);
  W.str(Msg.Phase);
  W.str(Msg.Tool);
  W.u64(Msg.Count);
  W.u8(Msg.CrashesOnly);
  W.u64(Msg.WaveStart);
  W.u64(Msg.WaveEnd);
  W.u32(static_cast<uint32_t>(Msg.Sidelined.size()));
  for (const std::string &Name : Msg.Sidelined)
    W.str(Name);
  return encodeFrame(MessageKind::ShardJob, W.take());
}

bool serve::decodeShardJob(const std::string &Bytes, ShardJobMsg &Out,
                           std::string &ErrorOut) {
  std::string Payload;
  if (!decodeTyped(Bytes, MessageKind::ShardJob, Payload, ErrorOut))
    return false;
  ByteReader R(Payload);
  uint32_t SidelinedCount = 0;
  if (!R.u64(Out.JobId) || !R.u64(Out.Generation) ||
      !R.str(Out.CampaignId) || !R.str(Out.Phase) || !R.str(Out.Tool) ||
      !R.u64(Out.Count) || !R.u8(Out.CrashesOnly) || !R.u64(Out.WaveStart) ||
      !R.u64(Out.WaveEnd) || !R.u32(SidelinedCount) ||
      !R.checkCount(SidelinedCount, 4))
    return payloadError(R, MessageKind::ShardJob, ErrorOut);
  Out.Sidelined.clear();
  Out.Sidelined.reserve(SidelinedCount);
  for (uint32_t I = 0; I < SidelinedCount; ++I) {
    std::string Name;
    if (!R.str(Name))
      return payloadError(R, MessageKind::ShardJob, ErrorOut);
    Out.Sidelined.push_back(std::move(Name));
  }
  return finish(R, MessageKind::ShardJob, ErrorOut);
}

std::string serve::encodeShardResult(const ShardResultMsg &Msg) {
  ByteWriter W;
  W.u64(Msg.JobId);
  W.u64(Msg.Generation);
  W.u64(Msg.Worker);
  W.str(Msg.CampaignId);
  W.str(Msg.Phase);
  W.u64(Msg.WaveStart);
  W.u64(Msg.WaveEnd);
  W.u64(Msg.MaskDigest);
  W.u32(static_cast<uint32_t>(Msg.Evals.size()));
  for (const TestEvaluation &Eval : Msg.Evals)
    writeTestEvaluationBinary(W, Eval);
  W.str(Msg.MetricsJson);
  return encodeFrame(MessageKind::ShardResult, W.take());
}

bool serve::decodeShardResult(const std::string &Bytes, ShardResultMsg &Out,
                              std::string &ErrorOut) {
  std::string Payload;
  if (!decodeTyped(Bytes, MessageKind::ShardResult, Payload, ErrorOut))
    return false;
  ByteReader R(Payload);
  uint32_t EvalCount = 0;
  if (!R.u64(Out.JobId) || !R.u64(Out.Generation) || !R.u64(Out.Worker) ||
      !R.str(Out.CampaignId) || !R.str(Out.Phase) || !R.u64(Out.WaveStart) ||
      !R.u64(Out.WaveEnd) || !R.u64(Out.MaskDigest) || !R.u32(EvalCount) ||
      !R.checkCount(EvalCount, 24))
    return payloadError(R, MessageKind::ShardResult, ErrorOut);
  Out.Evals.clear();
  Out.Evals.reserve(EvalCount);
  for (uint32_t I = 0; I < EvalCount; ++I) {
    TestEvaluation Eval;
    if (!readTestEvaluationBinary(R, Eval))
      return payloadError(R, MessageKind::ShardResult, ErrorOut);
    Out.Evals.push_back(std::move(Eval));
  }
  if (!R.str(Out.MetricsJson))
    return payloadError(R, MessageKind::ShardResult, ErrorOut);
  return finish(R, MessageKind::ShardResult, ErrorOut);
}

std::string serve::encodeLeaseLedger(const LeaseLedgerMsg &Msg) {
  ByteWriter W;
  W.u64(Msg.NextJobId);
  W.u32(static_cast<uint32_t>(Msg.Entries.size()));
  for (const LeaseEntry &Entry : Msg.Entries) {
    W.u64(Entry.JobId);
    W.u64(Entry.Generation);
    W.u8(static_cast<uint8_t>(Entry.State));
    W.u64(Entry.Worker);
    W.u64(Entry.DeadlineMs);
  }
  return encodeFrame(MessageKind::LeaseLedger, W.take());
}

bool serve::decodeLeaseLedger(const std::string &Bytes, LeaseLedgerMsg &Out,
                              std::string &ErrorOut) {
  std::string Payload;
  if (!decodeTyped(Bytes, MessageKind::LeaseLedger, Payload, ErrorOut))
    return false;
  ByteReader R(Payload);
  uint32_t EntryCount = 0;
  if (!R.u64(Out.NextJobId) || !R.u32(EntryCount) ||
      !R.checkCount(EntryCount, 33))
    return payloadError(R, MessageKind::LeaseLedger, ErrorOut);
  Out.Entries.clear();
  Out.Entries.reserve(EntryCount);
  for (uint32_t I = 0; I < EntryCount; ++I) {
    LeaseEntry Entry;
    uint8_t State = 0;
    if (!R.u64(Entry.JobId) || !R.u64(Entry.Generation) || !R.u8(State) ||
        !R.u64(Entry.Worker) || !R.u64(Entry.DeadlineMs))
      return payloadError(R, MessageKind::LeaseLedger, ErrorOut);
    if (State > static_cast<uint8_t>(LeaseState::Done)) {
      ErrorOut = "LeaseLedger payload malformed: unknown lease state " +
                 std::to_string(State);
      return false;
    }
    Entry.State = static_cast<LeaseState>(State);
    Out.Entries.push_back(std::move(Entry));
  }
  return finish(R, MessageKind::LeaseLedger, ErrorOut);
}
