//===- serve/ShardProtocol.h - Coordinator/worker message layer -*- C++ -*-===//
//
// Part of the spirv-fuzz reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The message layer between the scale-out coordinator and its workers:
/// versioned, checksummed frames over the same little-endian serde as the
/// store (support/BinaryIO.h), so the transport underneath is
/// interchangeable — today messages travel as files in `<store>/serve/`,
/// and a socket transport is a framing change, not a rewrite. A frame is
///
///   MagicBytes(8) ProtocolVersion(u32) Kind(u8)
///   PayloadChecksum(u64) PayloadSize(u64) Payload(Size)
///
/// with the checksum a StructuralHasher digest over (version, kind,
/// payload). Any bit flip, truncation or stray append is rejected at
/// decode with a diagnostic, never undefined behaviour; frames from a
/// newer protocol version are refused rather than misparsed.
///
/// The payload types cover the whole deployment conversation: the
/// coordinator publishes one WorkerConfig (the campaign policy a worker
/// must replicate bit-exactly), workers announce themselves with
/// WorkerHello, ShardJob/ShardResult carry the leased unit of work and
/// its evaluations (reusing the store's TestEvaluation codec, so a shard
/// result is byte-for-byte what the coordinator checkpoints), and
/// LeaseLedger is the crash-safe lease table itself.
///
//===----------------------------------------------------------------------===//

#ifndef SERVE_SHARDPROTOCOL_H
#define SERVE_SHARDPROTOCOL_H

#include "campaign/Campaign.h"
#include "campaign/CampaignEngine.h"

#include <cstdint>
#include <string>
#include <vector>

namespace spvfuzz {
namespace serve {

/// The wire version this build speaks. Bump on any incompatible frame or
/// payload change; decoders refuse anything newer.
inline constexpr uint32_t ShardProtocolVersion = 1;

/// Every frame kind the protocol carries.
enum class MessageKind : uint8_t {
  WorkerConfig = 1,
  WorkerHello = 2,
  ShardJob = 3,
  ShardResult = 4,
  LeaseLedger = 5,
};

const char *messageKindName(MessageKind Kind);

/// The campaign policy a worker replicates. Everything that feeds
/// campaignConfigDigest is here, plus the knobs that shape evaluation
/// (engine, uniform inputs, fleet flavor); the worker rebuilds the same
/// corpus, tools and fleet from it and cross-checks CampaignId.
struct WorkerConfigMsg {
  std::string CampaignId;
  uint64_t Seed = 0;
  uint32_t TransformationLimit = 0;
  uint64_t TargetDeadlineSteps = 0;
  uint32_t FlakyRetries = 0;
  uint32_t QuarantineThreshold = 0;
  /// ExecEngine as its underlying value.
  uint8_t Engine = 0;
  uint64_t UniformInputs = 1;
  uint8_t FaultyFleet = 0;
  /// Tests per tool (phase totals, for progress accounting only).
  uint64_t Tests = 0;
  /// Lease time-to-live workers request when leasing, in milliseconds.
  uint64_t LeaseTtlMs = 0;
};

/// A worker announcing itself (written once at startup).
struct WorkerHelloMsg {
  uint64_t Worker = 0;
  uint64_t Pid = 0;
};

/// One leased unit of work: a ShardRequest plus its ledger identity.
/// Generation fences stale completions — a shard re-leased after a lease
/// expiry carries a bumped generation, and results tagged with an older
/// one are ignored.
struct ShardJobMsg {
  uint64_t JobId = 0;
  uint64_t Generation = 0;
  std::string CampaignId;
  std::string Phase;
  std::string Tool;
  uint64_t Count = 0;
  uint8_t CrashesOnly = 0;
  uint64_t WaveStart = 0;
  uint64_t WaveEnd = 0;
  std::vector<std::string> Sidelined;
};

/// A computed shard: the evaluations in test-index order, plus the mask
/// digest the worker computed under (cross-checked by the coordinator)
/// and an optional per-shard metrics-counter delta (metricsToJson) the
/// coordinator folds into its registry so counter totals equal a serial
/// run's.
struct ShardResultMsg {
  uint64_t JobId = 0;
  uint64_t Generation = 0;
  uint64_t Worker = 0;
  std::string CampaignId;
  std::string Phase;
  uint64_t WaveStart = 0;
  uint64_t WaveEnd = 0;
  uint64_t MaskDigest = 0;
  std::vector<TestEvaluation> Evals;
  std::string MetricsJson;
};

/// Lease ledger entry states. Queued entries are up for lease; Leased
/// entries revert to Queued (with a bumped generation) when their
/// deadline passes; Done entries are folded or foldable.
enum class LeaseState : uint8_t {
  Queued = 0,
  Leased = 1,
  Done = 2,
};

struct LeaseEntry {
  uint64_t JobId = 0;
  uint64_t Generation = 0;
  LeaseState State = LeaseState::Queued;
  /// Worker currently holding the lease (meaningful when Leased/Done).
  uint64_t Worker = 0;
  /// Lease expiry in coordinator-clock milliseconds (CLOCK_MONOTONIC,
  /// shared across local processes).
  uint64_t DeadlineMs = 0;
};

/// The whole lease table, rewritten atomically under the ledger lock.
struct LeaseLedgerMsg {
  uint64_t NextJobId = 1;
  std::vector<LeaseEntry> Entries;
};

/// Digest of a quarantine mask (the Sidelined name list, order-
/// sensitive), used to cross-check that a worker computed a shard under
/// the mask the coordinator's serial fold expects.
uint64_t sidelinedDigest(const std::vector<std::string> &Sidelined);

// --- Frame + payload codecs ------------------------------------------------
//
// Every encode returns a complete frame; every decode validates magic,
// version, kind, checksum and exact payload size before touching the
// payload, and returns false with a diagnostic on any mismatch.

std::string encodeWorkerConfig(const WorkerConfigMsg &Msg);
bool decodeWorkerConfig(const std::string &Bytes, WorkerConfigMsg &Out,
                        std::string &ErrorOut);

std::string encodeWorkerHello(const WorkerHelloMsg &Msg);
bool decodeWorkerHello(const std::string &Bytes, WorkerHelloMsg &Out,
                       std::string &ErrorOut);

std::string encodeShardJob(const ShardJobMsg &Msg);
bool decodeShardJob(const std::string &Bytes, ShardJobMsg &Out,
                    std::string &ErrorOut);

std::string encodeShardResult(const ShardResultMsg &Msg);
bool decodeShardResult(const std::string &Bytes, ShardResultMsg &Out,
                       std::string &ErrorOut);

std::string encodeLeaseLedger(const LeaseLedgerMsg &Msg);
bool decodeLeaseLedger(const std::string &Bytes, LeaseLedgerMsg &Out,
                       std::string &ErrorOut);

/// Frame-level decode: validates everything except the payload encoding
/// and returns the kind + raw payload. The typed decoders above also
/// check that the frame's kind matches the expected one.
bool decodeFrame(const std::string &Bytes, MessageKind &KindOut,
                 std::string &PayloadOut, std::string &ErrorOut);

} // namespace serve
} // namespace spvfuzz

#endif // SERVE_SHARDPROTOCOL_H
